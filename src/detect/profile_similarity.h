#ifndef HOD_DETECT_PROFILE_SIMILARITY_H_
#define HOD_DETECT_PROFILE_SIMILARITY_H_

#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Profile similarity (PS) — described in the paper's Section 3 prose
/// ("another way to detect outliers is to compare a normal profile with
/// new time points; this procedure is denoted as profile similarity") but
/// not listed in Table 1. Natural fit for phase-level data, where every
/// job replays the same nominal trajectory.
///
/// Training resamples each normal series to `profile_length` positions
/// (PAA) and learns the per-position mean and spread. Scoring compares a
/// test series position-by-position against the profile envelope; the
/// outlierness of a sample is its deviation in envelope sigmas.
struct ProfileSimilarityOptions {
  size_t profile_length = 64;
  /// Envelope floor in absolute units (guards constant training data).
  double min_sigma = 1e-4;
  /// Deviation (in envelope sigmas beyond 2) at which the score is 0.5.
  double sigma_scale = 3.0;
};

class ProfileSimilarityDetector : public SeriesDetector {
 public:
  explicit ProfileSimilarityDetector(ProfileSimilarityOptions options = {});

  std::string name() const override { return "ProfileSimilarity"; }

  Status Train(const std::vector<ts::TimeSeries>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::TimeSeries& series) const override;

  /// Learned per-position profile (exposed for plotting/tests).
  const std::vector<double>& profile_mean() const { return mean_; }
  const std::vector<double>& profile_sigma() const { return sigma_; }

 private:
  ProfileSimilarityOptions options_;
  std::vector<double> mean_;
  std::vector<double> sigma_;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_PROFILE_SIMILARITY_H_
