#ifndef HOD_TIMESERIES_DISTANCE_H_
#define HOD_TIMESERIES_DISTANCE_H_

#include <vector>

#include "timeseries/discrete_sequence.h"
#include "util/statusor.h"

namespace hod::ts {

/// Euclidean distance of two equal-length vectors; error on size mismatch.
StatusOr<double> EuclideanDistance(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// Squared Euclidean distance (cheaper when only ordering matters).
StatusOr<double> SquaredEuclideanDistance(const std::vector<double>& a,
                                          const std::vector<double>& b);

/// Dynamic time warping distance with a Sakoe-Chiba band of half-width
/// `band` (0 = unconstrained). Handles unequal lengths. O(n*m) worst case.
double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   size_t band = 0);

/// Length of the longest common subsequence of two symbol sequences.
size_t LcsLength(const std::vector<Symbol>& a, const std::vector<Symbol>& b);

/// Normalized LCS similarity in [0,1]: LCS length / max(|a|, |b|).
/// 1 when both are empty.
double LcsSimilarity(const std::vector<Symbol>& a,
                     const std::vector<Symbol>& b);

/// Fraction of positions where equal-length symbol windows agree, in [0,1];
/// used by the match-count sequence-similarity detector (Lane & Brodley).
StatusOr<double> MatchFraction(const std::vector<Symbol>& a,
                               const std::vector<Symbol>& b);

/// Hamming distance of equal-length symbol windows.
StatusOr<size_t> HammingDistance(const std::vector<Symbol>& a,
                                 const std::vector<Symbol>& b);

}  // namespace hod::ts

#endif  // HOD_TIMESERIES_DISTANCE_H_
