#include "core/algorithm_selector.h"

#include <gtest/gtest.h>

namespace hod::core {
namespace {

TEST(Selector, ResolutionMatchedDefaults) {
  AlgorithmSelector selector;
  EXPECT_EQ(selector.policy(), SelectorPolicy::kResolutionMatched);
  EXPECT_EQ(selector.Describe(hierarchy::ProductionLevel::kPhase),
            "AutoregressiveModel");
  EXPECT_EQ(selector.Describe(hierarchy::ProductionLevel::kJob),
            "ExpectationMaximization");
  EXPECT_EQ(selector.Describe(hierarchy::ProductionLevel::kEnvironment),
            "AutoregressiveModel");
  EXPECT_EQ(selector.Describe(hierarchy::ProductionLevel::kProductionLine),
            "RobustZ");
  EXPECT_EQ(selector.Describe(hierarchy::ProductionLevel::kProduction),
            "RobustZVector");
}

TEST(Selector, MismatchedPolicySwapsAlgorithmClasses) {
  AlgorithmSelector selector(SelectorPolicy::kMismatched);
  EXPECT_EQ(selector.Describe(hierarchy::ProductionLevel::kPhase),
            "HistogramDeviants+Points");
  EXPECT_EQ(selector.Describe(hierarchy::ProductionLevel::kJob),
            "AutoregressiveModel+Stream");
}

TEST(Selector, FactoriesProduceNamedDetectors) {
  AlgorithmSelector selector;
  auto phase = selector.MakePhaseDetector();
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->name(), "AutoregressiveModel");
  auto job = selector.MakeJobDetector();
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->name(), "ExpectationMaximization");
  auto environment = selector.MakeEnvironmentDetector();
  ASSERT_NE(environment, nullptr);
  auto line = selector.MakeLineDetector();
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->name(), "RobustZ");
}

TEST(Selector, MismatchedFactoriesDiffer) {
  AlgorithmSelector matched;
  AlgorithmSelector mismatched(SelectorPolicy::kMismatched);
  EXPECT_NE(matched.MakePhaseDetector()->name(),
            mismatched.MakePhaseDetector()->name());
  EXPECT_NE(matched.MakeJobDetector()->name(),
            mismatched.MakeJobDetector()->name());
  EXPECT_NE(matched.MakeLineDetector()->name(),
            mismatched.MakeLineDetector()->name());
}

}  // namespace
}  // namespace hod::core
