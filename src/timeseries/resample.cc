#include "timeseries/resample.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"

namespace hod::ts {

double AggregateAll(const std::vector<double>& values, Aggregation how) {
  if (values.empty()) return 0.0;
  switch (how) {
    case Aggregation::kMean:
      return Mean(values);
    case Aggregation::kMin:
      return Min(values);
    case Aggregation::kMax:
      return Max(values);
    case Aggregation::kLast:
      return values.back();
    case Aggregation::kSum: {
      double sum = 0.0;
      for (double v : values) sum += v;
      return sum;
    }
    case Aggregation::kStdDev:
      return StdDev(values);
  }
  return 0.0;
}

StatusOr<TimeSeries> Downsample(const TimeSeries& series, size_t factor,
                                Aggregation how) {
  if (factor == 0) {
    return Status::InvalidArgument("downsample factor must be >= 1");
  }
  TimeSeries out(series.name(), series.start_time(),
                 series.interval() * static_cast<double>(factor));
  std::vector<double> group;
  group.reserve(factor);
  for (size_t i = 0; i < series.size(); i += factor) {
    const size_t end = std::min(i + factor, series.size());
    group.assign(series.values().begin() + i, series.values().begin() + end);
    out.Append(AggregateAll(group, how));
  }
  return out;
}

StatusOr<AlignedRange> AlignByTime(const TimeSeries& a, const TimeSeries& b) {
  if (a.empty() || b.empty()) {
    return Status::NotFound("series do not overlap (empty input)");
  }
  const TimePoint start = std::max(a.start_time(), b.start_time());
  const TimePoint end = std::min(a.end_time(), b.end_time());
  if (start >= end) return Status::NotFound("series do not overlap in time");
  // Use the coarser interval as the step; index both series at that rate.
  auto a_begin = a.IndexAt(start);
  auto b_begin = b.IndexAt(start);
  if (!a_begin.ok() || !b_begin.ok()) {
    return Status::NotFound("series do not overlap in time");
  }
  AlignedRange range;
  range.a_begin = a_begin.value();
  range.b_begin = b_begin.value();
  const size_t a_len = a.size() - range.a_begin;
  const size_t b_len = b.size() - range.b_begin;
  range.length = std::min(a_len, b_len);
  return range;
}

}  // namespace hod::ts
