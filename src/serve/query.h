#ifndef HOD_SERVE_QUERY_H_
#define HOD_SERVE_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "detect/olap_cube.h"
#include "serve/hub.h"
#include "timeseries/time_series.h"
#include "util/status.h"
#include "util/statusor.h"

namespace hod::serve {

/// One drill-down roll-up request: bucket the hub's per-level history
/// over [start, end) and flag anomalous (level, bucket) cells.
struct RollupQuery {
  ts::TimePoint start = 0.0;
  ts::TimePoint end = 0.0;       ///< half-open window [start, end)
  double bucket_width = 60.0;    ///< seconds per time bucket
  /// Level indices to include (LevelValue(level) - 1); empty = all.
  std::vector<int> levels;
};

/// One populated roll-up cell.
struct RollupCell {
  int level = 0;
  int64_t bucket = 0;            ///< floor((ts - start) / bucket_width)
  ts::TimePoint bucket_start = 0.0;
  double outliers = 0.0;         ///< outlier samples attributed to the cell
  double score = 0.0;            ///< OLAP outlierness in [0, 1)
  bool anomalous = false;        ///< score >= 0.5 (>= sigma_scale sigmas)
};

struct RollupResult {
  std::vector<RollupCell> cells;  ///< ordered by (level, bucket)
  uint64_t epoch = 0;             ///< hub publish epoch the result reflects
  bool cache_hit = false;
  size_t cube_cells = 0;          ///< populated OLAP cells analyzed
};

/// Answers drill-down roll-ups ("plant → line → machine over the last
/// hour") from the hub's history rings by feeding per-bucket outlier
/// deltas through detect::OlapCubeDetector (dims = level × time bucket).
/// Results are memoized in an epoch-stamped cache: a hit requires the
/// hub's publish epoch to be unchanged, so any new publish invalidates
/// every cached answer without bookkeeping on the hot publish path.
///
/// Thread-safe; the hub must outlive the service.
class QueryService {
 public:
  explicit QueryService(const SnapshotHub* hub,
                        detect::OlapCubeOptions cube = {});

  StatusOr<RollupResult> Rollup(const RollupQuery& query);

  uint64_t cache_hits() const;
  uint64_t cache_misses() const;
  size_t cache_size() const;

 private:
  StatusOr<RollupResult> Compute(const RollupQuery& query,
                                 uint64_t epoch) const;

  const SnapshotHub* hub_;
  const detect::OlapCubeOptions cube_;

  mutable std::mutex mu_;
  /// Key = canonical query string; entries carry the epoch they were
  /// computed at and are stale once the hub moves past it.
  std::map<std::string, RollupResult> cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace hod::serve

#endif  // HOD_SERVE_QUERY_H_
