// Fig.-1 outlier-type injection semantics.

#include "sim/anomaly.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hod::sim {
namespace {

std::vector<double> Flat(size_t n) { return std::vector<double>(n, 10.0); }

TEST(Anomaly, TypeNamesMatchFigure1) {
  EXPECT_EQ(OutlierTypeName(OutlierType::kAdditive), "Additive Outlier");
  EXPECT_EQ(OutlierTypeName(OutlierType::kInnovative), "Innovative Outlier");
  EXPECT_EQ(OutlierTypeName(OutlierType::kTemporaryChange),
            "Temporary Change");
  EXPECT_EQ(OutlierTypeName(OutlierType::kLevelShift), "Level Shift");
  EXPECT_EQ(AllOutlierTypes().size(), 4u);
}

TEST(Anomaly, AdditiveAffectsSinglePoint) {
  std::vector<double> values = Flat(20);
  std::vector<uint8_t> labels;
  InjectionSpec spec{OutlierType::kAdditive, 7, 5.0, 0.7, 0.8};
  ASSERT_TRUE(Inject(spec, values, labels).ok());
  EXPECT_DOUBLE_EQ(values[7], 15.0);
  EXPECT_DOUBLE_EQ(values[6], 10.0);
  EXPECT_DOUBLE_EQ(values[8], 10.0);
  EXPECT_EQ(labels[7], 1);
  size_t labeled = 0;
  for (uint8_t l : labels) labeled += l;
  EXPECT_EQ(labeled, 1u);
}

TEST(Anomaly, InnovativeDecaysWithArCoefficient) {
  std::vector<double> values = Flat(20);
  std::vector<uint8_t> labels;
  InjectionSpec spec{OutlierType::kInnovative, 5, 4.0, 0.5, 0.8};
  ASSERT_TRUE(Inject(spec, values, labels).ok());
  EXPECT_DOUBLE_EQ(values[5], 14.0);
  EXPECT_DOUBLE_EQ(values[6], 12.0);
  EXPECT_DOUBLE_EQ(values[7], 11.0);
  // Decays toward the base level.
  EXPECT_NEAR(values[15], 10.0, 0.01);
  // Labels cover the region where the effect exceeds 30% of peak.
  EXPECT_EQ(labels[5], 1);
  EXPECT_EQ(labels[6], 1);
  EXPECT_EQ(labels[10], 0);
}

TEST(Anomaly, TemporaryChangeUsesDecayParameter) {
  std::vector<double> values = Flat(20);
  std::vector<uint8_t> labels;
  InjectionSpec spec{OutlierType::kTemporaryChange, 3, 2.0, 0.7, 0.5};
  ASSERT_TRUE(Inject(spec, values, labels).ok());
  EXPECT_DOUBLE_EQ(values[3], 12.0);
  EXPECT_DOUBLE_EQ(values[4], 11.0);
  EXPECT_DOUBLE_EQ(values[5], 10.5);
}

TEST(Anomaly, LevelShiftIsPermanent) {
  std::vector<double> values = Flat(20);
  std::vector<uint8_t> labels;
  InjectionSpec spec{OutlierType::kLevelShift, 10, -3.0, 0.7, 0.8};
  ASSERT_TRUE(Inject(spec, values, labels).ok());
  EXPECT_DOUBLE_EQ(values[9], 10.0);
  EXPECT_DOUBLE_EQ(values[10], 7.0);
  EXPECT_DOUBLE_EQ(values[19], 7.0);
  // Only the transition is labeled.
  EXPECT_EQ(labels[10], 1);
  EXPECT_EQ(labels[19], 0);
}

TEST(Anomaly, LevelShiftLabelSpanConfigurable) {
  std::vector<double> values = Flat(30);
  std::vector<uint8_t> labels;
  InjectionSpec spec{OutlierType::kLevelShift, 5, 1.0, 0.7, 0.8};
  InjectionLabeling labeling;
  labeling.level_shift_label_span = 3;
  ASSERT_TRUE(Inject(spec, values, labels, labeling).ok());
  EXPECT_EQ(labels[5], 1);
  EXPECT_EQ(labels[7], 1);
  EXPECT_EQ(labels[8], 0);
}

TEST(Anomaly, NegativeMagnitudeLabelsToo) {
  std::vector<double> values = Flat(20);
  std::vector<uint8_t> labels;
  InjectionSpec spec{OutlierType::kTemporaryChange, 5, -6.0, 0.7, 0.8};
  ASSERT_TRUE(Inject(spec, values, labels).ok());
  EXPECT_EQ(labels[5], 1);
  EXPECT_LT(values[5], 10.0);
}

TEST(Anomaly, OutOfRangePositionRejected) {
  std::vector<double> values = Flat(5);
  std::vector<uint8_t> labels;
  InjectionSpec spec{OutlierType::kAdditive, 5, 1.0, 0.7, 0.8};
  EXPECT_FALSE(Inject(spec, values, labels).ok());
}

TEST(Anomaly, LabelsResizedWhenShort) {
  std::vector<double> values = Flat(10);
  std::vector<uint8_t> labels;  // empty
  InjectionSpec spec{OutlierType::kAdditive, 2, 1.0, 0.7, 0.8};
  ASSERT_TRUE(Inject(spec, values, labels).ok());
  EXPECT_EQ(labels.size(), 10u);
}

}  // namespace
}  // namespace hod::sim
