// E7 — Throughput microbenchmarks (google-benchmark), plus the
// `micro_compare` mode used by CI.
//
// The paper's Sections 1/5 flag calculation speed as a core requirement
// for production-level outlier detection. These microbenchmarks time the
// detectors used at each level and the Algorithm-1 machinery so regression
// in scoring cost is visible.
//
// `bench_micro_throughput micro_compare` times the per-sample scoring
// cost of the shard hot path both ways: the retired per-sample layout
// (std::map<sensor_id, OnlineMonitor> lookup + scalar Push — what
// ShardedScorer::ScoreOne did) against the batched SoA path
// (BatchMonitorBank::PushBatch through the util/simd.h kernels, lane
// lookup included), on identical streams. Each leg is timed in equal
// chunks and the fastest chunk is reported (min-of-chunks screens out
// scheduler noise on shared CI boxes). It verifies the two legs end
// bit-identical (scores, counters, saved state) and writes
// BENCH_MICRO.json; the CI gate fails below the 2x speedup floor.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/batch_monitor.h"
#include "core/hierarchical_detector.h"
#include "core/monitor.h"
#include "detect/ar_detector.h"
#include "detect/em_detector.h"
#include "detect/fsa_detector.h"
#include "detect/window_db.h"
#include "sim/datasets.h"
#include "sim/plant.h"
#include "timeseries/sax.h"
#include "timeseries/spectral.h"
#include "util/rng.h"
#include "util/simd.h"

namespace hod {
namespace {

void BM_ArScore(benchmark::State& state) {
  sim::SeriesDatasetOptions options;
  options.length = static_cast<size_t>(state.range(0));
  options.train_series = 2;
  options.test_series = 1;
  auto dataset = sim::GenerateSeriesDataset(options).value();
  detect::ArDetector detector;
  (void)detector.Train(dataset.train);
  for (auto _ : state) {
    auto scores = detector.Score(dataset.test[0]);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(options.length));
}
BENCHMARK(BM_ArScore)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EmScore(benchmark::State& state) {
  sim::PointDatasetOptions options;
  options.train_size = 512;
  options.test_size = static_cast<size_t>(state.range(0));
  options.dim = 8;
  auto dataset = sim::GeneratePointDataset(options).value();
  detect::EmDetector detector;
  (void)detector.Train(dataset.train);
  for (auto _ : state) {
    auto scores = detector.Score(dataset.test);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EmScore)->Arg(128)->Arg(1024);

void BM_FsaScore(benchmark::State& state) {
  sim::SequenceDatasetOptions options;
  options.length = static_cast<size_t>(state.range(0));
  options.train_sequences = 4;
  options.test_sequences = 1;
  auto dataset = sim::GenerateSequenceDataset(options).value();
  detect::FsaDetector detector;
  (void)detector.Train(dataset.train);
  for (auto _ : state) {
    auto scores = detector.Score(dataset.test[0]);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FsaScore)->Arg(256)->Arg(1024);

void BM_WindowDbScore(benchmark::State& state) {
  sim::SequenceDatasetOptions options;
  options.length = static_cast<size_t>(state.range(0));
  options.train_sequences = 4;
  options.test_sequences = 1;
  auto dataset = sim::GenerateSequenceDataset(options).value();
  detect::WindowDbDetector detector;
  (void)detector.Train(dataset.train);
  for (auto _ : state) {
    auto scores = detector.Score(dataset.test[0]);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WindowDbScore)->Arg(256)->Arg(1024);

void BM_SaxDiscretize(benchmark::State& state) {
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(0.1 * static_cast<double>(i));
  }
  for (auto _ : state) {
    auto sax = ts::ToSax(values, ts::SaxOptions{0, 5});
    benchmark::DoNotOptimize(sax);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SaxDiscretize)->Arg(1024)->Arg(8192);

void BM_Fft(benchmark::State& state) {
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(0.1 * static_cast<double>(i));
  }
  for (auto _ : state) {
    auto spectrum = ts::PowerSpectrum(values);
    benchmark::DoNotOptimize(spectrum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(8192);

void BM_Algorithm1PhaseQuery(benchmark::State& state) {
  sim::PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 2;
  options.jobs_per_machine = 8;
  options.seed = 7;
  auto plant = sim::BuildPlant(options, sim::ScenarioOptions{}).value();
  core::HierarchicalDetector detector(&plant.production);
  const auto& machine = plant.production.lines[0].machines[0];
  core::PhaseQuery query{machine.id, machine.jobs[0].id, "printing",
                         machine.id + ".bed_temp_a"};
  // Warm the caches once: steady-state latency is the relevant number.
  (void)detector.FindPhaseOutliers(query);
  for (auto _ : state) {
    auto report = detector.FindPhaseOutliers(query);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_Algorithm1PhaseQuery);

void BM_PlantBuild(benchmark::State& state) {
  sim::PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 2;
  options.jobs_per_machine = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto plant = sim::BuildPlant(options, sim::ScenarioOptions{});
    benchmark::DoNotOptimize(plant);
  }
}
BENCHMARK(BM_PlantBuild)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------
// micro_compare: scalar per-sample path vs batched SoA path.

struct MicroCompareConfig {
  size_t sensors = 1024;    ///< a realistically-populated shard
  size_t batch = 64;        ///< the scorer's max_batch default
  size_t rounds = 2000;     ///< timed samples per sensor
  size_t chunks = 8;        ///< timing chunks; min-of-chunks is reported
};

/// Sensor ids shaped like the router's (shared prefixes make the retired
/// std::map's string comparisons realistically expensive).
std::vector<std::string> SensorNames(size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    names.push_back("plant0.line" + std::to_string(i % 4) + ".machine" +
                    std::to_string(i % 16) + ".sensor_" + std::to_string(i));
  }
  return names;
}

/// Per-sensor streams: warmup plus `rounds` AR(1)-ish samples with rare
/// spikes (the common production mix — mostly quiet, EWMA active). The
/// warmup segment stays spike-free: monitors warm on healthy data, and a
/// spike inside the fit window can yield an unstable AR model whose
/// predictions diverge (identically on both legs, but NaN scores defeat
/// the `==` parity checksum).
std::vector<std::vector<double>> SensorStreams(const MicroCompareConfig& cfg,
                                               size_t warmup) {
  std::vector<std::vector<double>> streams(cfg.sensors);
  for (size_t s = 0; s < cfg.sensors; ++s) {
    Rng rng(1000 + s);
    double noise = 0.0;
    streams[s].reserve(warmup + cfg.rounds);
    for (size_t i = 0; i < warmup + cfg.rounds; ++i) {
      noise = 0.6 * noise + rng.Gaussian(0.0, 0.4);
      double v = 40.0 + static_cast<double>(s % 7) + noise;
      if (i >= warmup && rng.NextBernoulli(0.001)) v += 20.0;  // rare spike
      streams[s].push_back(v);
    }
  }
  return streams;
}

bool StatesIdentical(const core::OnlineMonitorState& a,
                     const core::OnlineMonitorState& b) {
  return a.recent == b.recent && a.phi == b.phi &&
         a.intercept == b.intercept && a.residual_sigma == b.residual_sigma &&
         a.model_ready == b.model_ready && a.alarm == b.alarm &&
         a.above_streak == b.above_streak && a.below_streak == b.below_streak &&
         a.samples_seen == b.samples_seen &&
         a.alarms_raised == b.alarms_raised;
}

int RunMicroCompare() {
  const MicroCompareConfig cfg;
  core::OnlineMonitorOptions options;
  const size_t warmup = options.warmup;
  const std::vector<std::string> names = SensorNames(cfg.sensors);
  const std::vector<std::vector<double>> streams = SensorStreams(cfg, warmup);
  const size_t timed_samples = cfg.sensors * cfg.rounds;
  using Clock = std::chrono::steady_clock;

  // Leg 1 — the retired hot path: string-keyed map lookup + scalar Push
  // per sample, in the round-robin arrival order the shard queue yields.
  std::map<std::string, core::OnlineMonitor> monitors;
  for (size_t s = 0; s < cfg.sensors; ++s) {
    monitors.emplace(names[s], core::OnlineMonitor(options));
  }
  for (size_t i = 0; i < warmup; ++i) {
    for (size_t s = 0; s < cfg.sensors; ++s) {
      (void)monitors.find(names[s])->second.Push(streams[s][i]);
    }
  }
  // Both legs time the same `rounds` in `chunks` equal slices and report
  // the fastest slice: min-of-chunks screens out scheduler noise on a
  // shared box without changing what either leg computes.
  const size_t rounds_per_chunk = cfg.rounds / cfg.chunks;
  const double chunk_samples =
      static_cast<double>(rounds_per_chunk * cfg.sensors);
  double scalar_checksum = 0.0;
  double scalar_ns = 0.0;
  for (size_t c = 0; c < cfg.chunks; ++c) {
    const auto chunk_start = Clock::now();
    for (size_t i = c * rounds_per_chunk; i < (c + 1) * rounds_per_chunk;
         ++i) {
      for (size_t s = 0; s < cfg.sensors; ++s) {
        auto it = monitors.find(names[s]);
        auto update = it->second.Push(streams[s][warmup + i]);
        scalar_checksum += update.value().score;
      }
    }
    const double chunk_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - chunk_start)
            .count() /
        chunk_samples;
    scalar_ns = c == 0 ? chunk_ns : std::min(scalar_ns, chunk_ns);
  }

  // Leg 2 — the batched path: lane lookup + one PushBatch per micro-batch
  // of `cfg.batch` distinct sensors (what ProcessBatch drains).
  core::BatchMonitorBank bank(options);
  for (size_t s = 0; s < cfg.sensors; ++s) {
    (void)bank.AddSensor(names[s]);
  }
  std::vector<size_t> lanes(cfg.batch);
  std::vector<double> values(cfg.batch);
  std::vector<core::MonitorUpdate> updates(cfg.batch);
  std::vector<unsigned char> scored(cfg.batch);
  // `sink` accumulates per sample in the same order as the scalar leg, so
  // bit-identical scores give a bit-identical checksum.
  const auto feed_round = [&](size_t i, double& sink) {
    for (size_t base = 0; base < cfg.sensors; base += cfg.batch) {
      const size_t n = std::min(cfg.batch, cfg.sensors - base);
      for (size_t j = 0; j < n; ++j) {
        lanes[j] = bank.IndexOf(names[base + j]);
        values[j] = streams[base + j][i];
      }
      bank.PushBatch(lanes.data(), values.data(), n, updates.data(),
                     scored.data());
      for (size_t j = 0; j < n; ++j) sink += updates[j].score;
    }
  };
  double warmup_sink = 0.0;
  for (size_t i = 0; i < warmup; ++i) feed_round(i, warmup_sink);
  double batched_checksum = 0.0;
  double batched_ns = 0.0;
  for (size_t c = 0; c < cfg.chunks; ++c) {
    const auto chunk_start = Clock::now();
    for (size_t i = c * rounds_per_chunk; i < (c + 1) * rounds_per_chunk;
         ++i) {
      feed_round(warmup + i, batched_checksum);
    }
    const double chunk_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - chunk_start)
            .count() /
        chunk_samples;
    batched_ns = c == 0 ? chunk_ns : std::min(batched_ns, chunk_ns);
  }

  // Parity: both legs scored the identical stream, so every monitor must
  // end in bit-identical state (and the score sums, accumulated in the
  // same order, match exactly).
  bool parity_ok = scalar_checksum == batched_checksum;
  for (size_t s = 0; s < cfg.sensors; ++s) {
    if (!StatesIdentical(monitors.find(names[s])->second.SaveState(),
                         bank.SaveState(bank.IndexOf(names[s])))) {
      parity_ok = false;
      break;
    }
  }

  const double speedup = batched_ns > 0.0 ? scalar_ns / batched_ns : 0.0;
  constexpr double kSpeedupFloor = 2.0;
  std::printf(
      "micro_compare: backend=%s sensors=%zu batch=%zu rounds=%zu "
      "(min of %zu chunks)\n",
      std::string(util::simd::BackendName()).c_str(), cfg.sensors, cfg.batch,
      cfg.rounds, cfg.chunks);
  std::printf("  scalar (map + per-sample Push): %8.1f ns/sample\n",
              scalar_ns);
  std::printf("  batched (SoA bank + SIMD):      %8.1f ns/sample\n",
              batched_ns);
  std::printf("  speedup: %.2fx (floor %.1fx), parity_ok: %s\n", speedup,
              kSpeedupFloor, parity_ok ? "true" : "false");

  std::ofstream json("BENCH_MICRO.json");
  json << "{\n"
       << "  \"experiment\": \"micro_scoring\",\n"
       << "  \"backend\": \"" << util::simd::BackendName() << "\",\n"
       << "  \"sensors\": " << cfg.sensors << ",\n"
       << "  \"batch\": " << cfg.batch << ",\n"
       << "  \"samples\": " << timed_samples << ",\n"
       << "  \"scalar_ns_per_sample\": " << scalar_ns << ",\n"
       << "  \"batched_ns_per_sample\": " << batched_ns << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"speedup_floor\": " << kSpeedupFloor << ",\n"
       << "  \"parity_ok\": " << (parity_ok ? "true" : "false") << "\n"
       << "}\n";
  json.close();
  std::printf("Wrote BENCH_MICRO.json\n");
  return parity_ok ? 0 : 1;
}

}  // namespace
}  // namespace hod

int main(int argc, char** argv) {
  if (argc > 1 && std::string_view(argv[1]) == "micro_compare") {
    return hod::RunMicroCompare();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
