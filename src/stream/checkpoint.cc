#include "stream/checkpoint.h"

#include "hierarchy/serialization.h"

namespace hod::stream {

namespace {

namespace bin = hierarchy::bin;

/// "HODC" little-endian + format version.
/// v2: StreamStatsSnapshot gained rejected_closed and forward_failed.
/// v3: OutlierFinding gained the escalated flag; StreamStatsSnapshot
///     gained the escalation and checkpoint counter block.
/// v4: space-axis layer — peer-group state, the quarantine-onset
///     correlation deque, and the open group outage; FindingKind gained
///     kPeerDrift and kGroupOutage; StreamStatsSnapshot gained the
///     peer_deviations / group_outages / group_outage_recoveries /
///     suppressed_sensor_faults counters.
/// v5: concept-shift layer — shift_enabled flag + BocpdOptions
///     fingerprint in the header, per-sensor BOCPD run-length posterior
///     and baseline-lifecycle fields (epoch / frozen / pending reset) in
///     the monitor state, the collector's concept-shift ring + total,
///     FindingKind gained kConceptShift, and StreamStatsSnapshot gained
///     concept_shifts / baseline_resets / baseline_resets_deferred.
///     v4 images still restore (new fields default to "layer off").
/// v6: read-side serving tier — StreamStatsSnapshot gained
///     snapshots_published. v4/v5 images still restore (counter resumes
///     at zero).
constexpr uint32_t kMagic = 0x43444F48u;
constexpr uint32_t kVersion = 6;
constexpr uint32_t kMinVersion = 4;

void WriteBool(std::ostream& os, bool value) {
  bin::WriteU8(os, value ? 1 : 0);
}

StatusOr<bool> ReadBool(std::istream& is) {
  HOD_ASSIGN_OR_RETURN(uint8_t value, bin::ReadU8(is));
  if (value > 1) return Status::InvalidArgument("bad bool byte");
  return value == 1;
}

void WriteLevel(std::ostream& os, hierarchy::ProductionLevel level) {
  bin::WriteU8(os, static_cast<uint8_t>(hierarchy::LevelValue(level)));
}

StatusOr<hierarchy::ProductionLevel> ReadLevel(std::istream& is) {
  HOD_ASSIGN_OR_RETURN(uint8_t value, bin::ReadU8(is));
  return hierarchy::LevelFromValue(static_cast<int>(value));
}

template <typename Enum>
StatusOr<Enum> ReadEnum(std::istream& is, uint8_t max_value,
                        const char* what) {
  HOD_ASSIGN_OR_RETURN(uint8_t value, bin::ReadU8(is));
  if (value > max_value) {
    return Status::InvalidArgument(std::string("out-of-range ") + what);
  }
  return static_cast<Enum>(value);
}

void WriteF64Vector(std::ostream& os, const std::vector<double>& values) {
  bin::WriteU32(os, static_cast<uint32_t>(values.size()));
  for (double value : values) bin::WriteF64(os, value);
}

StatusOr<std::vector<double>> ReadF64Vector(std::istream& is) {
  HOD_ASSIGN_OR_RETURN(uint32_t count, bin::ReadU32(is));
  if (count > (1u << 24)) {
    return Status::InvalidArgument("implausible vector length");
  }
  std::vector<double> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    HOD_ASSIGN_OR_RETURN(double value, bin::ReadF64(is));
    values.push_back(value);
  }
  return values;
}

void WriteU64Vector(std::ostream& os, const std::vector<uint64_t>& values) {
  bin::WriteU32(os, static_cast<uint32_t>(values.size()));
  for (uint64_t value : values) bin::WriteU64(os, value);
}

StatusOr<std::vector<uint64_t>> ReadU64Vector(std::istream& is) {
  HOD_ASSIGN_OR_RETURN(uint32_t count, bin::ReadU32(is));
  if (count > (1u << 24)) {
    return Status::InvalidArgument("implausible vector length");
  }
  std::vector<uint64_t> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    HOD_ASSIGN_OR_RETURN(uint64_t value, bin::ReadU64(is));
    values.push_back(value);
  }
  return values;
}

void WriteMonitorOptions(std::ostream& os,
                         const core::OnlineMonitorOptions& options) {
  bin::WriteU64(os, options.warmup);
  bin::WriteU64(os, options.ar_order);
  bin::WriteF64(os, options.threshold);
  bin::WriteU64(os, options.raise_after);
  bin::WriteU64(os, options.clear_after);
  bin::WriteF64(os, options.sigma_scale);
  bin::WriteF64(os, options.scale_forgetting);
}

Status ReadMonitorOptions(std::istream& is,
                          core::OnlineMonitorOptions& options) {
  HOD_ASSIGN_OR_RETURN(uint64_t warmup, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(uint64_t ar_order, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(options.threshold, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(uint64_t raise_after, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(uint64_t clear_after, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(options.sigma_scale, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(options.scale_forgetting, bin::ReadF64(is));
  options.warmup = static_cast<size_t>(warmup);
  options.ar_order = static_cast<size_t>(ar_order);
  options.raise_after = static_cast<size_t>(raise_after);
  options.clear_after = static_cast<size_t>(clear_after);
  return Status::Ok();
}

void WriteMonitorState(std::ostream& os,
                       const core::OnlineMonitorState& state) {
  WriteF64Vector(os, state.warmup_buffer);
  WriteF64Vector(os, state.recent);
  WriteF64Vector(os, state.phi);
  bin::WriteF64(os, state.intercept);
  bin::WriteF64(os, state.residual_sigma);
  WriteBool(os, state.model_ready);
  WriteBool(os, state.alarm);
  bin::WriteU64(os, state.above_streak);
  bin::WriteU64(os, state.below_streak);
  bin::WriteU64(os, state.samples_seen);
  bin::WriteU64(os, state.alarms_raised);
  // v5: baseline lifecycle.
  bin::WriteU64(os, state.baseline_epoch);
  WriteBool(os, state.frozen);
  bin::WriteU8(os, state.pending_reset);
  bin::WriteF64(os, state.pending_level);
  bin::WriteF64(os, state.pending_sigma);
  bin::WriteU64(os, state.pending_support);
}

Status ReadMonitorState(std::istream& is, uint32_t version,
                        core::OnlineMonitorState& state) {
  HOD_ASSIGN_OR_RETURN(state.warmup_buffer, ReadF64Vector(is));
  HOD_ASSIGN_OR_RETURN(state.recent, ReadF64Vector(is));
  HOD_ASSIGN_OR_RETURN(state.phi, ReadF64Vector(is));
  HOD_ASSIGN_OR_RETURN(state.intercept, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(state.residual_sigma, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(state.model_ready, ReadBool(is));
  HOD_ASSIGN_OR_RETURN(state.alarm, ReadBool(is));
  HOD_ASSIGN_OR_RETURN(state.above_streak, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(state.below_streak, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(state.samples_seen, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(state.alarms_raised, bin::ReadU64(is));
  if (version >= 5) {
    HOD_ASSIGN_OR_RETURN(state.baseline_epoch, bin::ReadU64(is));
    HOD_ASSIGN_OR_RETURN(state.frozen, ReadBool(is));
    HOD_ASSIGN_OR_RETURN(state.pending_reset, bin::ReadU8(is));
    if (state.pending_reset > 2) {
      return Status::InvalidArgument("bad pending-reset byte");
    }
    HOD_ASSIGN_OR_RETURN(state.pending_level, bin::ReadF64(is));
    HOD_ASSIGN_OR_RETURN(state.pending_sigma, bin::ReadF64(is));
    HOD_ASSIGN_OR_RETURN(state.pending_support, bin::ReadU64(is));
  }
  return Status::Ok();
}

void WriteBocpdOptions(std::ostream& os, const core::BocpdOptions& options) {
  bin::WriteF64(os, options.hazard_lambda);
  bin::WriteU64(os, options.max_run_length);
  bin::WriteU64(os, options.warmup);
  bin::WriteU64(os, options.min_run_for_shift);
  bin::WriteF64(os, options.shift_posterior);
  bin::WriteF64(os, options.min_magnitude_sigmas);
  bin::WriteU64(os, options.cooldown);
  bin::WriteF64(os, options.prior_kappa);
  bin::WriteF64(os, options.prior_alpha);
  bin::WriteF64(os, options.prior_beta);
  bin::WriteF64(os, options.prior_mean);
}

Status ReadBocpdOptions(std::istream& is, core::BocpdOptions& options) {
  HOD_ASSIGN_OR_RETURN(options.hazard_lambda, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(uint64_t max_run_length, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(options.warmup, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(uint64_t min_run_for_shift, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(options.shift_posterior, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(options.min_magnitude_sigmas, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(options.cooldown, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(options.prior_kappa, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(options.prior_alpha, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(options.prior_beta, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(options.prior_mean, bin::ReadF64(is));
  options.max_run_length = static_cast<size_t>(max_run_length);
  options.min_run_for_shift = static_cast<size_t>(min_run_for_shift);
  return Status::Ok();
}

void WriteBocpdState(std::ostream& os, const core::BocpdState& state) {
  WriteF64Vector(os, state.weight);
  WriteF64Vector(os, state.mu);
  WriteF64Vector(os, state.kappa);
  WriteF64Vector(os, state.alpha);
  WriteF64Vector(os, state.beta);
  WriteU64Vector(os, state.run_length);
  bin::WriteU64(os, state.samples_seen);
  bin::WriteU64(os, state.shifts_confirmed);
  bin::WriteU64(os, state.cooldown_left);
  WriteBool(os, state.prior_seeded);
  bin::WriteF64(os, state.prior_mean);
  bin::WriteF64(os, state.stable_mean);
  bin::WriteF64(os, state.stable_sigma);
  bin::WriteU64(os, state.stable_support);
}

Status ReadBocpdState(std::istream& is, core::BocpdState& state) {
  HOD_ASSIGN_OR_RETURN(state.weight, ReadF64Vector(is));
  HOD_ASSIGN_OR_RETURN(state.mu, ReadF64Vector(is));
  HOD_ASSIGN_OR_RETURN(state.kappa, ReadF64Vector(is));
  HOD_ASSIGN_OR_RETURN(state.alpha, ReadF64Vector(is));
  HOD_ASSIGN_OR_RETURN(state.beta, ReadF64Vector(is));
  HOD_ASSIGN_OR_RETURN(state.run_length, ReadU64Vector(is));
  HOD_ASSIGN_OR_RETURN(state.samples_seen, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(state.shifts_confirmed, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(state.cooldown_left, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(state.prior_seeded, ReadBool(is));
  HOD_ASSIGN_OR_RETURN(state.prior_mean, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(state.stable_mean, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(state.stable_sigma, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(state.stable_support, bin::ReadU64(is));
  return Status::Ok();
}

void WriteShiftEvent(std::ostream& os, const ConceptShiftEvent& shift) {
  bin::WriteString(os, shift.sensor_id);
  WriteLevel(os, shift.level);
  bin::WriteF64(os, shift.ts);
  bin::WriteF64(os, shift.before_mean);
  bin::WriteF64(os, shift.after_mean);
  bin::WriteF64(os, shift.magnitude_sigmas);
  bin::WriteF64(os, shift.evidence);
  bin::WriteU64(os, shift.run_length);
}

Status ReadShiftEvent(std::istream& is, ConceptShiftEvent& shift) {
  HOD_ASSIGN_OR_RETURN(shift.sensor_id, bin::ReadString(is));
  HOD_ASSIGN_OR_RETURN(shift.level, ReadLevel(is));
  HOD_ASSIGN_OR_RETURN(shift.ts, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(shift.before_mean, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(shift.after_mean, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(shift.magnitude_sigmas, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(shift.evidence, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(shift.run_length, bin::ReadU64(is));
  return Status::Ok();
}

void WriteHealthStatus(std::ostream& os, const SensorHealthStatus& status) {
  bin::WriteU8(os, static_cast<uint8_t>(status.state));
  bin::WriteU64(os, status.fault_evidence);
  bin::WriteU64(os, status.clean_streak);
  bin::WriteU64(os, status.flatline_run);
  WriteBool(os, status.has_last_value);
  bin::WriteF64(os, status.last_value);
  bin::WriteF64(os, status.last_seen_ts);
  bin::WriteF64(os, status.last_transition_ts);
  bin::WriteU8(os, static_cast<uint8_t>(status.last_reason));
  bin::WriteU64(os, status.quarantines);
}

Status ReadHealthStatus(std::istream& is, SensorHealthStatus& status) {
  HOD_ASSIGN_OR_RETURN(
      status.state,
      ReadEnum<SensorHealthState>(
          is, static_cast<uint8_t>(SensorHealthState::kRecovering),
          "health state"));
  HOD_ASSIGN_OR_RETURN(status.fault_evidence, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(status.clean_streak, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(status.flatline_run, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(status.has_last_value, ReadBool(is));
  HOD_ASSIGN_OR_RETURN(status.last_value, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(status.last_seen_ts, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(status.last_transition_ts, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(
      status.last_reason,
      ReadEnum<HealthSignal>(is, static_cast<uint8_t>(HealthSignal::kStale),
                             "health signal"));
  HOD_ASSIGN_OR_RETURN(status.quarantines, bin::ReadU64(is));
  return Status::Ok();
}

void WriteLevelState(std::ostream& os, const LevelOutlierState& level) {
  bin::WriteU64(os, level.outlier_samples);
  bin::WriteU64(os, level.alarms_raised);
  bin::WriteU64(os, level.alarms_cleared);
  bin::WriteU64(os, level.active_alarms);
  bin::WriteU64(os, level.sensor_faults);
  bin::WriteU64(os, level.quarantined_sensors);
  bin::WriteF64(os, level.peak_score);
  bin::WriteF64(os, level.last_outlier_ts);
}

Status ReadLevelState(std::istream& is, LevelOutlierState& level) {
  HOD_ASSIGN_OR_RETURN(level.outlier_samples, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(level.alarms_raised, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(level.alarms_cleared, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(level.active_alarms, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(level.sensor_faults, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(level.quarantined_sensors, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(level.peak_score, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(level.last_outlier_ts, bin::ReadF64(is));
  return Status::Ok();
}

void WriteFinding(std::ostream& os, const core::OutlierFinding& finding) {
  bin::WriteU8(os, static_cast<uint8_t>(finding.kind));
  WriteLevel(os, finding.origin.level);
  bin::WriteString(os, finding.origin.entity);
  bin::WriteU64(os, finding.origin.index);
  bin::WriteF64(os, finding.origin.time);
  bin::WriteF64(os, finding.origin.score);
  bin::WriteU32(os, static_cast<uint32_t>(finding.global_score));
  bin::WriteF64(os, finding.outlierness);
  bin::WriteF64(os, finding.support);
  bin::WriteU64(os, finding.corresponding_sensors);
  WriteBool(os, finding.measurement_error_warning);
  WriteBool(os, finding.escalated);
  bin::WriteU32(os, static_cast<uint32_t>(finding.confirmed_levels.size()));
  for (hierarchy::ProductionLevel level : finding.confirmed_levels) {
    WriteLevel(os, level);
  }
  bin::WriteU32(os, static_cast<uint32_t>(finding.warnings.size()));
  for (const std::string& warning : finding.warnings) {
    bin::WriteString(os, warning);
  }
}

Status ReadFinding(std::istream& is, core::OutlierFinding& finding) {
  HOD_ASSIGN_OR_RETURN(
      finding.kind,
      ReadEnum<core::FindingKind>(
          is, static_cast<uint8_t>(core::FindingKind::kConceptShift),
          "finding kind"));
  HOD_ASSIGN_OR_RETURN(finding.origin.level, ReadLevel(is));
  HOD_ASSIGN_OR_RETURN(finding.origin.entity, bin::ReadString(is));
  HOD_ASSIGN_OR_RETURN(uint64_t index, bin::ReadU64(is));
  finding.origin.index = static_cast<size_t>(index);
  HOD_ASSIGN_OR_RETURN(finding.origin.time, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(finding.origin.score, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(uint32_t global_score, bin::ReadU32(is));
  finding.global_score = static_cast<int>(global_score);
  HOD_ASSIGN_OR_RETURN(finding.outlierness, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(finding.support, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(uint64_t corresponding, bin::ReadU64(is));
  finding.corresponding_sensors = static_cast<size_t>(corresponding);
  HOD_ASSIGN_OR_RETURN(finding.measurement_error_warning, ReadBool(is));
  HOD_ASSIGN_OR_RETURN(finding.escalated, ReadBool(is));
  HOD_ASSIGN_OR_RETURN(uint32_t num_levels, bin::ReadU32(is));
  if (num_levels > 64) {
    return Status::InvalidArgument("implausible confirmed-level count");
  }
  finding.confirmed_levels.clear();
  for (uint32_t i = 0; i < num_levels; ++i) {
    HOD_ASSIGN_OR_RETURN(hierarchy::ProductionLevel level, ReadLevel(is));
    finding.confirmed_levels.push_back(level);
  }
  HOD_ASSIGN_OR_RETURN(uint32_t num_warnings, bin::ReadU32(is));
  if (num_warnings > (1u << 16)) {
    return Status::InvalidArgument("implausible warning count");
  }
  finding.warnings.clear();
  for (uint32_t i = 0; i < num_warnings; ++i) {
    HOD_ASSIGN_OR_RETURN(std::string warning, bin::ReadString(is));
    finding.warnings.push_back(std::move(warning));
  }
  return Status::Ok();
}

void WriteStats(std::ostream& os, const StreamStatsSnapshot& stats) {
  bin::WriteU64(os, stats.ingested);
  bin::WriteU64(os, stats.scored);
  bin::WriteU64(os, stats.dropped);
  bin::WriteU64(os, stats.rejected_queue_full);
  bin::WriteU64(os, stats.rejected_timeout);
  bin::WriteU64(os, stats.rejected_non_finite);
  bin::WriteU64(os, stats.rejected_unknown_sensor);
  bin::WriteU64(os, stats.rejected_level_mismatch);
  bin::WriteU64(os, stats.rejected_out_of_order);
  bin::WriteU64(os, stats.rejected_closed);
  bin::WriteU64(os, stats.alarms_raised);
  bin::WriteU64(os, stats.alarms_cleared);
  bin::WriteU64(os, stats.quarantined_samples);
  bin::WriteU64(os, stats.sensor_faults);
  bin::WriteU64(os, stats.sensor_recoveries);
  bin::WriteU64(os, stats.watchdog_stall_events);
  bin::WriteU64(os, stats.forward_failed);
  bin::WriteU64(os, stats.escalation_runs);
  bin::WriteU64(os, stats.escalation_entities);
  bin::WriteU64(os, stats.escalation_findings);
  bin::WriteU64(os, stats.escalation_unresolved);
  bin::WriteU64(os, stats.escalation_cache_hits);
  bin::WriteU64(os, stats.escalation_cache_misses);
  bin::WriteU64(os, stats.escalation_latency_us);
  bin::WriteU64(os, stats.checkpoints_written);
  bin::WriteU64(os, stats.checkpoint_failures);
  bin::WriteU64(os, stats.peer_deviations);
  bin::WriteU64(os, stats.group_outages);
  bin::WriteU64(os, stats.group_outage_recoveries);
  bin::WriteU64(os, stats.suppressed_sensor_faults);
  // v5: concept-shift counters.
  bin::WriteU64(os, stats.concept_shifts);
  bin::WriteU64(os, stats.baseline_resets);
  bin::WriteU64(os, stats.baseline_resets_deferred);
  // v6: serving-tier counter.
  bin::WriteU64(os, stats.snapshots_published);
  for (uint64_t count : stats.level_dropped) bin::WriteU64(os, count);
  for (uint64_t count : stats.level_rejected) bin::WriteU64(os, count);
  for (uint64_t count : stats.level_quarantined) bin::WriteU64(os, count);
  for (uint64_t count : stats.batch_size_histogram) bin::WriteU64(os, count);
}

Status ReadStats(std::istream& is, uint32_t version,
                 StreamStatsSnapshot& stats) {
  HOD_ASSIGN_OR_RETURN(stats.ingested, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.scored, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.dropped, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.rejected_queue_full, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.rejected_timeout, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.rejected_non_finite, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.rejected_unknown_sensor, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.rejected_level_mismatch, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.rejected_out_of_order, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.rejected_closed, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.alarms_raised, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.alarms_cleared, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.quarantined_samples, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.sensor_faults, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.sensor_recoveries, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.watchdog_stall_events, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.forward_failed, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.escalation_runs, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.escalation_entities, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.escalation_findings, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.escalation_unresolved, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.escalation_cache_hits, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.escalation_cache_misses, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.escalation_latency_us, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.checkpoints_written, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.checkpoint_failures, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.peer_deviations, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.group_outages, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.group_outage_recoveries, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(stats.suppressed_sensor_faults, bin::ReadU64(is));
  if (version >= 5) {
    HOD_ASSIGN_OR_RETURN(stats.concept_shifts, bin::ReadU64(is));
    HOD_ASSIGN_OR_RETURN(stats.baseline_resets, bin::ReadU64(is));
    HOD_ASSIGN_OR_RETURN(stats.baseline_resets_deferred, bin::ReadU64(is));
  }
  if (version >= 6) {
    HOD_ASSIGN_OR_RETURN(stats.snapshots_published, bin::ReadU64(is));
  }
  for (uint64_t& count : stats.level_dropped) {
    HOD_ASSIGN_OR_RETURN(count, bin::ReadU64(is));
  }
  for (uint64_t& count : stats.level_rejected) {
    HOD_ASSIGN_OR_RETURN(count, bin::ReadU64(is));
  }
  for (uint64_t& count : stats.level_quarantined) {
    HOD_ASSIGN_OR_RETURN(count, bin::ReadU64(is));
  }
  for (uint64_t& count : stats.batch_size_histogram) {
    HOD_ASSIGN_OR_RETURN(count, bin::ReadU64(is));
  }
  return Status::Ok();
}

constexpr uint8_t kMaxPolicy =
    static_cast<uint8_t>(BackpressurePolicy::kBlockWithTimeout);

void WriteQuarantined(std::ostream& os, const QuarantinedSensor& sensor) {
  bin::WriteString(os, sensor.sensor_id);
  WriteLevel(os, sensor.level);
  bin::WriteF64(os, sensor.since);
  bin::WriteU8(os, static_cast<uint8_t>(sensor.reason));
}

Status ReadQuarantined(std::istream& is, QuarantinedSensor& sensor) {
  HOD_ASSIGN_OR_RETURN(sensor.sensor_id, bin::ReadString(is));
  HOD_ASSIGN_OR_RETURN(sensor.level, ReadLevel(is));
  HOD_ASSIGN_OR_RETURN(sensor.since, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(
      sensor.reason,
      ReadEnum<HealthSignal>(is, static_cast<uint8_t>(HealthSignal::kStale),
                             "health signal"));
  return Status::Ok();
}

void WritePeerMember(std::ostream& os, const PeerMemberState& member) {
  bin::WriteString(os, member.sensor_id);
  WriteBool(os, member.has_last);
  bin::WriteF64(os, member.last_ts);
  bin::WriteF64(os, member.last_value);
  WriteF64Vector(os, member.ring_ts);
  WriteF64Vector(os, member.ring_residual);
  bin::WriteU64(os, member.breach_streak);
  bin::WriteU64(os, member.calm_streak);
  WriteBool(os, member.fired);
  bin::WriteU64(os, member.deviations);
}

Status ReadPeerMember(std::istream& is, PeerMemberState& member) {
  HOD_ASSIGN_OR_RETURN(member.sensor_id, bin::ReadString(is));
  HOD_ASSIGN_OR_RETURN(member.has_last, ReadBool(is));
  HOD_ASSIGN_OR_RETURN(member.last_ts, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(member.last_value, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(member.ring_ts, ReadF64Vector(is));
  HOD_ASSIGN_OR_RETURN(member.ring_residual, ReadF64Vector(is));
  if (member.ring_ts.size() != member.ring_residual.size()) {
    return Status::InvalidArgument("peer ring length mismatch");
  }
  HOD_ASSIGN_OR_RETURN(member.breach_streak, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(member.calm_streak, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(member.fired, ReadBool(is));
  HOD_ASSIGN_OR_RETURN(member.deviations, bin::ReadU64(is));
  return Status::Ok();
}

}  // namespace

Status WriteEngineCheckpoint(const EngineCheckpoint& checkpoint,
                             std::ostream& os) {
  bin::WriteU32(os, kMagic);
  bin::WriteU32(os, kVersion);
  WriteMonitorOptions(os, checkpoint.monitor);
  bin::WriteF64(os, checkpoint.out_of_order_tolerance);
  WriteBool(os, checkpoint.shift_enabled);
  WriteBocpdOptions(os, checkpoint.bocpd);

  bin::WriteU32(os, static_cast<uint32_t>(checkpoint.sensors.size()));
  for (const EngineCheckpoint::SensorState& sensor : checkpoint.sensors) {
    bin::WriteString(os, sensor.sensor_id);
    WriteLevel(os, sensor.level);
    WriteBool(os, sensor.has_policy);
    bin::WriteU8(os, static_cast<uint8_t>(sensor.policy));
    bin::WriteF64(os, sensor.frontier);
    WriteHealthStatus(os, sensor.health);
    WriteMonitorState(os, sensor.monitor);
    WriteBool(os, sensor.has_bocpd);
    if (sensor.has_bocpd) WriteBocpdState(os, sensor.bocpd);
  }

  for (const LevelOutlierState& level : checkpoint.levels) {
    WriteLevelState(os, level);
  }
  bin::WriteU32(os, static_cast<uint32_t>(checkpoint.active_alarms.size()));
  for (const ActiveAlarm& alarm : checkpoint.active_alarms) {
    bin::WriteString(os, alarm.sensor_id);
    WriteLevel(os, alarm.level);
    bin::WriteF64(os, alarm.since);
    bin::WriteF64(os, alarm.peak_score);
  }
  bin::WriteU32(os, static_cast<uint32_t>(checkpoint.quarantined.size()));
  for (const QuarantinedSensor& sensor : checkpoint.quarantined) {
    bin::WriteString(os, sensor.sensor_id);
    WriteLevel(os, sensor.level);
    bin::WriteF64(os, sensor.since);
    bin::WriteU8(os, static_cast<uint8_t>(sensor.reason));
  }
  bin::WriteU64(os, checkpoint.events_seen);
  bin::WriteU64(os, checkpoint.events_at_last_snapshot);
  bin::WriteU64(os, checkpoint.next_sequence);

  bin::WriteU32(os, static_cast<uint32_t>(checkpoint.peer_groups.size()));
  for (const PeerGroupState& group : checkpoint.peer_groups) {
    bin::WriteString(os, group.group_id);
    bin::WriteU32(os, static_cast<uint32_t>(group.members.size()));
    for (const PeerMemberState& member : group.members) {
      WritePeerMember(os, member);
    }
  }
  bin::WriteU32(os, static_cast<uint32_t>(checkpoint.pending_faults.size()));
  for (const QuarantinedSensor& sensor : checkpoint.pending_faults) {
    WriteQuarantined(os, sensor);
  }
  WriteBool(os, checkpoint.outage_active);
  bin::WriteF64(os, checkpoint.outage_since);
  bin::WriteU32(os, static_cast<uint32_t>(checkpoint.outage_members.size()));
  for (const std::string& member : checkpoint.outage_members) {
    bin::WriteString(os, member);
  }
  bin::WriteF64(os, checkpoint.collector_frontier);

  bin::WriteU32(os, static_cast<uint32_t>(checkpoint.recent_shifts.size()));
  for (const ConceptShiftEvent& shift : checkpoint.recent_shifts) {
    WriteShiftEvent(os, shift);
  }
  bin::WriteU64(os, checkpoint.concept_shifts_total);

  bin::WriteU32(os, static_cast<uint32_t>(checkpoint.findings.size()));
  for (const core::OutlierFinding& finding : checkpoint.findings) {
    WriteFinding(os, finding);
  }

  WriteStats(os, checkpoint.stats);
  if (!os.good()) return Status::Internal("checkpoint stream write failed");
  return Status::Ok();
}

StatusOr<EngineCheckpoint> ReadEngineCheckpoint(std::istream& is) {
  HOD_ASSIGN_OR_RETURN(uint32_t magic, bin::ReadU32(is));
  if (magic != kMagic) {
    return Status::InvalidArgument("not an engine checkpoint (bad magic)");
  }
  HOD_ASSIGN_OR_RETURN(uint32_t version, bin::ReadU32(is));
  if (version < kMinVersion || version > kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  EngineCheckpoint checkpoint;
  HOD_RETURN_IF_ERROR(ReadMonitorOptions(is, checkpoint.monitor));
  HOD_ASSIGN_OR_RETURN(checkpoint.out_of_order_tolerance, bin::ReadF64(is));
  if (version >= 5) {
    HOD_ASSIGN_OR_RETURN(checkpoint.shift_enabled, ReadBool(is));
    HOD_RETURN_IF_ERROR(ReadBocpdOptions(is, checkpoint.bocpd));
  }

  HOD_ASSIGN_OR_RETURN(uint32_t num_sensors, bin::ReadU32(is));
  if (num_sensors > (1u << 22)) {
    return Status::InvalidArgument("implausible sensor count");
  }
  checkpoint.sensors.reserve(num_sensors);
  for (uint32_t i = 0; i < num_sensors; ++i) {
    EngineCheckpoint::SensorState sensor;
    HOD_ASSIGN_OR_RETURN(sensor.sensor_id, bin::ReadString(is));
    HOD_ASSIGN_OR_RETURN(sensor.level, ReadLevel(is));
    HOD_ASSIGN_OR_RETURN(sensor.has_policy, ReadBool(is));
    HOD_ASSIGN_OR_RETURN(
        sensor.policy,
        ReadEnum<BackpressurePolicy>(is, kMaxPolicy, "backpressure policy"));
    HOD_ASSIGN_OR_RETURN(sensor.frontier, bin::ReadF64(is));
    HOD_RETURN_IF_ERROR(ReadHealthStatus(is, sensor.health));
    sensor.health.sensor_id = sensor.sensor_id;
    sensor.health.level = sensor.level;
    HOD_RETURN_IF_ERROR(ReadMonitorState(is, version, sensor.monitor));
    if (version >= 5) {
      HOD_ASSIGN_OR_RETURN(sensor.has_bocpd, ReadBool(is));
      if (sensor.has_bocpd) {
        HOD_RETURN_IF_ERROR(ReadBocpdState(is, sensor.bocpd));
      }
    }
    checkpoint.sensors.push_back(std::move(sensor));
  }

  for (LevelOutlierState& level : checkpoint.levels) {
    HOD_RETURN_IF_ERROR(ReadLevelState(is, level));
  }
  HOD_ASSIGN_OR_RETURN(uint32_t num_alarms, bin::ReadU32(is));
  if (num_alarms > (1u << 22)) {
    return Status::InvalidArgument("implausible alarm count");
  }
  checkpoint.active_alarms.reserve(num_alarms);
  for (uint32_t i = 0; i < num_alarms; ++i) {
    ActiveAlarm alarm;
    HOD_ASSIGN_OR_RETURN(alarm.sensor_id, bin::ReadString(is));
    HOD_ASSIGN_OR_RETURN(alarm.level, ReadLevel(is));
    HOD_ASSIGN_OR_RETURN(alarm.since, bin::ReadF64(is));
    HOD_ASSIGN_OR_RETURN(alarm.peak_score, bin::ReadF64(is));
    checkpoint.active_alarms.push_back(std::move(alarm));
  }
  HOD_ASSIGN_OR_RETURN(uint32_t num_quarantined, bin::ReadU32(is));
  if (num_quarantined > (1u << 22)) {
    return Status::InvalidArgument("implausible quarantine count");
  }
  checkpoint.quarantined.reserve(num_quarantined);
  for (uint32_t i = 0; i < num_quarantined; ++i) {
    QuarantinedSensor sensor;
    HOD_ASSIGN_OR_RETURN(sensor.sensor_id, bin::ReadString(is));
    HOD_ASSIGN_OR_RETURN(sensor.level, ReadLevel(is));
    HOD_ASSIGN_OR_RETURN(sensor.since, bin::ReadF64(is));
    HOD_ASSIGN_OR_RETURN(
        sensor.reason,
        ReadEnum<HealthSignal>(is, static_cast<uint8_t>(HealthSignal::kStale),
                               "health signal"));
    checkpoint.quarantined.push_back(std::move(sensor));
  }
  HOD_ASSIGN_OR_RETURN(checkpoint.events_seen, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(checkpoint.events_at_last_snapshot, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(checkpoint.next_sequence, bin::ReadU64(is));

  HOD_ASSIGN_OR_RETURN(uint32_t num_groups, bin::ReadU32(is));
  if (num_groups > (1u << 20)) {
    return Status::InvalidArgument("implausible peer-group count");
  }
  checkpoint.peer_groups.reserve(num_groups);
  for (uint32_t i = 0; i < num_groups; ++i) {
    PeerGroupState group;
    HOD_ASSIGN_OR_RETURN(group.group_id, bin::ReadString(is));
    HOD_ASSIGN_OR_RETURN(uint32_t num_members, bin::ReadU32(is));
    if (num_members > (1u << 20)) {
      return Status::InvalidArgument("implausible peer-member count");
    }
    group.members.resize(num_members);
    for (uint32_t j = 0; j < num_members; ++j) {
      HOD_RETURN_IF_ERROR(ReadPeerMember(is, group.members[j]));
    }
    checkpoint.peer_groups.push_back(std::move(group));
  }
  HOD_ASSIGN_OR_RETURN(uint32_t num_pending, bin::ReadU32(is));
  if (num_pending > (1u << 22)) {
    return Status::InvalidArgument("implausible pending-fault count");
  }
  checkpoint.pending_faults.resize(num_pending);
  for (uint32_t i = 0; i < num_pending; ++i) {
    HOD_RETURN_IF_ERROR(ReadQuarantined(is, checkpoint.pending_faults[i]));
  }
  HOD_ASSIGN_OR_RETURN(checkpoint.outage_active, ReadBool(is));
  HOD_ASSIGN_OR_RETURN(checkpoint.outage_since, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(uint32_t num_outage_members, bin::ReadU32(is));
  if (num_outage_members > (1u << 22)) {
    return Status::InvalidArgument("implausible outage-member count");
  }
  checkpoint.outage_members.reserve(num_outage_members);
  for (uint32_t i = 0; i < num_outage_members; ++i) {
    HOD_ASSIGN_OR_RETURN(std::string member, bin::ReadString(is));
    checkpoint.outage_members.push_back(std::move(member));
  }
  HOD_ASSIGN_OR_RETURN(checkpoint.collector_frontier, bin::ReadF64(is));

  if (version >= 5) {
    HOD_ASSIGN_OR_RETURN(uint32_t num_shifts, bin::ReadU32(is));
    if (num_shifts > (1u << 20)) {
      return Status::InvalidArgument("implausible shift count");
    }
    checkpoint.recent_shifts.resize(num_shifts);
    for (uint32_t i = 0; i < num_shifts; ++i) {
      HOD_RETURN_IF_ERROR(ReadShiftEvent(is, checkpoint.recent_shifts[i]));
    }
    HOD_ASSIGN_OR_RETURN(checkpoint.concept_shifts_total, bin::ReadU64(is));
  }

  HOD_ASSIGN_OR_RETURN(uint32_t num_findings, bin::ReadU32(is));
  if (num_findings > (1u << 24)) {
    return Status::InvalidArgument("implausible finding count");
  }
  checkpoint.findings.resize(num_findings);
  for (uint32_t i = 0; i < num_findings; ++i) {
    HOD_RETURN_IF_ERROR(ReadFinding(is, checkpoint.findings[i]));
  }

  HOD_RETURN_IF_ERROR(ReadStats(is, version, checkpoint.stats));
  return checkpoint;
}

}  // namespace hod::stream
