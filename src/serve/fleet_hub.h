#ifndef HOD_SERVE_FLEET_HUB_H_
#define HOD_SERVE_FLEET_HUB_H_

#include <cstdint>
#include <optional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "detect/olap_cube.h"
#include "serve/hub.h"
#include "serve/query.h"
#include "util/statusor.h"

namespace hod::serve {

/// One cell of a fleet-wide roll-up: plant × level × time bucket.
struct FleetRollupCell {
  std::string plant_id;
  RollupCell cell;
};

struct FleetRollupResult {
  std::vector<FleetRollupCell> cells;
  uint64_t version = 0;  ///< fleet epoch (sum of plant publish epochs)
  size_t cube_cells = 0;
};

/// The fleet-level serving tier: one SnapshotHub per plant, a merged
/// alert board over every plant's latest view, and cross-plant OLAP
/// roll-ups with dims = plant × level × bucket. FleetManager owns one of
/// these when serving is enabled and routes each plant engine's
/// snapshot_sink into the matching per-plant hub.
///
/// Thread-safe. Plant hubs are created/removed under the admin lock;
/// Publish traffic goes straight to the per-plant hub (no fleet lock).
class FleetHub {
 public:
  explicit FleetHub(SnapshotHubOptions per_plant = {});

  /// Creates (or returns) the hub for `plant_id`. The pointer stays valid
  /// until RemovePlant.
  SnapshotHub* AddPlant(const std::string& plant_id);
  SnapshotHub* Hub(const std::string& plant_id) const;
  /// Drops the plant's hub. The plant engine must already be stopped: its
  /// snapshot_sink must never fire again.
  void RemovePlant(const std::string& plant_id);
  std::vector<std::string> Plants() const;

  /// Monotone fleet version: bumps whenever any plant processes a
  /// publish. Poll it to drive a merged-board subscription cheaply.
  uint64_t Version() const;

  struct BoardEntry {
    std::string plant_id;
    stream::ActiveAlarm alarm;
  };
  struct Board {
    uint64_t version = 0;
    std::vector<BoardEntry> alarms;  ///< ordered by (plant, sensor id)
  };
  /// Merged board poll: nullopt when nothing changed since
  /// `since_version` (pass 0 to always fetch).
  std::optional<Board> BoardSince(uint64_t since_version) const;

  /// Fleet-wide drill-down: the per-plant bucket aggregation feeds one
  /// cube whose dimensions are plant × level × bucket, so a plant whose
  /// outlier profile deviates from its siblings stands out in the plant
  /// subspace.
  StatusOr<FleetRollupResult> Rollup(const RollupQuery& query,
                                     detect::OlapCubeOptions cube = {}) const;

 private:
  const SnapshotHubOptions per_plant_;
  mutable std::mutex mu_;  ///< guards the hub map shape only
  std::map<std::string, std::unique_ptr<SnapshotHub>> hubs_;
};

}  // namespace hod::serve

#endif  // HOD_SERVE_FLEET_HUB_H_
