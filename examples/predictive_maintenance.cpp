// Predictive maintenance: maintenance urgency from the outlierness trend.
//
// The paper motivates outlier detection as "an indicator for Predictive
// Maintenance ... the degree of deviation from an expected value
// represents the urgency to maintain a system". This example degrades one
// machine progressively (growing vibration disturbances job after job),
// tracks per-job outlierness with Algorithm 1, and converts the findings
// into a maintenance-urgency figure per machine.

#include <cstdio>
#include <vector>

#include "core/hierarchical_detector.h"
#include "sim/anomaly.h"
#include "sim/plant.h"

int main() {
  using namespace hod;

  sim::PlantOptions plant_options;
  plant_options.num_lines = 1;
  plant_options.machines_per_line = 2;
  plant_options.jobs_per_machine = 12;
  plant_options.seed = 5;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.0;  // start from a healthy plant
  scenario.glitch_rate = 0.0;
  scenario.rogue_machines = 0;
  scenario.bad_batch_lines = 0;
  auto plant_or = sim::BuildPlant(plant_options, scenario);
  if (!plant_or.ok()) {
    std::fprintf(stderr, "%s\n", plant_or.status().ToString().c_str());
    return 1;
  }
  sim::SimulatedPlant plant = std::move(plant_or).value();

  // Degrade machine m1: vibration disturbances grow with job index (a
  // wearing spindle bearing). Machine m2 stays healthy.
  hierarchy::Machine& wearing = plant.production.lines[0].machines[0];
  for (size_t j = 4; j < wearing.jobs.size(); ++j) {
    hierarchy::Job& job = wearing.jobs[j];
    for (hierarchy::Phase& phase : job.phases) {
      if (phase.name != "printing") continue;
      auto it = phase.sensor_series.find(wearing.id + ".vibration");
      if (it == phase.sensor_series.end()) continue;
      // Disturbance magnitude ramps from 2 to 9 sigma across jobs.
      const double magnitude =
          0.15 * (2.0 + 7.0 * static_cast<double>(j - 4) /
                            static_cast<double>(wearing.jobs.size() - 5));
      std::vector<uint8_t> labels;
      sim::InjectionSpec spec;
      spec.type = sim::OutlierType::kTemporaryChange;
      spec.position = 60 + 10 * (j % 5);
      spec.magnitude = magnitude;
      (void)sim::Inject(spec, it->second.mutable_values(), labels);
    }
  }

  core::HierarchicalDetector detector(&plant.production);

  std::printf("Per-job peak vibration outlierness (printing phase):\n\n");
  std::printf("%-6s %-28s %-28s\n", "job#", wearing.id.c_str(),
              plant.production.lines[0].machines[1].id.c_str());
  std::vector<core::OutlierFinding> wearing_findings;
  std::vector<core::OutlierFinding> healthy_findings;
  for (size_t j = 0; j < wearing.jobs.size(); ++j) {
    double wearing_peak = 0.0;
    double healthy_peak = 0.0;
    for (int m = 0; m < 2; ++m) {
      const hierarchy::Machine& machine =
          plant.production.lines[0].machines[m];
      core::PhaseQuery query{machine.id, machine.jobs[j].id, "printing",
                             machine.id + ".vibration"};
      auto report = detector.FindPhaseOutliers(query);
      if (!report.ok()) continue;
      for (const auto& finding : report->findings) {
        if (m == 0) {
          wearing_peak = std::max(wearing_peak, finding.outlierness);
          wearing_findings.push_back(finding);
        } else {
          healthy_peak = std::max(healthy_peak, finding.outlierness);
          healthy_findings.push_back(finding);
        }
      }
    }
    auto bar = [](double v) {
      return std::string(static_cast<size_t>(v * 24.0), '#');
    };
    std::printf("%-6zu %-5.2f %-22s %-5.2f %s\n", j, wearing_peak,
                bar(wearing_peak).c_str(), healthy_peak,
                bar(healthy_peak).c_str());
  }

  const double wearing_urgency =
      core::MaintenanceUrgency(wearing_findings, wearing.jobs.size());
  const double healthy_urgency =
      core::MaintenanceUrgency(healthy_findings, wearing.jobs.size());
  std::printf("\nMaintenance urgency:\n");
  std::printf("  %-12s %.2f  %s\n", wearing.id.c_str(), wearing_urgency,
              wearing_urgency > 0.5   ? "-> schedule service now"
              : wearing_urgency > 0.2 ? "-> monitor closely"
                                      : "-> healthy");
  std::printf("  %-12s %.2f  %s\n",
              plant.production.lines[0].machines[1].id.c_str(),
              healthy_urgency,
              healthy_urgency > 0.5   ? "-> schedule service now"
              : healthy_urgency > 0.2 ? "-> monitor closely"
                                      : "-> healthy");
  return 0;
}
