#include "detect/single_linkage.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "detect/distance.h"
#include "timeseries/stats.h"

namespace hod::detect {

SingleLinkageDetector::SingleLinkageDetector(SingleLinkageOptions options)
    : options_(options) {}

Status SingleLinkageDetector::Train(
    const std::vector<std::vector<double>>& data) {
  if (data.empty()) {
    return Status::InvalidArgument("single-linkage on empty data");
  }
  if (options_.width <= 0.0) {
    return Status::InvalidArgument("width must be > 0");
  }
  HOD_ASSIGN_OR_RETURN(scaler_, ColumnScaler::Fit(data));
  std::vector<std::vector<double>> scaled = data;
  HOD_RETURN_IF_ERROR(scaler_.Apply(scaled));

  centers_.clear();
  counts_.clear();
  for (const auto& point : scaled) {
    // Nearest existing center. Dimensions are uniform here: every point
    // passed ColumnScaler::Fit's ragged check and centers are built from
    // those points.
    size_t best = centers_.size();
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centers_.size(); ++c) {
      const double d =
          Distance(point.data(), centers_[c].data(), point.size());
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    if (best < centers_.size() && best_d <= options_.width) {
      // Join: update the running centroid.
      const double n = static_cast<double>(++counts_[best]);
      for (size_t k = 0; k < point.size(); ++k) {
        centers_[best][k] += (point[k] - centers_[best][k]) / n;
      }
    } else {
      centers_.push_back(point);
      counts_.push_back(1);
    }
  }

  // Label the largest clusters normal until `normal_mass` of the training
  // mass is covered (Portnoy's heuristic: intrusions are rare, so big
  // clusters are normal).
  std::vector<size_t> order(centers_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [this](size_t a, size_t b) { return counts_[a] > counts_[b]; });
  const size_t total = data.size();
  const size_t target =
      static_cast<size_t>(options_.normal_mass * static_cast<double>(total));
  is_normal_.assign(centers_.size(), false);
  size_t covered = 0;
  for (size_t idx : order) {
    if (covered >= target && covered > 0) break;
    is_normal_[idx] = true;
    covered += counts_[idx];
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> SingleLinkageDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    std::vector<double> point = data[i];
    HOD_RETURN_IF_ERROR(scaler_.ApplyRow(point));
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centers_.size(); ++c) {
      const double d =
          Distance(point.data(), centers_[c].data(), point.size());
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    if (best_d > options_.width) {
      // Outside every cluster: outlierness grows with the overshoot.
      const double excess = best_d / options_.width - 1.0;
      scores[i] = 0.5 + 0.5 * excess / (excess + 1.0);
    } else if (!is_normal_[best]) {
      // Inside a small (anomalous) cluster.
      scores[i] = 0.5;
    } else {
      // Inside a normal cluster: mild score from relative distance.
      scores[i] = 0.25 * best_d / options_.width;
    }
  }
  return scores;
}

}  // namespace hod::detect
