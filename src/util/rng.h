#ifndef HOD_UTIL_RNG_H_
#define HOD_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hod {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). Every stochastic component in the library takes an explicit
/// seed so that simulations, tests, and benchmark tables are reproducible
/// bit-for-bit across runs and platforms.
class Rng {
 public:
  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box-Muller with caching).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponential variate with the given rate (> 0).
  double Exponential(double rate);

  /// Poisson variate (Knuth's algorithm; suitable for small/medium mean).
  int Poisson(double mean);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// result is uniform.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace hod

#endif  // HOD_UTIL_RNG_H_
