#ifndef HOD_TIMESERIES_SPECTRAL_H_
#define HOD_TIMESERIES_SPECTRAL_H_

#include <complex>
#include <vector>

#include "util/statusor.h"

namespace hod::ts {

/// In-place radix-2 Cooley-Tukey FFT. Errors unless data.size() is a power
/// of two (callers pad with ZeroPadToPow2). `inverse` applies the 1/N
/// normalization so Fft(Fft(x), inverse=true) == x.
Status Fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Copies `values` into a complex buffer zero-padded to the next power of
/// two (at least `min_size`).
std::vector<std::complex<double>> ZeroPadToPow2(
    const std::vector<double>& values, size_t min_size = 1);

/// One-sided power spectrum |X_k|^2 / N for k = 0 .. N/2 of the
/// zero-padded input.
std::vector<double> PowerSpectrum(const std::vector<double>& values);

/// Splits a power spectrum into `bands` contiguous frequency bands and
/// returns the total energy per band, normalized so the bands sum to 1
/// (all-zero spectrum: uniform). This is the "vibration signature" feature
/// (Nairac et al. 1999). Errors when bands == 0.
StatusOr<std::vector<double>> BandEnergies(const std::vector<double>& spectrum,
                                           size_t bands);

/// Convenience: BandEnergies(PowerSpectrum(values), bands); the DC bin is
/// dropped first so constant offsets do not dominate the signature.
StatusOr<std::vector<double>> VibrationSignature(
    const std::vector<double>& values, size_t bands);

}  // namespace hod::ts

#endif  // HOD_TIMESERIES_SPECTRAL_H_
