#ifndef HOD_DETECT_PCA_DETECTOR_H_
#define HOD_DETECT_PCA_DETECTOR_H_

#include <vector>

#include "detect/detector.h"
#include "detect/kmeans.h"

namespace hod::detect {

/// Principal-component-space anomaly detection (Gupta & Singh 2013) —
/// Table 1 row 8, family DA, data type TSS (via windowed feature vectors).
///
/// Training fits a principal subspace to z-scaled normal vectors (Jacobi
/// eigendecomposition of the covariance matrix). A test vector's
/// outlierness combines its reconstruction error orthogonal to the
/// subspace (novel directions) and its standardized distance inside the
/// subspace (extreme but aligned values).
struct PcaOptions {
  /// Fraction of variance the retained subspace must explain, in (0, 1].
  double explained_variance = 0.95;
  /// Reconstruction error (relative to the training median) at which
  /// outlierness reaches 0.5.
  double error_scale = 2.0;
};

class PcaDetector : public VectorDetector {
 public:
  explicit PcaDetector(PcaOptions options = {});

  std::string name() const override { return "PrincipalComponentSpace"; }

  Status Train(const std::vector<std::vector<double>>& data) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

  size_t num_components() const { return components_.size(); }
  const std::vector<double>& eigenvalues() const { return eigenvalues_; }

 private:
  PcaOptions options_;
  ColumnScaler scaler_;
  /// Retained principal directions (row-major, unit vectors).
  std::vector<std::vector<double>> components_;
  std::vector<double> eigenvalues_;  // matching the retained components
  double baseline_error_ = 1.0;
  size_t dim_ = 0;
  bool trained_ = false;
};

/// Jacobi eigendecomposition of a symmetric matrix (row-major, n x n).
/// Returns eigenvalues (descending) and matching unit eigenvectors (rows).
/// Exposed for reuse by tests and other detectors.
struct EigenResult {
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
};
StatusOr<EigenResult> JacobiEigenSymmetric(
    const std::vector<std::vector<double>>& matrix, size_t max_sweeps = 64);

}  // namespace hod::detect

#endif  // HOD_DETECT_PCA_DETECTOR_H_
