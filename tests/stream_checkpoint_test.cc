#include "stream/checkpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "hierarchy/serialization.h"
#include "serve/codec.h"
#include "serve/hub.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace hod::stream {
namespace {

using hierarchy::ProductionLevel;

StreamEngineOptions SyncOptions() {
  StreamEngineOptions options;
  options.synchronous = true;
  options.monitor.warmup = 32;
  options.snapshot_every = 8;
  // These tests feed sensors sequentially, so the staleness sweep (which
  // compares each sensor against the *global* frontier) would quarantine
  // the later-fed ones. Staleness is covered by stream_health_test; here
  // we want serialization, not sweep artifacts.
  options.health.staleness_timeout = 0.0;
  return options;
}

/// Deterministic stream with a fault burst and a quarantine-worthy
/// flatline, so checkpoints carry non-trivial alarm and health state.
std::vector<double> MakeStream(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  double noise = 0.0;
  for (size_t t = 0; t < n; ++t) {
    noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
    double value = 50.0 + noise;
    if (t >= 200 && t < 215) value += 6.0;  // process fault burst
    values.push_back(value);
  }
  return values;
}

void Feed(StreamEngine& engine, const std::string& id,
          const std::vector<double>& values, size_t from, size_t to,
          ProductionLevel level = ProductionLevel::kPhase) {
  for (size_t t = from; t < to; ++t) {
    auto ack = engine.Ingest(
        {id, level, static_cast<double>(t), values[t]});
    ASSERT_TRUE(ack.ok()) << id << " t=" << t << ": "
                          << ack.status().ToString();
  }
}

std::string CheckpointBytes(const StreamEngine& engine) {
  std::ostringstream os;
  Status status = engine.Checkpoint(os);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return os.str();
}

TEST(EngineCheckpoint, WriteReadRoundTripsEveryField) {
  StreamEngineOptions options = SyncOptions();
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("a", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine
                  .AddSensor("b", ProductionLevel::kEnvironment,
                             BackpressurePolicy::kDropOldest)
                  .ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(21, 400);
  Feed(engine, "a", values, 0, 400);
  Feed(engine, "b", values, 0, 300, ProductionLevel::kEnvironment);
  ASSERT_TRUE(engine.Flush().ok());

  const std::string bytes = CheckpointBytes(engine);
  ASSERT_FALSE(bytes.empty());

  std::istringstream is(bytes);
  auto checkpoint = ReadEngineCheckpoint(is);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  ASSERT_EQ(checkpoint->sensors.size(), 2u);
  EXPECT_EQ(checkpoint->sensors[0].sensor_id, "a");
  EXPECT_EQ(checkpoint->sensors[1].sensor_id, "b");
  EXPECT_FALSE(checkpoint->sensors[0].has_policy);
  EXPECT_TRUE(checkpoint->sensors[1].has_policy);
  EXPECT_EQ(checkpoint->sensors[1].policy, BackpressurePolicy::kDropOldest);
  EXPECT_EQ(checkpoint->sensors[0].monitor.samples_seen, 400u);
  EXPECT_EQ(checkpoint->sensors[1].monitor.samples_seen, 300u);
  EXPECT_DOUBLE_EQ(checkpoint->sensors[0].frontier, 399.0);
  EXPECT_EQ(checkpoint->stats.ingested, 700u);
  EXPECT_GT(checkpoint->stats.alarms_raised, 0u);
  EXPECT_FALSE(checkpoint->findings.empty());

  // Re-encoding the parsed checkpoint reproduces the bytes exactly —
  // the encoding is canonical.
  std::ostringstream os;
  ASSERT_TRUE(WriteEngineCheckpoint(*checkpoint, os).ok());
  EXPECT_EQ(os.str(), bytes);
}

TEST(EngineCheckpoint, KillAndRestoreResumesByteIdentically) {
  // The tentpole acceptance test: run A streams the whole sequence in one
  // uninterrupted life; run B ingests the identical sequence but is killed
  // at the midpoint and restored from its checkpoint. Their final
  // checkpoints must be byte-equal — the restore left no seam. (The
  // *global* ingest order must match between runs: the findings log and
  // snapshot cadence are faithful to arrival order by design.)
  const std::vector<double> s1 = MakeStream(31, 600);
  const std::vector<double> s2 = MakeStream(32, 600);

  StreamEngine run_a(SyncOptions());
  ASSERT_TRUE(run_a.AddSensor("s1", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(run_a.AddSensor("s2", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(run_a.Start().ok());
  Feed(run_a, "s1", s1, 0, 205);
  Feed(run_a, "s2", s2, 0, 205);
  Feed(run_a, "s1", s1, 205, 600);
  Feed(run_a, "s2", s2, 205, 600);
  const std::string final_a = CheckpointBytes(run_a);

  // Run B, first life: stop at the midpoint (mid-burst for s1, so alarm
  // state and monitor baselines are both "hot").
  std::string midpoint;
  {
    StreamEngine engine(SyncOptions());
    ASSERT_TRUE(engine.AddSensor("s1", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.AddSensor("s2", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.Start().ok());
    Feed(engine, "s1", s1, 0, 205);
    Feed(engine, "s2", s2, 0, 205);
    midpoint = CheckpointBytes(engine);
    // The engine is destroyed here without Stop(): the "kill".
  }

  // Run B, second life: restore and feed the identical remainder.
  std::istringstream is(midpoint);
  auto restored = StreamEngine::Restore(is, SyncOptions());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& run_b = **restored;
  EXPECT_TRUE(run_b.running());
  EXPECT_EQ(run_b.stats().ingested, 410u) << "counters carried over";
  Feed(run_b, "s1", s1, 205, 600);
  Feed(run_b, "s2", s2, 205, 600);
  const std::string final_b = CheckpointBytes(run_b);

  EXPECT_EQ(final_a.size(), final_b.size());
  EXPECT_TRUE(final_a == final_b)
      << "restore must resume byte-identically in synchronous mode";

  // And the domain-level state agrees too.
  auto probe_a = run_a.Probe("s1");
  auto probe_b = run_b.Probe("s1");
  ASSERT_TRUE(probe_a.ok());
  ASSERT_TRUE(probe_b.ok());
  EXPECT_EQ(probe_a->samples_seen, probe_b->samples_seen);
  EXPECT_EQ(probe_a->alarms_raised, probe_b->alarms_raised);
  EXPECT_EQ(run_a.Episodes().size(), run_b.Episodes().size());
}

TEST(EngineCheckpoint, RestoredIdleEngineDoesNotAgeChannelsStale) {
  // Regression: a checkpoint taken while one sensor lags the frontier
  // beyond the staleness timeout, restored into a threaded engine with a
  // fast watchdog. The restored engine is idle — no ingest advances stream
  // time — so the wall-clock sweep cadence must NOT quarantine the laggard:
  // staleness means "the plant moved on without you", and a paused plant
  // moves for nobody.
  StreamEngineOptions sync_options = SyncOptions();
  sync_options.health.staleness_timeout = 30.0;
  sync_options.health_sweep_every = 1 << 20;  // no sweep before the kill
  std::string bytes;
  {
    StreamEngine engine(sync_options);
    ASSERT_TRUE(engine.AddSensor("victim", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.AddSensor("live", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.Start().ok());
    const std::vector<double> values = MakeStream(41, 80);
    Feed(engine, "victim", values, 0, 10);
    Feed(engine, "live", values, 0, 60);  // victim now lags 49 > 30
    bytes = CheckpointBytes(engine);
  }

  StreamEngineOptions threaded = SyncOptions();
  threaded.synchronous = false;
  threaded.health.staleness_timeout = 30.0;
  threaded.watchdog_interval = std::chrono::milliseconds(5);
  std::istringstream is(bytes);
  auto restored = StreamEngine::Restore(is, threaded);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& engine = **restored;

  // Dozens of watchdog sweeps pass over the idle engine.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(engine.HealthStateOf("victim"), SensorHealthState::kHealthy)
      << "an idle restored engine quarantined a channel on wall-clock time";

  // Fresh ingest moves the frontier: the lag is now real staleness, and
  // the next sweep may quarantine the victim.
  const std::vector<double> values = MakeStream(41, 80);
  Feed(engine, "live", values, 60, 70);
  ASSERT_TRUE(engine.Flush().ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine.HealthStateOf("victim") != SensorHealthState::kQuarantined &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(engine.HealthStateOf("victim"), SensorHealthState::kQuarantined);
  bool stale_transition = false;
  for (const HealthTransition& transition : engine.HealthTransitions()) {
    stale_transition |= transition.sensor_id == "victim" &&
                        transition.reason == HealthSignal::kStale;
  }
  EXPECT_TRUE(stale_transition);
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(EngineCheckpoint, RestoreRejectsMismatchedMonitorOptions) {
  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(41, 100);
  Feed(engine, "s", values, 0, 100);
  const std::string bytes = CheckpointBytes(engine);

  StreamEngineOptions different = SyncOptions();
  different.monitor.warmup = 99;  // different scoring configuration
  std::istringstream is(bytes);
  auto restored = StreamEngine::Restore(is, different);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);

  StreamEngineOptions tolerance = SyncOptions();
  tolerance.out_of_order_tolerance = 5.0;
  std::istringstream is2(bytes);
  EXPECT_FALSE(StreamEngine::Restore(is2, tolerance).ok());
}

TEST(EngineCheckpoint, RestoreToleratesDifferentThreadingOptions) {
  // Threading knobs are not part of the scoring fingerprint: a checkpoint
  // from a 1-shard sync engine restores into a 4-shard threaded one.
  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(51, 300);
  Feed(engine, "s", values, 0, 300);
  const std::string bytes = CheckpointBytes(engine);

  StreamEngineOptions threaded = SyncOptions();
  threaded.synchronous = false;
  threaded.num_shards = 4;
  threaded.queue_capacity = 64;
  std::istringstream is(bytes);
  auto restored = StreamEngine::Restore(is, threaded);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& run = **restored;
  for (size_t t = 300; t < 400; ++t) {
    ASSERT_TRUE(run.Ingest({"s", ProductionLevel::kPhase,
                            static_cast<double>(t), values[t % 300]})
                    .ok());
  }
  ASSERT_TRUE(run.Flush().ok());
  ASSERT_TRUE(run.Stop().ok());
  EXPECT_EQ(run.stats().ingested, 400u);
  auto probe = run.Probe("s");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->samples_seen, 400u);
}

TEST(EngineCheckpoint, QueueKindStaysOutOfTheFingerprint) {
  // The shard queue implementation (SPSC vs MPSC) is a threading detail,
  // like shard count: a checkpoint taken under the default MPSC queue must
  // restore into an engine running the lock-free SPSC ring, and resume
  // scoring identically.
  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(77, 300);
  Feed(engine, "s", values, 0, 300);
  const std::string bytes = CheckpointBytes(engine);

  StreamEngineOptions spsc = SyncOptions();
  spsc.synchronous = false;
  spsc.num_shards = 2;
  spsc.producer_hint = ProducerHint::kSinglePerShard;
  std::istringstream is(bytes);
  auto restored = StreamEngine::Restore(is, spsc);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& run = **restored;
  for (size_t t = 300; t < 400; ++t) {
    ASSERT_TRUE(run.Ingest({"s", ProductionLevel::kPhase,
                            static_cast<double>(t), values[t % 300]})
                    .ok());
  }
  ASSERT_TRUE(run.Flush().ok());
  ASSERT_TRUE(run.Stop().ok());
  EXPECT_EQ(run.stats().ingested, 400u);
  auto probe = run.Probe("s");
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->samples_seen, 400u);
}

TEST(EngineCheckpoint, CheckpointRequiresQuiescence) {
  // Never started: nothing meaningful to save.
  StreamEngine unstarted(SyncOptions());
  ASSERT_TRUE(unstarted.AddSensor("s").ok());
  std::ostringstream os;
  EXPECT_EQ(unstarted.Checkpoint(os).code(), StatusCode::kFailedPrecondition);

  // Threaded and running: refused (counters are in flight).
  StreamEngineOptions threaded = SyncOptions();
  threaded.synchronous = false;
  threaded.num_shards = 2;
  StreamEngine engine(threaded);
  ASSERT_TRUE(engine.AddSensor("s").ok());
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.Checkpoint(os).code(), StatusCode::kFailedPrecondition);
  // Stopped: allowed.
  ASSERT_TRUE(engine.Stop().ok());
  EXPECT_TRUE(engine.Checkpoint(os).ok());
}

TEST(EngineCheckpoint, ReadRejectsCorruptImages) {
  StreamEngine engine(SyncOptions());
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(61, 100);
  Feed(engine, "s", values, 0, 100);
  const std::string bytes = CheckpointBytes(engine);

  {
    std::istringstream empty("");
    EXPECT_FALSE(ReadEngineCheckpoint(empty).ok());
  }
  {
    std::string bad_magic = bytes;
    bad_magic[0] = 'X';
    std::istringstream is(bad_magic);
    auto result = ReadEngineCheckpoint(is);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {
    std::string truncated = bytes.substr(0, bytes.size() / 2);
    std::istringstream is(truncated);
    EXPECT_FALSE(ReadEngineCheckpoint(is).ok());
  }
  // The pristine image still parses (the corruption tests aren't flaky).
  std::istringstream is(bytes);
  EXPECT_TRUE(ReadEngineCheckpoint(is).ok());
}

// ---- CheckpointToFile / background checkpointing ---------------------------

/// Fresh per-test checkpoint path with no leftovers from earlier runs.
std::string CheckpointPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

TEST(EngineCheckpoint, CheckpointToFileIsAtomicAndRestorable) {
  const std::string path = CheckpointPath("hod_ckpt_sync.bin");
  StreamEngineOptions options = SyncOptions();
  options.checkpoint_path = path;
  const std::vector<double> values = MakeStream(71, 600);

  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  Feed(engine, "s", values, 0, 300);
  Status status = engine.CheckpointToFile(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(engine.stats().checkpoints_written, 1u);
  EXPECT_EQ(engine.stats().checkpoint_failures, 0u);
  // Atomic publication: the temp image was renamed away, not left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good());
  auto restored = StreamEngine::Restore(is, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->stats().ingested, 300u);

  // Both lives feed the identical remainder and perform the same number
  // of file checkpoints (the image is filled BEFORE the written-counter
  // increments, so the restored life starts one write behind); after the
  // restored engine's own write the two must end byte-equal.
  Feed(engine, "s", values, 300, 600);
  Feed(**restored, "s", values, 300, 600);
  status = (*restored)->CheckpointToFile(CheckpointPath("hod_ckpt_sync2.bin"));
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(CheckpointBytes(engine) == CheckpointBytes(**restored));
}

TEST(EngineCheckpoint, CheckpointToFileRequiresArmedGateOnThreadedEngine) {
  StreamEngineOptions options = SyncOptions();
  options.synchronous = false;
  options.num_shards = 2;
  // No checkpoint_path: the ingest gate is not armed, so a live threaded
  // checkpoint would race producers — refused, not raced.
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s").ok());
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine
                .CheckpointToFile(CheckpointPath("hod_ckpt_unarmed.bin"))
                .code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(EngineCheckpoint, CheckpointToFileWorksOnALiveThreadedEngine) {
  const std::string path = CheckpointPath("hod_ckpt_live.bin");
  StreamEngineOptions options = SyncOptions();
  options.synchronous = false;
  options.num_shards = 2;
  options.checkpoint_path = path;
  const std::vector<double> values = MakeStream(81, 600);

  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s1", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.AddSensor("s2", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  Feed(engine, "s1", values, 0, 200);
  Feed(engine, "s2", values, 0, 200);

  // Mid-stream, workers running: the call quiesces, serializes, resumes.
  Status status = engine.CheckpointToFile(path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  // The engine keeps ingesting afterwards.
  Feed(engine, "s1", values, 200, 400);
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Stop().ok());

  std::ifstream is(path, std::ios::binary);
  auto checkpoint = ReadEngineCheckpoint(is);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  ASSERT_EQ(checkpoint->sensors.size(), 2u);
  // Everything submitted before the call was drained into the image.
  EXPECT_EQ(checkpoint->sensors[0].monitor.samples_seen +
                checkpoint->sensors[1].monitor.samples_seen,
            400u);
  EXPECT_EQ(checkpoint->stats.ingested, 400u);
}

TEST(EngineCheckpoint, BackgroundTimerCheckpointsAndSurvivesKill) {
  const std::string path = CheckpointPath("hod_ckpt_timer.bin");
  StreamEngineOptions options = SyncOptions();
  options.synchronous = false;
  options.num_shards = 2;
  options.checkpoint_path = path;
  options.checkpoint_interval = std::chrono::milliseconds(5);
  const std::vector<double> values = MakeStream(91, 400);

  {
    StreamEngine engine(options);
    ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.Start().ok());
    Feed(engine, "s", values, 0, 400);
    ASSERT_TRUE(engine.Flush().ok());
    // Wait for TWO timer checkpoints after the flush: the second one must
    // have STARTED after the flush, so it provably contains all 400
    // samples (the first might have begun mid-feed).
    const uint64_t flushed_at = engine.stats().checkpoints_written;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (engine.stats().checkpoints_written < flushed_at + 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_GE(engine.stats().checkpoints_written, flushed_at + 2)
        << "background timer produced no checkpoints";
    EXPECT_EQ(engine.stats().checkpoint_failures, 0u);
    // The "kill": drop the engine without asking for a final checkpoint.
  }

  std::ifstream is(path, std::ios::binary);
  ASSERT_TRUE(is.good());
  auto restored = StreamEngine::Restore(is, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& engine = **restored;
  EXPECT_TRUE(engine.running());
  EXPECT_EQ(engine.stats().ingested, 400u);
  // The restored engine resumes ingesting (and its own timer is live).
  auto ack = engine.Ingest({"s", ProductionLevel::kPhase, 400.0, 50.0});
  EXPECT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_TRUE(engine.Stop().ok());
}

// ---- Concept-shift layer (checkpoint v5) -----------------------------------

/// Sync engine options with the BOCPD layer on.
StreamEngineOptions ShiftOptions() {
  StreamEngineOptions options = SyncOptions();
  options.shift.enabled = true;
  return options;
}

/// Stream with a genuine setpoint change (not a burst): level `delta`
/// from `shift_at` on, so the shift layer confirms and re-baselines.
std::vector<double> MakeShiftStream(uint64_t seed, size_t n, size_t shift_at,
                                    double delta) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    const double base = t >= shift_at ? 50.0 + delta : 50.0;
    values.push_back(base + rng.Gaussian(0.0, 0.25));
  }
  return values;
}

TEST(EngineCheckpoint, V5RoundTripsBocpdAndLifecycleState) {
  StreamEngine engine(ShiftOptions());
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeShiftStream(101, 500, 300, 6.0);
  Feed(engine, "s", values, 0, 500);
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_EQ(engine.stats().concept_shifts, 1u) << "fixture must shift";

  const std::string bytes = CheckpointBytes(engine);
  std::istringstream is(bytes);
  auto checkpoint = ReadEngineCheckpoint(is);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();

  // The shift layer's full state is in the image...
  EXPECT_TRUE(checkpoint->shift_enabled);
  ASSERT_EQ(checkpoint->sensors.size(), 1u);
  ASSERT_TRUE(checkpoint->sensors[0].has_bocpd);
  EXPECT_GT(checkpoint->sensors[0].bocpd.samples_seen, 0u);
  EXPECT_EQ(checkpoint->sensors[0].bocpd.shifts_confirmed, 1u);
  EXPECT_FALSE(checkpoint->sensors[0].bocpd.weight.empty());
  EXPECT_EQ(checkpoint->sensors[0].monitor.baseline_epoch, 1u)
      << "the re-baseline must be visible in the lifecycle state";
  ASSERT_EQ(checkpoint->recent_shifts.size(), 1u);
  EXPECT_EQ(checkpoint->recent_shifts[0].sensor_id, "s");
  EXPECT_EQ(checkpoint->concept_shifts_total, 1u);
  EXPECT_EQ(checkpoint->stats.concept_shifts, 1u);
  EXPECT_EQ(checkpoint->stats.baseline_resets, 1u);

  // ...and the encoding stays canonical.
  std::ostringstream os;
  ASSERT_TRUE(WriteEngineCheckpoint(*checkpoint, os).ok());
  EXPECT_EQ(os.str(), bytes);
}

TEST(EngineCheckpoint, KillAndRestoreResumesByteIdenticallyWithShiftLayer) {
  // Same contract as KillAndRestoreResumesByteIdentically, but with BOCPD
  // running and the kill placed between two setpoint changes: the first
  // shift's re-baseline and hot run-length posterior must survive the
  // restore, and the second shift must confirm identically in both lives.
  const std::vector<double> s1 = MakeShiftStream(111, 600, 150, 5.0);
  std::vector<double> second = s1;
  for (size_t t = 450; t < second.size(); ++t) second[t] -= 4.0;

  StreamEngine run_a(ShiftOptions());
  ASSERT_TRUE(run_a.AddSensor("s1", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(run_a.Start().ok());
  Feed(run_a, "s1", second, 0, 600);
  const std::string final_a = CheckpointBytes(run_a);
  ASSERT_EQ(run_a.stats().concept_shifts, 2u) << "fixture must shift twice";

  std::string midpoint;
  {
    StreamEngine engine(ShiftOptions());
    ASSERT_TRUE(engine.AddSensor("s1", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.Start().ok());
    Feed(engine, "s1", second, 0, 300);
    EXPECT_EQ(engine.stats().concept_shifts, 1u);
    midpoint = CheckpointBytes(engine);
  }

  std::istringstream is(midpoint);
  auto restored = StreamEngine::Restore(is, ShiftOptions());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& run_b = **restored;
  Feed(run_b, "s1", second, 300, 600);
  const std::string final_b = CheckpointBytes(run_b);

  EXPECT_EQ(run_b.stats().concept_shifts, 2u);
  EXPECT_TRUE(final_a == final_b)
      << "restore with the shift layer must leave no seam";
}

TEST(EngineCheckpoint, RestoreRejectsShiftLayerMismatch) {
  // The shift layer is part of the scoring fingerprint: enabling,
  // disabling, or re-tuning it across a restore silently changes every
  // later score, so all three must be refused.
  StreamEngine engine(ShiftOptions());
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeStream(103, 100);
  Feed(engine, "s", values, 0, 100);
  const std::string bytes = CheckpointBytes(engine);

  {
    std::istringstream is(bytes);
    auto restored = StreamEngine::Restore(is, SyncOptions());  // layer off
    EXPECT_FALSE(restored.ok());
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  }
  {
    StreamEngineOptions retuned = ShiftOptions();
    retuned.shift.bocpd.cooldown += 1;
    std::istringstream is(bytes);
    EXPECT_FALSE(StreamEngine::Restore(is, retuned).ok());
  }
  {
    // And the reverse: a shift-free checkpoint into a shift-enabled engine.
    StreamEngine plain(SyncOptions());
    ASSERT_TRUE(plain.AddSensor("s", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(plain.Start().ok());
    Feed(plain, "s", values, 0, 100);
    const std::string plain_bytes = CheckpointBytes(plain);
    std::istringstream is(plain_bytes);
    EXPECT_FALSE(StreamEngine::Restore(is, ShiftOptions()).ok());
  }
}

/// Hand-serializes a minimal, valid v4 image (one fresh sensor, no shift
/// layer, zeroed aggregates) byte for byte — the compatibility contract
/// with images written before the concept-shift layer existed.
std::string MakeV4Image(const StreamEngineOptions& options) {
  namespace bin = hierarchy::bin;
  const double neg_inf = -std::numeric_limits<double>::infinity();
  std::ostringstream os;
  bin::WriteU32(os, 0x43444F48u);  // "HODC"
  bin::WriteU32(os, 4u);
  bin::WriteU64(os, options.monitor.warmup);
  bin::WriteU64(os, options.monitor.ar_order);
  bin::WriteF64(os, options.monitor.threshold);
  bin::WriteU64(os, options.monitor.raise_after);
  bin::WriteU64(os, options.monitor.clear_after);
  bin::WriteF64(os, options.monitor.sigma_scale);
  bin::WriteF64(os, options.monitor.scale_forgetting);
  bin::WriteF64(os, options.out_of_order_tolerance);
  // v4 has no shift_enabled flag and no BocpdOptions here.
  bin::WriteU32(os, 1u);  // one sensor
  bin::WriteString(os, "legacy");
  bin::WriteU8(os, static_cast<uint8_t>(
                       hierarchy::LevelValue(ProductionLevel::kPhase)));
  bin::WriteU8(os, 0);  // has_policy = false
  bin::WriteU8(os, 0);  // policy byte (ignored)
  bin::WriteF64(os, neg_inf);  // frontier: nothing ingested yet
  // Health: healthy, no evidence, never seen.
  bin::WriteU8(os, 0);  // kHealthy
  bin::WriteU64(os, 0);
  bin::WriteU64(os, 0);
  bin::WriteU64(os, 0);
  bin::WriteU8(os, 0);  // has_last_value = false
  bin::WriteF64(os, 0.0);
  bin::WriteF64(os, neg_inf);
  bin::WriteF64(os, neg_inf);
  bin::WriteU8(os, 0);  // kClean
  bin::WriteU64(os, 0);
  // Monitor state, v4 layout: 3 vectors + scalars, NO lifecycle fields.
  bin::WriteU32(os, 0);  // warmup_buffer
  bin::WriteU32(os, 0);  // recent
  bin::WriteU32(os, 0);  // phi
  bin::WriteF64(os, 0.0);
  bin::WriteF64(os, 1.0);  // residual_sigma
  bin::WriteU8(os, 0);     // model_ready = false
  bin::WriteU8(os, 0);     // alarm = false
  bin::WriteU64(os, 0);
  bin::WriteU64(os, 0);
  bin::WriteU64(os, 0);
  bin::WriteU64(os, 0);
  // v4 has no has_bocpd byte.
  for (int level = 0; level < hierarchy::kNumLevels; ++level) {
    for (int field = 0; field < 6; ++field) bin::WriteU64(os, 0);
    bin::WriteF64(os, 0.0);
    bin::WriteF64(os, neg_inf);
  }
  bin::WriteU32(os, 0);    // active alarms
  bin::WriteU32(os, 0);    // quarantined
  bin::WriteU64(os, 0);    // events_seen
  bin::WriteU64(os, 0);    // events_at_last_snapshot
  bin::WriteU64(os, 1);    // next_sequence
  bin::WriteU32(os, 0);    // peer groups
  bin::WriteU32(os, 0);    // pending faults
  bin::WriteU8(os, 0);     // outage_active = false
  bin::WriteF64(os, 0.0);  // outage_since
  bin::WriteU32(os, 0);    // outage members
  bin::WriteF64(os, neg_inf);  // collector_frontier
  // v4 has no recent-shift ring or total.
  bin::WriteU32(os, 0);  // findings
  for (int i = 0; i < 30; ++i) bin::WriteU64(os, 0);  // v4 counters
  for (int i = 0; i < 3 * hierarchy::kNumLevels; ++i) bin::WriteU64(os, 0);
  for (size_t i = 0; i < kBatchBuckets; ++i) bin::WriteU64(os, 0);
  return os.str();
}

TEST(EngineCheckpoint, V4ImageStillRestoresWithShiftLayerDefaultedOff) {
  StreamEngineOptions options = SyncOptions();
  const std::string bytes = MakeV4Image(options);

  std::istringstream parse(bytes);
  auto checkpoint = ReadEngineCheckpoint(parse);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  // Every v5 field defaults to "layer off / nothing happened".
  EXPECT_FALSE(checkpoint->shift_enabled);
  ASSERT_EQ(checkpoint->sensors.size(), 1u);
  EXPECT_FALSE(checkpoint->sensors[0].has_bocpd);
  EXPECT_EQ(checkpoint->sensors[0].monitor.baseline_epoch, 0u);
  EXPECT_FALSE(checkpoint->sensors[0].monitor.frozen);
  EXPECT_TRUE(checkpoint->recent_shifts.empty());
  EXPECT_EQ(checkpoint->concept_shifts_total, 0u);
  EXPECT_EQ(checkpoint->stats.concept_shifts, 0u);
  EXPECT_EQ(checkpoint->stats.baseline_resets, 0u);

  // The engine accepts the old image and keeps scoring.
  std::istringstream is(bytes);
  auto restored = StreamEngine::Restore(is, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& engine = **restored;
  const std::vector<double> values = MakeStream(107, 100);
  Feed(engine, "legacy", values, 0, 100);
  EXPECT_EQ(engine.stats().ingested, 100u);

  // But a v4 image cannot enter a shift-enabled engine: the fingerprint
  // check treats "no shift layer recorded" as a mismatch, not a default.
  std::istringstream is2(bytes);
  EXPECT_FALSE(StreamEngine::Restore(is2, ShiftOptions()).ok());
}

TEST(EngineCheckpoint, KillAndRestoreRepublishesKeyframeToHubSubscribers) {
  // The serve-tier contract across an engine kill/restore: the restored
  // engine's snapshot sequence restarts behind what the hub already fanned
  // out, so the hub must detect the regression, force a keyframe, and
  // every subscriber must resync to the resumed engine's state — no delta
  // ever applies against a base from the previous life.
  serve::SnapshotHubOptions hub_options;
  hub_options.keyframe_every = 1000;  // cadence alone would never resync
  hub_options.subscriber_queue_capacity = 256;
  serve::SnapshotHub hub(hub_options);
  auto sub = hub.Subscribe();

  const std::vector<double> s1 = MakeStream(91, 400);
  StreamEngineOptions options = SyncOptions();
  options.snapshot_sink = [&hub](const EngineSnapshot& snapshot) {
    hub.Publish(snapshot);
  };

  std::string midpoint;
  {
    StreamEngine engine(options);
    ASSERT_TRUE(engine.AddSensor("s1", ProductionLevel::kPhase).ok());
    ASSERT_TRUE(engine.Start().ok());
    Feed(engine, "s1", s1, 0, 250);
    midpoint = CheckpointBytes(engine);
    // Publishes that the checkpoint does not know about: everything after
    // the image was taken still reaches the hub before the kill.
    Feed(engine, "s1", s1, 250, 300);
    ASSERT_TRUE(engine.Flush().ok());
    sub->Drain();
    ASSERT_TRUE(sub->has_view());
    // Killed here without Stop().
  }
  const uint64_t view_before_restore = sub->View().sequence;
  EXPECT_GT(view_before_restore, 0u);
  const uint64_t resyncs_before = hub.Stats().resyncs_forced;

  std::istringstream is(midpoint);
  auto restored = StreamEngine::Restore(is, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& engine = **restored;
  Feed(engine, "s1", s1, 250, 400);
  ASSERT_TRUE(engine.Flush().ok());

  // The resumed engine re-published from a sequence at or below what the
  // subscriber had already applied; the hub absorbed it as forced
  // keyframes and the subscriber's view now tracks the second life.
  EXPECT_GT(hub.Stats().resyncs_forced, resyncs_before);
  sub->Drain();
  ASSERT_TRUE(sub->has_view());
  EXPECT_EQ(serve::EncodeSnapshotBytes(sub->View()),
            serve::EncodeSnapshotBytes(engine.Snapshot()));
  EXPECT_EQ(sub->stale_skipped(), 0u);
  ASSERT_TRUE(engine.Stop().ok());
}

}  // namespace
}  // namespace hod::stream
