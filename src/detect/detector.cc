#include "detect/detector.h"

namespace hod::detect {

std::string_view FamilyAbbreviation(Family family) {
  switch (family) {
    case Family::kDiscriminative:
      return "DA";
    case Family::kUnsupervisedParametric:
      return "UPA";
    case Family::kUnsupervisedOnline:
      return "UOA";
    case Family::kSupervised:
      return "SA";
    case Family::kNormalPatternDb:
      return "NPD";
    case Family::kNegativeMixedDb:
      return "NMD";
    case Family::kOutlierSubsequence:
      return "OS";
    case Family::kPredictiveModel:
      return "PM";
    case Family::kInformationTheoretic:
      return "ITM";
  }
  return "?";
}

std::string_view FamilyName(Family family) {
  switch (family) {
    case Family::kDiscriminative:
      return "Discriminative Approach";
    case Family::kUnsupervisedParametric:
      return "Unsupervised Parametric Approach";
    case Family::kUnsupervisedOnline:
      return "Unsupervised Online Approach";
    case Family::kSupervised:
      return "Supervised Approach";
    case Family::kNormalPatternDb:
      return "Normal Pattern Database";
    case Family::kNegativeMixedDb:
      return "Negative and Mixed Pattern Database";
    case Family::kOutlierSubsequence:
      return "Outlier Subsequence";
    case Family::kPredictiveModel:
      return "Predictive Model";
    case Family::kInformationTheoretic:
      return "Information-Theoretic Model";
  }
  return "?";
}

std::string DataTypeMask::ToString() const {
  std::string out;
  auto add = [&out](std::string_view tag) {
    if (!out.empty()) out += ",";
    out += tag;
  };
  if (points) add("PTS");
  if (sequences) add("SSQ");
  if (time_series) add("TSS");
  return out;
}

}  // namespace hod::detect
