// E2 — Fig. 1: the four temporal outlier types (additive, innovative,
// temporary change, level shift).
//
// The paper displays the shapes; this bench measures how detectable each
// type is, by detector family and disturbance magnitude — the empirical
// content behind the paper's claim that "different types of outliers must
// be identified for each hierarchy" and that algorithms must be matched to
// the outlier type.

#include <functional>
#include <memory>

#include "bench_util.h"
#include "detect/ar_detector.h"
#include "detect/baseline.h"
#include "detect/em_detector.h"
#include "detect/fsa_detector.h"
#include "detect/adapters.h"
#include "detect/rare_subsequence.h"
#include "detect/window_db.h"
#include "eval/metrics.h"
#include "sim/datasets.h"

namespace hod {
namespace {

using DetectorFactory = std::function<std::unique_ptr<detect::SeriesDetector>()>;

struct FamilyCase {
  std::string label;
  DetectorFactory make;
};

std::vector<FamilyCase> Families() {
  return {
      {"PM  AutoregressiveModel",
       [] { return std::make_unique<detect::ArDetector>(); }},
      {"DA  EM+Windows",
       [] {
         return detect::MakeSeriesFromVectorWindows(
             std::make_unique<detect::EmDetector>(), 32, 8);
       }},
      {"UPA FSA+SAX",
       [] {
         return detect::MakeSeriesFromSequence(
             std::make_unique<detect::FsaDetector>(), ts::SaxOptions{0, 5});
       }},
      {"NPD WindowDb+SAX",
       [] {
         return detect::MakeSeriesFromSequence(
             std::make_unique<detect::WindowDbDetector>(),
             ts::SaxOptions{0, 5});
       }},
      {"OS  RareSubsequence+SAX",
       [] {
         return detect::MakeSeriesFromSequence(
             std::make_unique<detect::RareSubsequenceDetector>(),
             ts::SaxOptions{0, 5});
       }},
      {"--  RobustZ baseline",
       [] { return std::make_unique<detect::RobustZSeriesDetector>(); }},
  };
}

/// Mean best-F1 of `detector` on series carrying only `type` at
/// `magnitude` sigmas. `segment_level` switches between pointwise
/// (tolerance-3) F1 and segment/event F1 — the latter is the fair metric
/// for sustained disturbances, where catching the event once is what an
/// operator needs.
double MeasureF1(const DetectorFactory& make, sim::OutlierType type,
                 double magnitude, bool segment_level = false) {
  sim::SeriesDatasetOptions options;
  options.seed = 7;
  options.only_type = &type;
  options.magnitude = magnitude;
  options.anomalies_per_series = 3;
  auto dataset = sim::GenerateSeriesDataset(options).value();
  auto detector = make();
  if (!detector->Train(dataset.train).ok()) return 0.0;
  double f1_sum = 0.0;
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores_or = detector->Score(dataset.test[s]);
    if (!scores_or.ok()) return 0.0;
    f1_sum += segment_level
                  ? eval::BestSegmentF1(scores_or.value(),
                                        dataset.test_labels[s], 3)
                        ->f1
                  : eval::BestF1WithTolerance(scores_or.value(),
                                              dataset.test_labels[s], 3)
                        ->f1;
  }
  return f1_sum / static_cast<double>(dataset.test.size());
}

}  // namespace
}  // namespace hod

int main() {
  using namespace hod;
  bench::PrintHeader("E2", "Detectability of the four outlier types",
                     "Fig. 1 (outlier types)");

  bench::PrintSection(
      "Event-tolerant best-F1 by type and detector family (magnitude 6 "
      "sigma)");
  Table by_family({"Family / detector", "AO", "IO", "TC", "LS"});
  for (const auto& family : Families()) {
    std::vector<std::string> row = {family.label};
    for (sim::OutlierType type : sim::AllOutlierTypes()) {
      row.push_back(bench::Fmt(MeasureF1(family.make, type, 6.0), 2));
    }
    by_family.AddRow(row);
  }
  by_family.Print(std::cout);
  std::cout << "\nExpected shape: the prediction model (PM) nails the "
               "isolated spike (AO)\nand change onsets; window/database "
               "families hold up better on the sustained\ntypes (TC/LS); "
               "the global-value baseline misses in-range disturbances.\n";

  bench::PrintSection("Magnitude sweep (AutoregressiveModel, best-F1)");
  Table sweep({"Type", "2s", "3s", "4s", "6s", "8s"});
  for (sim::OutlierType type : sim::AllOutlierTypes()) {
    std::vector<std::string> row = {
        std::string(sim::OutlierTypeName(type))};
    for (double magnitude : {2.0, 3.0, 4.0, 6.0, 8.0}) {
      row.push_back(bench::Fmt(
          MeasureF1([] { return std::make_unique<detect::ArDetector>(); },
                    type, magnitude),
          2));
    }
    sweep.AddRow(row);
  }
  sweep.Print(std::cout);
  std::cout << "\nExpected shape: detection quality rises monotonically with "
               "magnitude;\nadditive outliers become detectable earliest.\n";

  bench::PrintSection(
      "Segment (event-level) best-F1 by type and family — the operator "
      "metric");
  Table segment_table({"Family / detector", "AO", "IO", "TC", "LS"});
  for (const auto& family : Families()) {
    std::vector<std::string> row = {family.label};
    for (sim::OutlierType type : sim::AllOutlierTypes()) {
      row.push_back(bench::Fmt(
          MeasureF1(family.make, type, 6.0, /*segment_level=*/true), 2));
    }
    segment_table.AddRow(row);
  }
  segment_table.Print(std::cout);
  std::cout << "\nExpected: sustained types (IO/TC/LS) score much higher "
               "here than pointwise —\ncatching the event once is enough; "
               "the family ordering is preserved.\n";
  return 0;
}
