#ifndef HOD_CORE_BASELINE_LIFECYCLE_H_
#define HOD_CORE_BASELINE_LIFECYCLE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace hod::core {

/// Posterior summary used to seed a freshly-reset baseline so a channel
/// resumes scoring immediately at its new regime instead of re-entering
/// warmup blind. Produced by whoever confirmed the regime change (BOCPD's
/// post-shift run-length bucket, an operator-entered setpoint, ...).
struct BaselineSeed {
  /// New process level (becomes the model intercept).
  double level = 0.0;
  /// Residual scale at the new level (floored to the monitor's sigma
  /// floor on installation).
  double sigma = 1.0;
  /// Number of samples backing the estimate — diagnostic only, recorded
  /// so audits can tell a 3-sample seed from a 300-sample one.
  uint64_t support = 0;
};

/// Who is clearing / freezing a baseline. Every lifecycle mutation is
/// attributed to an actor so "who may clear a baseline, and when" is one
/// audited contract instead of three divergent code paths.
enum class BaselineActor : uint8_t {
  /// Manual intervention (examples, tooling).
  kOperator,
  /// A confirmed online concept shift (BOCPD) re-baselining the channel.
  kConceptShift,
  /// The sensor-health FSM excluding a quarantined channel.
  kHealthQuarantine,
  /// Quarantine-onset correlation freezing a whole group at once.
  kGroupOutage,
  /// Checkpoint restore re-installing persisted state.
  kCheckpointRestore,
};

std::string_view BaselineActorName(BaselineActor actor);

/// The single contract for clearing, suspending, and resuming a channel's
/// learned baseline. Implemented by `OnlineMonitor` (one channel) and
/// `BatchMonitorBank` lanes (per-lane, without disturbing siblings or the
/// SIMD wave path); the stream health FSM and checkpoint v5 speak the
/// same vocabulary.
///
/// Rules of the contract:
///  - `ResetBaseline` with a seed installs a degenerate ready model at
///    `seed.level` (scoring resumes immediately); without a seed the
///    channel returns to warmup. Either way alarm state and hysteresis
///    streaks clear; identity counters (samples seen, alarms raised)
///    survive.
///  - A reset on a FROZEN baseline does not apply immediately: it is
///    recorded and applied at the next `ThawBaseline`. This is what makes
///    "a shift confirmed during quarantine must not thaw the channel
///    early, and recovery seeds from the post-shift posterior" hold by
///    construction.
///  - `FreezeBaseline` marks the baseline immutable; it does NOT change
///    push behaviour (the health FSM both freezes and withholds samples).
///  - `baseline_epoch()` increments once per APPLIED reset — deferred
///    resets bump it when applied, so equality of epochs across a
///    checkpoint round-trip certifies lifecycle parity.
class BaselineLifecycle {
 public:
  virtual ~BaselineLifecycle() = default;

  /// Clears the learned baseline (deferred while frozen — see above).
  virtual void ResetBaseline(BaselineActor actor,
                             const std::optional<BaselineSeed>& seed) = 0;
  /// Marks the baseline immutable. Idempotent.
  virtual void FreezeBaseline(BaselineActor actor) = 0;
  /// Lifts a freeze, applying any reset deferred while frozen. Returns
  /// true when a pending reset was applied. Idempotent (false if not
  /// frozen or nothing pending).
  virtual bool ThawBaseline(BaselineActor actor) = 0;
  virtual bool baseline_frozen() const = 0;
  virtual uint64_t baseline_epoch() const = 0;
};

}  // namespace hod::core

#endif  // HOD_CORE_BASELINE_LIFECYCLE_H_
