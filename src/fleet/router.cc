#include "fleet/router.h"

#include <utility>

namespace hod::fleet {

Status FleetRouter::Add(const std::string& plant_id,
                        std::shared_ptr<PlantHandle> handle) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = plants_.emplace(plant_id, std::move(handle));
  if (!inserted) {
    return Status::InvalidArgument("plant already routed: " + plant_id);
  }
  return Status::Ok();
}

std::shared_ptr<PlantHandle> FleetRouter::Resolve(
    std::string_view plant_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = plants_.find(plant_id);
  return it == plants_.end() ? nullptr : it->second;
}

std::shared_ptr<PlantHandle> FleetRouter::Remove(const std::string& plant_id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = plants_.find(plant_id);
  if (it == plants_.end()) return nullptr;
  std::shared_ptr<PlantHandle> handle = std::move(it->second);
  plants_.erase(it);
  return handle;
}

std::vector<std::string> FleetRouter::PlantIds() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> ids;
  ids.reserve(plants_.size());
  for (const auto& [id, handle] : plants_) ids.push_back(id);
  return ids;
}

std::vector<std::shared_ptr<PlantHandle>> FleetRouter::Handles() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::shared_ptr<PlantHandle>> handles;
  handles.reserve(plants_.size());
  for (const auto& [id, handle] : plants_) handles.push_back(handle);
  return handles;
}

size_t FleetRouter::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return plants_.size();
}

}  // namespace hod::fleet
