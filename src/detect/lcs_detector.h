#ifndef HOD_DETECT_LCS_DETECTOR_H_
#define HOD_DETECT_LCS_DETECTOR_H_

#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Longest-common-subsequence anomaly detection (Budalakoti et al. 2006) —
/// Table 1 row 2, family DA, data type SSQ.
///
/// Normal windows are clustered around medoids by LCS similarity; a test
/// window's outlierness is 1 - (best LCS similarity to any medoid). Unlike
/// the positional match count, LCS tolerates insertions/deletions, so it
/// detects structural deviations rather than misalignments.
struct LcsOptions {
  size_t window = 12;
  /// Number of medoids kept per training pass (greedy k-medoid selection).
  size_t medoids = 16;
  /// Cap on distinct training windows considered when picking medoids.
  size_t max_candidates = 1024;
};

class LcsDetector : public SequenceDetector {
 public:
  explicit LcsDetector(LcsOptions options = {});

  std::string name() const override { return "LongestCommonSubsequence"; }

  Status Train(const std::vector<ts::DiscreteSequence>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::DiscreteSequence& sequence) const override;

  /// Medoid windows selected during training (exposed for inspection).
  const std::vector<std::vector<ts::Symbol>>& medoids() const {
    return medoids_;
  }

 private:
  LcsOptions options_;
  std::vector<std::vector<ts::Symbol>> medoids_;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_LCS_DETECTOR_H_
