#include "detect/dynamic_clustering.h"

#include <algorithm>

#include "timeseries/distance.h"
#include "timeseries/window.h"

namespace hod::detect {

DynamicClusteringDetector::DynamicClusteringDetector(
    DynamicClusteringOptions options)
    : options_(options) {}

Status DynamicClusteringDetector::Train(
    const std::vector<ts::DiscreteSequence>& normal) {
  if (options_.window == 0) {
    return Status::InvalidArgument("window must be > 0");
  }
  if (options_.radius < 0.0 || options_.radius > 1.0) {
    return Status::InvalidArgument("radius must be in [0,1]");
  }
  leaders_.clear();
  cluster_counts_.clear();
  total_windows_ = 0;
  for (const auto& sequence : normal) {
    HOD_RETURN_IF_ERROR(sequence.Validate());
    for (auto& window : ts::SymbolWindows(sequence.symbols(), options_.window)) {
      ++total_windows_;
      bool placed = false;
      for (size_t c = 0; c < leaders_.size(); ++c) {
        auto match_or = ts::MatchFraction(window, leaders_[c]);
        if (!match_or.ok()) return match_or.status();
        if (1.0 - match_or.value() <= options_.radius) {
          ++cluster_counts_[c];
          placed = true;
          break;
        }
      }
      if (!placed) {
        leaders_.push_back(std::move(window));
        cluster_counts_.push_back(1);
      }
    }
  }
  if (total_windows_ == 0) {
    return Status::InvalidArgument("no training windows");
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> DynamicClusteringDetector::Score(
    const ts::DiscreteSequence& sequence) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  const size_t n = sequence.size();
  std::vector<double> point_scores(n, 0.0);
  if (n < options_.window) return point_scores;

  auto spans_or = ts::SlidingWindows(n, options_.window, 1);
  if (!spans_or.ok()) return spans_or.status();
  const auto& spans = spans_or.value();

  const double small_threshold =
      options_.small_cluster_fraction * static_cast<double>(total_windows_);
  std::vector<double> window_scores(spans.size(), 0.0);
  for (size_t w = 0; w < spans.size(); ++w) {
    const std::vector<ts::Symbol> window(
        sequence.symbols().begin() + spans[w].begin,
        sequence.symbols().begin() + spans[w].end);
    // Nearest leader by mismatch fraction.
    double best_mismatch = 1.0;
    size_t best_cluster = leaders_.size();
    for (size_t c = 0; c < leaders_.size(); ++c) {
      auto match_or = ts::MatchFraction(window, leaders_[c]);
      if (!match_or.ok()) return match_or.status();
      const double mismatch = 1.0 - match_or.value();
      if (mismatch < best_mismatch) {
        best_mismatch = mismatch;
        best_cluster = c;
      }
    }
    if (best_cluster == leaders_.size() || best_mismatch > options_.radius) {
      // Would found a new cluster: maximally anomalous neighborhood.
      window_scores[w] = 1.0;
    } else {
      const double mass =
          static_cast<double>(cluster_counts_[best_cluster]);
      if (mass < small_threshold && small_threshold > 0.0) {
        // Small (rare) training cluster: anomalous in proportion to rarity.
        window_scores[w] = 1.0 - mass / small_threshold;
      } else {
        // Dense cluster: mild score from the residual mismatch.
        window_scores[w] =
            options_.radius > 0.0 ? 0.5 * best_mismatch / options_.radius : 0.0;
      }
    }
  }
  return ts::WindowScoresToPointScores(n, spans, window_scores);
}

}  // namespace hod::detect
