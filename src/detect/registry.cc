#include "detect/registry.h"

#include "detect/adapters.h"
#include "detect/anomaly_dictionary.h"
#include "detect/ar_detector.h"
#include "detect/dynamic_clustering.h"
#include "detect/em_detector.h"
#include "detect/fsa_detector.h"
#include "detect/histogram_deviant.h"
#include "detect/hmm_detector.h"
#include "detect/lcs_detector.h"
#include "detect/match_count.h"
#include "detect/mlp_detector.h"
#include "detect/ocsvm_detector.h"
#include "detect/olap_cube.h"
#include "detect/pca_detector.h"
#include "detect/phased_kmeans.h"
#include "detect/rare_subsequence.h"
#include "detect/rule_classifier.h"
#include "detect/rule_learning.h"
#include "detect/single_linkage.h"
#include "detect/som_detector.h"
#include "detect/vibration_signature.h"
#include "detect/window_db.h"

namespace hod::detect {

namespace {

/// SeriesDetector facade over the whole-series PhasedKMeansDetector: the
/// per-sample score is the series-level outlierness broadcast to every
/// sample (the anomaly unit is the series itself).
class PhasedKMeansSeriesFacade : public SeriesDetector {
 public:
  std::string name() const override { return "PhasedKMeans"; }

  Status Train(const std::vector<ts::TimeSeries>& normal) override {
    return inner_.Train(normal);
  }

  StatusOr<std::vector<double>> Score(
      const ts::TimeSeries& series) const override {
    HOD_ASSIGN_OR_RETURN(double score, inner_.ScoreSeries(series));
    return std::vector<double>(series.size(), score);
  }

 private:
  PhasedKMeansDetector inner_;
};

ts::SaxOptions DefaultSax() {
  return ts::SaxOptions{.word_length = 0, .alphabet_size = 5};
}

constexpr size_t kWindow = 32;
constexpr size_t kStride = 8;
constexpr size_t kSymbolWindow = 6;

}  // namespace

const std::vector<TechniqueInfo>& Table1() {
  static const std::vector<TechniqueInfo>* kTable = new std::vector<
      TechniqueInfo>{
      {1, "Match Count Sequence Similarity", "[16] Lane & Brodley 1997",
       Family::kDiscriminative, {false, true, false}, false, false},
      {2, "Longest Common Subsequence", "[2] Budalakoti et al. 2006",
       Family::kDiscriminative, {false, true, false}, false, false},
      {3, "Vibration Signature", "[28] Nairac et al. 1999",
       Family::kDiscriminative, {true, false, true}, false, false},
      {4, "Expectation-Maximization", "[30] Pan et al. 2008",
       Family::kDiscriminative, {true, true, true}, false, false},
      {5, "Phased k-Means", "[36] Rebbapragada et al. 2009",
       Family::kDiscriminative, {false, false, true}, false, true},
      {6, "Dynamic Clustering", "[37] Sequeira & Zaki 2002",
       Family::kDiscriminative, {false, true, true}, false, false},
      {7, "Single-linkage clustering", "[32] Portnoy et al. 2001",
       Family::kDiscriminative, {true, true, true}, false, false},
      {8, "Principal Component Space", "[13] Gupta & Singh 2013",
       Family::kDiscriminative, {false, false, true}, false, false},
      {9, "Support Vector Machine", "[6] Eskin et al. 2002",
       Family::kDiscriminative, {true, true, true}, false, false},
      {10, "Self-Organizing Map", "[11] Gonzalez & Dasgupta 2003",
       Family::kDiscriminative, {true, true, true}, false, false},
      {11, "Finite State Automata", "[25] Marceau 2005",
       Family::kUnsupervisedParametric, {false, true, true}, false, false},
      {12, "Hidden Markov Models", "[7] Florez-Larrahondo et al. 2005",
       Family::kUnsupervisedParametric, {false, true, true}, false, false},
      {13, "Online Analytical Processing Cube", "[20] Li & Han 2007",
       Family::kUnsupervisedOnline, {true, false, true}, false, false},
      {14, "Rule Learning", "[18] Lee & Stolfo 1998", Family::kSupervised,
       {false, true, true}, true, false},
      {15, "Neural Networks", "[10] Ghosh et al. 1999", Family::kSupervised,
       {true, true, true}, true, false},
      {16, "Rule Based Classifier", "[19] Li et al. 2007",
       Family::kSupervised, {true, false, false}, true, false},
      {17, "Window Sequence", "[17] Lane & Brodley 1997",
       Family::kNormalPatternDb, {false, true, false}, false, false},
      {18, "Anomaly Dictionary", "[3] Cabrera et al. 2001",
       Family::kNegativeMixedDb, {false, true, false}, true, false},
      {19, "Symbolic Representation", "[22] Lin et al. 2003",
       Family::kOutlierSubsequence, {false, true, true}, false, false},
      {20, "Autoregressive Model", "[15] Hill & Minsker 2010",
       Family::kPredictiveModel, {true, false, true}, false, false},
      {21, "Histogram Representation", "[27] Muthukrishnan et al. 2004",
       Family::kInformationTheoretic, {true, false, false}, false, false},
  };
  return *kTable;
}

StatusOr<TechniqueInfo> FindTechnique(int row) {
  for (const TechniqueInfo& info : Table1()) {
    if (info.row == row) return info;
  }
  return Status::NotFound("no Table-1 row " + std::to_string(row));
}

StatusOr<std::unique_ptr<SequenceDetector>> MakeSequenceDetector(int row) {
  HOD_ASSIGN_OR_RETURN(TechniqueInfo info, FindTechnique(row));
  if (!info.mask.sequences) {
    return Status::InvalidArgument("Table 1 does not claim SSQ for row " +
                                   std::to_string(row));
  }
  switch (row) {
    case 1:
      return std::unique_ptr<SequenceDetector>(new MatchCountDetector());
    case 2:
      return std::unique_ptr<SequenceDetector>(new LcsDetector());
    case 4:
      return MakeSequenceFromVector(std::make_unique<EmDetector>(),
                                    kSymbolWindow);
    case 6:
      return std::unique_ptr<SequenceDetector>(
          new DynamicClusteringDetector());
    case 7:
      return MakeSequenceFromVector(std::make_unique<SingleLinkageDetector>(),
                                    kSymbolWindow);
    case 9:
      return MakeSequenceFromVector(std::make_unique<OcsvmDetector>(),
                                    kSymbolWindow);
    case 10:
      return MakeSequenceFromVector(std::make_unique<SomDetector>(),
                                    kSymbolWindow);
    case 11:
      return std::unique_ptr<SequenceDetector>(new FsaDetector());
    case 12:
      return std::unique_ptr<SequenceDetector>(new HmmDetector());
    case 14:
      return std::unique_ptr<SequenceDetector>(new RuleLearningDetector());
    case 15:
      return MakeSequenceFromVector(std::make_unique<MlpDetector>(),
                                    kSymbolWindow);
    case 17:
      return std::unique_ptr<SequenceDetector>(new WindowDbDetector());
    case 18:
      return std::unique_ptr<SequenceDetector>(
          new AnomalyDictionaryDetector());
    case 19:
      return std::unique_ptr<SequenceDetector>(new RareSubsequenceDetector());
    default:
      return Status::Internal("missing SSQ factory for row " +
                              std::to_string(row));
  }
}

StatusOr<std::unique_ptr<SeriesDetector>> MakeSeriesDetector(int row) {
  HOD_ASSIGN_OR_RETURN(TechniqueInfo info, FindTechnique(row));
  if (!info.mask.time_series) {
    return Status::InvalidArgument("Table 1 does not claim TSS for row " +
                                   std::to_string(row));
  }
  switch (row) {
    case 3:
      return std::unique_ptr<SeriesDetector>(new VibrationSignatureDetector());
    case 4:
      return MakeSeriesFromVectorWindows(std::make_unique<EmDetector>(),
                                         kWindow, kStride);
    case 5:
      return std::unique_ptr<SeriesDetector>(new PhasedKMeansSeriesFacade());
    case 6: {
      HOD_ASSIGN_OR_RETURN(std::unique_ptr<SequenceDetector> inner,
                           MakeSequenceDetector(6));
      return MakeSeriesFromSequence(std::move(inner), DefaultSax());
    }
    case 7:
      return MakeSeriesFromVectorWindows(
          std::make_unique<SingleLinkageDetector>(), kWindow, kStride);
    case 8:
      return MakeSeriesFromVectorWindows(std::make_unique<PcaDetector>(),
                                         kWindow, kStride);
    case 9:
      return MakeSeriesFromVectorWindows(std::make_unique<OcsvmDetector>(),
                                         kWindow, kStride);
    case 10:
      return MakeSeriesFromVectorWindows(std::make_unique<SomDetector>(),
                                         kWindow, kStride);
    case 11: {
      HOD_ASSIGN_OR_RETURN(std::unique_ptr<SequenceDetector> inner,
                           MakeSequenceDetector(11));
      return MakeSeriesFromSequence(std::move(inner), DefaultSax());
    }
    case 12: {
      HOD_ASSIGN_OR_RETURN(std::unique_ptr<SequenceDetector> inner,
                           MakeSequenceDetector(12));
      return MakeSeriesFromSequence(std::move(inner), DefaultSax());
    }
    case 13:
      return MakeSeriesFromVectorPoints(std::make_unique<OlapCubeDetector>(),
                                        /*include_phase=*/true);
    case 14: {
      HOD_ASSIGN_OR_RETURN(std::unique_ptr<SequenceDetector> inner,
                           MakeSequenceDetector(14));
      return MakeSeriesFromSequence(std::move(inner), DefaultSax());
    }
    case 15:
      return MakeSeriesFromVectorWindows(std::make_unique<MlpDetector>(),
                                         kWindow, kStride);
    case 19: {
      HOD_ASSIGN_OR_RETURN(std::unique_ptr<SequenceDetector> inner,
                           MakeSequenceDetector(19));
      return MakeSeriesFromSequence(std::move(inner), DefaultSax());
    }
    case 20:
      return std::unique_ptr<SeriesDetector>(new ArDetector());
    default:
      return Status::Internal("missing TSS factory for row " +
                              std::to_string(row));
  }
}

StatusOr<std::unique_ptr<VectorDetector>> MakeVectorDetector(int row) {
  HOD_ASSIGN_OR_RETURN(TechniqueInfo info, FindTechnique(row));
  if (!info.mask.points) {
    return Status::InvalidArgument("Table 1 does not claim PTS for row " +
                                   std::to_string(row));
  }
  switch (row) {
    case 3:
      return MakeVectorFromSeries(
          std::make_unique<VibrationSignatureDetector>());
    case 4:
      return std::unique_ptr<VectorDetector>(new EmDetector());
    case 7:
      return std::unique_ptr<VectorDetector>(new SingleLinkageDetector());
    case 9:
      return std::unique_ptr<VectorDetector>(new OcsvmDetector());
    case 10:
      return std::unique_ptr<VectorDetector>(new SomDetector());
    case 13:
      return std::unique_ptr<VectorDetector>(new OlapCubeDetector());
    case 15:
      return std::unique_ptr<VectorDetector>(new MlpDetector());
    case 16:
      return std::unique_ptr<VectorDetector>(new RuleClassifierDetector());
    case 20:
      return MakeVectorFromSeries(std::make_unique<ArDetector>());
    case 21:
      return std::unique_ptr<VectorDetector>(new HistogramDeviantDetector());
    default:
      return Status::Internal("missing PTS factory for row " +
                              std::to_string(row));
  }
}

}  // namespace hod::detect
