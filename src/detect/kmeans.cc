#include "detect/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "detect/distance.h"
#include "util/rng.h"

namespace hod::detect {

StatusOr<NearestCentroid> FindNearestCentroid(
    const std::vector<std::vector<double>>& centroids,
    const std::vector<double>& point) {
  if (centroids.empty()) {
    return Status::FailedPrecondition("no centroids");
  }
  NearestCentroid best;
  best.distance = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids.size(); ++c) {
    if (centroids[c].size() != point.size()) {
      return Status::InvalidArgument("dimension mismatch vs centroid");
    }
    const double d = SquaredDistance(centroids[c].data(), point.data(),
                                     point.size());
    if (d < best.distance) {
      best.distance = d;
      best.index = c;
    }
  }
  best.distance = std::sqrt(best.distance);
  return best;
}

StatusOr<KMeansResult> KMeans(const std::vector<std::vector<double>>& data,
                              size_t k, size_t max_iters, uint64_t seed) {
  if (data.empty()) return Status::InvalidArgument("k-means on empty data");
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  const size_t dim = data[0].size();
  for (const auto& row : data) {
    if (row.size() != dim) {
      return Status::InvalidArgument("ragged data in k-means");
    }
  }
  k = std::min(k, data.size());
  Rng rng(seed);

  // k-means++ seeding.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(data[rng.NextBelow(data.size())]);
  std::vector<double> min_sq(data.size(),
                             std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    for (size_t i = 0; i < data.size(); ++i) {
      min_sq[i] = std::min(min_sq[i], SquaredDistance(data[i].data(),
                                                      centroids.back().data(),
                                                      dim));
    }
    const size_t next = rng.WeightedIndex(min_sq);
    centroids.push_back(data[next]);
  }

  KMeansResult result;
  result.assignments.assign(data.size(), 0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    // Assignment step.
    for (size_t i = 0; i < data.size(); ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < centroids.size(); ++c) {
        const double d =
            SquaredDistance(data[i].data(), centroids[c].data(), dim);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignments[i] != best) {
        result.assignments[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dim, 0.0));
    std::vector<size_t> counts(k, 0);
    for (size_t i = 0; i < data.size(); ++i) {
      const size_t c = result.assignments[i];
      ++counts[c];
      for (size_t d = 0; d < dim; ++d) sums[c][d] += data[i][d];
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep the old centroid for empty clusters
      for (size_t d = 0; d < dim; ++d) {
        centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  result.centroids = std::move(centroids);
  result.distances.resize(data.size());
  result.cluster_sizes.assign(k, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    result.distances[i] = std::sqrt(SquaredDistance(
        data[i].data(), result.centroids[result.assignments[i]].data(), dim));
    ++result.cluster_sizes[result.assignments[i]];
  }
  return result;
}

StatusOr<ColumnScaler> ColumnScaler::Fit(
    const std::vector<std::vector<double>>& data) {
  if (data.empty()) return Status::InvalidArgument("scaler fit on empty data");
  const size_t dim = data[0].size();
  ColumnScaler scaler;
  scaler.means.assign(dim, 0.0);
  scaler.stddevs.assign(dim, 0.0);
  for (const auto& row : data) {
    if (row.size() != dim) {
      return Status::InvalidArgument("ragged data in scaler fit");
    }
    for (size_t d = 0; d < dim; ++d) scaler.means[d] += row[d];
  }
  for (size_t d = 0; d < dim; ++d) {
    scaler.means[d] /= static_cast<double>(data.size());
  }
  for (const auto& row : data) {
    for (size_t d = 0; d < dim; ++d) {
      const double dev = row[d] - scaler.means[d];
      scaler.stddevs[d] += dev * dev;
    }
  }
  for (size_t d = 0; d < dim; ++d) {
    scaler.stddevs[d] =
        std::sqrt(scaler.stddevs[d] / static_cast<double>(data.size()));
  }
  return scaler;
}

Status ColumnScaler::ApplyRow(std::vector<double>& row) const {
  if (row.size() != means.size()) {
    return Status::InvalidArgument("dimension mismatch in scaler apply");
  }
  for (size_t d = 0; d < row.size(); ++d) {
    row[d] -= means[d];
    if (stddevs[d] > 0.0) row[d] /= stddevs[d];
  }
  return Status::Ok();
}

Status ColumnScaler::Apply(std::vector<std::vector<double>>& data) const {
  for (auto& row : data) {
    HOD_RETURN_IF_ERROR(ApplyRow(row));
  }
  return Status::Ok();
}

}  // namespace hod::detect
