#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace hod {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextU64() != b.NextU64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, GaussianShiftScale) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(23);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-0.5));
  EXPECT_TRUE(rng.NextBernoulli(1.5));
}

TEST(Rng, BernoulliRateApproximatesP) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(Rng, PoissonMean) {
  Rng rng(37);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(41);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(43);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(47);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.WeightedIndex(weights));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(53);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

}  // namespace
}  // namespace hod
