#include "detect/match_count.h"

#include <algorithm>
#include <set>

#include "detect/score_utils.h"
#include "timeseries/distance.h"
#include "timeseries/window.h"

namespace hod::detect {

MatchCountDetector::MatchCountDetector(MatchCountOptions options)
    : options_(options) {}

Status MatchCountDetector::Train(
    const std::vector<ts::DiscreteSequence>& normal) {
  if (options_.window == 0) {
    return Status::InvalidArgument("window must be > 0");
  }
  std::set<std::vector<ts::Symbol>> unique;
  for (const auto& sequence : normal) {
    HOD_RETURN_IF_ERROR(sequence.Validate());
    for (auto& w : ts::SymbolWindows(sequence.symbols(), options_.window)) {
      unique.insert(std::move(w));
    }
  }
  if (unique.empty()) {
    return Status::InvalidArgument(
        "no training windows (sequences shorter than window?)");
  }
  library_.assign(unique.begin(), unique.end());
  if (library_.size() > options_.max_library) {
    // Deterministic subsample: keep every ceil(n/max)-th window of the
    // sorted library.
    const size_t step =
        (library_.size() + options_.max_library - 1) / options_.max_library;
    std::vector<std::vector<ts::Symbol>> sampled;
    for (size_t i = 0; i < library_.size(); i += step) {
      sampled.push_back(std::move(library_[i]));
    }
    library_ = std::move(sampled);
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> MatchCountDetector::Score(
    const ts::DiscreteSequence& sequence) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  const size_t n = sequence.size();
  std::vector<double> point_scores(n, 0.0);
  if (n < options_.window) return point_scores;

  auto spans_or = ts::SlidingWindows(n, options_.window, 1);
  if (!spans_or.ok()) return spans_or.status();
  const auto& spans = spans_or.value();

  std::vector<double> window_scores(spans.size(), 0.0);
  const size_t k = std::max<size_t>(1, options_.smoothing_k);
  std::vector<double> best(k);
  for (size_t w = 0; w < spans.size(); ++w) {
    const std::vector<ts::Symbol> window(
        sequence.symbols().begin() + spans[w].begin,
        sequence.symbols().begin() + spans[w].end);
    std::fill(best.begin(), best.end(), 0.0);
    for (const auto& stored : library_) {
      auto sim_or = ts::MatchFraction(window, stored);
      if (!sim_or.ok()) return sim_or.status();
      const double sim = sim_or.value();
      // Maintain the top-k similarities (small k: linear insert).
      auto it = std::min_element(best.begin(), best.end());
      if (sim > *it) *it = sim;
    }
    double sum = 0.0;
    for (double b : best) sum += b;
    const double similarity = sum / static_cast<double>(k);
    window_scores[w] = 1.0 - similarity;
  }
  return ts::WindowScoresToPointScores(n, spans, window_scores);
}

}  // namespace hod::detect
