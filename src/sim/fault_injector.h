#ifndef HOD_SIM_FAULT_INJECTOR_H_
#define HOD_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "stream/router.h"
#include "timeseries/time_series.h"
#include "util/rng.h"
#include "util/statusor.h"

namespace hod::sim {

/// The sensor/transport failure modes the robustness layer must survive —
/// the measurement-error half of the paper's outlier taxonomy, produced on
/// purpose: a faulted stream with exact ground truth is what turns "the
/// health FSM seems to work" into a measurable detection problem.
enum class FaultKind {
  kDropout,    ///< samples silently vanish (dead channel / lost link)
  kStuckAt,    ///< value freezes at its level when the fault hit
  kNaNBurst,   ///< values become NaN (ADC glitch, failed conversion)
  kGainDrift,  ///< multiplicative gain ramps away from 1 (decalibration)
  kDuplicate,  ///< every sample is delivered twice (at-least-once replay)
  kClockSkew,  ///< timestamps regress by a constant skew (bad clock)
  /// Correlated infrastructure failure: every sensor of a line goes silent
  /// over the same window (switch death, PLC reboot, severed trunk). Per
  /// sensor it behaves like kDropout; the point is the shared interval —
  /// ground truth for the engine's quarantine-onset correlation, which
  /// should collapse the storm into one group-outage finding. Scheduled
  /// via AddLineOutage, never drawn by PlanRandom (a random per-sensor
  /// draw would destroy exactly the correlation the kind exists to model).
  kLineOutage,
  /// Setpoint change: the process genuinely moves to a new operating
  /// level (step, or ramp over shift_ramp seconds). NOT a measurement
  /// error — the ground-truth instant is what concept-shift detection is
  /// measured against, so the channel should be re-baselined, not
  /// quarantined. Scheduled via AddLevelShift, never drawn by PlanRandom
  /// (shift benchmarks need exact, intentional instants, and a random
  /// setpoint change would poison fault-detection ground truth).
  kLevelShift,
};

std::string_view FaultKindName(FaultKind kind);

/// One scheduled fault on one sensor, active over [start, start+duration).
struct FaultProfile {
  FaultKind kind = FaultKind::kDropout;
  ts::TimePoint start = 0.0;
  double duration = 0.0;
  /// kGainDrift: relative gain added per second of fault time (the value
  /// is multiplied by 1 + rate * (ts - start)).
  double gain_rate = 0.02;
  /// kClockSkew: seconds subtracted from each timestamp.
  double skew = 32.0;
  /// kLevelShift: level offset added while the fault is active, and the
  /// seconds over which it ramps in (0 = instantaneous step).
  double shift_delta = 0.0;
  double shift_ramp = 0.0;
};

/// Ground-truth record of one injected fault (for detection metrics).
struct FaultInterval {
  std::string sensor_id;
  FaultKind kind = FaultKind::kDropout;
  ts::TimePoint start = 0.0;
  ts::TimePoint end = 0.0;  ///< exclusive
};

struct FaultInjectorOptions {
  uint64_t seed = 1234;
  /// PlanRandom draws each fault's duration uniformly from this range.
  double min_duration = 50.0;
  double max_duration = 200.0;
  /// Defaults applied to randomly planned faults.
  double gain_rate = 0.02;
  double skew = 32.0;
  /// Kinds PlanRandom chooses from; empty = all six.
  std::vector<FaultKind> kinds;
};

/// Deterministic fault injector for streaming simulations: sits between a
/// clean sample source and StreamEngine::Ingest, corrupting the samples of
/// scheduled sensors and recording exact ground-truth intervals.
///
/// Determinism: randomness is consumed only while planning (construction +
/// PlanRandom, driven by the seeded util Rng); `Apply` itself is a pure
/// function of the schedule and the per-sensor sample order. The same seed
/// and the same per-sensor input stream therefore produce the same faulted
/// stream regardless of thread interleaving across sensors.
///
/// Thread model (matches the engine's per-sensor ordering invariant):
/// after planning, concurrent `Apply` calls are safe as long as any single
/// sensor's samples come from one thread; the only mutable state is the
/// per-fault stuck-value latch of that sensor's own faults.
class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorOptions options = {});

  /// Schedules one fault by hand. InvalidArgument on empty id or
  /// non-positive duration.
  Status AddFault(const std::string& sensor_id, FaultProfile profile);

  /// Randomly picks `count` distinct victims from `sensor_ids` and gives
  /// each one fault with a random kind, start, and duration inside
  /// [window_start, window_end). Deterministic for a fixed seed.
  Status PlanRandom(const std::vector<std::string>& sensor_ids, size_t count,
                    ts::TimePoint window_start, ts::TimePoint window_end);

  /// Schedules one correlated kLineOutage across every listed sensor:
  /// all of them go silent over the same [start, start+duration) window,
  /// each with its own ground-truth interval. InvalidArgument on an empty
  /// list, a duplicated id, an empty id, or a non-positive duration.
  Status AddLineOutage(const std::vector<std::string>& sensor_ids,
                       ts::TimePoint start, double duration);

  /// Schedules one kLevelShift: `delta` is added to the sensor's values
  /// over [start, start+duration), ramping in over `ramp` seconds (0 =
  /// step). The ground-truth interval records the exact shift instant
  /// for detection-delay metrics. InvalidArgument on an empty id, a
  /// non-positive duration, a zero or non-finite delta, or a negative or
  /// non-finite ramp; a rejected call schedules nothing.
  Status AddLevelShift(const std::string& sensor_id, ts::TimePoint start,
                       double duration, double delta, double ramp = 0.0);

  /// Transforms one clean sample into the samples the wire would deliver:
  /// empty (dropout), one (possibly corrupted), or two (duplicate).
  /// Faults are matched on the sample's original timestamp.
  std::vector<stream::SensorSample> Apply(const stream::SensorSample& sample);

  /// Scheduled intervals, sorted by (sensor id, start).
  const std::vector<FaultInterval>& GroundTruth() const {
    return ground_truth_;
  }

  /// True when `sensor_id` has a fault covering `ts`.
  bool IsFaulted(const std::string& sensor_id, ts::TimePoint ts) const;

  /// True when `sensor_id` has any scheduled fault.
  bool IsVictim(const std::string& sensor_id) const {
    return faults_.find(sensor_id) != faults_.end();
  }

  size_t num_faults() const { return ground_truth_.size(); }

 private:
  struct ScheduledFault {
    FaultProfile profile;
    /// kStuckAt: the value latched from the first in-fault sample.
    bool has_stuck_value = false;
    double stuck_value = 0.0;
  };

  static bool Active(const FaultProfile& profile, ts::TimePoint ts) {
    return ts >= profile.start && ts < profile.start + profile.duration;
  }

  FaultInjectorOptions options_;
  Rng rng_;
  std::map<std::string, std::vector<ScheduledFault>> faults_;
  std::vector<FaultInterval> ground_truth_;
};

}  // namespace hod::sim

#endif  // HOD_SIM_FAULT_INJECTOR_H_
