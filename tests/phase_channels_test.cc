// Event-sequence and multivariate phase-level detection through the
// hierarchical detector — the "multi-dimensional, high-resolution sensor
// values ... either time series data or discrete value sequences" claim of
// the paper's Section 2, exercised end to end.

#include <gtest/gtest.h>

#include <cmath>

#include "core/hierarchical_detector.h"
#include "sim/plant.h"

namespace hod::core {
namespace {

class PhaseChannelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::PlantOptions options;
    options.num_lines = 1;
    options.machines_per_line = 1;
    options.jobs_per_machine = 10;
    options.seed = 71;
    sim::ScenarioOptions scenario;
    scenario.process_anomaly_rate = 0.3;
    scenario.glitch_rate = 0.0;
    scenario.rogue_machines = 0;
    scenario.bad_batch_lines = 0;
    plant_ = sim::BuildPlant(options, scenario).value();
    detector_ = std::make_unique<HierarchicalDetector>(&plant_.production);
    machine_ = &plant_.production.lines[0].machines[0];
  }

  sim::SimulatedPlant plant_;
  std::unique_ptr<HierarchicalDetector> detector_;
  const hierarchy::Machine* machine_ = nullptr;
};

TEST_F(PhaseChannelsTest, EventScoresMatchSequenceLength) {
  const auto& job = machine_->jobs[0];
  auto scores =
      detector_->ScorePhaseEvents(machine_->id, job.id, "printing");
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  EXPECT_EQ(scores->size(), job.phases[3].events.size());
  for (double s : scores.value()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(PhaseChannelsTest, FaultSymbolsScoreHighest) {
  // Find a job whose printing phase carries a process anomaly: its event
  // log contains FAULT symbols that the FSA flags.
  for (const sim::AnomalyRecord& record : plant_.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase ||
        record.measurement_error) {
      continue;
    }
    auto scores = detector_->ScorePhaseEvents(machine_->id, record.job_id,
                                              record.phase_name);
    ASSERT_TRUE(scores.ok());
    // Locate FAULT symbols in the ground-truth event log.
    const hierarchy::Job* job =
        hierarchy::FindJob(plant_.production, record.job_id).value();
    const hierarchy::Phase* phase = nullptr;
    for (const auto& p : job->phases) {
      if (p.name == record.phase_name) phase = &p;
    }
    ASSERT_NE(phase, nullptr);
    double fault_max = 0.0;
    double normal_mean = 0.0;
    size_t normal_count = 0;
    bool any_fault = false;
    for (size_t i = 0; i < phase->events.size(); ++i) {
      if (phase->events[i] == sim::kFaultSymbol) {
        any_fault = true;
        fault_max = std::max(fault_max, (*scores)[i]);
      } else {
        normal_mean += (*scores)[i];
        ++normal_count;
      }
    }
    if (!any_fault) continue;
    normal_mean /= static_cast<double>(normal_count);
    // Training is contaminated (several jobs carry FAULT events), so the
    // FSA classifies them as rare-but-known transitions; they must still
    // score clearly above the typical event.
    EXPECT_GT(fault_max, normal_mean + 0.05)
        << "FAULT events must stand out in " << record.job_id;
    EXPECT_GE(fault_max, 0.3);
    return;  // one confirmed case suffices
  }
  GTEST_SKIP() << "no process anomaly with fault events in this seed";
}

TEST_F(PhaseChannelsTest, EventDetectorCachedAcrossJobs) {
  auto first =
      detector_->ScorePhaseEvents(machine_->id, machine_->jobs[0].id,
                                  "printing");
  auto second =
      detector_->ScorePhaseEvents(machine_->id, machine_->jobs[0].id,
                                  "printing");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
}

TEST_F(PhaseChannelsTest, EventScoreUnknownScopeRejected) {
  EXPECT_FALSE(
      detector_->ScorePhaseEvents("ghost", "ghost-job", "printing").ok());
  EXPECT_FALSE(detector_
                   ->ScorePhaseEvents(machine_->id, machine_->jobs[0].id,
                                      "ghost-phase")
                   .ok());
}

TEST_F(PhaseChannelsTest, MultivariateScoresMatchPhaseLength) {
  const auto& job = machine_->jobs[0];
  auto scores =
      detector_->ScorePhaseMultivariate(machine_->id, job.id, "printing");
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  EXPECT_EQ(scores->size(),
            job.phases[3].sensor_series.begin()->second.size());
  for (double s : scores.value()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(PhaseChannelsTest, MultivariateSeesInjectedProcessAnomaly) {
  // A process anomaly moves one physical quantity away from what the
  // other channels predict — the joint VAR residual spikes near it.
  for (const sim::AnomalyRecord& record : plant_.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase ||
        record.measurement_error) {
      continue;
    }
    auto scores = detector_->ScorePhaseMultivariate(
        machine_->id, record.job_id, record.phase_name);
    ASSERT_TRUE(scores.ok());
    // Index of the injection inside the phase.
    const hierarchy::Job* job =
        hierarchy::FindJob(plant_.production, record.job_id).value();
    const hierarchy::Phase* phase = nullptr;
    for (const auto& p : job->phases) {
      if (p.name == record.phase_name) phase = &p;
    }
    ASSERT_NE(phase, nullptr);
    const auto& any_series = phase->sensor_series.begin()->second;
    const size_t index = static_cast<size_t>(
        (record.start_time - any_series.start_time()) /
        any_series.interval());
    double near_max = 0.0;
    for (size_t i = index >= 3 ? index - 3 : 0;
         i < std::min(scores->size(), index + 4); ++i) {
      near_max = std::max(near_max, (*scores)[i]);
    }
    double typical = 0.0;
    size_t count = 0;
    for (size_t i = 0; i < scores->size(); ++i) {
      if (i + 10 < index || i > index + 10) {
        typical += (*scores)[i];
        ++count;
      }
    }
    typical /= static_cast<double>(std::max<size_t>(count, 1));
    EXPECT_GT(near_max, typical + 0.2)
        << record.job_id << " " << record.phase_name;
    return;  // one confirmed case suffices
  }
  GTEST_SKIP() << "no process anomaly in this seed";
}

TEST_F(PhaseChannelsTest, MultivariateModelCached) {
  auto a = detector_->ScorePhaseMultivariate(machine_->id,
                                             machine_->jobs[1].id, "warm_up");
  auto b = detector_->ScorePhaseMultivariate(machine_->id,
                                             machine_->jobs[1].id, "warm_up");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace hod::core
