#ifndef HOD_FLEET_ROUTER_H_
#define HOD_FLEET_ROUTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "stream/router.h"
#include "util/statusor.h"

namespace hod::fleet {

struct PlantHandle;

/// Where a plant lands in the fleet's placement space. Derived purely
/// from the plant id via the stream tier's StableHash64 (FNV-1a), so it
/// is identical across processes and restarts: a plant's slot — and
/// everything keyed off it, like its checkpoint stagger phase — never
/// moves because an unrelated plant joined or left.
struct PlantPlacement {
  uint64_t hash = 0;  ///< StableHash64(plant_id)
  size_t slot = 0;    ///< hash % num_slots
};

/// Plant-id keyed routing tier: resolves a plant id to its engine handle
/// under a reader/writer lock, with stable-hash placement metadata.
/// Handles are shared_ptr so a racing Ingest keeps the engine alive while
/// RemovePlant drains it — the engine's own state machine rejects samples
/// arriving after its Stop().
class FleetRouter {
 public:
  explicit FleetRouter(size_t num_slots = 256)
      : num_slots_(num_slots == 0 ? 1 : num_slots) {}

  /// Pure function of (plant_id, num_slots): deterministic placement.
  static PlantPlacement Place(std::string_view plant_id, size_t num_slots) {
    PlantPlacement placement;
    placement.hash = stream::StableHash64(plant_id);
    placement.slot = num_slots == 0 ? 0 : placement.hash % num_slots;
    return placement;
  }

  PlantPlacement Place(std::string_view plant_id) const {
    return Place(plant_id, num_slots_);
  }

  /// Registers a plant. InvalidArgument if the id is already routed.
  Status Add(const std::string& plant_id, std::shared_ptr<PlantHandle> handle);

  /// Looks up a plant's handle; nullptr when unknown (or removed).
  std::shared_ptr<PlantHandle> Resolve(std::string_view plant_id) const;

  /// Unroutes a plant and returns its handle (nullptr when unknown). New
  /// Ingest calls stop resolving immediately; in-flight holders of the
  /// shared_ptr finish against the still-live engine.
  std::shared_ptr<PlantHandle> Remove(const std::string& plant_id);

  /// Sorted ids of every routed plant.
  std::vector<std::string> PlantIds() const;

  /// Handles of every routed plant, in id order.
  std::vector<std::shared_ptr<PlantHandle>> Handles() const;

  size_t size() const;
  size_t num_slots() const { return num_slots_; }

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<PlantHandle>, std::less<>> plants_;
  size_t num_slots_;
};

}  // namespace hod::fleet

#endif  // HOD_FLEET_ROUTER_H_
