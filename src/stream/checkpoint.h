#ifndef HOD_STREAM_CHECKPOINT_H_
#define HOD_STREAM_CHECKPOINT_H_

#include <array>
#include <cstdint>
#include <istream>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "core/bocpd.h"
#include "core/monitor.h"
#include "core/report.h"
#include "stream/engine.h"
#include "stream/health.h"
#include "stream/stats.h"
#include "util/statusor.h"

namespace hod::stream {

/// Everything a StreamEngine must persist to resume where it left off:
/// per-sensor monitor baselines, timestamp frontiers, and health FSMs,
/// plus the collector's aggregates, the alert manager's findings, and the
/// stats counters. The monitor configuration travels along as a
/// fingerprint — restore refuses a checkpoint taken under different
/// scoring options, because "resume byte-identically" would be a lie.
struct EngineCheckpoint {
  /// Configuration fingerprint (validated on restore).
  core::OnlineMonitorOptions monitor;
  double out_of_order_tolerance = 0.0;
  /// Concept-shift layer fingerprint (v5): whether BOCPD ran, and under
  /// which tuning — restoring a shift-enabled image under different BOCPD
  /// options would silently change detection behavior, so it is refused
  /// like a monitor-options mismatch.
  bool shift_enabled = false;
  core::BocpdOptions bocpd;

  struct SensorState {
    std::string sensor_id;
    hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
    bool has_policy = false;
    BackpressurePolicy policy = BackpressurePolicy::kBlock;
    /// Router out-of-order frontier (may be -inf: nothing accepted yet).
    ts::TimePoint frontier = 0.0;
    SensorHealthStatus health;
    core::OnlineMonitorState monitor;
    /// v5: the sensor's BOCPD run-length posterior, present iff the
    /// engine ran with the concept-shift layer enabled.
    bool has_bocpd = false;
    core::BocpdState bocpd;
  };
  /// Sorted by sensor id (deterministic bytes for identical state).
  std::vector<SensorState> sensors;

  /// Collector aggregates.
  std::array<LevelOutlierState, hierarchy::kNumLevels> levels{};
  std::vector<ActiveAlarm> active_alarms;
  std::vector<QuarantinedSensor> quarantined;
  uint64_t events_seen = 0;
  uint64_t events_at_last_snapshot = 0;
  uint64_t next_sequence = 1;

  /// Space-axis layer (v4): peer-group membership + rolling state, the
  /// quarantine-onset correlation deque, and the open outage, if any.
  std::vector<PeerGroupState> peer_groups;
  std::vector<QuarantinedSensor> pending_faults;
  bool outage_active = false;
  ts::TimePoint outage_since = 0.0;
  std::vector<std::string> outage_members;
  ts::TimePoint collector_frontier =
      -std::numeric_limits<ts::TimePoint>::infinity();

  /// Concept-shift audit ring + lifetime total (v5): what the snapshot
  /// publishes so a restored engine's EscalationBridge still sees shifts
  /// that confirmed before the kill.
  std::vector<ConceptShiftEvent> recent_shifts;
  uint64_t concept_shifts_total = 0;

  /// Alert manager input (episodes are re-derived on demand).
  std::vector<core::OutlierFinding> findings;

  StreamStatsSnapshot stats;
};

/// Writes a versioned little-endian binary image of `checkpoint`.
/// The encoding is deterministic: identical state -> identical bytes.
Status WriteEngineCheckpoint(const EngineCheckpoint& checkpoint,
                             std::ostream& os);

/// Parses an image written by WriteEngineCheckpoint. Typed errors on
/// truncation, bad magic, unsupported version, or out-of-range enums.
StatusOr<EngineCheckpoint> ReadEngineCheckpoint(std::istream& is);

}  // namespace hod::stream

#endif  // HOD_STREAM_CHECKPOINT_H_
