#include "detect/som_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "timeseries/stats.h"
#include "util/rng.h"

namespace hod::detect {

SomDetector::SomDetector(SomOptions options) : options_(options) {}

Status SomDetector::Train(const std::vector<std::vector<double>>& data) {
  if (data.empty()) return Status::InvalidArgument("SOM on empty data");
  if (options_.rows == 0 || options_.cols == 0) {
    return Status::InvalidArgument("grid must be non-empty");
  }
  dim_ = data[0].size();
  HOD_ASSIGN_OR_RETURN(scaler_, ColumnScaler::Fit(data));
  std::vector<std::vector<double>> scaled = data;
  HOD_RETURN_IF_ERROR(scaler_.Apply(scaled));

  const size_t units = options_.rows * options_.cols;
  Rng rng(options_.seed);
  units_.assign(units, std::vector<double>(dim_, 0.0));
  for (auto& unit : units_) {
    // Initialize from random training samples (jittered).
    const auto& sample = scaled[rng.NextBelow(scaled.size())];
    for (size_t k = 0; k < dim_; ++k) {
      unit[k] = sample[k] + 0.01 * rng.NextGaussian();
    }
  }

  double radius0 = options_.initial_radius;
  if (radius0 <= 0.0) {
    radius0 = static_cast<double>(std::max(options_.rows, options_.cols)) / 2.0;
  }
  std::vector<size_t> order(scaled.size());
  std::iota(order.begin(), order.end(), 0);

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    const double progress =
        static_cast<double>(epoch) / static_cast<double>(options_.epochs);
    const double lr = options_.initial_learning_rate * (1.0 - progress);
    const double radius = std::max(radius0 * (1.0 - progress), 0.5);
    const double two_r2 = 2.0 * radius * radius;
    rng.Shuffle(order);
    for (size_t idx : order) {
      const auto& x = scaled[idx];
      // Best matching unit.
      size_t bmu = 0;
      double best = std::numeric_limits<double>::infinity();
      for (size_t u = 0; u < units; ++u) {
        double d = 0.0;
        for (size_t k = 0; k < dim_; ++k) {
          const double dev = x[k] - units_[u][k];
          d += dev * dev;
        }
        if (d < best) {
          best = d;
          bmu = u;
        }
      }
      const double br = static_cast<double>(bmu / options_.cols);
      const double bc = static_cast<double>(bmu % options_.cols);
      // Neighborhood update.
      for (size_t u = 0; u < units; ++u) {
        const double ur = static_cast<double>(u / options_.cols);
        const double uc = static_cast<double>(u % options_.cols);
        const double grid_d2 = (ur - br) * (ur - br) + (uc - bc) * (uc - bc);
        if (grid_d2 > 9.0 * radius * radius) continue;  // negligible influence
        const double h = std::exp(-grid_d2 / two_r2);
        const double step = lr * h;
        for (size_t k = 0; k < dim_; ++k) {
          units_[u][k] += step * (x[k] - units_[u][k]);
        }
      }
    }
  }

  // Baseline: 95th percentile of training quantization errors.
  trained_ = true;
  std::vector<double> errors;
  errors.reserve(scaled.size());
  for (const auto& row : scaled) errors.push_back(QuantizationError(row));
  baseline_error_ = ts::Quantile(std::move(errors), 0.95);
  if (baseline_error_ <= 0.0) baseline_error_ = 1e-3;
  return Status::Ok();
}

double SomDetector::QuantizationError(
    const std::vector<double>& scaled_row) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& unit : units_) {
    double d = 0.0;
    for (size_t k = 0; k < dim_; ++k) {
      const double dev = scaled_row[k] - unit[k];
      d += dev * dev;
    }
    best = std::min(best, d);
  }
  return std::sqrt(best);
}

StatusOr<std::vector<double>> SomDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].size() != dim_) {
      return Status::InvalidArgument("dimension mismatch in SOM score");
    }
    std::vector<double> row = data[i];
    HOD_RETURN_IF_ERROR(scaler_.ApplyRow(row));
    const double excess = QuantizationError(row) / baseline_error_ - 1.0;
    scores[i] =
        excess <= 0.0 ? 0.0 : excess / (excess + options_.error_scale);
  }
  return scores;
}

}  // namespace hod::detect
