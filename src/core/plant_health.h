#ifndef HOD_CORE_PLANT_HEALTH_H_
#define HOD_CORE_PLANT_HEALTH_H_

#include <string>
#include <vector>

#include "core/alert_manager.h"
#include "core/concept_shift.h"
#include "core/hierarchical_detector.h"
#include "hierarchy/caq.h"
#include "hierarchy/production.h"
#include "util/statusor.h"

namespace hod::core {

/// One-call plant health summary — the integration point a plant engineer
/// actually consumes. Composes everything the library offers: Algorithm 1
/// across all levels, episode deduplication, CAQ process capability,
/// maintenance urgency, and concept-shift discovery on the line series.
struct PlantHealthOptions {
  HierarchicalDetectorOptions detector;
  AlertManagerOptions alerts;
  ConceptShiftOptions shifts;
  /// Cpk window (recent jobs); 0 = all jobs.
  size_t capability_window = 0;
};

/// Health summary of one machine.
struct MachineHealth {
  std::string machine_id;
  /// Production-level (cross-machine) outlierness.
  double production_score = 0.0;
  /// Worst Cpk across CAQ features (capability; < 1 means scrap risk).
  double min_cpk = 0.0;
  /// Predictive-maintenance urgency in [0,1] from phase/job findings.
  double maintenance_urgency = 0.0;
  /// Alert episodes on this machine's sensors/jobs, by kind.
  size_t critical_episodes = 0;
  size_t warning_episodes = 0;
  size_t calibration_suspects = 0;
};

/// A persistent regime change on a line-level feature series.
struct LineShift {
  std::string line_id;
  std::string feature;
  ConceptShift shift;
};

struct PlantHealthReport {
  std::vector<MachineHealth> machines;
  std::vector<LineShift> line_shifts;
  /// Total findings Algorithm 1 produced across all scanned levels.
  size_t total_findings = 0;
};

/// Builds the report. Scans every redundant temperature sensor at the
/// phase level (the high-signal channels), all jobs, environments, lines,
/// and the production level. The CAQ specification drives the capability
/// column. Deterministic for a fixed production.
StatusOr<PlantHealthReport> SummarizePlantHealth(
    const hierarchy::Production& production,
    const hierarchy::CaqSpecification& specification,
    const PlantHealthOptions& options = {});

}  // namespace hod::core

#endif  // HOD_CORE_PLANT_HEALTH_H_
