#ifndef HOD_STREAM_ESCALATION_H_
#define HOD_STREAM_ESCALATION_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "core/hierarchical_detector.h"
#include "stream/engine.h"
#include "util/statusor.h"

namespace hod::stream {

struct EscalationOptions {
  /// Snapshot poll cadence of the background thread (Start()). Manual
  /// callers (tests, synchronous replay) just call Poll() directly.
  std::chrono::milliseconds poll_interval{200};
};

/// The bridge between the cheap stream tier and the paper's Algorithm 1:
/// diffs consecutive EngineSnapshots and runs
/// core::HierarchicalDetector::EscalateAlarm over every NEWLY-flagged
/// entity, so each alarm gets its full ⟨global score, outlierness,
/// support⟩ triple exactly once — the detector's epoch cache makes the
/// marginal cost one entity, not one plant.
///
/// Findings flow back into the engine's alert board (marked
/// `escalated = true`, merged into the same per-entity episodes as the raw
/// stream alarms) and the run counters land in StreamStatsSnapshot via
/// StreamEngine::ReportEscalation.
///
/// Threading: the detector is owned exclusively by the bridge — Poll() and
/// the background loop are the only callers, and Start()/Stop()/Poll()
/// must not race each other. The engine side (Snapshot, ReportEscalation)
/// is thread-safe, so a bridge thread can run alongside producers, the
/// collector, and the checkpoint timer.
class EscalationBridge {
 public:
  /// `engine` and `detector` must outlive the bridge.
  EscalationBridge(StreamEngine* engine, core::HierarchicalDetector* detector,
                   EscalationOptions options = {});
  ~EscalationBridge();

  EscalationBridge(const EscalationBridge&) = delete;
  EscalationBridge& operator=(const EscalationBridge&) = delete;

  /// Spawns the background poll loop. Idempotent.
  void Start();
  /// Joins the loop. Idempotent; safe without Start().
  void Stop();

  /// One escalation pass: fetch the engine's latest snapshot, diff its
  /// active alarms against what this bridge already escalated, run the
  /// detector over the fresh ones, and report the results to the engine.
  /// Returns the number of newly-escalated entities (0 when the snapshot
  /// is unchanged or shows nothing new).
  StatusOr<size_t> Poll();

  /// Escalation passes that found at least one fresh alarm.
  uint64_t runs() const { return runs_; }

  /// Concept shifts consumed from snapshots so far — each one MarkDirty'd
  /// its sensor's covering scopes so the epoch cache rebuilds them against
  /// the post-shift data instead of serving models fit to the old regime.
  uint64_t shifts_marked() const { return shifts_marked_; }

 private:
  void Loop(const std::stop_token& stop);

  StreamEngine* engine_;
  core::HierarchicalDetector* detector_;
  EscalationOptions options_;

  /// Last snapshot sequence consumed (skip unchanged snapshots).
  uint64_t last_sequence_ = 0;
  /// sensor/entity id -> alarm-since timestamp already escalated. A new
  /// alarm on the same sensor (different `since`) escalates again; a
  /// cleared alarm is pruned so a later re-raise is fresh.
  std::map<std::string, ts::TimePoint> escalated_;
  uint64_t runs_ = 0;
  /// sensor id -> confirm timestamp of the last concept shift already
  /// MarkDirty'd, so one shift dirties its scopes exactly once however
  /// many snapshots re-publish it from the bounded ring.
  std::map<std::string, ts::TimePoint> shifts_consumed_;
  uint64_t shifts_marked_ = 0;

  std::jthread worker_;
};

}  // namespace hod::stream

#endif  // HOD_STREAM_ESCALATION_H_
