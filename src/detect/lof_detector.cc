#include "detect/lof_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "detect/distance.h"

namespace hod::detect {

LofDetector::LofDetector(LofOptions options) : options_(options) {}

LofDetector::Neighbors LofDetector::FindNeighbors(
    const std::vector<double>& scaled, size_t skip) const {
  std::vector<std::pair<double, size_t>> all;
  all.reserve(train_.size());
  // Dimensions guaranteed by the Train/RawLof boundary (ragged training
  // data is rejected by ColumnScaler::Fit; queries are checked vs dim_).
  for (size_t j = 0; j < train_.size(); ++j) {
    if (j == skip) continue;
    all.emplace_back(Distance(scaled.data(), train_[j].data(), dim_), j);
  }
  const size_t k = std::min(options_.k, all.size());
  std::partial_sort(all.begin(), all.begin() + k, all.end());
  Neighbors neighbors;
  for (size_t r = 0; r < k; ++r) {
    neighbors.distance.push_back(all[r].first);
    neighbors.index.push_back(all[r].second);
  }
  neighbors.k_distance = k > 0 ? all[k - 1].first : 0.0;
  return neighbors;
}

Status LofDetector::Train(const std::vector<std::vector<double>>& data) {
  if (data.size() < 3) {
    return Status::InvalidArgument("LOF needs at least 3 points");
  }
  if (options_.k == 0) return Status::InvalidArgument("k must be > 0");
  dim_ = data[0].size();
  HOD_ASSIGN_OR_RETURN(scaler_, ColumnScaler::Fit(data));
  train_ = data;
  HOD_RETURN_IF_ERROR(scaler_.Apply(train_));
  const size_t n = train_.size();

  // Pass 1: k-distances.
  k_distance_.assign(n, 0.0);
  std::vector<Neighbors> all_neighbors(n);
  for (size_t i = 0; i < n; ++i) {
    all_neighbors[i] = FindNeighbors(train_[i], i);
    k_distance_[i] = all_neighbors[i].k_distance;
  }
  // Pass 2: local reachability densities.
  lrd_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double reach_sum = 0.0;
    for (size_t r = 0; r < all_neighbors[i].index.size(); ++r) {
      const size_t j = all_neighbors[i].index[r];
      reach_sum +=
          std::max(all_neighbors[i].distance[r], k_distance_[j]);
    }
    const double mean_reach =
        reach_sum / static_cast<double>(all_neighbors[i].index.size());
    lrd_[i] = mean_reach > 0.0 ? 1.0 / mean_reach : 1e12;
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<double> LofDetector::RawLof(
    const std::vector<double>& unscaled_row) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  if (unscaled_row.size() != dim_) {
    return Status::InvalidArgument("dimension mismatch in LOF query");
  }
  std::vector<double> row = unscaled_row;
  HOD_RETURN_IF_ERROR(scaler_.ApplyRow(row));
  const Neighbors neighbors =
      FindNeighbors(row, std::numeric_limits<size_t>::max());
  if (neighbors.index.empty()) return 1.0;
  double reach_sum = 0.0;
  double neighbor_lrd_sum = 0.0;
  for (size_t r = 0; r < neighbors.index.size(); ++r) {
    const size_t j = neighbors.index[r];
    reach_sum += std::max(neighbors.distance[r], k_distance_[j]);
    neighbor_lrd_sum += lrd_[j];
  }
  const double count = static_cast<double>(neighbors.index.size());
  const double mean_reach = reach_sum / count;
  const double own_lrd = mean_reach > 0.0 ? 1.0 / mean_reach : 1e12;
  return (neighbor_lrd_sum / count) / own_lrd;
}

StatusOr<std::vector<double>> LofDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    HOD_ASSIGN_OR_RETURN(double lof, RawLof(data[i]));
    const double excess = lof - 1.0;
    scores[i] =
        excess <= 0.0 ? 0.0 : excess / (excess + options_.lof_scale);
  }
  return scores;
}

}  // namespace hod::detect
