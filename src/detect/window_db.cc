#include "detect/window_db.h"

#include <algorithm>

#include "timeseries/distance.h"
#include "timeseries/window.h"

namespace hod::detect {

WindowDbDetector::WindowDbDetector(WindowDbOptions options)
    : options_(options) {}

Status WindowDbDetector::Train(
    const std::vector<ts::DiscreteSequence>& normal) {
  if (options_.window == 0) {
    return Status::InvalidArgument("window must be > 0");
  }
  frequencies_.clear();
  for (const auto& sequence : normal) {
    HOD_RETURN_IF_ERROR(sequence.Validate());
    for (auto& w : ts::SymbolWindows(sequence.symbols(), options_.window)) {
      ++frequencies_[std::move(w)];
    }
  }
  if (frequencies_.empty()) {
    return Status::InvalidArgument("no training windows");
  }
  // Probe set: most frequent windows first.
  std::vector<std::pair<size_t, const std::vector<ts::Symbol>*>> ranked;
  ranked.reserve(frequencies_.size());
  for (const auto& [window, count] : frequencies_) {
    ranked.emplace_back(count, &window);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  probe_set_.clear();
  for (size_t i = 0; i < std::min(ranked.size(), options_.soft_probes); ++i) {
    probe_set_.push_back(*ranked[i].second);
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> WindowDbDetector::Score(
    const ts::DiscreteSequence& sequence) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  const size_t n = sequence.size();
  std::vector<double> point_scores(n, 0.0);
  if (n < options_.window) return point_scores;

  auto spans_or = ts::SlidingWindows(n, options_.window, 1);
  if (!spans_or.ok()) return spans_or.status();
  const auto& spans = spans_or.value();

  std::vector<double> window_scores(spans.size(), 0.0);
  for (size_t w = 0; w < spans.size(); ++w) {
    const std::vector<ts::Symbol> window(
        sequence.symbols().begin() + spans[w].begin,
        sequence.symbols().begin() + spans[w].end);
    const auto it = frequencies_.find(window);
    if (it != frequencies_.end()) {
      if (it->second >= options_.frequent_count) {
        window_scores[w] = 0.0;
      } else {
        // Rare in the database: partial score decreasing with frequency.
        window_scores[w] =
            0.4 * (1.0 - static_cast<double>(it->second) /
                             static_cast<double>(options_.frequent_count));
      }
      continue;
    }
    // Unseen: soft mismatch = min Hamming distance to the probe set,
    // normalized by window length. Score starts at 0.5 and grows with the
    // number of mismatching positions.
    size_t best = options_.window;
    for (const auto& stored : probe_set_) {
      auto dist_or = ts::HammingDistance(window, stored);
      if (!dist_or.ok()) return dist_or.status();
      best = std::min(best, dist_or.value());
      if (best <= 1) break;
    }
    window_scores[w] =
        0.5 + 0.5 * static_cast<double>(best) /
                  static_cast<double>(options_.window);
  }
  return ts::WindowScoresToPointScores(n, spans, window_scores);
}

}  // namespace hod::detect
