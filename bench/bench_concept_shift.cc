// E13 — online concept-shift re-baselining (hod::core BOCPD in the
// streaming path).
//
// Four parts:
//   1. Shift drill: injected setpoint changes (steps and ramps) on half
//      the fleet. Per victim the engine must confirm exactly ONE
//      kConceptShift finding within a fixed sample budget after the
//      ground-truth instant, retract the stale alarm, and re-baseline —
//      measured against a control engine with the shift layer off, whose
//      old-regime baseline keeps alarming until it slowly re-adapts.
//   2. Shift-free control: the same fleet with no injected shifts must
//      produce ZERO re-baselines — a false re-baseline erases a healthy
//      baseline and blinds the detector exactly when it must not.
//   3. Hierarchy hand-off: the EscalationBridge consumes the confirmed
//      shift from the snapshot and MarkDirty's the sensor's covering
//      scopes, so the batch tier's epoch cache rebuilds its models
//      against post-shift data (visible in cache_stats()).
//   4. Lane cache: sensor-id -> lane resolved once at ingress instead of
//      one hash probe per sample; identical scoring required, time delta
//      reported.
//
// Emits human-readable tables on stdout and BENCH_SHIFT.json in the
// working directory; CI gates on the JSON.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/hierarchical_detector.h"
#include "core/report.h"
#include "sim/fault_injector.h"
#include "sim/plant.h"
#include "stream/engine.h"
#include "stream/escalation.h"
#include "util/rng.h"

namespace {

using hod::hierarchy::ProductionLevel;
using hod::sim::FaultInjector;
using hod::stream::ConceptShiftEvent;
using hod::stream::SensorSample;
using hod::stream::StreamEngine;
using hod::stream::StreamEngineOptions;

constexpr size_t kSensors = 8;
constexpr size_t kVictims = 4;
constexpr size_t kSteps = 1400;
constexpr double kShiftStart = 700.0;
// Confirmation budget in samples past the instant the new level is fully
// in place (ground-truth start + ramp). The posterior needs
// min_run_for_shift (8) samples of the new regime to concentrate, plus
// slack for the noise to average out; 32 is four times that minimum and
// far below the ~100-sample tail a forgetting baseline needs.
constexpr double kDelayBudget = 32.0;

std::string SensorId(size_t i) { return "m" + std::to_string(i) + ".t"; }

StreamEngineOptions EngineOptions(bool shift_enabled) {
  StreamEngineOptions options;
  options.synchronous = true;
  options.monitor.warmup = 100;
  options.shift.enabled = shift_enabled;
  return options;
}

/// Per-sensor AR(1) noise around a flat setpoint — the stream-tier test
/// fixture. Shifts come from the injector, not the generator, so the
/// ground-truth instants live in one place.
struct Fleet {
  std::vector<hod::Rng> rngs;
  std::vector<double> noise;
  explicit Fleet(uint64_t seed) : noise(kSensors, 0.0) {
    for (size_t i = 0; i < kSensors; ++i) rngs.emplace_back(seed + i);
  }
  double Value(size_t i) {
    noise[i] = 0.7 * noise[i] + rngs[i].Gaussian(0.0, 0.25);
    return 50.0 + noise[i];
  }
};

// ---------------------------------------------------------------------------
// Part 1: shift drill — detection delay, finding count, alarm retraction.

struct ShiftRow {
  std::string sensor;
  double ramp = 0.0;
  size_t findings = 0;
  double delay = -1.0;           // confirm ts - (start + ramp)
  double alarm_tail_shift = 0.0;  // last alarm-active ts - start, layer on
  double alarm_tail_control = 0.0;  // same with the layer off
};

struct ShiftResult {
  std::vector<ShiftRow> rows;
  size_t clean_findings = 0;      // kConceptShift on non-victims — want 0
  double max_delay = -1.0;
  bool one_finding_each = true;
  size_t active_alarms_end = 0;   // shift engine — want 0
  size_t control_alarms_end = 0;
  uint64_t baseline_resets = 0;
  uint64_t deferred_resets = 0;
};

ShiftResult RunShiftDrill() {
  FaultInjector injector;
  // Two steps and two ramps, alternating sign so the drill covers both
  // directions of re-baseline. Steep ramps confirm mid-ramp, as soon as
  // the moved level clears the magnitude gate (delay relative to ramp
  // completion can be negative). A slow creep (many tens of samples per
  // sigma) is absorbed by the conjugate model as inflated noise — that
  // regime belongs to the gain-drift/peer-group axis (E12), not
  // changepoints.
  const double deltas[kVictims] = {6.0, -5.0, 6.0, -6.0};
  const double ramps[kVictims] = {0.0, 0.0, 8.0, 6.0};
  const double tail = static_cast<double>(kSteps) - kShiftStart;
  for (size_t v = 0; v < kVictims; ++v) {
    (void)injector.AddLevelShift(SensorId(v), kShiftStart, tail, deltas[v],
                                 ramps[v]);
  }

  StreamEngine engine(EngineOptions(true));
  StreamEngine control(EngineOptions(false));
  for (size_t i = 0; i < kSensors; ++i) {
    (void)engine.AddSensor(SensorId(i), ProductionLevel::kPhase);
    (void)control.AddSensor(SensorId(i), ProductionLevel::kPhase);
  }
  (void)engine.Start();
  (void)control.Start();

  std::map<std::string, double> last_alarm_shift;
  std::map<std::string, double> last_alarm_control;
  Fleet fleet(6100);
  for (size_t t = 0; t < kSteps; ++t) {
    for (size_t i = 0; i < kSensors; ++i) {
      SensorSample clean{SensorId(i), ProductionLevel::kPhase,
                         static_cast<double>(t), fleet.Value(i)};
      // kLevelShift keeps no injector state, so one Apply feeds both
      // engines the identical corrupted sample.
      for (const SensorSample& sample : injector.Apply(clean)) {
        auto ack = engine.Ingest(sample);
        if (ack.ok() && ack->update.has_value() && ack->update->alarm) {
          last_alarm_shift[sample.sensor_id] = sample.ts;
        }
        auto control_ack = control.Ingest(sample);
        if (control_ack.ok() && control_ack->update.has_value() &&
            control_ack->update->alarm) {
          last_alarm_control[sample.sensor_id] = sample.ts;
        }
      }
    }
  }
  (void)engine.Flush();
  (void)control.Flush();

  ShiftResult result;
  std::map<std::string, size_t> finding_count;
  for (const hod::core::OutlierFinding& finding : engine.Findings()) {
    if (finding.kind == hod::core::FindingKind::kConceptShift) {
      ++finding_count[finding.origin.entity];
    }
  }
  std::map<std::string, double> confirm_ts;
  for (const ConceptShiftEvent& shift : engine.Snapshot().concept_shifts) {
    if (confirm_ts.find(shift.sensor_id) == confirm_ts.end()) {
      confirm_ts[shift.sensor_id] = shift.ts;
    }
  }
  for (size_t v = 0; v < kVictims; ++v) {
    ShiftRow row;
    row.sensor = SensorId(v);
    row.ramp = ramps[v];
    row.findings = finding_count[row.sensor];
    if (row.findings != 1) result.one_finding_each = false;
    auto it = confirm_ts.find(row.sensor);
    if (it != confirm_ts.end()) {
      row.delay = it->second - (kShiftStart + ramps[v]);
      result.max_delay = std::max(result.max_delay, row.delay);
    } else {
      result.one_finding_each = false;  // never confirmed
    }
    auto shift_it = last_alarm_shift.find(row.sensor);
    if (shift_it != last_alarm_shift.end()) {
      row.alarm_tail_shift = shift_it->second - kShiftStart;
    }
    auto control_it = last_alarm_control.find(row.sensor);
    if (control_it != last_alarm_control.end()) {
      row.alarm_tail_control = control_it->second - kShiftStart;
    }
    result.rows.push_back(row);
  }
  for (size_t i = kVictims; i < kSensors; ++i) {
    result.clean_findings += finding_count[SensorId(i)];
  }
  result.active_alarms_end = engine.Snapshot().active_alarms.size();
  result.control_alarms_end = control.Snapshot().active_alarms.size();
  result.baseline_resets = engine.stats().baseline_resets;
  result.deferred_resets = engine.stats().baseline_resets_deferred;
  (void)engine.Stop();
  (void)control.Stop();
  return result;
}

// ---------------------------------------------------------------------------
// Part 2: shift-free control — zero false re-baselines.

struct FalseRebaselineResult {
  uint64_t concept_shifts = 0;
  uint64_t baseline_resets = 0;
  uint64_t samples = 0;
};

FalseRebaselineResult RunShiftFreeControl() {
  StreamEngine engine(EngineOptions(true));
  for (size_t i = 0; i < kSensors; ++i) {
    (void)engine.AddSensor(SensorId(i), ProductionLevel::kPhase);
  }
  (void)engine.Start();
  Fleet fleet(7300);
  for (size_t t = 0; t < kSteps; ++t) {
    for (size_t i = 0; i < kSensors; ++i) {
      (void)engine.Ingest({SensorId(i), ProductionLevel::kPhase,
                           static_cast<double>(t), fleet.Value(i)});
    }
  }
  (void)engine.Flush();
  FalseRebaselineResult result;
  result.concept_shifts = engine.stats().concept_shifts;
  result.baseline_resets = engine.stats().baseline_resets;
  result.samples = engine.stats().ingested;
  (void)engine.Stop();
  return result;
}

// ---------------------------------------------------------------------------
// Part 3: MarkDirty hand-off into the batch tier's epoch cache.

struct MarkDirtyResult {
  uint64_t shifts_marked = 0;
  uint64_t invalidations = 0;
  uint64_t models_before = 0;   // models built by the warm-up query
  uint64_t models_rebuilt = 0;  // extra builds after the shift dirtied them
  bool cache_rebuilt = false;
};

MarkDirtyResult RunMarkDirtyDrill() {
  hod::sim::PlantOptions plant_options;
  plant_options.num_lines = 1;
  plant_options.machines_per_line = 2;
  plant_options.jobs_per_machine = 6;
  plant_options.seed = 61;
  auto plant = hod::sim::BuildPlant(plant_options, {}).value();
  const auto& machine = plant.production.lines[0].machines[0];
  const std::string sensor = machine.id + ".bed_temp_a";
  const double t0 = machine.jobs.front().start_time;

  StreamEngineOptions options = EngineOptions(true);
  options.snapshot_every = 8;
  options.health.staleness_timeout = 0.0;
  StreamEngine engine(options);
  (void)engine.AddSensor(sensor, ProductionLevel::kPhase);
  (void)engine.Start();
  hod::Rng rng(17);
  for (size_t t = 0; t < 500; ++t) {
    const double base = t >= 300 ? 56.0 : 50.0;
    (void)engine.Ingest({sensor, ProductionLevel::kPhase,
                         t0 + static_cast<double>(t),
                         base + rng.Gaussian(0.0, 0.25)});
  }
  (void)engine.Flush();

  MarkDirtyResult result;
  hod::core::HierarchicalDetector detector(&plant.production);
  // Warm the epoch cache with the queries the escalation path runs.
  (void)detector.EscalateAlarm(ProductionLevel::kPhase, sensor, t0 + 10.0);
  result.models_before = detector.cache_stats().models_built;

  hod::stream::EscalationBridge bridge(&engine, &detector);
  (void)bridge.Poll();
  result.shifts_marked = bridge.shifts_marked();
  result.invalidations = detector.cache_stats().invalidations;

  // The same query must now REBUILD the dirtied models instead of serving
  // the ones fit to the pre-shift regime.
  (void)detector.EscalateAlarm(ProductionLevel::kPhase, sensor, t0 + 10.0);
  result.models_rebuilt =
      detector.cache_stats().models_built - result.models_before;
  result.cache_rebuilt = result.models_rebuilt > 0;
  (void)engine.Stop();
  return result;
}

// ---------------------------------------------------------------------------
// Part 4: lane cache — resolve sensor -> lane once at ingress.

struct LaneCacheResult {
  double cached_ns_per_sample = 0.0;
  double lookup_ns_per_sample = 0.0;
  double speedup = 0.0;
  uint64_t shifts_cached = 0;
  uint64_t shifts_lookup = 0;
  bool parity_ok = false;
};

LaneCacheResult RunLaneCacheBench() {
  constexpr size_t kLaneSensors = 64;
  constexpr size_t kLaneSteps = 4000;
  auto run = [&](bool lane_cache, uint64_t& shifts_out) {
    StreamEngineOptions options = EngineOptions(true);
    options.lane_cache = lane_cache;
    StreamEngine engine(options);
    for (size_t i = 0; i < kLaneSensors; ++i) {
      (void)engine.AddSensor("lane" + std::to_string(i),
                             ProductionLevel::kPhase);
    }
    (void)engine.Start();
    std::vector<hod::Rng> rngs;
    for (size_t i = 0; i < kLaneSensors; ++i) rngs.emplace_back(9100 + i);
    const auto begin = std::chrono::steady_clock::now();
    for (size_t t = 0; t < kLaneSteps; ++t) {
      for (size_t i = 0; i < kLaneSensors; ++i) {
        const double base = t >= 3000 && i % 4 == 0 ? 55.0 : 50.0;
        (void)engine.Ingest({"lane" + std::to_string(i),
                             ProductionLevel::kPhase, static_cast<double>(t),
                             base + rngs[i].Gaussian(0.0, 0.25)});
      }
    }
    const auto end = std::chrono::steady_clock::now();
    (void)engine.Flush();
    shifts_out = engine.stats().concept_shifts;
    (void)engine.Stop();
    return std::chrono::duration<double, std::nano>(end - begin).count() /
           static_cast<double>(kLaneSteps * kLaneSensors);
  };
  LaneCacheResult result;
  result.lookup_ns_per_sample = run(false, result.shifts_lookup);
  result.cached_ns_per_sample = run(true, result.shifts_cached);
  result.speedup = result.cached_ns_per_sample > 0.0
                       ? result.lookup_ns_per_sample /
                             result.cached_ns_per_sample
                       : 0.0;
  // Identical confirm accounting is the cheap end-to-end parity signal;
  // stream_shift_test pins per-sample score equality.
  result.parity_ok = result.shifts_cached == result.shifts_lookup &&
                     result.shifts_cached == kLaneSensors / 4;
  return result;
}

}  // namespace

int main() {
  hod::bench::PrintHeader(
      "E13", "Online concept-shift re-baselining",
      "BOCPD in the streaming path: detection delay, alarm retraction, "
      "epoch-cache hand-off");

  hod::bench::PrintSection("injected setpoint changes");
  const ShiftResult drill = RunShiftDrill();
  std::printf("%-8s %-6s %-9s %-10s %-16s %s\n", "victim", "ramp",
              "findings", "delay", "alarm tail (on)", "alarm tail (off)");
  for (const ShiftRow& row : drill.rows) {
    std::printf("%-8s %-6.0f %-9zu %-10.0f %-16.0f %.0f\n",
                row.sensor.c_str(), row.ramp, row.findings, row.delay,
                row.alarm_tail_shift, row.alarm_tail_control);
  }
  std::printf("max delay %.0f samples (budget %.0f)  clean-channel "
              "findings %zu  resets %llu (%llu deferred)\n",
              drill.max_delay, kDelayBudget, drill.clean_findings,
              static_cast<unsigned long long>(drill.baseline_resets),
              static_cast<unsigned long long>(drill.deferred_resets));
  std::printf("active alarms at end: %zu with the layer, %zu without\n",
              drill.active_alarms_end, drill.control_alarms_end);

  hod::bench::PrintSection("shift-free control");
  const FalseRebaselineResult control = RunShiftFreeControl();
  std::printf("%llu samples, %llu re-baselines (want 0), "
              "%llu concept shifts (want 0)\n",
              static_cast<unsigned long long>(control.samples),
              static_cast<unsigned long long>(control.baseline_resets),
              static_cast<unsigned long long>(control.concept_shifts));

  hod::bench::PrintSection("epoch-cache hand-off");
  const MarkDirtyResult dirty = RunMarkDirtyDrill();
  std::printf("shifts marked %llu  invalidations %llu  models rebuilt "
              "%llu (cache %s)\n",
              static_cast<unsigned long long>(dirty.shifts_marked),
              static_cast<unsigned long long>(dirty.invalidations),
              static_cast<unsigned long long>(dirty.models_rebuilt),
              dirty.cache_rebuilt ? "rebuilt" : "STALE");

  hod::bench::PrintSection("lane cache");
  const LaneCacheResult lane = RunLaneCacheBench();
  std::printf("per-sample lookup %.0f ns  cached %.0f ns  speedup %.2fx  "
              "shifts %llu/%llu  parity %s\n",
              lane.lookup_ns_per_sample, lane.cached_ns_per_sample,
              lane.speedup,
              static_cast<unsigned long long>(lane.shifts_lookup),
              static_cast<unsigned long long>(lane.shifts_cached),
              lane.parity_ok ? "ok" : "BROKEN");

  std::ofstream json("BENCH_SHIFT.json");
  json << "{\n  \"experiment\": \"concept_shift\",\n"
       << "  \"shift_drill\": {\n"
       << "    \"victims\": " << drill.rows.size() << ",\n"
       << "    \"one_finding_each\": "
       << (drill.one_finding_each ? "true" : "false") << ",\n"
       << "    \"max_detection_delay_samples\": " << drill.max_delay << ",\n"
       << "    \"delay_budget_samples\": " << kDelayBudget << ",\n"
       << "    \"clean_channel_findings\": " << drill.clean_findings << ",\n"
       << "    \"baseline_resets\": " << drill.baseline_resets << ",\n"
       << "    \"active_alarms_end\": " << drill.active_alarms_end << ",\n"
       << "    \"control_alarms_end\": " << drill.control_alarms_end
       << "\n  },\n"
       << "  \"shift_free\": {\n"
       << "    \"samples\": " << control.samples << ",\n"
       << "    \"false_rebaselines\": " << control.baseline_resets << ",\n"
       << "    \"false_shifts\": " << control.concept_shifts << "\n  },\n"
       << "  \"mark_dirty\": {\n"
       << "    \"shifts_marked\": " << dirty.shifts_marked << ",\n"
       << "    \"invalidations\": " << dirty.invalidations << ",\n"
       << "    \"models_rebuilt\": " << dirty.models_rebuilt << ",\n"
       << "    \"cache_rebuilt\": " << (dirty.cache_rebuilt ? "true" : "false")
       << "\n  },\n"
       << "  \"lane_cache\": {\n"
       << "    \"lookup_ns_per_sample\": " << lane.lookup_ns_per_sample
       << ",\n"
       << "    \"cached_ns_per_sample\": " << lane.cached_ns_per_sample
       << ",\n"
       << "    \"speedup\": " << lane.speedup << ",\n"
       << "    \"parity_ok\": " << (lane.parity_ok ? "true" : "false")
       << "\n  }\n}\n";
  std::printf("\nwrote BENCH_SHIFT.json\n");
  return 0;
}
