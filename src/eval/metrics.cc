#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace hod::eval {

double Confusion::Precision() const {
  const size_t flagged = true_positives + false_positives;
  return flagged > 0 ? static_cast<double>(true_positives) /
                           static_cast<double>(flagged)
                     : 0.0;
}

double Confusion::Recall() const {
  const size_t actual = true_positives + false_negatives;
  return actual > 0 ? static_cast<double>(true_positives) /
                          static_cast<double>(actual)
                    : 0.0;
}

double Confusion::F1() const {
  const double p = Precision();
  const double r = Recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

double Confusion::FalsePositiveRate() const {
  const size_t negatives = false_positives + true_negatives;
  return negatives > 0 ? static_cast<double>(false_positives) /
                             static_cast<double>(negatives)
                       : 0.0;
}

StatusOr<Confusion> Confuse(const std::vector<double>& scores,
                            const Truth& truth, double threshold) {
  if (scores.size() != truth.size()) {
    return Status::InvalidArgument("score/truth size mismatch");
  }
  Confusion c;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool flagged = scores[i] > threshold;
    const bool anomalous = truth[i] != 0;
    if (flagged && anomalous) ++c.true_positives;
    else if (flagged && !anomalous) ++c.false_positives;
    else if (!flagged && anomalous) ++c.false_negatives;
    else ++c.true_negatives;
  }
  return c;
}

StatusOr<Confusion> ConfuseWithTolerance(const std::vector<double>& scores,
                                         const Truth& truth, double threshold,
                                         size_t tolerance) {
  if (scores.size() != truth.size()) {
    return Status::InvalidArgument("score/truth size mismatch");
  }
  const size_t n = scores.size();
  Confusion c;
  // Precompute flagged positions and true positions.
  for (size_t i = 0; i < n; ++i) {
    const bool anomalous = truth[i] != 0;
    if (anomalous) {
      // Detected when any flag within tolerance.
      bool detected = false;
      const size_t lo = i >= tolerance ? i - tolerance : 0;
      const size_t hi = std::min(n - 1, i + tolerance);
      for (size_t j = lo; j <= hi && !detected; ++j) {
        detected = scores[j] > threshold;
      }
      if (detected) ++c.true_positives;
      else ++c.false_negatives;
    } else {
      const bool flagged = scores[i] > threshold;
      if (!flagged) {
        ++c.true_negatives;
        continue;
      }
      // Excused when a true anomaly is nearby.
      bool excused = false;
      const size_t lo = i >= tolerance ? i - tolerance : 0;
      const size_t hi = std::min(n - 1, i + tolerance);
      for (size_t j = lo; j <= hi && !excused; ++j) {
        excused = truth[j] != 0;
      }
      if (excused) ++c.true_negatives;
      else ++c.false_positives;
    }
  }
  return c;
}

StatusOr<double> RocAuc(const std::vector<double>& scores,
                        const Truth& truth) {
  if (scores.size() != truth.size()) {
    return Status::InvalidArgument("score/truth size mismatch");
  }
  size_t positives = 0;
  for (uint8_t t : truth) {
    if (t != 0) ++positives;
  }
  const size_t negatives = truth.size() - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  // Midrank-based Mann-Whitney U.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> ranks(scores.size(), 0.0);
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double midrank = (static_cast<double>(i) + static_cast<double>(j)) /
                               2.0 +
                           1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  double rank_sum = 0.0;
  for (size_t k = 0; k < truth.size(); ++k) {
    if (truth[k] != 0) rank_sum += ranks[k];
  }
  const double u = rank_sum - static_cast<double>(positives) *
                                  (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) *
              static_cast<double>(negatives));
}

StatusOr<double> PrAuc(const std::vector<double>& scores, const Truth& truth) {
  if (scores.size() != truth.size()) {
    return Status::InvalidArgument("score/truth size mismatch");
  }
  size_t positives = 0;
  for (uint8_t t : truth) {
    if (t != 0) ++positives;
  }
  if (positives == 0) return 0.0;
  // Average precision: sum over positives of precision at their rank.
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  double ap = 0.0;
  size_t seen_positives = 0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (truth[order[rank]] != 0) {
      ++seen_positives;
      ap += static_cast<double>(seen_positives) /
            static_cast<double>(rank + 1);
    }
  }
  return ap / static_cast<double>(positives);
}

namespace {

StatusOr<BestF1Result> BestF1Impl(const std::vector<double>& scores,
                                  const Truth& truth, size_t tolerance,
                                  bool use_tolerance) {
  if (scores.size() != truth.size()) {
    return Status::InvalidArgument("score/truth size mismatch");
  }
  std::set<double> distinct(scores.begin(), scores.end());
  BestF1Result best;
  best.f1 = -1.0;
  // Thresholds midway below each distinct score (plus one catching all).
  std::vector<double> thresholds;
  double prev = -1.0;
  for (double v : distinct) {
    thresholds.push_back((prev + v) / 2.0);
    prev = v;
  }
  if (thresholds.empty()) thresholds.push_back(0.5);
  for (double threshold : thresholds) {
    auto confusion_or =
        use_tolerance ? ConfuseWithTolerance(scores, truth, threshold,
                                             tolerance)
                      : Confuse(scores, truth, threshold);
    if (!confusion_or.ok()) return confusion_or.status();
    const double f1 = confusion_or.value().F1();
    if (f1 > best.f1) {
      best.f1 = f1;
      best.threshold = threshold;
      best.confusion = confusion_or.value();
    }
  }
  if (best.f1 < 0.0) best.f1 = 0.0;
  return best;
}

}  // namespace

StatusOr<BestF1Result> BestF1(const std::vector<double>& scores,
                              const Truth& truth) {
  return BestF1Impl(scores, truth, 0, /*use_tolerance=*/false);
}

StatusOr<BestF1Result> BestF1WithTolerance(const std::vector<double>& scores,
                                           const Truth& truth,
                                           size_t tolerance) {
  return BestF1Impl(scores, truth, tolerance, /*use_tolerance=*/true);
}

std::vector<Segment> ExtractSegments(const Truth& truth) {
  std::vector<Segment> segments;
  size_t i = 0;
  while (i < truth.size()) {
    if (truth[i] == 0) {
      ++i;
      continue;
    }
    Segment segment;
    segment.begin = i;
    while (i < truth.size() && truth[i] != 0) ++i;
    segment.end = i;
    segments.push_back(segment);
  }
  return segments;
}

StatusOr<SegmentConfusion> ConfuseSegments(const std::vector<double>& scores,
                                           const Truth& truth,
                                           double threshold,
                                           size_t tolerance) {
  if (scores.size() != truth.size()) {
    return Status::InvalidArgument("score/truth size mismatch");
  }
  const std::vector<Segment> segments = ExtractSegments(truth);
  SegmentConfusion confusion;
  const size_t n = scores.size();
  for (const Segment& segment : segments) {
    const size_t lo =
        segment.begin >= tolerance ? segment.begin - tolerance : 0;
    const size_t hi = std::min(n, segment.end + tolerance);
    bool detected = false;
    for (size_t i = lo; i < hi && !detected; ++i) {
      detected = scores[i] > threshold;
    }
    if (detected) ++confusion.detected_events;
    else ++confusion.missed_events;
  }
  // False-positive points: flagged, not near any event.
  for (size_t i = 0; i < n; ++i) {
    if (scores[i] <= threshold) continue;
    bool excused = false;
    for (const Segment& segment : segments) {
      const size_t lo =
          segment.begin >= tolerance ? segment.begin - tolerance : 0;
      const size_t hi = std::min(n, segment.end + tolerance);
      if (i >= lo && i < hi) {
        excused = true;
        break;
      }
    }
    if (!excused) ++confusion.false_positive_points;
  }
  return confusion;
}

double SegmentConfusion::EventRecall() const {
  const size_t total = detected_events + missed_events;
  return total > 0 ? static_cast<double>(detected_events) /
                         static_cast<double>(total)
                   : 0.0;
}

StatusOr<double> SegmentF1(const std::vector<double>& scores,
                           const Truth& truth, double threshold,
                           size_t tolerance) {
  HOD_ASSIGN_OR_RETURN(SegmentConfusion confusion,
                       ConfuseSegments(scores, truth, threshold, tolerance));
  const double recall = confusion.EventRecall();
  const double precision =
      confusion.detected_events + confusion.false_positive_points > 0
          ? static_cast<double>(confusion.detected_events) /
                static_cast<double>(confusion.detected_events +
                                    confusion.false_positive_points)
          : 0.0;
  return precision + recall > 0.0
             ? 2.0 * precision * recall / (precision + recall)
             : 0.0;
}

StatusOr<BestF1Result> BestSegmentF1(const std::vector<double>& scores,
                                     const Truth& truth, size_t tolerance) {
  if (scores.size() != truth.size()) {
    return Status::InvalidArgument("score/truth size mismatch");
  }
  std::set<double> distinct(scores.begin(), scores.end());
  BestF1Result best;
  best.f1 = -1.0;
  double prev = -1.0;
  for (double v : distinct) {
    const double threshold = (prev + v) / 2.0;
    prev = v;
    HOD_ASSIGN_OR_RETURN(double f1,
                         SegmentF1(scores, truth, threshold, tolerance));
    if (f1 > best.f1) {
      best.f1 = f1;
      best.threshold = threshold;
    }
  }
  if (best.f1 < 0.0) best.f1 = 0.0;
  return best;
}

}  // namespace hod::eval
