#ifndef HOD_CORE_HIERARCHICAL_DETECTOR_H_
#define HOD_CORE_HIERARCHICAL_DETECTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm_selector.h"
#include "core/report.h"
#include "detect/detector.h"
#include "detect/var_detector.h"
#include "hierarchy/production.h"
#include "util/statusor.h"

namespace hod::core {

/// Tuning of Algorithm 1.
struct HierarchicalDetectorOptions {
  /// Outlierness above which an item counts as "outlier detected".
  double outlier_threshold = 0.5;
  /// Max time distance (seconds) for a corresponding sensor to support an
  /// outlier at the same level.
  double support_time_tolerance = 15.0;
  /// Max time distance (seconds) when confirming an outlier at another
  /// level. Must stay below the inter-job gap, or confirmation leaks into
  /// neighboring jobs and the global score loses its meaning.
  double cross_level_tolerance = 60.0;
  /// ChooseAlgorithm policy.
  SelectorPolicy policy = SelectorPolicy::kResolutionMatched;
};

/// Identifies a phase-level series: which sensor, in which phase of which
/// job on which machine.
struct PhaseQuery {
  std::string machine_id;
  std::string job_id;
  std::string phase_name;
  std::string sensor_id;
};

/// The paper's Algorithm 1, FindHierarchicalOutlier(TS, LV): detect
/// outliers at a start level, compute the <global score, outlierness,
/// support> triple for each, confirm upward through the hierarchy, and
/// flag suspected measurement errors downward.
///
/// The detector owns trained per-level models, lazily built from the
/// production's own data and cached, so repeated queries are cheap.
class HierarchicalDetector {
 public:
  /// `production` must outlive the detector.
  HierarchicalDetector(const hierarchy::Production* production,
                       HierarchicalDetectorOptions options = {});

  /// ---- Algorithm 1 entry points (one per start level) ----------------
  StatusOr<HierarchicalOutlierReport> FindPhaseOutliers(
      const PhaseQuery& query);
  StatusOr<HierarchicalOutlierReport> FindJobOutliers(
      const std::string& machine_id);
  StatusOr<HierarchicalOutlierReport> FindEnvironmentOutliers(
      const std::string& line_id);
  StatusOr<HierarchicalOutlierReport> FindLineOutliers(
      const std::string& line_id);
  StatusOr<HierarchicalOutlierReport> FindProductionOutliers();

  /// ---- Level primitives (raw scores, used by the benches) ------------
  /// Per-sample outlierness of one phase series.
  StatusOr<std::vector<double>> ScorePhaseSeries(const PhaseQuery& query);
  /// Per-event outlierness of a phase's discrete event sequence (UPA
  /// finite-state automaton trained on the machine's other phases of the
  /// same name) — the paper's "discrete value sequences" path at level 1.
  StatusOr<std::vector<double>> ScorePhaseEvents(
      const std::string& machine_id, const std::string& job_id,
      const std::string& phase_name);
  /// Joint multivariate outlierness per sample across ALL of a phase's
  /// sensor channels (vector-autoregressive model) — catches cross-channel
  /// violations that every per-sensor detector misses.
  StatusOr<std::vector<double>> ScorePhaseMultivariate(
      const std::string& machine_id, const std::string& job_id,
      const std::string& phase_name);
  /// Per-job outlierness for a machine (job execution order).
  StatusOr<std::vector<double>> ScoreJobs(const std::string& machine_id);
  /// Per-sample outlierness of a line's environment series.
  StatusOr<std::vector<double>> ScoreEnvironment(const std::string& line_id);
  /// Per-job outlierness over a line's time-ordered job series.
  StatusOr<std::vector<double>> ScoreLineJobs(const std::string& line_id);
  /// Outlierness per machine id.
  StatusOr<std::map<std::string, double>> ScoreMachines();

  const HierarchicalDetectorOptions& options() const { return options_; }
  const AlgorithmSelector& selector() const { return selector_; }

 private:
  struct TimedScore {
    std::string entity;  // job id / machine id
    ts::TimePoint start = 0.0;
    ts::TimePoint end = 0.0;
    double score = 0.0;
  };

  /// Is an outlier visible at `level` near time `t` for the given scope?
  StatusOr<bool> VisibleAtLevel(hierarchy::ProductionLevel level,
                                const std::string& line_id,
                                const std::string& machine_id,
                                ts::TimePoint t);

  /// Runs the upward/downward recursion and support computation for one
  /// origin occurrence.
  StatusOr<OutlierFinding> BuildFinding(const LevelOutlier& origin,
                                        const std::string& line_id,
                                        const std::string& machine_id,
                                        double support,
                                        size_t corresponding_sensors);

  /// Support over corresponding sensors for a phase-level outlier.
  StatusOr<std::pair<double, size_t>> ComputePhaseSupport(
      const PhaseQuery& query, ts::TimePoint outlier_time);

  /// Cached level computations.
  StatusOr<const std::vector<TimedScore>*> JobScores(
      const std::string& machine_id);
  StatusOr<const std::vector<TimedScore>*> LineJobScores(
      const std::string& line_id);
  StatusOr<const std::vector<double>*> EnvironmentScores(
      const std::string& line_id);
  StatusOr<const std::map<std::string, double>*> MachineScores();

  StatusOr<std::string> LineOfMachine(const std::string& machine_id) const;

  const hierarchy::Production* production_;
  HierarchicalDetectorOptions options_;
  AlgorithmSelector selector_;

  /// Phase detectors keyed by machine/sensor/phase.
  std::map<std::string, std::unique_ptr<detect::SeriesDetector>>
      phase_detectors_;
  /// Event-sequence detectors keyed by machine/phase.
  std::map<std::string, std::unique_ptr<detect::SequenceDetector>>
      event_detectors_;
  /// Multivariate phase models keyed by machine/phase.
  std::map<std::string, std::unique_ptr<detect::VarDetector>> var_models_;
  std::map<std::string, std::vector<TimedScore>> job_scores_;
  std::map<std::string, std::vector<TimedScore>> line_job_scores_;
  std::map<std::string, std::vector<double>> environment_scores_;
  std::map<std::string, double> machine_scores_;
  bool machine_scores_ready_ = false;
};

}  // namespace hod::core

#endif  // HOD_CORE_HIERARCHICAL_DETECTOR_H_
