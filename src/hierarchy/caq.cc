#include "hierarchy/caq.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"

namespace hod::hierarchy {

Status CaqSpecification::AddLimit(CaqLimit limit) {
  if (limit.feature.empty()) {
    return Status::InvalidArgument("limit needs a feature name");
  }
  if (limit.lower >= limit.upper) {
    return Status::InvalidArgument("lower limit must be below upper limit");
  }
  if (limit.target < limit.lower || limit.target > limit.upper) {
    return Status::InvalidArgument("target must lie inside the band");
  }
  for (const CaqLimit& existing : limits_) {
    if (existing.feature == limit.feature) {
      return Status::InvalidArgument("duplicate limit for '" +
                                     limit.feature + "'");
    }
  }
  limits_.push_back(std::move(limit));
  return Status::Ok();
}

StatusOr<CaqLimit> CaqSpecification::LimitFor(
    const std::string& feature) const {
  for (const CaqLimit& limit : limits_) {
    if (limit.feature == feature) return limit;
  }
  return Status::NotFound("no CAQ limit for '" + feature + "'");
}

StatusOr<CaqResult> EvaluateCaq(const CaqSpecification& specification,
                                const ts::FeatureVector& caq) {
  HOD_RETURN_IF_ERROR(caq.Validate());
  CaqResult result;
  for (const CaqLimit& limit : specification.limits()) {
    HOD_ASSIGN_OR_RETURN(double value, caq.Get(limit.feature));
    // Normalized margin: 1 at target, 0 on the nearer limit, < 0 outside.
    const double half_band = value >= limit.target
                                 ? limit.upper - limit.target
                                 : limit.target - limit.lower;
    const double margin =
        half_band > 0.0
            ? 1.0 - std::fabs(value - limit.target) / half_band
            : (value == limit.target ? 1.0 : -1.0);
    result.worst_margin = std::min(result.worst_margin, margin);
    if (value < limit.lower || value > limit.upper) {
      result.pass = false;
      result.violations.push_back(limit.feature);
    }
  }
  return result;
}

StatusOr<double> ProcessCapability(const CaqSpecification& specification,
                                   const std::vector<const Job*>& jobs,
                                   const std::string& feature) {
  HOD_ASSIGN_OR_RETURN(CaqLimit limit, specification.LimitFor(feature));
  std::vector<double> values;
  for (const Job* job : jobs) {
    auto value = job->caq.Get(feature);
    if (value.ok()) values.push_back(value.value());
  }
  if (values.size() < 2) {
    return Status::InvalidArgument("need at least 2 jobs with feature '" +
                                   feature + "'");
  }
  const double mean = ts::Mean(values);
  const double sigma = ts::StdDev(values);
  if (sigma <= 0.0) {
    return Status::InvalidArgument("zero spread, Cpk undefined");
  }
  return std::min(mean - limit.lower, limit.upper - mean) / (3.0 * sigma);
}

StatusOr<CapabilityReport> MachineCapability(
    const CaqSpecification& specification, const Machine& machine,
    size_t window) {
  std::vector<const Job*> jobs;
  const size_t begin =
      window > 0 && machine.jobs.size() > window
          ? machine.jobs.size() - window
          : 0;
  for (size_t j = begin; j < machine.jobs.size(); ++j) {
    jobs.push_back(&machine.jobs[j]);
  }
  CapabilityReport report;
  for (const CaqLimit& limit : specification.limits()) {
    HOD_ASSIGN_OR_RETURN(double cpk,
                         ProcessCapability(specification, jobs, limit.feature));
    report.features.push_back(limit.feature);
    report.cpk.push_back(cpk);
  }
  return report;
}

CaqSpecification DefaultPrinterCaqSpecification() {
  CaqSpecification specification;
  // Bands sized at +/- 5 simulator sigmas around nominal: a healthy
  // machine is comfortably capable (ideal Cpk ~1.67) even with sampling
  // noise in the sigma estimate, while the rogue machine's 3.5-sigma mean
  // shift drags its Cpk to ~0.5.
  (void)specification.AddLimit({"density", 97.35, 99.85, 98.6});
  (void)specification.AddLimit({"roughness", 4.45, 7.95, 6.2});
  (void)specification.AddLimit({"dim_deviation", 0.018, 0.078, 0.048});
  (void)specification.AddLimit({"tensile", 45.5, 56.5, 51.0});
  return specification;
}

}  // namespace hod::hierarchy
