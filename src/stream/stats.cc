#include "stream/stats.h"

#include <sstream>

namespace hod::stream {

void StreamStats::RecordBatch(size_t batch) {
  size_t bucket = 0;
  while ((size_t{1} << (bucket + 1)) <= batch && bucket + 1 < kBatchBuckets) {
    ++bucket;
  }
  batch_histogram_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void StreamStats::UpdateShardHighWater(size_t shard, uint64_t depth) {
  if (shard >= shard_high_water_.size()) return;
  std::atomic<uint64_t>& hw = shard_high_water_[shard];
  uint64_t seen = hw.load(std::memory_order_relaxed);
  while (depth > seen &&
         !hw.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
}

StreamStatsSnapshot StreamStats::Snapshot() const {
  StreamStatsSnapshot snapshot;
  snapshot.ingested = ingested_.load(std::memory_order_relaxed);
  snapshot.scored = scored_.load(std::memory_order_relaxed);
  snapshot.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  snapshot.rejected_timeout = rejected_timeout_.load(std::memory_order_relaxed);
  snapshot.rejected_non_finite =
      rejected_non_finite_.load(std::memory_order_relaxed);
  snapshot.rejected_unknown_sensor =
      rejected_unknown_sensor_.load(std::memory_order_relaxed);
  snapshot.rejected_level_mismatch =
      rejected_level_mismatch_.load(std::memory_order_relaxed);
  snapshot.rejected_out_of_order =
      rejected_out_of_order_.load(std::memory_order_relaxed);
  snapshot.rejected_closed = rejected_closed_.load(std::memory_order_relaxed);
  snapshot.alarms_raised = alarms_raised_.load(std::memory_order_relaxed);
  snapshot.alarms_cleared = alarms_cleared_.load(std::memory_order_relaxed);
  snapshot.quarantined_samples =
      quarantined_samples_.load(std::memory_order_relaxed);
  snapshot.sensor_faults = sensor_faults_.load(std::memory_order_relaxed);
  snapshot.sensor_recoveries =
      sensor_recoveries_.load(std::memory_order_relaxed);
  snapshot.watchdog_stall_events =
      watchdog_stall_events_.load(std::memory_order_relaxed);
  snapshot.forward_failed = forward_failed_.load(std::memory_order_relaxed);
  snapshot.escalation_runs = escalation_runs_.load(std::memory_order_relaxed);
  snapshot.escalation_entities =
      escalation_entities_.load(std::memory_order_relaxed);
  snapshot.escalation_findings =
      escalation_findings_.load(std::memory_order_relaxed);
  snapshot.escalation_unresolved =
      escalation_unresolved_.load(std::memory_order_relaxed);
  snapshot.escalation_cache_hits =
      escalation_cache_hits_.load(std::memory_order_relaxed);
  snapshot.escalation_cache_misses =
      escalation_cache_misses_.load(std::memory_order_relaxed);
  snapshot.escalation_latency_us =
      escalation_latency_us_.load(std::memory_order_relaxed);
  snapshot.checkpoints_written =
      checkpoints_written_.load(std::memory_order_relaxed);
  snapshot.checkpoint_failures =
      checkpoint_failures_.load(std::memory_order_relaxed);
  snapshot.snapshots_published =
      snapshots_published_.load(std::memory_order_relaxed);
  snapshot.peer_deviations = peer_deviations_.load(std::memory_order_relaxed);
  snapshot.group_outages = group_outages_.load(std::memory_order_relaxed);
  snapshot.group_outage_recoveries =
      group_outage_recoveries_.load(std::memory_order_relaxed);
  snapshot.suppressed_sensor_faults =
      suppressed_sensor_faults_.load(std::memory_order_relaxed);
  snapshot.concept_shifts = concept_shifts_.load(std::memory_order_relaxed);
  snapshot.baseline_resets = baseline_resets_.load(std::memory_order_relaxed);
  snapshot.baseline_resets_deferred =
      baseline_resets_deferred_.load(std::memory_order_relaxed);
  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    snapshot.level_dropped[i] = level_dropped_[i].load(std::memory_order_relaxed);
    snapshot.level_rejected[i] =
        level_rejected_[i].load(std::memory_order_relaxed);
    snapshot.level_quarantined[i] =
        level_quarantined_[i].load(std::memory_order_relaxed);
  }
  snapshot.shard_queue_high_water.reserve(shard_high_water_.size());
  for (const auto& hw : shard_high_water_) {
    snapshot.shard_queue_high_water.push_back(
        hw.load(std::memory_order_relaxed));
  }
  for (size_t i = 0; i < kBatchBuckets; ++i) {
    snapshot.batch_size_histogram[i] =
        batch_histogram_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void StreamStats::Restore(const StreamStatsSnapshot& snapshot) {
  ingested_.store(snapshot.ingested, std::memory_order_relaxed);
  scored_.store(snapshot.scored, std::memory_order_relaxed);
  rejected_queue_full_.store(snapshot.rejected_queue_full,
                             std::memory_order_relaxed);
  rejected_timeout_.store(snapshot.rejected_timeout,
                          std::memory_order_relaxed);
  rejected_non_finite_.store(snapshot.rejected_non_finite,
                             std::memory_order_relaxed);
  rejected_unknown_sensor_.store(snapshot.rejected_unknown_sensor,
                                 std::memory_order_relaxed);
  rejected_level_mismatch_.store(snapshot.rejected_level_mismatch,
                                 std::memory_order_relaxed);
  rejected_out_of_order_.store(snapshot.rejected_out_of_order,
                               std::memory_order_relaxed);
  rejected_closed_.store(snapshot.rejected_closed, std::memory_order_relaxed);
  alarms_raised_.store(snapshot.alarms_raised, std::memory_order_relaxed);
  alarms_cleared_.store(snapshot.alarms_cleared, std::memory_order_relaxed);
  quarantined_samples_.store(snapshot.quarantined_samples,
                             std::memory_order_relaxed);
  sensor_faults_.store(snapshot.sensor_faults, std::memory_order_relaxed);
  sensor_recoveries_.store(snapshot.sensor_recoveries,
                           std::memory_order_relaxed);
  watchdog_stall_events_.store(snapshot.watchdog_stall_events,
                               std::memory_order_relaxed);
  forward_failed_.store(snapshot.forward_failed, std::memory_order_relaxed);
  escalation_runs_.store(snapshot.escalation_runs, std::memory_order_relaxed);
  escalation_entities_.store(snapshot.escalation_entities,
                             std::memory_order_relaxed);
  escalation_findings_.store(snapshot.escalation_findings,
                             std::memory_order_relaxed);
  escalation_unresolved_.store(snapshot.escalation_unresolved,
                               std::memory_order_relaxed);
  escalation_cache_hits_.store(snapshot.escalation_cache_hits,
                               std::memory_order_relaxed);
  escalation_cache_misses_.store(snapshot.escalation_cache_misses,
                                 std::memory_order_relaxed);
  escalation_latency_us_.store(snapshot.escalation_latency_us,
                               std::memory_order_relaxed);
  checkpoints_written_.store(snapshot.checkpoints_written,
                             std::memory_order_relaxed);
  checkpoint_failures_.store(snapshot.checkpoint_failures,
                             std::memory_order_relaxed);
  snapshots_published_.store(snapshot.snapshots_published,
                             std::memory_order_relaxed);
  peer_deviations_.store(snapshot.peer_deviations, std::memory_order_relaxed);
  group_outages_.store(snapshot.group_outages, std::memory_order_relaxed);
  group_outage_recoveries_.store(snapshot.group_outage_recoveries,
                                 std::memory_order_relaxed);
  suppressed_sensor_faults_.store(snapshot.suppressed_sensor_faults,
                                  std::memory_order_relaxed);
  concept_shifts_.store(snapshot.concept_shifts, std::memory_order_relaxed);
  baseline_resets_.store(snapshot.baseline_resets, std::memory_order_relaxed);
  baseline_resets_deferred_.store(snapshot.baseline_resets_deferred,
                                  std::memory_order_relaxed);
  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    level_dropped_[i].store(snapshot.level_dropped[i],
                            std::memory_order_relaxed);
    level_rejected_[i].store(snapshot.level_rejected[i],
                             std::memory_order_relaxed);
    level_quarantined_[i].store(snapshot.level_quarantined[i],
                                std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kBatchBuckets; ++i) {
    batch_histogram_[i].store(snapshot.batch_size_histogram[i],
                              std::memory_order_relaxed);
  }
}

StreamStatsSnapshot& StreamStatsSnapshot::operator+=(
    const StreamStatsSnapshot& other) {
  ingested += other.ingested;
  scored += other.scored;
  dropped += other.dropped;
  rejected_queue_full += other.rejected_queue_full;
  rejected_timeout += other.rejected_timeout;
  rejected_non_finite += other.rejected_non_finite;
  rejected_unknown_sensor += other.rejected_unknown_sensor;
  rejected_level_mismatch += other.rejected_level_mismatch;
  rejected_out_of_order += other.rejected_out_of_order;
  rejected_closed += other.rejected_closed;
  alarms_raised += other.alarms_raised;
  alarms_cleared += other.alarms_cleared;
  quarantined_samples += other.quarantined_samples;
  sensor_faults += other.sensor_faults;
  sensor_recoveries += other.sensor_recoveries;
  watchdog_stall_events += other.watchdog_stall_events;
  forward_failed += other.forward_failed;
  escalation_runs += other.escalation_runs;
  escalation_entities += other.escalation_entities;
  escalation_findings += other.escalation_findings;
  escalation_unresolved += other.escalation_unresolved;
  escalation_cache_hits += other.escalation_cache_hits;
  escalation_cache_misses += other.escalation_cache_misses;
  escalation_latency_us += other.escalation_latency_us;
  checkpoints_written += other.checkpoints_written;
  checkpoint_failures += other.checkpoint_failures;
  snapshots_published += other.snapshots_published;
  peer_deviations += other.peer_deviations;
  group_outages += other.group_outages;
  group_outage_recoveries += other.group_outage_recoveries;
  suppressed_sensor_faults += other.suppressed_sensor_faults;
  concept_shifts += other.concept_shifts;
  baseline_resets += other.baseline_resets;
  baseline_resets_deferred += other.baseline_resets_deferred;
  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    level_dropped[i] += other.level_dropped[i];
    level_rejected[i] += other.level_rejected[i];
    level_quarantined[i] += other.level_quarantined[i];
  }
  if (other.shard_queue_high_water.size() > shard_queue_high_water.size()) {
    shard_queue_high_water.resize(other.shard_queue_high_water.size(), 0);
  }
  for (size_t i = 0; i < other.shard_queue_high_water.size(); ++i) {
    if (other.shard_queue_high_water[i] > shard_queue_high_water[i]) {
      shard_queue_high_water[i] = other.shard_queue_high_water[i];
    }
  }
  if (other.shard_stalled.size() > shard_stalled.size()) {
    shard_stalled.resize(other.shard_stalled.size(), 0);
  }
  for (size_t i = 0; i < other.shard_stalled.size(); ++i) {
    shard_stalled[i] = shard_stalled[i] != 0 || other.shard_stalled[i] != 0
                           ? uint8_t{1}
                           : uint8_t{0};
  }
  for (size_t i = 0; i < kBatchBuckets; ++i) {
    batch_size_histogram[i] += other.batch_size_histogram[i];
  }
  return *this;
}

std::string StreamStatsSnapshot::ToString() const {
  std::ostringstream out;
  out << "ingested=" << ingested << " scored=" << scored
      << " dropped=" << dropped << " rejected=" << rejected_total()
      << " (queue_full=" << rejected_queue_full
      << " timeout=" << rejected_timeout
      << " non_finite=" << rejected_non_finite
      << " unknown_sensor=" << rejected_unknown_sensor
      << " level_mismatch=" << rejected_level_mismatch
      << " out_of_order=" << rejected_out_of_order
      << " closed=" << rejected_closed << ")"
      << " alarms_raised=" << alarms_raised
      << " alarms_cleared=" << alarms_cleared << "\n";
  out << "health: quarantined_samples=" << quarantined_samples
      << " sensor_faults=" << sensor_faults
      << " sensor_recoveries=" << sensor_recoveries
      << " watchdog_stalls=" << watchdog_stall_events
      << " forward_failed=" << forward_failed << "\n";
  out << "escalation: runs=" << escalation_runs
      << " entities=" << escalation_entities
      << " findings=" << escalation_findings
      << " unresolved=" << escalation_unresolved
      << " cache_hits=" << escalation_cache_hits
      << " cache_misses=" << escalation_cache_misses
      << " latency_us=" << escalation_latency_us
      << " checkpoints=" << checkpoints_written
      << " checkpoint_failures=" << checkpoint_failures
      << " snapshots_published=" << snapshots_published << "\n";
  out << "peer: deviations=" << peer_deviations
      << " group_outages=" << group_outages
      << " group_outage_recoveries=" << group_outage_recoveries
      << " suppressed_sensor_faults=" << suppressed_sensor_faults << "\n";
  out << "shift: concept_shifts=" << concept_shifts
      << " baseline_resets=" << baseline_resets
      << " baseline_resets_deferred=" << baseline_resets_deferred << "\n";
  out << "per-level drop/reject/quarantine:";
  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    if (level_dropped[i] == 0 && level_rejected[i] == 0 &&
        level_quarantined[i] == 0) {
      continue;
    }
    out << " L" << (i + 1) << "=" << level_dropped[i] << "/"
        << level_rejected[i] << "/" << level_quarantined[i];
  }
  out << "\nshard queue high-water:";
  for (size_t i = 0; i < shard_queue_high_water.size(); ++i) {
    out << " [" << i << "]=" << shard_queue_high_water[i];
    if (i < shard_stalled.size() && shard_stalled[i] != 0) out << "(STALLED)";
  }
  out << "\nbatch sizes:";
  for (size_t i = 0; i < batch_size_histogram.size(); ++i) {
    if (batch_size_histogram[i] == 0) continue;
    out << " " << (size_t{1} << i) << "+:" << batch_size_histogram[i];
  }
  out << "\n";
  return out.str();
}

}  // namespace hod::stream
