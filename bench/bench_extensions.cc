// E8 — Extensions beyond the paper's Table 1 (its Sections 3/5 prose and
// Section 1 promises): profile similarity, distance-based kNN, LOF,
// reverse-NN hubness, outlier-vector ensembles, and concept-shift
// discovery. Quantifies what each adds over the Table-1 toolbox.

#include <memory>

#include "bench_util.h"
#include "core/concept_shift.h"
#include "detect/adapters.h"
#include "detect/ar_detector.h"
#include "detect/baseline.h"
#include "detect/em_detector.h"
#include "detect/ensemble.h"
#include "detect/fsa_detector.h"
#include "detect/knn_detector.h"
#include "detect/lof_detector.h"
#include "detect/profile_similarity.h"
#include "detect/var_detector.h"
#include "eval/metrics.h"
#include "hierarchy/level_data.h"
#include "sim/datasets.h"
#include "sim/plant.h"
#include "util/rng.h"

namespace hod {
namespace {

double VectorAuc(detect::VectorDetector& detector,
                 const sim::PointDataset& dataset) {
  if (!detector.Train(dataset.train).ok()) return 0.5;
  auto scores = detector.Score(dataset.test);
  if (!scores.ok()) return 0.5;
  return eval::RocAuc(scores.value(), dataset.test_labels).value_or(0.5);
}

double SeriesMeanF1(detect::SeriesDetector& detector,
                    const sim::SeriesDataset& dataset) {
  if (!detector.Train(dataset.train).ok()) return 0.0;
  double sum = 0.0;
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.Score(dataset.test[s]);
    if (!scores.ok()) return 0.0;
    sum += eval::BestF1WithTolerance(scores.value(), dataset.test_labels[s],
                                     3)
               ->f1;
  }
  return sum / static_cast<double>(dataset.test.size());
}

}  // namespace
}  // namespace hod

int main() {
  using namespace hod;
  bench::PrintHeader(
      "E8", "Extension techniques",
      "Sections 3/5 prose (PS, knn, LOF, RNN, outlier vectors) + Section 1 "
      "(concept shifts)");

  // ---- Point-detector comparison ------------------------------------------
  bench::PrintSection(
      "Distance/density point detectors on the 3-D displaced-cluster set "
      "(ROC-AUC)");
  sim::PointDatasetOptions point_options;
  point_options.seed = 7;
  const auto points = sim::GeneratePointDataset(point_options).value();
  Table point_table({"Detector", "ROC-AUC"});
  {
    detect::KnnDetector knn;
    point_table.AddRow({"KnnDistance", bench::Fmt(VectorAuc(knn, points))});
    detect::LofDetector lof;
    point_table.AddRow(
        {"LocalOutlierFactor", bench::Fmt(VectorAuc(lof, points))});
    detect::ReverseNnDetector reverse_nn;
    point_table.AddRow({"ReverseNearestNeighbors",
                        bench::Fmt(VectorAuc(reverse_nn, points))});
    detect::EmDetector em;
    point_table.AddRow(
        {"ExpectationMaximization (Table 1)", bench::Fmt(VectorAuc(em, points))});
    detect::RobustZVectorDetector rz;
    point_table.AddRow(
        {"RobustZVector (baseline)", bench::Fmt(VectorAuc(rz, points))});
  }
  point_table.Print(std::cout);
  std::cout << "Expected: neighborhood methods (knn/LOF/RNN) match or beat "
               "the parametric\nmodel on multi-modal data; the global "
               "baseline trails (random-direction\ndisplacements barely move "
               "per-feature values).\n";

  // ---- Ensembles ----------------------------------------------------------
  bench::PrintSection(
      "Outlier-vector ensembles on mixed-type series (best-F1, tol 3)");
  sim::SeriesDatasetOptions series_options;
  series_options.seed = 7;
  const auto series = sim::GenerateSeriesDataset(series_options).value();
  Table ensemble_table({"Detector", "best-F1"});
  {
    detect::ArDetector ar;
    ensemble_table.AddRow(
        {"AutoregressiveModel alone", bench::Fmt(SeriesMeanF1(ar, series))});
    auto fsa = detect::MakeSeriesFromSequence(
        std::make_unique<detect::FsaDetector>(), ts::SaxOptions{0, 5});
    ensemble_table.AddRow(
        {"FSA+SAX alone", bench::Fmt(SeriesMeanF1(*fsa, series))});
    for (detect::Combination combination :
         {detect::Combination::kMean, detect::Combination::kMax,
          detect::Combination::kRankMean}) {
      detect::SeriesEnsemble ensemble(combination);
      (void)ensemble.AddMember(std::make_unique<detect::ArDetector>());
      (void)ensemble.AddMember(detect::MakeSeriesFromSequence(
          std::make_unique<detect::FsaDetector>(), ts::SaxOptions{0, 5}));
      (void)ensemble.AddMember(
          std::make_unique<detect::RobustZSeriesDetector>());
      ensemble_table.AddRow(
          {"Ensemble[" +
               std::string(detect::CombinationName(combination)) +
               "] AR+FSA+RobustZ",
           bench::Fmt(SeriesMeanF1(ensemble, series))});
    }
  }
  ensemble_table.Print(std::cout);
  std::cout << "Expected: the mean/rank consensus degrades gracefully "
               "toward the strongest\nmember despite the weak FSA member, "
               "and far exceeds the weak members —\nthe point of outlier "
               "vectors when no single best algorithm is known a priori.\n";

  // ---- Profile similarity ---------------------------------------------------
  bench::PrintSection(
      "Profile similarity vs global baseline on phase-shaped data");
  {
    // Ramp phases: a mid-ramp value is only anomalous relative to the
    // profile position, never to the global value range.
    Rng rng(5);
    auto make_ramp = [&rng](bool inject) {
      std::vector<double> values(128);
      for (size_t i = 0; i < values.size(); ++i) {
        values[i] = 150.0 * static_cast<double>(i) / 127.0 +
                    rng.Gaussian(0.0, 0.8);
      }
      std::vector<uint8_t> labels(values.size(), 0);
      if (inject) {
        values[20] = 120.0;  // end-of-ramp value early in the ramp
        labels[20] = 1;
      }
      return std::make_pair(ts::TimeSeries("ramp", 0, 1, values), labels);
    };
    std::vector<ts::TimeSeries> train;
    for (int i = 0; i < 6; ++i) train.push_back(make_ramp(false).first);
    auto [probe, labels] = make_ramp(true);

    detect::ProfileSimilarityDetector profile;
    (void)profile.Train(train);
    detect::RobustZSeriesDetector baseline;
    (void)baseline.Train(train);
    Table profile_table({"Detector", "score@anomaly", "max score elsewhere"});
    for (auto* detector :
         std::initializer_list<detect::SeriesDetector*>{&profile,
                                                        &baseline}) {
      auto scores = detector->Score(probe).value();
      double elsewhere = 0.0;
      for (size_t i = 0; i < scores.size(); ++i) {
        if (i != 20) elsewhere = std::max(elsewhere, scores[i]);
      }
      profile_table.AddRow({detector->name(), bench::Fmt(scores[20], 2),
                            bench::Fmt(elsewhere, 2)});
    }
    profile_table.Print(std::cout);
    std::cout << "Expected: the profile detector isolates the in-range "
                 "positional anomaly;\nthe value-range baseline cannot see "
                 "it at all.\n";
  }

  // ---- Multivariate (VAR) vs per-sensor detection ---------------------------
  bench::PrintSection(
      "Cross-channel anomaly: per-sensor AR vs joint VAR (score at event)");
  {
    // Two coupled channels (y follows x with lag 1). The anomaly keeps
    // both marginals in range but flips the coupling sign.
    Rng rng(9);
    auto make_channels = [&rng](size_t n) {
      std::vector<double> x(n);
      std::vector<double> y(n);
      double state = 0.0;
      for (size_t t = 0; t < n; ++t) {
        state = 0.7 * state + rng.Gaussian(0.0, 0.5);
        x[t] = state;
        y[t] = (t > 0 ? 0.9 * x[t - 1] : 0.0) + rng.Gaussian(0.0, 0.1);
      }
      return std::vector<ts::TimeSeries>{
          ts::TimeSeries("x", 0, 1, std::move(x)),
          ts::TimeSeries("y", 0, 1, std::move(y))};
    };
    auto train = make_channels(3000);
    auto probe = make_channels(400);
    probe[0].mutable_values()[199] = 1.2;
    probe[1].mutable_values()[200] = -0.9 * 1.2;  // coupling violated

    detect::VarDetector var;
    (void)var.Train({train});
    auto var_scores = var.Score(probe).value();

    detect::ArDetector ar_y;
    (void)ar_y.Train({train[1]});
    auto ar_scores = ar_y.Score(probe[1]).value();

    Table var_table({"Detector", "score at violation (t=200)",
                     "max score elsewhere"});
    auto max_elsewhere = [](const std::vector<double>& scores) {
      double best = 0.0;
      for (size_t t = 0; t < scores.size(); ++t) {
        if (t < 198 || t > 203) best = std::max(best, scores[t]);
      }
      return best;
    };
    var_table.AddRow({"VectorAutoregressive (joint)",
                      bench::Fmt(var_scores[200], 2),
                      bench::Fmt(max_elsewhere(var_scores), 2)});
    var_table.AddRow({"AutoregressiveModel on y alone",
                      bench::Fmt(ar_scores[200], 2),
                      bench::Fmt(max_elsewhere(ar_scores), 2)});
    var_table.Print(std::cout);
    std::cout << "Expected: the joint model pins the violation; the "
                 "per-sensor model sees an\nin-range value consistent with "
                 "y's own history and stays quiet.\n";
  }

  // ---- Concept shifts --------------------------------------------------------
  bench::PrintSection(
      "Concept-shift discovery on the line-level powder-quality series");
  {
    sim::PlantOptions plant_options;
    plant_options.num_lines = 1;
    plant_options.machines_per_line = 2;
    plant_options.jobs_per_machine = 32;
    plant_options.seed = 7;
    sim::ScenarioOptions scenario;
    scenario.process_anomaly_rate = 0.05;
    scenario.glitch_rate = 0.05;
    scenario.bad_batch_jobs = 8;  // a sustained regime, not a blip
    const auto plant = sim::BuildPlant(plant_options, scenario).value();
    auto line_series =
        hierarchy::LineJobSeries(plant.production.lines[0]).value();
    const ts::TimeSeries* powder = nullptr;
    for (const auto& s : line_series) {
      if (s.name().find("powder_quality") != std::string::npos) powder = &s;
    }
    core::ConceptShiftOptions shift_options;
    shift_options.min_persistence = 4;
    shift_options.cusum_threshold = 6.0;
    auto shifts = core::DetectConceptShifts(*powder, shift_options).value();
    std::cout << "Bad-batch window: jobs "
              << [&] {
                   const auto& flags =
                       plant.truth.line_job_labels.at("line1");
                   size_t first = flags.size();
                   size_t last = 0;
                   for (size_t j = 0; j < flags.size(); ++j) {
                     if (flags[j] != 0) {
                       first = std::min(first, j);
                       last = j;
                     }
                   }
                   return std::to_string(first) + ".." +
                          std::to_string(last);
                 }()
              << " of " << powder->size() << "\n";
    Table shift_table({"#", "job index", "before", "after", "magnitude"});
    for (size_t s = 0; s < shifts.size(); ++s) {
      shift_table.AddRow({std::to_string(s + 1),
                          std::to_string(shifts[s].index),
                          bench::Fmt(shifts[s].before_mean),
                          bench::Fmt(shifts[s].after_mean),
                          bench::Fmt(shifts[s].magnitude_sigmas, 1) + " sigma"});
    }
    shift_table.Print(std::cout);
    std::cout << "Expected: two shifts — into the degraded lot and back — at "
                 "the window's\nedges; the detector re-baselines instead of "
                 "alarming on every bad job.\n";
  }
  return 0;
}
