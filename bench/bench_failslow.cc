// E12 — fail-slow detection on the space axis (hod::stream peer groups).
//
// Two parts:
//   1. Gain-drift lead time: slow multiplicative decalibration is the one
//      injected fault with ground truth that neither the health FSM (the
//      values stay finite, ordered, and moving) nor the per-sensor AR
//      baseline can see. The signal carries common-mode process variation
//      (a shared wandering setpoint) whose local slope is comparable to
//      the injected drift, so the time axis must tolerate slopes of that
//      size and is structurally blind to the decalibration; the space
//      axis compares each channel against its redundancy group, where the
//      common mode cancels and only the victim's drift survives. We score
//      recall and how often the space axis fired before the victim's own
//      baseline alarm.
//   2. Quarantine-onset correlation: a line outage silences eight sensors
//      at once. The engine must collapse the storm into exactly ONE
//      kGroupOutage finding (zero per-sensor kSensorFault findings),
//      then drain the outage when the line comes back.
//
// Emits human-readable tables on stdout and BENCH_FAILSLOW.json in the
// working directory; CI gates on the JSON.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/report.h"
#include "hierarchy/sensor_registry.h"
#include "sim/fault_injector.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace {

using hod::hierarchy::ProductionLevel;
using hod::hierarchy::SensorRegistry;
using hod::sim::FaultInjector;
using hod::sim::FaultKind;
using hod::sim::FaultProfile;
using hod::stream::PeerDeviation;
using hod::stream::SensorSample;
using hod::stream::StreamEngine;
using hod::stream::StreamEngineOptions;

constexpr size_t kGroups = 8;
constexpr size_t kPerGroup = 4;

std::string SensorId(size_t group, size_t slot) {
  return "g" + std::to_string(group) + ".s" + std::to_string(slot);
}

// Common-mode process variation shared by every sensor of a group: two
// slow sinusoids. The short component's peak slope (~0.056 units/s) is
// deliberately on par with the injected drift (50 * 0.001 = 0.05/s): a
// per-sensor baseline that tolerates the process wander cannot also flag
// the drift, while the group median cancels the wander exactly.
double Setpoint(size_t group, double t) {
  const double g = static_cast<double>(group);
  return 50.0 + 1.5 * std::sin(2.0 * M_PI * t / 347.0 + g) +
         0.8 * std::sin(2.0 * M_PI * t / 89.0 + 2.0 * g);
}

SensorRegistry MakeRegistry() {
  SensorRegistry registry;
  for (size_t g = 0; g < kGroups; ++g) {
    for (size_t s = 0; s < kPerGroup; ++s) {
      (void)registry.Register({SensorId(g, s), "", "degC",
                               "m" + std::to_string(g),
                               "grp" + std::to_string(g)});
    }
  }
  return registry;
}

// ---------------------------------------------------------------------------
// Part 1: gain-drift lead time.

struct DriftRow {
  std::string sensor;
  double fault_start = 0.0;
  std::optional<double> peer_ts;      // first space-axis deviation
  std::optional<double> baseline_ts;  // first time-axis alarm
};

struct DriftResult {
  std::vector<DriftRow> rows;
  size_t victims = 0;
  size_t detected_before_baseline = 0;
  size_t false_peer_fires = 0;  // deviations on non-victims
  double recall = 0.0;
  double mean_detection_delay = 0.0;
};

DriftResult RunDriftDrill() {
  constexpr size_t kSteps = 1200;
  constexpr double kDriftStart = 600.0;
  constexpr size_t kVictims = 6;  // one per group, two groups stay clean

  FaultInjector injector;
  std::vector<std::string> victims;
  for (size_t g = 0; g < kVictims; ++g) {
    FaultProfile profile;
    profile.kind = FaultKind::kGainDrift;
    profile.start = kDriftStart;
    profile.duration = static_cast<double>(kSteps) - kDriftStart;
    profile.gain_rate = 0.001;  // 0.1%/s: ~5 units of skew per 100 s
    victims.push_back(SensorId(g, 0));
    (void)injector.AddFault(victims.back(), profile);
  }

  StreamEngineOptions options;
  options.synchronous = true;
  options.monitor.warmup = 100;
  const SensorRegistry registry = MakeRegistry();
  StreamEngine engine(options);
  for (const std::string& id : registry.ids()) (void)engine.AddSensor(id);
  (void)engine.AddPeerGroupsFromRegistry(registry);
  (void)engine.Start();

  std::map<std::string, double> first_alarm;
  std::vector<hod::Rng> rngs;
  std::vector<double> noise(registry.size(), 0.0);
  for (size_t i = 0; i < registry.size(); ++i) rngs.emplace_back(4100 + i);
  for (size_t t = 0; t < kSteps; ++t) {
    for (size_t i = 0; i < registry.size(); ++i) {
      const std::string& id = registry.ids()[i];
      noise[i] = 0.3 * noise[i] + rngs[i].Gaussian(0.0, 0.25);
      SensorSample clean{id, ProductionLevel::kPhase, static_cast<double>(t),
                         Setpoint(i / kPerGroup, static_cast<double>(t)) +
                             noise[i]};
      for (const SensorSample& sample : injector.Apply(clean)) {
        auto ack = engine.Ingest(sample);
        // First time-axis alarm DURING the fault; noise-level false
        // alarms before the drift starts are the baseline's own problem
        // and must not count as it "seeing" the drift.
        if (ack.ok() && ack->update.has_value() &&
            ack->update->alarm_raised && sample.ts >= kDriftStart &&
            first_alarm.find(id) == first_alarm.end()) {
          first_alarm[id] = sample.ts;
        }
      }
    }
  }
  (void)engine.Flush();

  std::map<std::string, double> first_peer;
  DriftResult result;
  for (const PeerDeviation& deviation : engine.PeerDeviations()) {
    if (!injector.IsVictim(deviation.sensor_id)) {
      ++result.false_peer_fires;
      continue;
    }
    if (first_peer.find(deviation.sensor_id) == first_peer.end()) {
      first_peer[deviation.sensor_id] = deviation.ts;
    }
  }

  result.victims = victims.size();
  double delay_sum = 0.0;
  size_t delay_n = 0;
  for (const std::string& id : victims) {
    DriftRow row;
    row.sensor = id;
    row.fault_start = kDriftStart;
    auto peer_it = first_peer.find(id);
    if (peer_it != first_peer.end()) row.peer_ts = peer_it->second;
    auto alarm_it = first_alarm.find(id);
    if (alarm_it != first_alarm.end()) row.baseline_ts = alarm_it->second;
    // Detected = the space axis fired during the fault, and before the
    // time axis said anything (a baseline that never alarms counts as
    // "after": the drift would have shipped bad parts forever).
    const bool peer_first =
        row.peer_ts.has_value() && *row.peer_ts >= kDriftStart &&
        (!row.baseline_ts.has_value() || *row.peer_ts < *row.baseline_ts);
    if (peer_first) {
      ++result.detected_before_baseline;
      delay_sum += *row.peer_ts - kDriftStart;
      ++delay_n;
    }
    result.rows.push_back(row);
  }
  result.recall = result.victims > 0
                      ? static_cast<double>(result.detected_before_baseline) /
                            static_cast<double>(result.victims)
                      : 1.0;
  result.mean_detection_delay = delay_n > 0 ? delay_sum / delay_n : -1.0;
  (void)engine.Stop();
  return result;
}

// ---------------------------------------------------------------------------
// Part 2: line outage correlation.

struct OutageResult {
  size_t line_sensors = 0;
  size_t group_outage_findings = 0;
  size_t sensor_fault_findings = 0;  // per-sensor storm — must be zero
  uint64_t suppressed = 0;
  double detection_delay = -1.0;  // outage finding ts - fault start
  bool recovered = false;
};

OutageResult RunOutageDrill() {
  constexpr size_t kSteps = 900;
  constexpr double kOutageStart = 400.0;
  constexpr double kOutageDuration = 200.0;

  const SensorRegistry registry = MakeRegistry();
  // "Line 0" carries the sensors of the first two machines.
  std::vector<std::string> line;
  for (size_t g = 0; g < 2; ++g) {
    for (size_t s = 0; s < kPerGroup; ++s) line.push_back(SensorId(g, s));
  }

  FaultInjector injector;
  (void)injector.AddLineOutage(line, kOutageStart, kOutageDuration);

  StreamEngineOptions options;
  options.synchronous = true;
  options.monitor.warmup = 100;
  options.health.staleness_timeout = 30.0;
  options.health.recovery_clean_streak = 64;
  options.health_sweep_every = 64;
  options.peer.outage_min_sensors = 6;
  options.peer.outage_window = 32.0;
  options.peer.outage_entity = "line0";
  StreamEngine engine(options);
  for (const std::string& id : registry.ids()) (void)engine.AddSensor(id);
  (void)engine.AddPeerGroupsFromRegistry(registry);
  (void)engine.Start();

  std::vector<hod::Rng> rngs;
  std::vector<double> noise(registry.size(), 0.0);
  for (size_t i = 0; i < registry.size(); ++i) rngs.emplace_back(5200 + i);
  for (size_t t = 0; t < kSteps; ++t) {
    for (size_t i = 0; i < registry.size(); ++i) {
      noise[i] = 0.3 * noise[i] + rngs[i].Gaussian(0.0, 0.25);
      SensorSample clean{registry.ids()[i], ProductionLevel::kPhase,
                         static_cast<double>(t),
                         Setpoint(i / kPerGroup, static_cast<double>(t)) +
                             noise[i]};
      for (const SensorSample& sample : injector.Apply(clean)) {
        (void)engine.Ingest(sample);
      }
    }
  }
  (void)engine.Flush();

  OutageResult result;
  result.line_sensors = line.size();
  for (const hod::core::OutlierFinding& finding : engine.Findings()) {
    if (finding.kind == hod::core::FindingKind::kGroupOutage) {
      ++result.group_outage_findings;
      if (result.detection_delay < 0.0) {
        result.detection_delay = finding.origin.time - kOutageStart;
      }
    }
    if (finding.kind == hod::core::FindingKind::kSensorFault) {
      ++result.sensor_fault_findings;
    }
  }
  const auto stats = engine.stats();
  result.suppressed = stats.suppressed_sensor_faults;
  result.recovered = stats.group_outage_recoveries == 1 &&
                     !engine.Snapshot().group_outage_active;
  (void)engine.Stop();
  return result;
}

}  // namespace

int main() {
  hod::bench::PrintHeader(
      "E12", "Fail-slow detection lead time & outage correlation",
      "space-axis peer groups: gain-drift recall + kGroupOutage collapse");

  hod::bench::PrintSection("gain drift: space axis vs time axis");
  const DriftResult drift = RunDriftDrill();
  std::printf("%-10s %-12s %-14s %s\n", "victim", "drift start", "peer fired",
              "baseline alarm");
  for (const DriftRow& row : drift.rows) {
    std::printf("%-10s %-12.0f %-14s %s\n", row.sensor.c_str(),
                row.fault_start,
                row.peer_ts ? (std::to_string(*row.peer_ts) + "s").c_str()
                            : "MISSED",
                row.baseline_ts ? (std::to_string(*row.baseline_ts) + "s")
                                      .c_str()
                                : "never");
  }
  std::printf("recall (peer fired first) %.3f  mean delay %.1fs  "
              "false peer fires %zu\n",
              drift.recall, drift.mean_detection_delay,
              drift.false_peer_fires);

  hod::bench::PrintSection("line outage: one finding, no storm");
  const OutageResult outage = RunOutageDrill();
  std::printf("line sensors silenced   %zu\n", outage.line_sensors);
  std::printf("kGroupOutage findings   %zu (want exactly 1)\n",
              outage.group_outage_findings);
  std::printf("kSensorFault findings   %zu (want 0 — storm suppressed)\n",
              outage.sensor_fault_findings);
  std::printf("onsets absorbed         %llu\n",
              static_cast<unsigned long long>(outage.suppressed));
  std::printf("detection delay         %.0fs after the trunk died\n",
              outage.detection_delay);
  std::printf("recovered               %s\n",
              outage.recovered ? "yes" : "NO");

  std::ofstream json("BENCH_FAILSLOW.json");
  json << "{\n  \"experiment\": \"failslow\",\n"
       << "  \"gain_drift\": {\n"
       << "    \"victims\": " << drift.victims << ",\n"
       << "    \"detected_before_baseline\": "
       << drift.detected_before_baseline << ",\n"
       << "    \"recall\": " << drift.recall << ",\n"
       << "    \"false_peer_fires\": " << drift.false_peer_fires << ",\n"
       << "    \"mean_detection_delay_s\": " << drift.mean_detection_delay
       << "\n  },\n"
       << "  \"line_outage\": {\n"
       << "    \"line_sensors\": " << outage.line_sensors << ",\n"
       << "    \"group_outage_findings\": " << outage.group_outage_findings
       << ",\n"
       << "    \"sensor_fault_findings\": " << outage.sensor_fault_findings
       << ",\n"
       << "    \"suppressed_onsets\": " << outage.suppressed << ",\n"
       << "    \"detection_delay_s\": " << outage.detection_delay << ",\n"
       << "    \"recovered\": " << (outage.recovered ? "true" : "false")
       << "\n  }\n}\n";
  std::printf("\nwrote BENCH_FAILSLOW.json\n");
  return 0;
}
