#ifndef HOD_HIERARCHY_SENSOR_REGISTRY_H_
#define HOD_HIERARCHY_SENSOR_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace hod::hierarchy {

/// Static description of one physical sensor.
struct SensorInfo {
  /// Globally unique id, e.g. "m1.bed_temp_a".
  std::string id;
  /// Human name, e.g. "Bed temperature (front)".
  std::string name;
  /// Unit, e.g. "degC".
  std::string unit;
  /// Machine the sensor is mounted on; empty for environment sensors.
  std::string machine_id;
  /// Sensors measuring the same physical quantity share a redundancy
  /// group ("machines are often equipped with redundant sensors, e.g., to
  /// measure the temperature of the same machine at different places").
  /// Empty = no redundancy. This is what the paper's support value is
  /// computed over.
  std::string redundancy_group;
};

/// Registry of all sensors in a production, answering the "corresponding
/// sensors" query of Algorithm 1.
class SensorRegistry {
 public:
  /// Registers a sensor; the id must be unique.
  Status Register(SensorInfo info);

  /// Info for `id`, or NotFound.
  StatusOr<SensorInfo> Get(const std::string& id) const;

  /// True when `id` is registered.
  bool Contains(const std::string& id) const;

  /// Ids of the *other* sensors in `id`'s redundancy group (empty when the
  /// sensor has no group or is alone in it). NotFound for unknown ids.
  StatusOr<std::vector<std::string>> CorrespondingSensors(
      const std::string& id) const;

  /// All sensor ids in registration order.
  const std::vector<std::string>& ids() const { return order_; }

  size_t size() const { return sensors_.size(); }

 private:
  std::map<std::string, SensorInfo> sensors_;
  std::map<std::string, std::vector<std::string>> groups_;
  std::vector<std::string> order_;
};

}  // namespace hod::hierarchy

#endif  // HOD_HIERARCHY_SENSOR_REGISTRY_H_
