#include "core/alert_manager.h"

#include <algorithm>
#include <map>

namespace hod::core {

AlertManager::AlertManager(AlertManagerOptions options) : options_(options) {}

void AlertManager::Ingest(const OutlierFinding& finding) {
  findings_.push_back(finding);
}

void AlertManager::IngestReport(const HierarchicalOutlierReport& report) {
  for (const OutlierFinding& finding : report.findings) Ingest(finding);
}

void AlertManager::IngestBatch(const std::vector<OutlierFinding>& findings) {
  findings_.reserve(findings_.size() + findings.size());
  for (const OutlierFinding& finding : findings) Ingest(finding);
}

std::vector<AlertEpisode> AlertManager::BuildEpisodes(
    bool measurement_errors) const {
  // Group by entity, then sweep time-sorted findings into episodes.
  std::map<std::string, std::vector<const OutlierFinding*>> by_entity;
  for (const OutlierFinding& finding : findings_) {
    // Sensor-fault and peer-drift findings belong on the calibration queue
    // regardless of how the producer set the measurement-error flag.
    const bool calibration = finding.measurement_error_warning ||
                             finding.kind == FindingKind::kSensorFault ||
                             finding.kind == FindingKind::kPeerDrift;
    if (calibration != measurement_errors) continue;
    by_entity[finding.origin.entity].push_back(&finding);
  }
  std::vector<AlertEpisode> episodes;
  for (auto& [entity, group] : by_entity) {
    std::sort(group.begin(), group.end(),
              [](const OutlierFinding* a, const OutlierFinding* b) {
                return a->origin.time < b->origin.time;
              });
    AlertEpisode current;
    bool open = false;
    auto flush = [&]() {
      if (open) episodes.push_back(current);
      open = false;
    };
    for (const OutlierFinding* finding : group) {
      if (open &&
          finding->origin.time - current.end_time > options_.merge_window) {
        flush();
      }
      if (!open) {
        current = AlertEpisode{};
        current.entity = entity;
        current.start_time = finding->origin.time;
        current.suspected_measurement_error = measurement_errors;
        open = true;
      }
      current.end_time = finding->origin.time;
      ++current.finding_count;
      current.peak_outlierness =
          std::max(current.peak_outlierness, finding->outlierness);
      current.peak_global_score =
          std::max(current.peak_global_score, finding->global_score);
      current.peak_support = std::max(current.peak_support, finding->support);
      if (finding->escalated) ++current.escalated_findings;
      if (finding->kind == FindingKind::kGroupOutage) {
        current.group_outage = true;
      }
      const AlertSeverity severity = ClassifyAlert(*finding);
      if (static_cast<int>(severity) > static_cast<int>(current.severity)) {
        current.severity = severity;
      }
    }
    flush();
  }
  // Strongest first: severity, then peak outlierness.
  std::sort(episodes.begin(), episodes.end(),
            [](const AlertEpisode& a, const AlertEpisode& b) {
              if (a.severity != b.severity) {
                return static_cast<int>(a.severity) >
                       static_cast<int>(b.severity);
              }
              return a.peak_outlierness > b.peak_outlierness;
            });
  return episodes;
}

std::vector<AlertEpisode> AlertManager::Episodes() const {
  std::vector<AlertEpisode> all = BuildEpisodes(/*measurement_errors=*/false);
  std::vector<AlertEpisode> filtered;
  for (AlertEpisode& episode : all) {
    if (static_cast<int>(episode.severity) >=
        static_cast<int>(options_.min_severity)) {
      filtered.push_back(std::move(episode));
    }
  }
  return filtered;
}

std::vector<AlertEpisode> AlertManager::CalibrationQueue() const {
  return BuildEpisodes(/*measurement_errors=*/true);
}

}  // namespace hod::core
