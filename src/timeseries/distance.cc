#include "timeseries/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/simd.h"

namespace hod::ts {

StatusOr<double> SquaredEuclideanDistance(const std::vector<double>& a,
                                          const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("size mismatch in Euclidean distance");
  }
  return util::simd::SquaredL2(a.data(), b.data(), a.size());
}

StatusOr<double> EuclideanDistance(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  HOD_ASSIGN_OR_RETURN(double sq, SquaredEuclideanDistance(a, b));
  return std::sqrt(sq);
}

double DtwDistance(const std::vector<double>& a, const std::vector<double>& b,
                   size_t band) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) return n == m ? 0.0 : std::numeric_limits<double>::infinity();
  const double kInf = std::numeric_limits<double>::infinity();
  // Two-row DP over the (n+1) x (m+1) cost matrix.
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    size_t j_lo = 1;
    size_t j_hi = m;
    if (band > 0) {
      // Sakoe-Chiba band around the (scaled) diagonal.
      const double diag = static_cast<double>(i) * m / n;
      const double lo = diag - static_cast<double>(band);
      const double hi = diag + static_cast<double>(band);
      j_lo = lo < 1.0 ? 1 : static_cast<size_t>(lo);
      j_hi = hi > static_cast<double>(m) ? m : static_cast<size_t>(hi);
      if (j_lo > m) break;
    }
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = std::fabs(a[i - 1] - b[j - 1]);
      const double best =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      if (best < kInf) curr[j] = cost + best;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

size_t LcsLength(const std::vector<Symbol>& a, const std::vector<Symbol>& b) {
  if (a.empty() || b.empty()) return 0;
  // One-row DP.
  std::vector<size_t> row(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = 0;  // row[j-1] from the previous iteration of i.
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t saved = row[j];
      if (a[i - 1] == b[j - 1]) {
        row[j] = diag + 1;
      } else {
        row[j] = std::max(row[j], row[j - 1]);
      }
      diag = saved;
    }
  }
  return row[b.size()];
}

double LcsSimilarity(const std::vector<Symbol>& a,
                     const std::vector<Symbol>& b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return static_cast<double>(LcsLength(a, b)) / static_cast<double>(longest);
}

StatusOr<double> MatchFraction(const std::vector<Symbol>& a,
                               const std::vector<Symbol>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("size mismatch in match fraction");
  }
  if (a.empty()) return 1.0;
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++matches;
  }
  return static_cast<double>(matches) / static_cast<double>(a.size());
}

StatusOr<size_t> HammingDistance(const std::vector<Symbol>& a,
                                 const std::vector<Symbol>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("size mismatch in Hamming distance");
  }
  size_t mismatches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++mismatches;
  }
  return mismatches;
}

}  // namespace hod::ts
