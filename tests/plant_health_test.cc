#include "core/plant_health.h"

#include <gtest/gtest.h>

#include "sim/plant.h"

namespace hod::core {
namespace {

sim::SimulatedPlant BuildPlant(double process_rate, double glitch_rate,
                               size_t rogue, uint64_t seed) {
  sim::PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 3;
  options.jobs_per_machine = 16;
  options.seed = seed;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = process_rate;
  scenario.glitch_rate = glitch_rate;
  scenario.rogue_machines = rogue;
  return sim::BuildPlant(options, scenario).value();
}

TEST(PlantHealth, ReportCoversEveryMachine) {
  const auto plant = BuildPlant(0.2, 0.1, 1, 81);
  auto report = SummarizePlantHealth(
      plant.production, hierarchy::DefaultPrinterCaqSpecification());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->machines.size(), 3u);
  for (const MachineHealth& health : report->machines) {
    EXPECT_FALSE(health.machine_id.empty());
    EXPECT_GE(health.production_score, 0.0);
    EXPECT_LE(health.production_score, 1.0);
    EXPECT_GE(health.maintenance_urgency, 0.0);
    EXPECT_LE(health.maintenance_urgency, 1.0);
  }
  EXPECT_GT(report->total_findings, 0u);
}

TEST(PlantHealth, RogueMachineDominatesEveryColumn) {
  const auto plant = BuildPlant(0.05, 0.05, 1, 82);
  auto report = SummarizePlantHealth(
                    plant.production,
                    hierarchy::DefaultPrinterCaqSpecification())
                    .value();
  const std::string rogue = plant.truth.machine_labels.begin()->first;
  const MachineHealth* rogue_health = nullptr;
  double best_other_score = 0.0;
  double worst_other_cpk = 1e9;
  for (const MachineHealth& health : report.machines) {
    if (health.machine_id == rogue) {
      rogue_health = &health;
    } else {
      best_other_score = std::max(best_other_score, health.production_score);
      worst_other_cpk = std::min(worst_other_cpk, health.min_cpk);
    }
  }
  ASSERT_NE(rogue_health, nullptr);
  EXPECT_GT(rogue_health->production_score, best_other_score);
  EXPECT_LT(rogue_health->min_cpk, worst_other_cpk);
}

TEST(PlantHealth, HealthyPlantIsQuiet) {
  sim::PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 2;
  options.jobs_per_machine = 10;
  options.seed = 83;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.0;
  scenario.glitch_rate = 0.0;
  scenario.rogue_machines = 0;
  scenario.bad_batch_lines = 0;
  const auto plant = sim::BuildPlant(options, scenario).value();
  auto report = SummarizePlantHealth(
                    plant.production,
                    hierarchy::DefaultPrinterCaqSpecification())
                    .value();
  for (const MachineHealth& health : report.machines) {
    EXPECT_EQ(health.critical_episodes, 0u) << health.machine_id;
    EXPECT_LT(health.maintenance_urgency, 0.3) << health.machine_id;
    EXPECT_GT(health.min_cpk, 1.0) << health.machine_id;
  }
  EXPECT_TRUE(report.line_shifts.empty());
}

TEST(PlantHealth, BadBatchSurfacesAsLineShift) {
  sim::PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 2;
  options.jobs_per_machine = 32;
  options.seed = 84;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.0;
  scenario.glitch_rate = 0.0;
  scenario.rogue_machines = 0;
  scenario.bad_batch_lines = 1;
  scenario.bad_batch_jobs = 8;
  const auto plant = sim::BuildPlant(options, scenario).value();
  PlantHealthOptions health_options;
  health_options.shifts.min_persistence = 4;
  health_options.shifts.cusum_threshold = 6.0;
  auto report = SummarizePlantHealth(
                    plant.production,
                    hierarchy::DefaultPrinterCaqSpecification(),
                    health_options)
                    .value();
  bool powder_shift_found = false;
  for (const LineShift& shift : report.line_shifts) {
    if (shift.feature.find("powder_quality") != std::string::npos) {
      powder_shift_found = true;
      EXPECT_EQ(shift.line_id, "line1");
    }
  }
  EXPECT_TRUE(powder_shift_found)
      << "bad-batch regime must surface as a powder-quality line shift";
}

TEST(PlantHealth, InvalidProductionRejected) {
  hierarchy::Production broken;
  hierarchy::ProductionLine line;
  line.id = "";  // invalid
  broken.lines.push_back(line);
  EXPECT_FALSE(SummarizePlantHealth(
                   broken, hierarchy::DefaultPrinterCaqSpecification())
                   .ok());
}

}  // namespace
}  // namespace hod::core
