#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace hod::util {

size_t ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max<size_t>(2, hw);
}

ThreadPool::ThreadPool(ThreadPoolOptions options) {
  const size_t workers =
      options.num_threads == 0 ? DefaultThreads() : options.num_threads;
  const size_t service = std::max<size_t>(1, options.service_threads);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(worker_lane_); });
  }
  service_workers_.reserve(service);
  for (size_t i = 0; i < service; ++i) {
    service_workers_.emplace_back([this] { WorkerLoop(service_lane_); });
  }
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::SubmitTo(Lane& lane, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(lane.mu);
    if (shutdown_.load(std::memory_order_acquire)) return false;
    lane.tasks.push_back(std::move(fn));
  }
  lane.cv.notify_one();
  return true;
}

bool ThreadPool::Submit(std::function<void()> fn) {
  return SubmitTo(worker_lane_, std::move(fn));
}

bool ThreadPool::SubmitService(std::function<void()> fn) {
  return SubmitTo(service_lane_, std::move(fn));
}

void ThreadPool::WorkerLoop(Lane& lane) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(lane.mu);
      lane.cv.wait(lock, [&] {
        return !lane.tasks.empty() ||
               shutdown_.load(std::memory_order_acquire);
      });
      // Shutdown drains: queued tasks still run (an engine quiescing its
      // pooled drains depends on them), then the thread exits.
      if (lane.tasks.empty()) return;
      task = std::move(lane.tasks.front());
      lane.tasks.pop_front();
    }
    task();
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool::TimerId ThreadPool::ScheduleEvery(
    std::chrono::milliseconds initial_delay, std::chrono::milliseconds period,
    std::function<void()> fn) {
  if (period.count() <= 0) period = std::chrono::milliseconds(1);
  std::lock_guard<std::mutex> lock(timers_mu_);
  if (shutdown_.load(std::memory_order_acquire)) return 0;
  const TimerId id = next_timer_id_++;
  Timer& timer = timers_[id];
  timer.next = std::chrono::steady_clock::now() + initial_delay;
  timer.period = period;
  timer.fn = std::move(fn);
  timers_cv_.notify_all();
  return id;
}

void ThreadPool::Cancel(TimerId id) {
  std::unique_lock<std::mutex> lock(timers_mu_);
  auto it = timers_.find(id);
  if (it == timers_.end()) return;
  it->second.cancelled = true;
  // Join semantics: wait out an in-flight callback so the caller can free
  // whatever the callback captures.
  timers_cv_.wait(lock, [&] { return !it->second.running; });
  timers_.erase(it);
  timers_cv_.notify_all();
}

void ThreadPool::TimerLoop() {
  std::unique_lock<std::mutex> lock(timers_mu_);
  while (!shutdown_.load(std::memory_order_acquire)) {
    // Earliest non-cancelled deadline, or park until something changes.
    auto next_it = timers_.end();
    for (auto it = timers_.begin(); it != timers_.end(); ++it) {
      if (it->second.cancelled) continue;
      if (next_it == timers_.end() || it->second.next < next_it->second.next) {
        next_it = it;
      }
    }
    if (next_it == timers_.end()) {
      timers_cv_.wait(lock);
      continue;
    }
    const TimerId id = next_it->first;
    const auto deadline = next_it->second.next;
    if (timers_cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
      continue;  // new timer, cancel, or shutdown — re-evaluate
    }
    auto it = timers_.find(id);
    if (it == timers_.end() || it->second.cancelled) continue;
    if (shutdown_.load(std::memory_order_acquire)) break;
    it->second.running = true;
    std::function<void()> fn = it->second.fn;  // copy: map may rehash
    lock.unlock();
    fn();  // inline on the timer thread: all periodic work is serialized
    lock.lock();
    it = timers_.find(id);
    if (it != timers_.end()) {
      it->second.running = false;
      const auto now = std::chrono::steady_clock::now();
      it->second.next += it->second.period;
      if (it->second.next <= now) it->second.next = now + it->second.period;
    }
    timers_cv_.notify_all();  // wake any Cancel waiting on `running`
  }
}

void ThreadPool::Shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(timers_mu_);
  }
  timers_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
  // Empty lock before each notify: a worker that evaluated its predicate
  // just before the shutdown store must be parked (lock released) before
  // the notify fires, or the wakeup is lost and the join below hangs.
  {
    std::lock_guard<std::mutex> lock(worker_lane_.mu);
  }
  worker_lane_.cv.notify_all();
  {
    std::lock_guard<std::mutex> lock(service_lane_.mu);
  }
  service_lane_.cv.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  for (std::thread& worker : service_workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace hod::util
