#include "timeseries/discrete_sequence.h"

#include <gtest/gtest.h>

namespace hod::ts {
namespace {

TEST(Vocabulary, InternAssignsDenseIds) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.Intern("IDLE"), 0);
  EXPECT_EQ(vocab.Intern("RUN"), 1);
  EXPECT_EQ(vocab.Intern("IDLE"), 0);  // idempotent
  EXPECT_EQ(vocab.size(), 2u);
}

TEST(Vocabulary, LookupAndLabelOf) {
  Vocabulary vocab;
  vocab.Intern("A");
  vocab.Intern("B");
  EXPECT_EQ(vocab.Lookup("B").value(), 1);
  EXPECT_FALSE(vocab.Lookup("C").ok());
  EXPECT_EQ(vocab.LabelOf(0).value(), "A");
  EXPECT_FALSE(vocab.LabelOf(2).ok());
  EXPECT_FALSE(vocab.LabelOf(-1).ok());
}

TEST(DiscreteSequence, BasicOps) {
  DiscreteSequence seq("events", 4, {0, 1, 2, 3});
  EXPECT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[2], 2);
  seq.Append(1);
  EXPECT_EQ(seq.size(), 5u);
  EXPECT_TRUE(seq.Validate().ok());
}

TEST(DiscreteSequence, MutableSymbol) {
  DiscreteSequence seq("x", 3, {0, 1});
  seq.mutable_symbol(0) = 2;
  EXPECT_EQ(seq[0], 2);
}

TEST(DiscreteSequence, ValidateRejectsOutOfAlphabet) {
  DiscreteSequence seq("x", 2, {0, 1, 2});
  EXPECT_FALSE(seq.Validate().ok());
  DiscreteSequence neg("x", 2, {0, -1});
  EXPECT_FALSE(neg.Validate().ok());
  DiscreteSequence bad_alpha("x", 0, {});
  EXPECT_FALSE(bad_alpha.Validate().ok());
}

TEST(DiscreteSequence, SliceRanges) {
  DiscreteSequence seq("x", 5, {0, 1, 2, 3, 4});
  auto slice = seq.Slice(1, 4);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->symbols(), (std::vector<Symbol>{1, 2, 3}));
  EXPECT_FALSE(seq.Slice(4, 2).ok());
  EXPECT_FALSE(seq.Slice(0, 6).ok());
}

TEST(SymbolWindows, ProducesAllContiguousWindows) {
  const std::vector<Symbol> symbols = {0, 1, 2, 3};
  const auto windows = SymbolWindows(symbols, 2);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0], (std::vector<Symbol>{0, 1}));
  EXPECT_EQ(windows[2], (std::vector<Symbol>{2, 3}));
}

TEST(SymbolWindows, EdgeCases) {
  const std::vector<Symbol> symbols = {0, 1, 2};
  EXPECT_TRUE(SymbolWindows(symbols, 0).empty());
  EXPECT_TRUE(SymbolWindows(symbols, 4).empty());
  EXPECT_EQ(SymbolWindows(symbols, 3).size(), 1u);
}

}  // namespace
}  // namespace hod::ts
