#include "fleet/stats.h"

#include <sstream>

namespace hod::fleet {

std::string FleetStatsSnapshot::ToString() const {
  std::ostringstream out;
  out << "fleet: plants=" << plants << " removed=" << removed_plants
      << " ingested=" << aggregate.ingested
      << " scored=" << aggregate.scored
      << " dropped=" << aggregate.dropped
      << " rejected=" << aggregate.rejected_total()
      << " quarantined_samples=" << aggregate.quarantined_samples
      << " alarms_raised=" << aggregate.alarms_raised
      << " sensor_faults=" << aggregate.sensor_faults
      << " checkpoints=" << aggregate.checkpoints_written << "\n";
  for (const PlantStats& plant : per_plant) {
    out << "  [" << plant.plant_id << " slot=" << plant.placement.slot
        << "] ingested=" << plant.stats.ingested
        << " scored=" << plant.stats.scored
        << " alarms=" << plant.stats.alarms_raised
        << " faults=" << plant.stats.sensor_faults
        << " checkpoints=" << plant.stats.checkpoints_written << "\n";
  }
  return out.str();
}

}  // namespace hod::fleet
