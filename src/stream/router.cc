#include "stream/router.h"

#include <algorithm>
#include <cmath>

namespace hod::stream {

uint64_t StableHash64(std::string_view bytes) {
  uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

IngestRouter::IngestRouter(size_t num_shards, double out_of_order_tolerance,
                           StreamStats* stats)
    : num_shards_(num_shards == 0 ? 1 : num_shards),
      out_of_order_tolerance_(out_of_order_tolerance < 0.0
                                  ? 0.0
                                  : out_of_order_tolerance),
      stats_(stats) {}

Status IngestRouter::AddSensor(const std::string& sensor_id,
                               hierarchy::ProductionLevel level,
                               std::optional<BackpressurePolicy> policy) {
  if (sensor_id.empty()) {
    return Status::InvalidArgument("empty sensor id");
  }
  auto entry = std::make_unique<SensorEntry>();
  entry->level = level;
  entry->shard = static_cast<size_t>(StableHash64(sensor_id) % num_shards_);
  entry->policy = policy;
  auto [it, inserted] = sensors_.emplace(sensor_id, std::move(entry));
  if (!inserted) {
    return Status::InvalidArgument("sensor already registered: " + sensor_id);
  }
  return Status::Ok();
}

StatusOr<RouteTarget> IngestRouter::Route(const SensorSample& sample) {
  if (!std::isfinite(sample.value) || !std::isfinite(sample.ts)) {
    if (stats_ != nullptr) {
      stats_->RecordRejectedNonFinite();
      stats_->RecordLevelRejected(sample.level);
    }
    return Status::InvalidArgument("non-finite sample for sensor " +
                                   sample.sensor_id);
  }
  auto it = sensors_.find(sample.sensor_id);
  if (it == sensors_.end()) {
    if (stats_ != nullptr) {
      stats_->RecordRejectedUnknownSensor();
      stats_->RecordLevelRejected(sample.level);
    }
    return Status::NotFound("unknown sensor: " + sample.sensor_id);
  }
  SensorEntry& entry = *it->second;
  if (entry.level != sample.level) {
    if (stats_ != nullptr) {
      stats_->RecordRejectedLevelMismatch();
      stats_->RecordLevelRejected(entry.level);
    }
    return Status::InvalidArgument("sensor " + sample.sensor_id +
                                   " registered at a different level");
  }
  // CAS-max: accept a sample whose timestamp is no more than the tolerance
  // behind the furthest accepted one, and advance the frontier otherwise.
  ts::TimePoint seen = entry.last_ts.load(std::memory_order_relaxed);
  while (true) {
    if (sample.ts + out_of_order_tolerance_ < seen) {
      if (stats_ != nullptr) {
        stats_->RecordRejectedOutOfOrder();
        stats_->RecordLevelRejected(entry.level);
      }
      return Status::OutOfRange("out-of-order sample for sensor " +
                                sample.sensor_id);
    }
    if (sample.ts <= seen) break;  // within tolerance, frontier unchanged
    if (entry.last_ts.compare_exchange_weak(seen, sample.ts,
                                            std::memory_order_relaxed)) {
      break;
    }
  }
  if (stats_ != nullptr) stats_->RecordIngested();
  return RouteTarget{entry.shard, entry.policy, entry.lane};
}

std::vector<std::string> IngestRouter::SensorsForShard(size_t shard) const {
  std::vector<std::string> ids;
  for (const auto& [id, entry] : sensors_) {
    if (entry->shard == shard) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<RegisteredSensor> IngestRouter::Sensors() const {
  std::vector<RegisteredSensor> sensors;
  sensors.reserve(sensors_.size());
  for (const auto& [id, entry] : sensors_) {
    RegisteredSensor sensor;
    sensor.sensor_id = id;
    sensor.level = entry->level;
    sensor.policy = entry->policy;
    sensor.frontier = entry->last_ts.load(std::memory_order_relaxed);
    sensors.push_back(std::move(sensor));
  }
  std::sort(sensors.begin(), sensors.end(),
            [](const RegisteredSensor& a, const RegisteredSensor& b) {
              return a.sensor_id < b.sensor_id;
            });
  return sensors;
}

StatusOr<ts::TimePoint> IngestRouter::Frontier(
    const std::string& sensor_id) const {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("unknown sensor: " + sensor_id);
  }
  return it->second->last_ts.load(std::memory_order_relaxed);
}

Status IngestRouter::SetFrontier(const std::string& sensor_id,
                                 ts::TimePoint frontier) {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("unknown sensor: " + sensor_id);
  }
  it->second->last_ts.store(frontier, std::memory_order_relaxed);
  return Status::Ok();
}

Status IngestRouter::SetLane(const std::string& sensor_id, uint32_t lane) {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) {
    return Status::NotFound("unknown sensor: " + sensor_id);
  }
  it->second->lane = lane;
  return Status::Ok();
}

}  // namespace hod::stream
