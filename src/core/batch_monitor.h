#ifndef HOD_CORE_BATCH_MONITOR_H_
#define HOD_CORE_BATCH_MONITOR_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/monitor.h"
#include "util/statusor.h"

namespace hod::core {

/// Structure-of-arrays bank of per-sensor streaming monitors — the
/// micro-batched twin of core::OnlineMonitor for the shard scoring hot
/// path. One bank holds every monitor of one shard: coefficients, recent
/// windows, residual scales, streak counters, and alarm flags live in
/// parallel arrays indexed by a dense lane id, so a micro-batch of samples
/// is scored with vectorized rolling-stat updates (util/simd.h) instead of
/// a string-keyed map lookup, a deque shuffle, and scalar math per sample.
///
/// Parity contract: every lane applies the exact operation sequence of
/// OnlineMonitor::Push — per-lane IEEE arithmetic in the same order, no
/// FMA contraction — so scores, alarm transitions, counters, and saved
/// state are bit-identical to a per-sample OnlineMonitor fed the same
/// values (tests/batch_monitor_test.cc pins this). Checkpoints travel in
/// the unchanged OnlineMonitorState format.
///
/// All monitors in a bank share one OnlineMonitorOptions (true of every
/// shard today). Not thread-safe: a bank belongs to exactly one shard
/// worker, like the map it replaces.
class BatchMonitorBank {
 public:
  static constexpr size_t kNotFound = static_cast<size_t>(-1);

  explicit BatchMonitorBank(OnlineMonitorOptions options = {});

  /// Registers a sensor and returns its dense lane index. Errors on
  /// duplicates.
  StatusOr<size_t> AddSensor(const std::string& sensor_id);

  /// Lane index of a sensor, or kNotFound.
  size_t IndexOf(const std::string& sensor_id) const;

  size_t size() const { return sigma_.size(); }
  const OnlineMonitorOptions& options() const { return options_; }

  /// Scores one sample on one lane — op-for-op OnlineMonitor::Push.
  /// Errors only on non-finite input or an out-of-range lane.
  StatusOr<MonitorUpdate> Push(size_t lane, double sample);

  /// Scores a micro-batch. lanes/values/updates/scored are parallel arrays
  /// of length n; samples are applied in array order, so two samples for
  /// the same lane keep their relative order (state carries between them).
  /// scored[i] is 0 when values[i] was non-finite or lanes[i] out of range
  /// (that lane's state is untouched and updates[i] stays default).
  /// Internally the batch is cut into waves of distinct lanes and each
  /// wave's ready lanes run through the vectorized score kernel; results
  /// are bit-identical to n sequential Push calls.
  void PushBatch(const size_t* lanes, const double* values, size_t n,
                 MonitorUpdate* updates, unsigned char* scored);

  uint64_t samples_seen(size_t lane) const { return samples_seen_[lane]; }
  uint64_t alarms_raised(size_t lane) const { return alarms_raised_[lane]; }
  bool alarm(size_t lane) const { return alarm_[lane] != 0; }
  bool model_ready(size_t lane) const { return model_ready_[lane] != 0; }

  /// Checkpointing: the unchanged OnlineMonitorState wire format.
  OnlineMonitorState SaveState(size_t lane) const;
  /// Mirrors OnlineMonitor::RestoreState, including the residual-sigma
  /// floor (a checkpointed sigma below 1e-9 is floored exactly like
  /// Push/FitModel would, instead of amplifying every z-score after
  /// resume). Additionally rejects phi longer than ar_order — the SoA
  /// layout reserves ar_order coefficient slots per lane.
  Status RestoreState(size_t lane, const OnlineMonitorState& state);

  /// ---- Per-lane BaselineLifecycle (see core/baseline_lifecycle.h) -----
  /// Semantics are identical to OnlineMonitor's overrides, scoped to one
  /// lane: sibling lanes and the SIMD wave path are untouched (a seeded
  /// reset leaves the lane with phi_len = 0, which PushBatch already
  /// routes to the scalar path, so no wave bookkeeping changes). Out of
  /// range lanes are ignored (Reset/Freeze) or return false (Thaw).
  void ResetBaselineLane(size_t lane, BaselineActor actor,
                         const std::optional<BaselineSeed>& seed);
  void FreezeBaselineLane(size_t lane, BaselineActor actor);
  /// Returns true when a reset deferred during the freeze was applied.
  bool ThawBaselineLane(size_t lane, BaselineActor actor);
  bool baseline_frozen(size_t lane) const {
    return lane < size() && frozen_[lane] != 0;
  }
  uint64_t baseline_epoch(size_t lane) const {
    return lane < size() ? baseline_epoch_[lane] : 0;
  }

  /// Adapter giving one lane the virtual BaselineLifecycle interface
  /// (audit tooling / tests that speak only the contract). Borrows the
  /// bank; the lane must stay valid.
  class LaneLifecycle : public BaselineLifecycle {
   public:
    LaneLifecycle(BatchMonitorBank* bank, size_t lane)
        : bank_(bank), lane_(lane) {}
    void ResetBaseline(BaselineActor actor,
                       const std::optional<BaselineSeed>& seed) override {
      bank_->ResetBaselineLane(lane_, actor, seed);
    }
    void FreezeBaseline(BaselineActor actor) override {
      bank_->FreezeBaselineLane(lane_, actor);
    }
    bool ThawBaseline(BaselineActor actor) override {
      return bank_->ThawBaselineLane(lane_, actor);
    }
    bool baseline_frozen() const override {
      return bank_->baseline_frozen(lane_);
    }
    uint64_t baseline_epoch() const override {
      return bank_->baseline_epoch(lane_);
    }

   private:
    BatchMonitorBank* bank_;
    size_t lane_;
  };
  LaneLifecycle Lifecycle(size_t lane) { return LaneLifecycle(this, lane); }

 private:
  void ApplyResetLane(size_t lane, const std::optional<BaselineSeed>& seed);
  /// One-step AR prediction for a ready lane (same term order as
  /// OnlineMonitor::Predict).
  double Predict(size_t lane) const;
  /// Warmup-path push: buffer the sample and fit once full (same fitter
  /// and seeding as OnlineMonitor::FitModel).
  StatusOr<MonitorUpdate> PushWarmup(size_t lane, double sample);
  Status FitModel(size_t lane);
  /// Post-score scalar tail shared by Push and PushBatch: hysteresis,
  /// alarm bookkeeping, and the anomaly-corrected window update.
  void FinishUpdate(size_t lane, double sample, double pred, double score,
                    MonitorUpdate& update);
  /// Ring slot of the sample `k` steps behind the most recent one.
  size_t RingSlot(size_t lane, size_t k) const;

  OnlineMonitorOptions options_;
  size_t order_ = 0;
  /// 1 - scale_forgetting when adaptation is on, else 0 (frozen scale).
  double alpha_ = 0.0;

  std::unordered_map<std::string, size_t> index_;

  // Lane-major SoA state. phi_ and ring_ hold `order_` slots per lane
  // (phi zero-padded past phi_len_); ring_pos_ is the slot of the oldest
  // window sample (== the next write position).
  std::vector<double> phi_;
  std::vector<uint32_t> phi_len_;
  std::vector<double> intercept_;
  std::vector<double> sigma_;
  std::vector<double> ring_;
  std::vector<uint32_t> ring_pos_;
  std::vector<uint8_t> model_ready_;
  std::vector<uint8_t> alarm_;
  std::vector<uint64_t> above_streak_;
  std::vector<uint64_t> below_streak_;
  std::vector<uint64_t> samples_seen_;
  std::vector<uint64_t> alarms_raised_;
  std::vector<std::vector<double>> warmup_;  // cold path, per lane

  // Per-lane baseline-lifecycle state (cold: touched only on reset /
  // freeze / thaw / checkpoint, never in the scoring waves).
  std::vector<uint64_t> baseline_epoch_;
  std::vector<uint8_t> frozen_;
  std::vector<uint8_t> pending_reset_;  // 0 none, 1 unseeded, 2 seeded
  std::vector<double> pending_level_;
  std::vector<double> pending_sigma_;
  std::vector<uint64_t> pending_support_;

  // Wave scratch (sized to the largest batch seen; reused across calls).
  std::vector<uint64_t> wave_epoch_;  // per lane: epoch of last wave use
  uint64_t epoch_ = 0;
  std::vector<size_t> wave_rows_;   // batch positions of the vector wave
  std::vector<size_t> wave_lanes_;  // lane ids of the vector wave
  std::vector<double> lane_sample_;
  std::vector<double> lane_pred_;
  std::vector<double> lane_sigma_;
  std::vector<double> lane_score_;
  std::vector<double> lane_phi_k_;
  std::vector<double> lane_recent_k_;
};

}  // namespace hod::core

#endif  // HOD_CORE_BATCH_MONITOR_H_
