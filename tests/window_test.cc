#include "timeseries/window.h"

#include <gtest/gtest.h>

namespace hod::ts {
namespace {

TEST(Windows, SlidingBasics) {
  auto spans = SlidingWindows(10, 4, 2);
  ASSERT_TRUE(spans.ok());
  ASSERT_EQ(spans->size(), 4u);
  EXPECT_EQ((*spans)[0].begin, 0u);
  EXPECT_EQ((*spans)[0].end, 4u);
  EXPECT_EQ((*spans)[3].begin, 6u);
  EXPECT_EQ((*spans)[3].end, 10u);
}

TEST(Windows, SlidingRejectsBadParameters) {
  EXPECT_FALSE(SlidingWindows(10, 0, 1).ok());
  EXPECT_FALSE(SlidingWindows(10, 4, 0).ok());
  EXPECT_FALSE(SlidingWindows(3, 4, 1).ok());
}

TEST(Windows, TumblingDropsPartialTail) {
  auto spans = TumblingWindows(10, 3);
  ASSERT_TRUE(spans.ok());
  EXPECT_EQ(spans->size(), 3u);  // 9 samples covered, 1 dropped
}

TEST(Windows, SpanCenter) {
  WindowSpan span{4, 10};
  EXPECT_EQ(span.size(), 6u);
  EXPECT_EQ(span.center(), 7u);
}

TEST(WindowFeatures, ComputedOnSpan) {
  const std::vector<double> values = {0.0, 0.0, 1.0, 2.0, 3.0, 0.0};
  const WindowFeatures f = ComputeWindowFeatures(values, WindowSpan{2, 5});
  EXPECT_DOUBLE_EQ(f.mean, 2.0);
  EXPECT_DOUBLE_EQ(f.min, 1.0);
  EXPECT_DOUBLE_EQ(f.max, 3.0);
  EXPECT_NEAR(f.slope, 1.0, 1e-12);
  EXPECT_NEAR(f.energy, (1.0 + 4.0 + 9.0) / 3.0, 1e-12);
  EXPECT_EQ(f.ToVector().size(), WindowFeatures::kDimension);
}

TEST(WindowFeatures, AllWindows) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  auto spans = SlidingWindows(values.size(), 2, 1).value();
  const auto features = ComputeAllWindowFeatures(values, spans);
  ASSERT_EQ(features.size(), 3u);
  EXPECT_DOUBLE_EQ(features[1].mean, 2.5);
}

TEST(WindowScores, MaxOverCoveringWindows) {
  const std::vector<WindowSpan> spans = {{0, 3}, {2, 5}};
  const std::vector<double> window_scores = {0.2, 0.8};
  const auto points = WindowScoresToPointScores(6, spans, window_scores);
  ASSERT_EQ(points.size(), 6u);
  EXPECT_DOUBLE_EQ(points[0], 0.2);
  EXPECT_DOUBLE_EQ(points[2], 0.8);  // covered by both: max wins
  EXPECT_DOUBLE_EQ(points[4], 0.8);
  EXPECT_DOUBLE_EQ(points[5], 0.0);  // uncovered
}

TEST(WindowScores, MismatchedSizesHandled) {
  const std::vector<WindowSpan> spans = {{0, 2}, {2, 4}};
  const std::vector<double> scores = {0.5};  // fewer scores than spans
  const auto points = WindowScoresToPointScores(4, spans, scores);
  EXPECT_DOUBLE_EQ(points[0], 0.5);
  EXPECT_DOUBLE_EQ(points[3], 0.0);
}

}  // namespace
}  // namespace hod::ts
