#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace hod::core {

std::string_view AlertSeverityName(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kInfo:
      return "INFO";
    case AlertSeverity::kWarning:
      return "WARNING";
    case AlertSeverity::kCritical:
      return "CRITICAL";
  }
  return "?";
}

std::string_view FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kOutlier:
      return "outlier";
    case FindingKind::kSensorFault:
      return "sensor-fault";
    case FindingKind::kPeerDrift:
      return "peer-drift";
    case FindingKind::kGroupOutage:
      return "group-outage";
    case FindingKind::kConceptShift:
      return "concept-shift";
  }
  return "?";
}

AlertSeverity ClassifyAlert(const OutlierFinding& finding) {
  if (finding.kind == FindingKind::kGroupOutage) {
    // A whole line going silent at once is an infrastructure incident —
    // operators must see it above any single-sensor episode.
    return AlertSeverity::kCritical;
  }
  if (finding.kind == FindingKind::kConceptShift) {
    // A confirmed setpoint change: the process moved and the channel was
    // re-baselined. Operators should know, but nothing is broken.
    return AlertSeverity::kWarning;
  }
  if (finding.kind == FindingKind::kSensorFault ||
      finding.kind == FindingKind::kPeerDrift ||
      finding.measurement_error_warning) {
    // A suspected sensor fault deserves attention but must not trigger a
    // production stop.
    return AlertSeverity::kWarning;
  }
  const bool supported =
      finding.corresponding_sensors == 0 || finding.support >= 0.5;
  if (finding.global_score >= 3 && supported &&
      finding.outlierness >= 0.5) {
    return AlertSeverity::kCritical;
  }
  if (finding.global_score >= 2 || finding.outlierness >= 0.7) {
    return AlertSeverity::kWarning;
  }
  return AlertSeverity::kInfo;
}

double MaintenanceUrgency(const std::vector<OutlierFinding>& findings,
                          size_t recent_jobs) {
  if (findings.empty()) return 0.0;
  double strongest = 0.0;
  size_t confirmed_findings = 0;
  for (const OutlierFinding& finding : findings) {
    if (finding.measurement_error_warning ||
        finding.kind != FindingKind::kOutlier) {
      // Sensor faults, peer drifts, and group outages are instrumentation
      // problems — fix the sensor or the network, not the machine.
      continue;
    }
    ++confirmed_findings;
    // Outlierness weighted by upward propagation; even an unconfirmed
    // phase-level deviation keeps half weight — wear shows up in the
    // signals long before it degrades CAQ.
    const double weight =
        std::max(0.5, static_cast<double>(finding.global_score) /
                          static_cast<double>(hierarchy::kNumLevels));
    strongest = std::max(strongest, finding.outlierness * weight);
  }
  const double breadth =
      recent_jobs > 0
          ? std::min(1.0, static_cast<double>(confirmed_findings) /
                              static_cast<double>(recent_jobs))
          : 0.0;
  // Urgency grows with both the strongest confirmed deviation and how
  // persistent the degradation is across recent jobs.
  return std::min(1.0, 0.7 * strongest + 0.3 * breadth);
}

}  // namespace hod::core
