// Production-hierarchy tests: levels, sensor registry, production model.

#include <gtest/gtest.h>

#include "hierarchy/level.h"
#include "hierarchy/production.h"
#include "hierarchy/sensor_registry.h"

namespace hod::hierarchy {
namespace {

TEST(Level, NamesMatchFigure2) {
  EXPECT_EQ(LevelName(ProductionLevel::kPhase), "Phase Level");
  EXPECT_EQ(LevelName(ProductionLevel::kJob), "Job Level");
  EXPECT_EQ(LevelName(ProductionLevel::kEnvironment), "Environment Level");
  EXPECT_EQ(LevelName(ProductionLevel::kProductionLine),
            "Production Line Level");
  EXPECT_EQ(LevelName(ProductionLevel::kProduction), "Production Level");
}

TEST(Level, ValuesMatchCircledNumbers) {
  EXPECT_EQ(LevelValue(ProductionLevel::kPhase), 1);
  EXPECT_EQ(LevelValue(ProductionLevel::kProduction), 5);
  EXPECT_EQ(kNumLevels, 5);
}

TEST(Level, AboveBelowNavigation) {
  EXPECT_EQ(LevelAbove(ProductionLevel::kPhase).value(),
            ProductionLevel::kJob);
  EXPECT_EQ(LevelAbove(ProductionLevel::kProductionLine).value(),
            ProductionLevel::kProduction);
  EXPECT_FALSE(LevelAbove(ProductionLevel::kProduction).ok());
  EXPECT_EQ(LevelBelow(ProductionLevel::kJob).value(),
            ProductionLevel::kPhase);
  EXPECT_FALSE(LevelBelow(ProductionLevel::kPhase).ok());
}

TEST(Level, FromValueBounds) {
  EXPECT_EQ(LevelFromValue(3).value(), ProductionLevel::kEnvironment);
  EXPECT_FALSE(LevelFromValue(0).ok());
  EXPECT_FALSE(LevelFromValue(6).ok());
}

TEST(SensorRegistry, RegisterAndLookup) {
  SensorRegistry registry;
  ASSERT_TRUE(registry
                  .Register({"m1.bed_a", "Bed A", "degC", "m1", "m1.bed"})
                  .ok());
  EXPECT_TRUE(registry.Contains("m1.bed_a"));
  EXPECT_FALSE(registry.Contains("m1.bed_b"));
  auto info = registry.Get("m1.bed_a");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->unit, "degC");
  EXPECT_FALSE(registry.Get("nope").ok());
  EXPECT_EQ(registry.size(), 1u);
}

TEST(SensorRegistry, RejectsDuplicatesAndEmptyIds) {
  SensorRegistry registry;
  ASSERT_TRUE(registry.Register({"s1", "", "", "", ""}).ok());
  EXPECT_FALSE(registry.Register({"s1", "", "", "", ""}).ok());
  EXPECT_FALSE(registry.Register({"", "", "", "", ""}).ok());
}

TEST(SensorRegistry, CorrespondingSensorsExcludeSelf) {
  SensorRegistry registry;
  ASSERT_TRUE(registry.Register({"a", "", "", "m", "grp"}).ok());
  ASSERT_TRUE(registry.Register({"b", "", "", "m", "grp"}).ok());
  ASSERT_TRUE(registry.Register({"c", "", "", "m", "grp"}).ok());
  ASSERT_TRUE(registry.Register({"lonely", "", "", "m", ""}).ok());
  auto group = registry.CorrespondingSensors("a").value();
  EXPECT_EQ(group, (std::vector<std::string>{"b", "c"}));
  EXPECT_TRUE(registry.CorrespondingSensors("lonely").value().empty());
  EXPECT_FALSE(registry.CorrespondingSensors("missing").ok());
}

TEST(SensorRegistry, CorrespondingSensorsSingletonGroupHasNoPeers) {
  SensorRegistry registry;
  // A *named* group with a single member: the redundancy annotation exists
  // but there is nobody to corroborate with — empty, not an error, and
  // distinct from the no-group case only in the metadata.
  ASSERT_TRUE(registry.Register({"solo", "", "", "m", "gyro"}).ok());
  ASSERT_TRUE(registry.Register({"plain", "", "", "m", ""}).ok());
  EXPECT_TRUE(registry.CorrespondingSensors("solo").value().empty());
  EXPECT_TRUE(registry.CorrespondingSensors("plain").value().empty());
  EXPECT_EQ(registry.Get("solo")->redundancy_group, "gyro");
}

TEST(SensorRegistry, CorrespondingSensorsUnknownIdIsTypedNotEmpty) {
  SensorRegistry registry;
  ASSERT_TRUE(registry.Register({"a", "", "", "m", "grp"}).ok());
  auto missing = registry.CorrespondingSensors("ghost");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound)
      << "unknown must be distinguishable from known-but-peerless";
}

TEST(SensorRegistry, CorrespondingSensorsMembershipIsSymmetric) {
  SensorRegistry registry;
  ASSERT_TRUE(registry.Register({"a", "", "", "m1", "bed"}).ok());
  ASSERT_TRUE(registry.Register({"b", "", "", "m1", "bed"}).ok());
  ASSERT_TRUE(registry.Register({"c", "", "", "m2", "bed"}).ok());
  for (const char* id : {"a", "b", "c"}) {
    auto peers = registry.CorrespondingSensors(id).value();
    EXPECT_EQ(peers.size(), 2u) << id;
    for (const std::string& peer : peers) {
      auto back = registry.CorrespondingSensors(peer).value();
      EXPECT_TRUE(std::find(back.begin(), back.end(), id) != back.end())
          << peer << " does not list " << id;
    }
  }
}

Production MakeTinyProduction() {
  Production production;
  (void)production.sensors.Register({"m1.t", "", "degC", "m1", ""});
  ProductionLine line;
  line.id = "l1";
  Machine machine;
  machine.id = "m1";
  machine.configuration = ts::FeatureVector({"p"}, {1.0});
  Job job;
  job.id = "j1";
  job.machine_id = "m1";
  job.start_time = 0.0;
  job.end_time = 100.0;
  job.setup = ts::FeatureVector({"s"}, {2.0});
  job.caq = ts::FeatureVector({"q"}, {3.0});
  Phase phase;
  phase.name = "printing";
  phase.start_time = 0.0;
  phase.end_time = 10.0;
  phase.sensor_series.emplace(
      "m1.t", ts::TimeSeries("m1.t", 0.0, 1.0, {1.0, 2.0, 3.0}));
  phase.events = ts::DiscreteSequence("e", 2, {0, 1, 0});
  job.phases.push_back(std::move(phase));
  machine.jobs.push_back(std::move(job));
  line.machines.push_back(std::move(machine));
  production.lines.push_back(std::move(line));
  return production;
}

TEST(Production, FindHelpers) {
  Production production = MakeTinyProduction();
  EXPECT_TRUE(FindLine(production, "l1").ok());
  EXPECT_FALSE(FindLine(production, "l2").ok());
  EXPECT_TRUE(FindMachine(production, "m1").ok());
  EXPECT_FALSE(FindMachine(production, "m2").ok());
  EXPECT_TRUE(FindJob(production, "j1").ok());
  EXPECT_FALSE(FindJob(production, "j2").ok());
  EXPECT_EQ(CountJobs(production), 1u);
}

TEST(Production, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(ValidateProduction(MakeTinyProduction()).ok());
}

TEST(Production, ValidateCatchesUnregisteredSensor) {
  Production production = MakeTinyProduction();
  production.lines[0].machines[0].jobs[0].phases[0].sensor_series.emplace(
      "ghost", ts::TimeSeries("ghost", 0.0, 1.0, {1.0}));
  EXPECT_FALSE(ValidateProduction(production).ok());
}

TEST(Production, ValidateCatchesTimeInversion) {
  Production production = MakeTinyProduction();
  production.lines[0].machines[0].jobs[0].end_time = -5.0;
  EXPECT_FALSE(ValidateProduction(production).ok());
}

TEST(Production, ValidateCatchesMachineIdMismatch) {
  Production production = MakeTinyProduction();
  production.lines[0].machines[0].jobs[0].machine_id = "other";
  EXPECT_FALSE(ValidateProduction(production).ok());
}

TEST(Production, ValidateCatchesBadEventSequence) {
  Production production = MakeTinyProduction();
  production.lines[0].machines[0].jobs[0].phases[0].events =
      ts::DiscreteSequence("e", 2, {0, 5});
  EXPECT_FALSE(ValidateProduction(production).ok());
}

}  // namespace
}  // namespace hod::hierarchy
