#ifndef HOD_DETECT_ENSEMBLE_H_
#define HOD_DETECT_ENSEMBLE_H_

#include <memory>
#include <string>
#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Outlier vectors and score combination — the paper's Section 5 notes
/// that "outlierness scores can be combined to outlier vectors" [8],
/// "especially helpful in the context of online outlier detection".
///
/// An OutlierVector holds, per scored item, one outlierness value per
/// member detector; the ensemble reduces it to a single consensus score.

/// How member scores are combined per item.
enum class Combination {
  /// Arithmetic mean — smooth consensus, robust to one noisy member.
  kMean,
  /// Maximum — union of what any member sees (highest recall).
  kMax,
  /// Mean of per-member ranks (normalized) — immune to members with
  /// mis-calibrated score scales.
  kRankMean,
};

std::string_view CombinationName(Combination combination);

/// Per-item score vectors from the ensemble members (members x items).
struct OutlierVectorMatrix {
  std::vector<std::string> member_names;
  std::vector<std::vector<double>> scores;  // [member][item]

  size_t num_items() const {
    return scores.empty() ? 0 : scores[0].size();
  }
};

/// Reduces an OutlierVectorMatrix to one consensus score per item.
std::vector<double> Combine(const OutlierVectorMatrix& matrix,
                            Combination combination);

/// An ensemble of series detectors that trains every member and scores by
/// consensus. Members are added before Train; the ensemble refuses
/// supervised members (the combination semantics assume unsupervised
/// scores).
class SeriesEnsemble : public SeriesDetector {
 public:
  explicit SeriesEnsemble(Combination combination = Combination::kMean);

  /// Adds a member (must be unsupervised; InvalidArgument otherwise).
  Status AddMember(std::unique_ptr<SeriesDetector> member);

  size_t num_members() const { return members_.size(); }

  std::string name() const override;

  Status Train(const std::vector<ts::TimeSeries>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::TimeSeries& series) const override;

  /// Full per-member score matrix for one series (the outlier vector).
  StatusOr<OutlierVectorMatrix> ScoreVector(
      const ts::TimeSeries& series) const;

 private:
  Combination combination_;
  std::vector<std::unique_ptr<SeriesDetector>> members_;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_ENSEMBLE_H_
