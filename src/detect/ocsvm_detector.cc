#include "detect/ocsvm_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "timeseries/stats.h"
#include "util/rng.h"

namespace hod::detect {

OcsvmDetector::OcsvmDetector(OcsvmOptions options) : options_(options) {}

double OcsvmDetector::NearestSq(const std::vector<double>& scaled) const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& center : centers_) {
    double d = 0.0;
    for (size_t k = 0; k < scaled.size(); ++k) {
      const double dev = scaled[k] - center[k];
      d += dev * dev;
    }
    best = std::min(best, d);
  }
  return best;
}

Status OcsvmDetector::Train(const std::vector<std::vector<double>>& data) {
  if (data.empty()) return Status::InvalidArgument("OCSVM on empty data");
  if (options_.nu <= 0.0 || options_.nu > 1.0) {
    return Status::InvalidArgument("nu must be in (0,1]");
  }
  if (options_.centers == 0) {
    return Status::InvalidArgument("centers must be > 0");
  }
  dim_ = data[0].size();
  HOD_ASSIGN_OR_RETURN(scaler_, ColumnScaler::Fit(data));
  std::vector<std::vector<double>> scaled = data;
  HOD_RETURN_IF_ERROR(scaler_.Apply(scaled));
  const size_t n = scaled.size();

  // Initialize centers from k-means; then refine centers and radius by
  // subgradient descent on the SVDD objective.
  HOD_ASSIGN_OR_RETURN(KMeansResult init,
                       KMeans(scaled, options_.centers, 20, options_.seed));
  centers_ = std::move(init.centroids);
  {
    std::vector<double> sq(n);
    for (size_t i = 0; i < n; ++i) {
      const double d = init.distances[i];
      sq[i] = d * d;
    }
    radius_sq_ = ts::Quantile(std::move(sq), 1.0 - options_.nu);
  }

  Rng rng(options_.seed ^ 0x5fd1);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const double inv_nu_n = 1.0 / (options_.nu * static_cast<double>(n));
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr = options_.learning_rate /
                      (1.0 + 0.2 * static_cast<double>(epoch));
    for (size_t idx : order) {
      const auto& x = scaled[idx];
      // Nearest center and violation check.
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < centers_.size(); ++c) {
        double d = 0.0;
        for (size_t k = 0; k < dim_; ++k) {
          const double dev = x[k] - centers_[c][k];
          d += dev * dev;
        }
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      const bool violated = best_d > radius_sq_;
      // Per-sample subgradient of J = R^2 + inv_nu_n * sum_i xi_i:
      //   dJ/dR^2   = 1/n - inv_nu_n * [violated]
      //   dJ/dc     = -2 * inv_nu_n * (x - c) * [violated]
      radius_sq_ -=
          lr * (1.0 / static_cast<double>(n) - (violated ? inv_nu_n : 0.0));
      radius_sq_ = std::max(radius_sq_, 1e-6);
      if (violated) {
        const double step = lr * 2.0 * inv_nu_n;
        for (size_t k = 0; k < dim_; ++k) {
          centers_[best][k] += step * (x[k] - centers_[best][k]);
        }
      }
    }
  }

  // Calibrate the radius at the (1-nu) quantile of final distances so the
  // advertised training-outlier fraction holds exactly.
  std::vector<double> final_sq(n);
  for (size_t i = 0; i < n; ++i) final_sq[i] = NearestSq(scaled[i]);
  radius_sq_ =
      std::max(ts::Quantile(std::move(final_sq), 1.0 - options_.nu), 1e-6);
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> OcsvmDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].size() != dim_) {
      return Status::InvalidArgument("dimension mismatch in OCSVM score");
    }
    std::vector<double> row = data[i];
    HOD_RETURN_IF_ERROR(scaler_.ApplyRow(row));
    const double overshoot = NearestSq(row) / radius_sq_ - 1.0;
    scores[i] = overshoot <= 0.0
                    ? 0.0
                    : overshoot / (overshoot + options_.margin_scale);
  }
  return scores;
}

}  // namespace hod::detect
