#include "detect/phased_kmeans.h"

#include <algorithm>
#include <cmath>

#include "timeseries/sax.h"
#include "timeseries/stats.h"

namespace hod::detect {

PhasedKMeansDetector::PhasedKMeansDetector(PhasedKMeansOptions options)
    : options_(options) {}

StatusOr<std::vector<double>> PhasedKMeansDetector::PhaseAlignedProfile(
    const ts::TimeSeries& series, size_t profile_length) {
  if (series.size() < profile_length) {
    return Status::InvalidArgument("series shorter than profile length");
  }
  // Rotate so the global minimum is at position 0 (canonical phase),
  // z-normalize, then PAA down to the profile length.
  const auto& values = series.values();
  const size_t min_pos = static_cast<size_t>(
      std::min_element(values.begin(), values.end()) - values.begin());
  std::vector<double> rotated(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    rotated[i] = values[(i + min_pos) % values.size()];
  }
  const double m = ts::Mean(rotated);
  const double s = ts::StdDev(rotated);
  for (double& v : rotated) v = s > 0.0 ? (v - m) / s : 0.0;
  return ts::Paa(rotated, profile_length);
}

Status PhasedKMeansDetector::Train(const std::vector<ts::TimeSeries>& normal) {
  if (options_.profile_length == 0 || options_.clusters == 0) {
    return Status::InvalidArgument("profile_length/clusters must be > 0");
  }
  std::vector<std::vector<double>> profiles;
  for (const auto& series : normal) {
    HOD_RETURN_IF_ERROR(series.Validate());
    auto profile = PhaseAlignedProfile(series, options_.profile_length);
    if (!profile.ok()) return profile.status();
    profiles.push_back(std::move(profile).value());
  }
  if (profiles.empty()) {
    return Status::InvalidArgument("no training series");
  }
  HOD_ASSIGN_OR_RETURN(
      KMeansResult result,
      KMeans(profiles, options_.clusters, options_.max_iters, options_.seed));
  centroids_ = std::move(result.centroids);
  baseline_distance_ = ts::Median(std::move(result.distances));
  if (baseline_distance_ <= 0.0) baseline_distance_ = 1e-3;
  trained_ = true;
  return Status::Ok();
}

StatusOr<double> PhasedKMeansDetector::ScoreSeries(
    const ts::TimeSeries& series) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  HOD_ASSIGN_OR_RETURN(
      std::vector<double> profile,
      PhaseAlignedProfile(series, options_.profile_length));
  HOD_ASSIGN_OR_RETURN(NearestCentroid nearest,
                       FindNearestCentroid(centroids_, profile));
  const double relative = nearest.distance / baseline_distance_;
  const double excess = relative - 1.0;
  if (excess <= 0.0) return 0.0;
  return excess / (excess + options_.distance_scale);
}

StatusOr<std::vector<double>> PhasedKMeansDetector::ScoreBatch(
    const std::vector<ts::TimeSeries>& batch) const {
  std::vector<double> scores;
  scores.reserve(batch.size());
  for (const auto& series : batch) {
    HOD_ASSIGN_OR_RETURN(double score, ScoreSeries(series));
    scores.push_back(score);
  }
  return scores;
}

}  // namespace hod::detect
