#include "hierarchy/level_data.h"

#include <algorithm>
#include <numeric>

#include "timeseries/stats.h"

namespace hod::hierarchy {

namespace {

/// Setup+CAQ feature vector of a job, with names. Schema is validated
/// against `expected_names` when non-empty.
Status AppendJobVector(const Job& job, std::vector<std::string>* names,
                       std::vector<std::vector<double>>* vectors) {
  std::vector<std::string> job_names;
  std::vector<double> values;
  for (size_t i = 0; i < job.setup.size(); ++i) {
    job_names.push_back("setup." + job.setup.names()[i]);
    values.push_back(job.setup.values()[i]);
  }
  for (size_t i = 0; i < job.caq.size(); ++i) {
    job_names.push_back("caq." + job.caq.names()[i]);
    values.push_back(job.caq.values()[i]);
  }
  if (names->empty()) {
    *names = std::move(job_names);
  } else if (*names != job_names) {
    return Status::InvalidArgument("job '" + job.id +
                                   "' has a different setup/CAQ schema");
  }
  vectors->push_back(std::move(values));
  return Status::Ok();
}

}  // namespace

StatusOr<JobMatrix> JobFeatureMatrix(const Machine& machine) {
  JobMatrix matrix;
  for (const Job& job : machine.jobs) {
    HOD_RETURN_IF_ERROR(
        AppendJobVector(job, &matrix.feature_names, &matrix.vectors));
    matrix.job_ids.push_back(job.id);
    matrix.times.push_back(job.start_time);
  }
  return matrix;
}

StatusOr<JobMatrix> JobFeatureMatrix(const ProductionLine& line) {
  // Gather (time, machine index, job index) and sort by time.
  struct Entry {
    ts::TimePoint time;
    const Job* job;
  };
  std::vector<Entry> entries;
  for (const Machine& machine : line.machines) {
    for (const Job& job : machine.jobs) {
      entries.push_back({job.start_time, &job});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.time < b.time; });
  JobMatrix matrix;
  for (const Entry& entry : entries) {
    HOD_RETURN_IF_ERROR(
        AppendJobVector(*entry.job, &matrix.feature_names, &matrix.vectors));
    matrix.job_ids.push_back(entry.job->id);
    matrix.times.push_back(entry.time);
  }
  return matrix;
}

StatusOr<std::vector<ts::TimeSeries>> LineJobSeries(
    const ProductionLine& line) {
  HOD_ASSIGN_OR_RETURN(JobMatrix matrix, JobFeatureMatrix(line));
  std::vector<ts::TimeSeries> series;
  if (matrix.vectors.empty()) return series;
  // Mean inter-job spacing as the nominal sampling interval.
  double interval = 1.0;
  if (matrix.times.size() > 1) {
    interval = (matrix.times.back() - matrix.times.front()) /
               static_cast<double>(matrix.times.size() - 1);
    if (interval <= 0.0) interval = 1.0;
  }
  for (size_t f = 0; f < matrix.feature_names.size(); ++f) {
    ts::TimeSeries s(line.id + "." + matrix.feature_names[f],
                     matrix.times.front(), interval);
    for (const auto& row : matrix.vectors) s.Append(row[f]);
    series.push_back(std::move(s));
  }
  return series;
}

StatusOr<MachineMatrix> MachineSummaryMatrix(const Production& production) {
  MachineMatrix matrix;
  for (const ProductionLine& line : production.lines) {
    for (const Machine& machine : line.machines) {
      if (machine.jobs.empty()) continue;
      // CAQ schema from the first job.
      const auto& caq_names = machine.jobs.front().caq.names();
      std::vector<std::string> names;
      std::vector<double> values;
      for (size_t f = 0; f < caq_names.size(); ++f) {
        std::vector<double> feature;
        feature.reserve(machine.jobs.size());
        for (const Job& job : machine.jobs) {
          if (f < job.caq.size()) feature.push_back(job.caq.values()[f]);
        }
        // Median/MAD, not mean/stddev: a short bad-batch window must not
        // make a healthy machine's summary look degraded at the
        // production level.
        names.push_back("caq." + caq_names[f] + ".median");
        values.push_back(ts::Median(feature));
        names.push_back("caq." + caq_names[f] + ".mad");
        values.push_back(ts::Mad(feature));
      }
      std::vector<double> durations;
      durations.reserve(machine.jobs.size());
      for (const Job& job : machine.jobs) {
        durations.push_back(job.end_time - job.start_time);
      }
      names.push_back("job.duration.median");
      values.push_back(ts::Median(durations));
      names.push_back("job.duration.mad");
      values.push_back(ts::Mad(durations));
      if (matrix.feature_names.empty()) {
        matrix.feature_names = std::move(names);
      } else if (matrix.feature_names != names) {
        return Status::InvalidArgument("machine '" + machine.id +
                                       "' has a different CAQ schema");
      }
      matrix.machine_ids.push_back(machine.id);
      matrix.vectors.push_back(std::move(values));
    }
  }
  return matrix;
}

std::vector<const ts::TimeSeries*> CollectSensorSeries(
    const Machine& machine, const std::string& sensor_id,
    const std::string& phase_name) {
  std::vector<const ts::TimeSeries*> result;
  for (const Job& job : machine.jobs) {
    for (const Phase& phase : job.phases) {
      if (!phase_name.empty() && phase.name != phase_name) continue;
      const auto it = phase.sensor_series.find(sensor_id);
      if (it != phase.sensor_series.end()) result.push_back(&it->second);
    }
  }
  return result;
}

const ts::TimeSeries* FindEnvironmentSeries(const ProductionLine& line,
                                            const std::string& sensor_id) {
  for (const EnvironmentChannel& channel : line.environment) {
    if (channel.sensor_id == sensor_id) return &channel.series;
  }
  return nullptr;
}

}  // namespace hod::hierarchy
