// Parity tests for the util/simd.h dispatch shim. Lane-wise kernels
// (MulAccumulate, MonitorScoreLanes) must be bit-identical across
// backends; the horizontally-reduced SquaredL2 may re-associate its sum
// but must agree with the scalar reference to rounding, on random and
// adversarial inputs (denormals, mixed magnitudes, dim 1, dims off the
// vector lane multiple). Also pins the checked detect/distance.h
// boundary that replaced the unchecked per-detector helpers.
#include "util/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "detect/distance.h"
#include "util/rng.h"

namespace hod::util::simd {
namespace {

/// Restores the process-default backend when a test scope ends.
class BackendGuard {
 public:
  BackendGuard() : original_(ActiveBackend()) {}
  ~BackendGuard() { SetBackendForTest(original_); }

 private:
  Backend original_;
};

/// Backends the running CPU can actually execute.
std::vector<Backend> AvailableBackends() {
  BackendGuard guard;
  std::vector<Backend> available;
  for (Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kNeon}) {
    if (SetBackendForTest(b) == b) available.push_back(b);
  }
  return available;
}

std::vector<double> RandomVector(Rng& rng, size_t n, double scale = 1.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Gaussian(0.0, scale);
  return v;
}

/// Dimensions around the AVX2 (4) and unrolled (16) lane multiples.
const size_t kDims[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 67};

TEST(SimdDispatch, ReportsABackend) {
  const Backend backend = ActiveBackend();
  EXPECT_TRUE(backend == Backend::kScalar || backend == Backend::kAvx2 ||
              backend == Backend::kNeon);
  EXPECT_FALSE(BackendName().empty());
}

TEST(SimdDispatch, ForcingUnavailableBackendIsIgnored) {
  BackendGuard guard;
#if defined(__x86_64__) || defined(_M_X64)
  // NEON does not exist on x86-64: the request leaves the backend alone.
  const Backend before = ActiveBackend();
  EXPECT_EQ(SetBackendForTest(Backend::kNeon), before);
#endif
  // Scalar is always available.
  EXPECT_EQ(SetBackendForTest(Backend::kScalar), Backend::kScalar);
}

TEST(SquaredL2, MatchesReferenceAcrossDimsAndBackends) {
  BackendGuard guard;
  Rng rng(42);
  for (Backend backend : AvailableBackends()) {
    ASSERT_EQ(SetBackendForTest(backend), backend);
    for (size_t n : kDims) {
      const std::vector<double> a = RandomVector(rng, n, 3.0);
      const std::vector<double> b = RandomVector(rng, n, 3.0);
      const double got = SquaredL2(a.data(), b.data(), n);
      const double want = SquaredL2Reference(a.data(), b.data(), n);
      // Re-associated sum: agree to a few ulps, scaled by the magnitude.
      EXPECT_NEAR(got, want, 1e-12 * std::max(1.0, want))
          << "backend " << static_cast<int>(backend) << " dim " << n;
    }
  }
}

TEST(SquaredL2, ScalarBackendIsTheReference) {
  BackendGuard guard;
  ASSERT_EQ(SetBackendForTest(Backend::kScalar), Backend::kScalar);
  Rng rng(7);
  for (size_t n : kDims) {
    const std::vector<double> a = RandomVector(rng, n);
    const std::vector<double> b = RandomVector(rng, n);
    EXPECT_EQ(SquaredL2(a.data(), b.data(), n),
              SquaredL2Reference(a.data(), b.data(), n));
  }
}

TEST(SquaredL2, AdversarialInputs) {
  BackendGuard guard;
  const double denormal = 5e-324;
  const double tiny = 1e-308;
  for (Backend backend : AvailableBackends()) {
    ASSERT_EQ(SetBackendForTest(backend), backend);
    // Identical vectors: exactly zero.
    const std::vector<double> same = {1.5, -2.25, 1e300, denormal};
    EXPECT_EQ(SquaredL2(same.data(), same.data(), same.size()), 0.0);
    // Denormal differences underflow to zero when squared — consistently.
    const std::vector<double> a = {denormal, tiny, 0.0, -denormal, tiny};
    const std::vector<double> b = {0.0, -tiny, denormal, denormal, tiny};
    EXPECT_EQ(SquaredL2(a.data(), b.data(), a.size()),
              SquaredL2Reference(a.data(), b.data(), a.size()));
    // Mixed magnitudes: the large term dominates in every association.
    const std::vector<double> big = {1e8, 1e-8, -1e8, 1e-8, 3.0};
    const std::vector<double> small = {0.0, 2e-8, 1e8, -1e-8, -3.0};
    const double want =
        SquaredL2Reference(big.data(), small.data(), big.size());
    EXPECT_NEAR(SquaredL2(big.data(), small.data(), big.size()), want,
                1e-12 * want);
    // Dimension 1 (pure tail) and 0 (empty).
    EXPECT_EQ(SquaredL2(big.data(), small.data(), 1), 1e16);
    EXPECT_EQ(SquaredL2(big.data(), small.data(), 0), 0.0);
  }
}

TEST(MulAccumulate, BitIdenticalAcrossBackends) {
  BackendGuard guard;
  Rng rng(99);
  for (size_t n : kDims) {
    const std::vector<double> x = RandomVector(rng, n, 2.0);
    const std::vector<double> y = RandomVector(rng, n, 2.0);
    const std::vector<double> acc0 = RandomVector(rng, n, 5.0);

    ASSERT_EQ(SetBackendForTest(Backend::kScalar), Backend::kScalar);
    std::vector<double> want = acc0;
    MulAccumulate(want.data(), x.data(), y.data(), n);

    for (Backend backend : AvailableBackends()) {
      ASSERT_EQ(SetBackendForTest(backend), backend);
      std::vector<double> got = acc0;
      MulAccumulate(got.data(), x.data(), y.data(), n);
      if (n > 0) {
        EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(double)),
                  0)
            << "backend " << static_cast<int>(backend) << " dim " << n;
      }
    }
  }
}

TEST(Axpy, BitIdenticalAcrossBackends) {
  BackendGuard guard;
  Rng rng(314);
  for (size_t n : kDims) {
    const std::vector<double> x = RandomVector(rng, n, 2.0);
    const std::vector<double> acc0 = RandomVector(rng, n, 5.0);
    for (double a : {0.0, 1.0, -0.75, 3.5e8, 1e-160}) {
      ASSERT_EQ(SetBackendForTest(Backend::kScalar), Backend::kScalar);
      std::vector<double> want = acc0;
      Axpy(want.data(), a, x.data(), n);

      for (Backend backend : AvailableBackends()) {
        ASSERT_EQ(SetBackendForTest(backend), backend);
        std::vector<double> got = acc0;
        Axpy(got.data(), a, x.data(), n);
        if (n > 0) {
          EXPECT_EQ(
              std::memcmp(got.data(), want.data(), n * sizeof(double)), 0)
              << "backend " << static_cast<int>(backend) << " dim " << n
              << " a " << a;
        }
      }
    }
  }
}

TEST(Axpy, MatchesMulThenAddExactly) {
  // The contract: acc[i] += a * x[i] with a plain multiply then a plain
  // add — no FMA contraction anywhere, or vector and scalar lanes would
  // round differently and the AR fit would stop being bit-reproducible.
  BackendGuard guard;
  Rng rng(2718);
  const size_t n = 33;
  const std::vector<double> x = RandomVector(rng, n, 4.0);
  const std::vector<double> acc0 = RandomVector(rng, n, 4.0);
  const double a = 1.0 / 3.0;
  for (Backend backend : AvailableBackends()) {
    ASSERT_EQ(SetBackendForTest(backend), backend);
    std::vector<double> got = acc0;
    Axpy(got.data(), a, x.data(), n);
    for (size_t i = 0; i < n; ++i) {
      volatile double product = a * x[i];  // volatile: forbid contraction
      const double want = acc0[i] + product;
      EXPECT_EQ(got[i], want)
          << "backend " << static_cast<int>(backend) << " lane " << i;
    }
  }
}

/// The scalar monitor step MonitorScoreLanes must reproduce, lifted
/// verbatim from core::OnlineMonitor::Push.
void ScalarMonitorStep(double sample, double pred, double& sigma,
                       double& score, double sigma_scale, double threshold,
                       double alpha, double sigma_floor) {
  const double residual = sample - pred;
  const double z = std::fabs(residual) / sigma;
  const double excess = z - 1.0;
  score = excess <= 0.0 ? 0.0 : excess / (excess + sigma_scale);
  if (alpha > 0.0 && score <= threshold) {
    sigma = std::sqrt((1.0 - alpha) * sigma * sigma +
                      alpha * residual * residual);
    sigma = std::max(sigma, sigma_floor);
  }
}

TEST(MonitorScoreLanes, BitIdenticalToScalarMonitorStep) {
  BackendGuard guard;
  Rng rng(1234);
  const double sigma_scale = 3.0;
  const double threshold = 0.5;
  const double sigma_floor = 1e-9;
  for (double alpha : {0.001, 0.25, 0.0}) {
    for (size_t n : kDims) {
      std::vector<double> sample = RandomVector(rng, n, 10.0);
      std::vector<double> pred = RandomVector(rng, n, 10.0);
      std::vector<double> sigma0(n);
      for (double& s : sigma0) s = std::fabs(rng.Gaussian(1.0, 0.5)) + 0.01;
      // Adversarial lanes: a near-floor sigma (floor clamp engages), a
      // huge residual (score far above threshold, scale frozen), and a
      // denormal-feeding residual.
      if (n >= 3) {
        sigma0[0] = sigma_floor;
        sample[1] = pred[1] + 1e6;
        sample[2] = pred[2] + 1e-160;
        sigma0[2] = 1.0;
      }

      std::vector<double> want_sigma = sigma0;
      std::vector<double> want_score(n, -1.0);
      for (size_t i = 0; i < n; ++i) {
        ScalarMonitorStep(sample[i], pred[i], want_sigma[i], want_score[i],
                          sigma_scale, threshold, alpha, sigma_floor);
      }

      for (Backend backend : AvailableBackends()) {
        ASSERT_EQ(SetBackendForTest(backend), backend);
        std::vector<double> got_sigma = sigma0;
        std::vector<double> got_score(n, -1.0);
        MonitorScoreLanes(sample.data(), pred.data(), got_sigma.data(),
                          got_score.data(), n, sigma_scale, threshold, alpha,
                          sigma_floor);
        if (n == 0) continue;
        EXPECT_EQ(std::memcmp(got_sigma.data(), want_sigma.data(),
                              n * sizeof(double)),
                  0)
            << "sigma: backend " << static_cast<int>(backend) << " dim " << n
            << " alpha " << alpha;
        EXPECT_EQ(std::memcmp(got_score.data(), want_score.data(),
                              n * sizeof(double)),
                  0)
            << "score: backend " << static_cast<int>(backend) << " dim " << n
            << " alpha " << alpha;
      }
    }
  }
}

TEST(CheckedDistance, RejectsDimensionMismatch) {
  // Regression: the per-detector Distance helpers iterated over a.size()
  // with no check, so a longer first argument read past the end of the
  // second (ASan catches the old pattern). The shared kernel boundary
  // errors instead.
  const std::vector<double> longer = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> shorter = {1.0, 2.0};
  auto squared = detect::SquaredDistance(longer, shorter);
  EXPECT_EQ(squared.status().code(), StatusCode::kInvalidArgument);
  auto dist = detect::Distance(shorter, longer);
  EXPECT_EQ(dist.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckedDistance, MatchesPointerKernelOnEqualDims) {
  Rng rng(5);
  const std::vector<double> a = RandomVector(rng, 9);
  const std::vector<double> b = RandomVector(rng, 9);
  EXPECT_EQ(detect::SquaredDistance(a, b).value(),
            detect::SquaredDistance(a.data(), b.data(), a.size()));
  EXPECT_EQ(detect::Distance(a, b).value(),
            detect::Distance(a.data(), b.data(), a.size()));
}

}  // namespace
}  // namespace hod::util::simd
