#include "detect/olap_cube.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"

namespace hod::detect {

OlapCubeDetector::OlapCubeDetector(OlapCubeOptions options)
    : options_(options) {}

Status OlapCubeDetector::TrainRecords(
    const std::vector<CubeRecord>& records) {
  if (records.empty()) {
    return Status::InvalidArgument("OLAP cube on empty data");
  }
  num_dims_ = records[0].dims.size();
  if (num_dims_ == 0) {
    return Status::InvalidArgument("records need at least one dimension");
  }
  for (const auto& record : records) {
    if (record.dims.size() != num_dims_) {
      return Status::InvalidArgument("inconsistent record dimensionality");
    }
  }
  // Subspace list: each single dimension, then the full group-by (when it
  // differs from a single dimension).
  const size_t num_subspaces = num_dims_ > 1 ? num_dims_ + 1 : 1;
  subspaces_.assign(num_subspaces, {});

  // Two-pass mean/std per cell.
  auto project = [this](const CubeRecord& r, size_t subspace) {
    if (subspace < num_dims_) {
      return std::vector<int64_t>{r.dims[subspace]};
    }
    return r.dims;
  };
  for (size_t s = 0; s < num_subspaces; ++s) {
    for (const auto& record : records) {
      CellStats& cell = subspaces_[s][project(record, s)];
      cell.mean += record.measure;
      ++cell.count;
    }
    for (auto& [key, cell] : subspaces_[s]) {
      cell.mean /= static_cast<double>(cell.count);
    }
    for (const auto& record : records) {
      CellStats& cell = subspaces_[s][project(record, s)];
      const double d = record.measure - cell.mean;
      cell.stddev += d * d;
    }
    for (auto& [key, cell] : subspaces_[s]) {
      cell.stddev = std::sqrt(cell.stddev / static_cast<double>(cell.count));
    }
  }
  // Global fallback statistics.
  std::vector<double> measures;
  measures.reserve(records.size());
  for (const auto& record : records) measures.push_back(record.measure);
  global_.mean = ts::Mean(measures);
  global_.stddev = ts::StdDev(measures);
  global_.count = records.size();
  trained_ = true;
  return Status::Ok();
}

double OlapCubeDetector::ScoreRecord(const CubeRecord& record) const {
  double worst = 0.0;
  auto cell_score = [this, &record](const CellStats& cell) {
    const double sigma = std::max(cell.stddev, 1e-9);
    const double z = std::fabs(record.measure - cell.mean) / sigma;
    const double excess = z - 1.0;  // 1 sigma of slack inside the cell
    return excess <= 0.0 ? 0.0
                         : excess / (excess + options_.sigma_scale);
  };
  for (size_t s = 0; s < subspaces_.size(); ++s) {
    std::vector<int64_t> key;
    if (s < num_dims_) {
      key = {record.dims[s]};
    } else {
      key = record.dims;
    }
    const auto it = subspaces_[s].find(key);
    const CellStats* cell = &global_;
    if (it != subspaces_[s].end() &&
        it->second.count >= options_.min_cell_support) {
      cell = &it->second;
    }
    worst = std::max(worst, cell_score(*cell));
  }
  return worst;
}

StatusOr<std::vector<double>> OlapCubeDetector::ScoreRecords(
    const std::vector<CubeRecord>& records) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(records.size(), 0.0);
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].dims.size() != num_dims_) {
      return Status::InvalidArgument("record dimensionality mismatch");
    }
    scores[i] = ScoreRecord(records[i]);
  }
  return scores;
}

StatusOr<CubeRecord> OlapCubeDetector::ToRecord(
    const std::vector<double>& row) const {
  if (row.size() != vector_dim_) {
    return Status::InvalidArgument("dimension mismatch in cube score");
  }
  CubeRecord record;
  record.measure = row.back();
  if (vector_dim_ == 1) {
    record.dims = {0};  // single global cell
    return record;
  }
  for (size_t c = 0; c + 1 < vector_dim_; ++c) {
    const auto& breaks = breakpoints_[c];
    const auto it = std::upper_bound(breaks.begin(), breaks.end(), row[c]);
    record.dims.push_back(static_cast<int64_t>(it - breaks.begin()));
  }
  return record;
}

Status OlapCubeDetector::Train(const std::vector<std::vector<double>>& data) {
  if (data.empty()) return Status::InvalidArgument("OLAP cube on empty data");
  vector_dim_ = data[0].size();
  if (vector_dim_ == 0) {
    return Status::InvalidArgument("zero-dimensional data");
  }
  // Quantile breakpoints for dimension columns.
  breakpoints_.assign(vector_dim_ > 1 ? vector_dim_ - 1 : 0, {});
  for (size_t c = 0; c + 1 < vector_dim_; ++c) {
    std::vector<double> column;
    column.reserve(data.size());
    for (const auto& row : data) {
      if (row.size() != vector_dim_) {
        return Status::InvalidArgument("ragged data in cube train");
      }
      column.push_back(row[c]);
    }
    for (size_t b = 1; b < options_.bins; ++b) {
      breakpoints_[c].push_back(ts::Quantile(
          column, static_cast<double>(b) / static_cast<double>(options_.bins)));
    }
  }
  std::vector<CubeRecord> records;
  records.reserve(data.size());
  for (const auto& row : data) {
    // ToRecord needs vector_dim_ set; breakpoints_ already fitted above.
    auto record_or = ToRecord(row);
    if (!record_or.ok()) return record_or.status();
    records.push_back(std::move(record_or).value());
  }
  return TrainRecords(records);
}

StatusOr<std::vector<double>> OlapCubeDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<CubeRecord> records;
  records.reserve(data.size());
  for (const auto& row : data) {
    auto record_or = ToRecord(row);
    if (!record_or.ok()) return record_or.status();
    records.push_back(std::move(record_or).value());
  }
  return ScoreRecords(records);
}

size_t OlapCubeDetector::num_cells() const {
  size_t total = 0;
  for (const auto& subspace : subspaces_) total += subspace.size();
  return total;
}

}  // namespace hod::detect
