#include "hierarchy/level.h"

namespace hod::hierarchy {

std::string_view LevelName(ProductionLevel level) {
  switch (level) {
    case ProductionLevel::kPhase:
      return "Phase Level";
    case ProductionLevel::kJob:
      return "Job Level";
    case ProductionLevel::kEnvironment:
      return "Environment Level";
    case ProductionLevel::kProductionLine:
      return "Production Line Level";
    case ProductionLevel::kProduction:
      return "Production Level";
  }
  return "Unknown Level";
}

StatusOr<ProductionLevel> LevelAbove(ProductionLevel level) {
  const int value = LevelValue(level);
  if (value >= kNumLevels) {
    return Status::OutOfRange("no level above Production Level");
  }
  return static_cast<ProductionLevel>(value + 1);
}

StatusOr<ProductionLevel> LevelBelow(ProductionLevel level) {
  const int value = LevelValue(level);
  if (value <= 1) {
    return Status::OutOfRange("no level below Phase Level");
  }
  return static_cast<ProductionLevel>(value - 1);
}

StatusOr<ProductionLevel> LevelFromValue(int value) {
  if (value < 1 || value > kNumLevels) {
    return Status::OutOfRange("production level must be in [1, 5]");
  }
  return static_cast<ProductionLevel>(value);
}

}  // namespace hod::hierarchy
