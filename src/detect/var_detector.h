#ifndef HOD_DETECT_VAR_DETECTOR_H_
#define HOD_DETECT_VAR_DETECTOR_H_

#include <string>
#include <vector>

#include "timeseries/time_series.h"
#include "util/statusor.h"

namespace hod::detect {

/// Vector-autoregressive outlier detection for multivariate phase data —
/// the paper emphasizes "multi-dimensional, high-resolution sensor values"
/// at the phase level and cites multivariate time-series outlier work [5].
///
/// Fits VAR(1): x_t = c + A x_{t-1} + e_t by per-equation least squares on
/// aligned sensor channels. Scoring uses the joint one-step residual in a
/// diagonal Mahalanobis metric, so a disturbance that respects each
/// channel's own history but breaks the *cross-channel* relationship (bed
/// hot while laser off) is caught — exactly what per-sensor detectors miss.
struct VarOptions {
  /// Ridge regularization on the normal equations.
  double ridge = 1e-6;
  /// Joint residual (in training sigmas beyond 1) at which the score is 0.5.
  double sigma_scale = 3.0;
};

class VarDetector {
 public:
  explicit VarDetector(VarOptions options = {});

  std::string name() const { return "VectorAutoregressive"; }

  /// Trains on one or more groups of aligned channels. Each group is a
  /// vector of equally long series (the channels); all groups must share
  /// the channel count.
  Status Train(const std::vector<std::vector<ts::TimeSeries>>& groups);

  /// Per-time-step joint outlierness in [0,1] for aligned channels.
  StatusOr<std::vector<double>> Score(
      const std::vector<ts::TimeSeries>& channels) const;

  /// Per-time-step raw residual z (joint, in sigmas) — for diagnostics.
  StatusOr<std::vector<double>> ResidualZ(
      const std::vector<ts::TimeSeries>& channels) const;

  size_t num_channels() const { return dim_; }
  /// Fitted transition matrix A (row-major, dim x dim).
  const std::vector<std::vector<double>>& transition() const { return a_; }
  const std::vector<double>& intercept() const { return c_; }

 private:
  Status CheckAligned(const std::vector<ts::TimeSeries>& channels) const;

  VarOptions options_;
  size_t dim_ = 0;
  std::vector<std::vector<double>> a_;  // dim x dim
  std::vector<double> c_;               // dim
  std::vector<double> residual_sigma_;  // dim
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_VAR_DETECTOR_H_
