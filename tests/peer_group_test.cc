// Space-axis layer tests: PeerGroupMonitor scoring (deviation + slope
// against the redundancy group), the engine integration (kPeerDrift
// findings on the calibration queue), quarantine-onset correlation
// (kGroupOutage findings that suppress per-sensor storms), and the
// checkpoint round trip of all of it.

#include "stream/peer_group.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "hierarchy/sensor_registry.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace hod::stream {
namespace {

using hierarchy::ProductionLevel;

PeerGroupOptions FastOptions() {
  PeerGroupOptions options;
  options.window = 32;
  options.warmup = 8;
  options.deviation_after = 3;
  return options;
}

/// Noise around `base`; the victim additionally ramps away multiplicatively
/// from `drift_at` on — the fault signature the time axis is blind to.
double MemberValue(Rng& rng, double base, size_t t, bool victim,
                   size_t drift_at, double rate) {
  double value = base + rng.Gaussian(0.0, 0.05);
  if (victim && t >= drift_at) {
    value *= 1.0 + rate * static_cast<double>(t - drift_at);
  }
  return value;
}

TEST(PeerGroupMonitor, AddGroupValidation) {
  PeerGroupMonitor monitor;
  EXPECT_FALSE(monitor.AddGroup("", {"a", "b"}).ok());
  EXPECT_FALSE(monitor.AddGroup("g", {"a"}).ok()) << "singleton";
  EXPECT_FALSE(monitor.AddGroup("g", {"a", "a"}).ok())
      << "two slots, one distinct sensor";
  ASSERT_TRUE(monitor.AddGroup("g", {"a", "b"}).ok());
  EXPECT_FALSE(monitor.AddGroup("g", {"c", "d"}).ok()) << "duplicate id";
  EXPECT_EQ(monitor.num_groups(), 1u);
  EXPECT_TRUE(monitor.Tracks("a"));
  EXPECT_FALSE(monitor.Tracks("c"));
}

TEST(PeerGroupMonitor, RegistryImportSkipsSingletonsAndUngrouped) {
  hierarchy::SensorRegistry registry;
  ASSERT_TRUE(registry.Register({"a", "", "", "m1", "bed"}).ok());
  ASSERT_TRUE(registry.Register({"b", "", "", "m1", "bed"}).ok());
  ASSERT_TRUE(registry.Register({"alone", "", "", "m1", "nozzle"}).ok());
  ASSERT_TRUE(registry.Register({"free", "", "", "m1", ""}).ok());
  PeerGroupMonitor monitor;
  ASSERT_TRUE(monitor.AddGroupsFromRegistry(registry).ok());
  EXPECT_EQ(monitor.num_groups(), 1u);
  EXPECT_TRUE(monitor.Tracks("a"));
  EXPECT_TRUE(monitor.Tracks("b"));
  EXPECT_FALSE(monitor.Tracks("alone")) << "singleton group has no peers";
  EXPECT_FALSE(monitor.Tracks("free"));
}

TEST(PeerGroupMonitor, SteadyGroupNeverFires) {
  PeerGroupMonitor monitor(FastOptions());
  const std::vector<std::string> members = {"a", "b", "c", "d"};
  ASSERT_TRUE(monitor.AddGroup("g", members).ok());
  Rng rng(7);
  for (size_t t = 0; t < 400; ++t) {
    for (const std::string& id : members) {
      auto fired = monitor.Observe(id, ProductionLevel::kPhase,
                                   static_cast<double>(t),
                                   MemberValue(rng, 50.0, t, false, 0, 0.0));
      EXPECT_FALSE(fired.has_value()) << id << " t=" << t;
    }
  }
  EXPECT_TRUE(monitor.Deviations().empty());
}

TEST(PeerGroupMonitor, GainDriftFiresOnTheVictimOnly) {
  PeerGroupMonitor monitor(FastOptions());
  const std::vector<std::string> members = {"a", "b", "victim", "d"};
  ASSERT_TRUE(monitor.AddGroup("g", members).ok());
  Rng rng(11);
  for (size_t t = 0; t < 300; ++t) {
    for (const std::string& id : members) {
      (void)monitor.Observe(
          id, ProductionLevel::kPhase, static_cast<double>(t),
          MemberValue(rng, 50.0, t, id == "victim", 100, 0.002));
    }
  }
  const std::vector<PeerDeviation> deviations = monitor.Deviations();
  ASSERT_FALSE(deviations.empty());
  for (const PeerDeviation& deviation : deviations) {
    EXPECT_EQ(deviation.sensor_id, "victim");
    EXPECT_EQ(deviation.group_id, "g");
    EXPECT_GE(deviation.ts, 100.0) << "fired before the drift began";
  }
  // Space-axis detection is fast: 0.2%/s gain on a 50-unit signal with
  // 0.05-sigma peers leaves the band within a couple dozen seconds.
  EXPECT_LT(deviations.front().ts, 160.0);
  EXPECT_GT(std::max(deviations.front().value_z, deviations.front().slope_z),
            FastOptions().slope_z);
}

TEST(PeerGroupMonitor, TooFewFreshPeersOnlyRefreshesTheCache) {
  PeerGroupOptions options = FastOptions();
  options.peer_freshness = 5.0;
  PeerGroupMonitor monitor(options);
  ASSERT_TRUE(monitor.AddGroup("g", {"a", "b"}).ok());
  // b reports once, then goes silent; a keeps reporting with a wild value.
  (void)monitor.Observe("b", ProductionLevel::kPhase, 0.0, 50.0);
  for (size_t t = 1; t < 100; ++t) {
    auto fired = monitor.Observe("a", ProductionLevel::kPhase,
                                 static_cast<double>(t), 500.0);
    EXPECT_FALSE(fired.has_value())
        << "no fresh peer after t=5 -> nothing to deviate from";
  }
  EXPECT_TRUE(monitor.Deviations().empty());
}

TEST(PeerGroupMonitor, SaveRestoreRoundTrip) {
  PeerGroupMonitor original(FastOptions());
  ASSERT_TRUE(original.AddGroup("g1", {"a", "b", "c"}).ok());
  ASSERT_TRUE(original.AddGroup("g2", {"x", "y"}).ok());
  Rng rng(13);
  for (size_t t = 0; t < 120; ++t) {
    for (const std::string id : {"a", "b", "c"}) {
      (void)original.Observe(id, ProductionLevel::kPhase,
                             static_cast<double>(t),
                             MemberValue(rng, 50.0, t, id == "c", 40, 0.004));
    }
    for (const std::string id : {"x", "y"}) {
      (void)original.Observe(id, ProductionLevel::kPhase,
                             static_cast<double>(t),
                             MemberValue(rng, 20.0, t, false, 0, 0.0));
    }
  }
  const std::vector<PeerGroupState> saved = original.SaveState();
  ASSERT_EQ(saved.size(), 2u);

  PeerGroupMonitor restored(FastOptions());
  ASSERT_TRUE(restored.AddGroup("g1", {"a", "b", "c"}).ok());
  ASSERT_TRUE(restored.AddGroup("g2", {"x", "y"}).ok());
  ASSERT_TRUE(restored.RestoreState(saved).ok());
  const std::vector<PeerGroupState> resaved = restored.SaveState();
  ASSERT_EQ(resaved.size(), saved.size());
  for (size_t g = 0; g < saved.size(); ++g) {
    EXPECT_EQ(resaved[g].group_id, saved[g].group_id);
    ASSERT_EQ(resaved[g].members.size(), saved[g].members.size());
    for (size_t m = 0; m < saved[g].members.size(); ++m) {
      const PeerMemberState& want = saved[g].members[m];
      const PeerMemberState& got = resaved[g].members[m];
      EXPECT_EQ(got.sensor_id, want.sensor_id);
      EXPECT_EQ(got.has_last, want.has_last);
      EXPECT_EQ(got.last_value, want.last_value);
      EXPECT_EQ(got.ring_residual, want.ring_residual);
      EXPECT_EQ(got.breach_streak, want.breach_streak);
      EXPECT_EQ(got.fired, want.fired);
      EXPECT_EQ(got.deviations, want.deviations);
    }
  }

  PeerGroupState unknown;
  unknown.group_id = "nope";
  EXPECT_FALSE(restored.RestoreState({unknown}).ok());
}

// ---------------------------------------------------------------------------
// Engine integration.

StreamEngineOptions SyncEngineOptions() {
  StreamEngineOptions options;
  options.synchronous = true;
  options.monitor.warmup = 64;
  options.peer = FastOptions();
  // Sequentially-fed test sensors must not trip the staleness watchdog.
  options.health.staleness_timeout = 0.0;
  return options;
}

TEST(StreamEnginePeer, GroupRegistrationIsValidatedAndSealed) {
  StreamEngine engine(SyncEngineOptions());
  ASSERT_TRUE(engine.AddSensor("a", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.AddSensor("b", ProductionLevel::kPhase).ok());
  EXPECT_EQ(engine.AddPeerGroup("g", {"a", "ghost"}).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(engine.AddPeerGroup("g", {"a", "b"}).ok());
  EXPECT_EQ(engine.num_peer_groups(), 1u);
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.AddPeerGroup("late", {"a", "b"}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(StreamEnginePeer, RegistryGroupsNeedTwoEngineRegisteredMembers) {
  hierarchy::SensorRegistry registry;
  ASSERT_TRUE(registry.Register({"a", "", "", "m1", "bed"}).ok());
  ASSERT_TRUE(registry.Register({"b", "", "", "m1", "bed"}).ok());
  ASSERT_TRUE(registry.Register({"c", "", "", "m1", "nozzle"}).ok());
  ASSERT_TRUE(registry.Register({"d", "", "", "m1", "nozzle"}).ok());
  StreamEngine engine(SyncEngineOptions());
  ASSERT_TRUE(engine.AddSensor("a", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.AddSensor("b", ProductionLevel::kPhase).ok());
  // Only one nozzle sensor streams into this engine: its group degrades
  // to a singleton and is skipped instead of failing registration.
  ASSERT_TRUE(engine.AddSensor("c", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.AddPeerGroupsFromRegistry(registry).ok());
  EXPECT_EQ(engine.num_peer_groups(), 1u);
}

TEST(StreamEnginePeer, GainDriftLandsOnTheCalibrationQueue) {
  StreamEngine engine(SyncEngineOptions());
  const std::vector<std::string> members = {"a", "b", "victim", "d"};
  for (const std::string& id : members) {
    ASSERT_TRUE(engine.AddSensor(id, ProductionLevel::kPhase).ok());
  }
  ASSERT_TRUE(engine.AddPeerGroup("bed", members).ok());
  ASSERT_TRUE(engine.Start().ok());
  Rng rng(17);
  for (size_t t = 0; t < 300; ++t) {
    for (const std::string& id : members) {
      auto ack = engine.Ingest(
          {id, ProductionLevel::kPhase, static_cast<double>(t),
           MemberValue(rng, 50.0, t, id == "victim", 100, 0.002)});
      ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    }
  }
  ASSERT_TRUE(engine.Stop().ok());

  const std::vector<PeerDeviation> deviations = engine.PeerDeviations();
  ASSERT_FALSE(deviations.empty());
  EXPECT_EQ(deviations.front().sensor_id, "victim");
  EXPECT_EQ(engine.stats().peer_deviations, deviations.size());

  size_t drift_findings = 0;
  for (const core::OutlierFinding& finding : engine.Findings()) {
    if (finding.kind != core::FindingKind::kPeerDrift) continue;
    ++drift_findings;
    EXPECT_EQ(finding.origin.entity, "victim");
    EXPECT_TRUE(finding.measurement_error_warning)
        << "peer drift is calibration evidence, not a process alarm";
  }
  EXPECT_EQ(drift_findings, deviations.size());
  // The drift rides the calibration queue; the process-alert board stays
  // free of it.
  bool on_calibration_queue = false;
  for (const core::AlertEpisode& episode : engine.CalibrationQueue()) {
    on_calibration_queue |= episode.entity == "victim";
  }
  EXPECT_TRUE(on_calibration_queue);
}

// ---------------------------------------------------------------------------
// Quarantine-onset correlation.

StreamEngineOptions OutageOptions() {
  StreamEngineOptions options = SyncEngineOptions();
  options.health.staleness_timeout = 30.0;
  options.health.recovery_clean_streak = 8;
  options.health_sweep_every = 16;
  options.peer.outage_min_sensors = 6;
  options.peer.outage_window = 20.0;
  options.peer.outage_entity = "line1";
  return options;
}

std::vector<std::string> LineSensors() {
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) ids.push_back("line1.s" + std::to_string(i));
  return ids;
}

/// One interleaved tick: every listed sensor reports at `t`.
void FeedTick(StreamEngine& engine, const std::vector<std::string>& ids,
              size_t t, Rng& rng) {
  for (const std::string& id : ids) {
    auto ack = engine.Ingest({id, ProductionLevel::kPhase,
                              static_cast<double>(t),
                              50.0 + rng.Gaussian(0.0, 0.25)});
    ASSERT_TRUE(ack.ok()) << id << " t=" << t << ": "
                          << ack.status().ToString();
  }
}

TEST(StreamEngineOutage, CorrelatedStalenessCollapsesIntoOneFinding) {
  StreamEngine engine(OutageOptions());
  const std::vector<std::string> ids = LineSensors();
  for (const std::string& id : ids) {
    ASSERT_TRUE(engine.AddSensor(id, ProductionLevel::kPhase).ok());
  }
  ASSERT_TRUE(engine.Start().ok());
  Rng rng(23);
  for (size_t t = 0; t < 100; ++t) FeedTick(engine, ids, t, rng);
  // The line's trunk dies: six sensors go silent at once; two survivors
  // keep the frontier moving, which is what ages the silent ones stale.
  const std::vector<std::string> survivors = {ids[0], ids[1]};
  for (size_t t = 100; t < 200; ++t) FeedTick(engine, survivors, t, rng);
  ASSERT_TRUE(engine.Flush().ok());

  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.group_outages, 1u);
  EXPECT_EQ(stats.suppressed_sensor_faults, 6u)
      << "every member onset absorbed into the one group finding";
  size_t group_findings = 0;
  size_t fault_findings = 0;
  for (const core::OutlierFinding& finding : engine.Findings()) {
    if (finding.kind == core::FindingKind::kGroupOutage) {
      ++group_findings;
      EXPECT_EQ(finding.origin.entity, "line1");
      EXPECT_FALSE(finding.measurement_error_warning)
          << "an infrastructure outage belongs on the main board";
    }
    if (finding.kind == core::FindingKind::kSensorFault) ++fault_findings;
  }
  EXPECT_EQ(group_findings, 1u);
  EXPECT_EQ(fault_findings, 0u) << "the per-sensor storm must be suppressed";

  EngineSnapshot snapshot = engine.Snapshot();
  EXPECT_TRUE(snapshot.group_outage_active);
  EXPECT_EQ(snapshot.group_outage_entity, "line1");
  EXPECT_EQ(snapshot.group_outage_sensors, 6u);

  // Power returns: the silent six resume and the outage drains away as
  // each one finishes recovery.
  for (size_t t = 200; t < 240; ++t) FeedTick(engine, ids, t, rng);
  ASSERT_TRUE(engine.Flush().ok());
  stats = engine.stats();
  EXPECT_EQ(stats.group_outage_recoveries, 1u);
  EXPECT_FALSE(engine.Snapshot().group_outage_active);
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(StreamEngineOutage, LoneStaleSensorStillGetsItsOwnFinding) {
  StreamEngine engine(OutageOptions());
  const std::vector<std::string> ids = LineSensors();
  for (const std::string& id : ids) {
    ASSERT_TRUE(engine.AddSensor(id, ProductionLevel::kPhase).ok());
  }
  ASSERT_TRUE(engine.Start().ok());
  Rng rng(29);
  for (size_t t = 0; t < 100; ++t) FeedTick(engine, ids, t, rng);
  std::vector<std::string> survivors(ids.begin(), ids.end() - 1);
  for (size_t t = 100; t < 250; ++t) FeedTick(engine, survivors, t, rng);
  ASSERT_TRUE(engine.Stop().ok());

  // One onset never clusters: after the correlation window passes it is
  // released as the kSensorFault it always was.
  EXPECT_EQ(engine.stats().group_outages, 0u);
  size_t fault_findings = 0;
  for (const core::OutlierFinding& finding : engine.Findings()) {
    if (finding.kind == core::FindingKind::kGroupOutage) ADD_FAILURE();
    if (finding.kind == core::FindingKind::kSensorFault) {
      ++fault_findings;
      EXPECT_EQ(finding.origin.entity, ids.back());
    }
  }
  EXPECT_EQ(fault_findings, 1u);
}

TEST(StreamEngineOutage, NonStaleQuarantineBypassesCorrelation) {
  StreamEngine engine(OutageOptions());
  const std::vector<std::string> ids = LineSensors();
  for (const std::string& id : ids) {
    ASSERT_TRUE(engine.AddSensor(id, ProductionLevel::kPhase).ok());
  }
  ASSERT_TRUE(engine.Start().ok());
  Rng rng(31);
  for (size_t t = 0; t < 50; ++t) FeedTick(engine, ids, t, rng);
  // An ADC dies on one sensor: a NaN burst is sensor-local evidence and
  // must not be parked in the correlation deque.
  size_t rejected = 0;
  for (size_t t = 50; t < 90; ++t) {
    FeedTick(engine, {ids.begin() + 1, ids.end()}, t, rng);
    auto ack = engine.Ingest({ids[0], ProductionLevel::kPhase,
                              static_cast<double>(t), std::nan("")});
    if (!ack.ok()) ++rejected;
  }
  ASSERT_TRUE(engine.Flush().ok());
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(engine.HealthStateOf(ids[0]), SensorHealthState::kQuarantined);
  size_t fault_findings = 0;
  for (const core::OutlierFinding& finding : engine.Findings()) {
    if (finding.kind == core::FindingKind::kSensorFault) ++fault_findings;
  }
  EXPECT_EQ(fault_findings, 1u)
      << "the NaN quarantine must surface immediately, not await clustering";
  EXPECT_EQ(engine.stats().group_outages, 0u);
  ASSERT_TRUE(engine.Stop().ok());
}

// ---------------------------------------------------------------------------
// Checkpoint round trip of the space-axis state.

TEST(StreamEnginePeer, CheckpointCarriesPeerStateAndOpenOutage) {
  StreamEngineOptions options = OutageOptions();
  StreamEngine engine(options);
  const std::vector<std::string> ids = LineSensors();
  for (const std::string& id : ids) {
    ASSERT_TRUE(engine.AddSensor(id, ProductionLevel::kPhase).ok());
  }
  ASSERT_TRUE(engine.AddPeerGroup("line1.bed", ids).ok());
  ASSERT_TRUE(engine.Start().ok());
  Rng rng(37);
  for (size_t t = 0; t < 100; ++t) FeedTick(engine, ids, t, rng);
  const std::vector<std::string> survivors = {ids[0], ids[1]};
  for (size_t t = 100; t < 200; ++t) FeedTick(engine, survivors, t, rng);
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_EQ(engine.stats().group_outages, 1u);

  std::ostringstream os;
  ASSERT_TRUE(engine.Checkpoint(os).ok());
  const std::string bytes = os.str();

  std::istringstream is(bytes);
  auto restored = StreamEngine::Restore(is, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  StreamEngine& revived = **restored;
  EXPECT_EQ(revived.num_peer_groups(), 1u);
  EXPECT_EQ(revived.stats().group_outages, 1u);
  EXPECT_EQ(revived.stats().suppressed_sensor_faults, 6u);

  // The canonical-encoding property extends to the new v4 sections: an
  // immediate re-checkpoint of the restored engine is byte-identical.
  std::ostringstream os2;
  ASSERT_TRUE(revived.Checkpoint(os2).ok());
  EXPECT_TRUE(os2.str() == bytes) << "restore left a seam in the v4 state";

  // And the restored outage still drains when the line comes back.
  Rng rng2(rng);
  for (size_t t = 200; t < 240; ++t) FeedTick(revived, ids, t, rng2);
  ASSERT_TRUE(revived.Flush().ok());
  EXPECT_EQ(revived.stats().group_outage_recoveries, 1u);
  EXPECT_FALSE(revived.Snapshot().group_outage_active);
  ASSERT_TRUE(revived.Stop().ok());
}

// ---------------------------------------------------------------------------
// Threaded soak: peer groups spanning shard workers (TSan coverage).

TEST(StreamEnginePeer, ThreadedEngineScoresPeersAcrossShards) {
  StreamEngineOptions options;
  options.num_shards = 4;
  options.monitor.warmup = 64;
  options.peer = FastOptions();
  options.queue_capacity = 128;
  options.peer.peer_freshness = 256.0;
  // Threaded feeds see skew: a stalled shard freezes its sensors' last
  // values, and when it resumes the group reference jumps. A step in the
  // middle of a residual ring fits as a slope, so a threaded deployment
  // must budget slope_z for the transport's skew (the step artifact is
  // bounded by the noise range over the skew window; genuine drift keeps
  // growing). 8 clears the artifact while the victim's full-ring drift
  // statistic sits around 40.
  options.peer.slope_z = 8.0;
  options.health.staleness_timeout = 0.0;
  StreamEngine engine(options);
  std::vector<std::string> members;
  for (int i = 0; i < 8; ++i) members.push_back("s" + std::to_string(i));
  for (const std::string& id : members) {
    ASSERT_TRUE(engine.AddSensor(id, ProductionLevel::kPhase).ok());
  }
  ASSERT_TRUE(engine.AddPeerGroup("g0", {members[0], members[1], members[2],
                                         members[3]})
                  .ok());
  ASSERT_TRUE(engine.AddPeerGroup("g1", {members[4], members[5], members[6],
                                         members[7]})
                  .ok());
  ASSERT_TRUE(engine.Start().ok());
  Rng rng(41);
  for (size_t t = 0; t < 600; ++t) {
    for (const std::string& id : members) {
      auto ack = engine.Ingest(
          {id, ProductionLevel::kPhase, static_cast<double>(t),
           MemberValue(rng, 50.0, t, id == members[2], 200, 0.002)});
      ASSERT_TRUE(ack.ok()) << ack.status().ToString();
    }
    // Shard workers drain at different speeds, so one member's last value
    // can lag another's by up to a full queue of ticks — and through that
    // skew a drifting victim can perturb a lagging bystander's reference
    // (which would, correctly, fire too). A periodic barrier bounds the
    // skew so the only-the-victim assertion below stays meaningful under
    // arbitrary scheduling (TSan slows workers by an order of magnitude).
    if (t % 16 == 15) ASSERT_TRUE(engine.Flush().ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Stop().ok());
  const std::vector<PeerDeviation> deviations = engine.PeerDeviations();
  ASSERT_FALSE(deviations.empty());
  for (const PeerDeviation& deviation : deviations) {
    EXPECT_EQ(deviation.sensor_id, members[2])
        << "group=" << deviation.group_id << " ts=" << deviation.ts
        << " value=" << deviation.value << " residual=" << deviation.residual
        << " value_z=" << deviation.value_z
        << " slope_z=" << deviation.slope_z;
  }
  EXPECT_EQ(engine.stats().peer_deviations, deviations.size());
}

/// A production with two identically-configured printers (plus one with a
/// different configuration and one with none), each carrying a nozzle
/// temperature sensor under the same name|unit role.
hierarchy::Production TwinPrinterProduction() {
  hierarchy::Production production;
  hierarchy::ProductionLine line;
  line.id = "l1";
  const ts::FeatureVector twin_cfg({"nozzle_diameter", "max_temp"},
                                   {0.4, 260.0});
  hierarchy::Machine m1{"m1", twin_cfg, {}};
  hierarchy::Machine m2{"m2", twin_cfg, {}};
  hierarchy::Machine m3{
      "m3", ts::FeatureVector({"nozzle_diameter", "max_temp"}, {0.8, 300.0}),
      {}};
  hierarchy::Machine m4{"m4", ts::FeatureVector{}, {}};
  line.machines = {m1, m2, m3, m4};
  production.lines.push_back(std::move(line));
  for (const char* machine : {"m1", "m2", "m3", "m4"}) {
    hierarchy::SensorInfo info;
    info.id = std::string(machine) + ".nozzle_temp";
    info.name = "Nozzle temperature";
    info.unit = "degC";
    info.machine_id = machine;
    EXPECT_TRUE(production.sensors.Register(info).ok());
  }
  // A role present on only one of the twins: no cross-machine peer set.
  hierarchy::SensorInfo lone;
  lone.id = "m1.bed_temp";
  lone.name = "Bed temperature";
  lone.unit = "degC";
  lone.machine_id = "m1";
  EXPECT_TRUE(production.sensors.Register(lone).ok());
  return production;
}

TEST(ConfigurationCohorts, GroupsSameRoleAcrossIdenticalMachines) {
  const hierarchy::Production production = TwinPrinterProduction();
  const auto cohorts = ConfigurationCohorts(production);
  // Exactly one cohort: the twins' nozzle sensors. m3's configuration
  // differs, m4 has none, and the bed sensor exists on one machine only.
  ASSERT_EQ(cohorts.size(), 1u);
  const auto it = cohorts.find("cfg:m1:Nozzle temperature|degC");
  ASSERT_NE(it, cohorts.end());
  EXPECT_EQ(it->second,
            (std::vector<std::string>{"m1.nozzle_temp", "m2.nozzle_temp"}));
}

TEST(ConfigurationCohorts, ToleranceWidensTheCluster) {
  hierarchy::Production production = TwinPrinterProduction();
  // Within tolerance 50, m3 (distance ~40 from the twins) joins the
  // cluster and its nozzle sensor becomes a third peer.
  const auto cohorts = ConfigurationCohorts(production, 50.0);
  const auto it = cohorts.find("cfg:m1:Nozzle temperature|degC");
  ASSERT_NE(it, cohorts.end());
  EXPECT_EQ(it->second.size(), 3u);
}

TEST(PeerGroupMonitor, ConfigurationImportRegistersCohorts) {
  PeerGroupMonitor monitor(FastOptions());
  ASSERT_TRUE(
      monitor.AddGroupsFromConfiguration(TwinPrinterProduction()).ok());
  EXPECT_EQ(monitor.num_groups(), 1u);
  EXPECT_TRUE(monitor.Tracks("m1.nozzle_temp"));
  EXPECT_TRUE(monitor.Tracks("m2.nozzle_temp"));
  EXPECT_FALSE(monitor.Tracks("m3.nozzle_temp"));
  EXPECT_FALSE(monitor.Tracks("m1.bed_temp"));
}

TEST(StreamEngine, AddPeerGroupsFromConfigurationSkipsUnregisteredSensors) {
  const hierarchy::Production production = TwinPrinterProduction();
  {
    // Only one cohort member is registered with the engine: the group
    // would be a singleton, so it is skipped entirely.
    StreamEngineOptions options;
    options.synchronous = true;
    StreamEngine engine(options);
    ASSERT_TRUE(engine.AddSensor("m1.nozzle_temp").ok());
    ASSERT_TRUE(engine.AddPeerGroupsFromConfiguration(production).ok());
    ASSERT_TRUE(engine.Start().ok());
    EXPECT_EQ(engine.stats().peer_deviations, 0u);
    ASSERT_TRUE(engine.Stop().ok());
  }
  {
    StreamEngineOptions options;
    options.synchronous = true;
    StreamEngine engine(options);
    ASSERT_TRUE(engine.AddSensor("m1.nozzle_temp").ok());
    ASSERT_TRUE(engine.AddSensor("m2.nozzle_temp").ok());
    ASSERT_TRUE(engine.AddPeerGroupsFromConfiguration(production).ok());
    ASSERT_TRUE(engine.Start().ok());
    // Drive the twins apart: the cohort group must be live and fire.
    Rng rng(53);
    for (size_t t = 0; t < 300; ++t) {
      const double healthy = 210.0 + rng.Gaussian(0.0, 0.05);
      double faulty = 210.0 + rng.Gaussian(0.0, 0.05);
      if (t >= 100) faulty *= 1.0 + 0.002 * static_cast<double>(t - 100);
      ASSERT_TRUE(engine
                      .Ingest({"m1.nozzle_temp", ProductionLevel::kPhase,
                               static_cast<double>(t), healthy})
                      .ok());
      ASSERT_TRUE(engine
                      .Ingest({"m2.nozzle_temp", ProductionLevel::kPhase,
                               static_cast<double>(t), faulty})
                      .ok());
    }
    ASSERT_TRUE(engine.Stop().ok());
    const std::vector<PeerDeviation> deviations = engine.PeerDeviations();
    ASSERT_FALSE(deviations.empty());
    // In a two-member cohort the drift is symmetric (each member is the
    // other's whole reference), so both may fire; what matters here is
    // that the drifting twin fired and the findings carry the cohort id.
    bool victim_fired = false;
    for (const PeerDeviation& deviation : deviations) {
      EXPECT_EQ(deviation.group_id, "cfg:m1:Nozzle temperature|degC");
      if (deviation.sensor_id == "m2.nozzle_temp") victim_fired = true;
    }
    EXPECT_TRUE(victim_fired);
  }
}

TEST(StreamEngine, AddPeerGroupsFromConfigurationRejectedAfterStart) {
  StreamEngineOptions options;
  options.synchronous = true;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("m1.nozzle_temp").ok());
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(
      engine.AddPeerGroupsFromConfiguration(TwinPrinterProduction()).code(),
      StatusCode::kFailedPrecondition);
  ASSERT_TRUE(engine.Stop().ok());
}

}  // namespace
}  // namespace hod::stream
