#include "detect/adapters.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"
#include "timeseries/window.h"

namespace hod::detect {

namespace {

/// SAX-backed SeriesDetector.
class SaxSeriesAdapter : public SeriesDetector {
 public:
  SaxSeriesAdapter(std::unique_ptr<SequenceDetector> inner,
                   ts::SaxOptions sax_options)
      : inner_(std::move(inner)), sax_(sax_options) {
    sax_.word_length = 0;  // 1:1 symbol-to-sample mapping
  }

  std::string name() const override { return inner_->name() + "+SAX"; }
  bool supervised() const override { return inner_->supervised(); }

  Status Train(const std::vector<ts::TimeSeries>& normal) override {
    HOD_ASSIGN_OR_RETURN(std::vector<ts::DiscreteSequence> sequences,
                         Discretize(normal));
    return inner_->Train(sequences);
  }

  Status TrainSupervised(const std::vector<ts::TimeSeries>& series,
                         const std::vector<Labels>& labels) override {
    HOD_ASSIGN_OR_RETURN(std::vector<ts::DiscreteSequence> sequences,
                         Discretize(series));
    return inner_->TrainSupervised(sequences, labels);
  }

  StatusOr<std::vector<double>> Score(
      const ts::TimeSeries& series) const override {
    HOD_ASSIGN_OR_RETURN(ts::DiscreteSequence sequence,
                         ts::ToSax(series.values(), sax_, series.name()));
    return inner_->Score(sequence);
  }

 private:
  StatusOr<std::vector<ts::DiscreteSequence>> Discretize(
      const std::vector<ts::TimeSeries>& series) const {
    std::vector<ts::DiscreteSequence> sequences;
    sequences.reserve(series.size());
    for (const auto& s : series) {
      HOD_RETURN_IF_ERROR(s.Validate());
      HOD_ASSIGN_OR_RETURN(ts::DiscreteSequence sequence,
                           ts::ToSax(s.values(), sax_, s.name()));
      sequences.push_back(std::move(sequence));
    }
    return sequences;
  }

  std::unique_ptr<SequenceDetector> inner_;
  ts::SaxOptions sax_;
};

/// Window-feature-backed SeriesDetector.
class WindowVectorSeriesAdapter : public SeriesDetector {
 public:
  WindowVectorSeriesAdapter(std::unique_ptr<VectorDetector> inner,
                            size_t window, size_t stride)
      : inner_(std::move(inner)), window_(window), stride_(stride) {}

  std::string name() const override { return inner_->name() + "+Windows"; }
  bool supervised() const override { return inner_->supervised(); }

  Status Train(const std::vector<ts::TimeSeries>& normal) override {
    std::vector<std::vector<double>> features;
    HOD_RETURN_IF_ERROR(Featurize(normal, nullptr, &features, nullptr));
    return inner_->Train(features);
  }

  Status TrainSupervised(const std::vector<ts::TimeSeries>& series,
                         const std::vector<Labels>& labels) override {
    std::vector<std::vector<double>> features;
    Labels window_labels;
    HOD_RETURN_IF_ERROR(Featurize(series, &labels, &features, &window_labels));
    return inner_->TrainSupervised(features, window_labels);
  }

  StatusOr<std::vector<double>> Score(
      const ts::TimeSeries& series) const override {
    const size_t n = series.size();
    if (n < window_) return std::vector<double>(n, 0.0);
    HOD_ASSIGN_OR_RETURN(std::vector<ts::WindowSpan> spans,
                         ts::SlidingWindows(n, window_, stride_));
    std::vector<std::vector<double>> features;
    features.reserve(spans.size());
    for (const auto& span : spans) {
      features.push_back(
          ts::ComputeWindowFeatures(series.values(), span).ToVector());
    }
    HOD_ASSIGN_OR_RETURN(std::vector<double> window_scores,
                         inner_->Score(features));
    return ts::WindowScoresToPointScores(n, spans, window_scores);
  }

 private:
  Status Featurize(const std::vector<ts::TimeSeries>& series,
                   const std::vector<Labels>* labels,
                   std::vector<std::vector<double>>* features,
                   Labels* window_labels) const {
    if (labels != nullptr && labels->size() != series.size()) {
      return Status::InvalidArgument("one label vector per series required");
    }
    for (size_t s = 0; s < series.size(); ++s) {
      HOD_RETURN_IF_ERROR(series[s].Validate());
      const size_t n = series[s].size();
      if (n < window_) continue;
      HOD_ASSIGN_OR_RETURN(std::vector<ts::WindowSpan> spans,
                           ts::SlidingWindows(n, window_, stride_));
      if (labels != nullptr && (*labels)[s].size() != n) {
        return Status::InvalidArgument("label/series length mismatch");
      }
      for (const auto& span : spans) {
        features->push_back(
            ts::ComputeWindowFeatures(series[s].values(), span).ToVector());
        if (window_labels != nullptr && labels != nullptr) {
          uint8_t any = 0;
          for (size_t i = span.begin; i < span.end; ++i) {
            if ((*labels)[s][i] != 0) {
              any = 1;
              break;
            }
          }
          window_labels->push_back(any);
        }
      }
    }
    if (features->empty()) {
      return Status::InvalidArgument("no training windows");
    }
    return Status::Ok();
  }

  std::unique_ptr<VectorDetector> inner_;
  size_t window_;
  size_t stride_;
};

/// Per-sample point adapter.
class PointVectorSeriesAdapter : public SeriesDetector {
 public:
  PointVectorSeriesAdapter(std::unique_ptr<VectorDetector> inner,
                           bool include_phase)
      : inner_(std::move(inner)), include_phase_(include_phase) {}

  std::string name() const override { return inner_->name() + "+Points"; }
  bool supervised() const override { return inner_->supervised(); }

  Status Train(const std::vector<ts::TimeSeries>& normal) override {
    std::vector<std::vector<double>> points;
    for (const auto& series : normal) {
      HOD_RETURN_IF_ERROR(series.Validate());
      Append(series, &points);
    }
    if (points.empty()) return Status::InvalidArgument("no training samples");
    return inner_->Train(points);
  }

  Status TrainSupervised(const std::vector<ts::TimeSeries>& series,
                         const std::vector<Labels>& labels) override {
    if (labels.size() != series.size()) {
      return Status::InvalidArgument("one label vector per series required");
    }
    std::vector<std::vector<double>> points;
    Labels flat;
    for (size_t s = 0; s < series.size(); ++s) {
      HOD_RETURN_IF_ERROR(series[s].Validate());
      if (labels[s].size() != series[s].size()) {
        return Status::InvalidArgument("label/series length mismatch");
      }
      Append(series[s], &points);
      flat.insert(flat.end(), labels[s].begin(), labels[s].end());
    }
    if (points.empty()) return Status::InvalidArgument("no training samples");
    return inner_->TrainSupervised(points, flat);
  }

  StatusOr<std::vector<double>> Score(
      const ts::TimeSeries& series) const override {
    std::vector<std::vector<double>> points;
    Append(series, &points);
    return inner_->Score(points);
  }

 private:
  void Append(const ts::TimeSeries& series,
              std::vector<std::vector<double>>* points) const {
    const double denom =
        series.size() > 1 ? static_cast<double>(series.size() - 1) : 1.0;
    for (size_t i = 0; i < series.size(); ++i) {
      if (include_phase_) {
        points->push_back({static_cast<double>(i) / denom, series[i]});
      } else {
        points->push_back({series[i]});
      }
    }
  }

  std::unique_ptr<VectorDetector> inner_;
  bool include_phase_;
};

/// Symbol-window-backed SequenceDetector.
class WindowVectorSequenceAdapter : public SequenceDetector {
 public:
  WindowVectorSequenceAdapter(std::unique_ptr<VectorDetector> inner,
                              size_t window)
      : inner_(std::move(inner)), window_(window) {}

  std::string name() const override { return inner_->name() + "+SymWin"; }
  bool supervised() const override { return inner_->supervised(); }

  Status Train(const std::vector<ts::DiscreteSequence>& normal) override {
    std::vector<std::vector<double>> vectors;
    HOD_RETURN_IF_ERROR(Featurize(normal, nullptr, &vectors, nullptr));
    return inner_->Train(vectors);
  }

  Status TrainSupervised(const std::vector<ts::DiscreteSequence>& sequences,
                         const std::vector<Labels>& labels) override {
    std::vector<std::vector<double>> vectors;
    Labels window_labels;
    HOD_RETURN_IF_ERROR(
        Featurize(sequences, &labels, &vectors, &window_labels));
    return inner_->TrainSupervised(vectors, window_labels);
  }

  StatusOr<std::vector<double>> Score(
      const ts::DiscreteSequence& sequence) const override {
    const size_t n = sequence.size();
    if (n < window_) return std::vector<double>(n, 0.0);
    HOD_ASSIGN_OR_RETURN(std::vector<ts::WindowSpan> spans,
                         ts::SlidingWindows(n, window_, 1));
    std::vector<std::vector<double>> vectors;
    vectors.reserve(spans.size());
    for (const auto& span : spans) {
      vectors.push_back(ToVector(sequence, span));
    }
    HOD_ASSIGN_OR_RETURN(std::vector<double> window_scores,
                         inner_->Score(vectors));
    return ts::WindowScoresToPointScores(n, spans, window_scores);
  }

 private:
  static std::vector<double> ToVector(const ts::DiscreteSequence& sequence,
                                      ts::WindowSpan span) {
    std::vector<double> v;
    v.reserve(span.size());
    for (size_t i = span.begin; i < span.end; ++i) {
      v.push_back(static_cast<double>(sequence[i]));
    }
    return v;
  }

  Status Featurize(const std::vector<ts::DiscreteSequence>& sequences,
                   const std::vector<Labels>* labels,
                   std::vector<std::vector<double>>* vectors,
                   Labels* window_labels) const {
    if (labels != nullptr && labels->size() != sequences.size()) {
      return Status::InvalidArgument(
          "one label vector per sequence required");
    }
    for (size_t s = 0; s < sequences.size(); ++s) {
      HOD_RETURN_IF_ERROR(sequences[s].Validate());
      const size_t n = sequences[s].size();
      if (n < window_) continue;
      if (labels != nullptr && (*labels)[s].size() != n) {
        return Status::InvalidArgument("label/sequence length mismatch");
      }
      HOD_ASSIGN_OR_RETURN(std::vector<ts::WindowSpan> spans,
                           ts::SlidingWindows(n, window_, 1));
      for (const auto& span : spans) {
        vectors->push_back(ToVector(sequences[s], span));
        if (window_labels != nullptr && labels != nullptr) {
          uint8_t any = 0;
          for (size_t i = span.begin; i < span.end; ++i) {
            if ((*labels)[s][i] != 0) {
              any = 1;
              break;
            }
          }
          window_labels->push_back(any);
        }
      }
    }
    if (vectors->empty()) {
      return Status::InvalidArgument("no training windows");
    }
    return Status::Ok();
  }

  std::unique_ptr<VectorDetector> inner_;
  size_t window_;
};

/// Quantized-point-stream-backed VectorDetector.
class SequenceVectorAdapter : public VectorDetector {
 public:
  SequenceVectorAdapter(std::unique_ptr<SequenceDetector> inner, int alphabet)
      : inner_(std::move(inner)), alphabet_(alphabet) {}

  std::string name() const override { return inner_->name() + "+Quantized"; }
  bool supervised() const override { return inner_->supervised(); }

  Status Train(const std::vector<std::vector<double>>& data) override {
    HOD_RETURN_IF_ERROR(FitBreakpoints(data));
    HOD_ASSIGN_OR_RETURN(ts::DiscreteSequence sequence, Quantize(data));
    return inner_->Train({sequence});
  }

  Status TrainSupervised(const std::vector<std::vector<double>>& data,
                         const Labels& labels) override {
    HOD_RETURN_IF_ERROR(FitBreakpoints(data));
    HOD_ASSIGN_OR_RETURN(ts::DiscreteSequence sequence, Quantize(data));
    return inner_->TrainSupervised({sequence}, {labels});
  }

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override {
    HOD_ASSIGN_OR_RETURN(ts::DiscreteSequence sequence, Quantize(data));
    return inner_->Score(sequence);
  }

 private:
  Status FitBreakpoints(const std::vector<std::vector<double>>& data) {
    if (data.empty()) return Status::InvalidArgument("empty training data");
    std::vector<double> values;
    values.reserve(data.size());
    for (const auto& row : data) {
      if (row.empty()) return Status::InvalidArgument("empty point");
      double sq = 0.0;
      for (double v : row) sq += v * v;
      values.push_back(row.size() == 1 ? row[0] : std::sqrt(sq));
    }
    breakpoints_.clear();
    for (int b = 1; b < alphabet_; ++b) {
      breakpoints_.push_back(ts::Quantile(
          values, static_cast<double>(b) / static_cast<double>(alphabet_)));
    }
    return Status::Ok();
  }

  StatusOr<ts::DiscreteSequence> Quantize(
      const std::vector<std::vector<double>>& data) const {
    if (breakpoints_.empty() && alphabet_ > 1) {
      return Status::FailedPrecondition("adapter not trained");
    }
    ts::DiscreteSequence sequence("points", alphabet_);
    for (const auto& row : data) {
      if (row.empty()) return Status::InvalidArgument("empty point");
      double sq = 0.0;
      for (double v : row) sq += v * v;
      const double value = row.size() == 1 ? row[0] : std::sqrt(sq);
      const auto it =
          std::upper_bound(breakpoints_.begin(), breakpoints_.end(), value);
      sequence.Append(static_cast<ts::Symbol>(it - breakpoints_.begin()));
    }
    return sequence;
  }

  std::unique_ptr<SequenceDetector> inner_;
  int alphabet_;
  std::vector<double> breakpoints_;
};

/// Index-ordered-stream-backed VectorDetector.
class SeriesVectorAdapter : public VectorDetector {
 public:
  explicit SeriesVectorAdapter(std::unique_ptr<SeriesDetector> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name() + "+Stream"; }
  bool supervised() const override { return inner_->supervised(); }

  Status Train(const std::vector<std::vector<double>>& data) override {
    HOD_ASSIGN_OR_RETURN(ts::TimeSeries series, ToSeries(data));
    return inner_->Train({series});
  }

  Status TrainSupervised(const std::vector<std::vector<double>>& data,
                         const Labels& labels) override {
    HOD_ASSIGN_OR_RETURN(ts::TimeSeries series, ToSeries(data));
    return inner_->TrainSupervised({series}, {labels});
  }

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override {
    HOD_ASSIGN_OR_RETURN(ts::TimeSeries series, ToSeries(data));
    return inner_->Score(series);
  }

 private:
  static StatusOr<ts::TimeSeries> ToSeries(
      const std::vector<std::vector<double>>& data) {
    ts::TimeSeries series("points", 0.0, 1.0);
    for (const auto& row : data) {
      if (row.empty()) return Status::InvalidArgument("empty point");
      if (row.size() == 1) {
        series.Append(row[0]);
      } else {
        double sq = 0.0;
        for (double v : row) sq += v * v;
        series.Append(std::sqrt(sq));
      }
    }
    return series;
  }

  std::unique_ptr<SeriesDetector> inner_;
};

}  // namespace

std::unique_ptr<VectorDetector> MakeVectorFromSeries(
    std::unique_ptr<SeriesDetector> inner) {
  return std::make_unique<SeriesVectorAdapter>(std::move(inner));
}

std::unique_ptr<SeriesDetector> MakeSeriesFromSequence(
    std::unique_ptr<SequenceDetector> inner, ts::SaxOptions sax_options) {
  return std::make_unique<SaxSeriesAdapter>(std::move(inner), sax_options);
}

std::unique_ptr<SeriesDetector> MakeSeriesFromVectorWindows(
    std::unique_ptr<VectorDetector> inner, size_t window, size_t stride) {
  return std::make_unique<WindowVectorSeriesAdapter>(std::move(inner), window,
                                                     stride);
}

std::unique_ptr<SeriesDetector> MakeSeriesFromVectorPoints(
    std::unique_ptr<VectorDetector> inner, bool include_phase) {
  return std::make_unique<PointVectorSeriesAdapter>(std::move(inner),
                                                    include_phase);
}

std::unique_ptr<SequenceDetector> MakeSequenceFromVector(
    std::unique_ptr<VectorDetector> inner, size_t window) {
  return std::make_unique<WindowVectorSequenceAdapter>(std::move(inner),
                                                       window);
}

std::unique_ptr<VectorDetector> MakeVectorFromSequence(
    std::unique_ptr<SequenceDetector> inner, int alphabet) {
  return std::make_unique<SequenceVectorAdapter>(std::move(inner), alphabet);
}

}  // namespace hod::detect
