#include "sim/datasets.h"

#include <gtest/gtest.h>

namespace hod::sim {
namespace {

TEST(PointDataset, SizesAndLabels) {
  PointDatasetOptions options;
  options.train_size = 100;
  options.test_size = 50;
  options.dim = 4;
  auto dataset = GeneratePointDataset(options).value();
  EXPECT_EQ(dataset.train.size(), 100u);
  EXPECT_EQ(dataset.train_labels.size(), 100u);
  EXPECT_EQ(dataset.test.size(), 50u);
  for (const auto& point : dataset.train) EXPECT_EQ(point.size(), 4u);
}

TEST(PointDataset, AnomalyRateApproximatelyRespected) {
  PointDatasetOptions options;
  options.train_size = 4000;
  options.test_size = 0;
  options.anomaly_rate = 0.1;
  auto dataset = GeneratePointDataset(options).value();
  size_t positives = 0;
  for (uint8_t label : dataset.train_labels) positives += label;
  EXPECT_NEAR(static_cast<double>(positives) / 4000.0, 0.1, 0.02);
}

TEST(PointDataset, Deterministic) {
  PointDatasetOptions options;
  options.seed = 55;
  auto a = GeneratePointDataset(options).value();
  auto b = GeneratePointDataset(options).value();
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test_labels, b.test_labels);
}

TEST(PointDataset, RejectsZeroDim) {
  PointDatasetOptions options;
  options.dim = 0;
  EXPECT_FALSE(GeneratePointDataset(options).ok());
}

TEST(SequenceDataset, ShapesAndValidity) {
  auto dataset = GenerateSequenceDataset(SequenceDatasetOptions{}).value();
  EXPECT_EQ(dataset.train.size(), 12u);
  EXPECT_EQ(dataset.test.size(), 8u);
  for (const auto& seq : dataset.train) {
    EXPECT_TRUE(seq.Validate().ok());
    EXPECT_EQ(seq.size(), 256u);
  }
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    EXPECT_EQ(dataset.test_labels[s].size(), dataset.test[s].size());
  }
}

TEST(SequenceDataset, EveryTestSequenceHasAnomalies) {
  auto dataset = GenerateSequenceDataset(SequenceDatasetOptions{}).value();
  for (const auto& labels : dataset.test_labels) {
    size_t positives = 0;
    for (uint8_t flag : labels) positives += flag;
    EXPECT_GT(positives, 0u);
  }
}

TEST(SequenceDataset, SomeTrainSequencesLabeled) {
  auto dataset = GenerateSequenceDataset(SequenceDatasetOptions{}).value();
  size_t labeled_sequences = 0;
  for (const auto& labels : dataset.train_labels) {
    for (uint8_t flag : labels) {
      if (flag != 0) {
        ++labeled_sequences;
        break;
      }
    }
  }
  EXPECT_GT(labeled_sequences, 0u);  // supervised family needs positives
}

TEST(SequenceDataset, RejectsTinyAlphabet) {
  SequenceDatasetOptions options;
  options.alphabet = 2;
  EXPECT_FALSE(GenerateSequenceDataset(options).ok());
}

TEST(SeriesDataset, ShapesAndLabels) {
  auto dataset = GenerateSeriesDataset(SeriesDatasetOptions{}).value();
  EXPECT_EQ(dataset.train.size(), 8u);
  EXPECT_EQ(dataset.test.size(), 6u);
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    EXPECT_EQ(dataset.test_labels[s].size(), dataset.test[s].size());
    size_t positives = 0;
    for (uint8_t flag : dataset.test_labels[s]) positives += flag;
    EXPECT_GT(positives, 0u);
  }
  for (const auto& labels : dataset.train_labels) {
    for (uint8_t flag : labels) EXPECT_EQ(flag, 0);
  }
}

TEST(SeriesDataset, OnlyTypeRestrictsInjections) {
  SeriesDatasetOptions options;
  static const OutlierType kType = OutlierType::kLevelShift;
  options.only_type = &kType;
  options.anomalies_per_series = 1;
  auto dataset = GenerateSeriesDataset(options).value();
  // A level shift moves the series tail permanently: last sample differs
  // from a fresh un-shifted base by roughly the magnitude.
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    size_t positives = 0;
    for (uint8_t flag : dataset.test_labels[s]) positives += flag;
    EXPECT_GT(positives, 0u);
    EXPECT_LE(positives, 8u);  // level-shift label span
  }
}

TEST(SeriesDataset, RejectsTooShort) {
  SeriesDatasetOptions options;
  options.length = 10;
  EXPECT_FALSE(GenerateSeriesDataset(options).ok());
}

TEST(WholeSeriesDataset, LabelsMatchStructure) {
  auto dataset = GenerateWholeSeriesDataset(5, 10, 0.5, 3).value();
  EXPECT_EQ(dataset.train.size(), 5u);
  EXPECT_EQ(dataset.test.size(), 10u);
  EXPECT_EQ(dataset.test_labels.size(), 10u);
  size_t positives = 0;
  for (uint8_t flag : dataset.test_labels) positives += flag;
  EXPECT_GT(positives, 0u);
  EXPECT_LT(positives, 10u);
}

}  // namespace
}  // namespace hod::sim
