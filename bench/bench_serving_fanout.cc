// E14 — read-side serving tier fan-out (hod::serve).
//
// Two claims gated by CI:
//
//  1. Ingest isolation: attaching a SnapshotHub in async mode and fanning
//     snapshots to 10,000 subscribers must not slow the collector. The
//     publish hook costs one lock-free ring push regardless of reader
//     count; slow readers drop (newest-wins at the intake,
//     drop-to-keyframe at each subscriber queue) instead of exerting
//     backpressure. Measured as ingest throughput with 10k subscribers
//     over the zero-subscriber baseline: `retention`, floored at 0.95.
//
//  2. Delta fidelity: a subscriber that keeps pace reconstructs, from the
//     keyframe + delta stream alone, a snapshot byte-identical to what
//     the engine published — checked against the engine's own Snapshot()
//     after every publish of a real scored stream.
//
// Emits the human-readable table on stdout and BENCH_SERVE.json in the
// working directory for the CI trajectory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "serve/codec.h"
#include "serve/hub.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace {

using hod::Rng;
using hod::hierarchy::ProductionLevel;
using hod::serve::SnapshotHub;
using hod::serve::SnapshotHubOptions;
using hod::serve::Subscription;
using hod::stream::StreamEngine;
using hod::stream::StreamEngineOptions;
using Clock = std::chrono::steady_clock;

constexpr size_t kSensors = 8;
// Long enough that each timed point runs for a few hundred ms: the
// fan-out's fixed startup work (real pushes until every parked queue
// fills) is bounded, so a longer run measures the steady state where
// full-queue skips dominate — and the two noisy rates divide stably.
constexpr size_t kSamplesPerSensor = 240000;
constexpr size_t kFanoutSubscribers = 10000;

std::string SensorId(size_t s) { return "s" + std::to_string(s); }

StreamEngineOptions EngineOptions() {
  StreamEngineOptions options;
  options.synchronous = true;  // pure ingest-path cost, no queue noise
  options.monitor.warmup = 64;
  options.snapshot_every = 256;  // ~25 publishes/s here, still far above a
                                 // real dashboard refresh cadence
  options.health.staleness_timeout = 0.0;  // sensors are fed round-robin
  return options;
}

struct RunStats {
  uint64_t publishes = 0;
  uint64_t processed = 0;
  uint64_t intake_dropped = 0;
};

/// One timed run: every sensor scored for kSamplesPerSensor ticks with
/// the hub attached and `subscribers` registered readers. Returns
/// samples/sec of the ingest loop.
double TimedRun(size_t subscribers, uint64_t seed,
                RunStats* stats = nullptr) {
  SnapshotHubOptions hub_options;
  hub_options.async = true;  // collector pays one ring push per publish
  hub_options.keyframe_every = 32;
  // Depth 2 is the latest-state dashboard shape: one update being applied,
  // one pending. Parked readers transition to the cheap awaiting-keyframe
  // skip after two publishes instead of eight.
  hub_options.subscriber_queue_capacity = 2;
  SnapshotHub hub(hub_options);
  StreamEngineOptions options = EngineOptions();
  options.snapshot_sink = [&hub](const hod::stream::EngineSnapshot& snap) {
    hub.Publish(snap);
  };
  StreamEngine engine(options);
  for (size_t s = 0; s < kSensors; ++s) {
    if (!engine.AddSensor(SensorId(s), ProductionLevel::kPhase).ok()) {
      return 0.0;
    }
  }
  if (!engine.Start().ok()) return 0.0;

  // Subscribers attach after the engine is laid out, as they would in a
  // live deployment — the engine's hot state occupies the same heap
  // region in the 0-subscriber and 10k-subscriber runs, so the ratio
  // compares fan-out cost, not allocator layout.
  std::vector<std::unique_ptr<Subscription>> subs;
  subs.reserve(subscribers);
  for (size_t i = 0; i < subscribers; ++i) subs.push_back(hub.Subscribe());

  Rng rng(seed);
  const auto start = Clock::now();
  for (size_t t = 0; t < kSamplesPerSensor; ++t) {
    for (size_t s = 0; s < kSensors; ++s) {
      const double value = (t % 997 == 996)
                               ? 30.0
                               : 50.0 + rng.Gaussian(0.0, 0.25);
      auto ack = engine.Ingest({SensorId(s), ProductionLevel::kPhase,
                                static_cast<double>(t), value});
      if (!ack.ok()) return 0.0;
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  (void)engine.Stop();
  hub.Quiesce();
  if (stats != nullptr) {
    const auto hub_stats = hub.Stats();
    stats->publishes = hub_stats.publishes_seen;
    stats->processed = hub_stats.publishes_processed;
    stats->intake_dropped = hub_stats.intake_dropped;
  }
  return static_cast<double>(kSensors * kSamplesPerSensor) / seconds;
}

/// Delta fidelity over a real scored stream: a sync hub (deterministic
/// interleaving) with one draining subscriber; after every publish the
/// reconstructed view must equal the engine's latest snapshot
/// byte-for-byte.
bool DeltaParity(size_t* checks_out) {
  SnapshotHubOptions hub_options;
  hub_options.keyframe_every = 16;
  hub_options.subscriber_queue_capacity = 64;
  SnapshotHub hub(hub_options);
  auto sub = hub.Subscribe();

  StreamEngineOptions options = EngineOptions();
  options.snapshot_every = 16;
  options.snapshot_sink = [&hub](const hod::stream::EngineSnapshot& snap) {
    hub.Publish(snap);
  };
  StreamEngine engine(options);
  for (size_t s = 0; s < kSensors; ++s) {
    if (!engine.AddSensor(SensorId(s), ProductionLevel::kPhase).ok()) {
      return false;
    }
  }
  if (!engine.Start().ok()) return false;

  Rng rng(17);
  size_t checks = 0;
  bool all_equal = true;
  for (size_t t = 0; t < 4000; ++t) {
    for (size_t s = 0; s < kSensors; ++s) {
      const double value = (t % 211 == 210)
                               ? 35.0
                               : 50.0 + rng.Gaussian(0.0, 0.25);
      auto ack = engine.Ingest({SensorId(s), ProductionLevel::kPhase,
                                static_cast<double>(t), value});
      if (!ack.ok()) return false;
    }
    if (sub->Drain() > 0 && sub->has_view()) {
      ++checks;
      if (hod::serve::EncodeSnapshotBytes(sub->View()) !=
          hod::serve::EncodeSnapshotBytes(engine.Snapshot())) {
        all_equal = false;
      }
    }
  }
  (void)engine.Stop();
  sub->Drain();
  if (sub->has_view()) {
    ++checks;
    if (hod::serve::EncodeSnapshotBytes(sub->View()) !=
        hod::serve::EncodeSnapshotBytes(engine.Snapshot())) {
      all_equal = false;
    }
  }
  *checks_out = checks;
  return all_equal && checks > 0;
}

}  // namespace

int main() {
  std::printf("E14: read-side serving tier fan-out\n");
  std::printf("sensors %zu, samples/sensor %zu, fan-out %zu subscribers\n\n",
              kSensors, kSamplesPerSensor, kFanoutSubscribers);

  size_t parity_checks = 0;
  const bool parity = DeltaParity(&parity_checks);
  std::printf("delta parity: %zu reconstructions, %s\n", parity_checks,
              parity ? "all byte-identical" : "MISMATCH");

  // Each rep runs baseline and fan-out back to back with the *same* seed
  // (identical sample stream; only the subscriber count varies) and takes
  // their ratio: adjacent runs share the host's noise state, so the pair
  // cancels most of it. The gate is the median pairwise ratio — one noisy
  // pair cannot flip it in either direction, while a real fan-out
  // regression shifts every pair. Nine reps: a multi-second host-noise
  // burst poisons a ratio only when it starts or ends mid-pair, and the
  // median needs five poisoned pairs to move below the floor.
  double baseline = 0.0;
  double fanout = 0.0;
  RunStats fan_stats;
  std::vector<double> ratios;
  for (uint64_t rep = 0; rep < 9; ++rep) {
    const double base_rate = TimedRun(0, 100 + rep);
    baseline = std::max(baseline, base_rate);
    RunStats stats;
    const double rate = TimedRun(kFanoutSubscribers, 100 + rep, &stats);
    if (rate > fanout) {
      fanout = rate;
      fan_stats = stats;
    }
    if (base_rate > 0.0) ratios.push_back(rate / base_rate);
    std::printf("  rep %llu: baseline %.0f, fanout %.0f, ratio %.3f\n",
                static_cast<unsigned long long>(rep), base_rate, rate,
                base_rate > 0.0 ? rate / base_rate : 0.0);
  }
  std::sort(ratios.begin(), ratios.end());
  const double retention =
      ratios.empty() ? 0.0 : ratios[ratios.size() / 2];

  std::printf("ingest, 0 subscribers      %12.0f samples/s (best rep)\n",
              baseline);
  std::printf("ingest, %zu subscribers %12.0f samples/s (best rep)\n",
              kFanoutSubscribers, fanout);
  std::printf("retention (median ratio)   %12.3f  (floor 0.95)\n", retention);
  std::printf("publishes %llu, fanned out %llu, coalesced at intake %llu\n",
              static_cast<unsigned long long>(fan_stats.publishes),
              static_cast<unsigned long long>(fan_stats.processed),
              static_cast<unsigned long long>(fan_stats.intake_dropped));

  std::ofstream json("BENCH_SERVE.json");
  json << "{\n  \"experiment\": \"serving_fanout\",\n"
       << "  \"sensors\": " << kSensors << ",\n"
       << "  \"samples_per_sensor\": " << kSamplesPerSensor << ",\n"
       << "  \"subscribers\": " << kFanoutSubscribers << ",\n"
       << "  \"baseline_per_sec\": " << static_cast<uint64_t>(baseline)
       << ",\n"
       << "  \"fanout_per_sec\": " << static_cast<uint64_t>(fanout) << ",\n"
       << "  \"retention\": " << retention << ",\n"
       << "  \"retention_floor\": 0.95,\n"
       << "  \"delta_parity_checks\": " << parity_checks << ",\n"
       << "  \"delta_parity\": " << (parity ? "true" : "false") << "\n"
       << "}\n";
  json.close();
  std::printf("\nWrote BENCH_SERVE.json\n");
  return parity ? 0 : 1;
}
