#ifndef HOD_TESTS_DETECTOR_TEST_UTIL_H_
#define HOD_TESTS_DETECTOR_TEST_UTIL_H_

// Shared fixtures for detector tests: canonical small datasets with known
// anomalies, plus assertion helpers on score vectors.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "eval/metrics.h"
#include "sim/datasets.h"

namespace hod::detect_test {

/// All scores finite and within [0, 1].
inline void ExpectScoresInUnitInterval(const std::vector<double>& scores) {
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

/// Mean score over labeled-anomalous positions must exceed the mean over
/// normal positions by `margin`.
inline void ExpectAnomaliesScoreHigher(const std::vector<double>& scores,
                                       const std::vector<uint8_t>& labels,
                                       double margin = 0.1) {
  ASSERT_EQ(scores.size(), labels.size());
  double anomalous_sum = 0.0;
  size_t anomalous_count = 0;
  double normal_sum = 0.0;
  size_t normal_count = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] != 0) {
      anomalous_sum += scores[i];
      ++anomalous_count;
    } else {
      normal_sum += scores[i];
      ++normal_count;
    }
  }
  ASSERT_GT(anomalous_count, 0u);
  ASSERT_GT(normal_count, 0u);
  const double anomalous_mean =
      anomalous_sum / static_cast<double>(anomalous_count);
  const double normal_mean = normal_sum / static_cast<double>(normal_count);
  EXPECT_GT(anomalous_mean, normal_mean + margin)
      << "anomalous mean " << anomalous_mean << " vs normal mean "
      << normal_mean;
}

/// Canonical datasets (fixed seeds so failures are reproducible).
inline sim::PointDataset CanonicalPoints() {
  sim::PointDatasetOptions options;
  options.seed = 101;
  return sim::GeneratePointDataset(options).value();
}

inline sim::SequenceDataset CanonicalSequences() {
  sim::SequenceDatasetOptions options;
  options.seed = 102;
  return sim::GenerateSequenceDataset(options).value();
}

/// Noise-free variant: every rare word is a genuine anomaly. Used for
/// frequency/dictionary detectors that by design cannot distinguish
/// benign rare events from injected ones.
inline sim::SequenceDataset CleanSequences() {
  sim::SequenceDatasetOptions options;
  options.seed = 104;
  options.benign_substitution_rate = 0.0;
  return sim::GenerateSequenceDataset(options).value();
}

/// 1-D point dataset where displacement is always visible in the value
/// itself (for strictly univariate techniques like histogram deviants).
inline sim::PointDataset CanonicalPoints1D() {
  sim::PointDatasetOptions options;
  options.seed = 105;
  options.dim = 1;
  return sim::GeneratePointDataset(options).value();
}

inline sim::SeriesDataset CanonicalSeries() {
  sim::SeriesDatasetOptions options;
  options.seed = 103;
  return sim::GenerateSeriesDataset(options).value();
}

}  // namespace hod::detect_test

#endif  // HOD_TESTS_DETECTOR_TEST_UTIL_H_
