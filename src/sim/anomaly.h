#ifndef HOD_SIM_ANOMALY_H_
#define HOD_SIM_ANOMALY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace hod::sim {

/// The four classic temporal outlier types of the paper's Fig. 1
/// (Fox 1972): how a disturbance of magnitude delta enters a series.
enum class OutlierType {
  /// Additive outlier: an isolated spike at one sample.
  kAdditive,
  /// Innovative outlier: a shock entering the process dynamics, decaying
  /// through the AR structure (delta * phi^k).
  kInnovative,
  /// Temporary change: an exponential-decay bump (delta * decay^k).
  kTemporaryChange,
  /// Level shift: a permanent step of height delta.
  kLevelShift,
};

/// Short name as printed in Fig. 1, e.g. "Additive Outlier".
std::string_view OutlierTypeName(OutlierType type);

/// All four types in figure order.
const std::vector<OutlierType>& AllOutlierTypes();

/// Parameters of one injection.
struct InjectionSpec {
  OutlierType type = OutlierType::kAdditive;
  /// Sample index where the disturbance starts.
  size_t position = 0;
  /// Magnitude in absolute units (callers typically pass k * sigma).
  double magnitude = 1.0;
  /// AR(1) coefficient of the underlying process (innovative outliers
  /// propagate with it).
  double ar_coefficient = 0.7;
  /// Decay rate of temporary changes.
  double decay = 0.8;
};

/// Adds the disturbance described by `spec` to `values` and marks the
/// affected samples in `labels` (resized to values.size() when needed).
/// A sample is labeled anomalous while the disturbance contributes more
/// than `label_threshold_fraction` of its peak magnitude; level shifts
/// label `level_shift_label_span` samples from the step (the *change* is
/// the anomaly, not the new regime). Errors when position is out of range.
struct InjectionLabeling {
  double label_threshold_fraction = 0.3;
  size_t level_shift_label_span = 8;
};
Status Inject(const InjectionSpec& spec, std::vector<double>& values,
              std::vector<uint8_t>& labels,
              const InjectionLabeling& labeling = {});

}  // namespace hod::sim

#endif  // HOD_SIM_ANOMALY_H_
