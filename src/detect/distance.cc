#include "detect/distance.h"

namespace hod::detect {

StatusOr<double> SquaredDistance(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return Status::InvalidArgument("distance kernel dimension mismatch");
  }
  return SquaredDistance(a.data(), b.data(), a.size());
}

StatusOr<double> Distance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  HOD_ASSIGN_OR_RETURN(double sq, SquaredDistance(a, b));
  return std::sqrt(sq);
}

}  // namespace hod::detect
