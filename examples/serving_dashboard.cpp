// Serving dashboard: the read-side tier between one streaming engine and
// many dashboards.
//
// The StreamEngine publishes EngineSnapshots into a SnapshotHub; the hub
// delta-encodes consecutive snapshots and fans them out to subscribers
// through bounded per-subscriber queues. A dashboard that keeps up
// receives small deltas; one that reconnects late or falls behind is
// resynced with a full keyframe instead of ever stalling the collector.
// On top of the hub's per-level history rings, a QueryService answers
// OLAP roll-ups ("which 30-second window went bad, and at which level?")
// with an epoch-stamped cache that any new publish invalidates.
//
// Deterministic synchronous configuration so the output is identical
// across runs; the async hub (dedicated fan-out thread) drives the same
// code in production — see bench_serving_fanout.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "serve/hub.h"
#include "serve/query.h"
#include "stream/engine.h"
#include "util/rng.h"

int main() {
  using namespace hod;
  using hierarchy::ProductionLevel;

  // The hub consumes the engine's publish stream once, whatever the
  // subscriber count. keyframe_every=8: a full snapshot every 8th
  // publish, deltas in between.
  serve::SnapshotHubOptions hub_options;
  hub_options.keyframe_every = 8;
  hub_options.subscriber_queue_capacity = 4;
  serve::SnapshotHub hub(hub_options);

  stream::StreamEngineOptions options;
  options.synchronous = true;  // deterministic demo; async hub in prod
  options.monitor.warmup = 100;
  options.snapshot_every = 5;
  options.health.staleness_timeout = 0.0;
  options.snapshot_sink = [&hub](const stream::EngineSnapshot& snapshot) {
    hub.Publish(snapshot);
  };
  stream::StreamEngine engine(options);
  engine.AddSensor("extruder.nozzle_temp", ProductionLevel::kPhase);
  engine.AddSensor("extruder.bed_temp", ProductionLevel::kPhase);
  engine.Start();

  // A dashboard that is online from the start and drains every tick...
  std::unique_ptr<serve::Subscription> live = hub.Subscribe();
  // ...and one that subscribes mid-run, after state already exists.
  std::unique_ptr<serve::Subscription> late;

  // Clean process around 60 degC, with a misbehaving stretch on the
  // nozzle channel between t=600 and t=640.
  Rng rng(42);
  for (size_t t = 0; t < 1000; ++t) {
    const double ts = static_cast<double>(t);
    double nozzle = 60.0 + rng.Gaussian(0.0, 0.4);
    if (t >= 600 && t < 640) nozzle += 6.0;
    engine.Ingest({"extruder.nozzle_temp", ProductionLevel::kPhase, ts, nozzle});
    engine.Ingest({"extruder.bed_temp", ProductionLevel::kPhase, ts,
                   60.0 + rng.Gaussian(0.0, 0.4)});
    live->Drain();
    if (t == 500) late = hub.Subscribe();  // seeded with a keyframe
    if (late) late->Drain();
  }
  engine.Flush();
  live->Drain();
  late->Drain();

  const auto hub_stats = hub.Stats();
  std::printf("hub: %llu publishes -> %llu keyframes + %llu deltas encoded\n",
              static_cast<unsigned long long>(hub_stats.publishes_processed),
              static_cast<unsigned long long>(hub_stats.keyframes_encoded),
              static_cast<unsigned long long>(hub_stats.deltas_encoded));
  std::printf("live dashboard: %llu keyframes, %llu deltas applied, "
              "view at sequence %llu\n",
              static_cast<unsigned long long>(live->keyframes_applied()),
              static_cast<unsigned long long>(live->deltas_applied()),
              static_cast<unsigned long long>(live->View().sequence));
  std::printf("late dashboard: %llu keyframes, %llu deltas applied, "
              "view at sequence %llu\n",
              static_cast<unsigned long long>(late->keyframes_applied()),
              static_cast<unsigned long long>(late->deltas_applied()),
              static_cast<unsigned long long>(late->View().sequence));
  if (live->View().sequence != late->View().sequence) {
    std::printf("ERROR: dashboards diverged\n");
    return 1;
  }

  // Drill down: which 100-second window carried the outliers, per level?
  serve::QueryService queries(&hub);
  serve::RollupQuery query;
  query.start = 0.0;
  query.end = 1000.0;
  query.bucket_width = 100.0;
  auto rollup = queries.Rollup(query);
  if (!rollup.ok()) {
    std::printf("ERROR: rollup failed: %s\n",
                std::string(rollup.status().message()).c_str());
    return 1;
  }
  std::printf("\nroll-up over [0, 1000) in 100s buckets (epoch %llu):\n",
              static_cast<unsigned long long>(rollup.value().epoch));
  for (const serve::RollupCell& cell : rollup.value().cells) {
    if (cell.outliers <= 0.0) continue;
    std::printf("  level %d, t=[%4.0f, %4.0f): %5.1f outliers, score %.2f%s\n",
                cell.level, cell.bucket_start,
                cell.bucket_start + query.bucket_width, cell.outliers,
                cell.score, cell.anomalous ? "  << anomalous" : "");
  }

  // The same query again is a cache hit at the same epoch: no publish
  // happened in between.
  auto again = queries.Rollup(query);
  std::printf("repeat query: cache_hit=%s (hits %llu, misses %llu)\n",
              again.ok() && again.value().cache_hit ? "true" : "false",
              static_cast<unsigned long long>(queries.cache_hits()),
              static_cast<unsigned long long>(queries.cache_misses()));

  engine.Stop();
  return 0;
}
