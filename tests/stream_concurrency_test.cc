// Multi-threaded smoke tests for hod::stream — these are the tests the CI
// ThreadSanitizer job runs. Assertions avoid timing-dependent quantities:
// per-sensor results are deterministic because each sensor's samples are
// produced by one thread and scored by one worker, in order.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/monitor.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace hod::stream {
namespace {

using hierarchy::ProductionLevel;

/// Per-sensor deterministic stream: stationary noise plus one fault burst
/// at a sensor-dependent position.
std::vector<double> SensorStream(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  double noise = 0.0;
  const size_t fault_at = 300 + static_cast<size_t>(seed % 7) * 50;
  for (size_t t = 0; t < n; ++t) {
    noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
    double value = 50.0 + noise;
    if (t >= fault_at && t < fault_at + 12) value += 6.0;
    values.push_back(value);
  }
  return values;
}

std::string SensorId(size_t i) { return "sensor_" + std::to_string(i); }

TEST(StreamConcurrency, MultiProducerParityWithSerialReference) {
  constexpr size_t kSensors = 8;
  constexpr size_t kProducers = 4;
  constexpr size_t kSamplesPerSensor = 1200;

  StreamEngineOptions options;
  options.num_shards = 4;
  options.queue_capacity = 256;
  options.max_batch = 32;
  options.monitor.warmup = 64;
  StreamEngine engine(options);
  for (size_t i = 0; i < kSensors; ++i) {
    ASSERT_TRUE(engine.AddSensor(SensorId(i), ProductionLevel::kPhase).ok());
  }
  ASSERT_TRUE(engine.Start().ok());

  // Each producer owns a disjoint set of sensors, so per-sensor sample
  // order is well-defined.
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, p] {
      for (size_t i = p; i < kSensors; i += kProducers) {
        const std::vector<double> values = SensorStream(i + 1, kSamplesPerSensor);
        for (size_t t = 0; t < values.size(); ++t) {
          auto ack = engine.Ingest({SensorId(i), ProductionLevel::kPhase,
                                    static_cast<double>(t), values[t]});
          ASSERT_TRUE(ack.ok()) << ack.status().ToString();
        }
      }
    });
  }
  for (auto& producer : producers) producer.join();
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_TRUE(engine.Stop().ok());

  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, kSensors * kSamplesPerSensor);
  EXPECT_EQ(stats.scored, kSensors * kSamplesPerSensor)
      << "Stop() must drain every queue";
  EXPECT_EQ(stats.dropped, 0u) << "kBlock loses nothing";
  EXPECT_EQ(stats.rejected_total(), 0u);

  // Every sensor's monitor must agree exactly with a serial reference run:
  // the sharded engine may not reorder any sensor's samples.
  uint64_t total_alarms = 0;
  for (size_t i = 0; i < kSensors; ++i) {
    core::OnlineMonitor reference(options.monitor);
    for (double value : SensorStream(i + 1, kSamplesPerSensor)) {
      ASSERT_TRUE(reference.Push(value).ok());
    }
    auto probe = engine.Probe(SensorId(i));
    ASSERT_TRUE(probe.ok()) << probe.status().ToString();
    EXPECT_EQ(probe->samples_seen, kSamplesPerSensor) << SensorId(i);
    EXPECT_EQ(probe->alarms_raised, reference.alarms_raised()) << SensorId(i);
    EXPECT_EQ(probe->alarm, reference.alarm()) << SensorId(i);
    total_alarms += probe->alarms_raised;
  }
  EXPECT_GE(total_alarms, kSensors) << "every fault burst must alarm";
  EXPECT_EQ(stats.alarms_raised, total_alarms);

  // The collector saw the alarms too.
  EngineSnapshot snapshot = engine.Snapshot();
  EXPECT_GT(snapshot.sequence, 0u);
  const LevelOutlierState& phase =
      snapshot.levels[hierarchy::LevelValue(ProductionLevel::kPhase) - 1];
  EXPECT_EQ(phase.alarms_raised, total_alarms);
  EXPECT_FALSE(engine.Episodes().empty());
}

TEST(StreamConcurrency, FlushMakesCountersExactMidStream) {
  StreamEngineOptions options;
  options.num_shards = 2;
  options.queue_capacity = 64;
  options.monitor.warmup = 32;
  // Constant-value feeds would trip the flatline quarantine; this test is
  // about drain accounting only.
  options.health.enabled = false;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("a").ok());
  ASSERT_TRUE(engine.AddSensor("b").ok());
  ASSERT_TRUE(engine.Start().ok());
  for (size_t t = 0; t < 500; ++t) {
    ASSERT_TRUE(engine
                    .Ingest({"a", ProductionLevel::kPhase,
                             static_cast<double>(t), 50.0})
                    .ok());
    ASSERT_TRUE(engine
                    .Ingest({"b", ProductionLevel::kPhase,
                             static_cast<double>(t), 60.0})
                    .ok());
  }
  ASSERT_TRUE(engine.Flush().ok());
  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, 1000u);
  EXPECT_EQ(stats.scored, 1000u) << "Flush waits for full drain";
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(StreamConcurrency, DropOldestShedsLoadButTerminates) {
  StreamEngineOptions options;
  options.num_shards = 2;
  options.queue_capacity = 4;  // deliberately starved
  options.max_batch = 2;
  options.backpressure = BackpressurePolicy::kDropOldest;
  options.monitor.warmup = 16;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("a").ok());
  ASSERT_TRUE(engine.AddSensor("b").ok());
  ASSERT_TRUE(engine.Start().ok());
  constexpr size_t kTotal = 4000;
  for (size_t t = 0; t < kTotal; ++t) {
    const std::string& id = (t % 2 == 0) ? "a" : "b";
    ASSERT_TRUE(engine
                    .Ingest({id, ProductionLevel::kPhase,
                             static_cast<double>(t), 50.0})
                    .ok());
  }
  ASSERT_TRUE(engine.Stop().ok());
  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, kTotal);
  // Conservation: every accepted sample was either scored or evicted.
  EXPECT_EQ(stats.scored + stats.dropped, kTotal);
  EXPECT_EQ(stats.rejected_total(), 0u);
}

TEST(StreamConcurrency, RejectPolicyConservesSamples) {
  StreamEngineOptions options;
  options.num_shards = 1;
  options.queue_capacity = 8;
  options.backpressure = BackpressurePolicy::kReject;
  options.monitor.warmup = 16;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("a").ok());
  ASSERT_TRUE(engine.Start().ok());
  size_t accepted = 0;
  for (size_t t = 0; t < 2000; ++t) {
    auto ack = engine.Ingest(
        {"a", ProductionLevel::kPhase, static_cast<double>(t), 50.0});
    if (ack.ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(ack.status().code(), StatusCode::kOutOfRange);
    }
  }
  ASSERT_TRUE(engine.Stop().ok());
  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, 2000u) << "reject happens after validation";
  EXPECT_EQ(stats.scored, accepted);
  EXPECT_EQ(stats.rejected_queue_full, 2000u - accepted);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GT(stats.scored, 0u);
}

TEST(StreamConcurrency, StopWithoutFlushDrainsEverything) {
  StreamEngineOptions options;
  options.num_shards = 4;
  options.queue_capacity = 1024;
  options.monitor.warmup = 32;
  // Constant-value feeds would trip the flatline quarantine; this test is
  // about drain-on-stop accounting only.
  options.health.enabled = false;
  StreamEngine engine(options);
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.AddSensor(SensorId(i)).ok());
  }
  ASSERT_TRUE(engine.Start().ok());
  for (size_t t = 0; t < 300; ++t) {
    for (size_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(engine
                      .Ingest({SensorId(i), ProductionLevel::kPhase,
                               static_cast<double>(t), 50.0})
                      .ok());
    }
  }
  // No Flush: Stop alone must not lose queued samples.
  ASSERT_TRUE(engine.Stop().ok());
  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.ingested, 1800u);
  EXPECT_EQ(stats.scored, 1800u);
}

}  // namespace
}  // namespace hod::stream
