#ifndef HOD_CORE_CONCEPT_SHIFT_H_
#define HOD_CORE_CONCEPT_SHIFT_H_

#include <vector>

#include "timeseries/time_series.h"
#include "util/statusor.h"

namespace hod::core {

/// Concept-shift discovery — one of the four applications the paper's
/// introduction promises ("discover Concept Shifts"). A concept shift is
/// a *persistent* change of operating level, i.e. the Level Shift of
/// Fig. 1 observed at an aggregated level (line job series, environment):
/// unlike a transient outlier it does not revert, so alerting should
/// re-baseline instead of paging.
///
/// Detection is two-sided CUSUM on robustly standardized samples,
/// followed by a persistence check on the post-change segment.
struct ConceptShiftOptions {
  /// CUSUM decision threshold, in robust sigmas (accumulated drift).
  double cusum_threshold = 8.0;
  /// Per-sample slack absorbed before evidence accumulates (sigmas).
  double drift_allowance = 0.5;
  /// The post-shift segment must hold the new level for at least this
  /// many samples to count as a *concept* shift rather than an outlier.
  /// Set it to the longest transient you expect (autocorrelated noise and
  /// temporary changes must have decayed within this horizon).
  size_t min_persistence = 8;
  /// Minimum |after - before| in robust sigmas.
  double min_magnitude = 2.0;
};

/// One discovered shift.
struct ConceptShift {
  /// First sample of the new regime.
  size_t index = 0;
  ts::TimePoint time = 0.0;
  double before_mean = 0.0;
  double after_mean = 0.0;
  /// |after - before| in robust sigmas of the pre-shift regime.
  double magnitude_sigmas = 0.0;
};

/// Scans the series for persistent level changes. Multiple shifts are
/// found sequentially (detection restarts after each confirmed shift).
/// Errors on invalid series or series shorter than 2*min_persistence.
StatusOr<std::vector<ConceptShift>> DetectConceptShifts(
    const ts::TimeSeries& series, const ConceptShiftOptions& options = {});

}  // namespace hod::core

#endif  // HOD_CORE_CONCEPT_SHIFT_H_
