// Streaming monitor: per-sample condition monitoring with alarms.
//
// The paper's condition-monitoring application as a stream: samples of a
// chamber-temperature signal arrive one at a time, the OnlineMonitor
// scores each immediately (AR one-step prediction residuals), and alarm
// episodes carry hysteresis so single noisy samples cannot flap the state.
// Also demonstrates concept-shift discovery on the same stream: a
// persistent setpoint change is re-baselined, not endlessly alarmed.

#include <cstdio>
#include <vector>

#include "core/concept_shift.h"
#include "core/monitor.h"
#include "util/rng.h"

int main() {
  using namespace hod;

  // Synthesize a chamber-temperature stream: stationary at 55 degC, one
  // transient fault around t=400, and a deliberate setpoint change to
  // 58 degC at t=700 (a concept shift, not a fault).
  Rng rng(123);
  std::vector<double> stream;
  double noise = 0.0;
  for (size_t t = 0; t < 1000; ++t) {
    noise = 0.7 * noise + rng.Gaussian(0.0, 0.25);
    double value = 55.0 + noise;
    if (t >= 400 && t < 408) value += 4.0;  // transient fault
    if (t >= 700) value += 3.0;             // setpoint change
    stream.push_back(value);
  }

  core::OnlineMonitorOptions options;
  options.warmup = 100;
  options.raise_after = 2;
  options.clear_after = 5;
  core::OnlineMonitor monitor(options);

  std::printf("Streaming 1000 samples (warmup 100)...\n\n");
  std::printf("%-8s %-10s %s\n", "t", "score", "event");
  for (size_t t = 0; t < stream.size(); ++t) {
    auto update_or = monitor.Push(stream[t]);
    if (!update_or.ok()) {
      std::fprintf(stderr, "%s\n", update_or.status().ToString().c_str());
      return 1;
    }
    const core::MonitorUpdate& update = update_or.value();
    if (update.alarm_raised) {
      std::printf("%-8zu %-10.2f ALARM RAISED\n", t, update.score);
    } else if (update.alarm_cleared) {
      std::printf("%-8zu %-10.2f alarm cleared\n", t, update.score);
    }
  }
  std::printf("\nAlarm episodes: %zu (expected 2: the transient fault and "
              "the onset of the\nsetpoint change)\n",
              monitor.alarms_raised());

  // Concept-shift pass over the recorded stream distinguishes the two:
  // the fault reverted, the setpoint change persisted.
  ts::TimeSeries recorded("chamber_temp", 0.0, 1.0, stream);
  core::ConceptShiftOptions shift_options;
  // Timescale choice: anything that reverts within 16 samples is a
  // transient for this process (the fault lasts 8), and the chamber noise
  // is strongly autocorrelated, so give CUSUM generous per-sample slack.
  shift_options.min_persistence = 16;
  shift_options.drift_allowance = 1.0;
  auto shifts_or = core::DetectConceptShifts(recorded, shift_options);
  if (!shifts_or.ok()) {
    std::fprintf(stderr, "%s\n", shifts_or.status().ToString().c_str());
    return 1;
  }
  std::printf("\nConcept shifts found: %zu\n", shifts_or->size());
  for (const core::ConceptShift& shift : shifts_or.value()) {
    std::printf("  t=%-6zu %.1f -> %.1f degC (%.1f sigma) — re-baseline the "
                "monitor here\n",
                shift.index, shift.before_mean, shift.after_mean,
                shift.magnitude_sigmas);
  }
  std::printf("\nThe transient fault at t=400 raised an alarm but is NOT a "
              "concept shift;\nthe setpoint change at t=700 is.\n");
  return 0;
}
