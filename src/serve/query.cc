#include "serve/query.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "hierarchy/level.h"

namespace hod::serve {

namespace {

/// Canonical cache key: every field that shapes the answer, in a fixed
/// textual form (hexfloat keeps distinct doubles distinct).
std::string CacheKey(const RollupQuery& query) {
  std::ostringstream os;
  os << std::hexfloat << query.start << '|' << query.end << '|'
     << query.bucket_width << '|';
  for (int level : query.levels) os << level << ',';
  return os.str();
}

}  // namespace

QueryService::QueryService(const SnapshotHub* hub,
                           detect::OlapCubeOptions cube)
    : hub_(hub), cube_(cube) {}

StatusOr<RollupResult> QueryService::Rollup(const RollupQuery& query) {
  if (!(query.end > query.start)) {
    return Status::InvalidArgument("rollup window must satisfy start < end");
  }
  if (!(query.bucket_width > 0.0) || !std::isfinite(query.bucket_width)) {
    return Status::InvalidArgument("bucket_width must be finite and > 0");
  }
  for (int level : query.levels) {
    if (level < 0 || level >= hierarchy::kNumLevels) {
      return Status::InvalidArgument("level index out of range");
    }
  }

  const std::string key = CacheKey(query);
  const uint64_t epoch = hub_->PublishEpoch();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end() && it->second.epoch == epoch) {
      ++cache_hits_;
      RollupResult hit = it->second;
      hit.cache_hit = true;
      return hit;
    }
  }

  // Compute outside the lock: concurrent queries for different keys must
  // not serialize on each other's cube fits.
  StatusOr<RollupResult> computed = Compute(query, epoch);
  if (!computed.ok()) return computed.status();

  std::lock_guard<std::mutex> lock(mu_);
  ++cache_misses_;
  // Opportunistic pruning: one sweep removes every stale-epoch entry, so
  // the cache never accretes answers no publish can validate again.
  if (cache_.size() >= 128) {
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (it->second.epoch != epoch) {
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
  }
  cache_[key] = computed.value();
  return std::move(computed).value();
}

StatusOr<RollupResult> QueryService::Compute(const RollupQuery& query,
                                             uint64_t epoch) const {
  std::vector<int> levels = query.levels;
  if (levels.empty()) {
    for (int i = 0; i < hierarchy::kNumLevels; ++i) levels.push_back(i);
  }

  // Per (level, bucket): outlier samples attributed to the bucket — the
  // diff of the cumulative per-level counter between consecutive history
  // entries, seeded from the newest entry before the window.
  std::map<std::pair<int, int64_t>, double> buckets;
  for (int level : levels) {
    const auto window = hub_->LevelWindow(level, query.start, query.end);
    if (window.empty()) continue;
    const auto before = hub_->LevelBefore(level, query.start);
    uint64_t prev = before ? before->value.outlier_samples
                           : window.front().value.outlier_samples;
    for (const auto& entry : window) {
      const uint64_t cur = entry.value.outlier_samples;
      const double gained =
          cur >= prev ? static_cast<double>(cur - prev) : 0.0;
      prev = cur;
      const int64_t bucket = static_cast<int64_t>(
          std::floor((entry.ts - query.start) / query.bucket_width));
      buckets[{level, bucket}] += gained;
    }
  }

  RollupResult result;
  result.epoch = epoch;
  if (buckets.empty()) return result;

  std::vector<detect::CubeRecord> records;
  records.reserve(buckets.size());
  for (const auto& [cell, outliers] : buckets) {
    detect::CubeRecord record;
    record.dims = {cell.first, cell.second};
    record.measure = outliers;
    records.push_back(std::move(record));
  }

  detect::OlapCubeDetector cube(cube_);
  HOD_RETURN_IF_ERROR(cube.TrainRecords(records));
  std::vector<double> scores;
  HOD_ASSIGN_OR_RETURN(scores, cube.ScoreRecords(records));
  result.cube_cells = cube.num_cells();

  result.cells.reserve(records.size());
  size_t i = 0;
  for (const auto& [cell, outliers] : buckets) {
    RollupCell out;
    out.level = cell.first;
    out.bucket = cell.second;
    out.bucket_start = query.start + cell.second * query.bucket_width;
    out.outliers = outliers;
    out.score = scores[i];
    out.anomalous = scores[i] >= 0.5;
    result.cells.push_back(out);
    ++i;
  }
  return result;
}

uint64_t QueryService::cache_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_hits_;
}

uint64_t QueryService::cache_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_misses_;
}

size_t QueryService::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

}  // namespace hod::serve
