// DA-family vector detectors: EM, single-linkage, PCA, one-class SVM, SOM.

#include <gtest/gtest.h>

#include <cmath>

#include "detect/em_detector.h"
#include "detect/ocsvm_detector.h"
#include "detect/pca_detector.h"
#include "detect/single_linkage.h"
#include "detect/som_detector.h"
#include "detector_test_util.h"
#include "eval/metrics.h"

namespace hod::detect {
namespace {

using detect_test::CanonicalPoints;
using detect_test::ExpectAnomaliesScoreHigher;
using detect_test::ExpectScoresInUnitInterval;

/// Runs an unsupervised vector detector over the canonical point dataset
/// and checks bounds + separation + ranking quality.
void CheckUnsupervisedVectorDetector(VectorDetector& detector,
                                     double min_auc) {
  const auto dataset = CanonicalPoints();
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  auto scores = detector.Score(dataset.test);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  ExpectScoresInUnitInterval(scores.value());
  auto auc = eval::RocAuc(scores.value(), dataset.test_labels);
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(auc.value(), min_auc) << detector.name();
}

TEST(Em, SeparatesDisplacedPoints) {
  EmDetector detector;
  CheckUnsupervisedVectorDetector(detector, 0.9);
}

TEST(Em, MixtureIsNormalized) {
  EmDetector detector;
  const auto dataset = CanonicalPoints();
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  double weight_sum = 0.0;
  for (double w : detector.weights()) weight_sum += w;
  EXPECT_NEAR(weight_sum, 1.0, 1e-6);
  for (const auto& var_row : detector.variances()) {
    for (double v : var_row) EXPECT_GT(v, 0.0);
  }
}

TEST(Em, RejectsDegenerateInput) {
  EmDetector detector;
  EXPECT_FALSE(detector.Train({}).ok());
  EmDetector zero_comp(EmOptions{.components = 0});
  EXPECT_FALSE(zero_comp.Train({{1.0}}).ok());
  EXPECT_FALSE(detector.Score({{1.0}}).ok());  // untrained
}

TEST(Em, DimensionMismatchRejected) {
  EmDetector detector;
  ASSERT_TRUE(detector.Train({{1.0, 2.0}, {1.5, 2.5}, {0.5, 1.5}}).ok());
  EXPECT_FALSE(detector.Score({{1.0}}).ok());
}

TEST(SingleLinkage, SeparatesDisplacedPoints) {
  SingleLinkageDetector detector;
  CheckUnsupervisedVectorDetector(detector, 0.85);
}

TEST(SingleLinkage, BuildsMultipleClusters) {
  SingleLinkageDetector detector(SingleLinkageOptions{.width = 0.5});
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 30; ++i) {
    data.push_back({0.0 + 0.01 * i});
    data.push_back({100.0 - 0.01 * i});
  }
  ASSERT_TRUE(detector.Train(data).ok());
  EXPECT_GE(detector.num_clusters(), 2u);
}

TEST(SingleLinkage, FarPointScoresAboveHalf) {
  SingleLinkageDetector detector;
  std::vector<std::vector<double>> data(50, {0.0, 0.0});
  for (size_t i = 0; i < data.size(); ++i) {
    data[i][0] = 0.1 * static_cast<double>(i % 7);
  }
  ASSERT_TRUE(detector.Train(data).ok());
  auto scores = detector.Score({{50.0, 50.0}}).value();
  EXPECT_GT(scores[0], 0.5);
}

TEST(Pca, SeparatesDisplacedPoints) {
  PcaDetector detector;
  CheckUnsupervisedVectorDetector(detector, 0.85);
}

TEST(Pca, ComponentsExplainVariance) {
  // Data living on a line in 3-D: one component should suffice.
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 100; ++i) {
    const double t = 0.1 * i;
    data.push_back({t, 2.0 * t + 0.001 * (i % 3), -t});
  }
  PcaDetector detector(PcaOptions{.explained_variance = 0.9});
  ASSERT_TRUE(detector.Train(data).ok());
  EXPECT_EQ(detector.num_components(), 1u);
}

TEST(Pca, OffSubspacePointFlagged) {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 100; ++i) {
    const double t = 0.1 * i;
    data.push_back({t, 2.0 * t + 0.01 * (i % 5), 0.0});
  }
  PcaDetector detector;
  ASSERT_TRUE(detector.Train(data).ok());
  // On-line point vs orthogonally displaced point.
  auto scores = detector.Score({{5.0, 10.0, 0.0}, {5.0, 10.0, 8.0}}).value();
  EXPECT_GT(scores[1], scores[0] + 0.2);
}

TEST(Pca, RejectsTooFewVectors) {
  PcaDetector detector;
  EXPECT_FALSE(detector.Train({{1.0}}).ok());
}

TEST(Jacobi, DiagonalizesKnownMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  auto eigen = JacobiEigenSymmetric({{2.0, 1.0}, {1.0, 2.0}});
  ASSERT_TRUE(eigen.ok());
  EXPECT_NEAR(eigen->values[0], 3.0, 1e-9);
  EXPECT_NEAR(eigen->values[1], 1.0, 1e-9);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eigen->vectors[0][0]), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(Jacobi, RejectsNonSquare) {
  EXPECT_FALSE(JacobiEigenSymmetric({{1.0, 2.0}}).ok());
  EXPECT_FALSE(JacobiEigenSymmetric({}).ok());
}

TEST(Ocsvm, SeparatesDisplacedPoints) {
  OcsvmDetector detector;
  CheckUnsupervisedVectorDetector(detector, 0.8);
}

TEST(Ocsvm, NuControlsTrainingOutlierFraction) {
  const auto dataset = CanonicalPoints();
  OcsvmDetector detector(OcsvmOptions{.nu = 0.2});
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  auto scores = detector.Score(dataset.train).value();
  size_t flagged = 0;
  for (double s : scores) {
    if (s > 0.0) ++flagged;
  }
  // Roughly nu of the training data sits outside the learned region.
  const double fraction =
      static_cast<double>(flagged) / static_cast<double>(scores.size());
  EXPECT_NEAR(fraction, 0.2, 0.12);
}

TEST(Ocsvm, RejectsBadNu) {
  OcsvmDetector detector(OcsvmOptions{.nu = 0.0});
  EXPECT_FALSE(detector.Train({{1.0}}).ok());
  OcsvmDetector big(OcsvmOptions{.nu = 1.5});
  EXPECT_FALSE(big.Train({{1.0}}).ok());
}

TEST(Som, SeparatesDisplacedPoints) {
  SomDetector detector;
  CheckUnsupervisedVectorDetector(detector, 0.85);
}

TEST(Som, PrototypesCoverTrainingRange) {
  SomDetector detector(SomOptions{.rows = 3, .cols = 3, .epochs = 20});
  const auto dataset = CanonicalPoints();
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  // Every prototype is finite and within a plausible scaled range.
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      for (double v : detector.Prototype(r, c)) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_LT(std::fabs(v), 10.0);
      }
    }
  }
}

TEST(Som, RejectsEmptyGrid) {
  SomDetector detector(SomOptions{.rows = 0, .cols = 3});
  EXPECT_FALSE(detector.Train({{1.0}}).ok());
}

}  // namespace
}  // namespace hod::detect
