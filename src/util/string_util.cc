#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace hod {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += sep;
    result += parts[i];
  }
  return result;
}

std::string ToLower(std::string_view text) {
  std::string result(text);
  for (char& c : result) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return result;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

}  // namespace hod
