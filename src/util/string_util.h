#ifndef HOD_UTIL_STRING_UTIL_H_
#define HOD_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace hod {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Formats a double with `digits` decimal places ("3.142").
std::string FormatDouble(double value, int digits);

}  // namespace hod

#endif  // HOD_UTIL_STRING_UTIL_H_
