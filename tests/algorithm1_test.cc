// Integration tests for the paper's Algorithm-1 semantics on a simulated
// plant: the <global score, outlierness, support> triple must behave as
// Section 4 describes.

#include <gtest/gtest.h>

#include <cmath>

#include "core/hierarchical_detector.h"
#include "eval/metrics.h"
#include "sim/plant.h"

namespace hod::core {
namespace {

struct PlantFixture {
  sim::SimulatedPlant plant;
  std::unique_ptr<HierarchicalDetector> detector;
};

PlantFixture MakeFixture(uint64_t seed, double process_rate = 0.35,
                         double glitch_rate = 0.35) {
  PlantFixture fixture;
  sim::PlantOptions options;
  options.num_lines = 2;
  options.machines_per_line = 2;
  options.jobs_per_machine = 16;
  options.seed = seed;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = process_rate;
  scenario.glitch_rate = glitch_rate;
  scenario.magnitude_sigmas = 7.0;
  fixture.plant = sim::BuildPlant(options, scenario).value();
  fixture.detector =
      std::make_unique<HierarchicalDetector>(&fixture.plant.production);
  return fixture;
}

/// Finds the detector finding closest in time to an injected record.
const OutlierFinding* NearestFinding(
    const HierarchicalOutlierReport& report, double time,
    double max_gap = 30.0) {
  const OutlierFinding* nearest = nullptr;
  double best = max_gap;
  for (const OutlierFinding& finding : report.findings) {
    const double gap = std::fabs(finding.origin.time - time);
    if (gap <= best) {
      best = gap;
      nearest = &finding;
    }
  }
  return nearest;
}

TEST(Algorithm1, TripleWithinDocumentedRanges) {
  auto fixture = MakeFixture(61);
  for (const sim::AnomalyRecord& record : fixture.plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase) continue;
    PhaseQuery query{record.machine_id, record.job_id, record.phase_name,
                     record.sensor_id};
    auto report = fixture.detector->FindPhaseOutliers(query);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    for (const OutlierFinding& finding : report->findings) {
      EXPECT_GE(finding.global_score, 1);
      EXPECT_LE(finding.global_score, 5);
      EXPECT_GE(finding.outlierness, 0.0);
      EXPECT_LE(finding.outlierness, 1.0);
      EXPECT_GE(finding.support, 0.0);
      EXPECT_LE(finding.support, 1.0);
    }
  }
}

TEST(Algorithm1, SupportDividedByCorrespondingSensorCount) {
  // Support must be a fraction of the redundancy-group size.
  auto fixture = MakeFixture(62);
  for (const sim::AnomalyRecord& record : fixture.plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase) continue;
    if (record.sensor_id.find("bed_temp") == std::string::npos) continue;
    PhaseQuery query{record.machine_id, record.job_id, record.phase_name,
                     record.sensor_id};
    auto report = fixture.detector->FindPhaseOutliers(query);
    ASSERT_TRUE(report.ok());
    for (const OutlierFinding& finding : report->findings) {
      // bed_temp has exactly one corresponding sensor.
      EXPECT_EQ(finding.corresponding_sensors, 1u);
      EXPECT_TRUE(finding.support == 0.0 || finding.support == 1.0);
    }
  }
}

TEST(Algorithm1, ProcessAnomaliesGatherMoreSupportThanGlitches) {
  auto fixture = MakeFixture(63);
  double process_support = 0.0;
  size_t process_count = 0;
  double glitch_support = 0.0;
  size_t glitch_count = 0;
  for (const sim::AnomalyRecord& record : fixture.plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase) continue;
    const bool redundant =
        record.sensor_id.find("_a") != std::string::npos ||
        record.sensor_id.find("_b") != std::string::npos;
    if (!redundant) continue;
    PhaseQuery query{record.machine_id, record.job_id, record.phase_name,
                     record.sensor_id};
    auto report = fixture.detector->FindPhaseOutliers(query);
    if (!report.ok()) continue;
    const OutlierFinding* finding =
        NearestFinding(report.value(), record.start_time);
    if (finding == nullptr) continue;
    if (record.measurement_error) {
      glitch_support += finding->support;
      ++glitch_count;
    } else {
      process_support += finding->support;
      ++process_count;
    }
  }
  ASSERT_GT(process_count, 3u);
  ASSERT_GT(glitch_count, 3u);
  EXPECT_GT(process_support / process_count,
            glitch_support / glitch_count + 0.3);
}

TEST(Algorithm1, ProcessAnomaliesReachHigherGlobalScores) {
  // Process anomalies degrade CAQ and therefore confirm at the job level;
  // glitches stay local. Average global score must separate them.
  auto fixture = MakeFixture(64);
  double process_score = 0.0;
  size_t process_count = 0;
  double glitch_score = 0.0;
  size_t glitch_count = 0;
  for (const sim::AnomalyRecord& record : fixture.plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase) continue;
    PhaseQuery query{record.machine_id, record.job_id, record.phase_name,
                     record.sensor_id};
    auto report = fixture.detector->FindPhaseOutliers(query);
    if (!report.ok()) continue;
    const OutlierFinding* finding =
        NearestFinding(report.value(), record.start_time);
    if (finding == nullptr) continue;
    if (record.measurement_error) {
      glitch_score += finding->global_score;
      ++glitch_count;
    } else {
      process_score += finding->global_score;
      ++process_count;
    }
  }
  ASSERT_GT(process_count, 3u);
  ASSERT_GT(glitch_count, 3u);
  EXPECT_GT(process_score / process_count, glitch_score / glitch_count);
}

TEST(Algorithm1, JobLevelWarningWhenNoPhaseTrace) {
  // A job flagged at the job level whose phases show no outlier must
  // carry the paper's "Warning for Wrong Measurement".
  auto fixture = MakeFixture(65, /*process_rate=*/0.3, /*glitch_rate=*/0.0);
  for (const auto& line : fixture.plant.production.lines) {
    for (const auto& machine : line.machines) {
      auto report = fixture.detector->FindJobOutliers(machine.id);
      ASSERT_TRUE(report.ok());
      for (const OutlierFinding& finding : report->findings) {
        const bool phase_confirmed =
            std::find(finding.confirmed_levels.begin(),
                      finding.confirmed_levels.end(),
                      hierarchy::ProductionLevel::kPhase) !=
            finding.confirmed_levels.end();
        EXPECT_EQ(finding.measurement_error_warning, !phase_confirmed);
        if (!phase_confirmed) {
          ASSERT_FALSE(finding.warnings.empty());
          EXPECT_NE(finding.warnings[0].find("Wrong Measurement"),
                    std::string::npos);
        }
      }
    }
  }
}

TEST(Algorithm1, LineLevelFindsBadBatchWindow) {
  auto fixture = MakeFixture(66, /*process_rate=*/0.1, /*glitch_rate=*/0.1);
  auto report = fixture.detector->FindLineOutliers("line1");
  ASSERT_TRUE(report.ok());
  // Collect flagged job ids and compare against the bad-batch flags.
  const auto& flags = fixture.plant.truth.line_job_labels.at("line1");
  auto scores = fixture.detector->ScoreLineJobs("line1").value();
  ASSERT_EQ(scores.size(), flags.size());
  auto auc = eval::RocAuc(scores, flags);
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(auc.value(), 0.8)
      << "bad-batch jobs should rank above normal jobs at the line level";
}

TEST(Algorithm1, ProductionLevelFindsRogueMachine) {
  auto fixture = MakeFixture(67, /*process_rate=*/0.1, /*glitch_rate=*/0.1);
  auto scores = fixture.detector->ScoreMachines().value();
  const std::string rogue =
      fixture.plant.truth.machine_labels.begin()->first;
  // The rogue machine scores strictly highest.
  double rogue_score = scores.at(rogue);
  for (const auto& [machine_id, score] : scores) {
    if (machine_id != rogue) {
      EXPECT_LT(score, rogue_score) << machine_id;
    }
  }
}

TEST(Algorithm1, EnvironmentOutliersAuditedDownward) {
  // Environment-level findings run the downward check too: a room-temp
  // anomaly with no trace at the job/phase levels is flagged for review
  // (it may be an HVAC event or a sensor fault — not a production issue),
  // while one coupled to a chamber anomaly confirms downward.
  auto fixture = MakeFixture(70, /*process_rate=*/0.3, /*glitch_rate=*/0.0);
  for (const auto& line : fixture.plant.production.lines) {
    auto report = fixture.detector->FindEnvironmentOutliers(line.id);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->start_level, hierarchy::ProductionLevel::kEnvironment);
    for (const OutlierFinding& finding : report->findings) {
      // The start level is always in the confirmed set; warnings appear
      // exactly when some lower level lacks a trace.
      const bool job_confirmed =
          std::find(finding.confirmed_levels.begin(),
                    finding.confirmed_levels.end(),
                    hierarchy::ProductionLevel::kJob) !=
          finding.confirmed_levels.end();
      const bool phase_confirmed =
          std::find(finding.confirmed_levels.begin(),
                    finding.confirmed_levels.end(),
                    hierarchy::ProductionLevel::kPhase) !=
          finding.confirmed_levels.end();
      EXPECT_EQ(finding.measurement_error_warning,
                !(job_confirmed && phase_confirmed));
    }
  }
}

TEST(Algorithm1, ReportAlgorithmNamesMatchSelector) {
  auto fixture = MakeFixture(71, 0.1, 0.1);
  EXPECT_EQ(fixture.detector->FindEnvironmentOutliers("line1")->algorithm,
            "AutoregressiveModel");
  EXPECT_EQ(fixture.detector->FindLineOutliers("line1")->algorithm,
            "RobustZ");
  EXPECT_EQ(fixture.detector->FindProductionOutliers()->algorithm,
            "RobustZVector");
}

TEST(Algorithm1, HigherMagnitudeRaisesOutlierness) {
  auto weak_fixture = MakeFixture(68, 0.0, 0.0);
  // Same plant, manually inject two magnitudes into one series copy.
  auto& job =
      weak_fixture.plant.production.lines[0].machines[0].jobs[2];
  ts::TimeSeries& series =
      job.phases[3].sensor_series.begin()->second;
  // Small vs large additive spike at distinct positions.
  series.mutable_values()[50] += 2.5;   // ~2.5 sigma-ish
  series.mutable_values()[120] += 12.0; // huge
  HierarchicalDetector detector(&weak_fixture.plant.production);
  PhaseQuery query{job.machine_id, job.id, job.phases[3].name,
                   series.name()};
  auto scores = detector.ScorePhaseSeries(query).value();
  EXPECT_GT(scores[120], scores[50]);
}

}  // namespace
}  // namespace hod::core
