#include "timeseries/rolling.h"

#include <algorithm>
#include <cmath>

namespace hod::ts {

RollingWindow::RollingWindow(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void RollingWindow::Add(double x) {
  if (window_.size() == capacity_) {
    const double evicted = window_.front();
    window_.pop_front();
    sum_ -= evicted;
    sum_sq_ -= evicted * evicted;
    auto it = ordered_.find(evicted);
    if (it != ordered_.end()) {
      if (--it->second == 0) ordered_.erase(it);
      --ordered_count_;
    }
  }
  window_.push_back(x);
  sum_ += x;
  sum_sq_ += x * x;
  ++ordered_[x];
  ++ordered_count_;
}

double RollingWindow::mean() const {
  return window_.empty() ? 0.0 : sum_ / static_cast<double>(window_.size());
}

double RollingWindow::variance() const {
  if (window_.empty()) return 0.0;
  const double m = mean();
  const double v = sum_sq_ / static_cast<double>(window_.size()) - m * m;
  return std::max(v, 0.0);  // guard against catastrophic cancellation
}

double RollingWindow::stddev() const { return std::sqrt(variance()); }

double RollingWindow::median() const {
  if (ordered_count_ == 0) return 0.0;
  // Walk the multimap to the middle rank(s).
  const size_t lower_rank = (ordered_count_ - 1) / 2;
  const size_t upper_rank = ordered_count_ / 2;
  double lower_value = 0.0;
  double upper_value = 0.0;
  size_t seen = 0;
  for (const auto& [value, count] : ordered_) {
    if (seen <= lower_rank && lower_rank < seen + count) {
      lower_value = value;
    }
    if (seen <= upper_rank && upper_rank < seen + count) {
      upper_value = value;
      break;
    }
    seen += count;
  }
  return (lower_value + upper_value) / 2.0;
}

double RollingWindow::min() const {
  return ordered_.empty() ? 0.0 : ordered_.begin()->first;
}

double RollingWindow::max() const {
  return ordered_.empty() ? 0.0 : ordered_.rbegin()->first;
}

void RollingWindow::Clear() {
  window_.clear();
  ordered_.clear();
  sum_ = 0.0;
  sum_sq_ = 0.0;
  ordered_count_ = 0;
}

}  // namespace hod::ts
