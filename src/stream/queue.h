#ifndef HOD_STREAM_QUEUE_H_
#define HOD_STREAM_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace hod::stream {

/// How many producer threads feed each shard's ingress queue. The scorer
/// uses this to pick the queue implementation: with exactly one producer
/// pinned per shard (an upstream that partitions traffic by the same
/// stable hash the router uses), the lock-free SPSC ring replaces the
/// mutex+CV MPSC queue on the ingest hot path.
enum class ProducerHint {
  /// Unknown or several producers may push to the same shard — the safe
  /// default; selects the mutex-based MPSC `BoundedQueue`.
  kUnknown,
  /// The caller guarantees exactly one producer thread per shard; selects
  /// the lock-free `SpscRing`. Violating the guarantee is a data race.
  kSinglePerShard,
};

std::string_view ProducerHintName(ProducerHint hint);

/// What a full queue does with a new sample.
enum class BackpressurePolicy {
  /// Producer blocks until the consumer frees a slot (lossless; transfers
  /// backpressure upstream — the right default for replay/batch feeds).
  kBlock,
  /// Evict the oldest queued sample to admit the new one (bounded
  /// staleness; the right policy for live telemetry where the newest
  /// reading is worth more than the oldest). Evictions are counted.
  kDropOldest,
  /// Refuse the new sample with OutOfRange (caller-visible load shedding).
  kReject,
  /// Like kBlock, but gives up after the queue's block timeout with a
  /// typed DeadlineExceeded error instead of parking forever — the
  /// liveness-safe lossless policy: a stalled consumer degrades into
  /// bounded producer latency plus a visible error, never a hung plant.
  kBlockWithTimeout,
};

std::string_view BackpressurePolicyName(BackpressurePolicy policy);

/// What every shard ingress queue must provide: one bounded FIFO with
/// per-push backpressure policies, batched consumer drain, close-based
/// shutdown, and the drop/reject/timeout/high-water counters the engine
/// surfaces in `StreamStatsSnapshot`. Two implementations exist — the
/// mutex+CV MPSC `BoundedQueue` (any number of producers) and the
/// lock-free `SpscRing` (exactly one producer) — selected by the scorer
/// from `ProducerHint`. Semantics are identical across both:
///
/// - `Push` applies the given policy when full (kBlock parks, kDropOldest
///   evicts the head into `*evicted`, kReject fails OutOfRange,
///   kBlockWithTimeout fails DeadlineExceeded after the bound) and fails
///   FailedPrecondition after `Close()`.
/// - `PopBatch` blocks while open and empty, and returns false only once
///   the queue is closed AND drained.
/// - `Close()` is idempotent, wakes every parked producer and the
///   consumer, and leaves queued items poppable.
template <typename T>
class ShardQueue {
 public:
  virtual ~ShardQueue() = default;

  /// Enqueues one item under the queue's default policy.
  Status Push(T item) { return Push(std::move(item), policy(), nullptr); }

  /// Enqueues one item, applying `policy` when the queue is full. When
  /// kDropOldest evicts and `evicted` is non-null, the victim is moved
  /// into it so the caller can account for it.
  virtual Status Push(T item, BackpressurePolicy policy,
                      std::optional<T>* evicted) = 0;

  /// Moves up to `max_batch` items into `out` (appended). Blocks while
  /// the queue is open and empty; false once closed and drained.
  virtual bool PopBatch(std::vector<T>& out, size_t max_batch) = 0;

  /// Non-blocking PopBatch; returns the number of items taken.
  virtual size_t TryPopBatch(std::vector<T>& out, size_t max_batch) = 0;

  /// Ends the stream (idempotent): wakes every waiter; queued items
  /// remain poppable.
  virtual void Close() = 0;

  virtual size_t size() const = 0;
  virtual bool closed() const = 0;
  virtual size_t capacity() const = 0;
  virtual BackpressurePolicy policy() const = 0;
  /// Samples evicted by kDropOldest.
  virtual uint64_t dropped() const = 0;
  /// Samples refused by kReject.
  virtual uint64_t rejected() const = 0;
  /// Pushes that expired under kBlockWithTimeout.
  virtual uint64_t timed_out() const = 0;
  /// Deepest the queue has ever been (sizing/backpressure diagnostics).
  virtual size_t high_water() const = 0;
  /// Implementation tag for diagnostics: "mpsc" or "spsc".
  virtual std::string_view kind() const = 0;
};

/// Bounded multi-producer / single-consumer FIFO over a fixed ring buffer.
///
/// Producers call `Push` concurrently; the single consumer drains with
/// `PopBatch`. All state is guarded by one mutex — the consumer amortizes
/// it by taking up to `max_batch` items per acquisition, so the scoring
/// hot path (which runs *between* drains, on shard-private state) holds no
/// lock at all.
///
/// `Close()` ends the stream: blocked producers and the consumer wake,
/// further pushes fail, and `PopBatch` keeps returning queued items until
/// the ring is empty, then reports exhaustion. Shutdown liveness
/// invariant: every producer parked inside `Push` (kBlock or
/// kBlockWithTimeout) re-checks `closed_` on wakeup and `Close()` notifies
/// under the lock, so a `Close` concurrent with any number of saturating
/// producers wakes all of them promptly — no lost wakeup, no indefinite
/// block (regression-tested in stream_queue_test).
template <typename T>
class BoundedQueue final : public ShardQueue<T> {
 public:
  explicit BoundedQueue(
      size_t capacity, BackpressurePolicy policy = BackpressurePolicy::kBlock,
      std::chrono::milliseconds block_timeout = std::chrono::milliseconds(100))
      : capacity_(capacity == 0 ? 1 : capacity),
        policy_(policy),
        block_timeout_(block_timeout),
        ring_(capacity_) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  using ShardQueue<T>::Push;

  /// Enqueues one item, applying `policy` when the queue is full — the
  /// per-sensor-class backpressure hook: one shard queue can serve
  /// critical sensors losslessly (kBlock) and environment channels with
  /// bounded staleness (kDropOldest) at the same time. When kDropOldest
  /// evicts and `evicted` is non-null, the victim is moved into it so the
  /// caller can account for it (e.g. per-level drop counters).
  /// Returns FailedPrecondition after Close(), OutOfRange when rejected,
  /// DeadlineExceeded when kBlockWithTimeout expires.
  Status Push(T item, BackpressurePolicy policy,
              std::optional<T>* evicted) override {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_) return Status::FailedPrecondition("queue closed");
    if (size_ == capacity_) {
      switch (policy) {
        case BackpressurePolicy::kBlock:
          not_full_.wait(lock, [&] { return size_ < capacity_ || closed_; });
          if (closed_) return Status::FailedPrecondition("queue closed");
          break;
        case BackpressurePolicy::kBlockWithTimeout: {
          const bool admitted = not_full_.wait_for(
              lock, block_timeout_,
              [&] { return size_ < capacity_ || closed_; });
          if (closed_) return Status::FailedPrecondition("queue closed");
          if (!admitted) {
            ++timed_out_;
            return Status::DeadlineExceeded("queue full beyond block timeout");
          }
          break;
        }
        case BackpressurePolicy::kDropOldest: {
          T victim = std::move(ring_[head_]);
          head_ = (head_ + 1) % capacity_;
          --size_;
          ++dropped_;
          if (evicted != nullptr) *evicted = std::move(victim);
          break;
        }
        case BackpressurePolicy::kReject:
          ++rejected_;
          return Status::OutOfRange("queue full");
      }
    }
    ring_[(head_ + size_) % capacity_] = std::move(item);
    ++size_;
    if (size_ > high_water_) high_water_ = size_;
    not_empty_.notify_one();
    return Status::Ok();
  }

  /// Moves up to `max_batch` items into `out` (appended). Blocks while the
  /// queue is open and empty. Returns false once the queue is closed AND
  /// drained — the consumer's signal to exit its loop.
  bool PopBatch(std::vector<T>& out, size_t max_batch) override {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;  // closed and drained
    const size_t n = std::min(size_, max_batch == 0 ? size_t{1} : max_batch);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(ring_[head_]));
      head_ = (head_ + 1) % capacity_;
      --size_;
    }
    not_full_.notify_all();
    return true;
  }

  /// Non-blocking PopBatch: takes whatever is queued right now (up to
  /// `max_batch`) without waiting. Returns the number of items taken.
  size_t TryPopBatch(std::vector<T>& out, size_t max_batch) override {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = std::min(size_, max_batch == 0 ? size_ : max_batch);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(std::move(ring_[head_]));
      head_ = (head_ + 1) % capacity_;
      --size_;
    }
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Ends the stream (idempotent): wakes every waiter; queued items remain
  /// poppable.
  void Close() override {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  bool closed() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  size_t capacity() const override { return capacity_; }
  BackpressurePolicy policy() const override { return policy_; }
  /// Samples evicted by kDropOldest.
  uint64_t dropped() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }
  /// Samples refused by kReject.
  uint64_t rejected() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
  }
  /// Pushes that expired under kBlockWithTimeout.
  uint64_t timed_out() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return timed_out_;
  }
  /// Deepest the queue has ever been (sizing/backpressure diagnostics).
  size_t high_water() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }
  std::string_view kind() const override { return "mpsc"; }

 private:
  const size_t capacity_;
  const BackpressurePolicy policy_;
  const std::chrono::milliseconds block_timeout_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  size_t head_ = 0;
  size_t size_ = 0;
  size_t high_water_ = 0;
  uint64_t dropped_ = 0;
  uint64_t rejected_ = 0;
  uint64_t timed_out_ = 0;
  bool closed_ = false;
};

inline std::string_view BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropOldest: return "drop-oldest";
    case BackpressurePolicy::kReject: return "reject";
    case BackpressurePolicy::kBlockWithTimeout: return "block-with-timeout";
  }
  return "?";
}

inline std::string_view ProducerHintName(ProducerHint hint) {
  switch (hint) {
    case ProducerHint::kUnknown: return "unknown";
    case ProducerHint::kSinglePerShard: return "single-per-shard";
  }
  return "?";
}

}  // namespace hod::stream

#endif  // HOD_STREAM_QUEUE_H_
