#ifndef HOD_DETECT_WINDOW_DB_H_
#define HOD_DETECT_WINDOW_DB_H_

#include <map>
#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Normal pattern database over window sequences (Lane & Brodley 1997) —
/// Table 1 row 17, family NPD, data type SSQ.
///
/// "The frequencies of overlapping windows are stored in a database. If a
/// new subsequence has many mismatches, it is considered as an anomaly.
/// This procedure can be extended by not including only exact matches, but
/// rather compute soft mismatch scores." Exactly that: the database maps
/// each training window to its frequency; a test window's score is 0 when
/// frequent, rises for rare windows, and for unseen windows falls back to
/// a soft mismatch score (minimum Hamming distance to any stored window,
/// bounded probes).
struct WindowDbOptions {
  size_t window = 6;
  /// Windows seen at least this often are fully normal.
  size_t frequent_count = 3;
  /// Max stored windows examined for the soft mismatch of an unseen
  /// window (cost bound; probes take the most frequent entries).
  size_t soft_probes = 256;
};

class WindowDbDetector : public SequenceDetector {
 public:
  explicit WindowDbDetector(WindowDbOptions options = {});

  std::string name() const override { return "WindowSequenceDatabase"; }

  Status Train(const std::vector<ts::DiscreteSequence>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::DiscreteSequence& sequence) const override;

  size_t database_size() const { return frequencies_.size(); }

 private:
  WindowDbOptions options_;
  std::map<std::vector<ts::Symbol>, size_t> frequencies_;
  /// Most frequent windows, used as soft-mismatch probe set.
  std::vector<std::vector<ts::Symbol>> probe_set_;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_WINDOW_DB_H_
