#include "stream/health.h"

#include <cmath>
#include <limits>

namespace hod::stream {

std::string_view SensorHealthStateName(SensorHealthState state) {
  switch (state) {
    case SensorHealthState::kHealthy: return "healthy";
    case SensorHealthState::kSuspect: return "suspect";
    case SensorHealthState::kQuarantined: return "quarantined";
    case SensorHealthState::kRecovering: return "recovering";
  }
  return "?";
}

std::string_view HealthSignalName(HealthSignal signal) {
  switch (signal) {
    case HealthSignal::kClean: return "clean";
    case HealthSignal::kFlatline: return "flatline";
    case HealthSignal::kNonFinite: return "non-finite";
    case HealthSignal::kOutOfOrder: return "out-of-order";
    case HealthSignal::kDuplicate: return "duplicate";
    case HealthSignal::kStale: return "stale";
  }
  return "?";
}

SensorHealthTracker::SensorHealthTracker(SensorHealthOptions options,
                                         StreamStats* stats)
    : options_(options),
      stats_(stats),
      frontier_(-std::numeric_limits<ts::TimePoint>::infinity()),
      last_sweep_frontier_(-std::numeric_limits<ts::TimePoint>::infinity()) {}

Status SensorHealthTracker::AddSensor(const std::string& sensor_id,
                                      hierarchy::ProductionLevel level) {
  if (sensor_id.empty()) return Status::InvalidArgument("empty sensor id");
  auto [it, inserted] =
      sensors_.emplace(sensor_id, std::make_unique<Entry>(level));
  if (!inserted) {
    return Status::InvalidArgument("sensor already tracked: " + sensor_id);
  }
  return Status::Ok();
}

void SensorHealthTracker::AdvanceFrontier(ts::TimePoint ts) {
  ts::TimePoint seen = frontier_.load(std::memory_order_relaxed);
  while (ts > seen && !frontier_.compare_exchange_weak(
                          seen, ts, std::memory_order_relaxed)) {
  }
}

void SensorHealthTracker::LogTransition(const HealthTransition& transition) {
  std::lock_guard<std::mutex> lock(log_mu_);
  log_.push_back(transition);
}

void SensorHealthTracker::SetState(const std::string& sensor_id, Entry& entry,
                                   SensorHealthState to, HealthSignal reason,
                                   ts::TimePoint ts, HealthTransition* out) {
  HealthTransition transition;
  transition.sensor_id = sensor_id;
  transition.level = entry.level;
  transition.from = entry.state;
  transition.to = to;
  transition.reason = reason;
  transition.ts = ts;
  entry.state = to;
  entry.last_transition_ts = ts;
  entry.last_reason = reason;
  if (to == SensorHealthState::kQuarantined) {
    ++entry.quarantines;
    if (stats_ != nullptr) stats_->RecordSensorFault();
  }
  if (to == SensorHealthState::kHealthy &&
      transition.from == SensorHealthState::kRecovering &&
      stats_ != nullptr) {
    stats_->RecordSensorRecovery();
  }
  LogTransition(transition);
  if (out != nullptr) *out = transition;
}

std::optional<HealthTransition> SensorHealthTracker::Apply(
    const std::string& sensor_id, Entry& entry, HealthSignal signal,
    ts::TimePoint ts) {
  HealthTransition transition;
  bool transitioned = false;
  auto move_to = [&](SensorHealthState to, HealthSignal reason) {
    SetState(sensor_id, entry, to, reason, ts, &transition);
    transitioned = true;
  };

  if (signal == HealthSignal::kClean) {
    ++entry.clean_streak;
    if (entry.fault_evidence > 0) --entry.fault_evidence;
    switch (entry.state) {
      case SensorHealthState::kHealthy:
        break;
      case SensorHealthState::kSuspect:
        if (entry.clean_streak >= options_.suspect_clear_streak) {
          entry.fault_evidence = 0;
          move_to(SensorHealthState::kHealthy, HealthSignal::kClean);
        }
        break;
      case SensorHealthState::kQuarantined:
        move_to(SensorHealthState::kRecovering, HealthSignal::kClean);
        break;
      case SensorHealthState::kRecovering:
        if (entry.clean_streak >= options_.recovery_clean_streak) {
          entry.fault_evidence = 0;
          move_to(SensorHealthState::kHealthy, HealthSignal::kClean);
        }
        break;
    }
  } else {
    entry.clean_streak = 0;
    ++entry.fault_evidence;
    switch (entry.state) {
      case SensorHealthState::kHealthy:
        if (entry.fault_evidence >= options_.suspect_after) {
          move_to(SensorHealthState::kSuspect, signal);
        }
        break;
      case SensorHealthState::kSuspect:
        if (entry.fault_evidence >= options_.quarantine_after) {
          move_to(SensorHealthState::kQuarantined, signal);
        }
        break;
      case SensorHealthState::kQuarantined:
        break;
      case SensorHealthState::kRecovering:
        // One fault signal is enough to distrust a sensor that has not
        // finished proving itself again.
        move_to(SensorHealthState::kQuarantined, signal);
        break;
    }
  }
  if (!transitioned) return std::nullopt;
  return transition;
}

HealthObservation SensorHealthTracker::Observe(const std::string& sensor_id,
                                               ts::TimePoint ts,
                                               double value) {
  HealthObservation observation;
  if (!options_.enabled) return observation;
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) return observation;
  Entry& entry = *it->second;
  AdvanceFrontier(ts);

  std::lock_guard<std::mutex> lock(entry.mu);
  HealthSignal signal = HealthSignal::kClean;
  if (entry.has_last_value && ts <= entry.last_seen_ts) {
    // The router admits regressions within its tolerance; a timestamp
    // that fails to advance is duplicate/late delivery — fault evidence,
    // and the flatline run is left untouched (a replayed sample says
    // nothing new about the value).
    signal = HealthSignal::kDuplicate;
  } else {
    if (entry.has_last_value &&
        std::fabs(value - entry.last_value) <= options_.flatline_epsilon) {
      ++entry.flatline_run;
      if (entry.flatline_run >= options_.flatline_window) {
        signal = HealthSignal::kFlatline;
      }
    } else {
      entry.flatline_run = 0;
    }
    entry.last_seen_ts = ts;
  }
  entry.last_value = value;
  entry.has_last_value = true;

  std::optional<HealthTransition> transition =
      Apply(sensor_id, entry, signal, ts);
  observation.state = entry.state;
  observation.signal = signal;
  if (transition.has_value()) {
    observation.entered_quarantine =
        transition->to == SensorHealthState::kQuarantined;
    observation.recovered =
        transition->to == SensorHealthState::kHealthy &&
        transition->from == SensorHealthState::kRecovering;
  }
  if (observation.state == SensorHealthState::kQuarantined &&
      stats_ != nullptr) {
    // The scoring tier withholds this sample from its monitor and from
    // level aggregation; account for it here, in the one place that knows.
    stats_->RecordQuarantinedSample(entry.level);
  }
  return observation;
}

std::optional<HealthTransition> SensorHealthTracker::RecordRejection(
    const std::string& sensor_id, HealthSignal signal, ts::TimePoint ts) {
  if (!options_.enabled) return std::nullopt;
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) return std::nullopt;
  Entry& entry = *it->second;
  std::lock_guard<std::mutex> lock(entry.mu);
  return Apply(sensor_id, entry, signal, ts);
}

std::vector<HealthTransition> SensorHealthTracker::SweepStale() {
  std::vector<HealthTransition> transitions;
  if (!options_.enabled || options_.staleness_timeout <= 0.0) {
    return transitions;
  }
  const ts::TimePoint frontier = frontier_.load(std::memory_order_relaxed);
  if (!std::isfinite(frontier)) return transitions;
  // No ingest advanced stream time since the previous sweep: the whole
  // plant is paused, and "lagging the frontier" carries no information.
  // Without this gate, a quiesced engine (checkpoint, Stop, or an idle
  // restored one) would quarantine every channel on the watchdog cadence.
  if (frontier <= last_sweep_frontier_.load(std::memory_order_relaxed)) {
    return transitions;
  }
  last_sweep_frontier_.store(frontier, std::memory_order_relaxed);
  for (auto& [sensor_id, entry] : sensors_) {
    std::lock_guard<std::mutex> lock(entry->mu);
    // A sensor that has never reported is absent, not stale: quarantining
    // it would fire a fault alert for every slow-starting channel.
    if (!entry->has_last_value) continue;
    if (entry->state == SensorHealthState::kQuarantined) continue;
    if (frontier - entry->last_seen_ts <= options_.staleness_timeout) {
      continue;
    }
    HealthTransition transition;
    SetState(sensor_id, *entry, SensorHealthState::kQuarantined,
             HealthSignal::kStale, frontier, &transition);
    entry->clean_streak = 0;
    transitions.push_back(std::move(transition));
  }
  return transitions;
}

SensorHealthState SensorHealthTracker::StateOf(
    const std::string& sensor_id) const {
  auto it = sensors_.find(sensor_id);
  if (it == sensors_.end()) return SensorHealthState::kHealthy;
  std::lock_guard<std::mutex> lock(it->second->mu);
  return it->second->state;
}

SensorHealthSnapshot SensorHealthTracker::Snapshot() const {
  SensorHealthSnapshot snapshot;
  snapshot.sensors.reserve(sensors_.size());
  for (const auto& [sensor_id, entry] : sensors_) {
    std::lock_guard<std::mutex> lock(entry->mu);
    SensorHealthStatus status;
    status.sensor_id = sensor_id;
    status.level = entry->level;
    status.state = entry->state;
    status.fault_evidence = entry->fault_evidence;
    status.clean_streak = entry->clean_streak;
    status.flatline_run = entry->flatline_run;
    status.has_last_value = entry->has_last_value;
    status.last_value = entry->last_value;
    status.last_seen_ts = entry->last_seen_ts;
    status.last_transition_ts = entry->last_transition_ts;
    status.last_reason = entry->last_reason;
    status.quarantines = entry->quarantines;
    switch (entry->state) {
      case SensorHealthState::kHealthy: ++snapshot.healthy; break;
      case SensorHealthState::kSuspect: ++snapshot.suspect; break;
      case SensorHealthState::kQuarantined: ++snapshot.quarantined; break;
      case SensorHealthState::kRecovering: ++snapshot.recovering; break;
    }
    snapshot.sensors.push_back(std::move(status));
  }
  return snapshot;
}

std::vector<HealthTransition> SensorHealthTracker::Transitions() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_;
}

std::vector<SensorHealthStatus> SensorHealthTracker::SaveState() const {
  return Snapshot().sensors;
}

Status SensorHealthTracker::RestoreState(
    const std::vector<SensorHealthStatus>& states) {
  for (const SensorHealthStatus& status : states) {
    auto it = sensors_.find(status.sensor_id);
    if (it == sensors_.end()) {
      return Status::NotFound("health state for unregistered sensor: " +
                              status.sensor_id);
    }
    Entry& entry = *it->second;
    std::lock_guard<std::mutex> lock(entry.mu);
    entry.state = status.state;
    entry.fault_evidence = status.fault_evidence;
    entry.clean_streak = status.clean_streak;
    entry.flatline_run = status.flatline_run;
    entry.has_last_value = status.has_last_value;
    entry.last_value = status.last_value;
    entry.last_seen_ts = status.last_seen_ts;
    entry.last_transition_ts = status.last_transition_ts;
    entry.last_reason = status.last_reason;
    entry.quarantines = status.quarantines;
    if (status.has_last_value) AdvanceFrontier(status.last_seen_ts);
  }
  // A restored engine resumes with the frontier where the checkpoint left
  // it. Treat that as already swept: quarantine decisions belong to fresh
  // ingest advancing stream time, not to the restart itself (a victim
  // already lagging at checkpoint time would otherwise be quarantined by
  // the first wall-clock sweep of an idle restored engine).
  last_sweep_frontier_.store(frontier_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  return Status::Ok();
}

}  // namespace hod::stream
