// Parity suite for core::BatchMonitorBank: the SoA micro-batched bank
// must be bit-identical to a per-sensor core::OnlineMonitor fed the same
// samples — scores, alarm transitions, counters, and checkpoint state —
// regardless of batch size, lane interleaving, or the active SIMD
// backend. Also pins the checkpoint-restore fixes (residual-sigma floor,
// phi width validation).
#include "core/batch_monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "util/rng.h"
#include "util/simd.h"

namespace hod::core {
namespace {

OnlineMonitorOptions FastOptions() {
  OnlineMonitorOptions options;
  options.warmup = 16;
  options.ar_order = 4;
  options.raise_after = 2;
  options.clear_after = 3;
  return options;
}

void ExpectStatesIdentical(const OnlineMonitorState& got,
                           const OnlineMonitorState& want) {
  EXPECT_EQ(got.warmup_buffer, want.warmup_buffer);
  EXPECT_EQ(got.recent, want.recent);
  EXPECT_EQ(got.phi, want.phi);
  EXPECT_EQ(got.intercept, want.intercept);
  EXPECT_EQ(got.residual_sigma, want.residual_sigma);
  EXPECT_EQ(got.model_ready, want.model_ready);
  EXPECT_EQ(got.alarm, want.alarm);
  EXPECT_EQ(got.above_streak, want.above_streak);
  EXPECT_EQ(got.below_streak, want.below_streak);
  EXPECT_EQ(got.samples_seen, want.samples_seen);
  EXPECT_EQ(got.alarms_raised, want.alarms_raised);
}

void ExpectUpdatesIdentical(const MonitorUpdate& got,
                            const MonitorUpdate& want) {
  EXPECT_EQ(got.score, want.score);
  EXPECT_EQ(got.alarm, want.alarm);
  EXPECT_EQ(got.alarm_raised, want.alarm_raised);
  EXPECT_EQ(got.alarm_cleared, want.alarm_cleared);
  EXPECT_EQ(got.model_ready, want.model_ready);
}

/// One sensor's sample stream: AR(1)-ish noise around a level, with a
/// burst of spikes to drive alarms (and the anomaly-corrected window).
std::vector<double> SensorStream(uint64_t seed, size_t n, double level) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  double noise = 0.0;
  for (size_t i = 0; i < n; ++i) {
    noise = 0.6 * noise + rng.Gaussian(0.0, 0.4);
    double v = level + noise;
    if (i > n / 2 && i < n / 2 + 8) v += 25.0;  // fault burst
    if (i > 3 * n / 4 && i % 7 == 0) v -= 12.0;  // sporadic dips
    values.push_back(v);
  }
  return values;
}

TEST(BatchMonitorBank, SingleLanePushMatchesOnlineMonitor) {
  const OnlineMonitorOptions options = FastOptions();
  BatchMonitorBank bank(options);
  const size_t lane = bank.AddSensor("s0").value();
  OnlineMonitor monitor(options);

  for (double v : SensorStream(1, 600, 50.0)) {
    auto got = bank.Push(lane, v);
    auto want = monitor.Push(v);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectUpdatesIdentical(got.value(), want.value());
  }
  EXPECT_GT(bank.alarms_raised(lane), 0u) << "stream must exercise alarms";
  EXPECT_EQ(bank.samples_seen(lane), 600u);
  ExpectStatesIdentical(bank.SaveState(lane), monitor.SaveState());
}

/// Feeds interleaved multi-sensor streams through PushBatch (with
/// repeated lanes inside a batch, forcing wave splits) and through
/// per-sensor OnlineMonitors, comparing every update and final state.
void RunBatchParity(size_t batch_size) {
  const OnlineMonitorOptions options = FastOptions();
  constexpr size_t kSensors = 7;
  constexpr size_t kSamplesPerSensor = 400;

  BatchMonitorBank bank(options);
  std::vector<OnlineMonitor> monitors;
  std::vector<std::vector<double>> streams;
  for (size_t s = 0; s < kSensors; ++s) {
    ASSERT_EQ(bank.AddSensor("s" + std::to_string(s)).value(), s);
    monitors.emplace_back(options);
    streams.push_back(SensorStream(100 + s, kSamplesPerSensor, 30.0 + 5.0 * s));
  }

  // Interleave: sensor s emits its i-th sample at position i*kSensors+s,
  // except sensor 0 which emits twice per round (adjacent duplicates —
  // every batch containing them must split into waves).
  std::vector<size_t> lanes;
  std::vector<double> values;
  std::vector<size_t> cursor(kSensors, 0);
  for (size_t i = 0; i < kSamplesPerSensor; ++i) {
    for (size_t s = 0; s < kSensors; ++s) {
      if (cursor[s] >= streams[s].size()) continue;
      lanes.push_back(s);
      values.push_back(streams[s][cursor[s]++]);
      if (s == 0 && i % 2 == 1 && cursor[0] < streams[0].size()) {
        lanes.push_back(0);
        values.push_back(streams[0][cursor[0]++]);
      }
    }
  }

  std::vector<MonitorUpdate> updates(batch_size);
  std::vector<unsigned char> scored(batch_size);
  for (size_t start = 0; start < lanes.size(); start += batch_size) {
    const size_t n = std::min(batch_size, lanes.size() - start);
    bank.PushBatch(&lanes[start], &values[start], n, updates.data(),
                   scored.data());
    for (size_t j = 0; j < n; ++j) {
      ASSERT_EQ(scored[j], 1u);
      auto want = monitors[lanes[start + j]].Push(values[start + j]);
      ASSERT_TRUE(want.ok());
      ExpectUpdatesIdentical(updates[j], want.value());
    }
  }
  for (size_t s = 0; s < kSensors; ++s) {
    ExpectStatesIdentical(bank.SaveState(s), monitors[s].SaveState());
    EXPECT_EQ(bank.alarms_raised(s), monitors[s].alarms_raised());
  }
  EXPECT_GT(bank.alarms_raised(0), 0u) << "stream must exercise alarms";
}

TEST(BatchMonitorBank, PushBatchMatchesOnlineMonitorBatch1) {
  RunBatchParity(1);
}
TEST(BatchMonitorBank, PushBatchMatchesOnlineMonitorBatch3) {
  RunBatchParity(3);
}
TEST(BatchMonitorBank, PushBatchMatchesOnlineMonitorBatch16) {
  RunBatchParity(16);
}
TEST(BatchMonitorBank, PushBatchMatchesOnlineMonitorBatch64) {
  RunBatchParity(64);
}

TEST(BatchMonitorBank, ScalarBackendParity) {
  // The vector backend is exercised by the tests above (on capable CPUs);
  // pinning scalar here proves the bank's own wave logic is
  // backend-independent.
  const util::simd::Backend original = util::simd::ActiveBackend();
  ASSERT_EQ(util::simd::SetBackendForTest(util::simd::Backend::kScalar),
            util::simd::Backend::kScalar);
  RunBatchParity(32);
  util::simd::SetBackendForTest(original);
}

TEST(BatchMonitorBank, WarmupFitIsBitIdenticalAcrossBackends) {
  // The AR warmup fit (normal-equation accumulation + residual pass) now
  // runs through the util/simd.h dispatch. The kernels are lane-exact
  // (one mul-then-add per accumulator lane per sample, in sample order),
  // so the fitted model — phi, intercept, residual sigma — and every
  // downstream score must be byte-equal no matter which backend fit it.
  const util::simd::Backend original = util::simd::ActiveBackend();
  const OnlineMonitorOptions options = FastOptions();
  const std::vector<double> values = SensorStream(77, 300, 12.0);

  std::vector<util::simd::Backend> available;
  for (util::simd::Backend b :
       {util::simd::Backend::kScalar, util::simd::Backend::kAvx2,
        util::simd::Backend::kNeon}) {
    if (util::simd::SetBackendForTest(b) == b) available.push_back(b);
  }

  std::vector<OnlineMonitorState> states;
  std::vector<std::vector<double>> scores;
  for (util::simd::Backend backend : available) {
    ASSERT_EQ(util::simd::SetBackendForTest(backend), backend);
    BatchMonitorBank bank(options);
    const size_t lane = bank.AddSensor("s0").value();
    std::vector<double> lane_scores;
    for (double v : values) {
      auto update = bank.Push(lane, v);
      ASSERT_TRUE(update.ok());
      lane_scores.push_back(update.value().score);
    }
    states.push_back(bank.SaveState(lane));
    scores.push_back(std::move(lane_scores));
  }
  util::simd::SetBackendForTest(original);

  ASSERT_FALSE(states.empty());
  for (size_t i = 1; i < states.size(); ++i) {
    ExpectStatesIdentical(states[i], states[0]);
    EXPECT_EQ(scores[i], scores[0])
        << "backend " << static_cast<int>(available[i]);
  }
  EXPECT_TRUE(states[0].model_ready) << "stream must complete warmup";
}

TEST(BatchMonitorBank, NonFiniteSampleIsSkippedAndStateUntouched) {
  BatchMonitorBank bank(FastOptions());
  const size_t lane = bank.AddSensor("s0").value();
  for (double v : SensorStream(3, 100, 10.0)) {
    ASSERT_TRUE(bank.Push(lane, v).ok());
  }
  const OnlineMonitorState before = bank.SaveState(lane);

  const size_t lanes[] = {lane, lane, lane};
  const double values[] = {std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(), 10.0};
  MonitorUpdate updates[3];
  unsigned char scored[3];
  bank.PushBatch(lanes, values, 3, updates, scored);
  EXPECT_EQ(scored[0], 0u);
  EXPECT_EQ(scored[1], 0u);
  EXPECT_EQ(scored[2], 1u);
  EXPECT_EQ(bank.samples_seen(lane), before.samples_seen + 1);
  EXPECT_FALSE(bank.Push(lane, std::numeric_limits<double>::quiet_NaN()).ok());
}

TEST(BatchMonitorBank, OutOfRangeLaneIsSkipped) {
  BatchMonitorBank bank(FastOptions());
  const size_t lane = bank.AddSensor("s0").value();
  const size_t lanes[] = {lane + 7, lane};
  const double values[] = {1.0, 2.0};
  MonitorUpdate updates[2];
  unsigned char scored[2];
  bank.PushBatch(lanes, values, 2, updates, scored);
  EXPECT_EQ(scored[0], 0u);
  EXPECT_EQ(scored[1], 1u);
  EXPECT_EQ(bank.samples_seen(lane), 1u);
}

TEST(BatchMonitorBank, RegistryRejectsDuplicatesAndReportsNotFound) {
  BatchMonitorBank bank(FastOptions());
  EXPECT_EQ(bank.AddSensor("a").value(), 0u);
  EXPECT_EQ(bank.AddSensor("b").value(), 1u);
  EXPECT_FALSE(bank.AddSensor("a").ok());
  EXPECT_EQ(bank.size(), 2u);
  EXPECT_EQ(bank.IndexOf("b"), 1u);
  EXPECT_EQ(bank.IndexOf("zzz"), BatchMonitorBank::kNotFound);
}

TEST(BatchMonitorBank, CheckpointRoundTripsAgainstOnlineMonitor) {
  const OnlineMonitorOptions options = FastOptions();
  OnlineMonitor monitor(options);
  const std::vector<double> stream = SensorStream(9, 300, 42.0);
  for (double v : stream) ASSERT_TRUE(monitor.Push(v).ok());

  // Monitor state -> bank lane; both continue on the same tail.
  BatchMonitorBank bank(options);
  const size_t lane = bank.AddSensor("s0").value();
  ASSERT_TRUE(bank.RestoreState(lane, monitor.SaveState()).ok());
  ExpectStatesIdentical(bank.SaveState(lane), monitor.SaveState());
  for (double v : SensorStream(10, 200, 42.0)) {
    auto got = bank.Push(lane, v);
    auto want = monitor.Push(v);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectUpdatesIdentical(got.value(), want.value());
  }

  // Bank state -> fresh OnlineMonitor: the wire format is unchanged.
  OnlineMonitor resumed(options);
  ASSERT_TRUE(resumed.RestoreState(bank.SaveState(lane)).ok());
  ExpectStatesIdentical(resumed.SaveState(), monitor.SaveState());
}

TEST(BatchMonitorBank, MidWarmupCheckpointRoundTrips) {
  const OnlineMonitorOptions options = FastOptions();
  OnlineMonitor monitor(options);
  for (double v : SensorStream(11, 7, 5.0)) ASSERT_TRUE(monitor.Push(v).ok());

  BatchMonitorBank bank(options);
  const size_t lane = bank.AddSensor("s0").value();
  ASSERT_TRUE(bank.RestoreState(lane, monitor.SaveState()).ok());
  for (double v : SensorStream(12, 100, 5.0)) {
    auto got = bank.Push(lane, v);
    auto want = monitor.Push(v);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectUpdatesIdentical(got.value(), want.value());
  }
  ExpectStatesIdentical(bank.SaveState(lane), monitor.SaveState());
}

TEST(BatchMonitorBank, RestoreFloorsDegenerateSigma) {
  // Regression: a checkpoint carrying residual_sigma = 1e-300 (legal per
  // the > 0 validation) used to resume with every z-score astronomically
  // inflated. Restore must apply the same 1e-9 floor as Push/FitModel.
  const OnlineMonitorOptions options = FastOptions();
  OnlineMonitor monitor(options);
  for (double v : SensorStream(13, 200, 20.0)) {
    ASSERT_TRUE(monitor.Push(v).ok());
  }
  OnlineMonitorState state = monitor.SaveState();
  state.residual_sigma = 1e-300;

  BatchMonitorBank bank(options);
  const size_t lane = bank.AddSensor("s0").value();
  ASSERT_TRUE(bank.RestoreState(lane, state).ok());
  EXPECT_EQ(bank.SaveState(lane).residual_sigma, 1e-9);

  OnlineMonitor restored(options);
  ASSERT_TRUE(restored.RestoreState(state).ok());
  EXPECT_EQ(restored.SaveState().residual_sigma, 1e-9);

  // And the two floored implementations keep agreeing after resume.
  for (double v : SensorStream(14, 50, 20.0)) {
    auto got = bank.Push(lane, v);
    auto want = restored.Push(v);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectUpdatesIdentical(got.value(), want.value());
  }
}

TEST(BatchMonitorBank, RestoreRejectsInvalidStates) {
  const OnlineMonitorOptions options = FastOptions();
  BatchMonitorBank bank(options);
  const size_t lane = bank.AddSensor("s0").value();

  OnlineMonitorState state;
  state.residual_sigma = 0.0;  // must be > 0
  EXPECT_FALSE(bank.RestoreState(lane, state).ok());

  state.residual_sigma = 1.0;
  state.phi.assign(options.ar_order + 1, 0.1);  // wider than the SoA slot
  EXPECT_FALSE(bank.RestoreState(lane, state).ok());

  state.phi.clear();
  EXPECT_FALSE(bank.RestoreState(lane + 1, state).ok()) << "bad lane";
}

}  // namespace
}  // namespace hod::core
