#include "core/plant_health.h"

#include <algorithm>
#include <map>

#include "hierarchy/level_data.h"

namespace hod::core {

StatusOr<PlantHealthReport> SummarizePlantHealth(
    const hierarchy::Production& production,
    const hierarchy::CaqSpecification& specification,
    const PlantHealthOptions& options) {
  HOD_RETURN_IF_ERROR(hierarchy::ValidateProduction(production));
  HierarchicalDetector detector(&production, options.detector);
  PlantHealthReport report;

  // Per-machine finding collections for urgency + alerts.
  std::map<std::string, std::vector<OutlierFinding>> findings_by_machine;
  std::map<std::string, AlertManager> alerts_by_machine;

  auto ingest = [&](const std::string& machine_id,
                    const HierarchicalOutlierReport& level_report) {
    auto [it, inserted] =
        alerts_by_machine.try_emplace(machine_id, options.alerts);
    it->second.IngestReport(level_report);
    auto& findings = findings_by_machine[machine_id];
    findings.insert(findings.end(), level_report.findings.begin(),
                    level_report.findings.end());
    report.total_findings += level_report.findings.size();
  };

  for (const hierarchy::ProductionLine& line : production.lines) {
    for (const hierarchy::Machine& machine : line.machines) {
      // Phase level: redundant temperature channels carry the process
      // signal; scanning every sensor would multiply cost for little
      // extra evidence (vibration/oxygen anomalies degrade CAQ and are
      // caught at the job level).
      for (const hierarchy::Job& job : machine.jobs) {
        for (const hierarchy::Phase& phase : job.phases) {
          for (const auto& [sensor_id, series] : phase.sensor_series) {
            if (sensor_id.find("temp") == std::string::npos) continue;
            PhaseQuery query{machine.id, job.id, phase.name, sensor_id};
            auto phase_report = detector.FindPhaseOutliers(query);
            if (phase_report.ok()) ingest(machine.id, phase_report.value());
          }
        }
      }
      if (auto job_report = detector.FindJobOutliers(machine.id);
          job_report.ok()) {
        ingest(machine.id, job_report.value());
      }
    }
    // Line-level concept shifts per feature series.
    auto series_or = hierarchy::LineJobSeries(line);
    if (series_or.ok()) {
      for (const ts::TimeSeries& series : series_or.value()) {
        auto shifts = DetectConceptShifts(series, options.shifts);
        if (!shifts.ok()) continue;  // short lines are fine to skip
        for (const ConceptShift& shift : shifts.value()) {
          // Feature name follows the "<line>." prefix.
          std::string feature = series.name();
          if (feature.rfind(line.id + ".", 0) == 0) {
            feature = feature.substr(line.id.size() + 1);
          }
          report.line_shifts.push_back({line.id, feature, shift});
        }
      }
    }
  }

  // Production-level scores.
  auto machine_scores_or = detector.ScoreMachines();
  std::map<std::string, double> machine_scores;
  if (machine_scores_or.ok()) {
    machine_scores = std::move(machine_scores_or).value();
  }

  for (const hierarchy::ProductionLine& line : production.lines) {
    for (const hierarchy::Machine& machine : line.machines) {
      MachineHealth health;
      health.machine_id = machine.id;
      const auto score_it = machine_scores.find(machine.id);
      if (score_it != machine_scores.end()) {
        health.production_score = score_it->second;
      }
      // Capability.
      auto capability = hierarchy::MachineCapability(
          specification, machine, options.capability_window);
      if (capability.ok() && !capability->cpk.empty()) {
        health.min_cpk =
            *std::min_element(capability->cpk.begin(), capability->cpk.end());
      }
      // Urgency + alert counts.
      const auto findings_it = findings_by_machine.find(machine.id);
      if (findings_it != findings_by_machine.end()) {
        health.maintenance_urgency = MaintenanceUrgency(
            findings_it->second, machine.jobs.size());
      }
      const auto alerts_it = alerts_by_machine.find(machine.id);
      if (alerts_it != alerts_by_machine.end()) {
        for (const AlertEpisode& episode : alerts_it->second.Episodes()) {
          if (episode.severity == AlertSeverity::kCritical) {
            ++health.critical_episodes;
          } else {
            ++health.warning_episodes;
          }
        }
        health.calibration_suspects =
            alerts_it->second.CalibrationQueue().size();
      }
      report.machines.push_back(std::move(health));
    }
  }
  return report;
}

}  // namespace hod::core
