#include "stream/health.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "stream/engine.h"
#include "util/rng.h"

namespace hod::stream {
namespace {

using hierarchy::ProductionLevel;

/// Small thresholds so tests can walk the FSM in a handful of samples.
SensorHealthOptions FastOptions() {
  SensorHealthOptions options;
  options.flatline_window = 4;
  options.suspect_after = 2;
  options.quarantine_after = 4;
  options.suspect_clear_streak = 4;
  options.recovery_clean_streak = 8;
  options.staleness_timeout = 100.0;
  return options;
}

TEST(SensorHealthTracker, FlatlineWalksHealthySuspectQuarantined) {
  SensorHealthTracker tracker(FastOptions());
  ASSERT_TRUE(tracker.AddSensor("s", ProductionLevel::kPhase).ok());

  // First sample plus three repeats: flatline run below the window.
  for (int t = 0; t < 4; ++t) {
    auto obs = tracker.Observe("s", t, 5.0);
    EXPECT_EQ(obs.signal, HealthSignal::kClean) << "t=" << t;
    EXPECT_EQ(obs.state, SensorHealthState::kHealthy);
  }
  // Run reaches the window: every further stuck sample is fault evidence.
  auto evidence1 = tracker.Observe("s", 4, 5.0);
  EXPECT_EQ(evidence1.signal, HealthSignal::kFlatline);
  EXPECT_EQ(evidence1.state, SensorHealthState::kHealthy);
  auto evidence2 = tracker.Observe("s", 5, 5.0);
  EXPECT_EQ(evidence2.state, SensorHealthState::kSuspect);
  tracker.Observe("s", 6, 5.0);
  auto quarantine = tracker.Observe("s", 7, 5.0);
  EXPECT_EQ(quarantine.state, SensorHealthState::kQuarantined);
  EXPECT_TRUE(quarantine.entered_quarantine);
  EXPECT_EQ(tracker.StateOf("s"), SensorHealthState::kQuarantined);

  SensorHealthSnapshot snapshot = tracker.Snapshot();
  EXPECT_EQ(snapshot.quarantined, 1u);
  ASSERT_EQ(snapshot.sensors.size(), 1u);
  EXPECT_EQ(snapshot.sensors[0].quarantines, 1u);
}

TEST(SensorHealthTracker, RecoveryNeedsAFullCleanStreak) {
  SensorHealthTracker tracker(FastOptions());
  ASSERT_TRUE(tracker.AddSensor("s", ProductionLevel::kPhase).ok());
  // Drive straight into quarantine with a flatline.
  for (int t = 0; t < 8; ++t) tracker.Observe("s", t, 5.0);
  ASSERT_EQ(tracker.StateOf("s"), SensorHealthState::kQuarantined);

  // First clean (varying) sample: recovering, but not yet trusted.
  auto first_clean = tracker.Observe("s", 8, 6.0);
  EXPECT_EQ(first_clean.state, SensorHealthState::kRecovering);
  EXPECT_FALSE(first_clean.recovered);

  // Seven more clean samples complete the streak of eight.
  HealthObservation last;
  for (int t = 9; t < 16; ++t) {
    last = tracker.Observe("s", t, 6.0 + 0.5 * (t % 3));
  }
  EXPECT_EQ(last.state, SensorHealthState::kHealthy);
  EXPECT_TRUE(last.recovered);
  EXPECT_EQ(tracker.StateOf("s"), SensorHealthState::kHealthy);
}

TEST(SensorHealthTracker, FaultDuringRecoveryRequarantinesImmediately) {
  SensorHealthTracker tracker(FastOptions());
  ASSERT_TRUE(tracker.AddSensor("s", ProductionLevel::kPhase).ok());
  for (int t = 0; t < 8; ++t) tracker.Observe("s", t, 5.0);
  ASSERT_EQ(tracker.StateOf("s"), SensorHealthState::kQuarantined);
  tracker.Observe("s", 8, 6.0);  // recovering
  ASSERT_EQ(tracker.StateOf("s"), SensorHealthState::kRecovering);
  // A duplicate timestamp mid-recovery: back to quarantine, one strike.
  auto obs = tracker.Observe("s", 8, 7.0);
  EXPECT_EQ(obs.signal, HealthSignal::kDuplicate);
  EXPECT_EQ(obs.state, SensorHealthState::kQuarantined);
  EXPECT_TRUE(obs.entered_quarantine);
  SensorHealthSnapshot snapshot = tracker.Snapshot();
  ASSERT_EQ(snapshot.sensors.size(), 1u);
  EXPECT_EQ(snapshot.sensors[0].quarantines, 2u);
}

TEST(SensorHealthTracker, SuspectClearsBackToHealthy) {
  SensorHealthTracker tracker(FastOptions());
  ASSERT_TRUE(tracker.AddSensor("s", ProductionLevel::kPhase).ok());
  // Two rejections make the sensor suspect, but not quarantined.
  tracker.RecordRejection("s", HealthSignal::kNonFinite, 1.0);
  tracker.RecordRejection("s", HealthSignal::kNonFinite, 2.0);
  ASSERT_EQ(tracker.StateOf("s"), SensorHealthState::kSuspect);
  // Four clean samples clear it.
  for (int t = 3; t < 7; ++t) tracker.Observe("s", t, 10.0 + t);
  EXPECT_EQ(tracker.StateOf("s"), SensorHealthState::kHealthy);
}

TEST(SensorHealthTracker, RejectionsAloneCanQuarantine) {
  SensorHealthTracker tracker(FastOptions());
  ASSERT_TRUE(tracker.AddSensor("s", ProductionLevel::kPhase).ok());
  std::optional<HealthTransition> quarantine;
  for (int t = 0; t < 4; ++t) {
    quarantine = tracker.RecordRejection("s", HealthSignal::kNonFinite, t);
  }
  ASSERT_TRUE(quarantine.has_value());
  EXPECT_EQ(quarantine->to, SensorHealthState::kQuarantined);
  EXPECT_EQ(quarantine->reason, HealthSignal::kNonFinite);
  EXPECT_EQ(tracker.StateOf("s"), SensorHealthState::kQuarantined);
}

TEST(SensorHealthTracker, SweepStaleQuarantinesLaggingSensors) {
  SensorHealthTracker tracker(FastOptions());  // staleness_timeout = 100
  ASSERT_TRUE(tracker.AddSensor("live", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(tracker.AddSensor("dead", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(tracker.AddSensor("silent", ProductionLevel::kPhase).ok());

  tracker.Observe("dead", 0.0, 1.0);  // reports once, then goes quiet
  for (int t = 0; t <= 200; t += 10) tracker.Observe("live", t, 50.0 + t);

  std::vector<HealthTransition> transitions = tracker.SweepStale();
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].sensor_id, "dead");
  EXPECT_EQ(transitions[0].reason, HealthSignal::kStale);
  EXPECT_EQ(tracker.StateOf("dead"), SensorHealthState::kQuarantined);
  // Never-reporting sensors are absent, not stale.
  EXPECT_EQ(tracker.StateOf("silent"), SensorHealthState::kHealthy);
  EXPECT_EQ(tracker.StateOf("live"), SensorHealthState::kHealthy);
  // A second sweep is idempotent: already-quarantined sensors are skipped.
  EXPECT_TRUE(tracker.SweepStale().empty());
}

TEST(SensorHealthTracker, SweepNeedsAFrontierAdvanceBetweenRuns) {
  SensorHealthTracker tracker(FastOptions());  // staleness_timeout = 100
  ASSERT_TRUE(tracker.AddSensor("live", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(tracker.AddSensor("lagging", ProductionLevel::kPhase).ok());
  tracker.Observe("lagging", 0.0, 1.0);
  tracker.Observe("live", 90.0, 2.0);

  // The lagging sensor is 90 behind — inside the timeout. The sweep finds
  // nothing, and repeating it while the stream is paused must keep finding
  // nothing: wall-clock sweep cadences do not age a paused plant.
  EXPECT_TRUE(tracker.SweepStale().empty());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(tracker.SweepStale().empty());
  EXPECT_EQ(tracker.StateOf("lagging"), SensorHealthState::kHealthy);

  // Fresh ingest advances the frontier past the timeout: now the lag is
  // real staleness and the next sweep quarantines it.
  tracker.Observe("live", 150.0, 3.0);
  std::vector<HealthTransition> transitions = tracker.SweepStale();
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].sensor_id, "lagging");
  EXPECT_EQ(transitions[0].reason, HealthSignal::kStale);
}

TEST(SensorHealthTracker, RestoredStateIsTreatedAsAlreadySwept) {
  SensorHealthTracker original(FastOptions());
  ASSERT_TRUE(original.AddSensor("live", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(original.AddSensor("lagging", ProductionLevel::kPhase).ok());
  original.Observe("lagging", 0.0, 1.0);
  original.Observe("live", 150.0, 2.0);  // lag 150 > timeout 100

  SensorHealthTracker restored(FastOptions());
  ASSERT_TRUE(restored.AddSensor("live", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(restored.AddSensor("lagging", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(restored.RestoreState(original.SaveState()).ok());

  // The restart itself proves nothing about the lagging sensor: the first
  // sweep of an idle restored tracker must not quarantine it.
  EXPECT_TRUE(restored.SweepStale().empty());
  EXPECT_EQ(restored.StateOf("lagging"), SensorHealthState::kHealthy);

  // Quarantine decisions belong to fresh ingest advancing stream time.
  restored.Observe("live", 151.0, 3.0);
  std::vector<HealthTransition> transitions = restored.SweepStale();
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].sensor_id, "lagging");
}

TEST(SensorHealthTracker, DisabledTrackerIsInert) {
  SensorHealthOptions options = FastOptions();
  options.enabled = false;
  SensorHealthTracker tracker(options);
  ASSERT_TRUE(tracker.AddSensor("s", ProductionLevel::kPhase).ok());
  for (int t = 0; t < 100; ++t) {
    auto obs = tracker.Observe("s", 0.0, 5.0);  // duplicates AND flatline
    EXPECT_EQ(obs.state, SensorHealthState::kHealthy);
  }
  EXPECT_FALSE(
      tracker.RecordRejection("s", HealthSignal::kNonFinite, 0.0).has_value());
  EXPECT_TRUE(tracker.SweepStale().empty());
  EXPECT_TRUE(tracker.Transitions().empty());
}

TEST(SensorHealthTracker, SaveRestoreRoundTripsTheFsm) {
  SensorHealthTracker tracker(FastOptions());
  ASSERT_TRUE(tracker.AddSensor("a", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(tracker.AddSensor("b", ProductionLevel::kEnvironment).ok());
  for (int t = 0; t < 8; ++t) tracker.Observe("a", t, 5.0);  // quarantined
  for (int t = 0; t < 5; ++t) tracker.Observe("b", t, 1.0 + t);

  std::vector<SensorHealthStatus> saved = tracker.SaveState();

  SensorHealthTracker restored(FastOptions());
  ASSERT_TRUE(restored.AddSensor("a", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(restored.AddSensor("b", ProductionLevel::kEnvironment).ok());
  ASSERT_TRUE(restored.RestoreState(saved).ok());
  EXPECT_EQ(restored.StateOf("a"), SensorHealthState::kQuarantined);
  EXPECT_EQ(restored.StateOf("b"), SensorHealthState::kHealthy);
  EXPECT_DOUBLE_EQ(restored.frontier(), tracker.frontier());
  // The restored FSM continues identically: a clean sample starts recovery.
  auto obs = restored.Observe("a", 100.0, 9.0);
  EXPECT_EQ(obs.state, SensorHealthState::kRecovering);

  // Restoring state for an unknown sensor fails loudly.
  SensorHealthTracker empty(FastOptions());
  EXPECT_FALSE(empty.RestoreState(saved).ok());
}

// --- Engine-level fault scenarios (synchronous mode: deterministic) ---

StreamEngineOptions FaultDrillOptions() {
  StreamEngineOptions options;
  options.synchronous = true;
  options.snapshot_every = 1;
  options.monitor.warmup = 16;
  options.health = FastOptions();
  return options;
}

TEST(StreamEngineHealth, FlatlineQuarantineThenRecovery) {
  StreamEngineOptions options = FaultDrillOptions();
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());

  Rng rng(3);
  double t = 0.0;
  // Healthy phase: varying values.
  for (int i = 0; i < 40; ++i, t += 1.0) {
    auto ack = engine.Ingest({"s", ProductionLevel::kPhase, t,
                              rng.Gaussian(50.0, 0.5)});
    ASSERT_TRUE(ack.ok());
    EXPECT_TRUE(ack->update.has_value());
  }
  // Sensor freezes: the FSM must quarantine it.
  bool saw_withheld = false;
  for (int i = 0; i < 20; ++i, t += 1.0) {
    auto ack = engine.Ingest({"s", ProductionLevel::kPhase, t, 50.0});
    ASSERT_TRUE(ack.ok()) << "quarantine withholds, it does not reject";
    if (!ack->update.has_value()) saw_withheld = true;
  }
  EXPECT_TRUE(saw_withheld);
  EXPECT_EQ(engine.HealthStateOf("s"), SensorHealthState::kQuarantined);

  StreamStatsSnapshot mid = engine.stats();
  EXPECT_EQ(mid.sensor_faults, 1u);
  EXPECT_GT(mid.quarantined_samples, 0u);
  const size_t phase_index =
      static_cast<size_t>(hierarchy::LevelValue(ProductionLevel::kPhase)) - 1;
  EXPECT_GT(mid.level_quarantined[phase_index], 0u);

  EngineSnapshot snapshot = engine.Snapshot();
  EXPECT_EQ(snapshot.levels[phase_index].sensor_faults, 1u);
  EXPECT_EQ(snapshot.levels[phase_index].quarantined_sensors, 1u);
  ASSERT_EQ(snapshot.quarantined.size(), 1u);
  EXPECT_EQ(snapshot.quarantined[0].sensor_id, "s");
  EXPECT_EQ(snapshot.quarantined[0].reason, HealthSignal::kFlatline);

  // The sensor comes back to life and earns its way out of quarantine.
  for (int i = 0; i < 20; ++i, t += 1.0) {
    ASSERT_TRUE(engine
                    .Ingest({"s", ProductionLevel::kPhase, t,
                             rng.Gaussian(50.0, 0.5)})
                    .ok());
  }
  EXPECT_EQ(engine.HealthStateOf("s"), SensorHealthState::kHealthy);
  ASSERT_TRUE(engine.Flush().ok());
  StreamStatsSnapshot after = engine.stats();
  EXPECT_EQ(after.sensor_recoveries, 1u);
  EngineSnapshot final_snapshot = engine.Snapshot();
  EXPECT_TRUE(final_snapshot.quarantined.empty());
  EXPECT_EQ(final_snapshot.levels[phase_index].quarantined_sensors, 0u);
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(StreamEngineHealth, NaNBurstQuarantinesWithoutMovingLevelPeaks) {
  StreamEngineOptions options = FaultDrillOptions();
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("bad", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.AddSensor("good", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());

  Rng rng(7);
  double t = 0.0;
  for (int i = 0; i < 30; ++i, t += 1.0) {
    ASSERT_TRUE(engine
                    .Ingest({"good", ProductionLevel::kPhase, t,
                             rng.Gaussian(50.0, 0.4)})
                    .ok());
    ASSERT_TRUE(engine
                    .Ingest({"bad", ProductionLevel::kPhase, t,
                             rng.Gaussian(50.0, 0.4)})
                    .ok());
  }
  // ADC glitch: the bad sensor emits only NaN. Each is rejected at the
  // router (never reaches a monitor) and counts as fault evidence.
  for (int i = 0; i < 6; ++i, t += 1.0) {
    auto ack =
        engine.Ingest({"bad", ProductionLevel::kPhase, t, std::nan("")});
    EXPECT_EQ(ack.status().code(), StatusCode::kInvalidArgument);
    ASSERT_TRUE(engine
                    .Ingest({"good", ProductionLevel::kPhase, t,
                             rng.Gaussian(50.0, 0.4)})
                    .ok());
  }
  EXPECT_EQ(engine.HealthStateOf("bad"), SensorHealthState::kQuarantined);
  ASSERT_TRUE(engine.Flush().ok());

  const size_t phase_index =
      static_cast<size_t>(hierarchy::LevelValue(ProductionLevel::kPhase)) - 1;
  EngineSnapshot snapshot = engine.Snapshot();
  // The fault surfaced as a sensor-fault finding, not as a process
  // outlier: no alarms, no outlier samples, untouched peak.
  EXPECT_EQ(snapshot.levels[phase_index].sensor_faults, 1u);
  EXPECT_EQ(snapshot.levels[phase_index].alarms_raised, 0u);
  EXPECT_EQ(snapshot.levels[phase_index].outlier_samples, 0u);
  EXPECT_LT(snapshot.levels[phase_index].peak_score, 0.99);
  ASSERT_EQ(snapshot.quarantined.size(), 1u);
  EXPECT_EQ(snapshot.quarantined[0].sensor_id, "bad");
  EXPECT_EQ(snapshot.quarantined[0].reason, HealthSignal::kNonFinite);

  StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.rejected_non_finite, 6u);
  EXPECT_EQ(stats.sensor_faults, 1u);
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(StreamEngineHealth, SilentSensorIsSweptStaleInSyncMode) {
  StreamEngineOptions options = FaultDrillOptions();
  options.health.staleness_timeout = 50.0;
  options.health_sweep_every = 16;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("live", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.AddSensor("dead", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());

  Rng rng(11);
  ASSERT_TRUE(engine
                  .Ingest({"dead", ProductionLevel::kPhase, 0.0,
                           rng.Gaussian(50.0, 0.4)})
                  .ok());
  // The live sensor streams on; the dead one never reports again. The
  // periodic sweep must notice the widening gap.
  for (int t = 1; t <= 200; ++t) {
    ASSERT_TRUE(engine
                    .Ingest({"live", ProductionLevel::kPhase,
                             static_cast<double>(t),
                             rng.Gaussian(50.0, 0.4)})
                    .ok());
  }
  EXPECT_EQ(engine.HealthStateOf("dead"), SensorHealthState::kQuarantined);
  ASSERT_TRUE(engine.Flush().ok());
  EngineSnapshot snapshot = engine.Snapshot();
  ASSERT_EQ(snapshot.quarantined.size(), 1u);
  EXPECT_EQ(snapshot.quarantined[0].sensor_id, "dead");
  EXPECT_EQ(snapshot.quarantined[0].reason, HealthSignal::kStale);
  EXPECT_EQ(engine.stats().sensor_faults, 1u);
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(StreamEngineHealth, QuarantineRetractsAnActiveAlarm) {
  StreamEngineOptions options = FaultDrillOptions();
  options.monitor.warmup = 16;
  StreamEngine engine(options);
  ASSERT_TRUE(engine.AddSensor("s", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());

  Rng rng(13);
  double t = 0.0;
  for (int i = 0; i < 64; ++i, t += 1.0) {
    ASSERT_TRUE(engine
                    .Ingest({"s", ProductionLevel::kPhase, t,
                             rng.Gaussian(50.0, 0.3)})
                    .ok());
  }
  // A hard level shift raises a process alarm...
  for (int i = 0; i < 6; ++i, t += 1.0) {
    ASSERT_TRUE(
        engine.Ingest({"s", ProductionLevel::kPhase, t, 58.0 + 0.01 * i})
            .ok());
  }
  const size_t phase_index =
      static_cast<size_t>(hierarchy::LevelValue(ProductionLevel::kPhase)) - 1;
  ASSERT_TRUE(engine.Flush().ok());
  ASSERT_EQ(engine.Snapshot().levels[phase_index].active_alarms, 1u);

  // ...then the value freezes there: the flatline quarantine must retract
  // the alarm rather than leave a faulted sensor holding it open.
  for (int i = 0; i < 20; ++i, t += 1.0) {
    ASSERT_TRUE(
        engine.Ingest({"s", ProductionLevel::kPhase, t, 58.05}).ok());
  }
  ASSERT_EQ(engine.HealthStateOf("s"), SensorHealthState::kQuarantined);
  ASSERT_TRUE(engine.Flush().ok());
  EngineSnapshot snapshot = engine.Snapshot();
  EXPECT_EQ(snapshot.levels[phase_index].active_alarms, 0u);
  EXPECT_TRUE(snapshot.active_alarms.empty());
  ASSERT_EQ(snapshot.quarantined.size(), 1u);
  ASSERT_TRUE(engine.Stop().ok());
}

}  // namespace
}  // namespace hod::stream
