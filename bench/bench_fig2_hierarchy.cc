// E3 — Fig. 2: the five-level production hierarchy.
//
// Builds the simulated additive-manufacturing production and shows, per
// level: (a) what data shape lives there (the figure's structural claim)
// and (b) how well the level-appropriate detector separates that level's
// injected anomalies (the census the paper defers to future work).

#include "bench_util.h"
#include "core/hierarchical_detector.h"
#include "eval/metrics.h"
#include "hierarchy/level_data.h"
#include "sim/plant.h"

namespace hod {
namespace {

sim::SimulatedPlant BuildPlantForCensus() {
  sim::PlantOptions options;
  options.num_lines = 2;
  options.machines_per_line = 3;
  options.jobs_per_machine = 16;
  options.seed = 7;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.2;
  scenario.glitch_rate = 0.1;
  return sim::BuildPlant(options, scenario).value();
}

}  // namespace
}  // namespace hod

int main() {
  using namespace hod;
  bench::PrintHeader("E3", "The five production levels",
                     "Fig. 2 (hierarchical structure)");

  const sim::SimulatedPlant plant = BuildPlantForCensus();
  core::HierarchicalDetector detector(&plant.production);

  // ---- Structural census ------------------------------------------------
  bench::PrintSection("Data shapes per level (structural census)");
  size_t phase_series = 0;
  size_t phase_samples = 0;
  size_t event_symbols = 0;
  size_t jobs = 0;
  for (const auto& line : plant.production.lines) {
    for (const auto& machine : line.machines) {
      for (const auto& job : machine.jobs) {
        ++jobs;
        for (const auto& phase : job.phases) {
          phase_series += phase.sensor_series.size();
          for (const auto& [id, series] : phase.sensor_series) {
            phase_samples += series.size();
          }
          event_symbols += phase.events.size();
        }
      }
    }
  }
  size_t environment_samples = 0;
  for (const auto& line : plant.production.lines) {
    for (const auto& channel : line.environment) {
      environment_samples += channel.series.size();
    }
  }
  const auto machine_matrix =
      hierarchy::MachineSummaryMatrix(plant.production).value();

  Table census({"Lvl", "Level", "Data shape", "Objects", "Resolution"});
  census.AddRow({"1", "Phase Level",
                 "multi-dim high-res series + event sequences",
                 std::to_string(phase_series) + " series / " +
                     std::to_string(phase_samples) + " samples, " +
                     std::to_string(event_symbols) + " events",
                 "1 s"});
  census.AddRow({"2", "Job Level", "setup + CAQ vectors (10-D)",
                 std::to_string(jobs) + " jobs", "per job"});
  census.AddRow({"3", "Environment Level", "co-measured series (room temp)",
                 std::to_string(environment_samples) + " samples", "10 s"});
  census.AddRow({"4", "Production Line Level",
                 "jobs over time: setup/CAQ series",
                 std::to_string(plant.production.lines.size()) +
                     " lines x 10 feature series",
                 "per job"});
  census.AddRow({"5", "Production Level", "cross-machine summary vectors",
                 std::to_string(machine_matrix.machine_ids.size()) +
                     " machines x " +
                     std::to_string(machine_matrix.feature_names.size()) +
                     " features",
                 "per machine"});
  census.Print(std::cout);

  // ---- Detection quality per level ---------------------------------------
  bench::PrintSection(
      "Detection quality per level (level-matched detector vs. truth)");
  Table quality({"Lvl", "Level", "Algorithm", "ROC-AUC", "Ground truth"});

  // Level 1: phase series with injected anomalies.
  {
    double auc_sum = 0.0;
    size_t count = 0;
    for (const sim::AnomalyRecord& record : plant.truth.records) {
      if (record.level != hierarchy::ProductionLevel::kPhase) continue;
      core::PhaseQuery query{record.machine_id, record.job_id,
                             record.phase_name, record.sensor_id};
      auto scores = detector.ScorePhaseSeries(query);
      if (!scores.ok()) continue;
      const auto labels = plant.truth.PhaseLabelsOrZero(
          record.job_id, record.phase_name, record.sensor_id,
          scores->size());
      auto auc = eval::RocAuc(scores.value(), labels);
      if (auc.ok()) {
        auc_sum += auc.value();
        ++count;
      }
    }
    quality.AddRow({"1", "Phase Level", "AutoregressiveModel",
                    count > 0 ? bench::Fmt(auc_sum / count) : "-",
                    std::to_string(count) + " injected series"});
  }
  // Level 1b: discrete event sequences (the paper's second phase-level
  // data shape), scored by the UPA finite-state automaton.
  {
    double auc_sum = 0.0;
    size_t count = 0;
    for (const auto& line : plant.production.lines) {
      for (const auto& machine : line.machines) {
        for (const auto& job : machine.jobs) {
          if (plant.truth.job_labels.count(job.id) == 0) continue;
          for (const auto& phase : job.phases) {
            auto scores =
                detector.ScorePhaseEvents(machine.id, job.id, phase.name);
            if (!scores.ok()) continue;
            // Event truth: an event is anomalous when it is the FAULT
            // symbol (the simulator emits it over injected samples).
            eval::Truth truth(phase.events.size(), 0);
            size_t positives = 0;
            for (size_t e = 0; e < phase.events.size(); ++e) {
              if (phase.events[e] == sim::kFaultSymbol) {
                truth[e] = 1;
                ++positives;
              }
            }
            if (positives == 0 || positives == truth.size()) continue;
            auto auc = eval::RocAuc(scores.value(), truth);
            if (auc.ok()) {
              auc_sum += auc.value();
              ++count;
            }
          }
        }
      }
    }
    quality.AddRow({"1", "Phase Level (event sequences)",
                    "FiniteStateAutomaton",
                    count > 0 ? bench::Fmt(auc_sum / count) : "-",
                    std::to_string(count) + " fault-bearing phases"});
  }
  // Level 1c: joint multivariate scoring across all phase channels.
  {
    double auc_sum = 0.0;
    size_t count = 0;
    for (const sim::AnomalyRecord& record : plant.truth.records) {
      if (record.level != hierarchy::ProductionLevel::kPhase ||
          record.measurement_error) {
        continue;
      }
      auto scores = detector.ScorePhaseMultivariate(
          record.machine_id, record.job_id, record.phase_name);
      if (!scores.ok()) continue;
      const auto labels = plant.truth.PhaseLabelsOrZero(
          record.job_id, record.phase_name, record.sensor_id,
          scores->size());
      auto auc = eval::RocAuc(scores.value(), labels);
      if (auc.ok()) {
        auc_sum += auc.value();
        ++count;
      }
    }
    quality.AddRow({"1", "Phase Level (multivariate)",
                    "VectorAutoregressive",
                    count > 0 ? bench::Fmt(auc_sum / count) : "-",
                    std::to_string(count) + " process anomalies"});
  }
  // Level 2: per-job scores vs job labels.
  {
    double auc_sum = 0.0;
    size_t machines = 0;
    for (const auto& line : plant.production.lines) {
      for (const auto& machine : line.machines) {
        auto scores = detector.ScoreJobs(machine.id).value();
        eval::Truth truth;
        for (const auto& job : machine.jobs) {
          truth.push_back(plant.truth.job_labels.count(job.id) > 0 ? 1 : 0);
        }
        bool has_both = false;
        size_t positives = 0;
        for (uint8_t t : truth) positives += t;
        has_both = positives > 0 && positives < truth.size();
        if (!has_both) continue;
        auc_sum += eval::RocAuc(scores, truth).value();
        ++machines;
      }
    }
    quality.AddRow({"2", "Job Level", "ExpectationMaximization",
                    machines > 0 ? bench::Fmt(auc_sum / machines) : "-",
                    "anomalous jobs per machine"});
  }
  // Level 3: environment series vs environment labels.
  {
    double auc_sum = 0.0;
    size_t lines = 0;
    for (const auto& line : plant.production.lines) {
      auto scores = detector.ScoreEnvironment(line.id).value();
      const auto& labels =
          plant.truth.environment_labels.at(line.environment[0].sensor_id);
      auto auc = eval::RocAuc(scores, labels);
      if (auc.ok()) {
        auc_sum += auc.value();
        ++lines;
      }
    }
    quality.AddRow({"3", "Environment Level", "AutoregressiveModel",
                    lines > 0 ? bench::Fmt(auc_sum / lines) : "-",
                    "injected room-temp anomalies"});
  }
  // Level 4: line job series vs bad-batch flags.
  {
    double auc_sum = 0.0;
    size_t lines = 0;
    for (const auto& line : plant.production.lines) {
      const auto& flags = plant.truth.line_job_labels.at(line.id);
      size_t positives = 0;
      for (uint8_t flag : flags) positives += flag;
      if (positives == 0) continue;  // line without a bad batch
      auto scores = detector.ScoreLineJobs(line.id).value();
      auc_sum += eval::RocAuc(scores, flags).value();
      ++lines;
    }
    quality.AddRow({"4", "Production Line Level", "RobustZ",
                    lines > 0 ? bench::Fmt(auc_sum / lines) : "-",
                    "bad-powder-batch windows"});
  }
  // Level 5: machine scores vs rogue machine labels.
  {
    auto scores = detector.ScoreMachines().value();
    std::vector<double> score_vector;
    eval::Truth truth;
    for (const auto& [machine_id, score] : scores) {
      score_vector.push_back(score);
      truth.push_back(
          plant.truth.machine_labels.count(machine_id) > 0 ? 1 : 0);
    }
    quality.AddRow({"5", "Production Level", "RobustZVector",
                    bench::Fmt(eval::RocAuc(score_vector, truth).value()),
                    "rogue (degraded) machine"});
  }
  quality.Print(std::cout);
  std::cout << "\nExpected shape: every level separates its own anomaly kind "
               "well above\nchance (AUC >> 0.5), using the resolution-matched "
               "algorithm of Section 3.\n";
  return 0;
}
