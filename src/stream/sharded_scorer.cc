#include "stream/sharded_scorer.h"

#include <utility>

#include "stream/peer_group.h"
#include "util/thread_pool.h"

namespace hod::stream {

ShardedScorer::ShardedScorer(const ShardedScorerOptions& options,
                             StreamStats* stats,
                             BoundedQueue<ScoredSample>* collector,
                             SensorHealthTracker* health,
                             PeerGroupMonitor* peers)
    : options_(options),
      stats_(stats),
      collector_(collector),
      health_(health),
      peers_(peers) {
  const size_t n = options_.num_shards == 0 ? 1 : options_.num_shards;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        options_.producer_hint, options_.queue_capacity,
        options_.backpressure, options_.block_timeout, options_.monitor));
  }
}

ShardedScorer::~ShardedScorer() { Stop(); }

Status ShardedScorer::AddSensor(size_t shard, const std::string& sensor_id) {
  if (running()) {
    return Status::FailedPrecondition("scorer already started");
  }
  if (shard >= shards_.size()) {
    return Status::OutOfRange("shard index out of range");
  }
  if (!shards_[shard]->bank.AddSensor(sensor_id).ok()) {
    return Status::InvalidArgument("sensor already on shard: " + sensor_id);
  }
  if (options_.shift_enabled) {
    // Lane ids are append-only, so the detector vector stays parallel to
    // the bank's lanes.
    shards_[shard]->bocpd.emplace_back(options_.bocpd);
  }
  return Status::Ok();
}

size_t ShardedScorer::LaneOf(size_t shard, const std::string& sensor_id) const {
  if (shard >= shards_.size()) return core::BatchMonitorBank::kNotFound;
  return shards_[shard]->bank.IndexOf(sensor_id);
}

void ShardedScorer::SyncBaselineFreeze(Shard& shard, size_t lane,
                                       bool admitted) {
  if (!admitted) {
    // First quarantined sample: freeze the baseline so nothing (notably a
    // concept shift confirmed from samples still in flight) can clear it
    // while the health FSM owns the channel.
    if (!shard.bank.baseline_frozen(lane)) {
      shard.bank.FreezeBaselineLane(lane,
                                    core::BaselineActor::kHealthQuarantine);
    }
    return;
  }
  if (shard.bank.baseline_frozen(lane)) {
    // First admitted sample after quarantine (kRecovering): thaw. A reset
    // a concept shift parked during the freeze applies now — recovery
    // seeds from the post-shift posterior instead of the stale regime.
    if (shard.bank.ThawBaselineLane(lane,
                                    core::BaselineActor::kHealthQuarantine) &&
        stats_ != nullptr) {
      stats_->RecordBaselineReset();
    }
  }
}

std::optional<core::BocpdShift> ShardedScorer::FeedBocpd(
    Shard& shard, size_t lane, const SensorSample& sample, bool* deferred) {
  if (lane >= shard.bocpd.size()) return std::nullopt;
  std::optional<core::BocpdShift> confirmed =
      shard.bocpd[lane].Push(sample.value);
  if (!confirmed.has_value()) return std::nullopt;
  confirmed->shift.time = sample.ts;
  if (deferred != nullptr) {
    *deferred = ApplyShiftReset(shard, lane, *confirmed);
  }
  return confirmed;
}

bool ShardedScorer::ApplyShiftReset(Shard& shard, size_t lane,
                                    const core::BocpdShift& shift) {
  const bool frozen = shard.bank.baseline_frozen(lane);
  core::BaselineSeed seed;
  seed.level = shift.shift.after_mean;
  seed.sigma = shift.after_sigma;
  seed.support = shift.run_length;
  // While frozen this parks the reset for the thaw (quarantine exit
  // timing stays solely with the health FSM's clean streak).
  shard.bank.ResetBaselineLane(lane, core::BaselineActor::kConceptShift,
                               seed);
  if (stats_ != nullptr) {
    stats_->RecordConceptShift();
    if (frozen) {
      stats_->RecordBaselineResetDeferred();
    } else {
      stats_->RecordBaselineReset();
    }
  }
  return frozen;
}

void ShardedScorer::ForwardShiftEvent(const SensorSample& sample,
                                      const core::BocpdShift& shift) {
  if (collector_ == nullptr) return;
  ScoredSample event;
  event.kind = StreamEventKind::kConceptShift;
  event.sensor_id = sample.sensor_id;
  event.level = sample.level;
  event.ts = sample.ts;
  event.value = sample.value;
  event.shift_before = shift.shift.before_mean;
  event.shift_after = shift.shift.after_mean;
  event.shift_magnitude = shift.shift.magnitude_sigmas;
  event.shift_evidence = shift.evidence;
  event.shift_run_length = shift.run_length;
  ForwardToCollector(std::move(event));
}

Status ShardedScorer::Start() {
  if (running()) return Status::FailedPrecondition("scorer already started");
  if (stopped_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("scorer already stopped");
  }
  running_.store(true, std::memory_order_release);
  if (options_.executor != nullptr) {
    // Executor mode: no threads to spawn. Drain tasks are armed lazily by
    // NotifyShard on the first Submit to each shard.
    return Status::Ok();
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::jthread([this, i] { WorkerLoop(i); });
  }
  return Status::Ok();
}

Status ShardedScorer::Submit(size_t shard, SensorSample sample,
                             BackpressurePolicy policy) {
  if (shard >= shards_.size()) {
    return Status::OutOfRange("shard index out of range");
  }
  Shard& s = *shards_[shard];
  const hierarchy::ProductionLevel level = sample.level;
  // Count before pushing: the worker may process the sample before this
  // line otherwise, and Flush would see processed > submitted.
  s.submitted.fetch_add(1, std::memory_order_relaxed);
  std::optional<SensorSample> evicted;
  Status status = s.queue->Push(std::move(sample), policy, &evicted);
  if (evicted.has_value() && stats_ != nullptr) {
    // kDropOldest made room by discarding the queue head; charge the drop
    // to the level of the sample that was actually lost.
    stats_->RecordLevelDropped(evicted->level);
  }
  if (!status.ok()) {
    s.submitted.fetch_sub(1, std::memory_order_relaxed);
    if (stats_ != nullptr) {
      if (status.code() == StatusCode::kOutOfRange) {
        stats_->RecordRejectedQueueFull();
        stats_->RecordLevelRejected(level);
      } else if (status.code() == StatusCode::kDeadlineExceeded) {
        stats_->RecordRejectedTimeout();
        stats_->RecordLevelRejected(level);
      } else if (status.code() == StatusCode::kFailedPrecondition) {
        // Queue already closed (shutdown race). The sample was counted as
        // ingested by the router, so it must land in a rejection bucket or
        // the conservation identity ingested == scored + dropped +
        // rejected + quarantined breaks on every shutdown.
        stats_->RecordRejectedQueueClosed();
        stats_->RecordLevelRejected(level);
      }
    }
    return status;
  }
  if (options_.executor != nullptr && running()) NotifyShard(shard);
  return Status::Ok();
}

void ShardedScorer::NotifyShard(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  const int prev =
      shard.task_state.exchange(kTaskArmed, std::memory_order_acq_rel);
  if (prev != kTaskIdle) return;  // a task is pending or will loop again
  tasks_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (!options_.executor->Submit([this, shard_index] {
        DrainTask(shard_index);
      })) {
    // Pool already shut down (engines must stop first; defensive). Undo so
    // Stop()'s quiescence wait does not hang on a task that never runs.
    shard.task_state.store(kTaskIdle, std::memory_order_release);
    tasks_in_flight_.fetch_sub(1, std::memory_order_release);
  }
}

void ShardedScorer::DrainTask(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<SensorSample> batch;
  batch.reserve(options_.max_batch);
  for (;;) {
    shard.task_state.store(kTaskRunning, std::memory_order_release);
    size_t batches = 0;
    bool more = false;
    while (batches < kBatchesPerSlice) {
      batch.clear();
      if (shard.queue->TryPopBatch(batch, options_.max_batch) == 0) break;
      if (options_.worker_tick_hook) options_.worker_tick_hook(shard_index);
      ProcessBatch(shard_index, batch);
      ++batches;
      more = batches == kBatchesPerSlice && shard.queue->size() > 0;
    }
    if (more) {
      // Slice exhausted with work left: re-arm and resubmit instead of
      // looping, so other plants' shards get pool time in between.
      shard.task_state.store(kTaskArmed, std::memory_order_release);
      if (options_.executor->Submit([this, shard_index] {
            DrainTask(shard_index);
          })) {
        return;  // in_flight carries over to the resubmitted task
      }
      // Pool shutting down: fall through and finish the drain inline.
      continue;
    }
    int expected = kTaskRunning;
    if (shard.task_state.compare_exchange_strong(
            expected, kTaskIdle, std::memory_order_acq_rel)) {
      break;  // no notify raced the final empty pop; task retires
    }
    // A producer re-armed us between the empty pop and the CAS — its
    // sample may already be in the queue. Loop and drain again.
  }
  // The decrement, notify, and the quiescence predicate in Stop()/Flush()
  // must all be ordered by flush_mu_: if the count dropped before the lock,
  // a waiter could observe "no task in flight", return, and destroy the
  // scorer while this task still touches flush_mu_/flush_cv_.
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
    tasks_in_flight_.fetch_sub(1, std::memory_order_release);
    flush_cv_.notify_all();
  }
}

StatusOr<InlineScore> ShardedScorer::ScoreNow(size_t shard,
                                              const SensorSample& sample,
                                              uint32_t lane_hint) {
  if (running()) {
    return Status::FailedPrecondition(
        "ScoreNow is synchronous-mode only; workers are running");
  }
  if (shard >= shards_.size()) {
    return Status::OutOfRange("shard index out of range");
  }
  Shard& s = *shards_[shard];
  const size_t lane = (lane_hint != kNoLane && lane_hint < s.bank.size())
                          ? static_cast<size_t>(lane_hint)
                          : s.bank.IndexOf(sample.sensor_id);
  if (lane == core::BatchMonitorBank::kNotFound) {
    return Status::NotFound("no monitor for sensor: " + sample.sensor_id);
  }
  const HealthGateResult gate = HealthGate(sample);
  if (health_ != nullptr && health_->enabled()) {
    SyncBaselineFreeze(s, lane, gate.score);
  }
  InlineScore result;
  if (!gate.score) return result;  // quarantined: withheld from the monitor
  HOD_ASSIGN_OR_RETURN(result.update, s.bank.Push(lane, sample.value));
  result.scored = true;
  ObservePeers(sample, gate.forward);
  const core::MonitorUpdate& update = result.update;
  if (stats_ != nullptr) {
    stats_->RecordScored(1);
    stats_->RecordBatch(1);
    // Same gating as the threaded path: recovery-phase alarm transitions
    // are withheld along with the update itself.
    if (gate.forward) {
      if (update.alarm_raised) stats_->RecordAlarmRaised();
      if (update.alarm_cleared) stats_->RecordAlarmCleared();
    }
  }
  if (collector_ != nullptr && gate.forward &&
      (update.alarm_raised || update.alarm_cleared ||
       update.score > options_.forward_threshold)) {
    ScoredSample scored;
    scored.sensor_id = sample.sensor_id;
    scored.level = sample.level;
    scored.ts = sample.ts;
    scored.value = sample.value;
    scored.update = update;
    // Internal pipeline edge: lossless regardless of the ingress policy.
    ForwardToCollector(std::move(scored));
  }
  // The shift detector sees the sample after the monitor scored it, so a
  // confirm re-baselines before the NEXT sample — same sequencing as the
  // batch path's segmented PushBatch.
  if (!s.bocpd.empty()) {
    bool deferred = false;
    std::optional<core::BocpdShift> shift =
        FeedBocpd(s, lane, sample, &deferred);
    if (shift.has_value()) ForwardShiftEvent(sample, *shift);
  }
  return result;
}

Status ShardedScorer::Flush() {
  if (!running()) return Status::Ok();
  std::unique_lock<std::mutex> lock(flush_mu_);
  flush_cv_.wait(lock, [&] {
    for (const auto& shard : shards_) {
      // Evicted (kDropOldest) samples were submitted but never reach the
      // worker — they count as handled.
      if (shard->processed.load(std::memory_order_acquire) +
              shard->queue->dropped() !=
          shard->submitted.load(std::memory_order_acquire)) {
        return false;
      }
    }
    return true;
  });
  return Status::Ok();
}

void ShardedScorer::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& shard : shards_) shard->queue->Close();
  if (options_.executor != nullptr) {
    // Pooled drains own the tail: Close() leaves queued samples poppable,
    // so arming every shard once guarantees a task sees whatever is left
    // (including samples submitted before Start, which never notified).
    for (size_t i = 0; i < shards_.size(); ++i) NotifyShard(i);
    // Quiesce: no drain task in flight and every submitted sample
    // processed or dropped. A racing Submit that hits the closed queue
    // undoes its `submitted` count without a notify, so poll with a short
    // timeout instead of relying purely on wakeups.
    std::unique_lock<std::mutex> lock(flush_mu_);
    const auto quiesced = [&] {
      if (tasks_in_flight_.load(std::memory_order_acquire) != 0) {
        return false;
      }
      for (const auto& shard : shards_) {
        if (shard->processed.load(std::memory_order_acquire) +
                shard->queue->dropped() !=
            shard->submitted.load(std::memory_order_acquire)) {
          return false;
        }
      }
      return true;
    };
    while (!quiesced()) {
      flush_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
    lock.unlock();
    running_.store(false, std::memory_order_release);
    return;
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Straggler drain: the SPSC ring's Close() is lock-free on the producer
  // side, so a Submit that passed the closed check may publish its sample
  // after the worker already observed "closed and drained" and exited.
  // Score those here, on the Stop thread, until every submitted sample is
  // accounted for. Convergence: each in-flight Submit either lands (we pop
  // it) or fails and undoes its `submitted` increment.
  std::vector<SensorSample> batch;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    while (shard.processed.load(std::memory_order_acquire) +
               shard.queue->dropped() <
           shard.submitted.load(std::memory_order_acquire)) {
      batch.clear();
      if (shard.queue->TryPopBatch(batch, options_.max_batch) == 0) {
        std::this_thread::yield();
        continue;
      }
      ProcessBatch(i, batch);
    }
  }
  running_.store(false, std::memory_order_release);
}

void ShardedScorer::FillQueueStats(StreamStatsSnapshot& snapshot) const {
  snapshot.dropped = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const uint64_t high_water = shards_[i]->queue->high_water();
    if (i < snapshot.shard_queue_high_water.size()) {
      snapshot.shard_queue_high_water[i] = high_water;
    }
    snapshot.dropped += shards_[i]->queue->dropped();
  }
}

uint64_t ShardedScorer::ShardHeartbeat(size_t shard) const {
  if (shard >= shards_.size()) return 0;
  return shards_[shard]->heartbeat.load(std::memory_order_acquire);
}

size_t ShardedScorer::ShardQueueDepth(size_t shard) const {
  if (shard >= shards_.size()) return 0;
  return shards_[shard]->queue->size();
}

StatusOr<SensorProbe> ShardedScorer::Probe(
    const std::string& sensor_id) const {
  if (running()) {
    return Status::FailedPrecondition(
        "Probe requires a stopped or synchronous scorer");
  }
  for (const auto& shard : shards_) {
    const size_t lane = shard->bank.IndexOf(sensor_id);
    if (lane == core::BatchMonitorBank::kNotFound) continue;
    SensorProbe probe;
    probe.samples_seen = shard->bank.samples_seen(lane);
    probe.alarms_raised = shard->bank.alarms_raised(lane);
    probe.alarm = shard->bank.alarm(lane);
    probe.model_ready = shard->bank.model_ready(lane);
    return probe;
  }
  return Status::NotFound("no monitor for sensor: " + sensor_id);
}

StatusOr<core::OnlineMonitorState> ShardedScorer::SaveMonitor(
    const std::string& sensor_id) const {
  if (running()) {
    return Status::FailedPrecondition(
        "SaveMonitor requires a stopped or synchronous scorer");
  }
  for (const auto& shard : shards_) {
    const size_t lane = shard->bank.IndexOf(sensor_id);
    if (lane == core::BatchMonitorBank::kNotFound) continue;
    return shard->bank.SaveState(lane);
  }
  return Status::NotFound("no monitor for sensor: " + sensor_id);
}

StatusOr<core::OnlineMonitorState> ShardedScorer::SaveMonitorQuiesced(
    const std::string& sensor_id) const {
  for (const auto& shard : shards_) {
    const size_t lane = shard->bank.IndexOf(sensor_id);
    if (lane == core::BatchMonitorBank::kNotFound) continue;
    return shard->bank.SaveState(lane);
  }
  return Status::NotFound("no monitor for sensor: " + sensor_id);
}

Status ShardedScorer::RestoreMonitor(const std::string& sensor_id,
                                     const core::OnlineMonitorState& state) {
  if (running()) {
    return Status::FailedPrecondition(
        "RestoreMonitor requires a stopped or synchronous scorer");
  }
  for (const auto& shard : shards_) {
    const size_t lane = shard->bank.IndexOf(sensor_id);
    if (lane == core::BatchMonitorBank::kNotFound) continue;
    return shard->bank.RestoreState(lane, state);
  }
  return Status::NotFound("no monitor for sensor: " + sensor_id);
}

StatusOr<core::BocpdState> ShardedScorer::SaveBocpdQuiesced(
    const std::string& sensor_id) const {
  for (const auto& shard : shards_) {
    const size_t lane = shard->bank.IndexOf(sensor_id);
    if (lane == core::BatchMonitorBank::kNotFound) continue;
    if (lane >= shard->bocpd.size()) {
      return Status::NotFound("no shift detector for sensor: " + sensor_id);
    }
    return shard->bocpd[lane].SaveState();
  }
  return Status::NotFound("no monitor for sensor: " + sensor_id);
}

Status ShardedScorer::RestoreBocpd(const std::string& sensor_id,
                                   const core::BocpdState& state) {
  if (running()) {
    return Status::FailedPrecondition(
        "RestoreBocpd requires a stopped or synchronous scorer");
  }
  for (const auto& shard : shards_) {
    const size_t lane = shard->bank.IndexOf(sensor_id);
    if (lane == core::BatchMonitorBank::kNotFound) continue;
    if (lane >= shard->bocpd.size()) {
      return Status::NotFound("no shift detector for sensor: " + sensor_id);
    }
    return shard->bocpd[lane].RestoreState(state);
  }
  return Status::NotFound("no monitor for sensor: " + sensor_id);
}

void ShardedScorer::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<SensorSample> batch;
  batch.reserve(options_.max_batch);
  while (shard.queue->PopBatch(batch, options_.max_batch)) {
    if (options_.worker_tick_hook) options_.worker_tick_hook(shard_index);
    ProcessBatch(shard_index, batch);
    batch.clear();
  }
}

void ShardedScorer::ProcessBatch(size_t shard_index,
                                 std::vector<SensorSample>& batch) {
  Shard& shard = *shards_[shard_index];
  if (stats_ != nullptr) stats_->RecordBatch(batch.size());

  // Pass 1 — sample order: lane lookup (the router's cached lane when the
  // sample carries one, the string-keyed map otherwise) and health gating.
  // Quarantine and recovery events forward here, so health transitions
  // keep their per-sensor order relative to this sensor's later samples.
  // Admitted samples also feed their lane's BOCPD detector here; a
  // confirmed shift is recorded by admitted row so pass 2 can sequence
  // the re-baseline exactly where the synchronous path would.
  shard.batch_rows.clear();
  shard.batch_lanes.clear();
  shard.batch_values.clear();
  shard.batch_forward.clear();
  shard.batch_shifts.clear();
  for (size_t i = 0; i < batch.size(); ++i) {
    const SensorSample& sample = batch[i];
    const size_t lane =
        (sample.lane != kNoLane && sample.lane < shard.bank.size())
            ? static_cast<size_t>(sample.lane)
            : shard.bank.IndexOf(sample.sensor_id);
    if (lane == core::BatchMonitorBank::kNotFound) {
      continue;  // router guarantees this
    }
    const HealthGateResult gate = HealthGate(sample);
    if (health_ != nullptr && health_->enabled()) {
      SyncBaselineFreeze(shard, lane, gate.score);
    }
    if (!gate.score) continue;  // quarantined: withheld from the monitor
    if (!shard.bocpd.empty()) {
      std::optional<core::BocpdShift> shift =
          FeedBocpd(shard, lane, sample, nullptr);
      if (shift.has_value()) {
        shard.batch_shifts.push_back(Shard::PendingShift{
            shard.batch_rows.size(), lane, *shift, false});
      }
    }
    shard.batch_rows.push_back(i);
    shard.batch_lanes.push_back(lane);
    shard.batch_values.push_back(sample.value);
    shard.batch_forward.push_back(gate.forward ? 1 : 0);
  }

  // Pass 2 — the vectorized hot path: PushBatch scores every admitted
  // sample through the SoA bank. A confirmed shift cuts the batch after
  // its confirming row: the re-baseline applies between segments, so the
  // confirming sample scores against the old model and every later sample
  // of that sensor against the new one — the synchronous sequencing.
  const size_t admitted = shard.batch_rows.size();
  shard.batch_updates.resize(admitted);
  shard.batch_scored.resize(admitted);
  // (Frozen state is read at apply time, after all of pass 1: if a later
  // sample in this same batch froze the lane, the reset parks as pending
  // where the synchronous path would have applied it before the freeze.
  // Either way the seed survives and installs on thaw.)
  size_t seg_start = 0;
  for (auto& pending : shard.batch_shifts) {
    const size_t seg_end = pending.admitted_row + 1;
    shard.bank.PushBatch(shard.batch_lanes.data() + seg_start,
                         shard.batch_values.data() + seg_start,
                         seg_end - seg_start,
                         shard.batch_updates.data() + seg_start,
                         shard.batch_scored.data() + seg_start);
    pending.deferred = ApplyShiftReset(shard, pending.lane, pending.shift);
    seg_start = seg_end;
  }
  shard.bank.PushBatch(shard.batch_lanes.data() + seg_start,
                       shard.batch_values.data() + seg_start,
                       admitted - seg_start,
                       shard.batch_updates.data() + seg_start,
                       shard.batch_scored.data() + seg_start);

  // Pass 3 — sample order again: peer observation, alarm accounting, and
  // collector forwarding, gated exactly as the per-sample path was.
  // Concept-shift events follow their confirming sample's score event.
  size_t scored = 0;
  size_t shift_idx = 0;
  for (size_t t = 0; t < admitted; ++t) {
    if (shard.batch_scored[t] == 0) continue;  // router filters non-finites
    ++scored;
    SensorSample& sample = batch[shard.batch_rows[t]];
    const bool has_shift = shift_idx < shard.batch_shifts.size() &&
                           shard.batch_shifts[shift_idx].admitted_row == t;
    const bool forward = shard.batch_forward[t] != 0;
    ObservePeers(sample, forward);
    const core::MonitorUpdate& update = shard.batch_updates[t];
    // Recovering sensors feed their monitor (to re-warm the baseline) but
    // their updates are withheld from the collector — and from the alarm
    // counters, or a phantom alarm raised against a half-warmed model
    // would be reported while the level aggregates never see it.
    if (stats_ != nullptr && forward) {
      if (update.alarm_raised) stats_->RecordAlarmRaised();
      if (update.alarm_cleared) stats_->RecordAlarmCleared();
    }
    if (collector_ != nullptr && forward &&
        (update.alarm_raised || update.alarm_cleared ||
         update.score > options_.forward_threshold)) {
      ScoredSample out;
      if (has_shift) {
        out.sensor_id = sample.sensor_id;  // the shift event still needs it
      } else {
        out.sensor_id = std::move(sample.sensor_id);
      }
      out.level = sample.level;
      out.ts = sample.ts;
      out.value = sample.value;
      out.update = update;
      ForwardToCollector(std::move(out));
    }
    if (has_shift) {
      // Operational metadata, forwarded regardless of the recovery gate:
      // the collector must learn the channel was re-baselined.
      ForwardShiftEvent(sample, shard.batch_shifts[shift_idx].shift);
      ++shift_idx;
    }
  }
  if (stats_ != nullptr && scored > 0) stats_->RecordScored(scored);
  shard.processed.fetch_add(batch.size(), std::memory_order_release);
  shard.heartbeat.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(flush_mu_);
  }
  flush_cv_.notify_all();
}

ShardedScorer::HealthGateResult ShardedScorer::HealthGate(
    const SensorSample& sample) {
  HealthGateResult gate;
  if (health_ == nullptr || !health_->enabled()) return gate;
  const HealthObservation obs =
      health_->Observe(sample.sensor_id, sample.ts, sample.value);
  if (obs.entered_quarantine) {
    ForwardEvent(StreamEventKind::kSensorFault, sample, obs.signal);
  } else if (obs.recovered) {
    ForwardEvent(StreamEventKind::kSensorRecovered, sample,
                 HealthSignal::kClean);
  }
  switch (obs.state) {
    case SensorHealthState::kQuarantined:
      // Protect the baseline: a faulting channel must not move its own
      // model, and must not feed level aggregation.
      gate.score = false;
      gate.forward = false;
      break;
    case SensorHealthState::kRecovering:
      // Refill the AR window with post-fault data, but keep the channel
      // out of aggregates until it has earned trust back.
      gate.forward = false;
      break;
    case SensorHealthState::kHealthy:
    case SensorHealthState::kSuspect:
      break;
  }
  return gate;
}

void ShardedScorer::ForwardEvent(StreamEventKind kind,
                                 const SensorSample& sample,
                                 HealthSignal reason) {
  if (collector_ == nullptr) return;
  ScoredSample event;
  event.kind = kind;
  event.sensor_id = sample.sensor_id;
  event.level = sample.level;
  event.ts = sample.ts;
  event.value = sample.value;
  event.fault_reason = reason;
  ForwardToCollector(std::move(event));
}

void ShardedScorer::ObservePeers(const SensorSample& sample, bool forward) {
  if (peers_ == nullptr || !peers_->enabled()) return;
  std::optional<PeerDeviation> fired =
      peers_->Observe(sample.sensor_id, sample.level, sample.ts, sample.value);
  if (!fired.has_value() || collector_ == nullptr || !forward) return;
  ScoredSample event;
  event.kind = StreamEventKind::kPeerDeviation;
  event.sensor_id = sample.sensor_id;
  event.level = sample.level;
  event.ts = sample.ts;
  event.value = sample.value;
  event.peer_group = fired->group_id;
  event.peer_value_z = fired->value_z;
  event.peer_slope_z = fired->slope_z;
  ForwardToCollector(std::move(event));
}

void ShardedScorer::ForwardToCollector(ScoredSample event) {
  if (collector_ == nullptr) return;
  Status status = collector_->Push(std::move(event));
  if (status.ok()) {
    forwarded_.fetch_add(1, std::memory_order_release);
    if (options_.collector_notify) options_.collector_notify();
    return;
  }
  // The collector refused (it closes before the scorer during engine
  // shutdown). Counting this push as forwarded would make the engine's
  // Flush wait for a collected_ count that can never arrive.
  forward_failed_.fetch_add(1, std::memory_order_release);
  if (stats_ != nullptr) stats_->RecordForwardFailed();
}

}  // namespace hod::stream
