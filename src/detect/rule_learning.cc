#include "detect/rule_learning.h"

#include <algorithm>

namespace hod::detect {

RuleLearningDetector::RuleLearningDetector(RuleLearningOptions options)
    : options_(options) {}

Status RuleLearningDetector::Train(
    const std::vector<ts::DiscreteSequence>& normal) {
  (void)normal;
  return Status::FailedPrecondition(
      "RuleLearning is supervised; call TrainSupervised with labels");
}

Status RuleLearningDetector::TrainSupervised(
    const std::vector<ts::DiscreteSequence>& sequences,
    const std::vector<Labels>& labels) {
  if (options_.max_order == 0) {
    return Status::InvalidArgument("max_order must be > 0");
  }
  if (sequences.size() != labels.size()) {
    return Status::InvalidArgument("one label vector per sequence required");
  }
  rules_.assign(options_.max_order, {});
  size_t total = 0;
  size_t anomalous = 0;
  for (size_t s = 0; s < sequences.size(); ++s) {
    HOD_RETURN_IF_ERROR(sequences[s].Validate());
    const auto& syms = sequences[s].symbols();
    if (labels[s].size() != syms.size()) {
      return Status::InvalidArgument("label/sequence length mismatch");
    }
    for (size_t i = 0; i < syms.size(); ++i) {
      ++total;
      const bool is_anomalous = labels[s][i] != 0;
      if (is_anomalous) ++anomalous;
      const size_t max_len = std::min(options_.max_order, i + 1);
      for (size_t len = 1; len <= max_len; ++len) {
        std::vector<ts::Symbol> body(syms.begin() + (i + 1 - len),
                                     syms.begin() + i + 1);
        RuleStats& stats = rules_[len - 1][std::move(body)];
        ++stats.count;
        if (is_anomalous) ++stats.anomalous;
      }
    }
  }
  if (total == 0) return Status::InvalidArgument("no training positions");
  base_rate_ = static_cast<double>(anomalous) / static_cast<double>(total);
  trained_ = true;
  return Status::Ok();
}

size_t RuleLearningDetector::num_rules() const {
  size_t total = 0;
  for (const auto& level : rules_) total += level.size();
  return total;
}

StatusOr<std::vector<double>> RuleLearningDetector::Score(
    const ts::DiscreteSequence& sequence) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  HOD_RETURN_IF_ERROR(sequence.Validate());
  const auto& syms = sequence.symbols();
  std::vector<double> scores(syms.size(), 0.0);
  for (size_t i = 0; i < syms.size(); ++i) {
    // Longest supported rule wins; a window never seen in training is
    // itself suspicious (mixed rule: novel pattern).
    const size_t max_len = std::min(options_.max_order, i + 1);
    double score = 1.0;  // novel unigram: never saw this symbol labeled
    for (size_t len = max_len; len >= 1; --len) {
      std::vector<ts::Symbol> body(syms.begin() + (i + 1 - len),
                                   syms.begin() + i + 1);
      const auto it = rules_[len - 1].find(body);
      if (it == rules_[len - 1].end() ||
          it->second.count < options_.min_support) {
        continue;  // back off to a shorter body
      }
      score = static_cast<double>(it->second.anomalous) /
              static_cast<double>(it->second.count);
      break;
    }
    scores[i] = score;
  }
  return scores;
}

}  // namespace hod::detect
