#include "biblio/corpus.h"

#include <algorithm>

#include "util/rng.h"

namespace hod::biblio {

void Corpus::Add(Record record) {
  record.id = records_.size();
  // Records are appended with increasing ids, so a duplicate keyword (or
  // category) inside one record would land adjacent in the posting list —
  // skip it to keep lists duplicate-free (Count must count documents, not
  // keyword occurrences).
  for (const std::string& keyword : record.keywords) {
    auto& postings = keyword_index_[keyword];
    if (postings.empty() || postings.back() != record.id) {
      postings.push_back(record.id);
    }
  }
  for (const std::string& category : record.categories) {
    auto& postings = category_index_[category];
    if (postings.empty() || postings.back() != record.id) {
      postings.push_back(record.id);
    }
  }
  records_.push_back(std::move(record));
}

const std::vector<uint64_t>* Corpus::Postings(const std::string& token,
                                              bool is_category) const {
  const auto& index = is_category ? category_index_ : keyword_index_;
  const auto it = index.find(token);
  return it != index.end() ? &it->second : nullptr;
}

std::vector<uint64_t> Corpus::Search(const Query& query) const {
  // Collect all posting lists; an absent token means zero matches.
  std::vector<const std::vector<uint64_t>*> lists;
  for (const std::string& term : query.terms) {
    const auto* postings = Postings(term, false);
    if (postings == nullptr) return {};
    lists.push_back(postings);
  }
  for (const std::string& category : query.categories) {
    const auto* postings = Postings(category, true);
    if (postings == nullptr) return {};
    lists.push_back(postings);
  }
  if (lists.empty()) {
    std::vector<uint64_t> all(records_.size());
    for (size_t i = 0; i < records_.size(); ++i) all[i] = i;
    return all;
  }
  // Intersect smallest-first.
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<uint64_t> result = *lists[0];
  for (size_t l = 1; l < lists.size() && !result.empty(); ++l) {
    std::vector<uint64_t> next;
    std::set_intersection(result.begin(), result.end(), lists[l]->begin(),
                          lists[l]->end(), std::back_inserter(next));
    result = std::move(next);
  }
  return result;
}

size_t Corpus::Count(const Query& query) const { return Search(query).size(); }

size_t Corpus::KeywordFrequency(const std::string& keyword) const {
  const auto* postings = Postings(keyword, false);
  return postings != nullptr ? postings->size() : 0;
}

const std::vector<std::string>& Fig3Fields() {
  static const std::vector<std::string>* kFields =
      new std::vector<std::string>{
          "anomaly detection",      "outlier detection",
          "event detection",        "novelty detection",
          "deviant discovery",      "change point detection",
          "fault detection",        "intrusion detection",
      };
  return *kFields;
}

namespace {

struct FieldCalibration {
  const char* field;
  /// Relative volume of "time series"-tagged articles using the term.
  double time_series_weight;
  /// Probability that such an article is categorized under automation
  /// control systems.
  double automation_probability;
};

/// Shape taken from the paper's Fig.-3 bars: anomaly detection dominates
/// the time-series literature, fault detection owns the automation-
/// control niche, deviant discovery is a ghost term.
constexpr FieldCalibration kCalibration[] = {
    {"anomaly detection", 1900.0, 0.055},
    {"outlier detection", 650.0, 0.045},
    {"event detection", 550.0, 0.03},
    {"novelty detection", 160.0, 0.05},
    {"deviant discovery", 3.0, 0.0},
    {"change point detection", 420.0, 0.035},
    {"fault detection", 1450.0, 0.22},
    {"intrusion detection", 520.0, 0.05},
};

constexpr const char* kFillerKeywords[] = {
    "machine learning", "neural networks", "clustering", "classification",
    "signal processing", "streaming data",  "big data",   "sensors",
};

constexpr const char* kOtherCategories[] = {
    "computer science",        "engineering electrical",
    "statistics probability",  "telecommunications",
    "operations research",
};

}  // namespace

Corpus GenerateResearchCorpus(const CorpusOptions& options) {
  Corpus corpus;
  Rng rng(options.seed);
  double total_weight = 0.0;
  for (const FieldCalibration& c : kCalibration) {
    total_weight += c.time_series_weight;
  }
  // A fraction of the corpus is time-series literature split across the
  // eight fields per calibration; the rest is unrelated noise documents
  // that the query pipeline must filter out.
  const double time_series_fraction = 0.12;
  std::vector<double> weights;
  for (const FieldCalibration& c : kCalibration) {
    weights.push_back(c.time_series_weight);
  }
  for (size_t i = 0; i < options.records; ++i) {
    Record record;
    record.year = 1998 + static_cast<int>(rng.NextBelow(21));
    const bool is_time_series = rng.NextBernoulli(time_series_fraction);
    if (is_time_series) {
      const FieldCalibration& c = kCalibration[rng.WeightedIndex(weights)];
      record.keywords.push_back(c.field);
      record.keywords.push_back("time series");
      if (rng.NextBernoulli(c.automation_probability)) {
        record.categories.push_back("automation control systems");
      }
      record.categories.push_back(
          kOtherCategories[rng.NextBelow(std::size(kOtherCategories))]);
      // Cross-terminology: some papers use two synonyms.
      if (rng.NextBernoulli(0.06)) {
        const FieldCalibration& second =
            kCalibration[rng.WeightedIndex(weights)];
        if (second.field != c.field) {
          record.keywords.push_back(second.field);
        }
      }
    } else {
      // Unrelated document: filler topics, occasionally a field term
      // WITHOUT the time-series tag (must not count toward Fig. 3).
      record.keywords.push_back(
          kFillerKeywords[rng.NextBelow(std::size(kFillerKeywords))]);
      if (rng.NextBernoulli(0.08)) {
        record.keywords.push_back(
            kCalibration[rng.WeightedIndex(weights)].field);
      }
      record.categories.push_back(
          kOtherCategories[rng.NextBelow(std::size(kOtherCategories))]);
      if (rng.NextBernoulli(0.02)) {
        record.categories.push_back("automation control systems");
      }
    }
    record.keywords.push_back(
        kFillerKeywords[rng.NextBelow(std::size(kFillerKeywords))]);
    corpus.Add(std::move(record));
  }
  return corpus;
}

std::vector<Fig3Row> RunFig3Queries(const Corpus& corpus) {
  std::vector<Fig3Row> rows;
  for (const std::string& field : Fig3Fields()) {
    Fig3Row row;
    row.field = field;
    Query time_series_query;
    time_series_query.terms = {field, "time series"};
    row.time_series_count = corpus.Count(time_series_query);
    Query automation_query = time_series_query;
    automation_query.categories = {"automation control systems"};
    row.automation_count = corpus.Count(automation_query);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace hod::biblio
