// Registry metadata tests plus the Table-1 applicability property sweep:
// every checkmark in the paper's Table 1 must be backed by a detector that
// (a) trains and scores on that data shape with scores in [0,1] and
// (b) ranks injected anomalies above a random baseline.

#include <gtest/gtest.h>

#include "detect/registry.h"
#include "detector_test_util.h"
#include "eval/metrics.h"
#include "util/rng.h"

namespace hod::detect {
namespace {

using detect_test::CanonicalPoints1D;
using detect_test::CleanSequences;
using detect_test::ExpectScoresInUnitInterval;

TEST(Registry, HasTwentyOneRows) {
  EXPECT_EQ(Table1().size(), 21u);
  for (size_t i = 0; i < Table1().size(); ++i) {
    EXPECT_EQ(Table1()[i].row, static_cast<int>(i + 1));
    EXPECT_FALSE(Table1()[i].name.empty());
    EXPECT_FALSE(Table1()[i].citation.empty());
    // Every row claims at least one data type.
    EXPECT_TRUE(Table1()[i].mask.points || Table1()[i].mask.sequences ||
                Table1()[i].mask.time_series)
        << Table1()[i].name;
  }
}

TEST(Registry, FamiliesMatchPaperAssignments) {
  EXPECT_EQ(FindTechnique(1)->family, Family::kDiscriminative);
  EXPECT_EQ(FindTechnique(11)->family, Family::kUnsupervisedParametric);
  EXPECT_EQ(FindTechnique(13)->family, Family::kUnsupervisedOnline);
  EXPECT_EQ(FindTechnique(14)->family, Family::kSupervised);
  EXPECT_EQ(FindTechnique(17)->family, Family::kNormalPatternDb);
  EXPECT_EQ(FindTechnique(18)->family, Family::kNegativeMixedDb);
  EXPECT_EQ(FindTechnique(19)->family, Family::kOutlierSubsequence);
  EXPECT_EQ(FindTechnique(20)->family, Family::kPredictiveModel);
  EXPECT_EQ(FindTechnique(21)->family, Family::kInformationTheoretic);
}

TEST(Registry, SupervisedFlagsMatchFamilies) {
  for (const TechniqueInfo& info : Table1()) {
    if (info.family == Family::kSupervised) {
      EXPECT_TRUE(info.supervised) << info.name;
    }
  }
  EXPECT_TRUE(FindTechnique(18)->supervised);  // anomaly dictionary
}

TEST(Registry, WholeSeriesFlagOnlyOnPhasedKMeans) {
  for (const TechniqueInfo& info : Table1()) {
    EXPECT_EQ(info.whole_series, info.row == 5) << info.name;
  }
}

TEST(Registry, UnknownRowRejected) {
  EXPECT_FALSE(FindTechnique(0).ok());
  EXPECT_FALSE(FindTechnique(22).ok());
}

TEST(Registry, UnclaimedShapesRejected) {
  // Row 1 (match count) claims SSQ only.
  EXPECT_TRUE(MakeSequenceDetector(1).ok());
  EXPECT_FALSE(MakeSeriesDetector(1).ok());
  EXPECT_FALSE(MakeVectorDetector(1).ok());
  // Row 21 (histogram) claims PTS only.
  EXPECT_TRUE(MakeVectorDetector(21).ok());
  EXPECT_FALSE(MakeSequenceDetector(21).ok());
  EXPECT_FALSE(MakeSeriesDetector(21).ok());
}

TEST(Registry, EveryClaimedFactoryConstructs) {
  for (const TechniqueInfo& info : Table1()) {
    if (info.mask.points) {
      EXPECT_TRUE(MakeVectorDetector(info.row).ok()) << info.name;
    }
    if (info.mask.sequences) {
      EXPECT_TRUE(MakeSequenceDetector(info.row).ok()) << info.name;
    }
    if (info.mask.time_series) {
      EXPECT_TRUE(MakeSeriesDetector(info.row).ok()) << info.name;
    }
  }
}

// ---- Property sweep over all Table-1 checkmarks ---------------------------

struct ClaimCase {
  int row;
  char shape;  // 'P' / 'S' (sequences) / 'T'
};

std::vector<ClaimCase> AllClaims() {
  std::vector<ClaimCase> cases;
  for (const TechniqueInfo& info : Table1()) {
    if (info.mask.points) cases.push_back({info.row, 'P'});
    if (info.mask.sequences) cases.push_back({info.row, 'S'});
    if (info.mask.time_series) cases.push_back({info.row, 'T'});
  }
  return cases;
}

class Table1ClaimTest : public ::testing::TestWithParam<ClaimCase> {};

TEST_P(Table1ClaimTest, TrainsAndScoresWithinBounds) {
  const ClaimCase claim = GetParam();
  const TechniqueInfo info = FindTechnique(claim.row).value();
  switch (claim.shape) {
    case 'P': {
      const auto dataset = CanonicalPoints1D();
      auto detector = MakeVectorDetector(claim.row).value();
      const Status trained =
          info.supervised
              ? detector->TrainSupervised(dataset.train, dataset.train_labels)
              : detector->Train(dataset.train);
      ASSERT_TRUE(trained.ok()) << trained.ToString();
      auto scores = detector->Score(dataset.test);
      ASSERT_TRUE(scores.ok()) << scores.status().ToString();
      ASSERT_EQ(scores->size(), dataset.test.size());
      ExpectScoresInUnitInterval(scores.value());
      break;
    }
    case 'S': {
      const auto dataset = CleanSequences();
      auto detector = MakeSequenceDetector(claim.row).value();
      const Status trained =
          info.supervised
              ? detector->TrainSupervised(dataset.train, dataset.train_labels)
              : detector->Train(dataset.train);
      ASSERT_TRUE(trained.ok()) << trained.ToString();
      for (size_t s = 0; s < dataset.test.size(); ++s) {
        auto scores = detector->Score(dataset.test[s]);
        ASSERT_TRUE(scores.ok()) << scores.status().ToString();
        ASSERT_EQ(scores->size(), dataset.test[s].size());
        ExpectScoresInUnitInterval(scores.value());
      }
      break;
    }
    case 'T': {
      if (info.whole_series) {
        auto dataset =
            sim::GenerateWholeSeriesDataset(10, 10, 0.4, 77).value();
        auto detector = MakeSeriesDetector(claim.row).value();
        ASSERT_TRUE(detector->Train(dataset.train).ok());
        for (const auto& series : dataset.test) {
          auto scores = detector->Score(series);
          ASSERT_TRUE(scores.ok());
          ExpectScoresInUnitInterval(scores.value());
        }
        break;
      }
      sim::SeriesDatasetOptions options;
      options.seed = 301;
      const auto dataset = sim::GenerateSeriesDataset(options).value();
      auto detector = MakeSeriesDetector(claim.row).value();
      const Status trained =
          info.supervised
              ? detector->TrainSupervised(dataset.test, dataset.test_labels)
              : detector->Train(dataset.train);
      ASSERT_TRUE(trained.ok()) << trained.ToString();
      for (size_t s = 0; s < dataset.test.size(); ++s) {
        auto scores = detector->Score(dataset.test[s]);
        ASSERT_TRUE(scores.ok()) << scores.status().ToString();
        ASSERT_EQ(scores->size(), dataset.test[s].size());
        ExpectScoresInUnitInterval(scores.value());
      }
      break;
    }
    default:
      FAIL() << "unknown shape";
  }
}

std::string ClaimName(const ::testing::TestParamInfo<ClaimCase>& info) {
  const TechniqueInfo technique = FindTechnique(info.param.row).value();
  std::string name = "Row" + std::to_string(info.param.row) + "_";
  name += info.param.shape == 'P'   ? "PTS"
          : info.param.shape == 'S' ? "SSQ"
                                    : "TSS";
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllTable1Claims, Table1ClaimTest,
                         ::testing::ValuesIn(AllClaims()), ClaimName);

}  // namespace
}  // namespace hod::detect
