#ifndef HOD_STREAM_ROUTER_H_
#define HOD_STREAM_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hierarchy/level.h"
#include "stream/queue.h"
#include "stream/stats.h"
#include "timeseries/time_series.h"
#include "util/statusor.h"

namespace hod::stream {

/// Sentinel for "monitor lane not resolved": samples built by producers
/// carry it, and the scorer falls back to the string-keyed lane lookup.
inline constexpr uint32_t kNoLane = 0xFFFFFFFFu;

/// One timestamped reading from one sensor, as it arrives off the wire.
struct SensorSample {
  std::string sensor_id;
  /// Hierarchy level the sensor reports at (phase sensors, environment
  /// channels, ...). Carried on every sample so the collector can keep
  /// per-level outlier state without a registry lookup.
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  ts::TimePoint ts = 0.0;
  double value = 0.0;
  /// Monitor lane within the destination shard, resolved once at ingress
  /// by the router (kNoLane until the engine stamps it). Lets the shard
  /// worker skip the per-sample string-keyed hash lookup.
  uint32_t lane = kNoLane;
};

/// Stable 64-bit FNV-1a hash — the shard assignment must not change across
/// runs or platforms, or per-sensor ordering (and test determinism) breaks.
uint64_t StableHash64(std::string_view bytes);

/// A validated sample's destination: which shard scores it and which
/// backpressure policy its queue push runs under (the sensor's own class
/// policy, or the engine default when the sensor has none).
struct RouteTarget {
  size_t shard = 0;
  /// Empty = use the engine-wide default.
  std::optional<BackpressurePolicy> policy;
  /// Monitor lane within the shard (kNoLane until the engine published
  /// the scorer's lane table via SetLane).
  uint32_t lane = kNoLane;
};

/// Registration record, exposed for checkpointing.
struct RegisteredSensor {
  std::string sensor_id;
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  std::optional<BackpressurePolicy> policy;
  /// Last accepted timestamp (the out-of-order frontier).
  ts::TimePoint frontier = -std::numeric_limits<ts::TimePoint>::infinity();
};

/// Ingress validation and shard routing.
///
/// Sensors are registered before the engine starts; the registry is
/// immutable afterwards, so concurrent `Route` calls only ever read the
/// map (no lock). The single mutable per-sensor field — the last accepted
/// timestamp, used for the out-of-order check — is an atomic advanced by
/// CAS-max, which keeps `Route` thread-safe even if one sensor's samples
/// arrive from several producer threads.
class IngestRouter {
 public:
  /// `stats` must outlive the router; may be nullptr (no counting).
  IngestRouter(size_t num_shards, double out_of_order_tolerance,
               StreamStats* stats);

  /// Registers a sensor and assigns its shard (stable hash of the id).
  /// `policy` selects the sensor class's backpressure behaviour when its
  /// shard queue is full (critical sensors kBlock, best-effort environment
  /// channels kDropOldest); nullopt inherits the engine default.
  /// Not thread-safe; call before any `Route`.
  Status AddSensor(const std::string& sensor_id,
                   hierarchy::ProductionLevel level,
                   std::optional<BackpressurePolicy> policy = std::nullopt);

  /// Validates one sample and returns its shard and backpressure policy.
  /// Errors: InvalidArgument (non-finite value, level mismatch), NotFound
  /// (unknown sensor), OutOfRange (timestamp regressed beyond tolerance).
  /// Each rejection bumps its typed counter and the per-level reject
  /// counter of the sample's claimed level.
  StatusOr<RouteTarget> Route(const SensorSample& sample);

  size_t num_shards() const { return num_shards_; }
  size_t num_sensors() const { return sensors_.size(); }

  /// Ids of the sensors assigned to `shard`, sorted — used by the scorer
  /// to build each shard's monitors.
  std::vector<std::string> SensorsForShard(size_t shard) const;

  /// Every registered sensor with its level, policy, and current
  /// frontier, sorted by id (checkpoint serialization).
  std::vector<RegisteredSensor> Sensors() const;

  /// Out-of-order frontier of one sensor (NotFound for unknown ids).
  StatusOr<ts::TimePoint> Frontier(const std::string& sensor_id) const;

  /// Restores a sensor's frontier from a checkpoint.
  Status SetFrontier(const std::string& sensor_id, ts::TimePoint frontier);

  /// Publishes a sensor's monitor lane so Route stamps it on every
  /// accepted sample (the sensor-id → lane cache). Called by the engine
  /// after the scorer's banks are populated — lanes are write-once per
  /// engine lifetime (quarantine never moves a lane), so no further
  /// invalidation is needed; a restored or rebuilt engine re-publishes.
  /// Not thread-safe; call before producers start.
  Status SetLane(const std::string& sensor_id, uint32_t lane);

 private:
  struct SensorEntry {
    hierarchy::ProductionLevel level;
    size_t shard;
    std::optional<BackpressurePolicy> policy;
    uint32_t lane = kNoLane;
    /// Last accepted timestamp; CAS-max so it only moves forward.
    std::atomic<ts::TimePoint> last_ts{
        -std::numeric_limits<ts::TimePoint>::infinity()};
  };

  const size_t num_shards_;
  const double out_of_order_tolerance_;
  StreamStats* stats_;
  /// Hot-path lookup table: O(1) per Route (the map is read-only once the
  /// engine starts). unique_ptr values: SensorEntry holds an atomic
  /// (immovable), and node stability keeps entry pointers valid.
  std::unordered_map<std::string, std::unique_ptr<SensorEntry>> sensors_;
};

}  // namespace hod::stream

#endif  // HOD_STREAM_ROUTER_H_
