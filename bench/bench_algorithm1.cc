// E4 — Algorithm 1: the <global score, outlierness, support> triple.
//
// The paper's core proposal is evaluated here on the simulated plant:
//   (a) support separates real process anomalies from single-sensor
//       measurement glitches ("support values reduce the probability of
//       finding a measurement error");
//   (b) the global score distribution: real anomalies propagate upward,
//       glitches stay local;
//   (c) measurement-error warnings: precision/recall of the downward
//       check at the job level;
//   (d) the headline: ranking phase-level events by the fused triple beats
//       ranking by raw outlierness alone (hierarchy helps).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "bench_util.h"
#include "core/hierarchical_detector.h"
#include "eval/metrics.h"
#include "sim/plant.h"

namespace hod {
namespace {

struct EventRecord {
  bool is_process_anomaly = false;  // truth: real vs glitch
  core::OutlierFinding finding;
};

/// Runs phase-level queries for every injected record and keeps the
/// nearest finding.
std::vector<EventRecord> CollectEvents(const sim::SimulatedPlant& plant,
                                       core::HierarchicalDetector& detector) {
  std::vector<EventRecord> events;
  for (const sim::AnomalyRecord& record : plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase) continue;
    core::PhaseQuery query{record.machine_id, record.job_id,
                           record.phase_name, record.sensor_id};
    auto report = detector.FindPhaseOutliers(query);
    if (!report.ok()) continue;
    const core::OutlierFinding* nearest = nullptr;
    double best_gap = 30.0;
    for (const core::OutlierFinding& finding : report->findings) {
      const double gap = std::fabs(finding.origin.time - record.start_time);
      if (gap <= best_gap) {
        best_gap = gap;
        nearest = &finding;
      }
    }
    if (nearest == nullptr) continue;
    events.push_back({!record.measurement_error, *nearest});
  }
  return events;
}

/// Runs one full Algorithm-1 batch pass over the whole plant (every line's
/// environment and job series, every machine's job order, the production
/// summary). Returns the number of findings so the work cannot be elided.
size_t FullBatchPass(const sim::SimulatedPlant& plant,
                     core::HierarchicalDetector& detector) {
  size_t findings = 0;
  for (const auto& line : plant.production.lines) {
    if (auto report = detector.FindEnvironmentOutliers(line.id); report.ok()) {
      findings += report->findings.size();
    }
    if (auto report = detector.FindLineOutliers(line.id); report.ok()) {
      findings += report->findings.size();
    }
    for (const auto& machine : line.machines) {
      if (auto report = detector.FindJobOutliers(machine.id); report.ok()) {
        findings += report->findings.size();
      }
    }
  }
  if (auto report = detector.FindProductionOutliers(); report.ok()) {
    findings += report->findings.size();
  }
  return findings;
}

/// Bitwise triple equality: the incremental path must not merely be close,
/// it must produce the SAME findings a cold batch pass would.
bool SameFindings(const std::vector<core::OutlierFinding>& a,
                  const std::vector<core::OutlierFinding>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].global_score != b[i].global_score) return false;
    if (std::memcmp(&a[i].outlierness, &b[i].outlierness, sizeof(double)) !=
        0) {
      return false;
    }
    if (std::memcmp(&a[i].support, &b[i].support, sizeof(double)) != 0) {
      return false;
    }
    if (a[i].origin.entity != b[i].origin.entity) return false;
    if (std::memcmp(&a[i].origin.time, &b[i].origin.time, sizeof(double)) !=
        0) {
      return false;
    }
  }
  return true;
}

/// The perf headline: after ONE machine's data changes, how much cheaper is
/// dirty-entity escalation (epoch cache + EscalateAlarm) than re-running
/// the full batch pass? Writes BENCH_ALG1.json for the CI gate (>= 5x).
int RunEscalationCompare() {
  using Clock = std::chrono::steady_clock;
  bench::PrintSection("escalation_compare: full batch vs incremental "
                      "escalation, 1 dirty machine");

  // Bigger than the E4 plant on purpose: the speedup scales with the
  // number of UNtouched entities the cache saves, so a realistic plant
  // (12 machines) shows the effect a 6-machine toy would understate.
  sim::PlantOptions options;
  options.num_lines = 3;
  options.machines_per_line = 4;
  options.jobs_per_machine = 16;
  options.seed = 7;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.25;
  scenario.glitch_rate = 0.25;
  scenario.magnitude_sigmas = 7.0;
  const sim::SimulatedPlant plant =
      sim::BuildPlant(options, scenario).value();
  const std::string dirty_machine =
      plant.production.lines.front().machines.front().id;
  const ts::TimePoint alarm_time =
      plant.production.lines.front().machines.front().jobs.front().start_time;

  // Parity first: a cold detector's job findings for the dirty machine
  // must match what a warm detector reports through MarkDirty +
  // EscalateAlarm after the same (simulated) data change.
  core::HierarchicalDetector cold(&plant.production);
  const auto cold_report = cold.FindJobOutliers(dirty_machine);
  core::HierarchicalDetector warm(&plant.production);
  FullBatchPass(plant, warm);  // populate the epoch cache
  (void)warm.MarkDirty(dirty_machine);
  const auto escalated = warm.EscalateAlarm(
      hierarchy::ProductionLevel::kJob, dirty_machine, alarm_time);
  const bool parity_ok =
      cold_report.ok() && escalated.ok() &&
      SameFindings(cold_report->findings, escalated->findings);

  // Batch cost: a data change with no cache means a fresh detector and a
  // full pass over every level.
  constexpr int kBatchIters = 5;
  const auto batch_start = Clock::now();
  size_t batch_findings = 0;
  for (int i = 0; i < kBatchIters; ++i) {
    core::HierarchicalDetector detector(&plant.production);
    batch_findings += FullBatchPass(plant, detector);
  }
  const double batch_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - batch_start)
          .count() /
      kBatchIters;

  // Incremental cost: same data change, but only the touched machine is
  // re-evaluated; every neighbor is served from the epoch cache.
  constexpr int kIncrementalIters = 50;
  const core::DetectorCacheStats stats_before = warm.cache_stats();
  const auto incremental_start = Clock::now();
  size_t incremental_findings = 0;
  for (int i = 0; i < kIncrementalIters; ++i) {
    (void)warm.MarkDirty(dirty_machine);
    auto report = warm.EscalateAlarm(hierarchy::ProductionLevel::kJob,
                                     dirty_machine, alarm_time);
    if (report.ok()) incremental_findings += report->findings.size();
  }
  const double incremental_ms =
      std::chrono::duration<double, std::milli>(Clock::now() -
                                                incremental_start)
          .count() /
      kIncrementalIters;
  const core::DetectorCacheStats stats_after = warm.cache_stats();

  const double speedup =
      incremental_ms > 0.0 ? batch_ms / incremental_ms : 0.0;

  Table table({"metric", "value"});
  table.AddRow({"full batch pass (ms, avg of " +
                    std::to_string(kBatchIters) + ")",
                bench::Fmt(batch_ms)});
  table.AddRow({"incremental escalation (ms, avg of " +
                    std::to_string(kIncrementalIters) + ")",
                bench::Fmt(incremental_ms)});
  table.AddRow({"speedup", bench::Fmt(speedup, 1) + "x"});
  table.AddRow({"parity (bit-identical triples)", parity_ok ? "yes" : "NO"});
  table.AddRow({"cache hits during incremental",
                std::to_string(stats_after.hits() - stats_before.hits())});
  table.AddRow(
      {"cache misses during incremental",
       std::to_string(stats_after.misses() - stats_before.misses())});
  table.Print(std::cout);
  std::cout << "(batch findings/iter: " << batch_findings / kBatchIters
            << ", incremental findings/iter: "
            << incremental_findings / kIncrementalIters << ")\n";

  std::ofstream json("BENCH_ALG1.json");
  json << "{\n  \"experiment\": \"algorithm1_escalation_compare\",\n"
       << "  \"batch_ms\": " << batch_ms << ",\n"
       << "  \"incremental_ms\": " << incremental_ms << ",\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"parity_ok\": " << (parity_ok ? "true" : "false") << ",\n"
       << "  \"cache_hits\": "
       << (stats_after.hits() - stats_before.hits()) << ",\n"
       << "  \"cache_misses\": "
       << (stats_after.misses() - stats_before.misses()) << "\n}\n";
  json.close();
  std::cout << "Wrote BENCH_ALG1.json\n";
  return parity_ok ? 0 : 1;
}

}  // namespace
}  // namespace hod

int main(int argc, char** argv) {
  using namespace hod;
  bench::PrintHeader("E4", "The <global score, outlierness, support> triple",
                     "Algorithm 1 (Section 4)");
  if (argc > 1 && std::string(argv[1]) == "escalation_compare") {
    return RunEscalationCompare();
  }

  sim::PlantOptions options;
  options.num_lines = 2;
  options.machines_per_line = 3;
  options.jobs_per_machine = 16;
  options.seed = 7;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.25;
  scenario.glitch_rate = 0.25;
  scenario.magnitude_sigmas = 7.0;
  const sim::SimulatedPlant plant =
      sim::BuildPlant(options, scenario).value();
  core::HierarchicalDetector detector(&plant.production);
  const std::vector<EventRecord> events = CollectEvents(plant, detector);

  size_t process_count = 0;
  size_t glitch_count = 0;
  for (const EventRecord& event : events) {
    if (event.is_process_anomaly) ++process_count;
    else ++glitch_count;
  }
  std::cout << "Plant: 2 lines x 3 machines x 16 jobs; injected events "
               "detected at phase level: "
            << events.size() << " (" << process_count << " process, "
            << glitch_count << " glitches)\n";

  // ---- (a) support --------------------------------------------------------
  bench::PrintSection("(a) Support by event kind (redundant sensors only)");
  Table support_table({"Event kind", "n", "mean support",
                       "share with support > 0"});
  for (bool process : {true, false}) {
    double support_sum = 0.0;
    size_t supported = 0;
    size_t n = 0;
    for (const EventRecord& event : events) {
      if (event.is_process_anomaly != process) continue;
      if (event.finding.corresponding_sensors == 0) continue;
      ++n;
      support_sum += event.finding.support;
      if (event.finding.support > 0.0) ++supported;
    }
    support_table.AddRow(
        {process ? "process anomaly" : "measurement glitch",
         std::to_string(n), n > 0 ? bench::Fmt(support_sum / n) : "-",
         n > 0 ? bench::Fmt(static_cast<double>(supported) / n) : "-"});
  }
  support_table.Print(std::cout);
  std::cout << "Expected: process anomalies enjoy near-full support; "
               "glitches near none.\n";

  // ---- (b) global score ---------------------------------------------------
  bench::PrintSection("(b) Global-score distribution by event kind");
  Table score_table({"Event kind", "gs=1", "gs=2", "gs=3+", "mean"});
  for (bool process : {true, false}) {
    std::map<int, size_t> histogram;
    double sum = 0.0;
    size_t n = 0;
    for (const EventRecord& event : events) {
      if (event.is_process_anomaly != process) continue;
      ++histogram[std::min(event.finding.global_score, 3)];
      sum += event.finding.global_score;
      ++n;
    }
    score_table.AddRow({process ? "process anomaly" : "measurement glitch",
                        std::to_string(histogram[1]),
                        std::to_string(histogram[2]),
                        std::to_string(histogram[3]),
                        n > 0 ? bench::Fmt(sum / n, 2) : "-"});
  }
  score_table.Print(std::cout);
  std::cout << "Expected: process anomalies confirm at higher levels (CAQ "
               "degradation);\nglitches stay at global score 1.\n";

  // ---- (c) measurement-error warnings --------------------------------------
  bench::PrintSection(
      "(c) Downward check: job-level warnings vs. phase evidence");
  size_t warned_and_spurious = 0;
  size_t warned_total = 0;
  size_t spurious_total = 0;
  for (const auto& line : plant.production.lines) {
    for (const auto& machine : line.machines) {
      auto report = detector.FindJobOutliers(machine.id);
      if (!report.ok()) continue;
      for (const core::OutlierFinding& finding : report->findings) {
        // A job-level finding is "spurious" when the job truly had no
        // process anomaly (CAQ noise / batch effects).
        const bool truly_anomalous =
            plant.truth.job_labels.count(finding.origin.entity) > 0;
        if (finding.measurement_error_warning) {
          ++warned_total;
          if (!truly_anomalous) ++warned_and_spurious;
        }
        if (!truly_anomalous) ++spurious_total;
      }
    }
  }
  Table warning_table({"metric", "value"});
  warning_table.AddRow({"job-level warnings emitted",
                        std::to_string(warned_total)});
  warning_table.AddRow(
      {"warning precision (warned & truly spurious / warned)",
       warned_total > 0
           ? bench::Fmt(static_cast<double>(warned_and_spurious) /
                        warned_total)
           : "-"});
  warning_table.AddRow(
      {"spurious-finding recall (warned / all spurious findings)",
       spurious_total > 0
           ? bench::Fmt(static_cast<double>(warned_and_spurious) /
                        spurious_total)
           : "-"});
  warning_table.Print(std::cout);

  // ---- (d) fused ranking vs flat ranking -----------------------------------
  bench::PrintSection(
      "(d) Headline: fused-triple ranking vs raw outlierness (AUC, real "
      "events = positives)");
  std::vector<double> flat_scores;
  std::vector<double> fused_scores;
  eval::Truth truth;
  for (const EventRecord& event : events) {
    truth.push_back(event.is_process_anomaly ? 1 : 0);
    flat_scores.push_back(event.finding.outlierness);
    // Fusion per the paper's intent: outlierness weighted by upward
    // confirmation and redundancy support, damped by the measurement-
    // error warning.
    const double level_weight =
        static_cast<double>(event.finding.global_score) /
        static_cast<double>(hierarchy::kNumLevels);
    const double support_weight =
        event.finding.corresponding_sensors == 0
            ? 0.5
            : event.finding.support;
    double fused = event.finding.outlierness *
                   (0.4 + 0.3 * level_weight + 0.3 * support_weight);
    fused_scores.push_back(fused);
  }
  Table headline({"Ranking", "ROC-AUC (real vs glitch)"});
  headline.AddRow(
      {"flat: outlierness only",
       bench::Fmt(eval::RocAuc(flat_scores, truth).value_or(0.5))});
  headline.AddRow(
      {"hierarchical: triple fusion",
       bench::Fmt(eval::RocAuc(fused_scores, truth).value_or(0.5))});
  headline.Print(std::cout);
  std::cout << "\nExpected: the fused triple ranks real process anomalies "
               "above measurement\nglitches far better than the raw score — "
               "the paper's motivation for combining\noutlier information "
               "between production levels.\n";
  return RunEscalationCompare();
}
