#ifndef HOD_DETECT_SCORE_UTILS_H_
#define HOD_DETECT_SCORE_UTILS_H_

#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Clamps every score into [0, 1].
void ClampScores(std::vector<double>& scores);

/// Min-max normalizes raw scores into [0, 1]; constant input maps to 0.
std::vector<double> MinMaxNormalize(const std::vector<double>& raw);

/// Maps raw non-negative deviations into (0, 1) with d / (d + scale) where
/// `scale` is the median positive deviation (robust soft normalization that
/// preserves ordering and keeps typical values near 0.5).
std::vector<double> SoftNormalize(const std::vector<double>& raw);

/// Extracts the items whose score exceeds `threshold` as Outlier records.
/// `start_time` / `interval` stamp occurrence times (pass 0/1 for index
/// time).
std::vector<Outlier> ExtractOutliers(const std::vector<double>& scores,
                                     double threshold, double start_time = 0.0,
                                     double interval = 1.0);

/// Builds a Detection from scores with the given extraction threshold.
Detection MakeDetection(std::vector<double> scores, double threshold,
                        double start_time = 0.0, double interval = 1.0);

/// Mean of the top `k` scores (0 when empty) — turns a per-point score
/// vector into a whole-entity outlierness, used when rolling phase scores
/// up to the job level.
double TopKMean(const std::vector<double>& scores, size_t k);

}  // namespace hod::detect

#endif  // HOD_DETECT_SCORE_UTILS_H_
