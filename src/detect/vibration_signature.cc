#include "detect/vibration_signature.h"

#include <algorithm>
#include <cmath>

#include "timeseries/spectral.h"
#include "timeseries/stats.h"
#include "timeseries/window.h"

namespace hod::detect {

VibrationSignatureDetector::VibrationSignatureDetector(
    VibrationSignatureOptions options)
    : options_(options) {}

Status VibrationSignatureDetector::Train(
    const std::vector<ts::TimeSeries>& normal) {
  if (options_.window == 0 || options_.stride == 0 || options_.bands == 0) {
    return Status::InvalidArgument("window/stride/bands must be > 0");
  }
  std::vector<std::vector<double>> signatures;
  for (const auto& series : normal) {
    HOD_RETURN_IF_ERROR(series.Validate());
    if (series.size() < options_.window) continue;
    auto spans_or =
        ts::SlidingWindows(series.size(), options_.window, options_.stride);
    if (!spans_or.ok()) return spans_or.status();
    for (const auto& span : spans_or.value()) {
      std::vector<double> chunk(series.values().begin() + span.begin,
                                series.values().begin() + span.end);
      HOD_ASSIGN_OR_RETURN(std::vector<double> sig,
                           ts::VibrationSignature(chunk, options_.bands));
      signatures.push_back(std::move(sig));
    }
  }
  if (signatures.empty()) {
    return Status::InvalidArgument(
        "no training windows (series shorter than window?)");
  }
  mean_.assign(options_.bands, 0.0);
  stddev_.assign(options_.bands, 0.0);
  for (const auto& sig : signatures) {
    for (size_t b = 0; b < options_.bands; ++b) mean_[b] += sig[b];
  }
  for (size_t b = 0; b < options_.bands; ++b) {
    mean_[b] /= static_cast<double>(signatures.size());
  }
  for (const auto& sig : signatures) {
    for (size_t b = 0; b < options_.bands; ++b) {
      const double d = sig[b] - mean_[b];
      stddev_[b] += d * d;
    }
  }
  for (size_t b = 0; b < options_.bands; ++b) {
    stddev_[b] =
        std::sqrt(stddev_[b] / static_cast<double>(signatures.size()));
    // Floor the spread so exact-constant training bands do not produce
    // infinite distances on the slightest deviation.
    stddev_[b] = std::max(stddev_[b], 1e-4);
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> VibrationSignatureDetector::Score(
    const ts::TimeSeries& series) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  const size_t n = series.size();
  std::vector<double> point_scores(n, 0.0);
  if (n < options_.window) return point_scores;

  auto spans_or =
      ts::SlidingWindows(n, options_.window, options_.stride);
  if (!spans_or.ok()) return spans_or.status();
  const auto& spans = spans_or.value();

  std::vector<double> window_scores(spans.size(), 0.0);
  for (size_t w = 0; w < spans.size(); ++w) {
    std::vector<double> chunk(series.values().begin() + spans[w].begin,
                              series.values().begin() + spans[w].end);
    HOD_ASSIGN_OR_RETURN(std::vector<double> sig,
                         ts::VibrationSignature(chunk, options_.bands));
    double dist = 0.0;
    for (size_t b = 0; b < options_.bands; ++b) {
      const double z = (sig[b] - mean_[b]) / stddev_[b];
      dist += z * z;
    }
    dist = std::sqrt(dist / static_cast<double>(options_.bands));
    window_scores[w] = ts::DeviationToScore(dist, options_.sigma_scale);
  }
  return ts::WindowScoresToPointScores(n, spans, window_scores);
}

}  // namespace hod::detect
