#include "detect/hmm_detector.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"
#include "util/rng.h"

namespace hod::detect {

namespace {

void NormalizeRow(std::vector<double>& row, double smoothing) {
  double sum = 0.0;
  for (double& v : row) {
    v += smoothing;
    sum += v;
  }
  if (sum <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(row.size());
    for (double& v : row) v = uniform;
    return;
  }
  for (double& v : row) v /= sum;
}

}  // namespace

HmmDetector::HmmDetector(HmmOptions options) : options_(options) {}

Status HmmDetector::Train(const std::vector<ts::DiscreteSequence>& normal) {
  if (options_.states == 0) {
    return Status::InvalidArgument("states must be > 0");
  }
  alphabet_ = 0;
  for (const auto& sequence : normal) {
    HOD_RETURN_IF_ERROR(sequence.Validate());
    alphabet_ = std::max(alphabet_,
                         static_cast<size_t>(sequence.alphabet_size()));
  }
  if (alphabet_ == 0) return Status::InvalidArgument("no training sequences");
  const size_t s = options_.states;

  // Random row-stochastic initialization (deterministic seed).
  Rng rng(options_.seed);
  a_.assign(s, std::vector<double>(s, 0.0));
  b_.assign(s, std::vector<double>(alphabet_, 0.0));
  pi_.assign(s, 0.0);
  for (auto& row : a_) {
    for (double& v : row) v = 0.5 + rng.NextDouble();
    NormalizeRow(row, 0.0);
  }
  for (auto& row : b_) {
    for (double& v : row) v = 0.5 + rng.NextDouble();
    NormalizeRow(row, 0.0);
  }
  for (double& v : pi_) v = 0.5 + rng.NextDouble();
  NormalizeRow(pi_, 0.0);

  // Baum-Welch over all training sequences (scaled forward-backward).
  for (size_t iter = 0; iter < options_.baum_welch_iters; ++iter) {
    std::vector<std::vector<double>> a_num(s, std::vector<double>(s, 0.0));
    std::vector<std::vector<double>> b_num(s,
                                           std::vector<double>(alphabet_, 0.0));
    std::vector<double> a_den(s, 0.0);
    std::vector<double> b_den(s, 0.0);
    std::vector<double> pi_num(s, 0.0);
    size_t num_sequences = 0;

    for (const auto& sequence : normal) {
      const auto& o = sequence.symbols();
      const size_t t_len = o.size();
      if (t_len == 0) continue;
      ++num_sequences;
      // Scaled forward.
      std::vector<std::vector<double>> alpha(t_len, std::vector<double>(s));
      std::vector<double> scale(t_len, 0.0);
      for (size_t i = 0; i < s; ++i) {
        alpha[0][i] = pi_[i] * b_[i][o[0]];
        scale[0] += alpha[0][i];
      }
      if (scale[0] <= 0.0) scale[0] = 1e-300;
      for (size_t i = 0; i < s; ++i) alpha[0][i] /= scale[0];
      for (size_t t = 1; t < t_len; ++t) {
        for (size_t j = 0; j < s; ++j) {
          double sum = 0.0;
          for (size_t i = 0; i < s; ++i) sum += alpha[t - 1][i] * a_[i][j];
          alpha[t][j] = sum * b_[j][o[t]];
          scale[t] += alpha[t][j];
        }
        if (scale[t] <= 0.0) scale[t] = 1e-300;
        for (size_t j = 0; j < s; ++j) alpha[t][j] /= scale[t];
      }
      // Scaled backward.
      std::vector<std::vector<double>> beta(t_len, std::vector<double>(s, 1.0));
      for (size_t t = t_len - 1; t-- > 0;) {
        for (size_t i = 0; i < s; ++i) {
          double sum = 0.0;
          for (size_t j = 0; j < s; ++j) {
            sum += a_[i][j] * b_[j][o[t + 1]] * beta[t + 1][j];
          }
          beta[t][i] = sum / scale[t + 1];
        }
      }
      // Accumulate expected counts.
      for (size_t t = 0; t < t_len; ++t) {
        double gamma_norm = 0.0;
        for (size_t i = 0; i < s; ++i) gamma_norm += alpha[t][i] * beta[t][i];
        if (gamma_norm <= 0.0) gamma_norm = 1e-300;
        for (size_t i = 0; i < s; ++i) {
          const double gamma = alpha[t][i] * beta[t][i] / gamma_norm;
          if (t == 0) pi_num[i] += gamma;
          b_num[i][o[t]] += gamma;
          b_den[i] += gamma;
          if (t + 1 < t_len) a_den[i] += gamma;
        }
        if (t + 1 < t_len) {
          double xi_norm = 0.0;
          for (size_t i = 0; i < s; ++i) {
            for (size_t j = 0; j < s; ++j) {
              xi_norm +=
                  alpha[t][i] * a_[i][j] * b_[j][o[t + 1]] * beta[t + 1][j];
            }
          }
          if (xi_norm <= 0.0) xi_norm = 1e-300;
          for (size_t i = 0; i < s; ++i) {
            for (size_t j = 0; j < s; ++j) {
              a_num[i][j] += alpha[t][i] * a_[i][j] * b_[j][o[t + 1]] *
                             beta[t + 1][j] / xi_norm;
            }
          }
        }
      }
    }
    if (num_sequences == 0) {
      return Status::InvalidArgument("no non-empty training sequences");
    }
    // Re-estimate with smoothing.
    for (size_t i = 0; i < s; ++i) {
      for (size_t j = 0; j < s; ++j) {
        a_[i][j] = a_den[i] > 0.0 ? a_num[i][j] / a_den[i] : a_[i][j];
      }
      NormalizeRow(a_[i], options_.smoothing);
      for (size_t k = 0; k < alphabet_; ++k) {
        b_[i][k] = b_den[i] > 0.0 ? b_num[i][k] / b_den[i] : b_[i][k];
      }
      NormalizeRow(b_[i], options_.smoothing);
      pi_[i] = pi_num[i] / static_cast<double>(num_sequences);
    }
    NormalizeRow(pi_, options_.smoothing);
  }

  // Baseline per-symbol surprisal over the training corpus.
  trained_ = true;
  std::vector<double> all;
  for (const auto& sequence : normal) {
    auto surprisal_or = Surprisals(sequence.symbols());
    if (!surprisal_or.ok()) return surprisal_or.status();
    for (double v : surprisal_or.value()) all.push_back(v);
  }
  baseline_surprisal_ = ts::Median(std::move(all));
  return Status::Ok();
}

StatusOr<std::vector<double>> HmmDetector::Surprisals(
    const std::vector<ts::Symbol>& symbols) const {
  std::vector<double> surprisal(symbols.size(), 0.0);
  const size_t s = options_.states;
  std::vector<double> filter = pi_;  // filtered state distribution
  for (size_t t = 0; t < symbols.size(); ++t) {
    const ts::Symbol o = symbols[t];
    if (o < 0 || static_cast<size_t>(o) >= alphabet_) {
      // Symbol outside the trained alphabet: maximal surprisal.
      surprisal[t] = 50.0;
      continue;
    }
    // P(o_t | o_1..o_{t-1}) = sum_i filter_i * b_i(o_t).
    double p = 0.0;
    for (size_t i = 0; i < s; ++i) p += filter[i] * b_[i][o];
    p = std::max(p, 1e-300);
    surprisal[t] = -std::log(p);
    // Condition on o_t and advance one step.
    std::vector<double> posterior(s, 0.0);
    for (size_t i = 0; i < s; ++i) posterior[i] = filter[i] * b_[i][o] / p;
    for (size_t j = 0; j < s; ++j) {
      double sum = 0.0;
      for (size_t i = 0; i < s; ++i) sum += posterior[i] * a_[i][j];
      filter[j] = sum;
    }
  }
  return surprisal;
}

StatusOr<double> HmmDetector::LogLikelihood(
    const ts::DiscreteSequence& sequence) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  HOD_ASSIGN_OR_RETURN(std::vector<double> surprisal,
                       Surprisals(sequence.symbols()));
  double total = 0.0;
  for (double v : surprisal) total -= v;
  return total;
}

StatusOr<std::vector<double>> HmmDetector::Score(
    const ts::DiscreteSequence& sequence) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  HOD_RETURN_IF_ERROR(sequence.Validate());
  HOD_ASSIGN_OR_RETURN(std::vector<double> surprisal,
                       Surprisals(sequence.symbols()));
  std::vector<double> scores(surprisal.size(), 0.0);
  for (size_t t = 0; t < surprisal.size(); ++t) {
    const double excess = surprisal[t] - baseline_surprisal_;
    scores[t] =
        excess <= 0.0 ? 0.0 : excess / (excess + options_.surprisal_scale);
  }
  return scores;
}

}  // namespace hod::detect
