#ifndef HOD_DETECT_RARE_SUBSEQUENCE_H_
#define HOD_DETECT_RARE_SUBSEQUENCE_H_

#include <map>
#include <vector>

#include "detect/detector.h"
#include "timeseries/sax.h"

namespace hod::detect {

/// Outlier subsequences via symbolic representation (Lin et al. 2003) —
/// Table 1 row 19, family OS, data types SSQ + TSS.
///
/// "Patterns are compared to their expected frequency in the database."
/// Training counts SAX-word frequencies over normal data; a test
/// subsequence's outlierness grows with the ratio of expected to observed
/// frequency of its word — rare words are surprising, unseen words
/// maximally so. For numeric series the detector discretizes with SAX
/// first (the TSS path); discrete sequences are consumed directly (SSQ).
struct RareSubsequenceOptions {
  /// Subsequence (word) length in symbols.
  size_t word = 5;
  /// SAX discretization used on numeric series.
  ts::SaxOptions sax = {.word_length = 0, .alphabet_size = 5};
};

class RareSubsequenceDetector : public SequenceDetector {
 public:
  explicit RareSubsequenceDetector(RareSubsequenceOptions options = {});

  std::string name() const override { return "RareSubsequence"; }

  Status Train(const std::vector<ts::DiscreteSequence>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::DiscreteSequence& sequence) const override;

  /// Numeric-series convenience: SAX-discretize then train/score.
  Status TrainSeries(const std::vector<ts::TimeSeries>& normal);
  StatusOr<std::vector<double>> ScoreSeries(const ts::TimeSeries& series) const;

  size_t vocabulary_size() const { return counts_.size(); }

 private:
  RareSubsequenceOptions options_;
  std::map<std::vector<ts::Symbol>, size_t> counts_;
  size_t total_words_ = 0;
  /// Expected count of a word under the fitted unigram model, cached per
  /// alphabet symbol: P(symbol) estimates.
  std::vector<double> symbol_prob_;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_RARE_SUBSEQUENCE_H_
