#include "core/algorithm_selector.h"

#include "detect/adapters.h"
#include "detect/ar_detector.h"
#include "detect/baseline.h"
#include "detect/em_detector.h"
#include "detect/histogram_deviant.h"

namespace hod::core {

std::unique_ptr<detect::SeriesDetector> AlgorithmSelector::MakePhaseDetector()
    const {
  if (policy_ == SelectorPolicy::kResolutionMatched) {
    // High-resolution temporal data: one-step-ahead prediction residuals
    // localize point anomalies exactly.
    detect::ArOptions options;
    options.order = 5;
    return std::make_unique<detect::ArDetector>(options);
  }
  // Mismatched: value-histogram deviants ignore the temporal structure a
  // phase signal lives on (ramps look like outliers, spikes inside the
  // value range get missed).
  return detect::MakeSeriesFromVectorPoints(
      std::make_unique<detect::HistogramDeviantDetector>(),
      /*include_phase=*/false);
}

std::unique_ptr<detect::VectorDetector> AlgorithmSelector::MakeJobDetector()
    const {
  if (policy_ == SelectorPolicy::kResolutionMatched) {
    // Aggregated vectors: a point-density model over setup+CAQ space.
    // One component: the job population is a single operating regime and
    // a multi-component fit would absorb the anomalous jobs into their own
    // cluster. Tight nll scale so 3-4 sigma CAQ degradations clear the 0.5
    // detection threshold despite contaminated training.
    detect::EmOptions options;
    options.components = 1;
    options.nll_scale = 2.0;
    return std::make_unique<detect::EmDetector>(options);
  }
  // Mismatched: an AR model over the flattened job stream pretends the
  // job vectors have sequential dynamics they do not possess. Low order so
  // it still fits machines with few jobs.
  detect::ArOptions options;
  options.order = 2;
  return detect::MakeVectorFromSeries(
      std::make_unique<detect::ArDetector>(options));
}

std::unique_ptr<detect::SeriesDetector>
AlgorithmSelector::MakeEnvironmentDetector() const {
  if (policy_ == SelectorPolicy::kResolutionMatched) {
    detect::ArOptions options;
    options.order = 4;
    return std::make_unique<detect::ArDetector>(options);
  }
  return detect::MakeSeriesFromVectorPoints(
      std::make_unique<detect::HistogramDeviantDetector>(),
      /*include_phase=*/false);
}

std::unique_ptr<detect::SeriesDetector> AlgorithmSelector::MakeLineDetector()
    const {
  if (policy_ == SelectorPolicy::kResolutionMatched) {
    // Job-aggregated series are short and step-like: robust point
    // deviations from the line's usual operating values flag every job in
    // a bad window, not only the transition.
    return std::make_unique<detect::RobustZSeriesDetector>();
  }
  detect::ArOptions options;
  options.order = 3;
  return std::make_unique<detect::ArDetector>(options);
}

std::string AlgorithmSelector::Describe(
    hierarchy::ProductionLevel level) const {
  const bool matched = policy_ == SelectorPolicy::kResolutionMatched;
  switch (level) {
    case hierarchy::ProductionLevel::kPhase:
      return matched ? "AutoregressiveModel" : "HistogramDeviants+Points";
    case hierarchy::ProductionLevel::kJob:
      return matched ? "ExpectationMaximization" : "AutoregressiveModel+Stream";
    case hierarchy::ProductionLevel::kEnvironment:
      return matched ? "AutoregressiveModel" : "HistogramDeviants+Points";
    case hierarchy::ProductionLevel::kProductionLine:
      return matched ? "RobustZ" : "AutoregressiveModel";
    case hierarchy::ProductionLevel::kProduction:
      return "RobustZVector";
  }
  return "?";
}

}  // namespace hod::core
