#ifndef HOD_TIMESERIES_WINDOW_H_
#define HOD_TIMESERIES_WINDOW_H_

#include <cstddef>
#include <vector>

#include "util/statusor.h"

namespace hod::ts {

/// A half-open index range [begin, end) into a series, produced by the
/// window planners below. Window-based detectors (NPD, NMD, OS, discrim-
/// inative windows) score these ranges rather than raw points.
struct WindowSpan {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  /// Index of the window's central sample (used to localize window scores
  /// back onto points, per the paper's "exact positions of anomalies").
  size_t center() const { return begin + (end - begin) / 2; }
};

/// Overlapping fixed-size windows of `length`, advancing by `stride`.
/// Errors when length == 0, stride == 0, or length > n.
StatusOr<std::vector<WindowSpan>> SlidingWindows(size_t n, size_t length,
                                                 size_t stride);

/// Non-overlapping windows (stride == length); the final partial window is
/// dropped.
StatusOr<std::vector<WindowSpan>> TumblingWindows(size_t n, size_t length);

/// Compact per-window description used by detectors that cluster or
/// classify windows (phased k-means, SOM, SVM, MLP, ...).
struct WindowFeatures {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double slope = 0.0;
  double energy = 0.0;

  /// Flattened to a vector in the order above.
  std::vector<double> ToVector() const;

  static constexpr size_t kDimension = 6;
};

/// Computes features of values[span].
WindowFeatures ComputeWindowFeatures(const std::vector<double>& values,
                                     WindowSpan span);

/// Features for every window.
std::vector<WindowFeatures> ComputeAllWindowFeatures(
    const std::vector<double>& values, const std::vector<WindowSpan>& spans);

/// Distributes per-window scores back to per-point scores: each point takes
/// the maximum score over the windows covering it. Points covered by no
/// window get 0.
std::vector<double> WindowScoresToPointScores(
    size_t n, const std::vector<WindowSpan>& spans,
    const std::vector<double>& window_scores);

}  // namespace hod::ts

#endif  // HOD_TIMESERIES_WINDOW_H_
