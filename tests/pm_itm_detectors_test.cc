// PM (autoregressive), ITM (histogram deviants), UOA (OLAP cube), and the
// robust-z / random baselines.

#include <gtest/gtest.h>

#include <cmath>

#include "detect/ar_detector.h"
#include "detect/baseline.h"
#include "detect/histogram_deviant.h"
#include "detect/olap_cube.h"
#include "detector_test_util.h"
#include "eval/metrics.h"
#include "util/rng.h"

namespace hod::detect {
namespace {

using detect_test::CanonicalPoints;
using detect_test::CanonicalSeries;
using detect_test::ExpectScoresInUnitInterval;

TEST(Ar, RecoversKnownCoefficients) {
  // x_t = 0.6 x_{t-1} + small noise; the fit should find phi_1 ~ 0.6.
  Rng rng(3);
  std::vector<double> values(2000);
  double x = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    x = 0.6 * x + rng.Gaussian(0.0, 0.1);
    values[i] = x;
  }
  ArDetector detector(ArOptions{.order = 2});
  ASSERT_TRUE(detector.Train({ts::TimeSeries("x", 0, 1, values)}).ok());
  EXPECT_NEAR(detector.coefficients()[0], 0.6, 0.08);
  EXPECT_NEAR(detector.coefficients()[1], 0.0, 0.08);
  EXPECT_NEAR(detector.intercept(), 0.0, 0.05);
}

TEST(Ar, AdditiveSpikesDetectedExactly) {
  auto dataset = [] {
    sim::SeriesDatasetOptions options;
    options.seed = 5;
    static const sim::OutlierType kType = sim::OutlierType::kAdditive;
    options.only_type = &kType;
    return sim::GenerateSeriesDataset(options).value();
  }();
  ArDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.Score(dataset.test[s]).value();
    auto f1 = eval::BestF1WithTolerance(scores, dataset.test_labels[s], 1);
    EXPECT_GT(f1.value().f1, 0.9) << "series " << s;
  }
}

TEST(Ar, ForecastTracksSeries) {
  const auto dataset = CanonicalSeries();
  ArDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  const auto& series = dataset.train[0];
  auto forecast = detector.Forecast(series).value();
  // One-step forecasts should correlate strongly with the actual values.
  double num = 0.0;
  double mean_sq = 0.0;
  for (size_t t = 10; t < series.size(); ++t) {
    num += std::fabs(series[t] - forecast[t]);
    mean_sq += std::fabs(series[t]);
  }
  EXPECT_LT(num, 0.6 * mean_sq);
}

TEST(Ar, RejectsInsufficientData) {
  ArDetector detector(ArOptions{.order = 10});
  ts::TimeSeries tiny("t", 0, 1, {1.0, 2.0, 3.0});
  EXPECT_FALSE(detector.Train({tiny}).ok());
}

TEST(SolveLinearSystem, KnownSolution) {
  // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3.
  auto x = SolveLinearSystem({{2.0, 1.0}, {1.0, 3.0}}, {5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 3.0, 1e-9);
}

TEST(SolveLinearSystem, SingularRejected) {
  EXPECT_FALSE(SolveLinearSystem({{1.0, 1.0}, {1.0, 1.0}}, {1.0, 2.0}).ok());
  EXPECT_FALSE(SolveLinearSystem({}, {}).ok());
}

TEST(HistogramDeviant, FlagsValueOutliers) {
  // 1-D data: a univariate histogram technique sees displacement directly
  // in the value (a random-direction displacement in 3-D barely moves the
  // norm, which is all the histogram can see).
  const auto dataset = detect_test::CanonicalPoints1D();
  HistogramDeviantDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  auto scores = detector.Score(dataset.test);
  ASSERT_TRUE(scores.ok());
  ExpectScoresInUnitInterval(scores.value());
  auto auc = eval::RocAuc(scores.value(), dataset.test_labels);
  EXPECT_GT(auc.value(), 0.75);
}

TEST(HistogramDeviant, OutOfRangePointsScoreHigh) {
  std::vector<std::vector<double>> data;
  for (int i = 0; i < 200; ++i) data.push_back({std::sin(0.1 * i)});
  HistogramDeviantDetector detector;
  ASSERT_TRUE(detector.Train(data).ok());
  auto scores = detector.Score({{0.0}, {500.0}}).value();
  EXPECT_LT(scores[0], 0.3);
  EXPECT_GT(scores[1], 0.8);
}

TEST(HistogramDeviant, RejectsBadOptions) {
  HistogramDeviantDetector zero_buckets(
      HistogramDeviantOptions{.buckets = 0});
  EXPECT_FALSE(zero_buckets.Train({{1.0}}).ok());
  HistogramDeviantDetector detector;
  EXPECT_FALSE(detector.Train({}).ok());
}

TEST(OlapCube, NativeRecordsFlagDeviantCellMeasures) {
  // Cells keyed by machine id; one record has a wildly deviant measure.
  std::vector<CubeRecord> records;
  Rng rng(7);
  for (int machine = 0; machine < 3; ++machine) {
    for (int i = 0; i < 40; ++i) {
      records.push_back(
          {{machine}, 10.0 * machine + rng.Gaussian(0.0, 0.5)});
    }
  }
  OlapCubeDetector detector;
  ASSERT_TRUE(detector.TrainRecords(records).ok());
  EXPECT_GT(detector.num_cells(), 0u);
  std::vector<CubeRecord> probes = {{{1}, 10.0}, {{1, }, 35.0}};
  auto scores = detector.ScoreRecords(probes).value();
  EXPECT_LT(scores[0], 0.2);
  EXPECT_GT(scores[1], 0.6);
}

TEST(OlapCube, VectorViewQuantizesDimensions) {
  std::vector<std::vector<double>> data;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const double dim = static_cast<double>(i % 4);
    data.push_back({dim, 5.0 * dim + rng.Gaussian(0.0, 0.3)});
  }
  OlapCubeDetector detector;
  ASSERT_TRUE(detector.Train(data).ok());
  // Measure deviant for its cell even though globally unremarkable.
  auto scores = detector.Score({{0.0, 0.0}, {0.0, 15.0}}).value();
  EXPECT_LT(scores[0], 0.3);
  EXPECT_GT(scores[1], scores[0] + 0.3);
}

TEST(OlapCube, RejectsInconsistentRecords) {
  OlapCubeDetector detector;
  EXPECT_FALSE(detector.TrainRecords({}).ok());
  EXPECT_FALSE(
      detector.TrainRecords({{{1}, 0.0}, {{1, 2}, 0.0}}).ok());
}

TEST(RobustZSeries, FlagsDeviationsFromTrainingMedian) {
  ts::TimeSeries train("t", 0, 1, std::vector<double>(100, 5.0));
  for (size_t i = 0; i < 100; ++i) {
    train.mutable_values()[i] += 0.1 * static_cast<double>(i % 7);
  }
  RobustZSeriesDetector detector;
  ASSERT_TRUE(detector.Train({train}).ok());
  ts::TimeSeries probe("p", 0, 1, {5.2, 25.0, 5.3});
  auto scores = detector.Score(probe).value();
  EXPECT_LT(scores[0], 0.2);
  EXPECT_GT(scores[1], 0.6);
}

TEST(RobustZVector, PerFeatureDeviations) {
  std::vector<std::vector<double>> train;
  for (int i = 0; i < 60; ++i) {
    train.push_back({1.0 + 0.01 * (i % 5), 100.0 + 0.5 * (i % 7)});
  }
  RobustZVectorDetector detector;
  ASSERT_TRUE(detector.Train(train).ok());
  auto scores = detector.Score({{1.0, 100.0}, {1.0, 300.0}}).value();
  EXPECT_LT(scores[0], 0.2);
  EXPECT_GT(scores[1], 0.6);
  EXPECT_FALSE(detector.Score({{1.0}}).ok());
}

TEST(RandomBaseline, UniformScoresNoSkill) {
  RandomScoreDetector detector;
  ts::TimeSeries series("s", 0, 1, std::vector<double>(1000, 0.0));
  ASSERT_TRUE(detector.Train({series}).ok());
  auto scores = detector.Score(series).value();
  ExpectScoresInUnitInterval(scores);
  double mean = 0.0;
  for (double s : scores) mean += s;
  EXPECT_NEAR(mean / static_cast<double>(scores.size()), 0.5, 0.05);
}

}  // namespace
}  // namespace hod::detect
