#include "core/baseline_lifecycle.h"

namespace hod::core {

std::string_view BaselineActorName(BaselineActor actor) {
  switch (actor) {
    case BaselineActor::kOperator:
      return "operator";
    case BaselineActor::kConceptShift:
      return "concept-shift";
    case BaselineActor::kHealthQuarantine:
      return "health-quarantine";
    case BaselineActor::kGroupOutage:
      return "group-outage";
    case BaselineActor::kCheckpointRestore:
      return "checkpoint-restore";
  }
  return "?";
}

}  // namespace hod::core
