// Extension detectors beyond Table 1: profile similarity (Section 3
// prose), knn distance, reverse-NN hubness, LOF (Section 5 related work),
// and ensemble outlier vectors.

#include <gtest/gtest.h>

#include <cmath>

#include "detect/adapters.h"
#include "detect/ar_detector.h"
#include "detect/baseline.h"
#include "detect/ensemble.h"
#include "detect/knn_detector.h"
#include "detect/lof_detector.h"
#include "detect/mlp_detector.h"
#include "detect/profile_similarity.h"
#include "detector_test_util.h"
#include "eval/metrics.h"
#include "util/rng.h"

namespace hod::detect {
namespace {

using detect_test::CanonicalPoints;
using detect_test::CanonicalSeries;
using detect_test::ExpectScoresInUnitInterval;

/// Ramp-shaped training series with small noise (a repeatable phase).
ts::TimeSeries RampSeries(uint64_t seed, size_t n = 128) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = 25.0 + 150.0 * static_cast<double>(i) /
                           static_cast<double>(n - 1) +
                rng.Gaussian(0.0, 0.8);
  }
  return ts::TimeSeries("ramp", 0.0, 1.0, std::move(values));
}

TEST(ProfileSimilarity, LearnsTheRamp) {
  ProfileSimilarityDetector detector;
  ASSERT_TRUE(detector.Train({RampSeries(1), RampSeries(2), RampSeries(3)})
                  .ok());
  EXPECT_EQ(detector.profile_mean().size(), 64u);
  // Profile follows the ramp: later positions higher.
  EXPECT_GT(detector.profile_mean().back(),
            detector.profile_mean().front() + 100.0);
}

TEST(ProfileSimilarity, FlagsDeviationFromProfileNotFromValueRange) {
  // The killer feature vs a global z-score: a value that is normal at the
  // END of the ramp is an anomaly at the START.
  ProfileSimilarityDetector detector;
  ASSERT_TRUE(detector.Train({RampSeries(1), RampSeries(2), RampSeries(3),
                              RampSeries(4)})
                  .ok());
  ts::TimeSeries probe = RampSeries(9);
  probe.mutable_values()[5] = 170.0;  // end-of-ramp value at the start
  auto scores = detector.Score(probe).value();
  ExpectScoresInUnitInterval(scores);
  EXPECT_GT(scores[5], 0.8);
  // The same value at the end is perfectly normal.
  EXPECT_LT(scores[120], 0.2);
}

TEST(ProfileSimilarity, RejectsShortSeries) {
  ProfileSimilarityDetector detector(
      ProfileSimilarityOptions{.profile_length = 64});
  ts::TimeSeries tiny("t", 0, 1, {1.0, 2.0});
  EXPECT_FALSE(detector.Train({tiny}).ok());
  EXPECT_EQ(detector.Score(tiny).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Knn, SeparatesDisplacedPoints) {
  const auto dataset = CanonicalPoints();
  KnnDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  auto scores = detector.Score(dataset.test);
  ASSERT_TRUE(scores.ok());
  ExpectScoresInUnitInterval(scores.value());
  EXPECT_GT(eval::RocAuc(scores.value(), dataset.test_labels).value(), 0.9);
}

TEST(Knn, TrainingPointsScoreNearZero) {
  const auto dataset = CanonicalPoints();
  KnnDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  auto scores = detector.Score(dataset.train).value();
  // By the q95 baseline, ~95% of training points sit at score 0.
  size_t zero = 0;
  for (double s : scores) {
    if (s == 0.0) ++zero;
  }
  EXPECT_GT(zero, scores.size() * 8 / 10);
}

TEST(Knn, ClampsKToLeaveOneOutCandidates) {
  // Regression: with k > n-1 the top-k set never filled, so the knn
  // statistic silently changed meaning — at score time it averaged the
  // distance to ALL n training points (the +inf sentinels are filtered)
  // instead of the k nearest, while the leave-one-out baseline only ever
  // saw n-1. An oversized k must behave exactly like k = n-1.
  const std::vector<std::vector<double>> train = {{0.0}, {0.5}, {1.0},
                                                  {1.5}, {2.0}};
  KnnDetector oversized(KnnOptions{.k = 50});
  KnnDetector clamped(KnnOptions{.k = 4});
  ASSERT_TRUE(oversized.Train(train).ok());
  ASSERT_TRUE(clamped.Train(train).ok());
  auto a = oversized.Score({{100.0}, {1.0}}).value();
  auto b = clamped.Score({{100.0}, {1.0}}).value();
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);
  EXPECT_GT(a[0], 0.5) << "distant probe must score high";
  EXPECT_LT(a[1], a[0]);
}

TEST(Knn, RejectsDegenerateInput) {
  KnnDetector detector;
  EXPECT_FALSE(detector.Train({{1.0}}).ok());
  KnnDetector zero_k(KnnOptions{.k = 0});
  EXPECT_FALSE(zero_k.Train({{1.0}, {2.0}}).ok());
}

TEST(ReverseNn, AntihubsScoreHigh) {
  const auto dataset = CanonicalPoints();
  ReverseNnDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  auto scores = detector.Score(dataset.test);
  ASSERT_TRUE(scores.ok());
  ExpectScoresInUnitInterval(scores.value());
  EXPECT_GT(eval::RocAuc(scores.value(), dataset.test_labels).value(), 0.8);
}

TEST(ReverseNn, ReverseCountsSumToKn) {
  const auto dataset = CanonicalPoints();
  ReverseNnDetector detector(ReverseNnOptions{.k = 5});
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  size_t total = 0;
  for (size_t c : detector.reverse_counts()) total += c;
  EXPECT_EQ(total, dataset.train.size() * 5);
}

TEST(ReverseNn, RejectsBadK) {
  ReverseNnDetector detector(ReverseNnOptions{.k = 10});
  EXPECT_FALSE(detector.Train({{1.0}, {2.0}, {3.0}}).ok());
}

TEST(Lof, LocalDensityBeatsGlobalDistance) {
  // Two clusters of very different density plus one point just outside
  // the tight cluster: globally unremarkable, locally anomalous.
  std::vector<std::vector<double>> train;
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    train.push_back({rng.Gaussian(0.0, 0.05), rng.Gaussian(0.0, 0.05)});
    train.push_back({rng.Gaussian(10.0, 2.0), rng.Gaussian(0.0, 2.0)});
  }
  LofDetector detector;
  ASSERT_TRUE(detector.Train(train).ok());
  // Near the tight cluster but 10 tight-sigmas out; inside the loose one.
  auto near_tight = detector.RawLof({0.5, 0.5}).value();
  auto inside_loose = detector.RawLof({10.5, 0.5}).value();
  EXPECT_GT(near_tight, inside_loose);
  EXPECT_GT(near_tight, 1.5);
  EXPECT_LT(inside_loose, 1.5);
}

TEST(Lof, InliersNearOne) {
  const auto dataset = CanonicalPoints();
  LofDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  // Score a known training inlier.
  auto lof = detector.RawLof(dataset.train[0]).value();
  EXPECT_NEAR(lof, 1.0, 0.6);
}

TEST(Lof, SeparatesDisplacedPoints) {
  const auto dataset = CanonicalPoints();
  LofDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  auto scores = detector.Score(dataset.test);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(eval::RocAuc(scores.value(), dataset.test_labels).value(), 0.85);
}

TEST(Ensemble, RefusesSupervisedMembers) {
  SeriesEnsemble ensemble;
  EXPECT_FALSE(ensemble
                   .AddMember(detect::MakeSeriesFromVectorWindows(
                       std::make_unique<MlpDetector>(), 32, 8))
                   .ok());
  EXPECT_FALSE(ensemble.AddMember(nullptr).ok());
}

TEST(Ensemble, CombinationsBehave) {
  OutlierVectorMatrix matrix;
  matrix.member_names = {"a", "b"};
  matrix.scores = {{0.0, 0.4, 1.0}, {0.2, 0.8, 0.0}};
  auto mean = Combine(matrix, Combination::kMean);
  EXPECT_DOUBLE_EQ(mean[1], 0.6);
  auto max = Combine(matrix, Combination::kMax);
  EXPECT_DOUBLE_EQ(max[2], 1.0);
  auto rank = Combine(matrix, Combination::kRankMean);
  // Item 1 is middle-ranked by a (0.5) and top-ranked by b (1.0).
  EXPECT_DOUBLE_EQ(rank[1], 0.75);
}

TEST(Ensemble, TrainsAndScoresAllMembers) {
  const auto dataset = CanonicalSeries();
  SeriesEnsemble ensemble(Combination::kMean);
  ASSERT_TRUE(ensemble.AddMember(std::make_unique<ArDetector>()).ok());
  ASSERT_TRUE(
      ensemble.AddMember(std::make_unique<RobustZSeriesDetector>()).ok());
  EXPECT_EQ(ensemble.num_members(), 2u);
  ASSERT_TRUE(ensemble.Train(dataset.train).ok());
  auto vector = ensemble.ScoreVector(dataset.test[0]).value();
  EXPECT_EQ(vector.scores.size(), 2u);
  EXPECT_EQ(vector.num_items(), dataset.test[0].size());
  auto combined = ensemble.Score(dataset.test[0]).value();
  ExpectScoresInUnitInterval(combined);
  EXPECT_EQ(combined.size(), dataset.test[0].size());
}

TEST(Ensemble, EmptyEnsembleRefusesTraining) {
  SeriesEnsemble ensemble;
  EXPECT_EQ(ensemble.Train({}).code(), StatusCode::kFailedPrecondition);
}

TEST(Ensemble, RankMeanImmuneToScaleMiscalibration) {
  // Member b's scores are member a's divided by 100 (bad calibration);
  // rank-mean consensus must equal the consensus of identically-scaled
  // members.
  OutlierVectorMatrix matrix;
  matrix.scores = {{0.1, 0.5, 0.9, 0.3}, {0.001, 0.005, 0.009, 0.003}};
  auto rank = Combine(matrix, Combination::kRankMean);
  // Both members rank the items identically -> consensus = rank of a.
  EXPECT_GT(rank[2], rank[1]);
  EXPECT_GT(rank[1], rank[3]);
  EXPECT_GT(rank[3], rank[0]);
}

}  // namespace
}  // namespace hod::detect
