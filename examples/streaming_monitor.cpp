// Streaming monitor: the condition-monitoring application on top of the
// hod::stream engine.
//
// Samples from a small sensor fleet flow through StreamEngine: the ingest
// router validates and routes them, per-sensor OnlineMonitors score each
// sample with alarm hysteresis, and the collector merges alarm episodes
// via core::AlertManager and keeps a per-level outlier snapshot — the
// hook for escalating flagged sensors into Algorithm 1.
//
// This run uses the deterministic synchronous configuration (one shard,
// no threads) so the output is identical across runs; the same code
// drives the multi-threaded engine in production (see the stream tests
// and bench_stream_throughput). A concept-shift pass afterwards separates
// the transient fault from the deliberate setpoint change.

#include <cstdio>
#include <string>
#include <vector>

#include "core/concept_shift.h"
#include "core/hierarchical_detector.h"
#include "sim/plant.h"
#include "stream/engine.h"
#include "stream/escalation.h"
#include "util/rng.h"

int main() {
  using namespace hod;
  using hierarchy::ProductionLevel;

  // Synthesize the fleet's streams: two redundant chamber thermocouples
  // (b sees the same process, different noise), plus the room temperature.
  // One transient fault around t=400 hits only thermocouple A (a sensor
  // problem, not a process problem), and a deliberate setpoint change at
  // t=700 moves both (a concept shift, not a fault).
  Rng rng_a(123), rng_b(321), rng_room(77);
  std::vector<double> temp_a, temp_b, room;
  double na = 0.0, nb = 0.0, nr = 0.0;
  for (size_t t = 0; t < 1000; ++t) {
    na = 0.7 * na + rng_a.Gaussian(0.0, 0.25);
    nb = 0.7 * nb + rng_b.Gaussian(0.0, 0.25);
    nr = 0.9 * nr + rng_room.Gaussian(0.0, 0.1);
    double process = 55.0 + (t >= 700 ? 3.0 : 0.0);  // setpoint change
    double a = process + na;
    if (t >= 400 && t < 408) a += 4.0;  // transient fault on A only
    temp_a.push_back(a);
    temp_b.push_back(process + nb);
    room.push_back(21.0 + nr);
  }

  stream::StreamEngineOptions options;
  options.synchronous = true;  // deterministic demo; threaded in prod
  options.monitor.warmup = 100;
  options.monitor.raise_after = 2;
  options.monitor.clear_after = 5;
  options.snapshot_every = 50;
  stream::StreamEngine engine(options);
  engine.AddSensor("chamber_temp_a", ProductionLevel::kPhase);
  engine.AddSensor("chamber_temp_b", ProductionLevel::kPhase);
  engine.AddSensor("room_temp", ProductionLevel::kEnvironment);
  if (!engine.Start().ok()) return 1;

  std::printf("Streaming 3 sensors x 1000 samples through StreamEngine "
              "(warmup 100)...\n\n");
  std::printf("%-8s %-16s %-10s %s\n", "t", "sensor", "score", "event");
  for (size_t t = 0; t < 1000; ++t) {
    const double ts = static_cast<double>(t);
    const std::vector<std::pair<std::string, double>> readings = {
        {"chamber_temp_a", temp_a[t]},
        {"chamber_temp_b", temp_b[t]},
        {"room_temp", room[t]},
    };
    for (const auto& [sensor, value] : readings) {
      const ProductionLevel level = sensor == "room_temp"
                                        ? ProductionLevel::kEnvironment
                                        : ProductionLevel::kPhase;
      auto ack = engine.Ingest({sensor, level, ts, value});
      if (!ack.ok()) {
        std::fprintf(stderr, "%s\n", ack.status().ToString().c_str());
        return 1;
      }
      const core::MonitorUpdate& update = ack->update.value();
      if (update.alarm_raised) {
        std::printf("%-8zu %-16s %-10.2f ALARM RAISED\n", t, sensor.c_str(),
                    update.score);
      } else if (update.alarm_cleared) {
        std::printf("%-8zu %-16s %-10.2f alarm cleared\n", t, sensor.c_str(),
                    update.score);
      }
    }
  }
  engine.Flush();

  stream::StreamStatsSnapshot stats = engine.stats();
  std::printf("\nEngine counters:\n%s", stats.ToString().c_str());

  // The collector's per-level outlier snapshot — what a dashboard polls,
  // and the escalation hook: each active/raised alarm entity is a
  // candidate for a full Algorithm-1 query (HierarchicalDetector) to get
  // the <global score, outlierness, support> triple.
  stream::EngineSnapshot snapshot = engine.Snapshot();
  std::printf("\nPer-level outlier state (snapshot #%llu):\n",
              static_cast<unsigned long long>(snapshot.sequence));
  for (int value = 1; value <= hierarchy::kNumLevels; ++value) {
    const stream::LevelOutlierState& level =
        snapshot.levels[static_cast<size_t>(value) - 1];
    if (level.outlier_samples == 0 && level.alarms_raised == 0) continue;
    std::printf(
        "  %-20s outlier_samples=%-4llu alarms=%llu peak_score=%.2f\n",
        std::string(hierarchy::LevelName(
                        hierarchy::LevelFromValue(value).value()))
            .c_str(),
        static_cast<unsigned long long>(level.outlier_samples),
        static_cast<unsigned long long>(level.alarms_raised),
        level.peak_score);
  }

  // Alert episodes: the fault burst and the setpoint-change onset on A;
  // chamber_temp_b alarms only at the setpoint change — the redundant
  // sensor NOT seeing the t=400 burst is exactly the paper's support
  // signal for suspecting a measurement error.
  std::printf("\nAlert episodes (merged, strongest first):\n");
  for (const core::AlertEpisode& episode : engine.Episodes()) {
    std::printf("  %-16s t=[%.0f,%.0f] findings=%zu peak=%.2f %s\n",
                episode.entity.c_str(), episode.start_time, episode.end_time,
                episode.finding_count, episode.peak_outlierness,
                std::string(core::AlertSeverityName(episode.severity)).c_str());
  }
  engine.Stop();

  // Concept-shift pass over sensor A distinguishes the two events: the
  // fault reverted, the setpoint change persisted.
  ts::TimeSeries recorded("chamber_temp_a", 0.0, 1.0, temp_a);
  core::ConceptShiftOptions shift_options;
  shift_options.min_persistence = 16;
  shift_options.drift_allowance = 1.0;
  auto shifts_or = core::DetectConceptShifts(recorded, shift_options);
  if (!shifts_or.ok()) {
    std::fprintf(stderr, "%s\n", shifts_or.status().ToString().c_str());
    return 1;
  }
  std::printf("\nConcept shifts found: %zu\n", shifts_or->size());
  for (const core::ConceptShift& shift : shifts_or.value()) {
    std::printf("  t=%-6zu %.1f -> %.1f degC (%.1f sigma) — re-baseline the "
                "monitor here\n",
                shift.index, shift.before_mean, shift.after_mean,
                shift.magnitude_sigmas);
  }
  std::printf("\nThe transient fault at t=400 raised an alarm but is NOT a "
              "concept shift;\nthe setpoint change at t=700 is.\n");

  // ---- Snapshot-triggered escalation --------------------------------------
  // A stream alarm is only a cheap per-sensor verdict. When the engine's
  // sensors map onto a real production hierarchy, the EscalationBridge
  // diffs consecutive EngineSnapshots and runs the paper's Algorithm 1
  // (core::HierarchicalDetector::EscalateAlarm) over each NEWLY-flagged
  // sensor — the detector's epoch cache keeps the cost at one entity, and
  // the resulting <global score, outlierness, support> triple lands on the
  // same alert episode as the raw alarm.
  std::printf("\n=== Snapshot-triggered escalation into Algorithm 1 ===\n");
  sim::PlantOptions plant_options;
  plant_options.num_lines = 1;
  plant_options.machines_per_line = 2;
  plant_options.jobs_per_machine = 6;
  plant_options.seed = 41;
  sim::SimulatedPlant plant =
      sim::BuildPlant(plant_options, sim::ScenarioOptions{}).value();
  auto& machine = plant.production.lines[0].machines[0];
  const std::string plant_sensor = machine.id + ".bed_temp_a";
  const double job_t0 = machine.jobs.front().start_time;
  // Plant a bed-temperature excursion in the production data itself (the
  // whole redundancy group sees it), so escalation has evidence to score.
  for (auto& phase : machine.jobs.front().phases) {
    for (auto& [series_id, series] : phase.sensor_series) {
      if (!series.empty()) series[series.size() / 2] += 1000.0;
    }
  }

  stream::StreamEngineOptions plant_engine_options;
  plant_engine_options.synchronous = true;
  plant_engine_options.monitor.warmup = 32;
  plant_engine_options.snapshot_every = 8;
  plant_engine_options.health.staleness_timeout = 0.0;
  stream::StreamEngine plant_engine(plant_engine_options);
  plant_engine.AddSensor(plant_sensor, ProductionLevel::kPhase);
  if (!plant_engine.Start().ok()) return 1;
  Rng rng_plant(7);
  double noise = 0.0;
  for (size_t i = 0; i < 120; ++i) {
    noise = 0.7 * noise + rng_plant.Gaussian(0.0, 0.25);
    double value = 50.0 + noise + (i >= 100 ? 8.0 : 0.0);  // alarm burst
    (void)plant_engine.Ingest(
        {plant_sensor, ProductionLevel::kPhase, job_t0 + i, value});
  }
  plant_engine.Flush();

  core::HierarchicalDetector detector(&plant.production);
  stream::EscalationBridge bridge(&plant_engine, &detector);
  // Threaded deployments call bridge.Start() for a background poll loop;
  // the synchronous demo polls once, deterministically.
  auto escalated = bridge.Poll();
  if (!escalated.ok()) {
    std::fprintf(stderr, "%s\n", escalated.status().ToString().c_str());
    return 1;
  }
  stream::StreamStatsSnapshot plant_stats = plant_engine.stats();
  std::printf(
      "Escalated %llu newly-flagged sensor(s): runs=%llu findings=%llu "
      "cache_hits=%llu cache_misses=%llu\n",
      static_cast<unsigned long long>(escalated.value()),
      static_cast<unsigned long long>(plant_stats.escalation_runs),
      static_cast<unsigned long long>(plant_stats.escalation_findings),
      static_cast<unsigned long long>(plant_stats.escalation_cache_hits),
      static_cast<unsigned long long>(plant_stats.escalation_cache_misses));
  for (const core::AlertEpisode& episode : plant_engine.Episodes()) {
    if (episode.escalated_findings == 0) continue;
    std::printf(
        "  %-22s escalated_findings=%zu global_score=%d outlierness=%.2f "
        "support=%.2f\n",
        episode.entity.c_str(), episode.escalated_findings,
        episode.peak_global_score, episode.peak_outlierness,
        episode.peak_support);
  }
  std::printf("The raw stream alarm carried <1, score, 0>; the escalated "
              "episode carries the\nfull Algorithm-1 triple, including "
              "redundancy support.\n");
  plant_engine.Stop();
  return 0;
}
