#include "sim/plant.h"

#include <algorithm>
#include <cmath>

#include "sim/sensor_model.h"
#include "timeseries/stats.h"
#include "util/rng.h"

namespace hod::sim {

namespace {

struct QuantitySpec {
  std::string quantity;
  bool redundant;
  NoiseModel process;
  double measurement_sigma;
  std::string unit;
};

const std::vector<QuantitySpec>& Quantities() {
  static const std::vector<QuantitySpec>* kSpecs =
      new std::vector<QuantitySpec>{
          {"bed_temp", true, {0.8, 0.7}, 0.15, "degC"},
          {"chamber_temp", true, {0.5, 0.7}, 0.10, "degC"},
          {"laser_power", false, {3.0, 0.4}, 0.50, "W"},
          {"vibration", false, {0.15, 0.5}, 0.03, "mm/s"},
          {"oxygen", false, {0.08, 0.6}, 0.02, "%"},
      };
  return *kSpecs;
}

const QuantitySpec* FindQuantity(const std::string& quantity) {
  for (const QuantitySpec& spec : Quantities()) {
    if (spec.quantity == quantity) return &spec;
  }
  return nullptr;
}

struct PhaseSpec {
  std::string name;
  size_t samples;
};

std::vector<PhaseSpec> PhasePlan(const PlantOptions& options) {
  return {{"preparation", options.preparation_samples},
          {"warm_up", options.warm_up_samples},
          {"calibration", options.calibration_samples},
          {"printing", options.printing_samples},
          {"cool_down", options.cool_down_samples}};
}

/// Baseline CAQ values and noise (density %, roughness um, dimensional
/// deviation mm, tensile strength MPa). Degradation direction: density and
/// tensile drop, roughness and deviation rise.
struct CaqSpec {
  std::string name;
  double nominal;
  double sigma;
  double degrade_sign;
};

const std::vector<CaqSpec>& CaqSpecs() {
  static const std::vector<CaqSpec>* kSpecs = new std::vector<CaqSpec>{
      {"density", 98.6, 0.25, -1.0},
      {"roughness", 6.2, 0.35, +1.0},
      {"dim_deviation", 0.048, 0.006, +1.0},
      {"tensile", 51.0, 1.1, -1.0},
  };
  return *kSpecs;
}

/// Nominal setup parameters (value, jitter sigma).
struct SetupSpec {
  std::string name;
  double nominal;
  double sigma;
};

const std::vector<SetupSpec>& SetupSpecs() {
  static const std::vector<SetupSpec>* kSpecs = new std::vector<SetupSpec>{
      {"layer_height", 0.030, 0.0015},
      {"laser_speed", 1000.0, 25.0},
      {"laser_power_set", 195.0, 2.5},
      {"hatch_spacing", 0.120, 0.008},
      {"powder_quality", 1.00, 0.03},
      {"chamber_pressure", 10.0, 0.15},
  };
  return *kSpecs;
}

/// Builds the cyclic event sequence of a phase, with fault symbols near
/// anomalous samples.
ts::DiscreteSequence BuildEvents(const std::string& phase_name,
                                 size_t samples,
                                 const LabelVector& anomaly_labels,
                                 Rng& rng) {
  // One event per 8 samples, cycling IDLE(0) RECOAT(1) EXPOSE(2)
  // MEASURE(3) with occasional SERVICE(4); FAULT(5) replaces events that
  // overlap anomalous samples.
  ts::DiscreteSequence events(phase_name + ".events", kEventAlphabetSize);
  const size_t stride = 8;
  for (size_t start = 0; start < samples; start += stride) {
    ts::Symbol symbol = static_cast<ts::Symbol>((start / stride) % 4);
    if (rng.NextBernoulli(0.03)) symbol = 4;
    const size_t end = std::min(start + stride, samples);
    for (size_t i = start; i < end; ++i) {
      if (i < anomaly_labels.size() && anomaly_labels[i] != 0) {
        symbol = kFaultSymbol;
        break;
      }
    }
    events.Append(symbol);
  }
  return events;
}

OutlierType RandomOutlierType(Rng& rng) {
  const auto& types = AllOutlierTypes();
  return types[rng.NextBelow(types.size())];
}

}  // namespace

const std::vector<std::string>& PhaseNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "preparation", "warm_up", "calibration", "printing", "cool_down"};
  return *kNames;
}

const std::vector<std::string>& MachineQuantities() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "bed_temp", "chamber_temp", "laser_power", "vibration", "oxygen"};
  return *kNames;
}

bool RedundantQuantity(const std::string& quantity) {
  const QuantitySpec* spec = FindQuantity(quantity);
  return spec != nullptr && spec->redundant;
}

StatusOr<SimulatedPlant> BuildPlant(const PlantOptions& plant_options,
                                    const ScenarioOptions& scenario) {
  if (plant_options.num_lines == 0 || plant_options.machines_per_line == 0 ||
      plant_options.jobs_per_machine == 0) {
    return Status::InvalidArgument("plant dimensions must be positive");
  }
  SimulatedPlant plant;
  Rng rng(plant_options.seed);
  const std::vector<PhaseSpec> phase_plan = PhasePlan(plant_options);

  // ---- Sensor registration -------------------------------------------
  for (size_t l = 0; l < plant_options.num_lines; ++l) {
    const std::string line_id = "line" + std::to_string(l + 1);
    for (size_t m = 0; m < plant_options.machines_per_line; ++m) {
      const std::string machine_id =
          line_id + ".m" + std::to_string(m + 1);
      for (const QuantitySpec& spec : Quantities()) {
        if (spec.redundant) {
          for (const char* suffix : {"_a", "_b"}) {
            HOD_RETURN_IF_ERROR(plant.production.sensors.Register(
                {machine_id + "." + spec.quantity + suffix,
                 spec.quantity + std::string(suffix), spec.unit, machine_id,
                 machine_id + "." + spec.quantity}));
          }
        } else {
          HOD_RETURN_IF_ERROR(plant.production.sensors.Register(
              {machine_id + "." + spec.quantity, spec.quantity, spec.unit,
               machine_id, ""}));
        }
      }
    }
    HOD_RETURN_IF_ERROR(plant.production.sensors.Register(
        {line_id + ".room_temp", "room_temp", "degC", "", ""}));
  }

  // Rogue machines: last `rogue_machines` machines overall.
  std::vector<std::string> all_machine_ids;
  for (size_t l = 0; l < plant_options.num_lines; ++l) {
    for (size_t m = 0; m < plant_options.machines_per_line; ++m) {
      all_machine_ids.push_back("line" + std::to_string(l + 1) + ".m" +
                                std::to_string(m + 1));
    }
  }
  const size_t rogue_count =
      std::min(scenario.rogue_machines, all_machine_ids.size());
  for (size_t r = 0; r < rogue_count; ++r) {
    plant.truth
        .machine_labels[all_machine_ids[all_machine_ids.size() - 1 - r]] = 1;
  }

  // ---- Lines / machines / jobs ---------------------------------------
  size_t job_counter = 0;
  for (size_t l = 0; l < plant_options.num_lines; ++l) {
    hierarchy::ProductionLine line;
    line.id = "line" + std::to_string(l + 1);
    const bool bad_batch_line = l < scenario.bad_batch_lines;
    // Bad batch covers jobs [start, start + bad_batch_jobs) of each
    // machine on the line (synchronized powder lot change).
    const size_t bad_batch_start =
        plant_options.jobs_per_machine > scenario.bad_batch_jobs
            ? plant_options.jobs_per_machine / 2
            : 0;

    LabelVector line_job_flags;  // per machine-major ordering, fixed below

    for (size_t m = 0; m < plant_options.machines_per_line; ++m) {
      hierarchy::Machine machine;
      machine.id = line.id + ".m" + std::to_string(m + 1);
      const bool rogue = plant.truth.machine_labels.count(machine.id) > 0;
      machine.configuration = ts::FeatureVector(
          {"max_laser_power", "build_volume", "firmware"},
          {200.0 + 5.0 * static_cast<double>(m), 250.0,
           3.0 + static_cast<double>(l)});

      // Machines are staggered so line-level job ordering interleaves.
      double clock = 300.0 * static_cast<double>(m);

      for (size_t j = 0; j < plant_options.jobs_per_machine; ++j) {
        hierarchy::Job job;
        job.id = machine.id + ".job" + std::to_string(++job_counter);
        job.machine_id = machine.id;
        job.start_time = clock;

        const bool in_bad_batch = bad_batch_line &&
                                  j >= bad_batch_start &&
                                  j < bad_batch_start + scenario.bad_batch_jobs;

        // ---- Setup vector -------------------------------------------
        std::vector<std::string> setup_names;
        std::vector<double> setup_values;
        for (const SetupSpec& spec : SetupSpecs()) {
          setup_names.push_back(spec.name);
          double value = rng.Gaussian(spec.nominal, spec.sigma);
          if (spec.name == "powder_quality" && in_bad_batch) {
            value -= 0.25;  // degraded lot: visible in the setup series
          }
          setup_values.push_back(value);
        }
        job.setup = ts::FeatureVector(std::move(setup_names),
                                      std::move(setup_values));

        // ---- Anomaly selection --------------------------------------
        const bool process_anomaly =
            rng.NextBernoulli(scenario.process_anomaly_rate);
        const bool glitch = rng.NextBernoulli(scenario.glitch_rate);
        // Pick targets up front so every phase generation is uniform.
        size_t anomaly_phase = rng.NextBelow(phase_plan.size());
        const auto& quantities = Quantities();
        size_t anomaly_quantity = rng.NextBelow(quantities.size());
        size_t glitch_phase = rng.NextBelow(phase_plan.size());
        size_t glitch_quantity = rng.NextBelow(quantities.size());

        double total_anomaly_magnitude = 0.0;

        // ---- Phases --------------------------------------------------
        for (size_t p = 0; p < phase_plan.size(); ++p) {
          hierarchy::Phase phase;
          phase.name = phase_plan[p].name;
          phase.start_time = clock;
          const size_t samples = phase_plan[p].samples;
          phase.end_time =
              clock + plant_options.sample_interval *
                          static_cast<double>(samples);

          LabelVector phase_anomaly_labels(samples, 0);

          for (size_t q = 0; q < quantities.size(); ++q) {
            const QuantitySpec& spec = quantities[q];
            HOD_ASSIGN_OR_RETURN(
                PhaseProfile profile,
                PrinterPhaseProfile(phase.name, spec.quantity));
            HOD_ASSIGN_OR_RETURN(
                std::vector<double> true_signal,
                GenerateTrueSignal(profile, spec.process, samples, rng));
            LabelVector labels(samples, 0);

            if (process_anomaly && p == anomaly_phase &&
                q == anomaly_quantity && samples > 16) {
              InjectionSpec injection;
              injection.type = RandomOutlierType(rng);
              injection.position =
                  8 + rng.NextBelow(samples - 16);
              injection.magnitude =
                  scenario.magnitude_sigmas * spec.process.sigma *
                  (rng.NextBernoulli(0.5) ? 1.0 : -1.0);
              injection.ar_coefficient = spec.process.ar_coefficient;
              HOD_RETURN_IF_ERROR(Inject(injection, true_signal, labels));
              total_anomaly_magnitude += scenario.magnitude_sigmas;

              AnomalyRecord record;
              record.level = hierarchy::ProductionLevel::kPhase;
              record.type = injection.type;
              record.measurement_error = false;
              record.line_id = line.id;
              record.machine_id = machine.id;
              record.job_id = job.id;
              record.phase_name = phase.name;
              record.sensor_id =
                  machine.id + "." + spec.quantity +
                  (spec.redundant ? "_a" : "");
              record.start_time =
                  phase.start_time + plant_options.sample_interval *
                                         static_cast<double>(
                                             injection.position);
              record.end_time = record.start_time;
              record.magnitude_sigmas = scenario.magnitude_sigmas;
              plant.truth.records.push_back(record);

              for (size_t i = 0; i < samples; ++i) {
                if (labels[i] != 0) phase_anomaly_labels[i] = 1;
              }

              // Cross-level environment coupling for chamber anomalies.
              if (spec.quantity == "chamber_temp" &&
                  rng.NextBernoulli(scenario.environment_coupling)) {
                // Remember the event time; environment injection happens
                // after all jobs are built (series spans the whole line).
                AnomalyRecord env_record = record;
                env_record.level = hierarchy::ProductionLevel::kEnvironment;
                env_record.sensor_id = line.id + ".room_temp";
                env_record.phase_name.clear();
                plant.truth.records.push_back(env_record);
              }
            }

            // Emit sensor readings (one or two depending on redundancy).
            std::vector<std::string> sensor_ids;
            if (spec.redundant) {
              sensor_ids = {machine.id + "." + spec.quantity + "_a",
                            machine.id + "." + spec.quantity + "_b"};
            } else {
              sensor_ids = {machine.id + "." + spec.quantity};
            }
            for (size_t s = 0; s < sensor_ids.size(); ++s) {
              const double bias =
                  0.2 * spec.measurement_sigma * static_cast<double>(s);
              std::vector<double> reading = ObserveSignal(
                  true_signal, spec.measurement_sigma, bias, rng);
              LabelVector reading_labels = labels;

              // Single-sensor measurement glitch (only on sensor _a /
              // the lone sensor).
              if (glitch && p == glitch_phase && q == glitch_quantity &&
                  s == 0 && samples > 16) {
                InjectionSpec injection;
                injection.type = OutlierType::kAdditive;
                injection.position = 8 + rng.NextBelow(samples - 16);
                injection.magnitude =
                    scenario.magnitude_sigmas * spec.process.sigma *
                    (rng.NextBernoulli(0.5) ? 1.0 : -1.0);
                HOD_RETURN_IF_ERROR(
                    Inject(injection, reading, reading_labels));

                AnomalyRecord record;
                record.level = hierarchy::ProductionLevel::kPhase;
                record.type = injection.type;
                record.measurement_error = true;
                record.line_id = line.id;
                record.machine_id = machine.id;
                record.job_id = job.id;
                record.phase_name = phase.name;
                record.sensor_id = sensor_ids[s];
                record.start_time =
                    phase.start_time +
                    plant_options.sample_interval *
                        static_cast<double>(injection.position);
                record.end_time = record.start_time;
                record.magnitude_sigmas = scenario.magnitude_sigmas;
                plant.truth.records.push_back(record);
              }

              bool any_label = false;
              for (uint8_t v : reading_labels) {
                if (v != 0) {
                  any_label = true;
                  break;
                }
              }
              if (any_label) {
                plant.truth.phase_labels[GroundTruth::PhaseSeriesKey(
                    job.id, phase.name, sensor_ids[s])] = reading_labels;
              }
              phase.sensor_series.emplace(
                  sensor_ids[s],
                  ts::TimeSeries(sensor_ids[s], phase.start_time,
                                 plant_options.sample_interval,
                                 std::move(reading)));
            }
          }

          phase.events =
              BuildEvents(phase.name, samples, phase_anomaly_labels, rng);
          clock = phase.end_time;
          job.phases.push_back(std::move(phase));
        }

        // ---- CAQ vector ----------------------------------------------
        std::vector<std::string> caq_names;
        std::vector<double> caq_values;
        const double rogue_shift = rogue ? 3.5 : 0.0;
        const double batch_shift = in_bad_batch ? 3.0 : 0.0;
        const double anomaly_shift =
            scenario.caq_degradation *
            std::min(total_anomaly_magnitude / scenario.magnitude_sigmas,
                     2.0);
        for (const CaqSpec& spec : CaqSpecs()) {
          caq_names.push_back(spec.name);
          const double shift =
              (rogue_shift + batch_shift + anomaly_shift) * spec.sigma *
              spec.degrade_sign;
          caq_values.push_back(rng.Gaussian(spec.nominal, spec.sigma) +
                               shift);
        }
        job.caq =
            ts::FeatureVector(std::move(caq_names), std::move(caq_values));

        job.end_time = clock;
        clock += plant_options.gap_between_jobs;

        if (process_anomaly) plant.truth.job_labels[job.id] = 1;
        machine.jobs.push_back(std::move(job));
      }
      line.machines.push_back(std::move(machine));
    }

    // ---- Line-level job ordering labels (bad batch) -------------------
    {
      struct Entry {
        ts::TimePoint time;
        bool bad;
      };
      std::vector<Entry> entries;
      for (const hierarchy::Machine& machine : line.machines) {
        for (size_t j = 0; j < machine.jobs.size(); ++j) {
          const bool in_bad_batch =
              bad_batch_line && j >= bad_batch_start &&
              j < bad_batch_start + scenario.bad_batch_jobs;
          entries.push_back({machine.jobs[j].start_time, in_bad_batch});
        }
      }
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) {
                  return a.time < b.time;
                });
      LabelVector flags;
      flags.reserve(entries.size());
      for (const Entry& entry : entries) {
        flags.push_back(entry.bad ? 1 : 0);
      }
      plant.truth.line_job_labels[line.id] = std::move(flags);
      if (bad_batch_line && !line.machines.empty() &&
          !line.machines.front().jobs.empty()) {
        AnomalyRecord record;
        record.level = hierarchy::ProductionLevel::kProductionLine;
        record.type = OutlierType::kTemporaryChange;
        record.line_id = line.id;
        record.start_time =
            line.machines.front().jobs[bad_batch_start].start_time;
        record.magnitude_sigmas = 2.0;
        plant.truth.records.push_back(record);
      }
    }

    // ---- Environment series -------------------------------------------
    {
      // Span the line's full active time range.
      ts::TimePoint line_start = 0.0;
      ts::TimePoint line_end = 0.0;
      for (const hierarchy::Machine& machine : line.machines) {
        if (machine.jobs.empty()) continue;
        line_start = std::min(line_start, machine.jobs.front().start_time);
        line_end = std::max(line_end, machine.jobs.back().end_time);
      }
      const size_t samples = static_cast<size_t>(
                                 (line_end - line_start) /
                                 plant_options.environment_interval) +
                             1;
      HOD_ASSIGN_OR_RETURN(PhaseProfile profile,
                           PrinterPhaseProfile("", "room_temp"));
      NoiseModel room_noise{0.3, 0.8};
      HOD_ASSIGN_OR_RETURN(
          std::vector<double> room,
          GenerateTrueSignal(profile, room_noise, samples, rng));
      LabelVector room_labels(samples, 0);

      // Injections coupled to chamber anomalies (recorded earlier).
      for (AnomalyRecord& record : plant.truth.records) {
        if (record.level != hierarchy::ProductionLevel::kEnvironment ||
            record.line_id != line.id) {
          continue;
        }
        const size_t position = std::min(
            samples - 1,
            static_cast<size_t>((record.start_time - line_start) /
                                plant_options.environment_interval));
        InjectionSpec injection;
        injection.type = OutlierType::kTemporaryChange;
        injection.position = position;
        injection.magnitude = scenario.magnitude_sigmas * room_noise.sigma;
        HOD_RETURN_IF_ERROR(Inject(injection, room, room_labels));
      }
      // Independent environment anomalies.
      for (size_t e = 0; e < scenario.environment_anomalies; ++e) {
        if (samples <= 16) break;
        InjectionSpec injection;
        injection.type = RandomOutlierType(rng);
        injection.position = 8 + rng.NextBelow(samples - 16);
        injection.magnitude = scenario.magnitude_sigmas * room_noise.sigma *
                              (rng.NextBernoulli(0.5) ? 1.0 : -1.0);
        HOD_RETURN_IF_ERROR(Inject(injection, room, room_labels));

        AnomalyRecord record;
        record.level = hierarchy::ProductionLevel::kEnvironment;
        record.type = injection.type;
        record.line_id = line.id;
        record.sensor_id = line.id + ".room_temp";
        record.start_time =
            line_start + plant_options.environment_interval *
                             static_cast<double>(injection.position);
        record.end_time = record.start_time;
        record.magnitude_sigmas = scenario.magnitude_sigmas;
        plant.truth.records.push_back(record);
      }

      hierarchy::EnvironmentChannel channel;
      channel.sensor_id = line.id + ".room_temp";
      channel.series =
          ts::TimeSeries(channel.sensor_id, line_start,
                         plant_options.environment_interval, std::move(room));
      plant.truth.environment_labels[channel.sensor_id] =
          std::move(room_labels);
      line.environment.push_back(std::move(channel));
    }

    plant.production.lines.push_back(std::move(line));
  }

  HOD_RETURN_IF_ERROR(hierarchy::ValidateProduction(plant.production));
  return plant;
}

}  // namespace hod::sim
