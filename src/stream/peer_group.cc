#include "stream/peer_group.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace hod::stream {

namespace {

double MedianInPlace(std::vector<double>& values) {
  const size_t n = values.size();
  const size_t mid = n / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  const double upper = values[mid];
  if (n % 2 == 1) return upper;
  const double lower =
      *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lower + upper);
}

/// Exact-schema check: cohort machines must expose the same configuration
/// components in the same order (configs stamped from one template do).
bool SameConfigurationSchema(const ts::FeatureVector& a,
                             const ts::FeatureVector& b) {
  return a.names() == b.names();
}

double ConfigurationDistance(const ts::FeatureVector& a,
                             const ts::FeatureVector& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace

std::map<std::string, std::vector<std::string>> ConfigurationCohorts(
    const hierarchy::Production& production, double tolerance) {
  // Greedy deterministic clustering over machines in hierarchy order.
  struct Cluster {
    const hierarchy::Machine* representative;
    std::vector<const hierarchy::Machine*> machines;
  };
  std::vector<Cluster> clusters;
  for (const auto& line : production.lines) {
    for (const auto& machine : line.machines) {
      if (machine.configuration.size() == 0 ||
          !machine.configuration.Validate().ok()) {
        continue;  // no configuration to compare on
      }
      bool placed = false;
      for (Cluster& cluster : clusters) {
        if (SameConfigurationSchema(cluster.representative->configuration,
                                    machine.configuration) &&
            ConfigurationDistance(cluster.representative->configuration,
                                  machine.configuration) <= tolerance) {
          cluster.machines.push_back(&machine);
          placed = true;
          break;
        }
      }
      if (!placed) clusters.push_back({&machine, {&machine}});
    }
  }

  // Sensors per machine, in registry order.
  std::map<std::string, std::vector<hierarchy::SensorInfo>> by_machine;
  for (const std::string& id : production.sensors.ids()) {
    auto info = production.sensors.Get(id);
    if (!info.ok() || info->machine_id.empty()) continue;
    by_machine[info->machine_id].push_back(std::move(info).value());
  }

  std::map<std::string, std::vector<std::string>> cohorts;
  for (const Cluster& cluster : clusters) {
    if (cluster.machines.size() < 2) continue;
    // Role = measured quantity; the same role across cohort machines is a
    // comparable peer set. Distinct-machine count gates the cohort so two
    // sensors on one machine (already a redundancy pair) don't qualify.
    std::map<std::string, std::vector<std::string>> role_members;
    std::map<std::string, std::set<std::string>> role_machines;
    for (const hierarchy::Machine* machine : cluster.machines) {
      auto it = by_machine.find(machine->id);
      if (it == by_machine.end()) continue;
      for (const hierarchy::SensorInfo& info : it->second) {
        const std::string role =
            info.name.empty() ? info.id : info.name + "|" + info.unit;
        role_members[role].push_back(info.id);
        role_machines[role].insert(machine->id);
      }
    }
    for (auto& [role, members] : role_members) {
      if (members.size() < 2 || role_machines[role].size() < 2) continue;
      cohorts["cfg:" + cluster.representative->id + ":" + role] =
          std::move(members);
    }
  }
  return cohorts;
}

PeerGroupMonitor::PeerGroupMonitor(PeerGroupOptions options,
                                   StreamStats* stats)
    : options_(std::move(options)), stats_(stats) {
  if (options_.window == 0) options_.window = 1;
  if (options_.warmup == 0) options_.warmup = 1;
  if (options_.warmup > options_.window) options_.warmup = options_.window;
  if (options_.deviation_after == 0) options_.deviation_after = 1;
}

Status PeerGroupMonitor::AddGroup(const std::string& group_id,
                                  const std::vector<std::string>& members) {
  if (group_id.empty()) return Status::InvalidArgument("empty group id");
  std::set<std::string> distinct(members.begin(), members.end());
  distinct.erase(std::string{});
  if (distinct.size() < 2) {
    return Status::InvalidArgument(
        "peer group needs at least two distinct members: " + group_id);
  }
  if (groups_.find(group_id) != groups_.end()) {
    return Status::InvalidArgument("peer group already registered: " +
                                   group_id);
  }
  auto group = std::make_unique<Group>();
  group->group_id = group_id;
  group->members.reserve(distinct.size());
  for (const std::string& sensor_id : distinct) {
    group->member_index[sensor_id] = group->members.size();
    Member member;
    member.sensor_id = sensor_id;
    group->members.push_back(std::move(member));
  }
  Group* raw = group.get();
  groups_.emplace(group_id, std::move(group));
  for (const auto& [sensor_id, slot] : raw->member_index) {
    index_[sensor_id].emplace_back(raw, slot);
  }
  return Status::Ok();
}

Status PeerGroupMonitor::AddGroupsFromRegistry(
    const hierarchy::SensorRegistry& registry) {
  std::map<std::string, std::vector<std::string>> by_group;
  for (const std::string& id : registry.ids()) {
    HOD_ASSIGN_OR_RETURN(hierarchy::SensorInfo info, registry.Get(id));
    if (info.redundancy_group.empty()) continue;
    by_group[info.redundancy_group].push_back(id);
  }
  for (const auto& [group_id, members] : by_group) {
    if (members.size() < 2) continue;  // singleton groups have no peers
    HOD_RETURN_IF_ERROR(AddGroup(group_id, members));
  }
  return Status::Ok();
}

Status PeerGroupMonitor::AddGroupsFromConfiguration(
    const hierarchy::Production& production, double tolerance) {
  for (const auto& [group_id, members] :
       ConfigurationCohorts(production, tolerance)) {
    HOD_RETURN_IF_ERROR(AddGroup(group_id, members));
  }
  return Status::Ok();
}

void PeerGroupMonitor::LogDeviation(const PeerDeviation& deviation) {
  if (stats_ != nullptr) stats_->RecordPeerDeviation();
  std::lock_guard<std::mutex> lock(log_mu_);
  log_.push_back(deviation);
}

std::optional<PeerDeviation> PeerGroupMonitor::Observe(
    const std::string& sensor_id, hierarchy::ProductionLevel level,
    ts::TimePoint ts, double value) {
  if (!options_.enabled) return std::nullopt;
  auto it = index_.find(sensor_id);
  if (it == index_.end()) return std::nullopt;
  std::optional<PeerDeviation> strongest;
  for (const auto& [group, slot] : it->second) {
    std::lock_guard<std::mutex> lock(group->mu);
    std::optional<PeerDeviation> fired =
        ObserveInGroup(*group, slot, level, ts, value);
    if (!fired.has_value()) continue;
    if (!strongest.has_value() ||
        std::max(fired->value_z, fired->slope_z) >
            std::max(strongest->value_z, strongest->slope_z)) {
      strongest = std::move(fired);
    }
  }
  if (strongest.has_value()) LogDeviation(*strongest);
  return strongest;
}

std::optional<PeerDeviation> PeerGroupMonitor::ObserveInGroup(
    Group& group, size_t member_index, hierarchy::ProductionLevel level,
    ts::TimePoint ts, double value) {
  Member& self = group.members[member_index];
  // Reference: the median of the OTHER members' latest values, freshness-
  // gated so a silent peer cannot anchor the group at a stale level.
  std::vector<double> peers;
  peers.reserve(group.members.size() - 1);
  for (size_t i = 0; i < group.members.size(); ++i) {
    if (i == member_index) continue;
    const Member& peer = group.members[i];
    if (!peer.has_last) continue;
    if (ts - peer.last_ts > options_.peer_freshness) continue;
    peers.push_back(peer.last_value);
  }
  self.has_last = true;
  self.last_ts = ts;
  self.last_value = value;
  if (peers.size() < options_.min_peers) return std::nullopt;

  const double residual = value - MedianInPlace(peers);

  std::optional<PeerDeviation> fired;
  if (self.ring_residual.size() >= options_.warmup) {
    std::vector<double> ring(self.ring_residual.begin(),
                             self.ring_residual.end());
    const double med = MedianInPlace(ring);
    for (double& r : ring) r = std::fabs(r - med);
    // 1.4826: MAD -> sigma under normality, so deviation_z reads as a
    // familiar z threshold.
    const double scale =
        std::max(1.4826 * MedianInPlace(ring), options_.min_scale);
    const double value_z = std::fabs(residual - med) / scale;

    // Drift test: OLS slope of the residual ring over stream time,
    // expressed as total drift across the window in scale units. The
    // denominator is the MAD of the residuals around the FITTED line, not
    // the raw ring: a sustained ramp inflates the raw MAD in proportion
    // to its own slope, capping a raw-scaled statistic at a constant
    // (~2.7 for a pure ramp) no matter how steep the drift. Detrending
    // leaves only the noise floor below the fraction line, so the
    // statistic grows with the drift instead of saturating.
    double slope_stat = 0.0;
    const size_t n = self.ring_residual.size();
    const double span = self.ring_ts.back() - self.ring_ts.front();
    if (n >= 3 && span > 0.0) {
      double mean_t = 0.0, mean_r = 0.0;
      for (size_t i = 0; i < n; ++i) {
        mean_t += self.ring_ts[i];
        mean_r += self.ring_residual[i];
      }
      mean_t /= static_cast<double>(n);
      mean_r /= static_cast<double>(n);
      double num = 0.0, den = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double dt = self.ring_ts[i] - mean_t;
        num += dt * (self.ring_residual[i] - mean_r);
        den += dt * dt;
      }
      if (den > 0.0) {
        const double slope = num / den;
        std::vector<double> detrended(n);
        for (size_t i = 0; i < n; ++i) {
          detrended[i] = self.ring_residual[i] - mean_r -
                         slope * (self.ring_ts[i] - mean_t);
        }
        std::vector<double> spread = detrended;
        const double med_e = MedianInPlace(spread);
        for (size_t i = 0; i < n; ++i) {
          spread[i] = std::fabs(detrended[i] - med_e);
        }
        const double noise_scale =
            std::max(1.4826 * MedianInPlace(spread), options_.min_scale);
        slope_stat = std::fabs(slope) * span / noise_scale;
      }
    }

    const bool breach =
        value_z > options_.deviation_z || slope_stat > options_.slope_z;
    if (breach) {
      self.calm_streak = 0;
      ++self.breach_streak;
      if (self.breach_streak >= options_.deviation_after && !self.fired) {
        self.fired = true;
        ++self.deviations;
        PeerDeviation deviation;
        deviation.sensor_id = self.sensor_id;
        deviation.group_id = group.group_id;
        deviation.level = level;
        deviation.ts = ts;
        deviation.value = value;
        deviation.residual = residual;
        deviation.value_z = value_z;
        deviation.slope_z = slope_stat;
        fired = std::move(deviation);
      }
    } else {
      self.breach_streak = 0;
      ++self.calm_streak;
      if (self.fired && self.calm_streak >= options_.rearm_streak) {
        self.fired = false;
      }
    }
  }

  self.ring_ts.push_back(ts);
  self.ring_residual.push_back(residual);
  while (self.ring_residual.size() > options_.window) {
    self.ring_ts.pop_front();
    self.ring_residual.pop_front();
  }
  return fired;
}

std::vector<PeerDeviation> PeerGroupMonitor::Deviations() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return log_;
}

std::vector<PeerGroupState> PeerGroupMonitor::SaveState() const {
  std::vector<PeerGroupState> out;
  out.reserve(groups_.size());
  for (const auto& [group_id, group] : groups_) {
    std::lock_guard<std::mutex> lock(group->mu);
    PeerGroupState state;
    state.group_id = group_id;
    state.members.reserve(group->members.size());
    for (const Member& member : group->members) {
      PeerMemberState ms;
      ms.sensor_id = member.sensor_id;
      ms.has_last = member.has_last;
      ms.last_ts = member.last_ts;
      ms.last_value = member.last_value;
      ms.ring_ts.assign(member.ring_ts.begin(), member.ring_ts.end());
      ms.ring_residual.assign(member.ring_residual.begin(),
                              member.ring_residual.end());
      ms.breach_streak = member.breach_streak;
      ms.calm_streak = member.calm_streak;
      ms.fired = member.fired;
      ms.deviations = member.deviations;
      state.members.push_back(std::move(ms));
    }
    out.push_back(std::move(state));
  }
  return out;
}

Status PeerGroupMonitor::RestoreState(
    const std::vector<PeerGroupState>& groups) {
  for (const PeerGroupState& state : groups) {
    auto it = groups_.find(state.group_id);
    if (it == groups_.end()) {
      return Status::NotFound("peer state for unregistered group: " +
                              state.group_id);
    }
    Group& group = *it->second;
    std::lock_guard<std::mutex> lock(group.mu);
    for (const PeerMemberState& ms : state.members) {
      auto slot = group.member_index.find(ms.sensor_id);
      if (slot == group.member_index.end()) {
        return Status::NotFound("peer state for unregistered member: " +
                                ms.sensor_id + " in " + state.group_id);
      }
      if (ms.ring_ts.size() != ms.ring_residual.size()) {
        return Status::InvalidArgument("peer ring length mismatch for " +
                                       ms.sensor_id);
      }
      Member& member = group.members[slot->second];
      member.has_last = ms.has_last;
      member.last_ts = ms.last_ts;
      member.last_value = ms.last_value;
      member.ring_ts.assign(ms.ring_ts.begin(), ms.ring_ts.end());
      member.ring_residual.assign(ms.ring_residual.begin(),
                                  ms.ring_residual.end());
      member.breach_streak = ms.breach_streak;
      member.calm_streak = ms.calm_streak;
      member.fired = ms.fired;
      member.deviations = ms.deviations;
    }
  }
  return Status::Ok();
}

}  // namespace hod::stream
