#include "detect/em_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "detect/kmeans.h"
#include "timeseries/stats.h"

namespace hod::detect {

namespace {

/// log( sum_i exp(xs[i]) ) computed stably.
double LogSumExp(const std::vector<double>& xs) {
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

}  // namespace

EmDetector::EmDetector(EmOptions options) : options_(options) {}

Status EmDetector::Train(const std::vector<std::vector<double>>& data) {
  if (data.empty()) return Status::InvalidArgument("EM on empty data");
  if (options_.components == 0) {
    return Status::InvalidArgument("components must be > 0");
  }
  dim_ = data[0].size();
  if (dim_ == 0) return Status::InvalidArgument("zero-dimensional data");
  for (const auto& row : data) {
    if (row.size() != dim_) {
      return Status::InvalidArgument("ragged data in EM train");
    }
  }
  const size_t k = std::min(options_.components, data.size());
  const size_t n = data.size();

  // Initialize from k-means.
  HOD_ASSIGN_OR_RETURN(KMeansResult init, KMeans(data, k, 20, options_.seed));
  weights_.assign(k, 1.0 / static_cast<double>(k));
  means_ = init.centroids;
  variances_.assign(k, std::vector<double>(dim_, 1.0));
  // Per-cluster variance from the k-means assignment.
  std::vector<std::vector<double>> ssq(k, std::vector<double>(dim_, 0.0));
  std::vector<size_t> counts(k, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t c = init.assignments[i];
    ++counts[c];
    for (size_t d = 0; d < dim_; ++d) {
      const double dev = data[i][d] - means_[c][d];
      ssq[c][d] += dev * dev;
    }
  }
  for (size_t c = 0; c < k; ++c) {
    for (size_t d = 0; d < dim_; ++d) {
      variances_[c][d] =
          counts[c] > 0 ? ssq[c][d] / static_cast<double>(counts[c]) : 1.0;
      variances_[c][d] = std::max(variances_[c][d], options_.min_variance);
    }
  }

  // EM iterations (log-space responsibilities).
  std::vector<std::vector<double>> resp(n, std::vector<double>(k, 0.0));
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (size_t iter = 0; iter < options_.max_iters; ++iter) {
    // E-step.
    double total_ll = 0.0;
    std::vector<double> logp(k);
    for (size_t i = 0; i < n; ++i) {
      for (size_t c = 0; c < k; ++c) {
        double lp = std::log(std::max(weights_[c], 1e-300));
        for (size_t d = 0; d < dim_; ++d) {
          const double var = variances_[c][d];
          const double dev = data[i][d] - means_[c][d];
          lp += -0.5 * (std::log(2.0 * M_PI * var) + dev * dev / var);
        }
        logp[c] = lp;
      }
      const double lse = LogSumExp(logp);
      total_ll += lse;
      for (size_t c = 0; c < k; ++c) resp[i][c] = std::exp(logp[c] - lse);
    }
    total_ll /= static_cast<double>(n);
    // M-step.
    for (size_t c = 0; c < k; ++c) {
      double rc = 0.0;
      for (size_t i = 0; i < n; ++i) rc += resp[i][c];
      weights_[c] = std::max(rc / static_cast<double>(n), 1e-12);
      if (rc <= 0.0) continue;
      for (size_t d = 0; d < dim_; ++d) {
        double m = 0.0;
        for (size_t i = 0; i < n; ++i) m += resp[i][c] * data[i][d];
        means_[c][d] = m / rc;
      }
      for (size_t d = 0; d < dim_; ++d) {
        double v = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double dev = data[i][d] - means_[c][d];
          v += resp[i][c] * dev * dev;
        }
        variances_[c][d] = std::max(v / rc, options_.min_variance);
      }
    }
    if (std::fabs(total_ll - prev_ll) < options_.tolerance) {
      prev_ll = total_ll;
      break;
    }
    prev_ll = total_ll;
  }
  train_ll_ = prev_ll;

  // Baseline NLL: training median, so scores are relative to "typical".
  std::vector<double> nlls;
  nlls.reserve(n);
  trained_ = true;  // LogDensity needs the model in place
  for (const auto& row : data) nlls.push_back(-LogDensity(row));
  baseline_nll_ = ts::Median(std::move(nlls));
  return Status::Ok();
}

double EmDetector::LogDensity(const std::vector<double>& x) const {
  std::vector<double> logp(weights_.size());
  for (size_t c = 0; c < weights_.size(); ++c) {
    double lp = std::log(std::max(weights_[c], 1e-300));
    for (size_t d = 0; d < dim_; ++d) {
      const double var = variances_[c][d];
      const double dev = x[d] - means_[c][d];
      lp += -0.5 * (std::log(2.0 * M_PI * var) + dev * dev / var);
    }
    logp[c] = lp;
  }
  return LogSumExp(logp);
}

StatusOr<std::vector<double>> EmDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].size() != dim_) {
      return Status::InvalidArgument("dimension mismatch in EM score");
    }
    const double nll = -LogDensity(data[i]);
    const double excess = nll - baseline_nll_;
    scores[i] = excess <= 0.0
                    ? 0.0
                    : excess / (excess + options_.nll_scale);
  }
  return scores;
}

}  // namespace hod::detect
