#ifndef HOD_FLEET_ALERT_BOARD_H_
#define HOD_FLEET_ALERT_BOARD_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/alert_manager.h"

namespace hod::fleet {

/// One row of the fleet board: a plant-tagged alert episode.
struct FleetAlertRow {
  std::string plant_id;
  core::AlertEpisode episode;
  /// True when the plant has been removed from the fleet: its final
  /// episodes stay visible (an operator must still see why a line was
  /// drained) but are marked as historical.
  bool archived = false;
};

/// The fleet-level analogue of core::AlertManager: merges every plant's
/// episode board into one cross-plant view. Deduplication is structural —
/// UpdatePlant REPLACES the plant's live rows wholesale, so an episode
/// refreshed on every poll appears exactly once, keyed by (plant,
/// entity), no matter how often the board is rebuilt.
///
/// Thread-safe; FleetManager calls it from API threads and drain paths.
class FleetAlertBoard {
 public:
  /// Replaces `plant_id`'s live rows with `episodes` (tagging each).
  void UpdatePlant(const std::string& plant_id,
                   std::vector<core::AlertEpisode> episodes);

  /// Moves the plant's live rows (after a final `episodes` refresh) to
  /// the archive — RemovePlant's drain calls this with the engine's final
  /// episode board.
  void ArchivePlant(const std::string& plant_id,
                    std::vector<core::AlertEpisode> episodes);

  /// Forgets a plant entirely — live and archived rows. Called when a
  /// plant id is re-added so stale history does not shadow the new line.
  void ForgetPlant(const std::string& plant_id);

  /// The merged board: live rows first-class, archived rows flagged;
  /// sorted by severity (critical first), then group-outage rows before
  /// single-entity ones, then peak outlierness, then (plant, entity) for
  /// a stable rendering.
  std::vector<FleetAlertRow> Board() const;

  size_t live_plants() const;
  size_t archived_plants() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<core::AlertEpisode>> live_;
  std::map<std::string, std::vector<core::AlertEpisode>> archived_;
};

}  // namespace hod::fleet

#endif  // HOD_FLEET_ALERT_BOARD_H_
