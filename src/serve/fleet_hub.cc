#include "serve/fleet_hub.h"

#include <cmath>
#include <tuple>
#include <utility>

#include "hierarchy/level.h"

namespace hod::serve {

FleetHub::FleetHub(SnapshotHubOptions per_plant) : per_plant_(per_plant) {}

SnapshotHub* FleetHub::AddPlant(const std::string& plant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hubs_.find(plant_id);
  if (it == hubs_.end()) {
    it = hubs_.emplace(plant_id, std::make_unique<SnapshotHub>(per_plant_))
             .first;
  }
  return it->second.get();
}

SnapshotHub* FleetHub::Hub(const std::string& plant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hubs_.find(plant_id);
  return it == hubs_.end() ? nullptr : it->second.get();
}

void FleetHub::RemovePlant(const std::string& plant_id) {
  std::unique_ptr<SnapshotHub> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = hubs_.find(plant_id);
    if (it == hubs_.end()) return;
    doomed = std::move(it->second);
    hubs_.erase(it);
  }
  // Destroyed outside the lock: the async fan-out thread joins here.
}

std::vector<std::string> FleetHub::Plants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(hubs_.size());
  for (const auto& [id, hub] : hubs_) out.push_back(id);
  return out;
}

uint64_t FleetHub::Version() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t version = 0;
  for (const auto& [id, hub] : hubs_) version += hub->PublishEpoch();
  return version;
}

std::optional<FleetHub::Board> FleetHub::BoardSince(
    uint64_t since_version) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t version = 0;
  for (const auto& [id, hub] : hubs_) version += hub->PublishEpoch();
  if (since_version != 0 && version == since_version) return std::nullopt;
  Board board;
  board.version = version;
  for (const auto& [id, hub] : hubs_) {
    const auto latest = hub->Latest();
    if (!latest) continue;
    for (const stream::ActiveAlarm& alarm : latest->active_alarms) {
      board.alarms.push_back({id, alarm});
    }
  }
  return board;
}

StatusOr<FleetRollupResult> FleetHub::Rollup(
    const RollupQuery& query, detect::OlapCubeOptions cube_options) const {
  if (!(query.end > query.start)) {
    return Status::InvalidArgument("rollup window must satisfy start < end");
  }
  if (!(query.bucket_width > 0.0) || !std::isfinite(query.bucket_width)) {
    return Status::InvalidArgument("bucket_width must be finite and > 0");
  }
  std::vector<int> levels = query.levels;
  if (levels.empty()) {
    for (int i = 0; i < hierarchy::kNumLevels; ++i) levels.push_back(i);
  }
  for (int level : levels) {
    if (level < 0 || level >= hierarchy::kNumLevels) {
      return Status::InvalidArgument("level index out of range");
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  FleetRollupResult result;
  std::vector<std::string> plants;
  // Key: (plant index, level, bucket) → outlier samples in the bucket.
  std::map<std::tuple<int64_t, int64_t, int64_t>, double> buckets;
  int64_t plant_index = 0;
  for (const auto& [plant_id, hub] : hubs_) {
    result.version += hub->PublishEpoch();
    for (int level : levels) {
      const auto window = hub->LevelWindow(level, query.start, query.end);
      if (window.empty()) continue;
      const auto before = hub->LevelBefore(level, query.start);
      uint64_t prev = before ? before->value.outlier_samples
                             : window.front().value.outlier_samples;
      for (const auto& entry : window) {
        const uint64_t cur = entry.value.outlier_samples;
        const double gained =
            cur >= prev ? static_cast<double>(cur - prev) : 0.0;
        prev = cur;
        const int64_t bucket = static_cast<int64_t>(
            std::floor((entry.ts - query.start) / query.bucket_width));
        buckets[{plant_index, level, bucket}] += gained;
      }
    }
    plants.push_back(plant_id);
    ++plant_index;
  }
  if (buckets.empty()) return result;

  std::vector<detect::CubeRecord> records;
  records.reserve(buckets.size());
  for (const auto& [cell, outliers] : buckets) {
    detect::CubeRecord record;
    record.dims = {std::get<0>(cell), std::get<1>(cell), std::get<2>(cell)};
    record.measure = outliers;
    records.push_back(std::move(record));
  }
  detect::OlapCubeDetector cube(cube_options);
  HOD_RETURN_IF_ERROR(cube.TrainRecords(records));
  std::vector<double> scores;
  HOD_ASSIGN_OR_RETURN(scores, cube.ScoreRecords(records));
  result.cube_cells = cube.num_cells();

  result.cells.reserve(records.size());
  size_t i = 0;
  for (const auto& [cell, outliers] : buckets) {
    FleetRollupCell out;
    out.plant_id = plants[static_cast<size_t>(std::get<0>(cell))];
    out.cell.level = static_cast<int>(std::get<1>(cell));
    out.cell.bucket = std::get<2>(cell);
    out.cell.bucket_start =
        query.start + std::get<2>(cell) * query.bucket_width;
    out.cell.outliers = outliers;
    out.cell.score = scores[i];
    out.cell.anomalous = scores[i] >= 0.5;
    result.cells.push_back(std::move(out));
    ++i;
  }
  return result;
}

}  // namespace hod::serve
