#ifndef HOD_DETECT_ANOMALY_DICTIONARY_H_
#define HOD_DETECT_ANOMALY_DICTIONARY_H_

#include <map>
#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Negative/mixed pattern database via anomaly dictionaries (Cabrera et
/// al. 2001) — Table 1 row 18, family NMD, data type SSQ.
///
/// The inverse of the NPD: the dictionary stores *anomalous* windows
/// (mined from labeled traces or supplied directly); "test sequences are
/// classified as anomalies if they match a sequence from the database".
/// The mixed variant also keeps a small normal-window set so that windows
/// matching neither database receive an intermediate novelty score.
struct AnomalyDictionaryOptions {
  size_t window = 6;
  /// Allowed mismatches for a dictionary hit (0 = exact matching only).
  size_t tolerance = 1;
  /// Score of windows matching no database (novel territory).
  double novelty_score = 0.5;
};

class AnomalyDictionaryDetector : public SequenceDetector {
 public:
  explicit AnomalyDictionaryDetector(AnomalyDictionaryOptions options = {});

  std::string name() const override { return "AnomalyDictionary"; }
  bool supervised() const override { return true; }

  /// Unsupervised training cannot populate a *negative* database.
  Status Train(const std::vector<ts::DiscreteSequence>& normal) override;

  /// Builds the anomaly dictionary from windows overlapping labeled
  /// positions and the normal set from the rest.
  Status TrainSupervised(const std::vector<ts::DiscreteSequence>& sequences,
                         const std::vector<Labels>& labels) override;

  /// Directly installs dictionary entries (e.g. known fault signatures
  /// from a CMMS). Windows must match the configured length.
  Status AddAnomalousPattern(const std::vector<ts::Symbol>& window);

  StatusOr<std::vector<double>> Score(
      const ts::DiscreteSequence& sequence) const override;

  size_t dictionary_size() const { return anomalous_.size(); }

 private:
  AnomalyDictionaryOptions options_;
  std::vector<std::vector<ts::Symbol>> anomalous_;
  std::map<std::vector<ts::Symbol>, size_t> normal_;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_ANOMALY_DICTIONARY_H_
