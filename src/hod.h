#ifndef HOD_HOD_H_
#define HOD_HOD_H_

/// Umbrella header: the public API of libhod in one include.
///
///   #include "hod.h"
///
/// Brings in the production hierarchy, the hierarchical detector
/// (Algorithm 1), the full Table-1 detector registry, the streaming
/// engine, the simulator, and the evaluation metrics. Individual headers
/// remain includable directly for faster builds.

#include "core/alert_manager.h"         // IWYU pragma: export
#include "core/algorithm_selector.h"    // IWYU pragma: export
#include "core/concept_shift.h"         // IWYU pragma: export
#include "core/hierarchical_detector.h" // IWYU pragma: export
#include "core/monitor.h"               // IWYU pragma: export
#include "core/plant_health.h"          // IWYU pragma: export
#include "core/report.h"                // IWYU pragma: export
#include "detect/adapters.h"            // IWYU pragma: export
#include "detect/baseline.h"            // IWYU pragma: export
#include "detect/detector.h"            // IWYU pragma: export
#include "detect/ensemble.h"            // IWYU pragma: export
#include "detect/registry.h"            // IWYU pragma: export
#include "eval/metrics.h"               // IWYU pragma: export
#include "fleet/alert_board.h"          // IWYU pragma: export
#include "fleet/manager.h"              // IWYU pragma: export
#include "fleet/router.h"               // IWYU pragma: export
#include "fleet/stats.h"                // IWYU pragma: export
#include "hierarchy/level.h"            // IWYU pragma: export
#include "hierarchy/level_data.h"       // IWYU pragma: export
#include "hierarchy/production.h"       // IWYU pragma: export
#include "hierarchy/sensor_registry.h"  // IWYU pragma: export
#include "hierarchy/serialization.h"    // IWYU pragma: export
#include "sim/datasets.h"               // IWYU pragma: export
#include "sim/fault_injector.h"         // IWYU pragma: export
#include "sim/plant.h"                  // IWYU pragma: export
#include "stream/checkpoint.h"          // IWYU pragma: export
#include "stream/engine.h"              // IWYU pragma: export
#include "stream/health.h"              // IWYU pragma: export
#include "stream/peer_group.h"          // IWYU pragma: export
#include "timeseries/discrete_sequence.h"  // IWYU pragma: export
#include "timeseries/rolling.h"         // IWYU pragma: export
#include "timeseries/time_series.h"     // IWYU pragma: export
#include "timeseries/window.h"          // IWYU pragma: export
#include "util/status.h"                // IWYU pragma: export
#include "util/statusor.h"              // IWYU pragma: export
#include "util/thread_pool.h"           // IWYU pragma: export

#endif  // HOD_HOD_H_
