#ifndef HOD_SERVE_CODEC_H_
#define HOD_SERVE_CODEC_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "stream/engine.h"
#include "timeseries/time_series.h"
#include "util/status.h"
#include "util/statusor.h"

namespace hod::serve {

/// One changed hierarchy level inside a delta: index into
/// EngineSnapshot::levels plus the full replacement state (the per-level
/// struct is small and flat, so field-level diffing buys nothing).
struct LevelDelta {
  uint8_t index = 0;
  stream::LevelOutlierState state;
};

/// Difference between two consecutively published EngineSnapshots.
/// Applying it to the exact base snapshot (matched by `base_sequence`)
/// reconstructs the next snapshot byte-for-byte — the serve tier's parity
/// contract, pinned by EncodeSnapshotBytes equality in tests and bench.
///
/// Sorted-vector diffing relies on the engine's invariant that
/// `active_alarms` and `quarantined` are sorted by sensor id (they are
/// emitted from std::map iteration); ApplyDelta re-emits in sorted order.
struct SnapshotDelta {
  uint64_t base_sequence = 0;  ///< snapshot this delta applies on top of
  uint64_t sequence = 0;       ///< resulting snapshot's sequence
  uint64_t events_seen = 0;
  ts::TimePoint ts = 0.0;

  /// Levels whose counters changed since the base (usually 0–2 of 5).
  std::vector<LevelDelta> levels;

  /// Alarm set edits: upserts carry the full entry (new alarm or changed
  /// peak/since), removals carry just the sensor id.
  std::vector<stream::ActiveAlarm> alarm_upserts;
  std::vector<std::string> alarm_removals;
  std::vector<stream::QuarantinedSensor> quarantine_upserts;
  std::vector<std::string> quarantine_removals;

  /// Group-outage correlation fields travel whole when any of them moved
  /// (one bool + short string + two scalars — not worth per-field bits).
  bool outage_changed = false;
  bool group_outage_active = false;
  std::string group_outage_entity;
  ts::TimePoint group_outage_since = 0.0;
  uint64_t group_outage_sensors = 0;

  /// Concept-shift ring: normally only the events appended since the base
  /// travel (`shifts_full == false`) and the receiver trims its ring down
  /// to `shift_ring_size`. When the ring advanced by more than its
  /// capacity — or the base's tail does not prefix the next ring (foreign
  /// base) — the whole ring travels instead.
  bool shifts_full = false;
  std::vector<stream::ConceptShiftEvent> shift_events;
  uint32_t shift_ring_size = 0;
  uint64_t concept_shifts_total = 0;
};

/// Computes the delta that turns `base` into `next`. Works for any pair of
/// snapshots (not just consecutive sequences); consecutive pairs simply
/// produce the smallest deltas.
SnapshotDelta EncodeDelta(const stream::EngineSnapshot& base,
                          const stream::EngineSnapshot& next);

/// Reconstructs the next snapshot from `base` + `delta`. Fails with
/// FailedPrecondition when `base.sequence != delta.base_sequence` (stale
/// base — the subscriber must resync from a keyframe) and InvalidArgument
/// when the delta's internal shift-ring accounting is inconsistent.
StatusOr<stream::EngineSnapshot> ApplyDelta(const stream::EngineSnapshot& base,
                                            const SnapshotDelta& delta);

/// Canonical little-endian serialization of every EngineSnapshot field.
/// Two snapshots are byte-identical under this encoding iff they are
/// field-identical — the equality oracle for delta-reconstruction parity.
void WriteSnapshot(std::ostream& os, const stream::EngineSnapshot& snapshot);
StatusOr<stream::EngineSnapshot> ReadSnapshot(std::istream& is);
std::string EncodeSnapshotBytes(const stream::EngineSnapshot& snapshot);

/// Wire encoding of a delta — used for size accounting (delta bytes vs
/// keyframe bytes) in the serving bench; not needed to apply a delta
/// in-process.
std::string EncodeDeltaBytes(const SnapshotDelta& delta);

}  // namespace hod::serve

#endif  // HOD_SERVE_CODEC_H_
