// E7 — Throughput microbenchmarks (google-benchmark).
//
// The paper's Sections 1/5 flag calculation speed as a core requirement
// for production-level outlier detection. These microbenchmarks time the
// detectors used at each level and the Algorithm-1 machinery so regression
// in scoring cost is visible.

#include <benchmark/benchmark.h>

#include "core/hierarchical_detector.h"
#include "detect/ar_detector.h"
#include "detect/em_detector.h"
#include "detect/fsa_detector.h"
#include "detect/window_db.h"
#include "sim/datasets.h"
#include "sim/plant.h"
#include "timeseries/sax.h"
#include "timeseries/spectral.h"

namespace hod {
namespace {

void BM_ArScore(benchmark::State& state) {
  sim::SeriesDatasetOptions options;
  options.length = static_cast<size_t>(state.range(0));
  options.train_series = 2;
  options.test_series = 1;
  auto dataset = sim::GenerateSeriesDataset(options).value();
  detect::ArDetector detector;
  (void)detector.Train(dataset.train);
  for (auto _ : state) {
    auto scores = detector.Score(dataset.test[0]);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(options.length));
}
BENCHMARK(BM_ArScore)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EmScore(benchmark::State& state) {
  sim::PointDatasetOptions options;
  options.train_size = 512;
  options.test_size = static_cast<size_t>(state.range(0));
  options.dim = 8;
  auto dataset = sim::GeneratePointDataset(options).value();
  detect::EmDetector detector;
  (void)detector.Train(dataset.train);
  for (auto _ : state) {
    auto scores = detector.Score(dataset.test);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EmScore)->Arg(128)->Arg(1024);

void BM_FsaScore(benchmark::State& state) {
  sim::SequenceDatasetOptions options;
  options.length = static_cast<size_t>(state.range(0));
  options.train_sequences = 4;
  options.test_sequences = 1;
  auto dataset = sim::GenerateSequenceDataset(options).value();
  detect::FsaDetector detector;
  (void)detector.Train(dataset.train);
  for (auto _ : state) {
    auto scores = detector.Score(dataset.test[0]);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FsaScore)->Arg(256)->Arg(1024);

void BM_WindowDbScore(benchmark::State& state) {
  sim::SequenceDatasetOptions options;
  options.length = static_cast<size_t>(state.range(0));
  options.train_sequences = 4;
  options.test_sequences = 1;
  auto dataset = sim::GenerateSequenceDataset(options).value();
  detect::WindowDbDetector detector;
  (void)detector.Train(dataset.train);
  for (auto _ : state) {
    auto scores = detector.Score(dataset.test[0]);
    benchmark::DoNotOptimize(scores);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WindowDbScore)->Arg(256)->Arg(1024);

void BM_SaxDiscretize(benchmark::State& state) {
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(0.1 * static_cast<double>(i));
  }
  for (auto _ : state) {
    auto sax = ts::ToSax(values, ts::SaxOptions{0, 5});
    benchmark::DoNotOptimize(sax);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SaxDiscretize)->Arg(1024)->Arg(8192);

void BM_Fft(benchmark::State& state) {
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(0.1 * static_cast<double>(i));
  }
  for (auto _ : state) {
    auto spectrum = ts::PowerSpectrum(values);
    benchmark::DoNotOptimize(spectrum);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(8192);

void BM_Algorithm1PhaseQuery(benchmark::State& state) {
  sim::PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 2;
  options.jobs_per_machine = 8;
  options.seed = 7;
  auto plant = sim::BuildPlant(options, sim::ScenarioOptions{}).value();
  core::HierarchicalDetector detector(&plant.production);
  const auto& machine = plant.production.lines[0].machines[0];
  core::PhaseQuery query{machine.id, machine.jobs[0].id, "printing",
                         machine.id + ".bed_temp_a"};
  // Warm the caches once: steady-state latency is the relevant number.
  (void)detector.FindPhaseOutliers(query);
  for (auto _ : state) {
    auto report = detector.FindPhaseOutliers(query);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_Algorithm1PhaseQuery);

void BM_PlantBuild(benchmark::State& state) {
  sim::PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 2;
  options.jobs_per_machine = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto plant = sim::BuildPlant(options, sim::ScenarioOptions{});
    benchmark::DoNotOptimize(plant);
  }
}
BENCHMARK(BM_PlantBuild)->Arg(4)->Arg(8);

}  // namespace
}  // namespace hod

BENCHMARK_MAIN();
