#ifndef HOD_HIERARCHY_SERIALIZATION_H_
#define HOD_HIERARCHY_SERIALIZATION_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "hierarchy/production.h"
#include "util/statusor.h"

namespace hod::hierarchy {

/// Text serialization of a whole Production — the interchange point
/// between a plant historian and this library. The format is line
/// oriented, versioned, and lossless for doubles (round-trips bit-exact):
///
///   HODPROD 1
///   SENSOR <id> <unit> <machine|-> <group|-> <name...>
///   LINE <id>
///   MACHINE <id>
///   CONFIG <n> <name> <value> ...
///   JOB <id> <start> <end>
///   SETUP <n> <name> <value> ...
///   CAQ <n> <name> <value> ...
///   PHASE <name> <start> <end>
///   EVENTS <alphabet> <n> <s1> ... <sn>
///   SERIES <sensor-id> <start> <interval> <n> <v1> ... <vn>
///   ENV <sensor-id> <start> <interval> <n> <v1> ... <vn>
///   END
///
/// Identifiers must not contain whitespace; the trailing free-text field
/// of SENSOR may.
Status WriteProduction(const Production& production, std::ostream& os);

/// Parses a production written by WriteProduction. Errors carry the
/// offending line number.
StatusOr<Production> ReadProduction(std::istream& is);

/// Fixed-width little-endian binary primitives — the building blocks of
/// versioned binary snapshots (engine checkpoints). Byte order is pinned
/// so a snapshot written on one host restores on any other. Readers
/// return typed errors on truncated input instead of leaving the caller
/// with a half-read struct.
namespace bin {

void WriteU8(std::ostream& os, uint8_t value);
void WriteU32(std::ostream& os, uint32_t value);
void WriteU64(std::ostream& os, uint64_t value);
/// Doubles travel as their IEEE-754 bit pattern (round-trips bit-exact).
void WriteF64(std::ostream& os, double value);
/// u32 length followed by the raw bytes.
void WriteString(std::ostream& os, const std::string& value);

StatusOr<uint8_t> ReadU8(std::istream& is);
StatusOr<uint32_t> ReadU32(std::istream& is);
StatusOr<uint64_t> ReadU64(std::istream& is);
StatusOr<double> ReadF64(std::istream& is);
/// `max_length` guards against corrupt length prefixes allocating GBs.
StatusOr<std::string> ReadString(std::istream& is,
                                 size_t max_length = 1 << 20);

}  // namespace bin

}  // namespace hod::hierarchy

#endif  // HOD_HIERARCHY_SERIALIZATION_H_
