#include "serve/codec.h"

#include <cstddef>
#include <map>
#include <sstream>
#include <utility>

#include "hierarchy/level.h"
#include "hierarchy/serialization.h"

namespace hod::serve {

namespace {

namespace bin = hierarchy::bin;

bool Equal(const stream::LevelOutlierState& a,
           const stream::LevelOutlierState& b) {
  return a.outlier_samples == b.outlier_samples &&
         a.alarms_raised == b.alarms_raised &&
         a.alarms_cleared == b.alarms_cleared &&
         a.active_alarms == b.active_alarms &&
         a.sensor_faults == b.sensor_faults &&
         a.quarantined_sensors == b.quarantined_sensors &&
         a.peak_score == b.peak_score && a.last_outlier_ts == b.last_outlier_ts;
}

bool Equal(const stream::ActiveAlarm& a, const stream::ActiveAlarm& b) {
  return a.sensor_id == b.sensor_id && a.level == b.level &&
         a.since == b.since && a.peak_score == b.peak_score;
}

bool Equal(const stream::QuarantinedSensor& a,
           const stream::QuarantinedSensor& b) {
  return a.sensor_id == b.sensor_id && a.level == b.level &&
         a.since == b.since && a.reason == b.reason;
}

bool Equal(const stream::ConceptShiftEvent& a,
           const stream::ConceptShiftEvent& b) {
  return a.sensor_id == b.sensor_id && a.level == b.level && a.ts == b.ts &&
         a.before_mean == b.before_mean && a.after_mean == b.after_mean &&
         a.magnitude_sigmas == b.magnitude_sigmas &&
         a.evidence == b.evidence && a.run_length == b.run_length;
}

/// Sorted-merge set diff keyed on sensor_id: entries of `next` that are
/// absent from `base` or changed become upserts; ids of `base` missing
/// from `next` become removals.
template <typename T>
void DiffById(const std::vector<T>& base, const std::vector<T>& next,
              std::vector<T>* upserts, std::vector<std::string>* removals) {
  size_t i = 0;
  size_t j = 0;
  while (i < base.size() && j < next.size()) {
    if (base[i].sensor_id < next[j].sensor_id) {
      removals->push_back(base[i].sensor_id);
      ++i;
    } else if (next[j].sensor_id < base[i].sensor_id) {
      upserts->push_back(next[j]);
      ++j;
    } else {
      if (!Equal(base[i], next[j])) upserts->push_back(next[j]);
      ++i;
      ++j;
    }
  }
  for (; i < base.size(); ++i) removals->push_back(base[i].sensor_id);
  for (; j < next.size(); ++j) upserts->push_back(next[j]);
}

/// Applies upserts + removals to a sorted-by-id base, re-emitting in
/// sorted order (same order the engine publishes).
template <typename T>
std::vector<T> ApplyById(const std::vector<T>& base,
                         const std::vector<T>& upserts,
                         const std::vector<std::string>& removals) {
  std::map<std::string, T> merged;
  for (const T& entry : base) merged[entry.sensor_id] = entry;
  for (const std::string& id : removals) merged.erase(id);
  for (const T& entry : upserts) merged[entry.sensor_id] = entry;
  std::vector<T> out;
  out.reserve(merged.size());
  for (auto& [id, entry] : merged) out.push_back(std::move(entry));
  return out;
}

void WriteLevelState(std::ostream& os, const stream::LevelOutlierState& s) {
  bin::WriteU64(os, s.outlier_samples);
  bin::WriteU64(os, s.alarms_raised);
  bin::WriteU64(os, s.alarms_cleared);
  bin::WriteU64(os, s.active_alarms);
  bin::WriteU64(os, s.sensor_faults);
  bin::WriteU64(os, s.quarantined_sensors);
  bin::WriteF64(os, s.peak_score);
  bin::WriteF64(os, s.last_outlier_ts);
}

StatusOr<stream::LevelOutlierState> ReadLevelState(std::istream& is) {
  stream::LevelOutlierState s;
  HOD_ASSIGN_OR_RETURN(s.outlier_samples, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(s.alarms_raised, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(s.alarms_cleared, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(s.active_alarms, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(s.sensor_faults, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(s.quarantined_sensors, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(s.peak_score, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(s.last_outlier_ts, bin::ReadF64(is));
  return s;
}

void WriteAlarm(std::ostream& os, const stream::ActiveAlarm& a) {
  bin::WriteString(os, a.sensor_id);
  bin::WriteU8(os, static_cast<uint8_t>(hierarchy::LevelValue(a.level)));
  bin::WriteF64(os, a.since);
  bin::WriteF64(os, a.peak_score);
}

StatusOr<stream::ActiveAlarm> ReadAlarm(std::istream& is) {
  stream::ActiveAlarm a;
  HOD_ASSIGN_OR_RETURN(a.sensor_id, bin::ReadString(is));
  uint8_t level = 0;
  HOD_ASSIGN_OR_RETURN(level, bin::ReadU8(is));
  HOD_ASSIGN_OR_RETURN(a.level, hierarchy::LevelFromValue(level));
  HOD_ASSIGN_OR_RETURN(a.since, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(a.peak_score, bin::ReadF64(is));
  return a;
}

void WriteQuarantine(std::ostream& os, const stream::QuarantinedSensor& q) {
  bin::WriteString(os, q.sensor_id);
  bin::WriteU8(os, static_cast<uint8_t>(hierarchy::LevelValue(q.level)));
  bin::WriteF64(os, q.since);
  bin::WriteU8(os, static_cast<uint8_t>(q.reason));
}

StatusOr<stream::QuarantinedSensor> ReadQuarantine(std::istream& is) {
  stream::QuarantinedSensor q;
  HOD_ASSIGN_OR_RETURN(q.sensor_id, bin::ReadString(is));
  uint8_t level = 0;
  HOD_ASSIGN_OR_RETURN(level, bin::ReadU8(is));
  HOD_ASSIGN_OR_RETURN(q.level, hierarchy::LevelFromValue(level));
  HOD_ASSIGN_OR_RETURN(q.since, bin::ReadF64(is));
  uint8_t reason = 0;
  HOD_ASSIGN_OR_RETURN(reason, bin::ReadU8(is));
  if (reason > static_cast<uint8_t>(stream::HealthSignal::kStale)) {
    return Status::InvalidArgument("bad health signal byte");
  }
  q.reason = static_cast<stream::HealthSignal>(reason);
  return q;
}

void WriteShift(std::ostream& os, const stream::ConceptShiftEvent& e) {
  bin::WriteString(os, e.sensor_id);
  bin::WriteU8(os, static_cast<uint8_t>(hierarchy::LevelValue(e.level)));
  bin::WriteF64(os, e.ts);
  bin::WriteF64(os, e.before_mean);
  bin::WriteF64(os, e.after_mean);
  bin::WriteF64(os, e.magnitude_sigmas);
  bin::WriteF64(os, e.evidence);
  bin::WriteU64(os, e.run_length);
}

StatusOr<stream::ConceptShiftEvent> ReadShift(std::istream& is) {
  stream::ConceptShiftEvent e;
  HOD_ASSIGN_OR_RETURN(e.sensor_id, bin::ReadString(is));
  uint8_t level = 0;
  HOD_ASSIGN_OR_RETURN(level, bin::ReadU8(is));
  HOD_ASSIGN_OR_RETURN(e.level, hierarchy::LevelFromValue(level));
  HOD_ASSIGN_OR_RETURN(e.ts, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(e.before_mean, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(e.after_mean, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(e.magnitude_sigmas, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(e.evidence, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(e.run_length, bin::ReadU64(is));
  return e;
}

}  // namespace

SnapshotDelta EncodeDelta(const stream::EngineSnapshot& base,
                          const stream::EngineSnapshot& next) {
  SnapshotDelta delta;
  delta.base_sequence = base.sequence;
  delta.sequence = next.sequence;
  delta.events_seen = next.events_seen;
  delta.ts = next.ts;

  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    if (!Equal(base.levels[i], next.levels[i])) {
      delta.levels.push_back({static_cast<uint8_t>(i), next.levels[i]});
    }
  }

  DiffById(base.active_alarms, next.active_alarms, &delta.alarm_upserts,
           &delta.alarm_removals);
  DiffById(base.quarantined, next.quarantined, &delta.quarantine_upserts,
           &delta.quarantine_removals);

  if (base.group_outage_active != next.group_outage_active ||
      base.group_outage_entity != next.group_outage_entity ||
      base.group_outage_since != next.group_outage_since ||
      base.group_outage_sensors != next.group_outage_sensors) {
    delta.outage_changed = true;
    delta.group_outage_active = next.group_outage_active;
    delta.group_outage_entity = next.group_outage_entity;
    delta.group_outage_since = next.group_outage_since;
    delta.group_outage_sensors = next.group_outage_sensors;
  }

  // Concept-shift ring: ship only the appended tail when the base's ring
  // is a consistent predecessor of the next one; ship the whole ring
  // otherwise (total regressed, ring overflow past capacity, or the rings
  // simply disagree — possible when the pair is not producer-consecutive).
  delta.concept_shifts_total = next.concept_shifts_total;
  delta.shift_ring_size = static_cast<uint32_t>(next.concept_shifts.size());
  bool incremental = false;
  if (next.concept_shifts_total >= base.concept_shifts_total) {
    const uint64_t appended =
        next.concept_shifts_total - base.concept_shifts_total;
    if (appended <= next.concept_shifts.size()) {
      const size_t keep =
          next.concept_shifts.size() - static_cast<size_t>(appended);
      if (keep <= base.concept_shifts.size()) {
        const size_t base_off = base.concept_shifts.size() - keep;
        incremental = true;
        for (size_t i = 0; i < keep; ++i) {
          if (!Equal(base.concept_shifts[base_off + i],
                     next.concept_shifts[i])) {
            incremental = false;
            break;
          }
        }
        if (incremental) {
          delta.shift_events.assign(next.concept_shifts.begin() + keep,
                                    next.concept_shifts.end());
        }
      }
    }
  }
  if (!incremental) {
    delta.shifts_full = true;
    delta.shift_events = next.concept_shifts;
  }
  return delta;
}

StatusOr<stream::EngineSnapshot> ApplyDelta(const stream::EngineSnapshot& base,
                                            const SnapshotDelta& delta) {
  if (base.sequence != delta.base_sequence) {
    return Status::FailedPrecondition(
        "delta base mismatch: subscriber must resync from a keyframe");
  }
  stream::EngineSnapshot next;
  next.sequence = delta.sequence;
  next.events_seen = delta.events_seen;
  next.ts = delta.ts;

  next.levels = base.levels;
  for (const LevelDelta& change : delta.levels) {
    if (change.index >= hierarchy::kNumLevels) {
      return Status::InvalidArgument("level index out of range");
    }
    next.levels[change.index] = change.state;
  }

  next.active_alarms =
      ApplyById(base.active_alarms, delta.alarm_upserts, delta.alarm_removals);
  next.quarantined = ApplyById(base.quarantined, delta.quarantine_upserts,
                               delta.quarantine_removals);

  if (delta.outage_changed) {
    next.group_outage_active = delta.group_outage_active;
    next.group_outage_entity = delta.group_outage_entity;
    next.group_outage_since = delta.group_outage_since;
    next.group_outage_sensors = delta.group_outage_sensors;
  } else {
    next.group_outage_active = base.group_outage_active;
    next.group_outage_entity = base.group_outage_entity;
    next.group_outage_since = base.group_outage_since;
    next.group_outage_sensors = base.group_outage_sensors;
  }

  next.concept_shifts_total = delta.concept_shifts_total;
  if (delta.shifts_full) {
    next.concept_shifts = delta.shift_events;
  } else {
    next.concept_shifts = base.concept_shifts;
    next.concept_shifts.insert(next.concept_shifts.end(),
                               delta.shift_events.begin(),
                               delta.shift_events.end());
    if (next.concept_shifts.size() < delta.shift_ring_size) {
      return Status::InvalidArgument(
          "delta shift ring accounting inconsistent");
    }
    next.concept_shifts.erase(
        next.concept_shifts.begin(),
        next.concept_shifts.begin() +
            (next.concept_shifts.size() - delta.shift_ring_size));
  }
  return next;
}

void WriteSnapshot(std::ostream& os, const stream::EngineSnapshot& snapshot) {
  bin::WriteU64(os, snapshot.sequence);
  bin::WriteU64(os, snapshot.events_seen);
  bin::WriteF64(os, snapshot.ts);
  for (const stream::LevelOutlierState& level : snapshot.levels) {
    WriteLevelState(os, level);
  }
  bin::WriteU32(os, static_cast<uint32_t>(snapshot.active_alarms.size()));
  for (const stream::ActiveAlarm& alarm : snapshot.active_alarms) {
    WriteAlarm(os, alarm);
  }
  bin::WriteU32(os, static_cast<uint32_t>(snapshot.quarantined.size()));
  for (const stream::QuarantinedSensor& q : snapshot.quarantined) {
    WriteQuarantine(os, q);
  }
  bin::WriteU8(os, snapshot.group_outage_active ? 1 : 0);
  bin::WriteString(os, snapshot.group_outage_entity);
  bin::WriteF64(os, snapshot.group_outage_since);
  bin::WriteU64(os, snapshot.group_outage_sensors);
  bin::WriteU32(os, static_cast<uint32_t>(snapshot.concept_shifts.size()));
  for (const stream::ConceptShiftEvent& shift : snapshot.concept_shifts) {
    WriteShift(os, shift);
  }
  bin::WriteU64(os, snapshot.concept_shifts_total);
}

StatusOr<stream::EngineSnapshot> ReadSnapshot(std::istream& is) {
  stream::EngineSnapshot snapshot;
  HOD_ASSIGN_OR_RETURN(snapshot.sequence, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(snapshot.events_seen, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(snapshot.ts, bin::ReadF64(is));
  for (int i = 0; i < hierarchy::kNumLevels; ++i) {
    HOD_ASSIGN_OR_RETURN(snapshot.levels[i], ReadLevelState(is));
  }
  uint32_t count = 0;
  HOD_ASSIGN_OR_RETURN(count, bin::ReadU32(is));
  snapshot.active_alarms.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    stream::ActiveAlarm alarm;
    HOD_ASSIGN_OR_RETURN(alarm, ReadAlarm(is));
    snapshot.active_alarms.push_back(std::move(alarm));
  }
  HOD_ASSIGN_OR_RETURN(count, bin::ReadU32(is));
  snapshot.quarantined.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    stream::QuarantinedSensor q;
    HOD_ASSIGN_OR_RETURN(q, ReadQuarantine(is));
    snapshot.quarantined.push_back(std::move(q));
  }
  uint8_t active = 0;
  HOD_ASSIGN_OR_RETURN(active, bin::ReadU8(is));
  snapshot.group_outage_active = active != 0;
  HOD_ASSIGN_OR_RETURN(snapshot.group_outage_entity, bin::ReadString(is));
  HOD_ASSIGN_OR_RETURN(snapshot.group_outage_since, bin::ReadF64(is));
  HOD_ASSIGN_OR_RETURN(snapshot.group_outage_sensors, bin::ReadU64(is));
  HOD_ASSIGN_OR_RETURN(count, bin::ReadU32(is));
  snapshot.concept_shifts.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    stream::ConceptShiftEvent shift;
    HOD_ASSIGN_OR_RETURN(shift, ReadShift(is));
    snapshot.concept_shifts.push_back(std::move(shift));
  }
  HOD_ASSIGN_OR_RETURN(snapshot.concept_shifts_total, bin::ReadU64(is));
  return snapshot;
}

std::string EncodeSnapshotBytes(const stream::EngineSnapshot& snapshot) {
  std::ostringstream os;
  WriteSnapshot(os, snapshot);
  return os.str();
}

std::string EncodeDeltaBytes(const SnapshotDelta& delta) {
  std::ostringstream os;
  bin::WriteU64(os, delta.base_sequence);
  bin::WriteU64(os, delta.sequence);
  bin::WriteU64(os, delta.events_seen);
  bin::WriteF64(os, delta.ts);
  bin::WriteU32(os, static_cast<uint32_t>(delta.levels.size()));
  for (const LevelDelta& level : delta.levels) {
    bin::WriteU8(os, level.index);
    WriteLevelState(os, level.state);
  }
  bin::WriteU32(os, static_cast<uint32_t>(delta.alarm_upserts.size()));
  for (const stream::ActiveAlarm& alarm : delta.alarm_upserts) {
    WriteAlarm(os, alarm);
  }
  bin::WriteU32(os, static_cast<uint32_t>(delta.alarm_removals.size()));
  for (const std::string& id : delta.alarm_removals) bin::WriteString(os, id);
  bin::WriteU32(os, static_cast<uint32_t>(delta.quarantine_upserts.size()));
  for (const stream::QuarantinedSensor& q : delta.quarantine_upserts) {
    WriteQuarantine(os, q);
  }
  bin::WriteU32(os, static_cast<uint32_t>(delta.quarantine_removals.size()));
  for (const std::string& id : delta.quarantine_removals) {
    bin::WriteString(os, id);
  }
  bin::WriteU8(os, delta.outage_changed ? 1 : 0);
  if (delta.outage_changed) {
    bin::WriteU8(os, delta.group_outage_active ? 1 : 0);
    bin::WriteString(os, delta.group_outage_entity);
    bin::WriteF64(os, delta.group_outage_since);
    bin::WriteU64(os, delta.group_outage_sensors);
  }
  bin::WriteU8(os, delta.shifts_full ? 1 : 0);
  bin::WriteU32(os, static_cast<uint32_t>(delta.shift_events.size()));
  for (const stream::ConceptShiftEvent& shift : delta.shift_events) {
    WriteShift(os, shift);
  }
  bin::WriteU32(os, delta.shift_ring_size);
  bin::WriteU64(os, delta.concept_shifts_total);
  return os.str();
}

}  // namespace hod::serve
