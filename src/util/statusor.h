#ifndef HOD_UTIL_STATUSOR_H_
#define HOD_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace hod {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. The usual pattern:
///
///   StatusOr<Model> m = Model::Train(data);
///   if (!m.ok()) return m.status();
///   Use(m.value());
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit so functions can `return value;`).
  StatusOr(T value) : status_(), value_(std::move(value)) {}

  /// Constructs from an error status. `status` must not be OK: an OK status
  /// without a value is a logic error and is converted to kInternal.
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` when holding an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or returns its
/// status from the enclosing function. Usable several times per scope
/// (the temporary's name is unique per line).
#define HOD_INTERNAL_CONCAT_IMPL(a, b) a##b
#define HOD_INTERNAL_CONCAT(a, b) HOD_INTERNAL_CONCAT_IMPL(a, b)
#define HOD_ASSIGN_OR_RETURN(lhs, expr) \
  HOD_ASSIGN_OR_RETURN_IMPL(            \
      HOD_INTERNAL_CONCAT(hod_statusor_tmp_, __LINE__), lhs, expr)
#define HOD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace hod

#endif  // HOD_UTIL_STATUSOR_H_
