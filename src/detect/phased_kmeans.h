#ifndef HOD_DETECT_PHASED_KMEANS_H_
#define HOD_DETECT_PHASED_KMEANS_H_

#include <cstdint>
#include <vector>

#include "detect/detector.h"
#include "detect/kmeans.h"

namespace hod::detect {

/// Phased k-means (Rebbapragada et al. 2009, anomalous periodic series) —
/// Table 1 row 5, family DA, data type TSS.
///
/// Whole series are the unit of anomaly: each training series is reduced to
/// a fixed-length, phase-aligned profile (PAA after shifting the series so
/// its minimum sits at phase 0, which removes phase offsets between
/// repetitions of the same periodic behavior), the profiles are clustered
/// by k-means, and a test series scores by its distance to the nearest
/// centroid ("the distance of a time series to the centroid of the nearest
/// cluster denotes the anomaly score").
struct PhasedKMeansOptions {
  size_t profile_length = 32;
  size_t clusters = 4;
  size_t max_iters = 50;
  uint64_t seed = 42;
  /// Centroid distance (relative to the training median) at which the
  /// outlierness reaches 0.5.
  double distance_scale = 1.0;
};

class PhasedKMeansDetector {
 public:
  explicit PhasedKMeansDetector(PhasedKMeansOptions options = {});

  std::string name() const { return "PhasedKMeans"; }

  /// Fits cluster centroids to normal series.
  Status Train(const std::vector<ts::TimeSeries>& normal);

  /// Outlierness in [0,1] of one whole series.
  StatusOr<double> ScoreSeries(const ts::TimeSeries& series) const;

  /// Outlierness per series in a batch.
  StatusOr<std::vector<double>> ScoreBatch(
      const std::vector<ts::TimeSeries>& batch) const;

  /// Phase-aligned fixed-length profile of a series (exposed for tests).
  static StatusOr<std::vector<double>> PhaseAlignedProfile(
      const ts::TimeSeries& series, size_t profile_length);

 private:
  PhasedKMeansOptions options_;
  std::vector<std::vector<double>> centroids_;
  double baseline_distance_ = 1.0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_PHASED_KMEANS_H_
