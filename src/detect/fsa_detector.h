#ifndef HOD_DETECT_FSA_DETECTOR_H_
#define HOD_DETECT_FSA_DETECTOR_H_

#include <map>
#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Finite-state-automaton anomaly detection with multiple-length n-grams
/// (Marceau 2005) — Table 1 row 11, family UPA, data type SSQ (+ TSS via
/// SAX discretization).
///
/// Training builds an automaton whose states are the n-gram contexts of
/// lengths 1..max_order observed in normal data, with the set of symbols
/// seen after each context. A position is anomalous when its symbol was
/// never observed after the longest matching context; shorter-context
/// backoff softens the score (an unseen long context with a seen short one
/// scores lower than a fully novel transition).
struct FsaOptions {
  /// Longest context length (n-gram order - 1).
  size_t max_order = 4;
  /// Transitions observed fewer than this many times are still "known" but
  /// contribute a partial score (rare-transition smoothing).
  size_t rare_count = 2;
};

class FsaDetector : public SequenceDetector {
 public:
  explicit FsaDetector(FsaOptions options = {});

  std::string name() const override { return "FiniteStateAutomaton"; }

  Status Train(const std::vector<ts::DiscreteSequence>& normal) override;

  StatusOr<std::vector<double>> Score(
      const ts::DiscreteSequence& sequence) const override;

  /// Number of distinct (context, symbol) transitions stored.
  size_t num_transitions() const;

 private:
  FsaOptions options_;
  /// transition count per (context, next symbol), one map per context
  /// length: contexts_[L][context] -> {symbol -> count}.
  std::vector<std::map<std::vector<ts::Symbol>, std::map<ts::Symbol, size_t>>>
      contexts_;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_FSA_DETECTOR_H_
