#include "detect/fsa_detector.h"

#include <algorithm>

namespace hod::detect {

FsaDetector::FsaDetector(FsaOptions options) : options_(options) {}

Status FsaDetector::Train(const std::vector<ts::DiscreteSequence>& normal) {
  if (options_.max_order == 0) {
    return Status::InvalidArgument("max_order must be > 0");
  }
  contexts_.assign(options_.max_order + 1, {});
  bool any = false;
  for (const auto& sequence : normal) {
    HOD_RETURN_IF_ERROR(sequence.Validate());
    const auto& syms = sequence.symbols();
    for (size_t i = 0; i < syms.size(); ++i) {
      any = true;
      // Record transitions for every context length that fits, including
      // the empty context (unigram frequencies).
      const size_t max_len = std::min(options_.max_order, i);
      for (size_t len = 0; len <= max_len; ++len) {
        std::vector<ts::Symbol> context(syms.begin() + (i - len),
                                        syms.begin() + i);
        ++contexts_[len][std::move(context)][syms[i]];
      }
    }
  }
  if (!any) return Status::InvalidArgument("no training symbols");
  trained_ = true;
  return Status::Ok();
}

size_t FsaDetector::num_transitions() const {
  size_t total = 0;
  for (const auto& level : contexts_) {
    for (const auto& [context, nexts] : level) total += nexts.size();
  }
  return total;
}

StatusOr<std::vector<double>> FsaDetector::Score(
    const ts::DiscreteSequence& sequence) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  HOD_RETURN_IF_ERROR(sequence.Validate());
  const auto& syms = sequence.symbols();
  std::vector<double> scores(syms.size(), 0.0);
  for (size_t i = 0; i < syms.size(); ++i) {
    // Find the longest matching context; back off toward the empty one.
    const size_t max_len = std::min(options_.max_order, i);
    double score = 1.0;  // symbol never seen in any context -> fully novel
    for (size_t len = max_len + 1; len-- > 0;) {
      const std::vector<ts::Symbol> context(syms.begin() + (i - len),
                                            syms.begin() + i);
      const auto ctx_it = contexts_[len].find(context);
      if (ctx_it == contexts_[len].end()) continue;  // unseen context: back off
      const auto sym_it = ctx_it->second.find(syms[i]);
      if (sym_it == ctx_it->second.end()) {
        // Known context, novel successor. Longer contexts give stronger
        // evidence of anomaly; scale by how specific the context is.
        score = 0.6 + 0.4 * static_cast<double>(len) /
                          static_cast<double>(options_.max_order);
      } else if (sym_it->second < options_.rare_count) {
        score = 0.3;  // known but rare transition
      } else {
        score = 0.0;  // well-supported transition
      }
      break;
    }
    scores[i] = score;
  }
  return scores;
}

}  // namespace hod::detect
