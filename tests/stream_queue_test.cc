#include "stream/queue.h"

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <thread>
#include <vector>

namespace hod::stream {
namespace {

TEST(BoundedQueue, FifoWithinCapacity) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(i).ok());
  EXPECT_EQ(queue.size(), 5u);
  std::vector<int> out;
  EXPECT_TRUE(queue.PopBatch(out, 16));
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(BoundedQueue, PopBatchHonorsMaxBatch) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(queue.Push(i).ok());
  std::vector<int> out;
  EXPECT_TRUE(queue.PopBatch(out, 4));
  EXPECT_EQ(out.size(), 4u);
  EXPECT_TRUE(queue.PopBatch(out, 4));
  EXPECT_EQ(out.size(), 6u);  // appended
  EXPECT_EQ(out.back(), 5);
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  ASSERT_TRUE(queue.Push(7).ok());
}

TEST(BoundedQueue, DropOldestEvictsAndCounts) {
  BoundedQueue<int> queue(4, BackpressurePolicy::kDropOldest);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.Push(i).ok());
  EXPECT_EQ(queue.dropped(), 6u);
  std::vector<int> out;
  EXPECT_TRUE(queue.PopBatch(out, 16));
  ASSERT_EQ(out.size(), 4u);
  // The newest four survive, in order.
  EXPECT_EQ(out[0], 6);
  EXPECT_EQ(out[3], 9);
}

TEST(BoundedQueue, RejectPolicyRefusesWhenFullAndCounts) {
  BoundedQueue<int> queue(3, BackpressurePolicy::kReject);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.Push(i).ok());
  Status status = queue.Push(99);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(queue.rejected(), 1u);
  EXPECT_EQ(queue.dropped(), 0u);
  // Freeing a slot admits new items again.
  std::vector<int> out;
  ASSERT_TRUE(queue.PopBatch(out, 1));
  EXPECT_TRUE(queue.Push(99).ok());
}

TEST(BoundedQueue, BlockPolicyWaitsForConsumer) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(0).ok());
  ASSERT_TRUE(queue.Push(1).ok());
  std::vector<int> received;
  // Producer blocks on the third push until the consumer drains.
  std::thread producer([&] {
    for (int i = 2; i < 20; ++i) ASSERT_TRUE(queue.Push(i).ok());
    queue.Close();
  });
  std::vector<int> batch;
  while (queue.PopBatch(batch, 4)) {
    received.insert(received.end(), batch.begin(), batch.end());
    batch.clear();
  }
  producer.join();
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
  EXPECT_EQ(queue.dropped(), 0u);
  EXPECT_EQ(queue.rejected(), 0u);
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(0).ok());
  Status blocked_result;
  std::thread producer([&] { blocked_result = queue.Push(1); });
  // Give the producer a moment to block, then close without consuming.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.join();
  EXPECT_EQ(blocked_result.code(), StatusCode::kFailedPrecondition);
}

TEST(BoundedQueue, CloseDrainsRemainingItemsThenStops) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(queue.Push(i).ok());
  queue.Close();
  EXPECT_FALSE(queue.Push(3).ok());
  std::vector<int> out;
  EXPECT_TRUE(queue.PopBatch(out, 2));
  EXPECT_TRUE(queue.PopBatch(out, 2));
  EXPECT_EQ(out.size(), 3u);
  EXPECT_FALSE(queue.PopBatch(out, 2)) << "closed and drained";
}

TEST(BoundedQueue, HighWaterTracksDeepestFill) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(queue.Push(i).ok());
  std::vector<int> out;
  queue.PopBatch(out, 16);
  ASSERT_TRUE(queue.Push(0).ok());
  EXPECT_EQ(queue.high_water(), 6u);
}

TEST(BoundedQueue, TryPopBatchDoesNotBlock) {
  BoundedQueue<int> queue(8);
  std::vector<int> out;
  EXPECT_EQ(queue.TryPopBatch(out, 4), 0u);
  ASSERT_TRUE(queue.Push(42).ok());
  EXPECT_EQ(queue.TryPopBatch(out, 4), 1u);
  EXPECT_EQ(out[0], 42);
}

TEST(BoundedQueue, BlockWithTimeoutFailsTypedWhenConsumerStalls) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kBlockWithTimeout,
                          std::chrono::milliseconds(10));
  ASSERT_TRUE(queue.Push(0).ok());
  ASSERT_TRUE(queue.Push(1).ok());
  // No consumer: the push must give up with a typed error, not hang.
  Status status = queue.Push(2);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(queue.timed_out(), 1u);
  EXPECT_EQ(queue.dropped(), 0u);
  EXPECT_EQ(queue.rejected(), 0u);
  // Once the consumer frees a slot, pushes succeed again.
  std::vector<int> out;
  ASSERT_TRUE(queue.PopBatch(out, 1));
  EXPECT_TRUE(queue.Push(2).ok());
}

TEST(BoundedQueue, BlockWithTimeoutAdmitsWhenConsumerCatchesUp) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kBlockWithTimeout,
                          std::chrono::milliseconds(2000));
  ASSERT_TRUE(queue.Push(0).ok());
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<int> out;
    queue.TryPopBatch(out, 1);
  });
  // Blocks briefly, then the consumer frees the slot well inside the
  // timeout.
  EXPECT_TRUE(queue.Push(1).ok());
  consumer.join();
  EXPECT_EQ(queue.timed_out(), 0u);
}

TEST(BoundedQueue, PerPushPolicyOverridesTheQueueDefault) {
  // One queue, two sensor classes: the default is lossless, but a
  // best-effort producer can opt into kDropOldest for its own pushes.
  BoundedQueue<int> queue(2, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(10).ok());
  ASSERT_TRUE(queue.Push(11).ok());
  std::optional<int> evicted;
  ASSERT_TRUE(
      queue.Push(12, BackpressurePolicy::kDropOldest, &evicted).ok());
  ASSERT_TRUE(evicted.has_value()) << "the victim is handed back";
  EXPECT_EQ(*evicted, 10);
  EXPECT_EQ(queue.dropped(), 1u);
  Status rejected = queue.Push(13, BackpressurePolicy::kReject, nullptr);
  EXPECT_EQ(rejected.code(), StatusCode::kOutOfRange);
  std::vector<int> out;
  ASSERT_TRUE(queue.PopBatch(out, 4));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 11);
  EXPECT_EQ(out[1], 12);
}

TEST(BoundedQueue, DropOldestWithoutOutParamStillEvicts) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(1).ok());
  ASSERT_TRUE(queue.Push(2, BackpressurePolicy::kDropOldest, nullptr).ok());
  EXPECT_EQ(queue.dropped(), 1u);
  std::vector<int> out;
  ASSERT_TRUE(queue.PopBatch(out, 1));
  EXPECT_EQ(out[0], 2);
}

TEST(BoundedQueue, CloseWakesManySaturatingProducersPromptly) {
  // Shutdown-liveness regression: N producers all parked in a blocking
  // Push (both flavors) against a full queue must ALL return promptly
  // when Close() fires — no lost wakeup, no producer left behind.
  BoundedQueue<int> queue(1, BackpressurePolicy::kBlock);
  ASSERT_TRUE(queue.Push(0).ok());
  constexpr int kProducers = 8;
  std::vector<Status> results(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &results, p] {
      const BackpressurePolicy policy =
          (p % 2 == 0) ? BackpressurePolicy::kBlock
                       : BackpressurePolicy::kBlockWithTimeout;
      results[static_cast<size_t>(p)] = queue.Push(p, policy, nullptr);
    });
  }
  // Let every producer reach the wait, then close without consuming.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  queue.Close();
  for (auto& producer : producers) producer.join();  // must not hang
  for (const Status& result : results) {
    // Producers that raced ahead of saturation may have timed out (the
    // kBlockWithTimeout default is 100 ms); everyone else saw the close.
    EXPECT_TRUE(result.code() == StatusCode::kFailedPrecondition ||
                result.code() == StatusCode::kDeadlineExceeded)
        << result.ToString();
  }
  // The queued item is still poppable after close.
  std::vector<int> out;
  EXPECT_TRUE(queue.PopBatch(out, 4));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_FALSE(queue.PopBatch(out, 4));
}

TEST(BoundedQueue, ManyProducersAllItemsArrive) {
  BoundedQueue<int> queue(16, BackpressurePolicy::kBlock);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i).ok());
      }
    });
  }
  std::vector<int> received;
  std::thread consumer([&] {
    std::vector<int> batch;
    while (queue.PopBatch(batch, 32)) {
      received.insert(received.end(), batch.begin(), batch.end());
      batch.clear();
    }
  });
  for (auto& producer : producers) producer.join();
  queue.Close();
  consumer.join();
  ASSERT_EQ(received.size(),
            static_cast<size_t>(kProducers * kPerProducer));
  // Per-producer order is preserved even though producers interleave.
  std::vector<int> last(kProducers, -1);
  for (int value : received) {
    const int producer = value / kPerProducer;
    EXPECT_LT(last[static_cast<size_t>(producer)], value % kPerProducer);
    last[static_cast<size_t>(producer)] = value % kPerProducer;
  }
}

}  // namespace
}  // namespace hod::stream
