#include "sim/sensor_model.h"

#include <cmath>

namespace hod::sim {

double PhaseProfile::ValueAt(size_t i, size_t n) const {
  const double t =
      n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1) : 0.0;
  double value = start_level + (end_level - start_level) * t;
  if (periodic_amplitude != 0.0 && periodic_period > 0.0) {
    value += periodic_amplitude *
             std::sin(2.0 * M_PI * static_cast<double>(i) / periodic_period);
  }
  return value;
}

StatusOr<std::vector<double>> GenerateTrueSignal(const PhaseProfile& profile,
                                                 const NoiseModel& process,
                                                 size_t n, Rng& rng) {
  if (n == 0) return Status::InvalidArgument("signal length must be > 0");
  if (process.ar_coefficient <= -1.0 || process.ar_coefficient >= 1.0) {
    return Status::InvalidArgument("AR coefficient must be in (-1, 1)");
  }
  std::vector<double> signal(n);
  // Stationary AR(1): innovations scaled so the marginal variance is
  // sigma^2 regardless of the AR coefficient.
  const double innovation_sigma =
      process.sigma *
      std::sqrt(1.0 - process.ar_coefficient * process.ar_coefficient);
  double noise = rng.Gaussian(0.0, process.sigma);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = profile.ValueAt(i, n) + noise;
    noise = process.ar_coefficient * noise +
            rng.Gaussian(0.0, innovation_sigma);
  }
  return signal;
}

std::vector<double> ObserveSignal(const std::vector<double>& true_signal,
                                  double measurement_sigma, double bias,
                                  Rng& rng) {
  std::vector<double> reading(true_signal.size());
  for (size_t i = 0; i < true_signal.size(); ++i) {
    reading[i] = true_signal[i] + bias + rng.Gaussian(0.0, measurement_sigma);
  }
  return reading;
}

StatusOr<PhaseProfile> PrinterPhaseProfile(const std::string& phase_name,
                                           const std::string& quantity) {
  // Nominal levels for an SLS/SLM-style industrial printer. Temperatures
  // in degC, laser power in W, vibration in mm/s RMS, oxygen in %.
  if (quantity == "bed_temp") {
    if (phase_name == "preparation") return PhaseProfile{25.0, 25.0, 0.0, 0.0};
    if (phase_name == "warm_up") return PhaseProfile{25.0, 180.0, 0.0, 0.0};
    if (phase_name == "calibration") {
      return PhaseProfile{180.0, 180.0, 0.0, 0.0};
    }
    if (phase_name == "printing") return PhaseProfile{180.0, 185.0, 1.5, 60.0};
    if (phase_name == "cool_down") return PhaseProfile{185.0, 60.0, 0.0, 0.0};
  } else if (quantity == "chamber_temp") {
    if (phase_name == "preparation") return PhaseProfile{25.0, 25.0, 0.0, 0.0};
    if (phase_name == "warm_up") return PhaseProfile{25.0, 55.0, 0.0, 0.0};
    if (phase_name == "calibration") return PhaseProfile{55.0, 55.0, 0.0, 0.0};
    if (phase_name == "printing") return PhaseProfile{55.0, 58.0, 0.8, 80.0};
    if (phase_name == "cool_down") return PhaseProfile{58.0, 30.0, 0.0, 0.0};
  } else if (quantity == "laser_power") {
    if (phase_name == "preparation") return PhaseProfile{0.0, 0.0, 0.0, 0.0};
    if (phase_name == "warm_up") return PhaseProfile{0.0, 0.0, 0.0, 0.0};
    if (phase_name == "calibration") return PhaseProfile{40.0, 40.0, 0.0, 0.0};
    if (phase_name == "printing") return PhaseProfile{195.0, 195.0, 12.0, 40.0};
    if (phase_name == "cool_down") return PhaseProfile{0.0, 0.0, 0.0, 0.0};
  } else if (quantity == "vibration") {
    if (phase_name == "preparation") return PhaseProfile{0.2, 0.2, 0.0, 0.0};
    if (phase_name == "warm_up") return PhaseProfile{0.3, 0.3, 0.0, 0.0};
    if (phase_name == "calibration") return PhaseProfile{0.5, 0.5, 0.1, 25.0};
    if (phase_name == "printing") return PhaseProfile{1.2, 1.2, 0.4, 30.0};
    if (phase_name == "cool_down") return PhaseProfile{0.3, 0.2, 0.0, 0.0};
  } else if (quantity == "oxygen") {
    if (phase_name == "preparation") return PhaseProfile{20.9, 20.9, 0.0, 0.0};
    if (phase_name == "warm_up") return PhaseProfile{20.9, 2.0, 0.0, 0.0};
    if (phase_name == "calibration") return PhaseProfile{2.0, 0.5, 0.0, 0.0};
    if (phase_name == "printing") return PhaseProfile{0.5, 0.5, 0.05, 90.0};
    if (phase_name == "cool_down") return PhaseProfile{0.5, 15.0, 0.0, 0.0};
  } else if (quantity == "room_temp") {
    return PhaseProfile{21.0, 21.0, 1.2, 900.0};  // slow daily-ish cycle
  }
  return Status::NotFound("no profile for quantity '" + quantity +
                          "' in phase '" + phase_name + "'");
}

}  // namespace hod::sim
