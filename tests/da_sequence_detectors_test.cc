// DA-family sequence detectors: match count, LCS, dynamic clustering.

#include <gtest/gtest.h>

#include "detect/dynamic_clustering.h"
#include "detect/lcs_detector.h"
#include "detect/match_count.h"
#include "detector_test_util.h"

namespace hod::detect {
namespace {

using detect_test::CanonicalSequences;
using detect_test::ExpectAnomaliesScoreHigher;
using detect_test::ExpectScoresInUnitInterval;

TEST(MatchCount, RequiresTraining) {
  MatchCountDetector detector;
  ts::DiscreteSequence seq("x", 4, {0, 1, 2, 3});
  EXPECT_EQ(detector.Score(seq).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MatchCount, RejectsZeroWindow) {
  MatchCountDetector detector(MatchCountOptions{.window = 0});
  EXPECT_FALSE(detector.Train({ts::DiscreteSequence("x", 2, {0, 1})}).ok());
}

TEST(MatchCount, RejectsTooShortTraining) {
  MatchCountDetector detector(MatchCountOptions{.window = 8});
  EXPECT_FALSE(detector.Train({ts::DiscreteSequence("x", 2, {0, 1})}).ok());
}

TEST(MatchCount, ScoresKnownSequenceLow) {
  const auto dataset = CanonicalSequences();
  MatchCountDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  auto scores = detector.Score(dataset.train[1]);
  ASSERT_TRUE(scores.ok());
  ExpectScoresInUnitInterval(scores.value());
  double mean = 0.0;
  for (double s : scores.value()) mean += s;
  mean /= static_cast<double>(scores->size());
  EXPECT_LT(mean, 0.3) << "training-like data should score low";
}

TEST(MatchCount, FlagsCorruptedBursts) {
  const auto dataset = CanonicalSequences();
  MatchCountDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.Score(dataset.test[s]);
    ASSERT_TRUE(scores.ok());
    ExpectAnomaliesScoreHigher(scores.value(), dataset.test_labels[s]);
  }
}

TEST(MatchCount, ShortSequenceScoresAllZero) {
  const auto dataset = CanonicalSequences();
  MatchCountDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  ts::DiscreteSequence tiny("tiny", dataset.train[0].alphabet_size(), {0, 1});
  auto scores = detector.Score(tiny);
  ASSERT_TRUE(scores.ok());
  for (double s : scores.value()) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(Lcs, MedoidsSelectedFromTraining) {
  const auto dataset = CanonicalSequences();
  LcsDetector detector(LcsOptions{.window = 12, .medoids = 8});
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  EXPECT_GE(detector.medoids().size(), 1u);
  EXPECT_LE(detector.medoids().size(), 8u);
}

TEST(Lcs, FlagsCorruptedBursts) {
  const auto dataset = CanonicalSequences();
  LcsDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.Score(dataset.test[s]);
    ASSERT_TRUE(scores.ok());
    ExpectScoresInUnitInterval(scores.value());
    ExpectAnomaliesScoreHigher(scores.value(), dataset.test_labels[s], 0.05);
  }
}

TEST(Lcs, ToleratesSmallShifts) {
  // LCS should forgive an alignment shift that positional matching
  // punishes: a rotated-by-one normal sequence must score low.
  const auto dataset = CanonicalSequences();
  LcsDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  const auto& base = dataset.train[0];
  std::vector<ts::Symbol> rotated(base.symbols().begin() + 1,
                                  base.symbols().end());
  rotated.push_back(base.symbols().front());
  ts::DiscreteSequence shifted("shifted", base.alphabet_size(), rotated);
  auto scores = detector.Score(shifted).value();
  double mean = 0.0;
  for (double s : scores) mean += s;
  mean /= static_cast<double>(scores.size());
  EXPECT_LT(mean, 0.35);
}

TEST(DynamicClustering, BuildsClusters) {
  const auto dataset = CanonicalSequences();
  DynamicClusteringDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  EXPECT_GT(detector.num_clusters(), 0u);
}

TEST(DynamicClustering, RejectsBadRadius) {
  DynamicClusteringDetector detector(
      DynamicClusteringOptions{.window = 4, .radius = 1.5});
  EXPECT_FALSE(detector.Train({ts::DiscreteSequence("x", 2,
                                                    {0, 1, 0, 1, 0})}).ok());
}

TEST(DynamicClustering, FlagsCorruptedBursts) {
  const auto dataset = CanonicalSequences();
  DynamicClusteringDetector detector;
  ASSERT_TRUE(detector.Train(dataset.train).ok());
  for (size_t s = 0; s < dataset.test.size(); ++s) {
    auto scores = detector.Score(dataset.test[s]);
    ASSERT_TRUE(scores.ok());
    ExpectScoresInUnitInterval(scores.value());
    ExpectAnomaliesScoreHigher(scores.value(), dataset.test_labels[s], 0.05);
  }
}

TEST(DynamicClustering, NovelWindowsScoreMaximal) {
  DynamicClusteringDetector detector(
      DynamicClusteringOptions{.window = 4, .radius = 0.0});
  ts::DiscreteSequence normal("n", 4, {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3});
  ASSERT_TRUE(detector.Train({normal}).ok());
  ts::DiscreteSequence novel("x", 4, {3, 3, 3, 3, 3, 3, 3, 3});
  auto scores = detector.Score(novel).value();
  EXPECT_DOUBLE_EQ(*std::max_element(scores.begin(), scores.end()), 1.0);
}

}  // namespace
}  // namespace hod::detect
