#ifndef HOD_STREAM_SPSC_RING_H_
#define HOD_STREAM_SPSC_RING_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "stream/queue.h"
#include "util/status.h"

namespace hod::stream {

namespace spsc_detail {

/// Busy-wait hint: tells the core we are spinning without yielding the
/// thread (keeps the pipeline from speculating past the loop exit).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

inline size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace spsc_detail

/// Lock-free bounded single-producer / single-consumer ring — the shard
/// ingress fast path when `ProducerHint::kSinglePerShard` proves exactly
/// one producer thread feeds the shard.
///
/// Layout: a power-of-two slot array with cache-line-padded atomic
/// `head_` (next pop position, consumer-owned except for kDropOldest
/// eviction) and `tail_` (next push position, producer-owned). Each slot
/// carries a Vyukov-style sequence number:
///
///   seq == pos          slot free, producer may write
///   seq == pos + 1      slot published, consumer may claim
///   seq == pos + slots  slot consumed, free for the next lap
///
/// Memory-ordering argument: the producer writes the value, then releases
/// it with `seq.store(pos + 1, release)`; the consumer's matching
/// `seq.load(acquire)` makes the value visible before it is moved out, so
/// the payload itself is never accessed concurrently. `head_`/`tail_` are
/// advanced with release stores (for `size()` readers); the *claim* of a
/// published slot is a CAS on `head_`, which is what lets the producer
/// evict the oldest element under kDropOldest without a mutex — producer
/// and consumer race for the claim, exactly one wins, and the loser never
/// touches the payload. In the steady state that CAS is uncontended and
/// the fast path performs zero atomic RMW on push and one on pop.
///
/// Blocking policies (kBlock / kBlockWithTimeout) and the empty-queue
/// consumer wait use bounded spin-then-park: a short yield-friendly spin
/// (tuned for the case where the peer frees space within its timeslice),
/// then a timed park on a mutex+CV that the peer only touches when the
/// `*_parked_` flag says someone is actually asleep. The park slices are
/// short and every wakeup re-checks the ring state, so a missed
/// opportunistic notify costs at most one slice, never liveness.
///
/// Shutdown: `Close()` is lock-free on the producer side, so a push that
/// already passed the closed check may still publish its item while
/// `Close` runs. The contract is therefore: after Close() *returns*,
/// subsequent pushes fail FailedPrecondition; an in-flight racing push
/// may succeed, and its item stays poppable — a consumer that observed
/// "closed and drained" hands ownership to whoever joins the producer
/// (the scorer's `Stop()` runs a post-join straggler sweep for exactly
/// this window; `ShardedScorer` accounts every such sample).
template <typename T>
class SpscRing final : public ShardQueue<T> {
 public:
  explicit SpscRing(
      size_t capacity, BackpressurePolicy policy = BackpressurePolicy::kBlock,
      std::chrono::milliseconds block_timeout = std::chrono::milliseconds(100))
      : capacity_(capacity == 0 ? 1 : capacity),
        policy_(policy),
        block_timeout_(block_timeout),
        slots_(spsc_detail::NextPowerOfTwo(capacity_)),
        mask_(slots_ - 1),
        cells_(slots_) {
    for (size_t i = 0; i < slots_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  using ShardQueue<T>::Push;

  Status Push(T item, BackpressurePolicy policy,
              std::optional<T>* evicted) override {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition("queue closed");
    }
    const uint64_t pos = tail_.load(std::memory_order_relaxed);
    while (pos - head_.load(std::memory_order_acquire) >= capacity_) {
      switch (policy) {
        case BackpressurePolicy::kReject:
          rejected_.fetch_add(1, std::memory_order_relaxed);
          return Status::OutOfRange("queue full");
        case BackpressurePolicy::kDropOldest:
          // Make room by claiming the head slot ourselves; a concurrent
          // consumer pop also makes room, so losing the claim race is
          // progress too.
          TryEvictOldest(evicted);
          break;
        case BackpressurePolicy::kBlock:
        case BackpressurePolicy::kBlockWithTimeout: {
          Status admitted = AwaitSpace(
              pos, policy == BackpressurePolicy::kBlockWithTimeout);
          if (!admitted.ok()) return admitted;
          break;
        }
      }
      if (closed_.load(std::memory_order_acquire)) {
        return Status::FailedPrecondition("queue closed");
      }
    }
    Cell& cell = cells_[pos & mask_];
    // The consumer claims a slot (head CAS) before releasing its sequence,
    // so right after a wrap the slot may look occupied for the instant
    // between the peer's claim and its release — a bounded wait.
    while (cell.seq.load(std::memory_order_acquire) != pos) {
      spsc_detail::CpuRelax();
    }
    cell.value = std::move(item);
    cell.seq.store(pos + 1, std::memory_order_release);
    tail_.store(pos + 1, std::memory_order_release);
    const size_t depth =
        static_cast<size_t>(pos + 1 - head_.load(std::memory_order_acquire));
    if (depth > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(depth, std::memory_order_relaxed);
    }
    if (consumer_parked_.load(std::memory_order_seq_cst)) NotifyNotEmpty();
    return Status::Ok();
  }

  bool PopBatch(std::vector<T>& out, size_t max_batch) override {
    const size_t want = max_batch == 0 ? size_t{1} : max_batch;
    while (true) {
      if (TryPopBatch(out, want) > 0) return true;
      if (closed_.load(std::memory_order_acquire) && Empty()) return false;
      // Spin briefly (yield-heavy: on a loaded box the producer likely
      // needs our core), then park until the producer publishes.
      bool ready = false;
      for (int spin = 0; spin < kSpinIterations; ++spin) {
        if (!Empty() || closed_.load(std::memory_order_acquire)) {
          ready = true;
          break;
        }
        if (spin % 8 == 7) {
          std::this_thread::yield();
        } else {
          spsc_detail::CpuRelax();
        }
      }
      if (ready) continue;
      std::unique_lock<std::mutex> lock(park_mu_);
      consumer_parked_.store(true, std::memory_order_seq_cst);
      while (Empty() && !closed_.load(std::memory_order_acquire)) {
        not_empty_.wait_for(lock, kParkSlice);
      }
      consumer_parked_.store(false, std::memory_order_relaxed);
    }
  }

  size_t TryPopBatch(std::vector<T>& out, size_t max_batch) override {
    const size_t want = max_batch == 0 ? capacity_ : max_batch;
    size_t taken = 0;
    while (taken < want) {
      uint64_t pos = head_.load(std::memory_order_relaxed);
      Cell& cell = cells_[pos & mask_];
      if (cell.seq.load(std::memory_order_acquire) != pos + 1) break;
      if (!head_.compare_exchange_strong(pos, pos + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        continue;  // an evicting producer claimed this slot first
      }
      out.push_back(std::move(cell.value));
      cell.seq.store(pos + slots_, std::memory_order_release);
      ++taken;
    }
    if (taken > 0 && producer_parked_.load(std::memory_order_seq_cst)) {
      NotifyNotFull();
    }
    return taken;
  }

  void Close() override {
    closed_.store(true, std::memory_order_release);
    // Serialize with parkers: anyone already inside wait_for re-checks
    // closed_ on this notify; anyone about to park re-checks it under the
    // same mutex before sleeping.
    std::lock_guard<std::mutex> lock(park_mu_);
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const override {
    // head first: reading tail later can only overestimate, never wrap
    // below zero.
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail >= head ? tail - head : 0);
  }
  bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }
  size_t capacity() const override { return capacity_; }
  BackpressurePolicy policy() const override { return policy_; }
  uint64_t dropped() const override {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const override {
    return rejected_.load(std::memory_order_relaxed);
  }
  uint64_t timed_out() const override {
    return timed_out_.load(std::memory_order_relaxed);
  }
  size_t high_water() const override {
    return high_water_.load(std::memory_order_relaxed);
  }
  std::string_view kind() const override { return "spsc"; }

 private:
  struct Cell {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  static constexpr int kSpinIterations = 128;
  static constexpr std::chrono::milliseconds kParkSlice{1};

  bool Empty() const {
    const uint64_t pos = head_.load(std::memory_order_relaxed);
    return cells_[pos & mask_].seq.load(std::memory_order_acquire) != pos + 1;
  }

  /// Producer-side dequeue of the oldest published element (kDropOldest).
  /// Safe against the consumer: both race for the head claim via CAS and
  /// only the winner touches the payload.
  bool TryEvictOldest(std::optional<T>* evicted) {
    uint64_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    if (cell.seq.load(std::memory_order_acquire) != pos + 1) return false;
    if (!head_.compare_exchange_strong(pos, pos + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      return false;  // the consumer popped it — room was made either way
    }
    T victim = std::move(cell.value);
    cell.seq.store(pos + slots_, std::memory_order_release);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (evicted != nullptr) *evicted = std::move(victim);
    return true;
  }

  /// Spin-then-park until the ring has space for position `pos`, the
  /// queue closes, or (when `timed`) the block timeout expires.
  Status AwaitSpace(uint64_t pos, bool timed) {
    for (int spin = 0; spin < kSpinIterations; ++spin) {
      if (pos - head_.load(std::memory_order_acquire) < capacity_) {
        return Status::Ok();
      }
      if (closed_.load(std::memory_order_acquire)) {
        return Status::FailedPrecondition("queue closed");
      }
      if (spin % 8 == 7) {
        std::this_thread::yield();
      } else {
        spsc_detail::CpuRelax();
      }
    }
    const auto deadline = std::chrono::steady_clock::now() + block_timeout_;
    std::unique_lock<std::mutex> lock(park_mu_);
    producer_parked_.store(true, std::memory_order_seq_cst);
    Status result = Status::Ok();
    while (true) {
      if (pos - head_.load(std::memory_order_acquire) < capacity_) break;
      if (closed_.load(std::memory_order_acquire)) {
        result = Status::FailedPrecondition("queue closed");
        break;
      }
      if (timed && std::chrono::steady_clock::now() >= deadline) {
        timed_out_.fetch_add(1, std::memory_order_relaxed);
        result = Status::DeadlineExceeded("queue full beyond block timeout");
        break;
      }
      not_full_.wait_for(lock, kParkSlice);
    }
    producer_parked_.store(false, std::memory_order_relaxed);
    return result;
  }

  void NotifyNotEmpty() {
    std::lock_guard<std::mutex> lock(park_mu_);
    not_empty_.notify_one();
  }
  void NotifyNotFull() {
    std::lock_guard<std::mutex> lock(park_mu_);
    not_full_.notify_one();
  }

  const size_t capacity_;  ///< logical capacity (full at this occupancy)
  const BackpressurePolicy policy_;
  const std::chrono::milliseconds block_timeout_;
  const size_t slots_;  ///< power-of-two slot count, >= capacity_
  const uint64_t mask_;
  std::vector<Cell> cells_;

  /// Consumer-owned (plus eviction claims); own cache line so producer
  /// loads of head_ don't false-share with tail_.
  alignas(64) std::atomic<uint64_t> head_{0};
  /// Producer-owned.
  alignas(64) std::atomic<uint64_t> tail_{0};

  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<bool> producer_parked_{false};
  std::atomic<bool> consumer_parked_{false};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<size_t> high_water_{0};

  /// Slow path only: parking for blocking policies / empty-queue waits.
  std::mutex park_mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
};

/// Builds the shard ingress queue matching `hint`: the lock-free SPSC
/// ring when the caller pins one producer per shard, the mutex-based
/// MPSC BoundedQueue otherwise.
template <typename T>
std::unique_ptr<ShardQueue<T>> MakeShardQueue(
    ProducerHint hint, size_t capacity, BackpressurePolicy policy,
    std::chrono::milliseconds block_timeout) {
  if (hint == ProducerHint::kSinglePerShard) {
    return std::make_unique<SpscRing<T>>(capacity, policy, block_timeout);
  }
  return std::make_unique<BoundedQueue<T>>(capacity, policy, block_timeout);
}

}  // namespace hod::stream

#endif  // HOD_STREAM_SPSC_RING_H_
