#include "hierarchy/serialization.h"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/plant.h"
#include "util/rng.h"

namespace hod::hierarchy {
namespace {

sim::SimulatedPlant SmallPlant() {
  sim::PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 2;
  options.jobs_per_machine = 3;
  options.preparation_samples = 16;
  options.warm_up_samples = 24;
  options.calibration_samples = 16;
  options.printing_samples = 32;
  options.cool_down_samples = 16;
  options.seed = 12;
  return sim::BuildPlant(options, sim::ScenarioOptions{}).value();
}

TEST(Serialization, RoundTripPreservesStructure) {
  const auto plant = SmallPlant();
  std::stringstream stream;
  ASSERT_TRUE(WriteProduction(plant.production, stream).ok());

  auto restored_or = ReadProduction(stream);
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  const Production& restored = restored_or.value();

  ASSERT_EQ(restored.lines.size(), plant.production.lines.size());
  EXPECT_EQ(restored.sensors.size(), plant.production.sensors.size());
  for (size_t l = 0; l < restored.lines.size(); ++l) {
    const auto& a = plant.production.lines[l];
    const auto& b = restored.lines[l];
    EXPECT_EQ(a.id, b.id);
    ASSERT_EQ(a.machines.size(), b.machines.size());
    ASSERT_EQ(a.environment.size(), b.environment.size());
    for (size_t m = 0; m < a.machines.size(); ++m) {
      ASSERT_EQ(a.machines[m].jobs.size(), b.machines[m].jobs.size());
      EXPECT_EQ(a.machines[m].configuration.values(),
                b.machines[m].configuration.values());
    }
  }
}

TEST(Serialization, RoundTripIsBitExactOnSeries) {
  const auto plant = SmallPlant();
  std::stringstream stream;
  ASSERT_TRUE(WriteProduction(plant.production, stream).ok());
  auto restored = ReadProduction(stream).value();

  const auto& original_job = plant.production.lines[0].machines[0].jobs[0];
  const auto& restored_job = restored.lines[0].machines[0].jobs[0];
  ASSERT_EQ(original_job.id, restored_job.id);
  EXPECT_EQ(original_job.setup.values(), restored_job.setup.values());
  EXPECT_EQ(original_job.caq.values(), restored_job.caq.values());
  ASSERT_EQ(original_job.phases.size(), restored_job.phases.size());
  for (size_t p = 0; p < original_job.phases.size(); ++p) {
    const auto& phase_a = original_job.phases[p];
    const auto& phase_b = restored_job.phases[p];
    EXPECT_EQ(phase_a.events.symbols(), phase_b.events.symbols());
    ASSERT_EQ(phase_a.sensor_series.size(), phase_b.sensor_series.size());
    for (const auto& [sensor_id, series] : phase_a.sensor_series) {
      const auto it = phase_b.sensor_series.find(sensor_id);
      ASSERT_NE(it, phase_b.sensor_series.end());
      // Bit-exact double round trip via %.17g.
      EXPECT_EQ(series.values(), it->second.values()) << sensor_id;
      EXPECT_EQ(series.start_time(), it->second.start_time());
      EXPECT_EQ(series.interval(), it->second.interval());
    }
  }
}

TEST(Serialization, SensorMetadataSurvives) {
  const auto plant = SmallPlant();
  std::stringstream stream;
  ASSERT_TRUE(WriteProduction(plant.production, stream).ok());
  auto restored = ReadProduction(stream).value();
  const std::string id = "line1.m1.bed_temp_a";
  auto original = plant.production.sensors.Get(id).value();
  auto copied = restored.sensors.Get(id).value();
  EXPECT_EQ(original.unit, copied.unit);
  EXPECT_EQ(original.machine_id, copied.machine_id);
  EXPECT_EQ(original.redundancy_group, copied.redundancy_group);
  auto group = restored.sensors.CorrespondingSensors(id).value();
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0], "line1.m1.bed_temp_b");
}

TEST(Serialization, RedundancyGroupMembershipSurvivesRoundTrip) {
  // The peer-group layer is configured from CorrespondingSensors, so a
  // restored production must answer that query identically — including
  // the degenerate cases (singleton group, no group).
  Production production;
  ASSERT_TRUE(
      production.sensors.Register({"m1.bed_a", "", "degC", "m1", "bed"}).ok());
  ASSERT_TRUE(
      production.sensors.Register({"m1.bed_b", "", "degC", "m1", "bed"}).ok());
  ASSERT_TRUE(
      production.sensors.Register({"m1.bed_c", "", "degC", "m1", "bed"}).ok());
  ASSERT_TRUE(
      production.sensors.Register({"m1.gyro", "", "dps", "m1", "imu"}).ok());
  ASSERT_TRUE(
      production.sensors.Register({"m1.free", "", "", "m1", ""}).ok());

  std::stringstream stream;
  ASSERT_TRUE(WriteProduction(production, stream).ok());
  auto restored = ReadProduction(stream).value();
  ASSERT_EQ(restored.sensors.size(), production.sensors.size());
  for (const std::string& id : production.sensors.ids()) {
    auto want = production.sensors.CorrespondingSensors(id).value();
    auto got = restored.sensors.CorrespondingSensors(id).value();
    EXPECT_EQ(got, want) << id;
  }
  EXPECT_EQ(restored.sensors.CorrespondingSensors("m1.bed_a").value().size(),
            2u);
  EXPECT_TRUE(
      restored.sensors.CorrespondingSensors("m1.gyro").value().empty());
  EXPECT_FALSE(restored.sensors.CorrespondingSensors("ghost").ok());
}

TEST(Serialization, RejectsGarbage) {
  std::stringstream empty;
  EXPECT_FALSE(ReadProduction(empty).ok());

  std::stringstream bad_magic("NOPE 1\nEND\n");
  EXPECT_FALSE(ReadProduction(bad_magic).ok());

  std::stringstream bad_version("HODPROD 99\nEND\n");
  EXPECT_FALSE(ReadProduction(bad_version).ok());

  std::stringstream truncated("HODPROD 1\nLINE l1\n");
  EXPECT_FALSE(ReadProduction(truncated).ok());

  std::stringstream orphan_job("HODPROD 1\nJOB j1 0 1\nEND\n");
  auto status = ReadProduction(orphan_job);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.status().message().find("line 2"), std::string::npos);
}

TEST(Serialization, UnknownTagReported) {
  std::stringstream stream("HODPROD 1\nWIDGET x\nEND\n");
  auto status = ReadProduction(stream);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.status().message().find("unknown tag"),
            std::string::npos);
}

TEST(Serialization, DetectorRunsOnRestoredProduction) {
  // The practical point of serialization: a restored plant must be fully
  // usable by the hierarchical detector.
  const auto plant = SmallPlant();
  std::stringstream stream;
  ASSERT_TRUE(WriteProduction(plant.production, stream).ok());
  auto restored = ReadProduction(stream).value();
  EXPECT_TRUE(ValidateProduction(restored).ok());
  EXPECT_EQ(CountJobs(restored), CountJobs(plant.production));
}

TEST(Serialization, FuzzedGarbageNeverCrashes) {
  // Deterministic structured fuzz: random tags, counts, and tokens. The
  // parser must always return a clean Status, never crash or hang.
  hod::Rng rng(2026);
  const char* tags[] = {"SENSOR", "LINE", "MACHINE", "CONFIG", "JOB",
                        "SETUP",  "CAQ",  "PHASE",   "EVENTS", "SERIES",
                        "ENV",    "END",  "GARBAGE"};
  for (int round = 0; round < 200; ++round) {
    std::stringstream stream;
    if (rng.NextBernoulli(0.8)) stream << "HODPROD 1\n";
    const int lines = static_cast<int>(rng.NextBelow(12));
    for (int l = 0; l < lines; ++l) {
      stream << tags[rng.NextBelow(std::size(tags))];
      const int tokens = static_cast<int>(rng.NextBelow(6));
      for (int t = 0; t < tokens; ++t) {
        if (rng.NextBernoulli(0.5)) {
          stream << " " << rng.UniformInt(-5, 100);
        } else {
          stream << " tok" << rng.NextBelow(5);
        }
      }
      stream << "\n";
    }
    auto result = ReadProduction(stream);
    // Either a (rare) valid parse or a clean error — both acceptable.
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

}  // namespace
}  // namespace hod::hierarchy
