// HierarchicalDetector unit behaviour: level primitives, caching, scope
// resolution, error paths.

#include "core/hierarchical_detector.h"

#include <gtest/gtest.h>

#include "sim/plant.h"

namespace hod::core {
namespace {

class HierarchicalDetectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::PlantOptions options;
    options.num_lines = 1;
    options.machines_per_line = 2;
    options.jobs_per_machine = 8;
    options.seed = 41;
    sim::ScenarioOptions scenario;
    scenario.process_anomaly_rate = 0.3;
    scenario.glitch_rate = 0.2;
    plant_ = sim::BuildPlant(options, scenario).value();
    detector_ = std::make_unique<HierarchicalDetector>(&plant_.production);
  }

  sim::SimulatedPlant plant_;
  std::unique_ptr<HierarchicalDetector> detector_;
};

TEST_F(HierarchicalDetectorTest, ScorePhaseSeriesSizesMatch) {
  const auto& machine = plant_.production.lines[0].machines[0];
  const auto& job = machine.jobs[0];
  PhaseQuery query{machine.id, job.id, "printing",
                   machine.id + ".bed_temp_a"};
  auto scores = detector_->ScorePhaseSeries(query);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  EXPECT_EQ(scores->size(),
            job.phases[3].sensor_series.at(query.sensor_id).size());
  for (double s : scores.value()) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST_F(HierarchicalDetectorTest, UnknownScopesRejected) {
  PhaseQuery bad{"ghost-machine", "ghost-job", "printing", "ghost"};
  EXPECT_FALSE(detector_->ScorePhaseSeries(bad).ok());
  EXPECT_FALSE(detector_->ScoreJobs("ghost").ok());
  EXPECT_FALSE(detector_->ScoreEnvironment("ghost").ok());
  EXPECT_FALSE(detector_->ScoreLineJobs("ghost").ok());
  EXPECT_FALSE(detector_->FindJobOutliers("ghost").ok());
  EXPECT_FALSE(detector_->FindEnvironmentOutliers("ghost").ok());
  EXPECT_FALSE(detector_->FindLineOutliers("ghost").ok());
}

TEST_F(HierarchicalDetectorTest, UnknownSensorInKnownJobRejected) {
  const auto& machine = plant_.production.lines[0].machines[0];
  PhaseQuery query{machine.id, machine.jobs[0].id, "printing", "ghost"};
  EXPECT_FALSE(detector_->ScorePhaseSeries(query).ok());
}

TEST_F(HierarchicalDetectorTest, ScoreJobsOnePerJob) {
  const auto& machine = plant_.production.lines[0].machines[0];
  auto scores = detector_->ScoreJobs(machine.id);
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), machine.jobs.size());
}

TEST_F(HierarchicalDetectorTest, ScoreEnvironmentMatchesSeriesLength) {
  auto scores = detector_->ScoreEnvironment("line1");
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(),
            plant_.production.lines[0].environment[0].series.size());
}

TEST_F(HierarchicalDetectorTest, ScoreLineJobsAcrossMachines) {
  auto scores = detector_->ScoreLineJobs("line1");
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), 16u);  // 2 machines x 8 jobs
}

TEST_F(HierarchicalDetectorTest, ScoreMachinesCoversAll) {
  auto scores = detector_->ScoreMachines();
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(scores->size(), 2u);
  for (const auto& [machine_id, score] : scores.value()) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST_F(HierarchicalDetectorTest, RepeatedQueriesAreCachedAndStable) {
  const auto& machine = plant_.production.lines[0].machines[0];
  auto first = detector_->ScoreJobs(machine.id).value();
  auto second = detector_->ScoreJobs(machine.id).value();
  EXPECT_EQ(first, second);
}

TEST_F(HierarchicalDetectorTest, ReportCarriesAlgorithmAndLevel) {
  const auto& machine = plant_.production.lines[0].machines[0];
  auto report = detector_->FindJobOutliers(machine.id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->start_level, hierarchy::ProductionLevel::kJob);
  EXPECT_EQ(report->algorithm, "ExpectationMaximization");
}

TEST_F(HierarchicalDetectorTest, FindingsRespectThreshold) {
  const auto& machine = plant_.production.lines[0].machines[0];
  auto report = detector_->FindJobOutliers(machine.id).value();
  for (const auto& finding : report.findings) {
    EXPECT_GT(finding.outlierness, detector_->options().outlier_threshold);
    EXPECT_GE(finding.global_score, 1);
    EXPECT_LE(finding.global_score, hierarchy::kNumLevels);
    EXPECT_GE(finding.support, 0.0);
    EXPECT_LE(finding.support, 1.0);
    EXPECT_FALSE(finding.confirmed_levels.empty());
  }
}

TEST_F(HierarchicalDetectorTest, GlobalScoreCountsConfirmedChain) {
  // For every finding: global_score <= confirmed levels count and the
  // start level is always confirmed.
  const auto& machine = plant_.production.lines[0].machines[0];
  auto report = detector_->FindJobOutliers(machine.id).value();
  for (const auto& finding : report.findings) {
    EXPECT_LE(static_cast<size_t>(finding.global_score),
              finding.confirmed_levels.size() +
                  static_cast<size_t>(hierarchy::kNumLevels));
    bool start_confirmed = false;
    for (auto level : finding.confirmed_levels) {
      if (level == hierarchy::ProductionLevel::kJob) start_confirmed = true;
    }
    EXPECT_TRUE(start_confirmed);
  }
}

TEST_F(HierarchicalDetectorTest, MismatchedPolicyChangesAlgorithm) {
  HierarchicalDetectorOptions options;
  options.policy = SelectorPolicy::kMismatched;
  HierarchicalDetector mismatched(&plant_.production, options);
  const auto& machine = plant_.production.lines[0].machines[0];
  auto report = mismatched.FindJobOutliers(machine.id);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->algorithm, "AutoregressiveModel+Stream");
}

TEST_F(HierarchicalDetectorTest, ProductionReportRunsGlobally) {
  auto report = detector_->FindProductionOutliers();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->start_level, hierarchy::ProductionLevel::kProduction);
  for (const auto& finding : report->findings) {
    // Production findings have no corresponding sensors.
    EXPECT_EQ(finding.corresponding_sensors, 0u);
  }
}

// ---- Epoch cache ----------------------------------------------------------

TEST_F(HierarchicalDetectorTest, AppendedJobInvisibleUntilMarkDirty) {
  auto& machine = plant_.production.lines[0].machines[0];
  const size_t n = machine.jobs.size();
  ASSERT_EQ(detector_->ScoreJobs(machine.id)->size(), n);

  // The production gains a job (copy the last one, shifted past the end).
  hierarchy::Job appended = machine.jobs.back();
  appended.id = machine.id + ".j-appended";
  const double shift =
      machine.jobs.back().end_time - machine.jobs.back().start_time + 120.0;
  appended.start_time += shift;
  appended.end_time += shift;
  for (auto& phase : appended.phases) {
    phase.start_time += shift;
    phase.end_time += shift;
    for (auto& [sensor_id, series] : phase.sensor_series) {
      series = ts::TimeSeries(series.name(), series.start_time() + shift,
                              series.interval(), series.values());
    }
  }
  machine.jobs.push_back(std::move(appended));

  // Cached result: the detector has not been told the data changed.
  EXPECT_EQ(detector_->ScoreJobs(machine.id)->size(), n);

  // MarkDirty invalidates exactly this machine's scope; the next query
  // rebuilds from the current data and sees the appended job.
  ASSERT_TRUE(detector_->MarkDirty(machine.id).ok());
  EXPECT_EQ(detector_->ScoreJobs(machine.id)->size(), n + 1);
  // The line's job series (which folds in this machine) rebuilds too.
  EXPECT_EQ(detector_->ScoreLineJobs("line1")->size(), 2 * n + 1);
}

TEST_F(HierarchicalDetectorTest, MarkDirtyCoversLazilyBuiltPhaseModels) {
  // Regression: lazily-built phase models (trained on the machine's OTHER
  // jobs) must rebuild when the training data changes.
  auto& machine = plant_.production.lines[0].machines[0];
  const auto& job = machine.jobs[0];
  PhaseQuery query{machine.id, job.id, "printing",
                   machine.id + ".bed_temp_a"};
  const auto before = detector_->ScorePhaseSeries(query).value();

  // Corrupt the training data: every other job's printing series for this
  // sensor gets a massive offset, which shifts the trained baseline.
  for (size_t j = 1; j < machine.jobs.size(); ++j) {
    for (auto& phase : machine.jobs[j].phases) {
      if (phase.name != "printing") continue;
      auto it = phase.sensor_series.find(query.sensor_id);
      if (it == phase.sensor_series.end()) continue;
      for (double& v : it->second.mutable_values()) v += 1000.0;
    }
  }

  // Same scores while the cached model survives...
  EXPECT_EQ(detector_->ScorePhaseSeries(query).value(), before);
  // ...different scores once the epoch moves past the model's build stamp.
  ASSERT_TRUE(detector_->MarkDirty(machine.id).ok());
  EXPECT_NE(detector_->ScorePhaseSeries(query).value(), before);
}

TEST_F(HierarchicalDetectorTest, CacheStatsCountBuildsAndReuse) {
  const auto& machine = plant_.production.lines[0].machines[0];
  ASSERT_TRUE(detector_->FindJobOutliers(machine.id).ok());
  const DetectorCacheStats warm = detector_->cache_stats();
  EXPECT_GT(warm.misses(), 0u);

  ASSERT_TRUE(detector_->FindJobOutliers(machine.id).ok());
  const DetectorCacheStats again = detector_->cache_stats();
  // A repeated query on an unchanged epoch builds nothing new.
  EXPECT_EQ(again.misses(), warm.misses());
  EXPECT_GT(again.hits(), warm.hits());
}

TEST_F(HierarchicalDetectorTest, MarkDirtyIsScopedToTheTouchedMachine) {
  const auto& m0 = plant_.production.lines[0].machines[0];
  const auto& m1 = plant_.production.lines[0].machines[1];
  ASSERT_TRUE(detector_->ScoreJobs(m0.id).ok());
  ASSERT_TRUE(detector_->ScoreJobs(m1.id).ok());

  ASSERT_TRUE(detector_->MarkDirty(m0.id).ok());
  const DetectorCacheStats before = detector_->cache_stats();
  EXPECT_GT(before.invalidations, 0u);
  // The untouched neighbor is still served from cache...
  ASSERT_TRUE(detector_->ScoreJobs(m1.id).ok());
  EXPECT_EQ(detector_->cache_stats().misses(), before.misses());
  // ...while the dirtied machine rebuilds.
  ASSERT_TRUE(detector_->ScoreJobs(m0.id).ok());
  EXPECT_GT(detector_->cache_stats().misses(), before.misses());
}

TEST_F(HierarchicalDetectorTest, MarkDirtyUnknownEntityIsNotFound) {
  EXPECT_EQ(detector_->MarkDirty("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(detector_->Invalidate(hierarchy::ProductionLevel::kJob, "ghost")
                .code(),
            StatusCode::kNotFound);
}

TEST_F(HierarchicalDetectorTest, InvalidateAllBumpsEpoch) {
  const uint64_t before = detector_->epoch();
  detector_->InvalidateAll();
  EXPECT_GT(detector_->epoch(), before);
}

// ---- Incremental escalation ----------------------------------------------

TEST_F(HierarchicalDetectorTest, EscalateAlarmMatchesColdBatchPass) {
  const auto& machine = plant_.production.lines[0].machines[0];
  const ts::TimePoint t = machine.jobs.front().start_time;

  // Cold pass: nothing cached.
  HierarchicalDetector cold(&plant_.production);
  const auto batch = cold.FindJobOutliers(machine.id).value();

  // Warm pass: populate the cache with a full-plant sweep, dirty the one
  // machine, escalate.
  ASSERT_TRUE(detector_->FindEnvironmentOutliers("line1").ok());
  ASSERT_TRUE(detector_->FindLineOutliers("line1").ok());
  for (const auto& m : plant_.production.lines[0].machines) {
    ASSERT_TRUE(detector_->FindJobOutliers(m.id).ok());
  }
  ASSERT_TRUE(detector_->FindProductionOutliers().ok());
  ASSERT_TRUE(detector_->MarkDirty(machine.id).ok());
  const auto escalated =
      detector_->EscalateAlarm(hierarchy::ProductionLevel::kJob, machine.id, t)
          .value();

  ASSERT_EQ(escalated.findings.size(), batch.findings.size());
  for (size_t i = 0; i < batch.findings.size(); ++i) {
    EXPECT_EQ(escalated.findings[i].global_score,
              batch.findings[i].global_score);
    EXPECT_EQ(escalated.findings[i].outlierness,
              batch.findings[i].outlierness);
    EXPECT_EQ(escalated.findings[i].support, batch.findings[i].support);
    EXPECT_EQ(escalated.findings[i].origin.entity,
              batch.findings[i].origin.entity);
  }
}

TEST_F(HierarchicalDetectorTest, EscalateAlarmResolvesSensorToItsScopes) {
  const auto& machine = plant_.production.lines[0].machines[0];
  const std::string sensor = machine.id + ".bed_temp_a";
  const ts::TimePoint t = machine.jobs.front().start_time + 1.0;

  auto phase = detector_->EscalateAlarm(hierarchy::ProductionLevel::kPhase,
                                        sensor, t);
  ASSERT_TRUE(phase.ok()) << phase.status().ToString();
  EXPECT_EQ(phase->start_level, hierarchy::ProductionLevel::kPhase);

  auto job =
      detector_->EscalateAlarm(hierarchy::ProductionLevel::kJob, sensor, t);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->start_level, hierarchy::ProductionLevel::kJob);

  // An environment sensor id escalates at its line, even when asked at
  // phase level (environment channels carry no machine).
  const std::string env_sensor =
      plant_.production.lines[0].environment.front().sensor_id;
  auto env = detector_->EscalateAlarm(hierarchy::ProductionLevel::kPhase,
                                      env_sensor, t);
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  EXPECT_EQ(env->start_level, hierarchy::ProductionLevel::kEnvironment);

  EXPECT_FALSE(detector_
                   ->EscalateAlarm(hierarchy::ProductionLevel::kPhase,
                                   "ghost", t)
                   .ok());
}

// ---- cross_level_tolerance boundary ---------------------------------------

TEST_F(HierarchicalDetectorTest, EscalationJobResolutionHonorsTolerance) {
  const auto& machine = plant_.production.lines[0].machines[0];
  const std::string sensor = machine.id + ".bed_temp_a";
  // The sim leaves a 120 s gap between jobs; aim at the middle of it.
  const ts::TimePoint mid_gap = machine.jobs[0].end_time + 60.0;

  HierarchicalDetectorOptions strict;
  strict.cross_level_tolerance = 10.0;
  HierarchicalDetector strict_detector(&plant_.production, strict);
  // t is 60 s past the job's end: outside a 10 s tolerance...
  EXPECT_EQ(strict_detector
                .EscalateAlarm(hierarchy::ProductionLevel::kPhase, sensor,
                               mid_gap)
                .status()
                .code(),
            StatusCode::kNotFound);
  // ...but just inside the job under the same tolerance.
  EXPECT_TRUE(strict_detector
                  .EscalateAlarm(hierarchy::ProductionLevel::kPhase, sensor,
                                 machine.jobs[0].end_time + 5.0)
                  .ok());
  // The default 60 s tolerance covers the gap midpoint.
  EXPECT_TRUE(detector_
                  ->EscalateAlarm(hierarchy::ProductionLevel::kPhase, sensor,
                                  mid_gap)
                  .ok());
}

TEST_F(HierarchicalDetectorTest, ToleranceAboveJobGapLeaksIntoNeighbor) {
  // Documents WHY cross_level_tolerance must stay below the inter-job gap:
  // when it exceeds the gap, an alarm raised squarely inside job 1 resolves
  // to job 0 (the first job whose widened window covers t), so confirmation
  // leaks into the neighboring job. Each query is anchored by an injected
  // spike so both jobs are guaranteed to produce findings.
  auto& machine = plant_.production.lines[0].machines[0];
  const std::string sensor = machine.id + ".bed_temp_a";
  for (size_t j : {size_t{0}, size_t{1}}) {
    for (auto& phase : machine.jobs[j].phases) {
      auto it = phase.sensor_series.find(sensor);
      if (it == phase.sensor_series.end() || it->second.empty()) continue;
      it->second[it->second.size() / 2] += 1000.0;
    }
  }
  const ts::TimePoint inside_job1 = machine.jobs[1].start_time + 1.0;

  HierarchicalDetectorOptions leaky;
  leaky.cross_level_tolerance = 200.0;  // > 120 s inter-job gap
  HierarchicalDetector leaky_detector(&plant_.production, leaky);
  auto leaked = leaky_detector.EscalateAlarm(
      hierarchy::ProductionLevel::kPhase, sensor, inside_job1);
  ASSERT_TRUE(leaked.ok()) << leaked.status().ToString();
  ASSERT_FALSE(leaked->findings.empty());
  for (const auto& finding : leaked->findings) {
    EXPECT_LE(finding.origin.time, machine.jobs[0].end_time)
        << "finding escaped into the wrong job";
  }

  // With the default tolerance (below the gap) the same alarm stays in the
  // job that actually covers it.
  HierarchicalDetector bounded(&plant_.production);
  auto contained = bounded.EscalateAlarm(hierarchy::ProductionLevel::kPhase,
                                         sensor, inside_job1);
  ASSERT_TRUE(contained.ok()) << contained.status().ToString();
  ASSERT_FALSE(contained->findings.empty());
  for (const auto& finding : contained->findings) {
    EXPECT_GE(finding.origin.time, machine.jobs[1].start_time);
  }
}

}  // namespace
}  // namespace hod::core
