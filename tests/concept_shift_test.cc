#include "core/concept_shift.h"

#include <gtest/gtest.h>

#include "sim/anomaly.h"
#include "util/rng.h"

namespace hod::core {
namespace {

ts::TimeSeries NoisyLevel(double level, size_t n, uint64_t seed,
                          double sigma = 0.5) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (double& v : values) v = rng.Gaussian(level, sigma);
  return ts::TimeSeries("s", 0.0, 1.0, std::move(values));
}

TEST(ConceptShift, NoShiftOnStationarySeries) {
  auto shifts = DetectConceptShifts(NoisyLevel(10.0, 200, 1));
  ASSERT_TRUE(shifts.ok());
  EXPECT_TRUE(shifts->empty());
}

TEST(ConceptShift, FindsSingleLevelShift) {
  ts::TimeSeries series = NoisyLevel(10.0, 200, 2);
  std::vector<uint8_t> labels;
  sim::InjectionSpec spec{sim::OutlierType::kLevelShift, 120, 4.0, 0.7, 0.8};
  ASSERT_TRUE(sim::Inject(spec, series.mutable_values(), labels).ok());
  auto shifts = DetectConceptShifts(series);
  ASSERT_TRUE(shifts.ok());
  ASSERT_EQ(shifts->size(), 1u);
  EXPECT_NEAR(static_cast<double>((*shifts)[0].index), 120.0, 6.0);
  EXPECT_NEAR((*shifts)[0].after_mean - (*shifts)[0].before_mean, 4.0, 1.0);
  EXPECT_GT((*shifts)[0].magnitude_sigmas, 2.0);
}

TEST(ConceptShift, IgnoresTransientOutliers) {
  // A huge additive spike and a temporary change must not register as
  // concept shifts: the level reverts.
  ts::TimeSeries series = NoisyLevel(5.0, 250, 3);
  std::vector<uint8_t> labels;
  sim::InjectionSpec spike{sim::OutlierType::kAdditive, 80, 12.0, 0.7, 0.8};
  ASSERT_TRUE(sim::Inject(spike, series.mutable_values(), labels).ok());
  sim::InjectionSpec bump{sim::OutlierType::kTemporaryChange, 160, 6.0, 0.7,
                          0.6};
  ASSERT_TRUE(sim::Inject(bump, series.mutable_values(), labels).ok());
  auto shifts = DetectConceptShifts(series);
  ASSERT_TRUE(shifts.ok());
  EXPECT_TRUE(shifts->empty());
}

TEST(ConceptShift, FindsBothDirections) {
  ts::TimeSeries series = NoisyLevel(0.0, 320, 4);
  std::vector<uint8_t> labels;
  sim::InjectionSpec up{sim::OutlierType::kLevelShift, 100, 5.0, 0.7, 0.8};
  ASSERT_TRUE(sim::Inject(up, series.mutable_values(), labels).ok());
  sim::InjectionSpec down{sim::OutlierType::kLevelShift, 220, -5.0, 0.7, 0.8};
  ASSERT_TRUE(sim::Inject(down, series.mutable_values(), labels).ok());
  auto shifts = DetectConceptShifts(series);
  ASSERT_TRUE(shifts.ok());
  ASSERT_EQ(shifts->size(), 2u);
  EXPECT_GT((*shifts)[0].after_mean, (*shifts)[0].before_mean);
  EXPECT_LT((*shifts)[1].after_mean, (*shifts)[1].before_mean);
}

TEST(ConceptShift, SmallShiftBelowMagnitudeIgnored) {
  ts::TimeSeries series = NoisyLevel(0.0, 200, 5, /*sigma=*/1.0);
  std::vector<uint8_t> labels;
  sim::InjectionSpec spec{sim::OutlierType::kLevelShift, 100, 0.8, 0.7, 0.8};
  ASSERT_TRUE(sim::Inject(spec, series.mutable_values(), labels).ok());
  // A 0.8-sigma step plus sampling noise can graze 2 measured sigmas;
  // with a 3-sigma materiality bar it must never register.
  ConceptShiftOptions options;
  options.min_magnitude = 3.0;
  auto shifts = DetectConceptShifts(series, options);
  ASSERT_TRUE(shifts.ok());
  EXPECT_TRUE(shifts->empty());
}

TEST(ConceptShift, RejectsBadInput) {
  EXPECT_FALSE(DetectConceptShifts(NoisyLevel(0.0, 4, 6)).ok());
  ConceptShiftOptions bad;
  bad.cusum_threshold = 0.0;
  EXPECT_FALSE(DetectConceptShifts(NoisyLevel(0.0, 100, 7), bad).ok());
}

TEST(ConceptShift, TimeStampsMatchSeriesClock) {
  ts::TimeSeries series = NoisyLevel(0.0, 200, 8);
  // Give it a non-trivial clock.
  ts::TimeSeries clocked("s", 1000.0, 2.0, series.values());
  std::vector<uint8_t> labels;
  sim::InjectionSpec spec{sim::OutlierType::kLevelShift, 100, 5.0, 0.7, 0.8};
  ASSERT_TRUE(sim::Inject(spec, clocked.mutable_values(), labels).ok());
  auto shifts = DetectConceptShifts(clocked);
  ASSERT_TRUE(shifts.ok());
  ASSERT_EQ(shifts->size(), 1u);
  EXPECT_NEAR((*shifts)[0].time, 1000.0 + 2.0 * (*shifts)[0].index, 1e-9);
}

}  // namespace
}  // namespace hod::core
