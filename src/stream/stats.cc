#include "stream/stats.h"

#include <sstream>

namespace hod::stream {

void StreamStats::RecordBatch(size_t batch) {
  size_t bucket = 0;
  while ((size_t{1} << (bucket + 1)) <= batch && bucket + 1 < kBatchBuckets) {
    ++bucket;
  }
  batch_histogram_[bucket].fetch_add(1, std::memory_order_relaxed);
}

void StreamStats::UpdateShardHighWater(size_t shard, uint64_t depth) {
  if (shard >= shard_high_water_.size()) return;
  std::atomic<uint64_t>& hw = shard_high_water_[shard];
  uint64_t seen = hw.load(std::memory_order_relaxed);
  while (depth > seen &&
         !hw.compare_exchange_weak(seen, depth, std::memory_order_relaxed)) {
  }
}

StreamStatsSnapshot StreamStats::Snapshot() const {
  StreamStatsSnapshot snapshot;
  snapshot.ingested = ingested_.load(std::memory_order_relaxed);
  snapshot.scored = scored_.load(std::memory_order_relaxed);
  snapshot.rejected_queue_full =
      rejected_queue_full_.load(std::memory_order_relaxed);
  snapshot.rejected_non_finite =
      rejected_non_finite_.load(std::memory_order_relaxed);
  snapshot.rejected_unknown_sensor =
      rejected_unknown_sensor_.load(std::memory_order_relaxed);
  snapshot.rejected_level_mismatch =
      rejected_level_mismatch_.load(std::memory_order_relaxed);
  snapshot.rejected_out_of_order =
      rejected_out_of_order_.load(std::memory_order_relaxed);
  snapshot.alarms_raised = alarms_raised_.load(std::memory_order_relaxed);
  snapshot.alarms_cleared = alarms_cleared_.load(std::memory_order_relaxed);
  snapshot.shard_queue_high_water.reserve(shard_high_water_.size());
  for (const auto& hw : shard_high_water_) {
    snapshot.shard_queue_high_water.push_back(
        hw.load(std::memory_order_relaxed));
  }
  for (size_t i = 0; i < kBatchBuckets; ++i) {
    snapshot.batch_size_histogram[i] =
        batch_histogram_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

std::string StreamStatsSnapshot::ToString() const {
  std::ostringstream out;
  out << "ingested=" << ingested << " scored=" << scored
      << " dropped=" << dropped << " rejected=" << rejected_total()
      << " (queue_full=" << rejected_queue_full
      << " non_finite=" << rejected_non_finite
      << " unknown_sensor=" << rejected_unknown_sensor
      << " level_mismatch=" << rejected_level_mismatch
      << " out_of_order=" << rejected_out_of_order << ")"
      << " alarms_raised=" << alarms_raised
      << " alarms_cleared=" << alarms_cleared << "\n";
  out << "shard queue high-water:";
  for (size_t i = 0; i < shard_queue_high_water.size(); ++i) {
    out << " [" << i << "]=" << shard_queue_high_water[i];
  }
  out << "\nbatch sizes:";
  for (size_t i = 0; i < batch_size_histogram.size(); ++i) {
    if (batch_size_histogram[i] == 0) continue;
    out << " " << (size_t{1} << i) << "+:" << batch_size_histogram[i];
  }
  out << "\n";
  return out.str();
}

}  // namespace hod::stream
