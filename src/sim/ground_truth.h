#ifndef HOD_SIM_GROUND_TRUTH_H_
#define HOD_SIM_GROUND_TRUTH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hierarchy/level.h"
#include "sim/anomaly.h"
#include "timeseries/time_series.h"

namespace hod::sim {

/// One injected anomaly, with everything needed to audit a detection:
/// where in the hierarchy it lives, its Fig.-1 type, and whether it is a
/// real process disturbance (visible to all redundant sensors and
/// propagated upward into CAQ) or a single-sensor measurement error (the
/// case Algorithm 1's downward check and support value are designed to
/// expose).
struct AnomalyRecord {
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  OutlierType type = OutlierType::kAdditive;
  bool measurement_error = false;
  std::string line_id;
  std::string machine_id;
  std::string job_id;
  std::string phase_name;
  /// Affected sensor (measurement errors) or representative sensor
  /// (process anomalies); empty above the phase level.
  std::string sensor_id;
  ts::TimePoint start_time = 0.0;
  ts::TimePoint end_time = 0.0;
  double magnitude_sigmas = 0.0;
};

/// Binary labels (1 = anomalous).
using LabelVector = std::vector<uint8_t>;

/// Complete labeling of a simulated plant, at every hierarchy level.
struct GroundTruth {
  std::vector<AnomalyRecord> records;

  /// Point labels for each phase sensor series, keyed by PhaseSeriesKey.
  std::map<std::string, LabelVector> phase_labels;
  /// Point labels for environment series, keyed by sensor id.
  std::map<std::string, LabelVector> environment_labels;
  /// Job id -> 1 when the job suffered a real process anomaly.
  std::map<std::string, uint8_t> job_labels;
  /// Line id -> label per time-ordered job on that line (bad-batch
  /// windows: the production-line-level anomaly).
  std::map<std::string, LabelVector> line_job_labels;
  /// Machine id -> 1 when the machine is systematically degraded (the
  /// production-level anomaly).
  std::map<std::string, uint8_t> machine_labels;

  /// Canonical key of a phase sensor series.
  static std::string PhaseSeriesKey(const std::string& job_id,
                                    const std::string& phase_name,
                                    const std::string& sensor_id);

  /// Labels for a phase series (all-zero vector of length `size` when the
  /// series was never injected).
  LabelVector PhaseLabelsOrZero(const std::string& job_id,
                                const std::string& phase_name,
                                const std::string& sensor_id,
                                size_t size) const;

  /// Counts records at a level.
  size_t CountAtLevel(hierarchy::ProductionLevel level) const;
};

}  // namespace hod::sim

#endif  // HOD_SIM_GROUND_TRUTH_H_
