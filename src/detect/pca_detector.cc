#include "detect/pca_detector.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "timeseries/stats.h"

namespace hod::detect {

StatusOr<EigenResult> JacobiEigenSymmetric(
    const std::vector<std::vector<double>>& matrix, size_t max_sweeps) {
  const size_t n = matrix.size();
  if (n == 0) return Status::InvalidArgument("empty matrix");
  for (const auto& row : matrix) {
    if (row.size() != n) return Status::InvalidArgument("non-square matrix");
  }
  // Working copy A and accumulated rotations V (A = V^T diag V eventually).
  std::vector<std::vector<double>> a = matrix;
  std::vector<std::vector<double>> v(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) v[i][i] = 1.0;

  for (size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    // Sum of off-diagonal magnitudes: convergence criterion.
    double off = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) off += std::fabs(a[p][q]);
    }
    if (off < 1e-12) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        if (std::fabs(a[p][q]) < 1e-15) continue;
        const double theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/columns p and q of A.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a[k][p];
          const double akq = a[k][q];
          a[k][p] = c * akp - s * akq;
          a[k][q] = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a[p][k];
          const double aqk = a[q][k];
          a[p][k] = c * apk - s * aqk;
          a[q][k] = s * apk + c * aqk;
        }
        // Accumulate the rotation into V (rows are eigenvectors-to-be).
        for (size_t k = 0; k < n; ++k) {
          const double vpk = v[p][k];
          const double vqk = v[q][k];
          v[p][k] = c * vpk - s * vqk;
          v[q][k] = s * vpk + c * vqk;
        }
      }
    }
  }

  EigenResult result;
  result.values.resize(n);
  for (size_t i = 0; i < n; ++i) result.values[i] = a[i][i];
  result.vectors = std::move(v);
  // Sort descending by eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&result](size_t x, size_t y) {
    return result.values[x] > result.values[y];
  });
  EigenResult sorted;
  sorted.values.reserve(n);
  sorted.vectors.reserve(n);
  for (size_t idx : order) {
    sorted.values.push_back(result.values[idx]);
    sorted.vectors.push_back(std::move(result.vectors[idx]));
  }
  return sorted;
}

PcaDetector::PcaDetector(PcaOptions options) : options_(options) {}

Status PcaDetector::Train(const std::vector<std::vector<double>>& data) {
  if (data.size() < 2) {
    return Status::InvalidArgument("PCA needs at least 2 vectors");
  }
  if (options_.explained_variance <= 0.0 ||
      options_.explained_variance > 1.0) {
    return Status::InvalidArgument("explained_variance must be in (0,1]");
  }
  dim_ = data[0].size();
  HOD_ASSIGN_OR_RETURN(scaler_, ColumnScaler::Fit(data));
  std::vector<std::vector<double>> scaled = data;
  HOD_RETURN_IF_ERROR(scaler_.Apply(scaled));

  // Covariance of the scaled data.
  std::vector<std::vector<double>> cov(dim_, std::vector<double>(dim_, 0.0));
  for (const auto& row : scaled) {
    for (size_t i = 0; i < dim_; ++i) {
      for (size_t j = i; j < dim_; ++j) cov[i][j] += row[i] * row[j];
    }
  }
  for (size_t i = 0; i < dim_; ++i) {
    for (size_t j = i; j < dim_; ++j) {
      cov[i][j] /= static_cast<double>(scaled.size());
      cov[j][i] = cov[i][j];
    }
  }

  HOD_ASSIGN_OR_RETURN(EigenResult eigen, JacobiEigenSymmetric(cov));
  double total = 0.0;
  for (double v : eigen.values) total += std::max(v, 0.0);
  components_.clear();
  eigenvalues_.clear();
  double explained = 0.0;
  for (size_t i = 0; i < eigen.values.size(); ++i) {
    if (total > 0.0 && explained / total >= options_.explained_variance &&
        !components_.empty()) {
      break;
    }
    explained += std::max(eigen.values[i], 0.0);
    components_.push_back(std::move(eigen.vectors[i]));
    eigenvalues_.push_back(std::max(eigen.values[i], 1e-9));
  }

  // Baseline reconstruction error on training data.
  trained_ = true;
  std::vector<double> errors;
  errors.reserve(scaled.size());
  for (const auto& row : scaled) {
    // Residual norm orthogonal to the subspace.
    std::vector<double> projection(dim_, 0.0);
    for (size_t c = 0; c < components_.size(); ++c) {
      double dot = 0.0;
      for (size_t k = 0; k < dim_; ++k) dot += row[k] * components_[c][k];
      for (size_t k = 0; k < dim_; ++k) projection[k] += dot * components_[c][k];
    }
    double err = 0.0;
    for (size_t k = 0; k < dim_; ++k) {
      const double r = row[k] - projection[k];
      err += r * r;
    }
    errors.push_back(std::sqrt(err));
  }
  baseline_error_ = ts::Median(std::move(errors));
  if (baseline_error_ <= 0.0) baseline_error_ = 1e-3;
  return Status::Ok();
}

StatusOr<std::vector<double>> PcaDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].size() != dim_) {
      return Status::InvalidArgument("dimension mismatch in PCA score");
    }
    std::vector<double> row = data[i];
    HOD_RETURN_IF_ERROR(scaler_.ApplyRow(row));
    std::vector<double> projection(dim_, 0.0);
    double inside = 0.0;  // standardized in-subspace distance (T^2-like)
    for (size_t c = 0; c < components_.size(); ++c) {
      double dot = 0.0;
      for (size_t k = 0; k < dim_; ++k) dot += row[k] * components_[c][k];
      for (size_t k = 0; k < dim_; ++k) {
        projection[k] += dot * components_[c][k];
      }
      inside += dot * dot / eigenvalues_[c];
    }
    double err = 0.0;
    for (size_t k = 0; k < dim_; ++k) {
      const double r = row[k] - projection[k];
      err += r * r;
    }
    err = std::sqrt(err);
    const double rel_err = err / baseline_error_;
    const double inside_dev =
        std::sqrt(inside / static_cast<double>(components_.size()));
    // Combine: novel directions (Q statistic) or extreme aligned values
    // (T^2 statistic), whichever is stronger.
    const double q_excess = rel_err - 1.0;
    const double q_score =
        q_excess <= 0.0 ? 0.0 : q_excess / (q_excess + options_.error_scale);
    const double t_excess = inside_dev - 2.0;  // ~2 sigma inside the subspace
    const double t_score =
        t_excess <= 0.0 ? 0.0 : t_excess / (t_excess + options_.error_scale);
    scores[i] = std::max(q_score, t_score);
  }
  return scores;
}

}  // namespace hod::detect
