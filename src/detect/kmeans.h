#ifndef HOD_DETECT_KMEANS_H_
#define HOD_DETECT_KMEANS_H_

#include <cstdint>
#include <vector>

#include "util/statusor.h"

namespace hod::detect {

/// Result of Lloyd's algorithm.
struct KMeansResult {
  std::vector<std::vector<double>> centroids;
  /// Cluster index per input point.
  std::vector<size_t> assignments;
  /// Distance of each point to its centroid.
  std::vector<double> distances;
  /// Points per cluster.
  std::vector<size_t> cluster_sizes;
};

/// k-means with k-means++ seeding. `k` is reduced to data.size() when
/// larger. Errors on empty data, k == 0, or inconsistent dimensions.
/// Deterministic for a fixed seed.
StatusOr<KMeansResult> KMeans(const std::vector<std::vector<double>>& data,
                              size_t k, size_t max_iters, uint64_t seed);

/// Index of the centroid nearest to `point` and its distance.
struct NearestCentroid {
  size_t index = 0;
  double distance = 0.0;
};
StatusOr<NearestCentroid> FindNearestCentroid(
    const std::vector<std::vector<double>>& centroids,
    const std::vector<double>& point);

/// Z-normalization helper for feature matrices: returns per-column mean and
/// stddev computed on `data`, and applies them in place (stddev 0 columns
/// are left centered only).
struct ColumnScaler {
  std::vector<double> means;
  std::vector<double> stddevs;

  /// Fits on `data` (must be non-empty and rectangular).
  static StatusOr<ColumnScaler> Fit(
      const std::vector<std::vector<double>>& data);

  /// Scales rows in place; rows must have the fitted dimension.
  Status Apply(std::vector<std::vector<double>>& data) const;

  /// Scales a single row.
  Status ApplyRow(std::vector<double>& row) const;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_KMEANS_H_
