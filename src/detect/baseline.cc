#include "detect/baseline.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"
#include "util/rng.h"

namespace hod::detect {

namespace {

double ScoreDeviation(double deviation_in_mads, double slack,
                      double sigma_scale) {
  const double excess = deviation_in_mads - slack;
  return excess <= 0.0 ? 0.0 : excess / (excess + sigma_scale);
}

}  // namespace

RobustZSeriesDetector::RobustZSeriesDetector(RobustZOptions options)
    : options_(options) {}

Status RobustZSeriesDetector::Train(
    const std::vector<ts::TimeSeries>& normal) {
  std::vector<double> all;
  for (const auto& series : normal) {
    HOD_RETURN_IF_ERROR(series.Validate());
    all.insert(all.end(), series.values().begin(), series.values().end());
  }
  if (all.empty()) return Status::InvalidArgument("no training samples");
  median_ = ts::Median(all);
  mad_ = ts::Mad(all);
  if (mad_ <= 0.0) mad_ = std::max(ts::StdDev(all), 1e-9);
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> RobustZSeriesDetector::Score(
    const ts::TimeSeries& series) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(series.size(), 0.0);
  for (size_t i = 0; i < series.size(); ++i) {
    const double z = std::fabs(series[i] - median_) / mad_;
    scores[i] = ScoreDeviation(z, options_.slack, options_.sigma_scale);
  }
  return scores;
}

RobustZVectorDetector::RobustZVectorDetector(RobustZOptions options)
    : options_(options) {}

Status RobustZVectorDetector::Train(
    const std::vector<std::vector<double>>& data) {
  if (data.empty()) return Status::InvalidArgument("no training vectors");
  const size_t dim = data[0].size();
  medians_.assign(dim, 0.0);
  mads_.assign(dim, 1.0);
  for (size_t d = 0; d < dim; ++d) {
    std::vector<double> column;
    column.reserve(data.size());
    for (const auto& row : data) {
      if (row.size() != dim) {
        return Status::InvalidArgument("ragged data in robust-z train");
      }
      column.push_back(row[d]);
    }
    medians_[d] = ts::Median(column);
    mads_[d] = ts::Mad(column);
    if (mads_[d] <= 0.0) mads_[d] = std::max(ts::StdDev(column), 1e-9);
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> RobustZVectorDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].size() != medians_.size()) {
      return Status::InvalidArgument("dimension mismatch in robust-z score");
    }
    double worst = 0.0;
    for (size_t d = 0; d < medians_.size(); ++d) {
      worst = std::max(worst,
                       std::fabs(data[i][d] - medians_[d]) / mads_[d]);
    }
    scores[i] = ScoreDeviation(worst, options_.slack, options_.sigma_scale);
  }
  return scores;
}

StatusOr<std::vector<double>> RandomScoreDetector::Score(
    const ts::TimeSeries& series) const {
  // Seed mixes in the series length so different series differ but runs
  // stay deterministic.
  Rng rng(seed_ ^ (static_cast<uint64_t>(series.size()) << 17));
  std::vector<double> scores(series.size());
  for (double& s : scores) s = rng.NextDouble();
  return scores;
}

}  // namespace hod::detect
