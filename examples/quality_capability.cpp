// Quality capability: CAQ checks, process capability, and the production
// level — tying the paper's job-level CAQ anchor to cross-machine outlier
// detection.
//
// Every job ends with a CAQ check against the tolerance specification;
// per-machine Cpk over recent jobs quantifies process capability; the
// production-level detector (Algorithm 1, level 5) then flags the machine
// whose capability collapsed.

#include <cstdio>

#include "core/hierarchical_detector.h"
#include "hierarchy/caq.h"
#include "sim/plant.h"

int main() {
  using namespace hod;

  sim::PlantOptions plant_options;
  plant_options.num_lines = 1;
  plant_options.machines_per_line = 3;
  plant_options.jobs_per_machine = 16;
  plant_options.seed = 31;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.1;
  scenario.glitch_rate = 0.0;
  scenario.bad_batch_lines = 0;
  scenario.rogue_machines = 1;
  auto plant_or = sim::BuildPlant(plant_options, scenario);
  if (!plant_or.ok()) {
    std::fprintf(stderr, "%s\n", plant_or.status().ToString().c_str());
    return 1;
  }
  const sim::SimulatedPlant& plant = plant_or.value();
  const hierarchy::CaqSpecification specification =
      hierarchy::DefaultPrinterCaqSpecification();

  // Per-job CAQ verdicts.
  std::printf("=== CAQ pass/fail per machine ===\n");
  for (const auto& machine : plant.production.lines[0].machines) {
    size_t passed = 0;
    double worst_margin = 1.0;
    for (const auto& job : machine.jobs) {
      auto result = hierarchy::EvaluateCaq(specification, job.caq);
      if (!result.ok()) continue;
      if (result->pass) ++passed;
      worst_margin = std::min(worst_margin, result->worst_margin);
    }
    std::printf("  %-10s %2zu/%zu jobs in spec, worst margin %+.2f\n",
                machine.id.c_str(), passed, machine.jobs.size(),
                worst_margin);
  }

  // Process capability per machine and feature.
  std::printf("\n=== Process capability (Cpk, last 12 jobs) ===\n");
  std::printf("%-10s", "machine");
  for (const auto& limit : specification.limits()) {
    std::printf(" %-14s", limit.feature.c_str());
  }
  std::printf("\n");
  for (const auto& machine : plant.production.lines[0].machines) {
    auto report = hierarchy::MachineCapability(specification, machine, 12);
    if (!report.ok()) continue;
    std::printf("%-10s", machine.id.c_str());
    for (double cpk : report->cpk) {
      std::printf(" %-5.2f%-9s", cpk,
                  cpk >= 1.33  ? " capable"
                  : cpk >= 1.0 ? " marginal"
                               : " INCAPABLE");
    }
    std::printf("\n");
  }

  // Production-level detection confirms the capability picture.
  core::HierarchicalDetector detector(&plant.production);
  auto machine_scores = detector.ScoreMachines();
  std::printf("\n=== Production-level outlierness per machine ===\n");
  if (machine_scores.ok()) {
    for (const auto& [machine_id, score] : machine_scores.value()) {
      std::printf("  %-10s %.2f %s\n", machine_id.c_str(), score,
                  score > 0.5 ? "<-- outlier machine" : "");
    }
  }
  std::printf("\nGround truth: rogue machine = %s\n",
              plant.truth.machine_labels.begin()->first.c_str());
  return 0;
}
