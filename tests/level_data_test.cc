// Level-wise dataset extraction (Fig. 2's data shapes per level).

#include <gtest/gtest.h>

#include "hierarchy/level_data.h"
#include "sim/plant.h"

namespace hod::hierarchy {
namespace {

sim::SimulatedPlant BuildSmallPlant() {
  sim::PlantOptions plant_options;
  plant_options.num_lines = 1;
  plant_options.machines_per_line = 2;
  plant_options.jobs_per_machine = 5;
  plant_options.seed = 9;
  return sim::BuildPlant(plant_options, sim::ScenarioOptions{}).value();
}

TEST(LevelData, JobFeatureMatrixPerMachine) {
  const auto plant = BuildSmallPlant();
  const Machine& machine = plant.production.lines[0].machines[0];
  auto matrix = JobFeatureMatrix(machine);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->vectors.size(), 5u);
  EXPECT_EQ(matrix->job_ids.size(), 5u);
  // Setup (6 features) + CAQ (4 features) with prefixed names.
  EXPECT_EQ(matrix->feature_names.size(), 10u);
  EXPECT_EQ(matrix->feature_names.front().rfind("setup.", 0), 0u);
  EXPECT_EQ(matrix->feature_names.back().rfind("caq.", 0), 0u);
  for (const auto& row : matrix->vectors) {
    EXPECT_EQ(row.size(), matrix->feature_names.size());
  }
}

TEST(LevelData, JobFeatureMatrixSchemaMismatchRejected) {
  auto plant = BuildSmallPlant();
  Machine& machine = plant.production.lines[0].machines[0];
  machine.jobs[1].setup = ts::FeatureVector({"odd"}, {1.0});
  EXPECT_FALSE(JobFeatureMatrix(machine).ok());
}

TEST(LevelData, LineJobMatrixTimeOrdered) {
  const auto plant = BuildSmallPlant();
  auto matrix = JobFeatureMatrix(plant.production.lines[0]);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->vectors.size(), 10u);  // 2 machines x 5 jobs
  for (size_t j = 1; j < matrix->times.size(); ++j) {
    EXPECT_LE(matrix->times[j - 1], matrix->times[j]);
  }
}

TEST(LevelData, LineJobSeriesOnePerFeature) {
  const auto plant = BuildSmallPlant();
  auto series = LineJobSeries(plant.production.lines[0]);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 10u);  // one series per setup/CAQ feature
  for (const auto& s : *series) {
    EXPECT_EQ(s.size(), 10u);  // one sample per job
    EXPECT_GT(s.interval(), 0.0);
  }
}

TEST(LevelData, MachineSummaryMatrixOneRowPerMachine) {
  const auto plant = BuildSmallPlant();
  auto matrix = MachineSummaryMatrix(plant.production);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->machine_ids.size(), 2u);
  // 4 CAQ features x (mean, stddev) + duration mean/stddev.
  EXPECT_EQ(matrix->feature_names.size(), 10u);
}

TEST(LevelData, CollectSensorSeriesAcrossJobs) {
  const auto plant = BuildSmallPlant();
  const Machine& machine = plant.production.lines[0].machines[0];
  const std::string sensor = machine.id + ".bed_temp_a";
  const auto all = CollectSensorSeries(machine, sensor);
  EXPECT_EQ(all.size(), 5u * 5u);  // every phase of every job
  const auto printing_only = CollectSensorSeries(machine, sensor, "printing");
  EXPECT_EQ(printing_only.size(), 5u);
  EXPECT_TRUE(CollectSensorSeries(machine, "ghost").empty());
}

TEST(LevelData, FindEnvironmentSeries) {
  const auto plant = BuildSmallPlant();
  const ProductionLine& line = plant.production.lines[0];
  EXPECT_NE(FindEnvironmentSeries(line, line.id + ".room_temp"), nullptr);
  EXPECT_EQ(FindEnvironmentSeries(line, "ghost"), nullptr);
}

}  // namespace
}  // namespace hod::hierarchy
