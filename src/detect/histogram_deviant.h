#ifndef HOD_DETECT_HISTOGRAM_DEVIANT_H_
#define HOD_DETECT_HISTOGRAM_DEVIANT_H_

#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Information-theoretic deviant mining (Muthukrishnan et al. 2004) —
/// Table 1 row 21, family ITM, data type PTS.
///
/// "Detects outlier points by removing points from a sequel and measuring
/// the improvement in a histogram-based representation." Training fits an
/// equi-width histogram to the (1-D) normal data; a point's outlierness is
/// the reduction in total representation error (sum of squared in-bucket
/// deviations) achieved by deleting it, normalized by the typical
/// per-point error — points in sparse, wide-error buckets are deviants.
struct HistogramDeviantOptions {
  size_t buckets = 24;
  /// Error-reduction ratio at which outlierness reaches 0.5.
  double gain_scale = 4.0;
};

class HistogramDeviantDetector : public VectorDetector {
 public:
  explicit HistogramDeviantDetector(HistogramDeviantOptions options = {});

  std::string name() const override { return "HistogramDeviants"; }

  /// Expects 1-D vectors (the PTS shape); higher dimensions are reduced to
  /// their Euclidean norm.
  Status Train(const std::vector<std::vector<double>>& data) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

 private:
  struct Bucket {
    double lo = 0.0;
    double hi = 0.0;
    size_t count = 0;
    double mean = 0.0;
    double sse = 0.0;  // sum of squared deviations from the bucket mean
  };

  double Reduce(const std::vector<double>& row) const;
  size_t BucketOf(double v) const;

  HistogramDeviantOptions options_;
  std::vector<Bucket> buckets_;
  double lo_ = 0.0;
  double hi_ = 1.0;
  double typical_error_ = 1.0;
  size_t total_count_ = 0;
  size_t dim_ = 0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_HISTOGRAM_DEVIANT_H_
