#ifndef HOD_FLEET_MANAGER_H_
#define HOD_FLEET_MANAGER_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fleet/alert_board.h"
#include "fleet/router.h"
#include "fleet/stats.h"
#include "serve/fleet_hub.h"
#include "stream/engine.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace hod::fleet {

/// One registered plant: its engine plus immutable placement metadata.
struct PlantHandle {
  std::string plant_id;
  PlantPlacement placement;
  std::unique_ptr<stream::StreamEngine> engine;
};

/// One sensor of a plant being registered.
struct PlantSensorSpec {
  std::string sensor_id;
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  /// Per-sensor backpressure override (per-sensor-class QoS).
  std::optional<stream::BackpressurePolicy> policy;
};

struct FleetManagerOptions {
  /// Engine template applied to every plant. `executor`,
  /// `checkpoint_path`, `checkpoint_interval`, and `checkpoint_phase` are
  /// overwritten per plant by the manager.
  stream::StreamEngineOptions engine;
  /// Owned-pool sizing (used when `executor` is null). 0 worker threads
  /// selects util::ThreadPool::DefaultThreads().
  size_t pool_threads = 0;
  size_t service_threads = 1;
  /// Borrow an external pool instead of owning one. Must outlive the
  /// manager.
  util::ThreadPool* executor = nullptr;
  /// Periodic per-plant checkpointing: every plant checkpoints to
  /// `<checkpoint_dir>/<sanitized plant id>.ckpt` every
  /// `checkpoint_interval`, phase-offset by its stable hash (see
  /// CheckpointPhaseOf). Empty dir or zero interval = manual
  /// CheckpointPlant() only (with a non-empty dir arming the gate).
  std::string checkpoint_dir;
  std::chrono::milliseconds checkpoint_interval{0};
  /// Stagger resolution: plants are spread over this many phase slots
  /// within one checkpoint interval. Hash-derived, so the stagger
  /// pattern survives process restarts.
  size_t checkpoint_stagger_slots = 16;
  /// Placement slot space of the FleetRouter.
  size_t router_slots = 256;
  /// Read-side serving tier: when true the manager owns a
  /// serve::FleetHub with one SnapshotHub per plant, and every plant
  /// engine's snapshot_sink publishes into its hub. Dashboards subscribe
  /// via Serving()->Hub(plant_id)->Subscribe() and never touch an engine.
  bool enable_serving = false;
  serve::SnapshotHubOptions serving;
};

/// The multi-plant tier: owns one stream::StreamEngine per plant behind a
/// FleetRouter, all engines sharing one util::ThreadPool — so a fleet of
/// N plants costs pool-size OS threads, not N * (shards + 3). Aggregates
/// per-plant stats into a FleetStatsSnapshot and per-plant alert episodes
/// into a cross-plant FleetAlertBoard.
///
///   FleetManager fleet(options);
///   fleet.AddPlant("berlin", sensors);
///   fleet.Ingest("berlin", sample);          // any thread
///   auto board = fleet.AlertBoard();         // merged, plant-tagged
///   fleet.RemovePlant("berlin");             // drain, archive, fold
///
/// Threading: AddPlant/RemovePlant/RestorePlant serialize on an admin
/// mutex; Ingest/Flush/Stats/AlertBoard are safe from any thread.
class FleetManager {
 public:
  explicit FleetManager(FleetManagerOptions options = {});
  ~FleetManager();

  FleetManager(const FleetManager&) = delete;
  FleetManager& operator=(const FleetManager&) = delete;

  /// Registers a plant, builds its engine (sensors from `sensors`),
  /// starts it, and routes it. InvalidArgument on duplicate id.
  Status AddPlant(const std::string& plant_id,
                  const std::vector<PlantSensorSpec>& sensors);

  /// Rebuilds one plant from its checkpoint file (CheckpointPathFor) and
  /// routes it — the kill-and-restore path. Siblings keep ingesting
  /// throughout; nothing here touches another plant's engine.
  Status RestorePlant(const std::string& plant_id);

  /// Drain-on-remove: unroutes the plant (new samples stop resolving),
  /// flushes its pipeline, archives its final alert episodes on the
  /// fleet board, stops the engine, and folds its final stats into the
  /// `retired` roll-up so fleet aggregates stay monotone.
  Status RemovePlant(const std::string& plant_id);

  /// Routes one sample to its plant's engine. NotFound for unrouted ids.
  StatusOr<stream::IngestAck> Ingest(const std::string& plant_id,
                                     const stream::SensorSample& sample);

  /// Flushes one plant / every routed plant.
  Status FlushPlant(const std::string& plant_id);
  Status Flush();

  /// Checkpoints one plant to its CheckpointPathFor file, immediately.
  Status CheckpointPlant(const std::string& plant_id);

  /// Stops every engine (handles stay routed so stats/boards remain
  /// readable). Idempotent; called by the destructor before the owned
  /// pool shuts down.
  Status Stop();

  /// Fleet-wide roll-up: live plants summed + retired fold.
  FleetStatsSnapshot Stats() const;

  /// Refreshes every live plant's episodes and returns the merged,
  /// plant-tagged board.
  std::vector<FleetAlertRow> AlertBoard();

  /// Latest published EngineSnapshot of one plant (default-constructed
  /// for unknown ids).
  stream::EngineSnapshot PlantSnapshot(const std::string& plant_id) const;

  /// Health states of one plant's sensors.
  stream::SensorHealthSnapshot PlantHealth(const std::string& plant_id) const;

  /// A plant's checkpoint phase offset within the checkpoint interval:
  ///   (StableHash64(plant_id) % stagger_slots) * interval / stagger_slots
  /// Pure function of the id and the options — restarts keep the stagger.
  std::chrono::milliseconds CheckpointPhaseOf(
      const std::string& plant_id) const;

  /// `<checkpoint_dir>/<sanitized plant id>.ckpt` (empty when
  /// checkpointing is off). Sanitization maps anything outside
  /// [A-Za-z0-9._-] to '_' so arbitrary plant ids stay filesystem-safe.
  std::string CheckpointPathFor(const std::string& plant_id) const;

  PlantPlacement PlacementOf(const std::string& plant_id) const {
    return router_.Place(plant_id);
  }

  /// The fleet serving tier (nullptr unless options.enable_serving).
  serve::FleetHub* Serving() { return serving_.get(); }
  const serve::FleetHub* Serving() const { return serving_.get(); }

  size_t num_plants() const { return router_.size(); }
  std::vector<std::string> PlantIds() const { return router_.PlantIds(); }
  /// The shared executor every plant engine runs on.
  util::ThreadPool& executor() { return *pool_; }
  const FleetManagerOptions& options() const { return options_; }

 private:
  /// Per-plant engine options: the template plus executor + checkpoint
  /// wiring (path, interval, hash-derived phase).
  stream::StreamEngineOptions BuildEngineOptions(
      const std::string& plant_id) const;
  Status RemovePlantLocked(const std::string& plant_id);

  FleetManagerOptions options_;
  std::unique_ptr<util::ThreadPool> owned_pool_;
  util::ThreadPool* pool_;
  FleetRouter router_;
  FleetAlertBoard board_;
  /// Destroyed after Stop() has quiesced every engine, so no
  /// snapshot_sink can fire into a dead hub.
  std::unique_ptr<serve::FleetHub> serving_;

  /// Serializes plant admission/removal (engine construction is not
  /// cheap; racing Add/Remove on one id would be a user bug anyway).
  std::mutex admin_mu_;

  /// Fold of removed plants' final stats.
  mutable std::mutex retired_mu_;
  stream::StreamStatsSnapshot retired_;
  uint64_t removed_plants_ = 0;

  std::atomic<bool> stopped_{false};
};

}  // namespace hod::fleet

#endif  // HOD_FLEET_MANAGER_H_
