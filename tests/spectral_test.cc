#include "timeseries/spectral.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hod::ts {
namespace {

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(6, {1.0, 0.0});
  EXPECT_FALSE(Fft(data).ok());
}

TEST(Fft, RoundTripRecoversInput) {
  std::vector<std::complex<double>> data;
  for (int i = 0; i < 16; ++i) {
    data.emplace_back(std::sin(0.5 * i) + 0.1 * i, 0.0);
  }
  const auto original = data;
  ASSERT_TRUE(Fft(data).ok());
  ASSERT_TRUE(Fft(data, /*inverse=*/true).ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), 0.0, 1e-9);
  }
}

TEST(Fft, PureToneConcentratesAtItsBin) {
  const size_t n = 64;
  std::vector<double> values(n);
  const size_t tone_bin = 8;
  for (size_t i = 0; i < n; ++i) {
    values[i] = std::cos(2.0 * M_PI * static_cast<double>(tone_bin) *
                         static_cast<double>(i) / static_cast<double>(n));
  }
  const auto power = PowerSpectrum(values);
  ASSERT_EQ(power.size(), n / 2 + 1);
  size_t argmax = 0;
  for (size_t k = 1; k < power.size(); ++k) {
    if (power[k] > power[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, tone_bin);
}

TEST(Fft, ZeroPadToPow2Sizes) {
  EXPECT_EQ(ZeroPadToPow2(std::vector<double>(5, 1.0)).size(), 8u);
  EXPECT_EQ(ZeroPadToPow2(std::vector<double>(8, 1.0)).size(), 8u);
  EXPECT_EQ(ZeroPadToPow2({}, 4).size(), 4u);
}

TEST(Spectral, PowerSpectrumEmptyInput) {
  EXPECT_TRUE(PowerSpectrum({}).empty());
}

TEST(Spectral, BandEnergiesNormalized) {
  std::vector<double> values;
  for (int i = 0; i < 128; ++i) {
    values.push_back(std::sin(0.8 * i) + 0.5 * std::sin(2.1 * i));
  }
  auto bands = BandEnergies(PowerSpectrum(values), 8);
  ASSERT_TRUE(bands.ok());
  EXPECT_EQ(bands->size(), 8u);
  double total = 0.0;
  for (double e : *bands) {
    EXPECT_GE(e, 0.0);
    total += e;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Spectral, BandEnergiesRejectsZeroBands) {
  EXPECT_FALSE(BandEnergies({1.0}, 0).ok());
}

TEST(Spectral, BandEnergiesUniformOnZeroSpectrum) {
  auto bands = BandEnergies(std::vector<double>(16, 0.0), 4);
  ASSERT_TRUE(bands.ok());
  for (double e : *bands) EXPECT_DOUBLE_EQ(e, 0.25);
}

TEST(Spectral, VibrationSignatureIgnoresDcOffset) {
  std::vector<double> base;
  std::vector<double> shifted;
  for (int i = 0; i < 128; ++i) {
    const double v = std::sin(0.9 * i);
    base.push_back(v);
    shifted.push_back(v + 100.0);  // big constant offset
  }
  auto sig_a = VibrationSignature(base, 6).value();
  auto sig_b = VibrationSignature(shifted, 6).value();
  for (size_t b = 0; b < sig_a.size(); ++b) {
    EXPECT_NEAR(sig_a[b], sig_b[b], 0.05) << "band " << b;
  }
}

TEST(Spectral, SignatureSeparatesLowAndHighFrequencies) {
  std::vector<double> slow;
  std::vector<double> fast;
  for (int i = 0; i < 256; ++i) {
    slow.push_back(std::sin(0.1 * i));
    fast.push_back(std::sin(2.5 * i));
  }
  auto sig_slow = VibrationSignature(slow, 4).value();
  auto sig_fast = VibrationSignature(fast, 4).value();
  // Slow tone concentrates in band 0; fast tone in a higher band.
  EXPECT_GT(sig_slow[0], 0.8);
  EXPECT_LT(sig_fast[0], 0.2);
}

}  // namespace
}  // namespace hod::ts
