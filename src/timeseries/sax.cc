#include "timeseries/sax.h"

#include <algorithm>
#include <cmath>

#include "timeseries/stats.h"

namespace hod::ts {

StatusOr<std::vector<double>> Paa(const std::vector<double>& values,
                                  size_t frames) {
  if (frames == 0) return Status::InvalidArgument("frames must be > 0");
  if (frames > values.size()) {
    return Status::InvalidArgument("more PAA frames than samples");
  }
  std::vector<double> out(frames, 0.0);
  const size_t n = values.size();
  // Each sample contributes to the frame(s) it overlaps; with integer
  // arithmetic we assign sample i to frame i*frames/n (standard PAA for
  // n not divisible by frames).
  std::vector<size_t> counts(frames, 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t f = i * frames / n;
    out[f] += values[i];
    ++counts[f];
  }
  for (size_t f = 0; f < frames; ++f) {
    if (counts[f] > 0) out[f] /= static_cast<double>(counts[f]);
  }
  return out;
}

StatusOr<std::vector<double>> SaxBreakpoints(int alphabet_size) {
  // Equiprobable breakpoints of the standard normal for alphabets 2..10
  // (Lin et al. 2003, Table 3).
  static const std::vector<std::vector<double>> kTables = {
      /*2*/ {0.0},
      /*3*/ {-0.43, 0.43},
      /*4*/ {-0.67, 0.0, 0.67},
      /*5*/ {-0.84, -0.25, 0.25, 0.84},
      /*6*/ {-0.97, -0.43, 0.0, 0.43, 0.97},
      /*7*/ {-1.07, -0.57, -0.18, 0.18, 0.57, 1.07},
      /*8*/ {-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15},
      /*9*/ {-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22},
      /*10*/ {-1.28, -0.84, -0.52, -0.25, 0.0, 0.25, 0.52, 0.84, 1.28},
  };
  if (alphabet_size < 2 || alphabet_size > 10) {
    return Status::InvalidArgument("SAX alphabet size must be in [2, 10]");
  }
  return kTables[static_cast<size_t>(alphabet_size) - 2];
}

StatusOr<DiscreteSequence> ToSax(const std::vector<double>& values,
                                 const SaxOptions& options,
                                 const std::string& name) {
  if (values.empty()) return Status::InvalidArgument("empty series");
  HOD_ASSIGN_OR_RETURN(std::vector<double> breakpoints,
                       SaxBreakpoints(options.alphabet_size));
  // Z-normalize. Constant series map to the middle symbol.
  const double m = Mean(values);
  const double s = StdDev(values);
  std::vector<double> norm(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    norm[i] = s > 0.0 ? (values[i] - m) / s : 0.0;
  }
  std::vector<double> frames;
  if (options.word_length == 0) {
    frames = std::move(norm);
  } else {
    HOD_ASSIGN_OR_RETURN(frames, Paa(norm, options.word_length));
  }
  DiscreteSequence sequence(name, options.alphabet_size);
  for (double v : frames) {
    // Symbol = number of breakpoints below v.
    const auto it = std::upper_bound(breakpoints.begin(), breakpoints.end(), v);
    sequence.Append(static_cast<Symbol>(it - breakpoints.begin()));
  }
  return sequence;
}

std::string SaxToString(const DiscreteSequence& sequence) {
  std::string out;
  out.reserve(sequence.size());
  for (size_t i = 0; i < sequence.size(); ++i) {
    out += static_cast<char>('a' + sequence[i]);
  }
  return out;
}

}  // namespace hod::ts
