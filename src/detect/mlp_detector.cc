#include "detect/mlp_detector.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.h"

namespace hod::detect {

namespace {

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

MlpDetector::MlpDetector(MlpOptions options) : options_(options) {}

Status MlpDetector::Train(const std::vector<std::vector<double>>& data) {
  (void)data;
  return Status::FailedPrecondition(
      "NeuralNetwork is supervised; call TrainSupervised with labels");
}

Status MlpDetector::TrainSupervised(
    const std::vector<std::vector<double>>& data, const Labels& labels) {
  if (data.empty()) return Status::InvalidArgument("MLP on empty data");
  if (data.size() != labels.size()) {
    return Status::InvalidArgument("one label per vector required");
  }
  if (options_.hidden_units == 0) {
    return Status::InvalidArgument("hidden_units must be > 0");
  }
  dim_ = data[0].size();
  HOD_ASSIGN_OR_RETURN(scaler_, ColumnScaler::Fit(data));
  std::vector<std::vector<double>> x = data;
  HOD_RETURN_IF_ERROR(scaler_.Apply(x));

  // Class weights: balance anomalous vs normal loss contributions.
  size_t positives = 0;
  for (uint8_t label : labels) {
    if (label != 0) ++positives;
  }
  if (positives == 0 || positives == labels.size()) {
    return Status::InvalidArgument(
        "supervised training needs both classes present");
  }
  const double pos_weight = static_cast<double>(labels.size()) /
                            (2.0 * static_cast<double>(positives));
  const double neg_weight =
      static_cast<double>(labels.size()) /
      (2.0 * static_cast<double>(labels.size() - positives));

  // Xavier-style init.
  Rng rng(options_.seed);
  const double scale1 = 1.0 / std::sqrt(static_cast<double>(dim_));
  w1_.assign(options_.hidden_units, std::vector<double>(dim_, 0.0));
  b1_.assign(options_.hidden_units, 0.0);
  for (auto& row : w1_) {
    for (double& w : row) w = rng.Gaussian(0.0, scale1);
  }
  const double scale2 =
      1.0 / std::sqrt(static_cast<double>(options_.hidden_units));
  w2_.assign(options_.hidden_units, 0.0);
  for (double& w : w2_) w = rng.Gaussian(0.0, scale2);
  b2_ = 0.0;

  std::vector<size_t> order(x.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> hidden(options_.hidden_units);
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr =
        options_.learning_rate / (1.0 + 0.05 * static_cast<double>(epoch));
    for (size_t idx : order) {
      const double y = labels[idx] != 0 ? 1.0 : 0.0;
      const double weight = y > 0.5 ? pos_weight : neg_weight;
      const double p = Forward(x[idx], &hidden);
      // dLoss/dz_out for weighted cross-entropy with sigmoid output.
      const double delta_out = weight * (p - y);
      // Output layer update (and collect hidden deltas first).
      for (size_t h = 0; h < options_.hidden_units; ++h) {
        const double delta_h =
            delta_out * w2_[h] * (1.0 - hidden[h] * hidden[h]);  // tanh'
        w2_[h] -= lr * (delta_out * hidden[h] + options_.l2 * w2_[h]);
        for (size_t k = 0; k < dim_; ++k) {
          w1_[h][k] -= lr * (delta_h * x[idx][k] + options_.l2 * w1_[h][k]);
        }
        b1_[h] -= lr * delta_h;
      }
      b2_ -= lr * delta_out;
    }
  }
  // Final training loss for diagnostics.
  double loss = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double y = labels[i] != 0 ? 1.0 : 0.0;
    const double p = std::clamp(Forward(x[i], &hidden), 1e-9, 1.0 - 1e-9);
    loss -= y * std::log(p) + (1.0 - y) * std::log(1.0 - p);
  }
  train_loss_ = loss / static_cast<double>(x.size());
  trained_ = true;
  return Status::Ok();
}

double MlpDetector::Forward(const std::vector<double>& x,
                            std::vector<double>* hidden) const {
  double z_out = b2_;
  for (size_t h = 0; h < w1_.size(); ++h) {
    double z = b1_[h];
    for (size_t k = 0; k < dim_; ++k) z += w1_[h][k] * x[k];
    const double a = std::tanh(z);
    (*hidden)[h] = a;
    z_out += w2_[h] * a;
  }
  return Sigmoid(z_out);
}

StatusOr<std::vector<double>> MlpDetector::Score(
    const std::vector<std::vector<double>>& data) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  std::vector<double> scores(data.size(), 0.0);
  std::vector<double> hidden(options_.hidden_units);
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i].size() != dim_) {
      return Status::InvalidArgument("dimension mismatch in MLP score");
    }
    std::vector<double> row = data[i];
    HOD_RETURN_IF_ERROR(scaler_.ApplyRow(row));
    scores[i] = Forward(row, &hidden);
  }
  return scores;
}

}  // namespace hod::detect
