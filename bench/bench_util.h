#ifndef HOD_BENCH_BENCH_UTIL_H_
#define HOD_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction harness binaries: each bench prints
// the rows/series of one table or figure from the paper.

#include <cstdio>
#include <iostream>
#include <string>

#include "util/string_util.h"
#include "util/table.h"

namespace hod::bench {

/// Prints the standard experiment banner.
inline void PrintHeader(const std::string& experiment_id,
                        const std::string& title,
                        const std::string& paper_artifact) {
  std::cout << "==============================================================="
               "=================\n";
  std::cout << experiment_id << " — " << title << "\n";
  std::cout << "Reproduces: " << paper_artifact << "\n";
  std::cout << "Paper: Hoppenstedt et al., \"Towards a Hierarchical Approach "
               "for Outlier\n       Detection in Industrial Production "
               "Settings\", EDBT workshops 2019\n";
  std::cout << "==============================================================="
               "=================\n";
}

inline void PrintSection(const std::string& name) {
  std::cout << "\n--- " << name << " ---\n";
}

inline std::string Fmt(double value, int digits = 3) {
  return FormatDouble(value, digits);
}

}  // namespace hod::bench

#endif  // HOD_BENCH_BENCH_UTIL_H_
