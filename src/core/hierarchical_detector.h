#ifndef HOD_CORE_HIERARCHICAL_DETECTOR_H_
#define HOD_CORE_HIERARCHICAL_DETECTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/algorithm_selector.h"
#include "core/report.h"
#include "detect/detector.h"
#include "detect/var_detector.h"
#include "hierarchy/production.h"
#include "util/statusor.h"

namespace hod::core {

/// Tuning of Algorithm 1.
struct HierarchicalDetectorOptions {
  /// Outlierness above which an item counts as "outlier detected".
  double outlier_threshold = 0.5;
  /// Max time distance (seconds) for a corresponding sensor to support an
  /// outlier at the same level.
  double support_time_tolerance = 15.0;
  /// Max time distance (seconds) when confirming an outlier at another
  /// level. Must stay below the inter-job gap, or confirmation leaks into
  /// neighboring jobs and the global score loses its meaning.
  double cross_level_tolerance = 60.0;
  /// ChooseAlgorithm policy.
  SelectorPolicy policy = SelectorPolicy::kResolutionMatched;
};

/// Identifies a phase-level series: which sensor, in which phase of which
/// job on which machine.
struct PhaseQuery {
  std::string machine_id;
  std::string job_id;
  std::string phase_name;
  std::string sensor_id;
};

/// Accounting for the detector's epoch cache: how often trained models and
/// per-level score vectors were reused vs (re)built, and how often data
/// changes invalidated them. An escalation tier diffs two copies of this
/// to report per-run hit/miss counts.
struct DetectorCacheStats {
  /// Current data epoch (bumped by every MarkDirty/Invalidate call).
  uint64_t epoch = 1;
  /// Trained models (phase/event/multivariate detectors) built vs served
  /// from cache.
  uint64_t models_built = 0;
  uint64_t models_reused = 0;
  /// Per-level score vectors (job/line/environment/machine) built vs
  /// served from cache.
  uint64_t scores_built = 0;
  uint64_t scores_reused = 0;
  /// MarkDirty/Invalidate calls that dirtied at least one scope.
  uint64_t invalidations = 0;

  uint64_t hits() const { return models_reused + scores_reused; }
  uint64_t misses() const { return models_built + scores_built; }
};

/// The paper's Algorithm 1, FindHierarchicalOutlier(TS, LV): detect
/// outliers at a start level, compute the <global score, outlierness,
/// support> triple for each, confirm upward through the hierarchy, and
/// flag suspected measurement errors downward.
///
/// The detector owns trained per-level models, lazily built from the
/// production's own data and cached under an epoch watermark, so repeated
/// queries are cheap. When the production gains data (a new job, fresh
/// environment samples), call MarkDirty/Invalidate for the touched entity:
/// only that scope's models and score vectors are rebuilt on the next
/// query — the upward-confirmation and downward-measurement-error passes
/// keep reusing every cached neighbor. This is what makes the incremental
/// escalation path (EscalateAlarm) cheap enough to run per stream
/// snapshot instead of per batch.
class HierarchicalDetector {
 public:
  /// `production` must outlive the detector.
  HierarchicalDetector(const hierarchy::Production* production,
                       HierarchicalDetectorOptions options = {});

  /// ---- Algorithm 1 entry points (one per start level) ----------------
  StatusOr<HierarchicalOutlierReport> FindPhaseOutliers(
      const PhaseQuery& query);
  StatusOr<HierarchicalOutlierReport> FindJobOutliers(
      const std::string& machine_id);
  StatusOr<HierarchicalOutlierReport> FindEnvironmentOutliers(
      const std::string& line_id);
  StatusOr<HierarchicalOutlierReport> FindLineOutliers(
      const std::string& line_id);
  StatusOr<HierarchicalOutlierReport> FindProductionOutliers();

  /// ---- Incremental escalation entry point ----------------------------
  /// Re-evaluates Algorithm 1 for ONE flagged entity instead of a full
  /// batch pass: resolves `entity_id` (a sensor id at the phase and
  /// environment levels, a machine id at the job and production levels, a
  /// line id at the line level) to its production scope near time `t` and
  /// runs only the affected queries. All untouched neighbors are served
  /// from the epoch cache, so the marginal cost is one entity's models —
  /// this is the path a streaming tier calls when an EngineSnapshot shows
  /// a newly-raised alarm. Results are identical to the same queries in a
  /// full batch pass over the same data epoch.
  StatusOr<HierarchicalOutlierReport> EscalateAlarm(
      hierarchy::ProductionLevel level, const std::string& entity_id,
      ts::TimePoint t);

  /// ---- Epoch cache API ------------------------------------------------
  /// Invalidates everything derived from `entity_id`'s data: a machine id
  /// dirties its phase/event/multivariate models, its job scores, its
  /// line's job series and the machine summary scores; a line id dirties
  /// the line's environment and job-series scores; a sensor id resolves to
  /// its machine (or, for environment channels, its line). NotFound when
  /// the entity matches nothing.
  Status MarkDirty(const std::string& entity_id);
  /// Level-targeted invalidation: kPhase/kJob take a machine id,
  /// kEnvironment/kProductionLine a line id, kProduction invalidates all.
  Status Invalidate(hierarchy::ProductionLevel level, const std::string& id);
  /// Drops every cached model and score vector (epoch bump; entries are
  /// rebuilt lazily on the next query).
  void InvalidateAll();

  const DetectorCacheStats& cache_stats() const { return cache_stats_; }
  uint64_t epoch() const { return epoch_; }

  /// ---- Level primitives (raw scores, used by the benches) ------------
  /// Per-sample outlierness of one phase series.
  StatusOr<std::vector<double>> ScorePhaseSeries(const PhaseQuery& query);
  /// Per-event outlierness of a phase's discrete event sequence (UPA
  /// finite-state automaton trained on the machine's other phases of the
  /// same name) — the paper's "discrete value sequences" path at level 1.
  StatusOr<std::vector<double>> ScorePhaseEvents(
      const std::string& machine_id, const std::string& job_id,
      const std::string& phase_name);
  /// Joint multivariate outlierness per sample across ALL of a phase's
  /// sensor channels (vector-autoregressive model) — catches cross-channel
  /// violations that every per-sensor detector misses.
  StatusOr<std::vector<double>> ScorePhaseMultivariate(
      const std::string& machine_id, const std::string& job_id,
      const std::string& phase_name);
  /// Per-job outlierness for a machine (job execution order).
  StatusOr<std::vector<double>> ScoreJobs(const std::string& machine_id);
  /// Per-sample outlierness of a line's environment series.
  StatusOr<std::vector<double>> ScoreEnvironment(const std::string& line_id);
  /// Per-job outlierness over a line's time-ordered job series.
  StatusOr<std::vector<double>> ScoreLineJobs(const std::string& line_id);
  /// Outlierness per machine id.
  StatusOr<std::map<std::string, double>> ScoreMachines();

  const HierarchicalDetectorOptions& options() const { return options_; }
  const AlgorithmSelector& selector() const { return selector_; }

 private:
  struct TimedScore {
    std::string entity;  // job id / machine id
    ts::TimePoint start = 0.0;
    ts::TimePoint end = 0.0;
    double score = 0.0;
  };

  /// One cache entry: the value plus the epoch it was built at. Valid
  /// while `epoch >=` every dirty watermark covering its scope.
  template <typename T>
  struct Cached {
    uint64_t epoch = 0;
    T value;
  };

  /// Is an outlier visible at `level` near time `t` for the given scope?
  StatusOr<bool> VisibleAtLevel(hierarchy::ProductionLevel level,
                                const std::string& line_id,
                                const std::string& machine_id,
                                ts::TimePoint t);

  /// Runs the upward/downward recursion and support computation for one
  /// origin occurrence.
  StatusOr<OutlierFinding> BuildFinding(const LevelOutlier& origin,
                                        const std::string& line_id,
                                        const std::string& machine_id,
                                        double support,
                                        size_t corresponding_sensors);

  /// Support over corresponding sensors for a phase-level outlier.
  StatusOr<std::pair<double, size_t>> ComputePhaseSupport(
      const PhaseQuery& query, ts::TimePoint outlier_time);

  /// Cached level computations.
  StatusOr<const std::vector<TimedScore>*> JobScores(
      const std::string& machine_id);
  StatusOr<const std::vector<TimedScore>*> LineJobScores(
      const std::string& line_id);
  StatusOr<const std::vector<double>*> EnvironmentScores(
      const std::string& line_id);
  StatusOr<const std::map<std::string, double>*> MachineScores();

  StatusOr<std::string> LineOfMachine(const std::string& machine_id) const;

  /// Dirty watermarks by scope (0 = never dirtied).
  uint64_t MachineEpochFloor(const std::string& machine_id) const;
  uint64_t LineJobsEpochFloor(const std::string& line_id) const;
  uint64_t LineEnvEpochFloor(const std::string& line_id) const;
  uint64_t MachineScoresEpochFloor() const;
  void DirtyMachine(const std::string& machine_id);

  const hierarchy::Production* production_;
  HierarchicalDetectorOptions options_;
  AlgorithmSelector selector_;

  /// Phase detectors keyed by machine/sensor/phase.
  std::map<std::string, Cached<std::unique_ptr<detect::SeriesDetector>>>
      phase_detectors_;
  /// Event-sequence detectors keyed by machine/phase.
  std::map<std::string, Cached<std::unique_ptr<detect::SequenceDetector>>>
      event_detectors_;
  /// Multivariate phase models keyed by machine/phase.
  std::map<std::string, Cached<std::unique_ptr<detect::VarDetector>>>
      var_models_;
  std::map<std::string, Cached<std::vector<TimedScore>>> job_scores_;
  std::map<std::string, Cached<std::vector<TimedScore>>> line_job_scores_;
  std::map<std::string, Cached<std::vector<double>>> environment_scores_;
  Cached<std::map<std::string, double>> machine_scores_;

  /// Epoch bookkeeping.
  uint64_t epoch_ = 1;
  uint64_t all_dirty_ = 0;
  uint64_t production_dirty_ = 0;
  std::map<std::string, uint64_t> machine_dirty_;
  std::map<std::string, uint64_t> line_jobs_dirty_;
  std::map<std::string, uint64_t> line_env_dirty_;
  DetectorCacheStats cache_stats_;
};

}  // namespace hod::core

#endif  // HOD_CORE_HIERARCHICAL_DETECTOR_H_
