#include "detect/var_detector.h"

#include <algorithm>
#include <cmath>

#include "detect/ar_detector.h"  // SolveLinearSystem
#include "timeseries/stats.h"

namespace hod::detect {

VarDetector::VarDetector(VarOptions options) : options_(options) {}

Status VarDetector::CheckAligned(
    const std::vector<ts::TimeSeries>& channels) const {
  if (channels.empty()) {
    return Status::InvalidArgument("no channels");
  }
  const size_t n = channels[0].size();
  for (const ts::TimeSeries& channel : channels) {
    HOD_RETURN_IF_ERROR(channel.Validate());
    if (channel.size() != n) {
      return Status::InvalidArgument("channels are not aligned in length");
    }
  }
  return Status::Ok();
}

Status VarDetector::Train(
    const std::vector<std::vector<ts::TimeSeries>>& groups) {
  if (groups.empty()) return Status::InvalidArgument("no training groups");
  dim_ = groups[0].size();
  if (dim_ == 0) return Status::InvalidArgument("zero channels");
  for (const auto& group : groups) {
    if (group.size() != dim_) {
      return Status::InvalidArgument("inconsistent channel counts");
    }
    HOD_RETURN_IF_ERROR(CheckAligned(group));
  }

  // Per-equation least squares: for each target channel d, regress x_d[t]
  // on [1, x_1[t-1], ..., x_dim[t-1]]. The design matrix is shared.
  const size_t p = dim_ + 1;
  std::vector<std::vector<double>> ata(p, std::vector<double>(p, 0.0));
  std::vector<std::vector<double>> atb(dim_, std::vector<double>(p, 0.0));
  size_t rows = 0;
  std::vector<double> design(p);
  for (const auto& group : groups) {
    const size_t n = group[0].size();
    for (size_t t = 1; t < n; ++t) {
      design[0] = 1.0;
      for (size_t k = 0; k < dim_; ++k) design[k + 1] = group[k][t - 1];
      for (size_t i = 0; i < p; ++i) {
        for (size_t j = i; j < p; ++j) ata[i][j] += design[i] * design[j];
        for (size_t d = 0; d < dim_; ++d) {
          atb[d][i] += design[i] * group[d][t];
        }
      }
      ++rows;
    }
  }
  if (rows < p) {
    return Status::InvalidArgument("not enough samples for VAR(1) fit");
  }
  for (size_t i = 0; i < p; ++i) {
    for (size_t j = 0; j < i; ++j) ata[i][j] = ata[j][i];
    ata[i][i] += options_.ridge * static_cast<double>(rows);
  }
  a_.assign(dim_, std::vector<double>(dim_, 0.0));
  c_.assign(dim_, 0.0);
  for (size_t d = 0; d < dim_; ++d) {
    HOD_ASSIGN_OR_RETURN(std::vector<double> beta,
                         SolveLinearSystem(ata, atb[d]));
    c_[d] = beta[0];
    for (size_t k = 0; k < dim_; ++k) a_[d][k] = beta[k + 1];
  }

  // Residual scales per channel (robust).
  std::vector<std::vector<double>> residuals(dim_);
  for (const auto& group : groups) {
    const size_t n = group[0].size();
    for (size_t t = 1; t < n; ++t) {
      for (size_t d = 0; d < dim_; ++d) {
        double prediction = c_[d];
        for (size_t k = 0; k < dim_; ++k) {
          prediction += a_[d][k] * group[k][t - 1];
        }
        residuals[d].push_back(group[d][t] - prediction);
      }
    }
  }
  residual_sigma_.assign(dim_, 1.0);
  for (size_t d = 0; d < dim_; ++d) {
    double sigma = ts::Mad(residuals[d]);
    if (sigma <= 0.0) sigma = ts::StdDev(residuals[d]);
    residual_sigma_[d] = std::max(sigma, 1e-9);
  }
  trained_ = true;
  return Status::Ok();
}

StatusOr<std::vector<double>> VarDetector::ResidualZ(
    const std::vector<ts::TimeSeries>& channels) const {
  if (!trained_) return Status::FailedPrecondition("detector not trained");
  if (channels.size() != dim_) {
    return Status::InvalidArgument("channel count mismatch");
  }
  HOD_RETURN_IF_ERROR(CheckAligned(channels));
  const size_t n = channels[0].size();
  std::vector<double> z(n, 0.0);
  for (size_t t = 1; t < n; ++t) {
    double sum_sq = 0.0;
    for (size_t d = 0; d < dim_; ++d) {
      double prediction = c_[d];
      for (size_t k = 0; k < dim_; ++k) {
        prediction += a_[d][k] * channels[k][t - 1];
      }
      const double r = (channels[d][t] - prediction) / residual_sigma_[d];
      sum_sq += r * r;
    }
    z[t] = std::sqrt(sum_sq / static_cast<double>(dim_));
  }
  return z;
}

StatusOr<std::vector<double>> VarDetector::Score(
    const std::vector<ts::TimeSeries>& channels) const {
  HOD_ASSIGN_OR_RETURN(std::vector<double> z, ResidualZ(channels));
  std::vector<double> scores(z.size(), 0.0);
  for (size_t t = 0; t < z.size(); ++t) {
    const double excess = z[t] - 1.0;
    scores[t] =
        excess <= 0.0 ? 0.0 : excess / (excess + options_.sigma_scale);
  }
  return scores;
}

}  // namespace hod::detect
