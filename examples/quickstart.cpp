// Quickstart: detect outliers in a single sensor series, hierarchically.
//
// Builds a miniature production (1 line, 1 machine, a handful of jobs),
// runs Algorithm 1 from the phase level on one sensor, and prints the
// <global score, outlierness, support> triple for every finding.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/hierarchical_detector.h"
#include "sim/plant.h"

int main() {
  using namespace hod;

  // 1. Get a production. Real deployments populate hierarchy::Production
  //    from their historian; here the bundled additive-manufacturing
  //    simulator provides one with known injected anomalies.
  sim::PlantOptions plant_options;
  plant_options.num_lines = 1;
  plant_options.machines_per_line = 1;
  plant_options.jobs_per_machine = 10;
  plant_options.seed = 2026;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.3;
  scenario.glitch_rate = 0.2;
  auto plant_or = sim::BuildPlant(plant_options, scenario);
  if (!plant_or.ok()) {
    std::fprintf(stderr, "plant build failed: %s\n",
                 plant_or.status().ToString().c_str());
    return 1;
  }
  const sim::SimulatedPlant& plant = plant_or.value();

  // 2. Create the hierarchical detector over the production.
  core::HierarchicalDetector detector(&plant.production);

  // 3. Run Algorithm 1 from the phase level for one sensor in one job.
  const hierarchy::Machine& machine = plant.production.lines[0].machines[0];
  std::printf("Scanning %zu jobs of %s, sensor bed_temp_a, phase "
              "'printing'...\n\n",
              machine.jobs.size(), machine.id.c_str());
  std::printf("%-22s %-6s %-12s %-11s %-7s %s\n", "job", "t[s]",
              "outlierness", "globalScore", "support", "notes");
  for (const hierarchy::Job& job : machine.jobs) {
    core::PhaseQuery query{machine.id, job.id, "printing",
                           machine.id + ".bed_temp_a"};
    auto report_or = detector.FindPhaseOutliers(query);
    if (!report_or.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   report_or.status().ToString().c_str());
      return 1;
    }
    for (const core::OutlierFinding& finding : report_or->findings) {
      std::printf("%-22s %-6.0f %-12.2f %-11d %-7.2f %s%s\n",
                  job.id.c_str(), finding.origin.time, finding.outlierness,
                  finding.global_score, finding.support,
                  std::string(core::AlertSeverityName(
                      core::ClassifyAlert(finding))).c_str(),
                  finding.measurement_error_warning
                      ? "  [suspected measurement error]"
                      : "");
    }
  }

  // 4. Cross-check against the simulator's ground truth.
  std::printf("\nGround truth (injected by the simulator):\n");
  for (const sim::AnomalyRecord& record : plant.truth.records) {
    if (record.sensor_id != machine.id + ".bed_temp_a" ||
        record.phase_name != "printing") {
      continue;
    }
    std::printf("  t=%-7.0f %-18s %s\n", record.start_time,
                std::string(sim::OutlierTypeName(record.type)).c_str(),
                record.measurement_error ? "measurement glitch (sensor _a "
                                           "only)"
                                         : "process anomaly (both sensors)");
  }
  return 0;
}
