#ifndef HOD_TIMESERIES_DISCRETE_SEQUENCE_H_
#define HOD_TIMESERIES_DISCRETE_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/statusor.h"

namespace hod::ts {

/// Symbol identifier within a Vocabulary.
using Symbol = int32_t;

/// Maps between symbol labels ("HEATING", "IDLE", SAX letters, ...) and the
/// dense integer ids used by sequence detectors (FSA, HMM, dictionaries).
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `label`, interning it on first use.
  Symbol Intern(const std::string& label);

  /// Id of `label`, or NotFound when never interned.
  StatusOr<Symbol> Lookup(const std::string& label) const;

  /// Label of `id`, or OutOfRange.
  StatusOr<std::string> LabelOf(Symbol id) const;

  size_t size() const { return labels_.size(); }

 private:
  std::unordered_map<std::string, Symbol> by_label_;
  std::vector<std::string> labels_;
};

/// A discrete value sequence — the paper's second phase-level data shape
/// ("discrete value sequences ... made of labels"). Symbols index into an
/// external Vocabulary; alphabet_size bounds the ids.
class DiscreteSequence {
 public:
  DiscreteSequence(std::string name, int alphabet_size);
  DiscreteSequence(std::string name, int alphabet_size,
                   std::vector<Symbol> symbols);

  const std::string& name() const { return name_; }
  int alphabet_size() const { return alphabet_size_; }

  size_t size() const { return symbols_.size(); }
  bool empty() const { return symbols_.empty(); }
  const std::vector<Symbol>& symbols() const { return symbols_; }

  Symbol operator[](size_t i) const { return symbols_[i]; }
  Symbol& mutable_symbol(size_t i) { return symbols_[i]; }

  void Append(Symbol s) { symbols_.push_back(s); }

  /// Copies symbols [begin, end) into a new sequence.
  StatusOr<DiscreteSequence> Slice(size_t begin, size_t end) const;

  /// OK when all symbols are in [0, alphabet_size).
  Status Validate() const;

 private:
  std::string name_;
  int alphabet_size_;
  std::vector<Symbol> symbols_;
};

/// All length-`n` contiguous windows of `symbols` (empty when n == 0 or
/// n > symbols.size()).
std::vector<std::vector<Symbol>> SymbolWindows(
    const std::vector<Symbol>& symbols, size_t n);

}  // namespace hod::ts

#endif  // HOD_TIMESERIES_DISCRETE_SEQUENCE_H_
