#ifndef HOD_CORE_BOCPD_H_
#define HOD_CORE_BOCPD_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/concept_shift.h"
#include "util/status.h"

namespace hod::core {

/// Tuning for the Bayesian online changepoint detector (Adams & MacKay
/// 2007) with a Normal-Gamma conjugate observation model. Defaults are
/// sized for per-sensor streaming: ~1 KiB of state, O(max_run_length)
/// work per sample, no allocation after construction.
struct BocpdOptions {
  /// Expected run length between changepoints; hazard = 1/lambda per
  /// step (geometric prior).
  double hazard_lambda = 250.0;
  /// Run-length posterior truncation: buckets beyond this merge into the
  /// oldest bucket (weights add, longest-run stats kept), keeping memory
  /// and per-sample cost constant.
  size_t max_run_length = 64;
  /// Samples to observe before any shift may confirm — the posterior
  /// needs an established pre-regime to compare against.
  uint64_t warmup = 32;
  /// A shift confirms only once the posterior concentrates on run
  /// lengths <= this (the "recent changepoint" region).
  size_t min_run_for_shift = 8;
  /// Posterior mass required on that region to confirm.
  double shift_posterior = 0.8;
  /// Level change, in pre-shift sigmas, below which a shift is ignored
  /// (setpoint jitter, not a regime change).
  double min_magnitude_sigmas = 3.0;
  /// Samples after a confirmed shift during which no new shift may
  /// confirm (the fresh posterior needs to re-establish a regime).
  uint64_t cooldown = 64;
  /// Normal-Gamma prior: mu ~ N(prior_mean, 1/(kappa*tau)),
  /// tau ~ Gamma(alpha, beta). `prior_mean` is overridden by the first
  /// observed sample (empirical seeding) so absolute data scale does not
  /// bias changepoint probabilities.
  double prior_kappa = 1.0;
  double prior_alpha = 1.0;
  double prior_beta = 1.0;
  double prior_mean = 0.0;
};

/// A confirmed online changepoint: the batch-pass `ConceptShift` record
/// plus the run-length evidence only the online posterior can provide.
struct BocpdShift {
  /// index = samples seen when confirmed; before/after level estimates
  /// and magnitude in pre-shift sigmas.
  ConceptShift shift;
  /// Residual scale of the post-shift regime (Normal-Gamma posterior
  /// sqrt(beta/alpha) of the winning recent bucket).
  double after_sigma = 1.0;
  /// MAP run length at confirmation — samples since the changepoint.
  size_t run_length = 0;
  /// Posterior mass on run lengths <= min_run_for_shift at confirmation.
  double evidence = 0.0;
};

/// Checkpointable detector state (format unit for engine checkpoint v5).
/// All vectors share one length (the live bucket count).
struct BocpdState {
  std::vector<double> weight;
  std::vector<double> mu;
  std::vector<double> kappa;
  std::vector<double> alpha;
  std::vector<double> beta;
  /// Run length of bucket 0 (buckets are contiguous: bucket i has run
  /// length base_run + i... except bucket 0 which is always the r=0
  /// "changepoint just happened" bucket; see implementation notes).
  std::vector<uint64_t> run_length;
  uint64_t samples_seen = 0;
  uint64_t shifts_confirmed = 0;
  uint64_t cooldown_left = 0;
  bool prior_seeded = false;
  double prior_mean = 0.0;
  double stable_mean = 0.0;
  double stable_sigma = 1.0;
  uint64_t stable_support = 0;
};

/// Bayesian online changepoint detection over one scalar channel.
///
/// Each accepted sample updates a truncated run-length posterior: bucket
/// r carries the probability that the current regime started r samples
/// ago, together with the Normal-Gamma sufficient statistics of the
/// samples it spans. The predictive for each bucket is a Student-t; a
/// geometric hazard moves mass to r=0. When the posterior concentrates
/// on short run lengths AND the implied level change clears the
/// magnitude gate, `Push` returns a confirmed `BocpdShift` exactly once
/// and the posterior collapses onto the post-shift regime (auto-rebase +
/// cooldown), so a single physical setpoint change can never confirm
/// twice.
///
/// Deterministic: double arithmetic only, identical results for
/// identical sample sequences on any thread/backend.
class BocpdDetector {
 public:
  explicit BocpdDetector(BocpdOptions options = {});

  /// Feeds one sample; returns the confirmed shift, if this sample
  /// confirmed one.
  std::optional<BocpdShift> Push(double value);

  /// Probability mass currently on run lengths <= min_run_for_shift.
  double shift_mass() const;
  /// MAP run length of the posterior.
  size_t map_run_length() const;
  uint64_t samples_seen() const { return samples_seen_; }
  uint64_t shifts_confirmed() const { return shifts_confirmed_; }
  const BocpdOptions& options() const { return options_; }

  BocpdState SaveState() const;
  /// Restores a saved posterior. Rejects malformed states (length
  /// mismatches, non-finite or non-positive weights/parameters).
  Status RestoreState(const BocpdState& state);

 private:
  /// Collapses the posterior to a single bucket at the given regime
  /// (used on confirm; also the seeded-restart primitive).
  void Rebase(double mean, double kappa, double alpha, double beta,
              uint64_t run_length);

  BocpdOptions options_;
  // Parallel bucket arrays, index 0 .. buckets-1. weight_ sums to 1.
  std::vector<double> weight_;
  std::vector<double> mu_;
  std::vector<double> kappa_;
  std::vector<double> alpha_;
  std::vector<double> beta_;
  std::vector<uint64_t> run_length_;
  // Scratch for the grow step (avoids per-sample allocation).
  std::vector<double> next_weight_;
  std::vector<double> next_mu_;
  std::vector<double> next_kappa_;
  std::vector<double> next_alpha_;
  std::vector<double> next_beta_;
  std::vector<uint64_t> next_run_length_;

  uint64_t samples_seen_ = 0;
  uint64_t shifts_confirmed_ = 0;
  uint64_t cooldown_left_ = 0;
  bool prior_seeded_ = false;
  double prior_mean_ = 0.0;
  // Last established regime (MAP bucket with a long run): the "before"
  // side of a confirmed shift.
  double stable_mean_ = 0.0;
  double stable_sigma_ = 1.0;
  uint64_t stable_support_ = 0;
};

}  // namespace hod::core

#endif  // HOD_CORE_BOCPD_H_
