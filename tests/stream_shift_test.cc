#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/baseline_lifecycle.h"
#include "core/batch_monitor.h"
#include "core/monitor.h"
#include "core/report.h"
#include "sim/fault_injector.h"
#include "stream/engine.h"
#include "util/rng.h"

namespace hod::stream {
namespace {

using hierarchy::ProductionLevel;

/// Stationary Gaussian stream around `level`.
std::vector<double> MakeFlatStream(uint64_t seed, size_t n, double level,
                                   double sigma) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    values.push_back(level + rng.Gaussian(0.0, sigma));
  }
  return values;
}

StreamEngineOptions ShiftOptions(bool synchronous = true) {
  StreamEngineOptions options;
  options.synchronous = synchronous;
  options.monitor.warmup = 64;
  options.shift.enabled = true;
  return options;
}

size_t CountShiftFindings(const StreamEngine& engine) {
  size_t count = 0;
  for (const core::OutlierFinding& finding : engine.Findings()) {
    if (finding.kind == core::FindingKind::kConceptShift) ++count;
  }
  return count;
}

/// Feeds a flat stream through a level-shift injector into the engine.
void RunShiftedTrace(StreamEngine& engine, sim::FaultInjector& injector,
                     const std::string& sensor_id,
                     const std::vector<double>& values) {
  for (size_t t = 0; t < values.size(); ++t) {
    SensorSample clean{sensor_id, ProductionLevel::kPhase,
                       static_cast<double>(t), values[t]};
    for (const SensorSample& sample : injector.Apply(clean)) {
      auto ack = engine.Ingest(sample);
      ASSERT_TRUE(ack.ok()) << "t=" << t << ": " << ack.status().ToString();
    }
  }
}

TEST(StreamShift, InjectedLevelShiftEmitsExactlyOneFindingAndEndsAlarms) {
  StreamEngine engine(ShiftOptions());
  ASSERT_TRUE(engine.AddSensor("m1.t", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());

  sim::FaultInjector injector;
  ASSERT_TRUE(injector.AddLevelShift("m1.t", 400.0, 1e6, 6.0).ok());
  const std::vector<double> values = MakeFlatStream(11, 800, 55.0, 0.25);
  RunShiftedTrace(engine, injector, "m1.t", values);
  ASSERT_TRUE(engine.Flush().ok());

  // Exactly one process-board row for the setpoint change...
  EXPECT_EQ(CountShiftFindings(engine), 1u);
  const StreamStatsSnapshot stats = engine.stats();
  EXPECT_EQ(stats.concept_shifts, 1u);
  EXPECT_EQ(stats.baseline_resets, 1u);
  EXPECT_EQ(stats.baseline_resets_deferred, 0u);

  // ...and no standing alarm: the old-baseline alarm was retracted and
  // the re-baselined monitor accepts the new regime.
  const EngineSnapshot snapshot = engine.Snapshot();
  EXPECT_TRUE(snapshot.active_alarms.empty());
  EXPECT_EQ(snapshot.concept_shifts_total, 1u);
  ASSERT_EQ(snapshot.concept_shifts.size(), 1u);
  EXPECT_EQ(snapshot.concept_shifts[0].sensor_id, "m1.t");
  EXPECT_NEAR(snapshot.concept_shifts[0].before_mean, 55.0, 0.5);
  EXPECT_GT(snapshot.concept_shifts[0].after_mean, 57.0);
  EXPECT_GE(snapshot.concept_shifts[0].magnitude_sigmas, 3.0);
  // Detection delay against the injector's ground truth.
  ASSERT_EQ(injector.GroundTruth().size(), 1u);
  EXPECT_GE(snapshot.concept_shifts[0].ts, 400.0);
  EXPECT_LE(snapshot.concept_shifts[0].ts - 400.0, 32.0)
      << "shift confirmed too slowly";
  ASSERT_TRUE(engine.Stop().ok());
}

TEST(StreamShift, ShiftFreeTraceNeverRebaselines) {
  StreamEngine engine(ShiftOptions());
  ASSERT_TRUE(engine.AddSensor("m1.t", ProductionLevel::kPhase).ok());
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<double> values = MakeFlatStream(29, 2000, 42.0, 0.5);
  for (size_t t = 0; t < values.size(); ++t) {
    ASSERT_TRUE(engine
                    .Ingest({"m1.t", ProductionLevel::kPhase,
                             static_cast<double>(t), values[t]})
                    .ok());
  }
  ASSERT_TRUE(engine.Stop().ok());
  EXPECT_EQ(engine.stats().concept_shifts, 0u);
  EXPECT_EQ(engine.stats().baseline_resets, 0u);
  EXPECT_EQ(CountShiftFindings(engine), 0u);
}

TEST(StreamShift, ThreadedMatchesSynchronousOnShiftTrace) {
  const std::vector<double> values = MakeFlatStream(17, 800, 20.0, 0.3);

  auto run = [&](bool synchronous) {
    StreamEngineOptions options = ShiftOptions(synchronous);
    options.num_shards = 2;
    StreamEngine engine(options);
    EXPECT_TRUE(engine.AddSensor("a.t", ProductionLevel::kPhase).ok());
    EXPECT_TRUE(engine.AddSensor("b.t", ProductionLevel::kPhase).ok());
    EXPECT_TRUE(engine.Start().ok());
    sim::FaultInjector injector;
    EXPECT_TRUE(injector.AddLevelShift("a.t", 400.0, 1e6, -5.0).ok());
    for (size_t t = 0; t < values.size(); ++t) {
      for (const char* id : {"a.t", "b.t"}) {
        SensorSample clean{id, ProductionLevel::kPhase,
                           static_cast<double>(t), values[t]};
        for (const SensorSample& sample : injector.Apply(clean)) {
          EXPECT_TRUE(engine.Ingest(sample).ok());
        }
      }
    }
    EXPECT_TRUE(engine.Flush().ok());
    EXPECT_TRUE(engine.Stop().ok());
    return std::tuple(engine.stats().concept_shifts,
                      engine.stats().baseline_resets, CountShiftFindings(engine),
                      engine.Snapshot().concept_shifts_total);
  };

  const auto sync_result = run(true);
  const auto threaded_result = run(false);
  EXPECT_EQ(std::get<0>(sync_result), 1u);
  EXPECT_EQ(sync_result, threaded_result)
      << "threaded concept-shift accounting diverged from synchronous";
}

TEST(StreamShift, LaneCacheDoesNotChangeScores) {
  const std::vector<double> values = MakeFlatStream(23, 600, 30.0, 0.4);

  auto run = [&](bool lane_cache) {
    StreamEngineOptions options = ShiftOptions(true);
    options.lane_cache = lane_cache;
    StreamEngine engine(options);
    EXPECT_TRUE(engine.AddSensor("s1", ProductionLevel::kPhase).ok());
    EXPECT_TRUE(engine.Start().ok());
    sim::FaultInjector injector;
    EXPECT_TRUE(injector.AddLevelShift("s1", 300.0, 1e6, 4.0).ok());
    std::vector<double> scores;
    for (size_t t = 0; t < values.size(); ++t) {
      SensorSample clean{"s1", ProductionLevel::kPhase,
                         static_cast<double>(t), values[t]};
      for (const SensorSample& sample : injector.Apply(clean)) {
        auto ack = engine.Ingest(sample);
        EXPECT_TRUE(ack.ok());
        if (ack.ok() && ack->update.has_value()) {
          scores.push_back(ack->update->score);
        }
      }
    }
    EXPECT_TRUE(engine.Stop().ok());
    return std::pair(std::move(scores), engine.stats().concept_shifts);
  };

  const auto with_cache = run(true);
  const auto without_cache = run(false);
  EXPECT_EQ(with_cache.second, 1u);
  EXPECT_EQ(without_cache.second, 1u);
  ASSERT_EQ(with_cache.first.size(), without_cache.first.size());
  for (size_t i = 0; i < with_cache.first.size(); ++i) {
    EXPECT_EQ(with_cache.first[i], without_cache.first[i]) << "i=" << i;
  }
}

TEST(StreamShift, QuarantineTimingUnchangedByShiftLayer) {
  // The concept-shift layer must not perturb the health FSM: identical
  // fault evidence must produce identical transitions at identical
  // timestamps whether or not BOCPD is running.
  const std::vector<double> values = MakeFlatStream(37, 900, 60.0, 0.3);

  auto run = [&](bool shift_enabled) {
    StreamEngineOptions options = ShiftOptions(true);
    options.shift.enabled = shift_enabled;
    options.health.suspect_after = 4;
    options.health.quarantine_after = 16;
    options.health.recovery_clean_streak = 32;
    StreamEngine engine(options);
    EXPECT_TRUE(engine.AddSensor("s1", ProductionLevel::kPhase).ok());
    EXPECT_TRUE(engine.Start().ok());
    sim::FaultInjector injector;
    sim::FaultProfile nan_burst;
    nan_burst.kind = sim::FaultKind::kNaNBurst;
    nan_burst.start = 500.0;
    nan_burst.duration = 60.0;
    EXPECT_TRUE(injector.AddFault("s1", nan_burst).ok());
    EXPECT_TRUE(injector.AddLevelShift("s1", 300.0, 1e6, 6.0).ok());
    for (size_t t = 0; t < values.size(); ++t) {
      SensorSample clean{"s1", ProductionLevel::kPhase,
                         static_cast<double>(t), values[t]};
      for (const SensorSample& sample : injector.Apply(clean)) {
        (void)engine.Ingest(sample);  // NaNs are rejected by design
      }
    }
    EXPECT_TRUE(engine.Stop().ok());
    return std::pair(engine.HealthTransitions(),
                     engine.stats().concept_shifts);
  };

  const auto with_shift = run(true);
  const auto without_shift = run(false);
  EXPECT_EQ(with_shift.second, 1u);
  EXPECT_EQ(without_shift.second, 0u);
  ASSERT_EQ(with_shift.first.size(), without_shift.first.size());
  bool saw_quarantine = false;
  for (size_t i = 0; i < with_shift.first.size(); ++i) {
    EXPECT_EQ(with_shift.first[i].from, without_shift.first[i].from);
    EXPECT_EQ(with_shift.first[i].to, without_shift.first[i].to);
    EXPECT_EQ(with_shift.first[i].ts, without_shift.first[i].ts);
    if (with_shift.first[i].to == SensorHealthState::kQuarantined) {
      saw_quarantine = true;
    }
  }
  EXPECT_TRUE(saw_quarantine) << "the NaN burst must quarantine";
}

TEST(StreamShift, BankDefersConceptShiftResetWhileFrozen) {
  // The unit-level pin of the lifecycle contract the quarantine path
  // relies on: a concept-shift reset landing on a frozen lane parks as
  // pending (no early thaw, no model change) and installs its seed only
  // when the freeze owner thaws — so recovery resumes from the
  // post-shift posterior, not the stale pre-shift baseline.
  core::BatchMonitorBank bank;
  ASSERT_TRUE(bank.AddSensor("a").ok());
  ASSERT_TRUE(bank.AddSensor("b").ok());
  Rng rng(41);
  for (size_t t = 0; t < 200; ++t) {
    const double v = 10.0 + rng.Gaussian(0.0, 0.5);
    ASSERT_TRUE(bank.Push(0, v).ok());
    ASSERT_TRUE(bank.Push(1, v).ok());
  }
  ASSERT_TRUE(bank.model_ready(0));

  bank.FreezeBaselineLane(0, core::BaselineActor::kHealthQuarantine);
  EXPECT_TRUE(bank.baseline_frozen(0));

  core::BaselineSeed seed;
  seed.level = 16.0;
  seed.sigma = 0.5;
  seed.support = 12;
  bank.ResetBaselineLane(0, core::BaselineActor::kConceptShift, seed);
  // Deferred: still frozen, epoch unchanged, model untouched.
  EXPECT_TRUE(bank.baseline_frozen(0));
  EXPECT_EQ(bank.baseline_epoch(0), 0u);
  EXPECT_TRUE(bank.model_ready(0));

  // Sibling lane is completely undisturbed.
  EXPECT_FALSE(bank.baseline_frozen(1));
  EXPECT_EQ(bank.baseline_epoch(1), 0u);

  // Thaw applies the parked seed: epoch bumps, and the lane scores
  // against the post-shift level immediately (seeded, not re-warming).
  EXPECT_TRUE(bank.ThawBaselineLane(0, core::BaselineActor::kHealthQuarantine));
  EXPECT_FALSE(bank.baseline_frozen(0));
  EXPECT_EQ(bank.baseline_epoch(0), 1u);
  EXPECT_TRUE(bank.model_ready(0));
  auto update = bank.Push(0, 16.0);
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(update->model_ready);
  EXPECT_LT(update->score, 0.5)
      << "seeded baseline must predict the post-shift level";

  // A second thaw with nothing pending is a no-op.
  bank.FreezeBaselineLane(0, core::BaselineActor::kHealthQuarantine);
  EXPECT_FALSE(
      bank.ThawBaselineLane(0, core::BaselineActor::kHealthQuarantine));
}

TEST(StreamShift, MonitorLifecycleMatchesBankSemantics) {
  core::OnlineMonitor monitor;
  Rng rng(43);
  for (size_t t = 0; t < 200; ++t) {
    ASSERT_TRUE(monitor.Push(5.0 + rng.Gaussian(0.0, 0.2)).ok());
  }
  EXPECT_EQ(monitor.baseline_epoch(), 0u);

  monitor.FreezeBaseline(core::BaselineActor::kGroupOutage);
  core::BaselineSeed first{8.0, 0.2, 4};
  core::BaselineSeed second{9.0, 0.3, 6};
  monitor.ResetBaseline(core::BaselineActor::kConceptShift, first);
  monitor.ResetBaseline(core::BaselineActor::kConceptShift, second);
  EXPECT_EQ(monitor.baseline_epoch(), 0u);
  // Last writer wins among deferred resets.
  EXPECT_TRUE(monitor.ThawBaseline(core::BaselineActor::kGroupOutage));
  EXPECT_EQ(monitor.baseline_epoch(), 1u);
  auto update = monitor.Push(9.0);
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(update->model_ready);
  EXPECT_LT(update->score, 0.5);

  // An unfrozen reset applies immediately; unseeded goes back to warmup.
  monitor.ResetBaseline(core::BaselineActor::kOperator, std::nullopt);
  EXPECT_EQ(monitor.baseline_epoch(), 2u);
  EXPECT_FALSE(monitor.model_ready());
}

}  // namespace
}  // namespace hod::stream
