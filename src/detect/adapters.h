#ifndef HOD_DETECT_ADAPTERS_H_
#define HOD_DETECT_ADAPTERS_H_

#include <memory>
#include <vector>

#include "detect/detector.h"
#include "timeseries/sax.h"

namespace hod::detect {

/// Adapters that lift a detector from its native data shape onto another —
/// how the same Table-1 technique serves several PTS/SSQ/TSS columns.
/// Each adapter owns the wrapped detector and forwards supervision by
/// translating labels to the wrapped granularity (a derived item is
/// anomalous when any covered original item is).

/// SequenceDetector -> SeriesDetector via SAX discretization. Per-symbol
/// scores map 1:1 back onto samples (word_length is forced to 0 so the
/// symbol sequence has the series' length).
std::unique_ptr<SeriesDetector> MakeSeriesFromSequence(
    std::unique_ptr<SequenceDetector> inner, ts::SaxOptions sax_options);

/// VectorDetector -> SeriesDetector via sliding-window features. Window
/// scores are spread back to samples by max over covering windows.
std::unique_ptr<SeriesDetector> MakeSeriesFromVectorWindows(
    std::unique_ptr<VectorDetector> inner, size_t window, size_t stride);

/// VectorDetector -> SeriesDetector treating each sample as a point. With
/// `include_phase` the vector is [phase_fraction, value] (position within
/// the series as a pseudo-dimension, which OLAP-style detectors cube on);
/// otherwise it is the 1-D [value].
std::unique_ptr<SeriesDetector> MakeSeriesFromVectorPoints(
    std::unique_ptr<VectorDetector> inner, bool include_phase);

/// VectorDetector -> SequenceDetector: symbol windows become numeric
/// vectors (one coordinate per position).
std::unique_ptr<SequenceDetector> MakeSequenceFromVector(
    std::unique_ptr<VectorDetector> inner, size_t window);

/// SequenceDetector -> VectorDetector for PTS inputs: each 1-D point is
/// quantized into `alphabet` quantile bins (fit on training data) and the
/// point stream is scored as one long sequence.
std::unique_ptr<VectorDetector> MakeVectorFromSequence(
    std::unique_ptr<SequenceDetector> inner, int alphabet);

/// SeriesDetector -> VectorDetector for PTS inputs: the point stream
/// (1-D rows, or row norms for higher dimensions) is treated as one
/// index-ordered series.
std::unique_ptr<VectorDetector> MakeVectorFromSeries(
    std::unique_ptr<SeriesDetector> inner);

}  // namespace hod::detect

#endif  // HOD_DETECT_ADAPTERS_H_
