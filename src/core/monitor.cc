#include "core/monitor.h"

#include <algorithm>
#include <cmath>

#include "detect/ar_detector.h"
#include "timeseries/stats.h"
#include "timeseries/time_series.h"

namespace hod::core {

OnlineMonitor::OnlineMonitor(OnlineMonitorOptions options)
    : options_(options) {
  warmup_buffer_.reserve(options_.warmup);
}

Status OnlineMonitor::FitModel() {
  detect::ArOptions ar_options;
  ar_options.order = options_.ar_order;
  detect::ArDetector fitter(ar_options);
  ts::TimeSeries warmup("warmup", 0.0, 1.0, warmup_buffer_);
  HOD_RETURN_IF_ERROR(fitter.Train({warmup}));
  phi_ = fitter.coefficients();
  intercept_ = fitter.intercept();
  residual_sigma_ = std::max(fitter.residual_sigma(), 1e-9);
  // Seed the prediction window with the last samples of the warmup.
  recent_.assign(warmup_buffer_.end() - options_.ar_order,
                 warmup_buffer_.end());
  model_ready_ = true;
  return Status::Ok();
}

double OnlineMonitor::Predict() const {
  double prediction = intercept_;
  // recent_ holds the last `order` samples, most recent at the back.
  for (size_t k = 0; k < phi_.size(); ++k) {
    prediction += phi_[k] * recent_[recent_.size() - 1 - k];
  }
  return prediction;
}

StatusOr<MonitorUpdate> OnlineMonitor::Push(double sample) {
  if (!std::isfinite(sample)) {
    return Status::InvalidArgument("non-finite sample");
  }
  ++samples_seen_;
  MonitorUpdate update;

  if (!model_ready_) {
    warmup_buffer_.push_back(sample);
    if (warmup_buffer_.size() >= options_.warmup) {
      HOD_RETURN_IF_ERROR(FitModel());
    }
    update.model_ready = model_ready_;
    return update;
  }

  const double residual = sample - Predict();
  const double z = std::fabs(residual) / residual_sigma_;
  const double excess = z - 1.0;
  update.score =
      excess <= 0.0 ? 0.0 : excess / (excess + options_.sigma_scale);
  update.model_ready = true;

  // Slow scale adaptation on non-alarming residuals only (alarming ones
  // would inflate the scale and mask the fault).
  if (update.score <= options_.threshold &&
      options_.scale_forgetting < 1.0) {
    const double alpha = 1.0 - options_.scale_forgetting;
    residual_sigma_ = std::sqrt(
        (1.0 - alpha) * residual_sigma_ * residual_sigma_ +
        alpha * residual * residual);
    residual_sigma_ = std::max(residual_sigma_, 1e-9);
  }

  // Hysteresis.
  if (update.score > options_.threshold) {
    ++above_streak_;
    below_streak_ = 0;
    if (!alarm_ && above_streak_ >= options_.raise_after) {
      alarm_ = true;
      update.alarm_raised = true;
      ++alarms_raised_;
    }
  } else {
    ++below_streak_;
    above_streak_ = 0;
    if (alarm_ && below_streak_ >= options_.clear_after) {
      alarm_ = false;
      update.alarm_cleared = true;
    }
  }
  update.alarm = alarm_;

  // Anomaly correction (Hill & Minsker): an alarming sample would poison
  // the next `order` predictions if it entered the regression window, so
  // the model's own forecast takes its place there. The raw sample still
  // produced the score above — only the window is protected.
  const double window_sample =
      update.score > options_.threshold ? Predict() : sample;
  recent_.push_back(window_sample);
  if (recent_.size() > options_.ar_order) recent_.pop_front();
  return update;
}

void OnlineMonitor::ApplyReset(const std::optional<BaselineSeed>& seed) {
  warmup_buffer_.clear();
  alarm_ = false;
  above_streak_ = 0;
  below_streak_ = 0;
  if (seed.has_value()) {
    // Degenerate order-0 model at the seeded level: Predict() returns the
    // intercept, so scoring resumes immediately at the new regime. The
    // window is filled with the level so a later checkpoint round-trip
    // sees a consistent ready model.
    phi_.clear();
    intercept_ = seed->level;
    residual_sigma_ = std::max(seed->sigma, 1e-9);
    recent_.assign(options_.ar_order, seed->level);
    model_ready_ = true;
  } else {
    phi_.clear();
    intercept_ = 0.0;
    residual_sigma_ = 1.0;
    recent_.clear();
    model_ready_ = false;
  }
  ++baseline_epoch_;
}

void OnlineMonitor::ResetBaseline(BaselineActor /*actor*/,
                                  const std::optional<BaselineSeed>& seed) {
  if (frozen_) {
    // Contract: a reset during a freeze is deferred to the thaw. Last
    // writer wins — a seeded reset supersedes an earlier unseeded one and
    // vice versa.
    pending_reset_ = seed.has_value() ? 2 : 1;
    pending_level_ = seed ? seed->level : 0.0;
    pending_sigma_ = seed ? seed->sigma : 0.0;
    pending_support_ = seed ? seed->support : 0;
    return;
  }
  ApplyReset(seed);
}

void OnlineMonitor::FreezeBaseline(BaselineActor /*actor*/) {
  frozen_ = true;
}

bool OnlineMonitor::ThawBaseline(BaselineActor /*actor*/) {
  if (!frozen_) return false;
  frozen_ = false;
  if (pending_reset_ == 0) return false;
  std::optional<BaselineSeed> seed;
  if (pending_reset_ == 2) {
    seed = BaselineSeed{pending_level_, pending_sigma_, pending_support_};
  }
  pending_reset_ = 0;
  pending_level_ = 0.0;
  pending_sigma_ = 0.0;
  pending_support_ = 0;
  ApplyReset(seed);
  return true;
}

OnlineMonitorState OnlineMonitor::SaveState() const {
  OnlineMonitorState state;
  state.warmup_buffer = warmup_buffer_;
  state.recent.assign(recent_.begin(), recent_.end());
  state.phi = phi_;
  state.intercept = intercept_;
  state.residual_sigma = residual_sigma_;
  state.model_ready = model_ready_;
  state.alarm = alarm_;
  state.above_streak = above_streak_;
  state.below_streak = below_streak_;
  state.samples_seen = samples_seen_;
  state.alarms_raised = alarms_raised_;
  state.baseline_epoch = baseline_epoch_;
  state.frozen = frozen_;
  state.pending_reset = pending_reset_;
  state.pending_level = pending_level_;
  state.pending_sigma = pending_sigma_;
  state.pending_support = pending_support_;
  return state;
}

Status OnlineMonitor::RestoreState(const OnlineMonitorState& state) {
  if (state.model_ready && state.recent.size() != options_.ar_order) {
    return Status::InvalidArgument(
        "monitor state window length does not match ar_order");
  }
  if (!state.model_ready && state.warmup_buffer.size() >= options_.warmup) {
    return Status::InvalidArgument(
        "monitor state has a full warmup buffer but no fitted model");
  }
  if (state.residual_sigma <= 0.0) {
    return Status::InvalidArgument("monitor state residual sigma must be > 0");
  }
  warmup_buffer_ = state.warmup_buffer;
  recent_.assign(state.recent.begin(), state.recent.end());
  phi_ = state.phi;
  intercept_ = state.intercept;
  // Same floor Push and FitModel apply. A checkpoint carrying a
  // degenerate sigma (say 1e-300) would otherwise resume into
  // astronomical z-scores and alarm on every sample.
  residual_sigma_ = std::max(state.residual_sigma, 1e-9);
  model_ready_ = state.model_ready;
  alarm_ = state.alarm;
  above_streak_ = state.above_streak;
  below_streak_ = state.below_streak;
  samples_seen_ = state.samples_seen;
  alarms_raised_ = state.alarms_raised;
  baseline_epoch_ = state.baseline_epoch;
  frozen_ = state.frozen;
  pending_reset_ = state.pending_reset > 2 ? 0 : state.pending_reset;
  pending_level_ = state.pending_level;
  pending_sigma_ = state.pending_sigma;
  pending_support_ = state.pending_support;
  return Status::Ok();
}

}  // namespace hod::core
