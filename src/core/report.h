#ifndef HOD_CORE_REPORT_H_
#define HOD_CORE_REPORT_H_

#include <string>
#include <vector>

#include "hierarchy/level.h"
#include "timeseries/time_series.h"

namespace hod::core {

/// One outlier occurrence at a specific hierarchy level, localized in time
/// and to the entity (sensor / job / machine) that exhibited it.
struct LevelOutlier {
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  /// Sensor id (phase/environment), job id (job/line), or machine id
  /// (production).
  std::string entity;
  /// Index of the offending item within the scored object.
  size_t index = 0;
  ts::TimePoint time = 0.0;
  /// Outlierness in [0, 1].
  double score = 0.0;
};

/// What a finding asserts about the plant: a genuine process outlier, a
/// sensor/engine fault detected by the health layer (the paper's
/// measurement-error branch made operational), a space-axis peer-group
/// drift, a correlated group outage, or a confirmed concept shift.
/// Sensor-fault and peer-drift findings are routed to the calibration
/// queue, never to the stop-the-line board; a group outage (a whole line
/// going silent at once — a transport/power problem, not N independent
/// sensor faults) is a first-class critical board row. A concept shift
/// (the process genuinely moved to a new setpoint and the channel was
/// re-baselined) is a process-board row: one informative finding instead
/// of an unbounded alarm storm on the new regime.
enum class FindingKind {
  kOutlier,
  kSensorFault,
  kPeerDrift,
  kGroupOutage,
  kConceptShift,
};

std::string_view FindingKindName(FindingKind kind);

/// The result triple of Algorithm 1 for one outlier, plus diagnostics.
struct OutlierFinding {
  /// What this finding asserts (process outlier vs sensor fault).
  FindingKind kind = FindingKind::kOutlier;

  /// Where and when the outlier was found at the start level.
  LevelOutlier origin;

  /// Global score: "denotes in which of the five proposed levels the
  /// outlier was noticed ... the higher a global score is, the more
  /// obvious was the outlier." Computed as 1 (the start level) plus one
  /// for every higher level that confirms the outlier, following the
  /// upward recursion of CalcGlobalScore. Range [1, 5].
  int global_score = 1;

  /// Outlierness: "the significance of the outlier as computed by the
  /// actually used algorithm", normalized to [0, 1].
  double outlierness = 0.0;

  /// Support: fraction of corresponding (redundant) sensors that also
  /// exhibit the outlier at the same level and time; "support values
  /// reduce the probability of finding a measurement error". In [0, 1];
  /// 0 when the entity has no corresponding sensors.
  double support = 0.0;

  /// Number of corresponding sensors consulted (the divisor in
  /// Algorithm 1's `support /= Number of Corresponding Sensors`).
  size_t corresponding_sensors = 0;

  /// Set by the downward recursion: a higher level reported this outlier
  /// but some lower level shows nothing -> "a measurement error must be
  /// assumed".
  bool measurement_error_warning = false;

  /// True when this finding came from the incremental escalation path (a
  /// stream alarm re-evaluated through Algorithm 1) rather than a batch
  /// query — alert consumers can tell a confirmed hierarchical triple from
  /// a raw stream-tier alarm.
  bool escalated = false;

  /// Levels (including the start level) at which the outlier is visible.
  std::vector<hierarchy::ProductionLevel> confirmed_levels;

  /// Human-readable diagnostics (e.g. the wrong-measurement warning).
  std::vector<std::string> warnings;
};

/// Everything Algorithm 1 produced for one query.
struct HierarchicalOutlierReport {
  /// Level the search started at.
  hierarchy::ProductionLevel start_level =
      hierarchy::ProductionLevel::kPhase;
  /// Name of the algorithm chosen for the start level.
  std::string algorithm;
  std::vector<OutlierFinding> findings;
};

/// Alert severity derived from a finding — the paper's alert-management
/// application of the triple.
enum class AlertSeverity {
  kInfo,      // low global score, weak outlierness, or unsupported
  kWarning,   // notable outlierness or a measurement-error suspicion
  kCritical,  // high global score with support: confirmed process problem
};

std::string_view AlertSeverityName(AlertSeverity severity);

/// Maps a finding to a severity: critical when confirmed across >= 3
/// levels with support or extreme outlierness; measurement-error suspects
/// never exceed warning.
AlertSeverity ClassifyAlert(const OutlierFinding& finding);

/// Predictive-maintenance urgency in [0, 1] from a set of findings for
/// one machine: combines the strongest confirmed outlierness with the
/// fraction of recent jobs affected ("the degree of deviation from an
/// expected value represents the urgency to maintain a system").
double MaintenanceUrgency(const std::vector<OutlierFinding>& findings,
                          size_t recent_jobs);

}  // namespace hod::core

#endif  // HOD_CORE_REPORT_H_
