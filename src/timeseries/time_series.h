#ifndef HOD_TIMESERIES_TIME_SERIES_H_
#define HOD_TIMESERIES_TIME_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace hod::ts {

/// Seconds since an arbitrary epoch. All hierarchy levels share one clock so
/// that outliers found at different levels can be matched in time.
using TimePoint = double;

/// A regularly sampled, named, univariate time series — the basic data shape
/// at the phase and environment levels of the production hierarchy.
///
/// Sampling is uniform: sample i has timestamp `start_time() + i * interval()`.
/// This matches industrial sensor buses, keeps storage compact, and makes
/// window extraction O(1) per window.
class TimeSeries {
 public:
  /// Creates an empty series sampled every `interval` seconds starting at
  /// `start_time`. `interval` must be > 0 (checked by Validate()).
  TimeSeries(std::string name, TimePoint start_time, double interval);

  /// Convenience: wraps existing samples.
  TimeSeries(std::string name, TimePoint start_time, double interval,
             std::vector<double> values);

  const std::string& name() const { return name_; }
  TimePoint start_time() const { return start_time_; }
  double interval() const { return interval_; }

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  /// Timestamp of sample i.
  TimePoint TimeAt(size_t i) const { return start_time_ + interval_ * i; }

  /// Timestamp one past the final sample (empty series: start_time()).
  TimePoint end_time() const { return TimeAt(values_.size()); }

  /// Index of the sample covering time `t`, or error when `t` lies outside
  /// [start_time, end_time).
  StatusOr<size_t> IndexAt(TimePoint t) const;

  /// Appends one sample.
  void Append(double value) { values_.push_back(value); }

  /// Copies samples [begin, end) into a new series with adjusted start time.
  /// Errors when the range is invalid.
  StatusOr<TimeSeries> Slice(size_t begin, size_t end) const;

  /// OK when the series is structurally sound (positive interval, finite
  /// values).
  Status Validate() const;

 private:
  std::string name_;
  TimePoint start_time_;
  double interval_;
  std::vector<double> values_;
};

/// A fixed-length numeric feature vector with named components — the data
/// shape of job setups and CAQ quality checks ("high-dimensional data" in
/// the paper, one vector per job rather than a stream).
class FeatureVector {
 public:
  FeatureVector() = default;
  FeatureVector(std::vector<std::string> names, std::vector<double> values);

  size_t size() const { return values_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<double>& values() const { return values_; }

  double operator[](size_t i) const { return values_[i]; }

  /// Value by component name, or NotFound.
  StatusOr<double> Get(const std::string& name) const;

  /// OK when names and values have matching sizes and values are finite.
  Status Validate() const;

 private:
  std::vector<std::string> names_;
  std::vector<double> values_;
};

}  // namespace hod::ts

#endif  // HOD_TIMESERIES_TIME_SERIES_H_
