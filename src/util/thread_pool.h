#ifndef HOD_UTIL_THREAD_POOL_H_
#define HOD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace hod::util {

/// Configuration of a ThreadPool.
struct ThreadPoolOptions {
  /// Worker-lane threads (shard drains, escalation work). 0 selects
  /// DefaultThreads() — hardware concurrency clamped to at least 2.
  size_t num_threads = 0;
  /// Service-lane threads, reserved for tasks that must always make
  /// progress even when every worker-lane thread is parked on a full
  /// internal queue (collector drains). Deadlock argument: worker-lane
  /// tasks may block pushing to collector queues; collector drains run on
  /// this lane and never block on worker-lane output, so the wait graph
  /// between lanes is acyclic.
  size_t service_threads = 1;
};

/// The shared executor the multi-plant fleet tier runs on: a fixed set of
/// OS threads executing submitted tasks, so N plants cost
/// `num_threads + service_threads + 1 (timer)` threads instead of
/// N * (shards + collector + watchdog + checkpoint timer) threads.
///
/// Three execution contexts:
///   - worker lane   — Submit(): CPU-bound drains; may block briefly on
///                     bounded internal queues.
///   - service lane  — SubmitService(): must-make-progress tasks that
///                     unblock the worker lane; must never block on it.
///   - timer thread  — ScheduleEvery(): periodic callbacks (watchdog
///                     ticks, staggered checkpoints) run inline on the
///                     single timer thread, serialized across all timers —
///                     which is exactly the property that keeps a thousand
///                     plants from checkpointing in lockstep.
///
/// Lifetime: the pool must outlive every engine borrowing it; engines are
/// stopped (quiescing their pooled tasks) before the pool shuts down.
class ThreadPool {
 public:
  using TimerId = uint64_t;

  explicit ThreadPool(ThreadPoolOptions options = {});
  explicit ThreadPool(size_t num_threads)
      : ThreadPool(ThreadPoolOptions{num_threads, 1}) {}
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task on the worker lane. Returns false (task dropped)
  /// after Shutdown().
  bool Submit(std::function<void()> fn);

  /// Enqueues a task on the reserved service lane.
  bool SubmitService(std::function<void()> fn);

  /// Registers a periodic callback: first fired `initial_delay` after the
  /// call, then every `period`. Callbacks run inline on the timer thread.
  /// Returns an id for Cancel(); 0 after Shutdown() (never fired).
  TimerId ScheduleEvery(std::chrono::milliseconds initial_delay,
                        std::chrono::milliseconds period,
                        std::function<void()> fn);

  /// Deregisters a timer. Blocks until its callback is not running, so on
  /// return the callback will never fire again (join semantics — callers
  /// may tear down the callback's captures). Unknown ids are a no-op.
  void Cancel(TimerId id);

  /// Stops the timer thread, drains both lanes' queued tasks, and joins
  /// every thread. Idempotent; called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  size_t num_service_threads() const { return service_workers_.size(); }
  /// Tasks executed so far across both lanes (telemetry).
  uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Hardware concurrency clamped to at least 2 (one thread must never be
  /// able to starve the service lane on a 1-core box).
  static size_t DefaultThreads();

 private:
  struct Lane {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
  };

  struct Timer {
    std::chrono::steady_clock::time_point next;
    std::chrono::milliseconds period{0};
    std::function<void()> fn;
    bool cancelled = false;
    bool running = false;
  };

  bool SubmitTo(Lane& lane, std::function<void()> fn);
  void WorkerLoop(Lane& lane);
  void TimerLoop();

  Lane worker_lane_;
  Lane service_lane_;
  std::vector<std::thread> workers_;
  std::vector<std::thread> service_workers_;
  std::thread timer_thread_;

  std::mutex timers_mu_;
  std::condition_variable timers_cv_;
  std::map<TimerId, Timer> timers_;
  TimerId next_timer_id_ = 1;

  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> tasks_executed_{0};
};

}  // namespace hod::util

#endif  // HOD_UTIL_THREAD_POOL_H_
