// E6 — Ablation of ChooseAlgorithm: resolution-matched vs mismatched.
//
// Section 3 argues algorithms must be selected "with respect to the
// resolution best fitting to a production layer". This bench swaps the
// selector policy and measures the detection-quality drop at the phase and
// job levels, quantifying the claim.

#include "bench_util.h"
#include "core/hierarchical_detector.h"
#include "eval/metrics.h"
#include "sim/plant.h"

namespace hod {
namespace {

struct LevelQuality {
  double phase_auc = 0.0;
  double job_auc = 0.0;
};

LevelQuality Measure(const sim::SimulatedPlant& plant,
                     core::SelectorPolicy policy) {
  core::HierarchicalDetectorOptions options;
  options.policy = policy;
  core::HierarchicalDetector detector(&plant.production, options);
  LevelQuality quality;

  // Phase level: AUC over injected phase series.
  double auc_sum = 0.0;
  size_t count = 0;
  for (const sim::AnomalyRecord& record : plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase) continue;
    core::PhaseQuery query{record.machine_id, record.job_id,
                           record.phase_name, record.sensor_id};
    auto scores = detector.ScorePhaseSeries(query);
    if (!scores.ok()) continue;
    const auto labels = plant.truth.PhaseLabelsOrZero(
        record.job_id, record.phase_name, record.sensor_id, scores->size());
    auto auc = eval::RocAuc(scores.value(), labels);
    if (auc.ok()) {
      auc_sum += auc.value();
      ++count;
    }
  }
  quality.phase_auc = count > 0 ? auc_sum / count : 0.5;

  // Job level: AUC of job scores vs job labels across machines.
  auc_sum = 0.0;
  count = 0;
  for (const auto& line : plant.production.lines) {
    for (const auto& machine : line.machines) {
      auto scores_or = detector.ScoreJobs(machine.id);
      if (!scores_or.ok()) continue;
      eval::Truth truth;
      size_t positives = 0;
      for (const auto& job : machine.jobs) {
        const uint8_t label =
            plant.truth.job_labels.count(job.id) > 0 ? 1 : 0;
        truth.push_back(label);
        positives += label;
      }
      if (positives == 0 || positives == truth.size()) continue;
      auc_sum += eval::RocAuc(scores_or.value(), truth).value();
      ++count;
    }
  }
  quality.job_auc = count > 0 ? auc_sum / count : 0.5;
  return quality;
}

}  // namespace
}  // namespace hod

int main() {
  using namespace hod;
  bench::PrintHeader("E6", "ChooseAlgorithm ablation",
                     "Section 3/4 (resolution-matched selection)");

  sim::PlantOptions options;
  options.num_lines = 2;
  options.machines_per_line = 3;
  options.jobs_per_machine = 16;
  options.seed = 7;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.25;
  scenario.glitch_rate = 0.1;
  const sim::SimulatedPlant plant =
      sim::BuildPlant(options, scenario).value();

  const LevelQuality matched =
      Measure(plant, core::SelectorPolicy::kResolutionMatched);
  const LevelQuality mismatched =
      Measure(plant, core::SelectorPolicy::kMismatched);

  bench::PrintSection("Detection AUC by selector policy");
  Table table({"Level", "matched algorithm", "matched AUC",
               "mismatched algorithm", "mismatched AUC"});
  core::AlgorithmSelector matched_selector(
      core::SelectorPolicy::kResolutionMatched);
  core::AlgorithmSelector mismatched_selector(
      core::SelectorPolicy::kMismatched);
  table.AddRow(
      {"Phase (high-res series)",
       matched_selector.Describe(hierarchy::ProductionLevel::kPhase),
       bench::Fmt(matched.phase_auc),
       mismatched_selector.Describe(hierarchy::ProductionLevel::kPhase),
       bench::Fmt(mismatched.phase_auc)});
  table.AddRow(
      {"Job (aggregated vectors)",
       matched_selector.Describe(hierarchy::ProductionLevel::kJob),
       bench::Fmt(matched.job_auc),
       mismatched_selector.Describe(hierarchy::ProductionLevel::kJob),
       bench::Fmt(mismatched.job_auc)});
  table.Print(std::cout);
  std::cout << "\nExpected: the resolution-matched policy dominates — "
               "temporal detectors on\nhigh-resolution data, point "
               "detectors on aggregates (Section 3's guidance).\n";
  return 0;
}
