#ifndef HOD_STREAM_ENGINE_H_
#define HOD_STREAM_ENGINE_H_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/alert_manager.h"
#include "core/monitor.h"
#include "hierarchy/level.h"
#include "stream/queue.h"
#include "stream/router.h"
#include "stream/sharded_scorer.h"
#include "stream/stats.h"
#include "util/statusor.h"

namespace hod::stream {

/// Configuration of the whole streaming engine.
struct StreamEngineOptions {
  /// Worker shards. Sensors are partitioned by stable hash of their id.
  size_t num_shards = 4;
  /// Per-shard ingress queue capacity (samples).
  size_t queue_capacity = 1024;
  /// Max samples a worker scores per queue drain (micro-batch size).
  size_t max_batch = 64;
  /// What a full shard queue does with a new sample.
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Synchronous mode: no threads at all — Ingest validates, scores, and
  /// collects inline on the caller's thread, and the ack carries the
  /// monitor update. Deterministic; scores are byte-identical to feeding
  /// one core::OnlineMonitor per sensor. For tests and replay tools.
  bool synchronous = false;
  /// Seconds a sample's timestamp may regress behind its sensor's
  /// frontier before it is rejected as out-of-order.
  double out_of_order_tolerance = 0.0;
  /// Configuration applied to every per-sensor monitor.
  core::OnlineMonitorOptions monitor;
  /// Alert episode building. Stream findings start at global score 1, so
  /// the default board admits INFO — otherwise weak-but-real alarm
  /// episodes would be invisible.
  core::AlertManagerOptions alerts{30.0, core::AlertSeverity::kInfo};
  /// Capacity of the scorer → collector queue (always lossless/blocking).
  size_t collector_queue_capacity = 4096;
  /// Collector publishes a fresh EngineSnapshot every this many outlier
  /// events (and always on Flush/Stop).
  size_t snapshot_every = 256;
};

/// Result of one Ingest call.
struct IngestAck {
  /// True when the sample was enqueued (threaded) or scored (synchronous).
  bool enqueued = false;
  /// Synchronous mode only: the monitor's verdict for this sample.
  std::optional<core::MonitorUpdate> update;
};

/// Aggregate outlier state of one hierarchy level.
struct LevelOutlierState {
  uint64_t outlier_samples = 0;  ///< forwarded samples above threshold
  uint64_t alarms_raised = 0;
  uint64_t alarms_cleared = 0;
  uint64_t active_alarms = 0;
  double peak_score = 0.0;
  ts::TimePoint last_outlier_ts = 0.0;
};

/// One sensor currently in alarm.
struct ActiveAlarm {
  std::string sensor_id;
  hierarchy::ProductionLevel level = hierarchy::ProductionLevel::kPhase;
  ts::TimePoint since = 0.0;
  double peak_score = 0.0;
};

/// Periodic cross-level outlier snapshot — the escalation hook: feed the
/// active-alarm entities into core::HierarchicalDetector (e.g. a
/// FindPhaseOutliers query per alarming sensor) to compute the full
/// ⟨global score, outlierness, support⟩ triple for what the stream tier
/// flagged cheaply.
struct EngineSnapshot {
  /// Monotone snapshot counter (0 = nothing published yet).
  uint64_t sequence = 0;
  /// Collector events consumed when this snapshot was taken.
  uint64_t events_seen = 0;
  /// Indexed by LevelValue(level) - 1.
  std::array<LevelOutlierState, hierarchy::kNumLevels> levels{};
  /// Sensors in alarm right now, sorted by id.
  std::vector<ActiveAlarm> active_alarms;
};

/// The streaming facade: router → sharded scorer → collector.
///
///   StreamEngine engine(options);
///   engine.AddSensor("m1.bed_temp_a", hierarchy::ProductionLevel::kPhase);
///   engine.Start();
///   engine.Ingest({"m1.bed_temp_a", level, ts, value});   // any thread
///   engine.Stop();                // drains every queue, joins workers
///   auto episodes = engine.Episodes();
///
/// Threading: Ingest is safe from any number of producer threads. Each
/// sensor's samples are scored in arrival order by exactly one worker
/// (stable hash → shard), so per-sensor results are identical to a
/// single-threaded run. The collector is the only thread touching the
/// AlertManager and the snapshot state.
class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineOptions options = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Registers a sensor before Start(). Unregistered sensors are rejected
  /// at ingest with NotFound.
  Status AddSensor(const std::string& sensor_id,
                   hierarchy::ProductionLevel level =
                       hierarchy::ProductionLevel::kPhase);

  /// Seals the registry and (threaded mode) spawns workers + collector.
  Status Start();

  /// Validates, routes, and scores (sync) or enqueues (threaded) one
  /// sample. Typed errors: InvalidArgument (non-finite, level mismatch),
  /// NotFound (unknown sensor), OutOfRange (out-of-order or queue full
  /// under kReject).
  StatusOr<IngestAck> Ingest(const SensorSample& sample);

  /// Blocks until every accepted sample has been scored and collected,
  /// then publishes a fresh snapshot. Call with producers quiescent.
  Status Flush();

  /// Drains all queues, joins all threads, publishes the final snapshot.
  /// Idempotent; the engine cannot be restarted.
  Status Stop();

  bool running() const { return state_.load() == kRunning; }
  size_t num_shards() const { return scorer_.num_shards(); }
  size_t num_sensors() const { return router_.num_sensors(); }
  const StreamEngineOptions& options() const { return options_; }

  /// Counter snapshot. Exact in synchronous mode and after Stop();
  /// instantaneous-but-consistent-enough while threads run.
  StreamStatsSnapshot stats() const;

  /// Latest published per-level outlier snapshot (sequence 0 if none).
  EngineSnapshot Snapshot() const;

  /// Alert episodes built from forwarded outlier findings.
  std::vector<core::AlertEpisode> Episodes() const;

  /// Monitor state of one sensor. FailedPrecondition while workers run
  /// (stop or flush-in-sync-mode first).
  StatusOr<SensorProbe> Probe(const std::string& sensor_id) const;

 private:
  enum State { kConfiguring, kRunning, kStopped };

  void CollectorLoop();
  /// Collector-thread only (or caller thread in synchronous mode).
  void ConsumeScored(const ScoredSample& scored);
  void PublishSnapshot();

  StreamEngineOptions options_;
  StreamStats stats_;
  BoundedQueue<ScoredSample> collector_queue_;
  IngestRouter router_;
  ShardedScorer scorer_;
  std::jthread collector_;
  std::atomic<int> state_{kConfiguring};

  /// Collector-private (unsynchronized: single consumer — the collector
  /// thread, or the caller thread in synchronous mode).
  std::array<LevelOutlierState, hierarchy::kNumLevels> levels_{};
  std::map<std::string, ActiveAlarm> active_alarms_;
  uint64_t events_seen_ = 0;
  uint64_t events_at_last_snapshot_ = 0;
  uint64_t next_sequence_ = 1;

  /// Collector drain tracking, for Flush.
  std::mutex collector_mu_;
  std::condition_variable collector_cv_;
  std::atomic<uint64_t> collected_{0};

  mutable std::mutex alerts_mu_;
  core::AlertManager alerts_;
  std::vector<core::OutlierFinding> pending_findings_;

  mutable std::mutex snapshot_mu_;
  EngineSnapshot published_;
};

}  // namespace hod::stream

#endif  // HOD_STREAM_ENGINE_H_
