#ifndef HOD_BIBLIO_CORPUS_H_
#define HOD_BIBLIO_CORPUS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace hod::biblio {

/// One bibliographic record: topic keywords and venue categories, as a
/// literature search engine would index them.
struct Record {
  uint64_t id = 0;
  int year = 2018;
  std::vector<std::string> keywords;
  std::vector<std::string> categories;
};

/// Boolean query: every term must appear among the record's keywords AND
/// every category among its categories (the Web-of-Science refinement
/// pipeline the paper used for Fig. 3).
struct Query {
  std::vector<std::string> terms;
  std::vector<std::string> categories;
};

/// In-memory inverted-index corpus.
class Corpus {
 public:
  /// Adds a record (keywords/categories are matched case-sensitively;
  /// generators emit lowercase).
  void Add(Record record);

  size_t size() const { return records_.size(); }

  /// Record ids matching the query (sorted ascending).
  std::vector<uint64_t> Search(const Query& query) const;

  /// Number of matches (faster than Search when only the count matters —
  /// intersects posting lists smallest-first).
  size_t Count(const Query& query) const;

  /// Posting-list length of a keyword (0 when absent).
  size_t KeywordFrequency(const std::string& keyword) const;

 private:
  const std::vector<uint64_t>* Postings(const std::string& token,
                                        bool is_category) const;

  std::vector<Record> records_;
  std::map<std::string, std::vector<uint64_t>> keyword_index_;
  std::map<std::string, std::vector<uint64_t>> category_index_;
};

/// The eight research-field synonyms of Fig. 3, in figure order.
const std::vector<std::string>& Fig3Fields();

/// Calibration of the synthetic research corpus. Field weights approximate
/// the Web-of-Science landscape the paper charted: anomaly/fault detection
/// dominate, deviant discovery is essentially unused, and automation-
/// control work concentrates in fault detection.
struct CorpusOptions {
  size_t records = 60000;
  uint64_t seed = 13;
};

/// Deterministically generates the corpus.
Corpus GenerateResearchCorpus(const CorpusOptions& options);

/// One Fig.-3 bar pair: field term counts after the "time series" filter
/// and after the additional "automation control systems" refinement.
struct Fig3Row {
  std::string field;
  size_t time_series_count = 0;
  size_t automation_count = 0;
};

/// Runs the paper's query pipeline over a corpus.
std::vector<Fig3Row> RunFig3Queries(const Corpus& corpus);

}  // namespace hod::biblio

#endif  // HOD_BIBLIO_CORPUS_H_
