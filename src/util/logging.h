#ifndef HOD_UTIL_LOGGING_H_
#define HOD_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace hod {

/// Log severities in increasing order of importance.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Process-wide minimum severity; messages below it are dropped.
/// Defaults to kInfo. Not thread-safe by design (set once at startup).
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// Sink invoked for every emitted record; defaults to stderr.
/// Replaceable for tests.
using LogSink = void (*)(LogLevel, const std::string& message);
void SetLogSink(LogSink sink);

namespace internal_logging {

/// Stream-style log record that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define HOD_LOG(level)                                             \
  ::hod::internal_logging::LogMessage(::hod::LogLevel::k##level,   \
                                      __FILE__, __LINE__)          \
      .stream()

}  // namespace hod

#endif  // HOD_UTIL_LOGGING_H_
