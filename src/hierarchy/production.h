#ifndef HOD_HIERARCHY_PRODUCTION_H_
#define HOD_HIERARCHY_PRODUCTION_H_

#include <map>
#include <string>
#include <vector>

#include "hierarchy/sensor_registry.h"
#include "timeseries/discrete_sequence.h"
#include "timeseries/time_series.h"
#include "util/statusor.h"

namespace hod::hierarchy {

/// One production phase (preparation, warm-up, calibration, print, ...):
/// the most detailed view — multi-dimensional high-resolution sensor
/// values as time series plus a discrete event sequence.
struct Phase {
  std::string name;
  ts::TimePoint start_time = 0.0;
  ts::TimePoint end_time = 0.0;
  /// Sensor id -> high-resolution series recorded during the phase.
  std::map<std::string, ts::TimeSeries> sensor_series;
  /// Discrete value sequence (machine event/state labels) for the phase.
  ts::DiscreteSequence events{"events", 1};
};

/// One production job: "starts with a setup and ends with a computer-aided
/// quality (CAQ) check"; consists of several phases.
struct Job {
  std::string id;
  std::string machine_id;
  ts::TimePoint start_time = 0.0;
  ts::TimePoint end_time = 0.0;
  /// Job configuration selected during setup (high-dimensional, not a
  /// time series).
  ts::FeatureVector setup;
  std::vector<Phase> phases;
  /// CAQ quality measurements taken after the job.
  ts::FeatureVector caq;
};

/// A machine executing jobs sequentially; carries a static machine
/// configuration (Fig. 2's "machine configuration").
struct Machine {
  std::string id;
  ts::FeatureVector configuration;
  std::vector<Job> jobs;
};

/// An environment measurement channel: "a time series ... which does not
/// correspond directly to the production process, but is measured in the
/// same period", e.g. the room temperature.
struct EnvironmentChannel {
  std::string sensor_id;
  ts::TimeSeries series{"", 0.0, 1.0};
};

/// A production line: several machines sharing an environment.
struct ProductionLine {
  std::string id;
  std::vector<Machine> machines;
  std::vector<EnvironmentChannel> environment;
};

/// The whole production — the most complex scenario, spanning machines on
/// several lines, plus the sensor registry used for redundancy queries.
struct Production {
  std::vector<ProductionLine> lines;
  SensorRegistry sensors;
};

/// Lookup helpers (NotFound on miss).
StatusOr<const ProductionLine*> FindLine(const Production& production,
                                         const std::string& line_id);
StatusOr<const Machine*> FindMachine(const Production& production,
                                     const std::string& machine_id);
StatusOr<const Job*> FindJob(const Production& production,
                             const std::string& job_id);

/// Validation: timestamps ordered, series valid, setup/CAQ vectors valid,
/// sensor ids registered. Returns the first violation found.
Status ValidateProduction(const Production& production);

/// Total number of jobs across all lines and machines.
size_t CountJobs(const Production& production);

}  // namespace hod::hierarchy

#endif  // HOD_HIERARCHY_PRODUCTION_H_
