// Plant dashboard: the whole library in one call.
//
// SummarizePlantHealth composes Algorithm 1 (all levels), alert episode
// deduplication, CAQ process capability, maintenance urgency, and
// concept-shift discovery into the report a plant engineer reads at shift
// start.

#include <cstdio>

#include "hod.h"

int main() {
  using namespace hod;

  sim::PlantOptions plant_options;
  plant_options.num_lines = 2;
  plant_options.machines_per_line = 2;
  plant_options.jobs_per_machine = 24;
  plant_options.seed = 314;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.15;
  scenario.glitch_rate = 0.1;
  scenario.bad_batch_jobs = 6;
  auto plant_or = sim::BuildPlant(plant_options, scenario);
  if (!plant_or.ok()) {
    std::fprintf(stderr, "%s\n", plant_or.status().ToString().c_str());
    return 1;
  }
  const sim::SimulatedPlant& plant = plant_or.value();

  core::PlantHealthOptions options;
  options.shifts.min_persistence = 4;
  options.shifts.cusum_threshold = 6.0;
  auto report_or = core::SummarizePlantHealth(
      plant.production, hierarchy::DefaultPrinterCaqSpecification(),
      options);
  if (!report_or.ok()) {
    std::fprintf(stderr, "%s\n", report_or.status().ToString().c_str());
    return 1;
  }
  const core::PlantHealthReport& report = report_or.value();

  std::printf("================ PLANT HEALTH DASHBOARD ================\n");
  std::printf("(%zu findings analysed across all five levels)\n\n",
              report.total_findings);
  std::printf("%-10s %-8s %-8s %-9s %-9s %-9s %s\n", "machine", "prodScr",
              "minCpk", "urgency", "critical", "warning", "calibration");
  for (const core::MachineHealth& machine : report.machines) {
    std::printf("%-10s %-8.2f %-8.2f %-9.2f %-9zu %-9zu %zu\n",
                machine.machine_id.c_str(), machine.production_score,
                machine.min_cpk, machine.maintenance_urgency,
                machine.critical_episodes, machine.warning_episodes,
                machine.calibration_suspects);
  }

  std::printf("\nLine-level concept shifts (re-baseline, don't page):\n");
  if (report.line_shifts.empty()) std::printf("  (none)\n");
  for (const core::LineShift& shift : report.line_shifts) {
    std::printf("  %-8s %-22s job %-4zu %.3f -> %.3f (%.1f sigma)\n",
                shift.line_id.c_str(), shift.feature.c_str(),
                shift.shift.index, shift.shift.before_mean,
                shift.shift.after_mean, shift.shift.magnitude_sigmas);
  }

  std::printf("\nGround truth: rogue machine = %s; bad batch on line1.\n",
              plant.truth.machine_labels.empty()
                  ? "(none)"
                  : plant.truth.machine_labels.begin()->first.c_str());
  return 0;
}
