#ifndef HOD_TIMESERIES_SAX_H_
#define HOD_TIMESERIES_SAX_H_

#include <string>
#include <vector>

#include "timeseries/discrete_sequence.h"
#include "util/statusor.h"

namespace hod::ts {

/// Symbolic Aggregate approXimation (Lin et al. 2003) — the "symbolic
/// representation" row of the paper's Table 1 and the bridge between
/// numeric time series and the sequence detectors (FSA, HMM, NPD, NMD, OS).
///
/// Pipeline: z-normalize -> piecewise aggregate approximation (PAA) ->
/// quantize against N(0,1) equiprobable breakpoints.
struct SaxOptions {
  /// Number of PAA frames the series is reduced to. 0 = one frame per
  /// sample (no dimensionality reduction).
  size_t word_length = 0;
  /// Alphabet cardinality, in [2, 10].
  int alphabet_size = 4;
};

/// Piecewise aggregate approximation: mean of each of `frames` equal spans.
/// Errors when frames == 0 or frames > values.size().
StatusOr<std::vector<double>> Paa(const std::vector<double>& values,
                                  size_t frames);

/// Equiprobable N(0,1) breakpoints for the given alphabet size (size-1
/// values). Errors outside [2, 10].
StatusOr<std::vector<double>> SaxBreakpoints(int alphabet_size);

/// Converts a numeric series to a SAX symbol sequence. The output sequence
/// has length `word_length` (or values.size() when word_length == 0) and
/// alphabet `alphabet_size`.
StatusOr<DiscreteSequence> ToSax(const std::vector<double>& values,
                                 const SaxOptions& options,
                                 const std::string& name = "sax");

/// Renders SAX symbols as letters 'a'..'j' for human-readable output.
std::string SaxToString(const DiscreteSequence& sequence);

}  // namespace hod::ts

#endif  // HOD_TIMESERIES_SAX_H_
