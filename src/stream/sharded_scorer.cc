#include "stream/sharded_scorer.h"

#include <utility>

namespace hod::stream {

ShardedScorer::ShardedScorer(const ShardedScorerOptions& options,
                             StreamStats* stats,
                             BoundedQueue<ScoredSample>* collector)
    : options_(options), stats_(stats), collector_(collector) {
  const size_t n = options_.num_shards == 0 ? 1 : options_.num_shards;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_.queue_capacity,
                                              options_.backpressure));
  }
}

ShardedScorer::~ShardedScorer() { Stop(); }

Status ShardedScorer::AddSensor(size_t shard, const std::string& sensor_id) {
  if (running_) {
    return Status::FailedPrecondition("scorer already started");
  }
  if (shard >= shards_.size()) {
    return Status::OutOfRange("shard index out of range");
  }
  auto [it, inserted] = shards_[shard]->monitors.emplace(
      sensor_id, core::OnlineMonitor(options_.monitor));
  if (!inserted) {
    return Status::InvalidArgument("sensor already on shard: " + sensor_id);
  }
  return Status::Ok();
}

Status ShardedScorer::Start() {
  if (running_) return Status::FailedPrecondition("scorer already started");
  if (stopped_) return Status::FailedPrecondition("scorer already stopped");
  running_ = true;
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::jthread([this, i] { WorkerLoop(i); });
  }
  return Status::Ok();
}

Status ShardedScorer::Submit(size_t shard, SensorSample sample) {
  if (shard >= shards_.size()) {
    return Status::OutOfRange("shard index out of range");
  }
  Shard& s = *shards_[shard];
  // Count before pushing: the worker may process the sample before this
  // line otherwise, and Flush would see processed > submitted.
  s.submitted.fetch_add(1, std::memory_order_relaxed);
  Status status = s.queue.Push(std::move(sample));
  if (!status.ok()) {
    s.submitted.fetch_sub(1, std::memory_order_relaxed);
    if (status.code() == StatusCode::kOutOfRange && stats_ != nullptr) {
      stats_->RecordRejectedQueueFull();
    }
    return status;
  }
  return Status::Ok();
}

StatusOr<core::MonitorUpdate> ShardedScorer::ScoreNow(
    size_t shard, const SensorSample& sample) {
  if (running_) {
    return Status::FailedPrecondition(
        "ScoreNow is synchronous-mode only; workers are running");
  }
  if (shard >= shards_.size()) {
    return Status::OutOfRange("shard index out of range");
  }
  Shard& s = *shards_[shard];
  auto it = s.monitors.find(sample.sensor_id);
  if (it == s.monitors.end()) {
    return Status::NotFound("no monitor for sensor: " + sample.sensor_id);
  }
  HOD_ASSIGN_OR_RETURN(core::MonitorUpdate update,
                       it->second.Push(sample.value));
  if (stats_ != nullptr) {
    stats_->RecordScored(1);
    stats_->RecordBatch(1);
    if (update.alarm_raised) stats_->RecordAlarmRaised();
    if (update.alarm_cleared) stats_->RecordAlarmCleared();
  }
  if (collector_ != nullptr &&
      (update.alarm_raised || update.alarm_cleared ||
       update.score > options_.forward_threshold)) {
    ScoredSample scored{sample.sensor_id, sample.level, sample.ts,
                        sample.value, update};
    // Internal pipeline edge: lossless regardless of the ingress policy.
    (void)collector_->Push(std::move(scored));
    forwarded_.fetch_add(1, std::memory_order_release);
  }
  return update;
}

Status ShardedScorer::Flush() {
  if (!running_) return Status::Ok();
  std::unique_lock<std::mutex> lock(flush_mu_);
  flush_cv_.wait(lock, [&] {
    for (const auto& shard : shards_) {
      // Evicted (kDropOldest) samples were submitted but never reach the
      // worker — they count as handled.
      if (shard->processed.load(std::memory_order_acquire) +
              shard->queue.dropped() !=
          shard->submitted.load(std::memory_order_acquire)) {
        return false;
      }
    }
    return true;
  });
  return Status::Ok();
}

void ShardedScorer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  running_ = false;
}

void ShardedScorer::FillQueueStats(StreamStatsSnapshot& snapshot) const {
  snapshot.dropped = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const uint64_t high_water = shards_[i]->queue.high_water();
    if (i < snapshot.shard_queue_high_water.size()) {
      snapshot.shard_queue_high_water[i] = high_water;
    }
    snapshot.dropped += shards_[i]->queue.dropped();
  }
}

StatusOr<SensorProbe> ShardedScorer::Probe(
    const std::string& sensor_id) const {
  if (running_) {
    return Status::FailedPrecondition(
        "Probe requires a stopped or synchronous scorer");
  }
  for (const auto& shard : shards_) {
    auto it = shard->monitors.find(sensor_id);
    if (it == shard->monitors.end()) continue;
    SensorProbe probe;
    probe.samples_seen = it->second.samples_seen();
    probe.alarms_raised = it->second.alarms_raised();
    probe.alarm = it->second.alarm();
    probe.model_ready = it->second.model_ready();
    return probe;
  }
  return Status::NotFound("no monitor for sensor: " + sensor_id);
}

void ShardedScorer::WorkerLoop(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::vector<SensorSample> batch;
  batch.reserve(options_.max_batch);
  while (shard.queue.PopBatch(batch, options_.max_batch)) {
    if (stats_ != nullptr) stats_->RecordBatch(batch.size());
    for (SensorSample& sample : batch) ScoreOne(shard, sample);
    if (stats_ != nullptr) stats_->RecordScored(batch.size());
    shard.processed.fetch_add(batch.size(), std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(flush_mu_);
    }
    flush_cv_.notify_all();
    batch.clear();
  }
}

void ShardedScorer::ScoreOne(Shard& shard, SensorSample& sample) {
  auto it = shard.monitors.find(sample.sensor_id);
  if (it == shard.monitors.end()) return;  // router guarantees registration
  auto update_or = it->second.Push(sample.value);
  if (!update_or.ok()) return;  // router already filtered non-finite values
  const core::MonitorUpdate& update = update_or.value();
  if (stats_ != nullptr) {
    if (update.alarm_raised) stats_->RecordAlarmRaised();
    if (update.alarm_cleared) stats_->RecordAlarmCleared();
  }
  if (collector_ != nullptr &&
      (update.alarm_raised || update.alarm_cleared ||
       update.score > options_.forward_threshold)) {
    ScoredSample scored{std::move(sample.sensor_id), sample.level, sample.ts,
                        sample.value, update};
    (void)collector_->Push(std::move(scored));
    forwarded_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace hod::stream
