#ifndef HOD_DETECT_RULE_CLASSIFIER_H_
#define HOD_DETECT_RULE_CLASSIFIER_H_

#include <vector>

#include "detect/detector.h"

namespace hod::detect {

/// Rule- and motif-based classification (Li et al. 2007 "ROAM") — Table 1
/// row 16, family SA, data type PTS.
///
/// Learns interpretable interval rules "feature f in [lo, hi] => anomalous
/// with confidence c" from labeled points. Each feature contributes its
/// best threshold split (decision stump maximizing weighted information
/// gain); prediction averages the firing rules' confidences weighted by
/// their training accuracy. Rules are exposed for inspection — the model
/// is intentionally human-readable, as in the original rule-based systems.
struct RuleClassifierOptions {
  /// Candidate thresholds examined per feature (quantile grid).
  size_t candidate_thresholds = 16;
  /// Keep at most this many rules (highest-gain first).
  size_t max_rules = 8;
  /// Minimum training points a rule must cover.
  size_t min_coverage = 5;
};

/// One learned rule.
struct IntervalRule {
  size_t feature = 0;
  double threshold = 0.0;
  /// True: fires when value > threshold; false: fires when value <=.
  bool greater = true;
  /// Empirical anomaly probability when the rule fires.
  double confidence = 0.0;
  /// Information gain achieved on the training split (rule weight).
  double gain = 0.0;
};

class RuleClassifierDetector : public VectorDetector {
 public:
  explicit RuleClassifierDetector(RuleClassifierOptions options = {});

  std::string name() const override { return "RuleBasedClassifier"; }
  bool supervised() const override { return true; }

  Status Train(const std::vector<std::vector<double>>& data) override;

  Status TrainSupervised(const std::vector<std::vector<double>>& data,
                         const Labels& labels) override;

  StatusOr<std::vector<double>> Score(
      const std::vector<std::vector<double>>& data) const override;

  const std::vector<IntervalRule>& rules() const { return rules_; }

 private:
  RuleClassifierOptions options_;
  std::vector<IntervalRule> rules_;
  double base_rate_ = 0.0;
  size_t dim_ = 0;
  bool trained_ = false;
};

}  // namespace hod::detect

#endif  // HOD_DETECT_RULE_CLASSIFIER_H_
