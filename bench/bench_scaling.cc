// E9 — Scaling and sensitivity of Algorithm 1.
//
// The paper names calculation speed as a core constraint (Sections 1/5).
// This bench measures (a) wall-clock cost of full-hierarchy analysis as
// the plant grows, and (b) sensitivity of the support/global-score quality
// to the two tolerance knobs, so deployments can size them.

#include <chrono>
#include <cmath>

#include "bench_util.h"
#include "core/hierarchical_detector.h"
#include "eval/metrics.h"
#include "sim/plant.h"

namespace hod {
namespace {

double MillisSince(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Full sweep: every phase query for every injected record plus all level
/// primitives — the workload of one monitoring cycle over the plant.
double SweepMillis(const sim::SimulatedPlant& plant,
                   core::HierarchicalDetectorOptions options = {}) {
  core::HierarchicalDetector detector(&plant.production, options);
  const auto start = std::chrono::steady_clock::now();
  for (const sim::AnomalyRecord& record : plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase) continue;
    core::PhaseQuery query{record.machine_id, record.job_id,
                           record.phase_name, record.sensor_id};
    (void)detector.FindPhaseOutliers(query);
  }
  for (const auto& line : plant.production.lines) {
    for (const auto& machine : line.machines) {
      (void)detector.FindJobOutliers(machine.id);
    }
    (void)detector.FindEnvironmentOutliers(line.id);
    (void)detector.FindLineOutliers(line.id);
  }
  (void)detector.FindProductionOutliers();
  return MillisSince(start);
}

struct SupportQuality {
  double process_support = 0.0;
  double glitch_support = 0.0;
};

SupportQuality MeasureSupport(const sim::SimulatedPlant& plant,
                              double tolerance) {
  core::HierarchicalDetectorOptions options;
  options.support_time_tolerance = tolerance;
  core::HierarchicalDetector detector(&plant.production, options);
  SupportQuality quality;
  size_t process_count = 0;
  size_t glitch_count = 0;
  for (const sim::AnomalyRecord& record : plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase) continue;
    if (record.sensor_id.find("_a") == std::string::npos &&
        record.sensor_id.find("_b") == std::string::npos) {
      continue;
    }
    core::PhaseQuery query{record.machine_id, record.job_id,
                           record.phase_name, record.sensor_id};
    auto report = detector.FindPhaseOutliers(query);
    if (!report.ok()) continue;
    const core::OutlierFinding* nearest = nullptr;
    double best_gap = 30.0;
    for (const auto& finding : report->findings) {
      const double gap = std::fabs(finding.origin.time - record.start_time);
      if (gap <= best_gap) {
        best_gap = gap;
        nearest = &finding;
      }
    }
    if (nearest == nullptr) continue;
    if (record.measurement_error) {
      quality.glitch_support += nearest->support;
      ++glitch_count;
    } else {
      quality.process_support += nearest->support;
      ++process_count;
    }
  }
  if (process_count > 0) quality.process_support /= process_count;
  if (glitch_count > 0) quality.glitch_support /= glitch_count;
  return quality;
}

}  // namespace
}  // namespace hod

int main() {
  using namespace hod;
  bench::PrintHeader("E9", "Scaling and tolerance sensitivity",
                     "Sections 1/5 (calculation speed) + Algorithm 1 knobs");

  bench::PrintSection(
      "Full-hierarchy analysis wall time vs plant size (one monitoring "
      "cycle)");
  Table scaling({"lines x machines x jobs", "phase samples", "sweep [ms]",
                 "ms / job"});
  for (const auto& [lines, machines, jobs] :
       {std::tuple<size_t, size_t, size_t>{1, 2, 8},
        {2, 2, 8},
        {2, 3, 16},
        {2, 3, 32}}) {
    sim::PlantOptions options;
    options.num_lines = lines;
    options.machines_per_line = machines;
    options.jobs_per_machine = jobs;
    options.seed = 7;
    sim::ScenarioOptions scenario;
    scenario.process_anomaly_rate = 0.2;
    scenario.glitch_rate = 0.1;
    const auto plant = sim::BuildPlant(options, scenario).value();
    size_t samples = 0;
    for (const auto& line : plant.production.lines) {
      for (const auto& machine : line.machines) {
        for (const auto& job : machine.jobs) {
          for (const auto& phase : job.phases) {
            for (const auto& [id, series] : phase.sensor_series) {
              samples += series.size();
            }
          }
        }
      }
    }
    const double millis = SweepMillis(plant);
    const size_t total_jobs = lines * machines * jobs;
    scaling.AddRow({std::to_string(lines) + " x " + std::to_string(machines) +
                        " x " + std::to_string(jobs),
                    std::to_string(samples), bench::Fmt(millis, 1),
                    bench::Fmt(millis / static_cast<double>(total_jobs), 2)});
  }
  scaling.Print(std::cout);
  std::cout << "Expected: near-linear growth in plant size — models are "
               "trained once per\n(sensor, phase) and cached; per-job cost "
               "stays flat.\n";

  bench::PrintSection(
      "Support separation vs support_time_tolerance (process minus glitch "
      "support)");
  sim::PlantOptions options;
  options.num_lines = 2;
  options.machines_per_line = 2;
  options.jobs_per_machine = 12;
  options.seed = 7;
  sim::ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.3;
  scenario.glitch_rate = 0.3;
  const auto plant = sim::BuildPlant(options, scenario).value();
  Table tolerance_table({"tolerance [s]", "process support", "glitch support",
                         "separation"});
  for (double tolerance : {1.0, 5.0, 15.0, 60.0, 300.0}) {
    const SupportQuality quality = MeasureSupport(plant, tolerance);
    tolerance_table.AddRow(
        {bench::Fmt(tolerance, 0), bench::Fmt(quality.process_support, 2),
         bench::Fmt(quality.glitch_support, 2),
         bench::Fmt(quality.process_support - quality.glitch_support, 2)});
  }
  tolerance_table.Print(std::cout);
  std::cout << "Expected: full separation across three orders of magnitude "
               "of tolerance —\nsupport is evaluated within the same phase "
               "and job, so a glitch's partner\nsensor simply has nothing "
               "to offer at any tolerance; the knob only matters\nwhen "
               "unrelated outliers land on the partner sensor in the same "
               "phase.\n";
  return 0;
}
