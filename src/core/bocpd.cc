#include "core/bocpd.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hod::core {

namespace {

constexpr double kSigmaFloor = 1e-9;

/// Log-gamma without the libm `signgam` global: `std::lgamma` stores the
/// sign there, which is a data race when shard workers score concurrently.
/// Arguments here are always positive, so the sign output is discarded.
double LogGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__) || defined(_GNU_SOURCE)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

/// Student-t density with `df` degrees of freedom, location `mean`,
/// scale `scale` — the Normal-Gamma posterior predictive.
double StudentTPdf(double x, double df, double mean, double scale) {
  const double z = (x - mean) / scale;
  const double log_pdf = LogGamma((df + 1.0) * 0.5) -
                         LogGamma(df * 0.5) -
                         0.5 * std::log(df * M_PI) - std::log(scale) -
                         (df + 1.0) * 0.5 * std::log1p(z * z / df);
  return std::exp(log_pdf);
}

bool FinitePositive(double v) { return std::isfinite(v) && v > 0.0; }

}  // namespace

BocpdDetector::BocpdDetector(BocpdOptions options) : options_(options) {
  if (!(options_.hazard_lambda > 1.0)) options_.hazard_lambda = 250.0;
  if (options_.max_run_length < 8) options_.max_run_length = 8;
  if (options_.min_run_for_shift < 1) options_.min_run_for_shift = 1;
  if (options_.min_run_for_shift >= options_.max_run_length) {
    options_.min_run_for_shift = options_.max_run_length / 2;
  }
  if (!(options_.shift_posterior > 0.0 && options_.shift_posterior <= 1.0)) {
    options_.shift_posterior = 0.8;
  }
  if (!FinitePositive(options_.prior_kappa)) options_.prior_kappa = 1.0;
  if (!FinitePositive(options_.prior_alpha)) options_.prior_alpha = 1.0;
  if (!FinitePositive(options_.prior_beta)) options_.prior_beta = 1.0;
  const size_t cap = options_.max_run_length + 2;
  weight_.reserve(cap);
  mu_.reserve(cap);
  kappa_.reserve(cap);
  alpha_.reserve(cap);
  beta_.reserve(cap);
  run_length_.reserve(cap);
  next_weight_.reserve(cap);
  next_mu_.reserve(cap);
  next_kappa_.reserve(cap);
  next_alpha_.reserve(cap);
  next_beta_.reserve(cap);
  next_run_length_.reserve(cap);
}

void BocpdDetector::Rebase(double mean, double kappa, double alpha,
                           double beta, uint64_t run_length) {
  weight_.assign(1, 1.0);
  mu_.assign(1, mean);
  kappa_.assign(1, kappa);
  alpha_.assign(1, alpha);
  beta_.assign(1, beta);
  run_length_.assign(1, run_length);
}

std::optional<BocpdShift> BocpdDetector::Push(double value) {
  if (!std::isfinite(value)) return std::nullopt;
  if (!prior_seeded_) {
    // Empirical prior: center the Normal-Gamma on the first sample so
    // absolute data scale (a channel living at 100.0) does not read as a
    // permanent changepoint against a fixed mu0 = 0.
    prior_seeded_ = true;
    prior_mean_ = value;
    Rebase(prior_mean_, options_.prior_kappa, options_.prior_alpha,
           options_.prior_beta, 0);
  }
  ++samples_seen_;

  const double hazard = 1.0 / options_.hazard_lambda;
  const size_t n = weight_.size();
  next_weight_.assign(n + 1, 0.0);
  next_mu_.resize(n + 1);
  next_kappa_.resize(n + 1);
  next_alpha_.resize(n + 1);
  next_beta_.resize(n + 1);
  next_run_length_.resize(n + 1);
  // Slot 0 is the fresh-changepoint bucket (r = 0, prior stats).
  next_mu_[0] = prior_mean_;
  next_kappa_[0] = options_.prior_kappa;
  next_alpha_[0] = options_.prior_alpha;
  next_beta_[0] = options_.prior_beta;
  next_run_length_[0] = 0;

  double normalizer = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double scale = std::sqrt(
        std::max(beta_[i] * (kappa_[i] + 1.0) / (alpha_[i] * kappa_[i]),
                 kSigmaFloor * kSigmaFloor));
    const double pred = StudentTPdf(value, 2.0 * alpha_[i], mu_[i], scale);
    const double mass = weight_[i] * pred;
    // Growth: this regime absorbs the sample.
    next_weight_[i + 1] = mass * (1.0 - hazard);
    next_mu_[i + 1] = (kappa_[i] * mu_[i] + value) / (kappa_[i] + 1.0);
    next_kappa_[i + 1] = kappa_[i] + 1.0;
    next_alpha_[i + 1] = alpha_[i] + 0.5;
    next_beta_[i + 1] =
        beta_[i] +
        kappa_[i] * (value - mu_[i]) * (value - mu_[i]) /
            (2.0 * (kappa_[i] + 1.0));
    next_run_length_[i + 1] = run_length_[i] + 1;
    // Changepoint: mass routed to r = 0.
    next_weight_[0] += mass * hazard;
    normalizer += mass;
  }

  if (!(normalizer > 0.0) || !std::isfinite(normalizer)) {
    // Every predictive underflowed (a sample absurdly far from every
    // regime). Restart the posterior at the observed value — the only
    // deterministic recovery that keeps scoring meaningful.
    Rebase(value, options_.prior_kappa, options_.prior_alpha,
           options_.prior_beta, 0);
  } else {
    for (auto& w : next_weight_) w /= normalizer;
    // Constant-memory truncation: merge the two longest-run buckets
    // (weights add, the longer run's statistics win — they summarize
    // strictly more data).
    while (next_weight_.size() > options_.max_run_length) {
      const size_t last = next_weight_.size() - 1;
      next_weight_[last - 1] += next_weight_[last];
      next_mu_[last - 1] = next_mu_[last];
      next_kappa_[last - 1] = next_kappa_[last];
      next_alpha_[last - 1] = next_alpha_[last];
      next_beta_[last - 1] = next_beta_[last];
      next_run_length_[last - 1] = next_run_length_[last];
      next_weight_.pop_back();
      next_mu_.pop_back();
      next_kappa_.pop_back();
      next_alpha_.pop_back();
      next_beta_.pop_back();
      next_run_length_.pop_back();
    }
    weight_.swap(next_weight_);
    mu_.swap(next_mu_);
    kappa_.swap(next_kappa_);
    alpha_.swap(next_alpha_);
    beta_.swap(next_beta_);
    run_length_.swap(next_run_length_);
  }

  // Track the last established regime: the overall MAP bucket, when its
  // run is long enough to count as "settled". This is the `before` side
  // of any future confirmed shift.
  size_t map_idx = 0;
  for (size_t i = 1; i < weight_.size(); ++i) {
    if (weight_[i] > weight_[map_idx]) map_idx = i;
  }
  if (run_length_[map_idx] >= 2 * options_.min_run_for_shift) {
    stable_mean_ = mu_[map_idx];
    stable_sigma_ = std::max(std::sqrt(beta_[map_idx] / alpha_[map_idx]),
                             kSigmaFloor);
    stable_support_ = run_length_[map_idx];
  }

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return std::nullopt;
  }
  if (samples_seen_ <= options_.warmup || stable_support_ == 0) {
    return std::nullopt;
  }

  // Posterior mass on "a changepoint happened recently".
  double recent_mass = 0.0;
  size_t best_recent = 0;  // MAP bucket among recent runs >= 1
  bool have_recent = false;
  for (size_t i = 0; i < weight_.size(); ++i) {
    if (run_length_[i] <= options_.min_run_for_shift) {
      recent_mass += weight_[i];
      if (run_length_[i] >= 1 &&
          (!have_recent || weight_[i] > weight_[best_recent])) {
        best_recent = i;
        have_recent = true;
      }
    }
  }
  if (recent_mass < options_.shift_posterior || !have_recent) {
    return std::nullopt;
  }

  const double after_mean = mu_[best_recent];
  const double after_sigma = std::max(
      std::sqrt(beta_[best_recent] / alpha_[best_recent]), kSigmaFloor);
  const double magnitude =
      std::abs(after_mean - stable_mean_) / stable_sigma_;
  if (magnitude < options_.min_magnitude_sigmas) {
    // The posterior says "recent changepoint" but the level barely
    // moved — setpoint jitter or variance churn. Skip exactly one sample
    // before re-evaluating: a longer penalty (e.g. min_run_for_shift)
    // blanks out precisely the window in which a steep ramp crosses the
    // magnitude gate, leaving ramped shifts permanently unconfirmable.
    cooldown_left_ = 1;
    return std::nullopt;
  }

  BocpdShift confirmed;
  confirmed.shift.index = static_cast<size_t>(samples_seen_);
  confirmed.shift.time = 0.0;  // stamped by the caller
  confirmed.shift.before_mean = stable_mean_;
  confirmed.shift.after_mean = after_mean;
  confirmed.shift.magnitude_sigmas = magnitude;
  confirmed.after_sigma = after_sigma;
  confirmed.run_length = static_cast<size_t>(run_length_[best_recent]);
  confirmed.evidence = recent_mass;

  // Exactly-once: collapse onto the confirmed post-shift regime and hold
  // off until it has had time to establish itself.
  Rebase(mu_[best_recent], kappa_[best_recent], alpha_[best_recent],
         beta_[best_recent], run_length_[best_recent]);
  stable_mean_ = after_mean;
  stable_sigma_ = after_sigma;
  stable_support_ = run_length_[0];
  cooldown_left_ = options_.cooldown;
  ++shifts_confirmed_;
  return confirmed;
}

double BocpdDetector::shift_mass() const {
  double mass = 0.0;
  for (size_t i = 0; i < weight_.size(); ++i) {
    if (run_length_[i] <= options_.min_run_for_shift) mass += weight_[i];
  }
  return mass;
}

size_t BocpdDetector::map_run_length() const {
  if (weight_.empty()) return 0;
  size_t map_idx = 0;
  for (size_t i = 1; i < weight_.size(); ++i) {
    if (weight_[i] > weight_[map_idx]) map_idx = i;
  }
  return static_cast<size_t>(run_length_[map_idx]);
}

BocpdState BocpdDetector::SaveState() const {
  BocpdState state;
  state.weight = weight_;
  state.mu = mu_;
  state.kappa = kappa_;
  state.alpha = alpha_;
  state.beta = beta_;
  state.run_length = run_length_;
  state.samples_seen = samples_seen_;
  state.shifts_confirmed = shifts_confirmed_;
  state.cooldown_left = cooldown_left_;
  state.prior_seeded = prior_seeded_;
  state.prior_mean = prior_mean_;
  state.stable_mean = stable_mean_;
  state.stable_sigma = stable_sigma_;
  state.stable_support = stable_support_;
  return state;
}

Status BocpdDetector::RestoreState(const BocpdState& state) {
  const size_t n = state.weight.size();
  if (state.mu.size() != n || state.kappa.size() != n ||
      state.alpha.size() != n || state.beta.size() != n ||
      state.run_length.size() != n) {
    return Status::InvalidArgument("bocpd state: bucket array length skew");
  }
  if (state.prior_seeded && n == 0) {
    return Status::InvalidArgument("bocpd state: seeded but no buckets");
  }
  if (n > options_.max_run_length + 1) {
    return Status::InvalidArgument("bocpd state: more buckets than cap");
  }
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(state.weight[i]) || state.weight[i] < 0.0 ||
        !std::isfinite(state.mu[i]) || !FinitePositive(state.kappa[i]) ||
        !FinitePositive(state.alpha[i]) || !FinitePositive(state.beta[i])) {
      return Status::InvalidArgument("bocpd state: non-finite bucket");
    }
    sum += state.weight[i];
  }
  if (n > 0 && !(sum > 0.0)) {
    return Status::InvalidArgument("bocpd state: zero posterior mass");
  }
  if (!std::isfinite(state.prior_mean) || !std::isfinite(state.stable_mean) ||
      !FinitePositive(state.stable_sigma)) {
    return Status::InvalidArgument("bocpd state: non-finite regime");
  }
  weight_ = state.weight;
  for (auto& w : weight_) w /= (n > 0 ? sum : 1.0);
  mu_ = state.mu;
  kappa_ = state.kappa;
  alpha_ = state.alpha;
  beta_ = state.beta;
  run_length_ = state.run_length;
  samples_seen_ = state.samples_seen;
  shifts_confirmed_ = state.shifts_confirmed;
  cooldown_left_ = state.cooldown_left;
  prior_seeded_ = state.prior_seeded;
  prior_mean_ = state.prior_mean;
  stable_mean_ = state.stable_mean;
  stable_sigma_ = std::max(state.stable_sigma, kSigmaFloor);
  stable_support_ = state.stable_support;
  return Status::Ok();
}

}  // namespace hod::core
