// Plant simulator tests: structure, determinism, ground-truth consistency.

#include "sim/plant.h"

#include <gtest/gtest.h>

#include "hierarchy/level_data.h"
#include "timeseries/stats.h"

namespace hod::sim {
namespace {

SimulatedPlant Build(uint64_t seed = 7) {
  PlantOptions options;
  options.num_lines = 2;
  options.machines_per_line = 2;
  options.jobs_per_machine = 8;
  options.seed = seed;
  ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.3;
  scenario.glitch_rate = 0.2;
  return BuildPlant(options, scenario).value();
}

TEST(Plant, StructureMatchesOptions) {
  const auto plant = Build();
  ASSERT_EQ(plant.production.lines.size(), 2u);
  for (const auto& line : plant.production.lines) {
    EXPECT_EQ(line.machines.size(), 2u);
    EXPECT_EQ(line.environment.size(), 1u);
    for (const auto& machine : line.machines) {
      EXPECT_EQ(machine.jobs.size(), 8u);
      for (const auto& job : machine.jobs) {
        EXPECT_EQ(job.phases.size(), 5u);
        EXPECT_EQ(job.setup.size(), 6u);
        EXPECT_EQ(job.caq.size(), 4u);
        EXPECT_GT(job.end_time, job.start_time);
      }
    }
  }
}

TEST(Plant, ValidatesAgainstHierarchyRules) {
  const auto plant = Build();
  EXPECT_TRUE(hierarchy::ValidateProduction(plant.production).ok());
}

TEST(Plant, DeterministicForSeed) {
  const auto a = Build(11);
  const auto b = Build(11);
  ASSERT_EQ(a.truth.records.size(), b.truth.records.size());
  const auto& series_a = a.production.lines[0]
                             .machines[0]
                             .jobs[0]
                             .phases[3]
                             .sensor_series.begin()
                             ->second;
  const auto& series_b = b.production.lines[0]
                             .machines[0]
                             .jobs[0]
                             .phases[3]
                             .sensor_series.begin()
                             ->second;
  EXPECT_EQ(series_a.values(), series_b.values());
}

TEST(Plant, DifferentSeedsDiffer) {
  const auto a = Build(11);
  const auto b = Build(12);
  const auto& series_a = a.production.lines[0]
                             .machines[0]
                             .jobs[0]
                             .phases[3]
                             .sensor_series.begin()
                             ->second;
  const auto& series_b = b.production.lines[0]
                             .machines[0]
                             .jobs[0]
                             .phases[3]
                             .sensor_series.begin()
                             ->second;
  EXPECT_NE(series_a.values(), series_b.values());
}

TEST(Plant, RedundantSensorsRegisteredAsGroups) {
  const auto plant = Build();
  const std::string machine = "line1.m1";
  auto group =
      plant.production.sensors.CorrespondingSensors(machine + ".bed_temp_a");
  ASSERT_TRUE(group.ok());
  ASSERT_EQ(group->size(), 1u);
  EXPECT_EQ((*group)[0], machine + ".bed_temp_b");
  // Non-redundant sensor has no group.
  auto lonely =
      plant.production.sensors.CorrespondingSensors(machine + ".vibration");
  ASSERT_TRUE(lonely.ok());
  EXPECT_TRUE(lonely->empty());
}

TEST(Plant, ProcessAnomaliesVisibleOnBothRedundantSensors) {
  const auto plant = Build(21);
  size_t checked = 0;
  for (const AnomalyRecord& record : plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase ||
        record.measurement_error) {
      continue;
    }
    // For redundant quantities both _a and _b carry labels.
    if (record.sensor_id.size() > 2 &&
        record.sensor_id.substr(record.sensor_id.size() - 2) == "_a") {
      const std::string other =
          record.sensor_id.substr(0, record.sensor_id.size() - 2) + "_b";
      const auto key_a = GroundTruth::PhaseSeriesKey(
          record.job_id, record.phase_name, record.sensor_id);
      const auto key_b = GroundTruth::PhaseSeriesKey(record.job_id,
                                                     record.phase_name, other);
      EXPECT_TRUE(plant.truth.phase_labels.count(key_a) > 0);
      EXPECT_TRUE(plant.truth.phase_labels.count(key_b) > 0);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Plant, GlitchesVisibleOnOneSensorOnly) {
  const auto plant = Build(22);
  size_t checked = 0;
  for (const AnomalyRecord& record : plant.truth.records) {
    if (record.level != hierarchy::ProductionLevel::kPhase ||
        !record.measurement_error) {
      continue;
    }
    if (record.sensor_id.size() > 2 &&
        record.sensor_id.substr(record.sensor_id.size() - 2) == "_a") {
      const std::string other =
          record.sensor_id.substr(0, record.sensor_id.size() - 2) + "_b";
      const auto key_b = GroundTruth::PhaseSeriesKey(record.job_id,
                                                     record.phase_name, other);
      // The partner sensor must NOT be labeled for this glitch (it may be
      // labeled for a co-occurring process anomaly, so only check when
      // the job had no process anomaly).
      if (plant.truth.job_labels.count(record.job_id) == 0) {
        EXPECT_EQ(plant.truth.phase_labels.count(key_b), 0u)
            << record.job_id << " " << other;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(Plant, AnomalousJobsHaveDegradedCaq) {
  const auto plant = Build(23);
  std::vector<double> normal_density;
  std::vector<double> anomalous_density;
  for (const auto& line : plant.production.lines) {
    for (const auto& machine : line.machines) {
      if (plant.truth.machine_labels.count(machine.id) > 0) continue;
      for (const auto& job : machine.jobs) {
        const double density = job.caq.Get("density").value();
        if (plant.truth.job_labels.count(job.id) > 0) {
          anomalous_density.push_back(density);
        } else {
          normal_density.push_back(density);
        }
      }
    }
  }
  ASSERT_GT(anomalous_density.size(), 0u);
  ASSERT_GT(normal_density.size(), 5u);
  EXPECT_LT(ts::Mean(anomalous_density), ts::Mean(normal_density));
}

TEST(Plant, RogueMachineDegradedAcrossAllJobs) {
  const auto plant = Build(24);
  ASSERT_EQ(plant.truth.machine_labels.size(), 1u);
  const std::string rogue = plant.truth.machine_labels.begin()->first;
  // Compare against *clean* jobs only: bad-batch windows and process
  // anomalies degrade CAQ on healthy machines too.
  std::vector<double> rogue_density;
  std::vector<double> clean_density;
  for (const auto& line : plant.production.lines) {
    const auto& batch_flags = plant.truth.line_job_labels.at(line.id);
    size_t line_job_index = 0;
    // Flags are time-ordered across the line; rebuild per-job lookup.
    (void)line_job_index;
    for (const auto& machine : line.machines) {
      for (const auto& job : machine.jobs) {
        if (plant.truth.job_labels.count(job.id) > 0) continue;
        const double density = job.caq.Get("density").value();
        if (machine.id == rogue) {
          rogue_density.push_back(density);
        } else if (line.id != "line1") {  // line1 carries the bad batch
          clean_density.push_back(density);
        }
      }
    }
    (void)batch_flags;
  }
  ASSERT_GT(rogue_density.size(), 0u);
  ASSERT_GT(clean_density.size(), 0u);
  EXPECT_LT(ts::Mean(rogue_density), ts::Mean(clean_density) - 0.2);
}

TEST(Plant, BadBatchWindowMarkedOnLineLabels) {
  const auto plant = Build(25);
  const auto it = plant.truth.line_job_labels.find("line1");
  ASSERT_NE(it, plant.truth.line_job_labels.end());
  size_t marked = 0;
  for (uint8_t flag : it->second) marked += flag;
  // bad_batch_jobs=4 per machine x 2 machines.
  EXPECT_EQ(marked, 8u);
  // line2 has no bad batch (bad_batch_lines = 1).
  const auto it2 = plant.truth.line_job_labels.find("line2");
  ASSERT_NE(it2, plant.truth.line_job_labels.end());
  size_t marked2 = 0;
  for (uint8_t flag : it2->second) marked2 += flag;
  EXPECT_EQ(marked2, 0u);
}

TEST(Plant, BadBatchVisibleInSetupSeries) {
  const auto plant = Build(26);
  const auto& line = plant.production.lines[0];
  auto series = hierarchy::LineJobSeries(line).value();
  const ts::TimeSeries* powder = nullptr;
  for (const auto& s : series) {
    if (s.name().find("powder_quality") != std::string::npos) powder = &s;
  }
  ASSERT_NE(powder, nullptr);
  const auto& flags = plant.truth.line_job_labels.at(line.id);
  double bad_mean = 0.0;
  double good_mean = 0.0;
  size_t bad = 0;
  size_t good = 0;
  for (size_t j = 0; j < flags.size(); ++j) {
    if (flags[j] != 0) {
      bad_mean += (*powder)[j];
      ++bad;
    } else {
      good_mean += (*powder)[j];
      ++good;
    }
  }
  ASSERT_GT(bad, 0u);
  EXPECT_LT(bad_mean / bad, good_mean / good - 0.1);
}

TEST(Plant, EnvironmentSeriesCoversLineTimeRange) {
  const auto plant = Build(27);
  for (const auto& line : plant.production.lines) {
    const auto& env = line.environment.front().series;
    ts::TimePoint latest_end = 0.0;
    for (const auto& machine : line.machines) {
      latest_end = std::max(latest_end, machine.jobs.back().end_time);
    }
    EXPECT_GE(env.end_time() + 10.0, latest_end);
    EXPECT_TRUE(plant.truth.environment_labels.count(
                    line.environment.front().sensor_id) > 0);
  }
}

TEST(Plant, GroundTruthHelperFunctions) {
  const auto plant = Build(28);
  EXPECT_GT(plant.truth.CountAtLevel(hierarchy::ProductionLevel::kPhase), 0u);
  EXPECT_GT(
      plant.truth.CountAtLevel(hierarchy::ProductionLevel::kEnvironment), 0u);
  // Zero vector for never-injected series.
  auto zeros =
      plant.truth.PhaseLabelsOrZero("ghost-job", "printing", "ghost", 16);
  EXPECT_EQ(zeros.size(), 16u);
  for (uint8_t flag : zeros) EXPECT_EQ(flag, 0);
}

TEST(Plant, EnvironmentCouplingCreatesPairedRecords) {
  // With full coupling, every chamber-temp process anomaly must have a
  // matching environment-level record at the same time on its line.
  PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 2;
  options.jobs_per_machine = 12;
  options.seed = 91;
  ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.5;
  scenario.glitch_rate = 0.0;
  scenario.environment_coupling = 1.0;
  scenario.environment_anomalies = 0;
  const auto plant = BuildPlant(options, scenario).value();
  size_t chamber_anomalies = 0;
  size_t coupled = 0;
  for (const AnomalyRecord& record : plant.truth.records) {
    if (record.level == hierarchy::ProductionLevel::kPhase &&
        !record.measurement_error &&
        record.sensor_id.find("chamber_temp") != std::string::npos) {
      ++chamber_anomalies;
      for (const AnomalyRecord& other : plant.truth.records) {
        if (other.level == hierarchy::ProductionLevel::kEnvironment &&
            other.line_id == record.line_id &&
            std::abs(other.start_time - record.start_time) < 1e-9) {
          ++coupled;
          break;
        }
      }
    }
  }
  ASSERT_GT(chamber_anomalies, 0u);
  EXPECT_EQ(coupled, chamber_anomalies);
}

TEST(Plant, ZeroCouplingCreatesNoEnvironmentEcho) {
  PlantOptions options;
  options.num_lines = 1;
  options.machines_per_line = 2;
  options.jobs_per_machine = 12;
  options.seed = 92;
  ScenarioOptions scenario;
  scenario.process_anomaly_rate = 0.5;
  scenario.glitch_rate = 0.0;
  scenario.environment_coupling = 0.0;
  scenario.environment_anomalies = 0;
  const auto plant = BuildPlant(options, scenario).value();
  for (const AnomalyRecord& record : plant.truth.records) {
    EXPECT_NE(record.level, hierarchy::ProductionLevel::kEnvironment);
  }
}

TEST(Plant, RejectsZeroDimensions) {
  PlantOptions options;
  options.num_lines = 0;
  EXPECT_FALSE(BuildPlant(options, ScenarioOptions{}).ok());
}

TEST(Plant, PhaseNamesAndQuantitiesStable) {
  EXPECT_EQ(PhaseNames().size(), 5u);
  EXPECT_EQ(MachineQuantities().size(), 5u);
  EXPECT_TRUE(RedundantQuantity("bed_temp"));
  EXPECT_TRUE(RedundantQuantity("chamber_temp"));
  EXPECT_FALSE(RedundantQuantity("vibration"));
  EXPECT_FALSE(RedundantQuantity("ghost"));
}

}  // namespace
}  // namespace hod::sim
