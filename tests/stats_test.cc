#include "timeseries/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hod::ts {
namespace {

TEST(Stats, MeanVarianceStdDev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2.0);
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(Mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(Variance(empty), 0.0);
  EXPECT_DOUBLE_EQ(Min(empty), 0.0);
  EXPECT_DOUBLE_EQ(Max(empty), 0.0);
  EXPECT_DOUBLE_EQ(Median(empty), 0.0);
  EXPECT_DOUBLE_EQ(Mad(empty), 0.0);
  EXPECT_DOUBLE_EQ(Slope(empty), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 7.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Stats, QuantileClampsQ) {
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 2.0), 2.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, MadIsRobustToOutliers) {
  std::vector<double> xs = {1.0, 1.1, 0.9, 1.05, 0.95, 100.0};
  const double mad = Mad(xs);
  EXPECT_LT(mad, 1.0);
  EXPECT_GT(StdDev(xs), 10.0);  // classic stddev explodes
}

TEST(Stats, MadEstimatesSigmaForGaussianish) {
  // Symmetric sample from a known spread.
  std::vector<double> xs;
  for (int i = -50; i <= 50; ++i) xs.push_back(static_cast<double>(i) * 0.1);
  // For a uniform sample MAD*1.4826 won't equal stddev exactly; just check
  // the scaling factor is applied (MAD of this set is 2.5 -> 3.7065).
  EXPECT_NEAR(Mad(xs), 1.4826 * 2.5, 1e-9);
}

TEST(Stats, ZScoresStandardize) {
  const std::vector<double> xs = {0.0, 10.0};
  const auto z = ZScores(xs);
  EXPECT_DOUBLE_EQ(z[0], -1.0);
  EXPECT_DOUBLE_EQ(z[1], 1.0);
}

TEST(Stats, ZScoresConstantInputAllZero) {
  const auto z = ZScores({5.0, 5.0, 5.0});
  for (double v : z) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Stats, RobustZScoresFlagOutlier) {
  std::vector<double> xs(50, 1.0);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] += 0.01 * static_cast<double>(i % 5);
  }
  xs.push_back(50.0);
  const auto z = RobustZScores(xs);
  EXPECT_GT(std::fabs(z.back()), 100.0);
}

TEST(Stats, CorrelationPerfectAndInverse) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(Correlation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(Correlation(xs, neg), -1.0, 1e-12);
}

TEST(Stats, CorrelationDegenerateCases) {
  EXPECT_DOUBLE_EQ(Correlation({1.0, 2.0}, {1.0}), 0.0);  // size mismatch
  EXPECT_DOUBLE_EQ(Correlation({1.0, 1.0}, {1.0, 2.0}), 0.0);  // zero var
}

TEST(Stats, AutocorrelationLagZeroIsOne) {
  const std::vector<double> xs = {1.0, 3.0, 2.0, 5.0, 4.0};
  EXPECT_NEAR(Autocorrelation(xs, 0), 1.0, 1e-12);
}

TEST(Stats, AutocorrelationDetectsPersistence) {
  // Strongly persistent series: positive lag-1 autocorrelation.
  std::vector<double> xs;
  double v = 0.0;
  for (int i = 0; i < 200; ++i) {
    v = 0.95 * v + ((i * 2654435761u) % 100 < 50 ? 0.1 : -0.1);
    xs.push_back(v);
  }
  EXPECT_GT(Autocorrelation(xs, 1), 0.5);
  EXPECT_DOUBLE_EQ(Autocorrelation(xs, xs.size()), 0.0);
}

TEST(Stats, SlopeOfLinearRamp) {
  std::vector<double> xs;
  for (int i = 0; i < 10; ++i) xs.push_back(3.0 * i + 1.0);
  EXPECT_NEAR(Slope(xs), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(Slope({5.0}), 0.0);
}

TEST(Stats, EnergySumsSquares) {
  EXPECT_DOUBLE_EQ(Energy({3.0, 4.0}), 25.0);
}

TEST(Stats, DeviationToScoreMonotoneBounded) {
  EXPECT_DOUBLE_EQ(DeviationToScore(0.0), 0.0);
  EXPECT_DOUBLE_EQ(DeviationToScore(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(DeviationToScore(3.0, 3.0), 0.5);
  EXPECT_LT(DeviationToScore(1.0), DeviationToScore(2.0));
  EXPECT_LT(DeviationToScore(1000.0), 1.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), StdDev(xs), 1e-12);
}

}  // namespace
}  // namespace hod::ts
