#ifndef HOD_HIERARCHY_LEVEL_DATA_H_
#define HOD_HIERARCHY_LEVEL_DATA_H_

#include <string>
#include <vector>

#include "hierarchy/production.h"
#include "util/statusor.h"

namespace hod::hierarchy {

/// Extraction of the per-level datasets of Fig. 2: which data shape exists
/// at each production level, ready for the matching detector family.

/// Job-level dataset: one high-dimensional vector per job (setup followed
/// by CAQ values) with the job's id and start time.
struct JobMatrix {
  std::vector<std::string> job_ids;
  std::vector<ts::TimePoint> times;
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> vectors;
};

/// Jobs of one machine in execution order. Jobs must share the setup/CAQ
/// schema (same feature names); InvalidArgument otherwise.
StatusOr<JobMatrix> JobFeatureMatrix(const Machine& machine);

/// Jobs of every machine on a line, ordered by start time.
StatusOr<JobMatrix> JobFeatureMatrix(const ProductionLine& line);

/// Production-line level: "if jobs over time are investigated, the
/// high-dimensional setup provides also a time series" — one TimeSeries
/// per setup/CAQ feature, one sample per job. Job arrival is treated as
/// regular with the mean inter-job spacing (jobs are the sampling unit;
/// the exact wall-clock jitter is not meaningful at this level).
StatusOr<std::vector<ts::TimeSeries>> LineJobSeries(
    const ProductionLine& line);

/// Production level: one summary vector per machine (per-CAQ-feature mean
/// and spread plus job duration statistics), for cross-machine comparison.
struct MachineMatrix {
  std::vector<std::string> machine_ids;
  std::vector<std::string> feature_names;
  std::vector<std::vector<double>> vectors;
};
StatusOr<MachineMatrix> MachineSummaryMatrix(const Production& production);

/// Phase-level training data: every series recorded by `sensor_id` across
/// the machine's jobs (optionally restricted to phases named
/// `phase_name`). Pointers remain owned by the production structure.
std::vector<const ts::TimeSeries*> CollectSensorSeries(
    const Machine& machine, const std::string& sensor_id,
    const std::string& phase_name = "");

/// Environment series for a sensor on a line (nullptr when absent).
const ts::TimeSeries* FindEnvironmentSeries(const ProductionLine& line,
                                            const std::string& sensor_id);

}  // namespace hod::hierarchy

#endif  // HOD_HIERARCHY_LEVEL_DATA_H_
