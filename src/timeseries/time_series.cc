#include "timeseries/time_series.h"

#include <cmath>

namespace hod::ts {

TimeSeries::TimeSeries(std::string name, TimePoint start_time, double interval)
    : name_(std::move(name)), start_time_(start_time), interval_(interval) {}

TimeSeries::TimeSeries(std::string name, TimePoint start_time, double interval,
                       std::vector<double> values)
    : name_(std::move(name)),
      start_time_(start_time),
      interval_(interval),
      values_(std::move(values)) {}

StatusOr<size_t> TimeSeries::IndexAt(TimePoint t) const {
  if (t < start_time_ || t >= end_time()) {
    return Status::OutOfRange("time outside series range");
  }
  return static_cast<size_t>((t - start_time_) / interval_);
}

StatusOr<TimeSeries> TimeSeries::Slice(size_t begin, size_t end) const {
  if (begin > end || end > values_.size()) {
    return Status::InvalidArgument("invalid slice range");
  }
  TimeSeries out(name_, TimeAt(begin), interval_);
  out.values_.assign(values_.begin() + begin, values_.begin() + end);
  return out;
}

Status TimeSeries::Validate() const {
  if (interval_ <= 0.0) {
    return Status::InvalidArgument("interval must be positive");
  }
  for (double v : values_) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite sample in series '" + name_ +
                                     "'");
    }
  }
  return Status::Ok();
}

FeatureVector::FeatureVector(std::vector<std::string> names,
                             std::vector<double> values)
    : names_(std::move(names)), values_(std::move(values)) {}

StatusOr<double> FeatureVector::Get(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return values_[i];
  }
  return Status::NotFound("no feature named '" + name + "'");
}

Status FeatureVector::Validate() const {
  if (names_.size() != values_.size()) {
    return Status::InvalidArgument("feature name/value size mismatch");
  }
  for (double v : values_) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite feature value");
    }
  }
  return Status::Ok();
}

}  // namespace hod::ts
