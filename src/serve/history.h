#ifndef HOD_SERVE_HISTORY_H_
#define HOD_SERVE_HISTORY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "timeseries/time_series.h"

namespace hod::serve {

/// Fixed-capacity time-indexed ring: O(1) append (evicting the oldest
/// entry once full), O(log n) time lookup. Timestamps are expected to be
/// non-decreasing — the producer is the serve hub appending one entry per
/// published snapshot, and the publish sequence is monotone in event time.
/// Not internally synchronized; the hub guards it with its own mutex.
template <typename T>
class HistoryRing {
 public:
  struct Entry {
    ts::TimePoint ts = 0.0;
    T value{};
  };

  explicit HistoryRing(size_t capacity)
      : buf_(capacity == 0 ? 1 : capacity) {}

  size_t capacity() const { return buf_.size(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Entries pushed out of the window since construction (or Clear).
  uint64_t evicted() const { return evicted_; }

  void Append(ts::TimePoint ts, T value) {
    const size_t slot = (head_ + size_) % buf_.size();
    buf_[slot] = Entry{ts, std::move(value)};
    if (size_ < buf_.size()) {
      ++size_;
    } else {
      head_ = (head_ + 1) % buf_.size();
      ++evicted_;
    }
  }

  /// Index 0 is the oldest retained entry.
  const Entry& At(size_t index) const { return buf_[(head_ + index) % buf_.size()]; }

  const Entry& Oldest() const { return At(0); }
  const Entry& Newest() const { return At(size_ - 1); }

  /// First logical index with ts >= t (== size() when none).
  size_t LowerBound(ts::TimePoint t) const {
    size_t lo = 0;
    size_t hi = size_;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (At(mid).ts < t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Retained entries with t0 <= ts < t1, oldest first.
  std::vector<Entry> Window(ts::TimePoint t0, ts::TimePoint t1) const {
    std::vector<Entry> out;
    for (size_t i = LowerBound(t0); i < size_; ++i) {
      const Entry& entry = At(i);
      if (entry.ts >= t1) break;
      out.push_back(entry);
    }
    return out;
  }

  /// Newest entry with ts < t — the roll-up baseline for a window opening
  /// at t (cumulative counters diff against it).
  std::optional<Entry> Before(ts::TimePoint t) const {
    const size_t idx = LowerBound(t);
    if (idx == 0) return std::nullopt;
    return At(idx - 1);
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
    evicted_ = 0;
  }

 private:
  std::vector<Entry> buf_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t evicted_ = 0;
};

}  // namespace hod::serve

#endif  // HOD_SERVE_HISTORY_H_
